#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and emit a JSON snapshot
# (BENCH_<sha>.json) of ns/op, B/op and allocs/op per benchmark, so the
# perf trajectory across PRs can be compared from saved artifacts.
#
# Usage:
#   scripts/bench.sh [output-dir]          # default output-dir: repo root
#   BENCHTIME=5x scripts/bench.sh          # longer runs for stable numbers
#   BENCH='SimDay' scripts/bench.sh        # restrict the benchmark set
#
# The default set covers the per-day hot path (simulation, KPI engine,
# §2.3 metrics) and the end-to-end serial/streaming pipelines.
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${1:-.}"
sha=$(git rev-parse --short HEAD 2>/dev/null || echo nogit)
# Label snapshots of an uncommitted tree honestly: numbers measured on a
# dirty checkout must not be attributed to the clean HEAD commit.
if [ "$sha" != nogit ] && ! git diff --quiet HEAD 2>/dev/null; then
  sha="${sha}-dirty"
fi
benchtime="${BENCHTIME:-1x}"
pattern="${BENCH:-SimDayInto|SimulateDay|EngineDay|DayMetrics|MergeVisits|RunStandardSerial|StreamWorkers1\$}"

raw=$(go test -run='^$' -bench="$pattern" -benchtime="$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2

out="$out_dir/BENCH_${sha}.json"
{
  printf '{\n'
  printf '  "sha": "%s",\n' "$sha"
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "results": [\n'
  printf '%s\n' "$raw" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; bop = "null"; aop = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
      }
      lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bop, aop)
    }
    END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
