#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and emit a JSON snapshot
# (BENCH_<sha>.json) of ns/op, B/op and allocs/op per benchmark, so the
# perf trajectory across PRs can be compared from saved artifacts.
#
# Usage:
#   scripts/bench.sh [output-dir]          # default output-dir: repo root
#   BENCHTIME=5x scripts/bench.sh          # longer runs for stable numbers
#   BENCH='SimDay' scripts/bench.sh        # restrict the benchmark set
#   BENCH_ALLOW_DIRTY=1 scripts/bench.sh   # measure an uncommitted tree
#                                          # (snapshot marked -dirty, never
#                                          # to be committed)
#
# The default set covers the per-day hot path (simulation, KPI engine —
# the EngineDay pattern includes the serial Day/DayAppend benchmarks and
# the intra-day EngineDayAppendSharded2/4 ones, §2.3 metrics), the
# end-to-end serial/streaming pipelines, the registry sweep with
# copy-on-divergence on/off (SweepSharedPrefix vs SweepUnsharedRegistry),
# and the ScaleLadder rungs (8k/100k/1M users; the 1M rung takes tens of
# seconds to build — set BENCH to exclude it for quick local loops).
# Compare snapshots with scripts/benchdiff.sh.
#
# Snapshots are named BENCH_<sha>.json after the commit they measure, so
# the script refuses to run on a dirty tree: numbers measured on
# uncommitted code attributed to a clean HEAD sha poison the perf
# trajectory. Set BENCH_ALLOW_DIRTY=1 for local experiments — the
# snapshot is then suffixed -dirty, which .gitignore keeps out of the
# repository. See PERFORMANCE.md ("Snapshot hygiene").
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${1:-.}"
sha=$(git rev-parse --short HEAD 2>/dev/null || echo nogit)
# Label snapshots of an uncommitted tree honestly: numbers measured on a
# dirty checkout must not be attributed to the clean HEAD commit.
# `git status --porcelain` also catches untracked sources, which
# `git diff HEAD` would miss.
if [ "$sha" != nogit ] && [ -n "$(git status --porcelain 2>/dev/null)" ]; then
  if [ "${BENCH_ALLOW_DIRTY:-0}" != 1 ]; then
    echo "bench.sh: working tree is dirty; commit (or stash) first, or set" >&2
    echo "BENCH_ALLOW_DIRTY=1 for a local -dirty snapshot (never commit those)." >&2
    exit 1
  fi
  sha="${sha}-dirty"
fi
benchtime="${BENCHTIME:-1x}"
pattern="${BENCH:-SimDayInto|SimulateDay|EngineDay|DayMetrics|MergeVisits|RunStandardSerial|StreamWorkers1\$|SweepSerial|SweepParallel|SweepSharedPrefix|SweepUnsharedRegistry|ScaleLadder|FeedReplay}"

# Runner metadata: numbers are only comparable between snapshots taken on
# similar hardware, so record what ran them. benchdiff warns when the two
# snapshots it diffs disagree on core count.
go_version=$(go version | { read -r _ _ v _; echo "$v"; })
numcpu=$( { getconf _NPROCESSORS_ONLN || nproc || echo 0; } 2>/dev/null)
maxprocs="${GOMAXPROCS:-$numcpu}"
commit_date=$(git show -s --format=%cI HEAD 2>/dev/null || echo "")

raw=$(go test -run='^$' -bench="$pattern" -benchtime="$benchtime" -benchmem .)
printf '%s\n' "$raw" >&2

out="$out_dir/BENCH_${sha}.json"
{
  printf '{\n'
  printf '  "sha": "%s",\n' "$sha"
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "commit_date": "%s",\n' "$commit_date"
  printf '  "go": "%s",\n' "$go_version"
  printf '  "gomaxprocs": %s,\n' "$maxprocs"
  printf '  "numcpu": %s,\n' "$numcpu"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "results": [\n'
  printf '%s\n' "$raw" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = "null"; bop = "null"; aop = "null"
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
      }
      lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bop, aop)
    }
    END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "wrote $out" >&2
