#!/usr/bin/env bash
# benchdiff.sh — compare the two newest committed BENCH_<sha>.json
# snapshots and print per-benchmark ns/op, B/op and allocs/op deltas.
# Thin wrapper over `go run ./cmd/benchdiff`; all flags pass through.
#
# Usage:
#   scripts/benchdiff.sh                 # diff the repo-root snapshots
#   scripts/benchdiff.sh -warn 5         # tighter regression threshold
#   scripts/benchdiff.sh -fail           # exit 1 on a hot-path regression
#
# Typical loop: scripts/bench.sh after a commit, then benchdiff.sh to
# see what the commit did to the hot-path trajectory. CI runs the same
# tool with -github so regressions annotate the workflow as warnings
# (never failures — cross-runner numbers are a trajectory, not a gate).
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
