#!/usr/bin/env sh
# fault_check.sh -- reliability layering gate.
#
# Three invariants, all load-bearing for the PR 7 failure-semantics
# design (RELIABILITY.md):
#
#  1. Nothing under internal/ decides process fate. Library errors flow
#     up as values and only the cmd layer (cmd/internal/cli) maps them
#     to exit codes — an os.Exit or log.Fatal inside internal/ would
#     skip the engine's drain/release paths and the commands' partial
#     flushing, turning a reported failure into a leak.
#
#  2. repro/internal/fault stays stdlib-only. The injector is threaded
#     through the orchestration layers; any repro dependency would make
#     "the harness is armable anywhere" an import-cycle lottery.
#
#  3. The leaf compute packages — the kernels with 0 allocs/op pins and
#     bit-identical goldens — must not import the fault harness.
#     Injection points belong to the orchestration layers (stream,
#     feeds, experiments); a Fire call inside a kernel is a layering
#     bug even though it is nil-safe.
#
# Run from the repository root: sh scripts/fault_check.sh
set -eu

cd "$(dirname "$0")/.."

fail=0

# --- 1: no process-fate calls under internal/ ---------------------------
# Non-test sources only: tests may use t.Fatal freely (different Fatal),
# so match the os.Exit and log.Fatal* call forms specifically.
hits=$(grep -rn --include='*.go' -e 'os\.Exit(' -e 'log\.Fatal' internal/ | grep -v '_test\.go' || true)
if [ -n "$hits" ]; then
    echo "FAIL: internal/ packages decide process fate (use error returns + cmd/internal/cli):" >&2
    echo "$hits" >&2
    fail=1
fi

# --- 2: fault dependency closure ----------------------------------------
deps=$(go list -deps repro/internal/fault | grep '^repro' | grep -v '^repro/internal/fault$' || true)
if [ -n "$deps" ]; then
    echo "FAIL: repro/internal/fault depends on repro packages (must stay stdlib-only):" >&2
    echo "$deps" >&2
    fail=1
fi

# --- 3: no fault import sites in leaf compute packages ------------------
# Everything under internal/ except the orchestration layers that own
# injection points: stream, feeds, experiments (and fault itself).
leaves="census core devices epi geo mobsim obs pandemic popsim prof radio report rng scenario signaling stats timegrid traffic"
for pkg in $leaves; do
    importers=$(go list -f '{{.ImportPath}} {{join .Imports " "}} {{join .TestImports " "}}' "repro/internal/$pkg" | grep -c 'repro/internal/fault' || true)
    if [ "$importers" -ne 0 ]; then
        echo "FAIL: leaf package repro/internal/$pkg imports repro/internal/fault" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "fault layering OK: no process exits under internal/; fault is stdlib-only; no leaf package imports fault"
