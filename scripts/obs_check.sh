#!/usr/bin/env sh
# obs_check.sh -- observability layering gate.
#
# Two invariants, both cheap and both load-bearing for the PR 6 design:
#
#  1. repro/internal/obs stays dependency-light: its only repro
#     dependency is repro/internal/prof (for the shared profiling
#     flags). If obs ever grows a dependency on a domain package, the
#     "instrument anything without import cycles" property dies.
#
#  2. The leaf compute packages -- the ones whose hot paths carry the
#     0 allocs/op pins and bit-identical goldens -- must not call into
#     internal/obs. Instrumentation lives in the orchestration layers
#     (stream, traffic engine plumbing, experiments, cmd/*); a metrics
#     call inside a leaf kernel is a layering bug even when it is
#     nil-safe.
#
# Run from the repository root: sh scripts/obs_check.sh
set -eu

cd "$(dirname "$0")/.."

fail=0

# --- 1: obs dependency closure ------------------------------------------
deps=$(go list -deps repro/internal/obs | grep '^repro' | grep -v -e '^repro/internal/obs$' -e '^repro/internal/prof$' || true)
if [ -n "$deps" ]; then
    echo "FAIL: repro/internal/obs depends on domain packages:" >&2
    echo "$deps" >&2
    fail=1
fi

# --- 2: no obs call sites in leaf compute packages ----------------------
# Everything under internal/ except the orchestration layers that are
# allowed (and expected) to instrument: stream, traffic, experiments --
# plus obs itself and prof.
leaves="census core devices epi feeds geo mobsim pandemic popsim radio report rng scenario signaling stats timegrid"
for pkg in $leaves; do
    importers=$(go list -f '{{.ImportPath}} {{join .Imports " "}} {{join .TestImports " "}}' "repro/internal/$pkg" | grep -c 'repro/internal/obs' || true)
    if [ "$importers" -ne 0 ]; then
        echo "FAIL: leaf package repro/internal/$pkg imports repro/internal/obs" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "obs layering OK: obs depends only on prof; no leaf package imports obs"
