// Scale-ladder regression tests: the memory-diet guarantees of the
// million-subscriber ladder, pinned at the 100k (ScaleMedium) rung so
// the full -race suite exercises them on every run. The 8k goldens pin
// bit-exactness at the default scale; these tests pin that nothing
// about correctness or the allocation discipline is scale-dependent.
package repro_test

import (
	"context"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// scaleBytesPerUserBudget is the documented marginal heap budget of one
// simulated subscriber: population record + anchors + columnar mirror +
// per-day arenas, amortized. PERFORMANCE.md ("Scale ladder") derives
// the number; TestBytesPerUserBudget fails when a rung exceeds it by
// more than 20%, which is how a fat field sneaking back into Visit or
// User gets caught before it costs gigabytes at the 1M rung.
const scaleBytesPerUserBudget = 576

var (
	scaleOnce sync.Once
	scaleDS   *experiments.Dataset
)

// scaleDataset builds the shared ScaleMedium stack once per test
// process; ~100k users keeps the full suite tractable under -race
// while being 12× past the scale every golden fixture runs at.
func scaleDataset(t *testing.T) *experiments.Dataset {
	t.Helper()
	if testing.Short() {
		t.Skip("ScaleMedium fixture skipped in -short mode")
	}
	scaleOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.TargetUsers = popsim.ScaleMedium
		scaleDS = experiments.NewDataset(cfg)
	})
	return scaleDS
}

// TestScaleParityMediumRung runs simulated days at the 100k rung
// through both production paths — the serial DayInto/DayAppend loop and
// the re-sequencing streaming source on a 4-worker pool — and requires
// the packed traces, the KPI cells and the §2.3 mobility folds to be
// bit-identical. Under -race this doubles as the synchronization check
// at a scale where worker interleavings differ from the 8k fixtures.
func TestScaleParityMediumRung(t *testing.T) {
	d := scaleDataset(t)
	first := timegrid.SimDay(timegrid.StudyDayOffset + 29) // a weekend/weekday straddle
	limit := first + 3

	src := stream.NewSimSource(context.Background(), d.Sim, d.Engine, first, limit,
		stream.Config{Workers: 4})
	buf := mobsim.NewDayBuffer()
	var cells []traffic.CellDay
	var merger core.VisitMerger
	days := 0
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Serial reference for the same day, on the same simulator and
		// engine the source cloned its workers from.
		traces := d.Sim.DayInto(buf, b.Day)
		cells = d.Engine.DayAppend(cells[:0], b.Day, traces)

		if len(traces) != len(b.Traces) {
			t.Fatalf("day %d: %d serial vs %d streamed traces", b.Day, len(traces), len(b.Traces))
		}
		for i := range traces {
			if traces[i].User != b.Traces[i].User {
				t.Fatalf("day %d trace %d: user %d vs %d", b.Day, i, traces[i].User, b.Traces[i].User)
			}
			sv, gv := traces[i].Visits, b.Traces[i].Visits
			if len(sv) != len(gv) {
				t.Fatalf("day %d user %d: %d vs %d visits", b.Day, traces[i].User, len(sv), len(gv))
			}
			for j := range sv {
				if sv[j] != gv[j] {
					t.Fatalf("day %d user %d visit %d: %v vs %v", b.Day, traces[i].User, j, sv[j], gv[j])
				}
			}
			// Mobility fold parity on a deterministic user sample (the
			// full fold over 100k users triples the test's wall clock
			// for no extra discrimination once visits match bit-for-bit).
			if i%37 == 0 {
				sm := merger.DayMetrics(&traces[i], d.Topology, core.DefaultTopN)
				gm := merger.DayMetrics(&b.Traces[i], d.Topology, core.DefaultTopN)
				if sm != gm {
					t.Fatalf("day %d user %d: mobility fold %+v vs %+v", b.Day, traces[i].User, sm, gm)
				}
			}
		}

		if len(cells) != len(b.Cells) {
			t.Fatalf("day %d: %d serial vs %d streamed cells", b.Day, len(cells), len(b.Cells))
		}
		for i := range cells {
			if cells[i] != b.Cells[i] {
				t.Fatalf("day %d cell %d: %+v vs %+v", b.Day, cells[i].Cell, cells[i], b.Cells[i])
			}
		}
		b.Release()
		days++
	}
	if want := int(limit - first); days != want {
		t.Fatalf("streamed %d days, want %d", days, want)
	}
}

// TestScaleAllocPinsMediumRung re-pins the zero-allocation guarantees
// of the per-day hot path at the 100k rung: arena reuse that only holds
// at the tuned 8k working size would be a silent O(users·days)
// regression at scale.
func TestScaleAllocPinsMediumRung(t *testing.T) {
	d := scaleDataset(t)
	days := []timegrid.SimDay{
		timegrid.SimDay(timegrid.StudyDayOffset + 10),
		timegrid.SimDay(timegrid.StudyDayOffset + 15), // weekend
		timegrid.SimDay(timegrid.StudyDayOffset + 40),
	}
	buf := mobsim.NewDayBuffer()
	for _, day := range days {
		d.Sim.DayInto(buf, day)
	}
	i := 0
	if allocs := testing.AllocsPerRun(len(days), func() {
		d.Sim.DayInto(buf, days[i%len(days)])
		i++
	}); allocs > 0 {
		t.Errorf("DayInto allocates %.1f times per 100k-user day in steady state, want 0", allocs)
	}

	traces := d.Sim.DayInto(buf, days[0])
	var cells []traffic.CellDay
	cells = d.Engine.DayAppend(cells, days[0], traces)
	if allocs := testing.AllocsPerRun(3, func() {
		cells = d.Engine.DayAppend(cells[:0], days[0], traces)
	}); allocs > 0 {
		t.Errorf("DayAppend allocates %.1f times per 100k-user day in steady state, want 0", allocs)
	}
}

// liveHeap returns the post-GC live heap.
func liveHeap() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// TestBytesPerUserBudget measures the marginal heap cost of a
// subscriber between two ladder rungs — (live(ScaleMedium stack) −
// live(ScaleSmall stack)) / (ScaleMedium − ScaleSmall), which cancels
// the scale-independent world (census, topology, scenario) that
// dominates small rungs — and fails if it exceeds the documented
// budget with 20% headroom.
func TestBytesPerUserBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("ladder rung builds skipped in -short mode")
	}
	build := func(users int) *experiments.Dataset {
		cfg := experiments.DefaultConfig()
		cfg.TargetUsers = users
		return experiments.NewDataset(cfg)
	}
	base := liveHeap()
	small := build(popsim.ScaleSmall)
	afterSmall := liveHeap()
	medium := build(popsim.ScaleMedium)
	afterMedium := liveHeap()
	runtime.KeepAlive(small)
	runtime.KeepAlive(medium)

	smallBytes := afterSmall - base
	marginal := float64(afterMedium-afterSmall) / float64(popsim.ScaleMedium-popsim.ScaleSmall)
	t.Logf("rung %d: %d bytes live; marginal %.0f bytes/user (budget %d, headroom 20%%)",
		popsim.ScaleSmall, smallBytes, marginal, scaleBytesPerUserBudget)
	if limit := float64(scaleBytesPerUserBudget) * 1.2; marginal > limit {
		t.Errorf("marginal heap cost %.0f bytes/user exceeds the documented budget %d +20%% (%.0f); "+
			"update PERFORMANCE.md (\"Scale ladder\") only with a justification",
			marginal, scaleBytesPerUserBudget, limit)
	}
}
