// Command ablate runs the design-choice ablations called out in
// DESIGN.md §5 and prints how each knob moves the headline results:
//
//   - scenario: registry timelines (default-covid, no-pandemic,
//     early-lockdown) compared on the sweep runner
//   - interconnect: headroom sweep for the voice-loss incident
//   - topn: the per-user tower filter (5/10/20/∞)
//   - nights: the home-detection minimum-nights rule
//   - offload: the WiFi-offload depth driving the DL volume drop
//
// Every ablation shares one World (census + topology + population,
// built once); each then instantiates whatever per-scenario or
// per-parameter stack it needs on top.
//
// -share-prefix (default on) runs the scenario ablation
// copy-on-divergence: shared scenario prefixes are simulated once and
// forked at the divergence day (bit-identical output, see
// PERFORMANCE.md, "Copy-on-divergence sweeps").
//
// Usage:
//
//	ablate [-which all|scenario|interconnect|topn|nights|offload] [-users N]
//	       [-share-prefix=BOOL] [-cpuprofile F] [-memprofile F]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mobsim"
	"repro/internal/prof"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func main() {
	var (
		which       = flag.String("which", "all", "ablation to run")
		users       = flag.Int("users", 4000, "synthetic users")
		seed        = flag.Uint64("seed", 42, "random seed")
		sharePrefix = flag.Bool("share-prefix", true, "simulate shared scenario prefixes once and fork at the divergence day (scenario ablation; bit-identical output)")
		pf          = prof.Flags()
	)
	flag.Parse()

	err := pf.Run(func() error {
		cfg := experiments.DefaultConfig()
		cfg.TargetUsers = *users
		cfg.Seed = *seed
		world := experiments.NewWorld(cfg)

		run := func(name string, fn func(*experiments.World)) {
			if *which == "all" || strings.EqualFold(*which, name) {
				fmt.Printf("=== ablation: %s ===\n", name)
				fn(world)
				fmt.Println()
			}
		}
		run("scenario", func(w *experiments.World) { ablateScenario(w, *sharePrefix) })
		run("interconnect", ablateInterconnect)
		run("topn", ablateTopN)
		run("nights", ablateNights)
		run("offload", ablateOffload)
		return nil
	})
	cli.Exit("ablate", err)
}

// ablateScenario compares counterfactual timelines on the parallel
// sweep runner: the shared world, up to two scenarios in flight at a
// time (each streaming run kept single-worker so the goroutine budget
// stays bounded), the headline statistics extracted by
// experiments.Headlines, and every timeline differenced against the
// no-pandemic baseline. sharePrefix runs it copy-on-divergence
// (bit-identical output, shared prefixes simulated once).
func ablateScenario(w *experiments.World, sharePrefix bool) {
	cfg := experiments.DefaultConfig()
	cfg.SkipKPI = true
	var scens []experiments.SweepScenario
	for _, name := range []string{scenario.DefaultCovid, scenario.NoPandemic, scenario.EarlyLockdown} {
		s, err := scenario.Load(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		scens = append(scens, experiments.SweepScenario{Name: name, Scenario: s})
	}
	runs, err := experiments.RunSweepParallelOpts(context.Background(), w, cfg, stream.Config{Workers: 1}, scens,
		experiments.SweepOptions{Parallel: 2, SharePrefix: sharePrefix})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	for _, run := range runs {
		for _, h := range run.Headlines {
			if h.Name == "gyration trough Δ%" {
				fmt.Printf("  %-22s gyration trough %+.1f%%\n", run.Name, h.Value)
			}
		}
	}
	delta, err := experiments.DeltaTable(runs, scenario.NoPandemic)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	for _, label := range []string{"gyration mean Δ%", "gyration trough shift (days)"} {
		if row, ok := delta.Row(label); ok {
			fmt.Printf("  vs %s: %s:", scenario.NoPandemic, label)
			for i, name := range delta.ColNames {
				fmt.Printf(" %s %+.1f", name, row.Values[i])
			}
			fmt.Println()
		}
	}
}

// mobilityStack instantiates the default scenario without the traffic
// engine, for ablations that only need traces.
func mobilityStack(w *experiments.World) *experiments.Dataset {
	return w.Instantiate(experiments.Config{SkipKPI: true})
}

func ablateInterconnect(w *experiments.World) {
	d := mobilityStack(w)
	day := timegrid.StudyDay(17).ToSimDay() // mid week 11 surge
	traces := d.Sim.Day(day)
	baseDay := timegrid.StudyDay(2).ToSimDay()
	baseTraces := d.Sim.Day(baseDay)
	for _, headroom := range []float64{0.9, 1.0, 1.2, 1.5, 2.0, 3.0} {
		params := traffic.DefaultParams()
		params.InterconnectHeadroom = headroom
		eng := traffic.NewEngine(d.Pop, d.Scenario, params, d.Config.Seed)
		base := meanLoss(eng.Day(baseDay, baseTraces))
		surge := meanLoss(eng.Day(day, traces))
		fmt.Printf("  headroom %.1f×: DL voice loss %+.0f%% vs baseline\n",
			headroom, stats.DeltaPercent(surge, base))
	}
}

func meanLoss(cells []traffic.CellDay) float64 {
	var s float64
	for i := range cells {
		s += cells[i].Values[traffic.VoiceDLLoss]
	}
	return s / float64(len(cells))
}

func ablateTopN(w *experiments.World) {
	d := mobilityStack(w)
	day := timegrid.StudyDay(2).ToSimDay()
	traces := d.Sim.Day(day)
	for _, n := range []int{5, 10, 20, 0} {
		var e, g stats.Accumulator
		for i := range traces {
			m := core.ComputeDayMetrics(&traces[i], d.Topology, n)
			e.Add(m.Entropy)
			g.Add(m.Gyration)
		}
		label := fmt.Sprintf("top-%d", n)
		if n == 0 {
			label = "unfiltered"
		}
		fmt.Printf("  %-11s mean entropy %.4f, mean gyration %.3f km\n", label, e.Mean(), g.Mean())
	}
}

func ablateNights(w *experiments.World) {
	d := mobilityStack(w)
	// One February of traces, reused across thresholds.
	cached := cacheFebruary(d)
	for _, nights := range []int{7, 14, 21, 28} {
		hd := core.NewHomeDetector(d.Topology)
		hd.MinNights = nights
		for day, tr := range cached {
			hd.ConsumeDay(day, tr)
		}
		homes := hd.Detect()
		scale := float64(len(d.Pop.Native())) / float64(d.Model.TotalPopulation())
		v, err := core.ValidateAgainstCensus(homes, d.Model, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("  min %2d nights: %5d homes (%.0f%% of users), census r² %.3f\n",
			nights, len(homes), 100*float64(len(homes))/float64(len(d.Pop.Native())), v.Fit.R2)
	}
}

func cacheFebruary(d *experiments.Dataset) map[timegrid.SimDay][]mobsim.DayTrace {
	out := make(map[timegrid.SimDay][]mobsim.DayTrace, timegrid.FebruaryDays)
	for day := timegrid.SimDay(0); day < timegrid.FebruaryDays; day++ {
		out[day] = d.Sim.Day(day)
	}
	return out
}

func ablateOffload(w *experiments.World) {
	d := mobilityStack(w)
	baseDay := timegrid.StudyDay(2).ToSimDay()
	lockDay := timegrid.StudyDay(38).ToSimDay()
	baseTraces := d.Sim.Day(baseDay)
	lockTraces := d.Sim.Day(lockDay)
	for _, share := range []float64{0.35, 0.52, 0.70, 0.90} {
		params := traffic.DefaultParams()
		params.HomeCellularShare = share
		eng := traffic.NewEngine(d.Pop, d.Scenario, params, d.Config.Seed)
		base := sumDL(eng.Day(baseDay, baseTraces))
		lock := sumDL(eng.Day(lockDay, lockTraces))
		fmt.Printf("  home cellular share %.2f: lockdown DL volume %+.0f%% vs baseline\n",
			share, stats.DeltaPercent(lock, base))
	}
}

func sumDL(cells []traffic.CellDay) float64 {
	var s float64
	for i := range cells {
		s += cells[i].Values[traffic.DLVolume]
	}
	return s
}
