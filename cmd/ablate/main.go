// Command ablate runs the design-choice ablations called out in
// DESIGN.md §5 and prints how each knob moves the headline results:
//
//   - scenario: default COVID scenario vs the no-pandemic null
//   - interconnect: headroom sweep for the voice-loss incident
//   - topn: the per-user tower filter (5/10/20/∞)
//   - nights: the home-detection minimum-nights rule
//   - offload: the WiFi-offload depth driving the DL volume drop
//
// Usage:
//
//	ablate [-which all|scenario|interconnect|topn|nights|offload] [-users N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func main() {
	var (
		which = flag.String("which", "all", "ablation to run")
		users = flag.Int("users", 4000, "synthetic users")
		seed  = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	run := func(name string, fn func(int, uint64)) {
		if *which == "all" || strings.EqualFold(*which, name) {
			fmt.Printf("=== ablation: %s ===\n", name)
			fn(*users, *seed)
			fmt.Println()
		}
	}
	run("scenario", ablateScenario)
	run("interconnect", ablateInterconnect)
	run("topn", ablateTopN)
	run("nights", ablateNights)
	run("offload", ablateOffload)
}

// gyrTrough runs a mobility-only pipeline and returns the weekly
// gyration trough (Δ% vs week 9).
func gyrTrough(users int, seed uint64, scen *pandemic.Scenario) float64 {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	cfg.Scenario = scen
	cfg.SkipKPI = true
	r := experiments.RunStandard(cfg)
	s := r.Mobility.NationalSeries(core.MetricGyration)
	w := core.DeltaSeries(s, stats.Mean(s.Values[:7])).WeeklyMeans()
	min, _ := w.Min()
	return min
}

func ablateScenario(users int, seed uint64) {
	fmt.Printf("  %-22s gyration trough %+.1f%%\n", "default COVID scenario", gyrTrough(users, seed, nil))
	fmt.Printf("  %-22s gyration trough %+.1f%%\n", "no-pandemic null", gyrTrough(users, seed, pandemic.NoPandemic()))
	early, err := pandemic.NewBuilder().
		Activity(0, 1).
		Activity(7, 0.5). // a lockdown two weeks earlier
		Activity(21, 0.42).
		Activity(76, 0.48).
		Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("  %-22s gyration trough %+.1f%%\n", "lockdown 2 weeks early", gyrTrough(users, seed, early))
}

func ablateInterconnect(users int, seed uint64) {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	d := experiments.NewDataset(cfg)
	day := timegrid.StudyDay(17).ToSimDay() // mid week 11 surge
	traces := d.Sim.Day(day)
	baseDay := timegrid.StudyDay(2).ToSimDay()
	baseTraces := d.Sim.Day(baseDay)
	for _, headroom := range []float64{0.9, 1.0, 1.2, 1.5, 2.0, 3.0} {
		params := traffic.DefaultParams()
		params.InterconnectHeadroom = headroom
		eng := traffic.NewEngine(d.Pop, d.Scenario, params, cfg.Seed)
		base := meanLoss(eng.Day(baseDay, baseTraces))
		surge := meanLoss(eng.Day(day, traces))
		fmt.Printf("  headroom %.1f×: DL voice loss %+.0f%% vs baseline\n",
			headroom, stats.DeltaPercent(surge, base))
	}
}

func meanLoss(cells []traffic.CellDay) float64 {
	var s float64
	for i := range cells {
		s += cells[i].Values[traffic.VoiceDLLoss]
	}
	return s / float64(len(cells))
}

func ablateTopN(users int, seed uint64) {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	d := experiments.NewDataset(cfg)
	day := timegrid.StudyDay(2).ToSimDay()
	traces := d.Sim.Day(day)
	for _, n := range []int{5, 10, 20, 0} {
		var e, g stats.Accumulator
		for i := range traces {
			m := core.ComputeDayMetrics(&traces[i], d.Topology, n)
			e.Add(m.Entropy)
			g.Add(m.Gyration)
		}
		label := fmt.Sprintf("top-%d", n)
		if n == 0 {
			label = "unfiltered"
		}
		fmt.Printf("  %-11s mean entropy %.4f, mean gyration %.3f km\n", label, e.Mean(), g.Mean())
	}
}

func ablateNights(users int, seed uint64) {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	d := experiments.NewDataset(cfg)
	// One February of traces, reused across thresholds.
	cached := cacheFebruary(d)
	for _, nights := range []int{7, 14, 21, 28} {
		hd := core.NewHomeDetector(d.Topology)
		hd.MinNights = nights
		for day, tr := range cached {
			hd.ConsumeDay(day, tr)
		}
		homes := hd.Detect()
		scale := float64(len(d.Pop.Native())) / float64(d.Model.TotalPopulation())
		v, err := core.ValidateAgainstCensus(homes, d.Model, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("  min %2d nights: %5d homes (%.0f%% of users), census r² %.3f\n",
			nights, len(homes), 100*float64(len(homes))/float64(len(d.Pop.Native())), v.Fit.R2)
	}
}

func cacheFebruary(d *experiments.Dataset) map[timegrid.SimDay][]mobsim.DayTrace {
	out := make(map[timegrid.SimDay][]mobsim.DayTrace, timegrid.FebruaryDays)
	for day := timegrid.SimDay(0); day < timegrid.FebruaryDays; day++ {
		out[day] = d.Sim.Day(day)
	}
	return out
}

func ablateOffload(users int, seed uint64) {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	d := experiments.NewDataset(cfg)
	baseDay := timegrid.StudyDay(2).ToSimDay()
	lockDay := timegrid.StudyDay(38).ToSimDay()
	baseTraces := d.Sim.Day(baseDay)
	lockTraces := d.Sim.Day(lockDay)
	for _, share := range []float64{0.35, 0.52, 0.70, 0.90} {
		params := traffic.DefaultParams()
		params.HomeCellularShare = share
		eng := traffic.NewEngine(d.Pop, d.Scenario, params, cfg.Seed)
		base := sumDL(eng.Day(baseDay, baseTraces))
		lock := sumDL(eng.Day(lockDay, lockTraces))
		fmt.Printf("  home cellular share %.2f: lockdown DL volume %+.0f%% vs baseline\n",
			share, stats.DeltaPercent(lock, base))
	}
}

func sumDL(cells []traffic.CellDay) float64 {
	var s float64
	for i := range cells {
		s += cells[i].Values[traffic.DLVolume]
	}
	return s
}
