// Command feedconv re-encodes and partitions replayable feed
// directories (the layout `mnosim -raw` writes and `mnostream -feeds`
// replays).
//
// Conversion re-encodes the trace and KPI feeds day by day between the
// CSV format and the columnar binary day-block format
// (internal/feeds/colfmt; several times faster to replay and a fraction
// of the size). The input encoding of each file is auto-detected by
// magic bytes, so either direction works, and CSV → col → CSV is
// lossless byte for byte. The event feed stays CSV and is copied
// verbatim; the meta sidecar is carried over with its format columns
// refreshed.
//
// Partitioning (-partition N) splits the directory into N shard
// directories out/shard-00 … shard-NN by contiguous user ID range
// (always columnar), each with its own meta sidecar recording the
// partition coordinates. Replay each shard in its own process with
// `mnostream -feeds SHARD -partial FILE` and fold the partials with
// `feedmerge`; the merged result is bit-identical to a single-process
// replay of the unsplit directory.
//
// Corrupt input rows/blocks abort the run with file:offset context by
// default; -lenient skips them (reported on stderr) instead. Exit
// codes: 0 success, 1 runtime failure, 2 bad usage.
//
// Usage:
//
//	feedconv -in DIR -out DIR [-format csv|col]
//	feedconv -in DIR -out DIR -partition N
//	         [-lenient] [-cpuprofile F] [-memprofile F]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/feeds"
	"repro/internal/prof"
)

func main() {
	var (
		in        = flag.String("in", "", "input feed directory (required)")
		out       = flag.String("out", "", "output directory (required)")
		format    = flag.String("format", feeds.FormatCol, "target encoding for conversion: csv or col")
		partition = flag.Int("partition", 0, "split into N user-range shard directories instead of converting")
		lenient   = flag.Bool("lenient", false, "skip corrupt input rows/blocks (reported on stderr) instead of failing")
		pf        = prof.Flags()
	)
	flag.Parse()

	err := pf.Run(func() error {
		return run(*in, *out, *format, *partition, *lenient)
	})
	cli.Exit("feedconv", err)
}

func run(in, out, format string, partition int, lenient bool) error {
	if in == "" || out == "" {
		return cli.Usagef("-in and -out are required")
	}
	if partition < 0 {
		return cli.Usagef("-partition %d: want a positive shard count", partition)
	}
	skipped := 0
	opt := feeds.Options{Lenient: lenient}
	if lenient {
		opt.OnSkip = func(name string, line int, err error) {
			skipped++
			fmt.Fprintf(os.Stderr, "feedconv: skipping corrupt input %s:%d: %v\n", name, line, err)
		}
	}

	if partition > 0 {
		metas, err := feeds.PartitionDir(in, out, partition, opt)
		if err != nil {
			return err
		}
		for s, m := range metas {
			fmt.Fprintf(os.Stderr, "feedconv: %s: users %d-%d\n", feeds.ShardDirName(s), m.UserLo, m.UserHi)
		}
	} else {
		if err := feeds.ConvertDir(in, out, format, opt); err != nil {
			return err
		}
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "feedconv: skipped %d corrupt input rows\n", skipped)
	}
	return nil
}
