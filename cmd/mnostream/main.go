// Command mnostream runs the sharded streaming analytics engine over the
// MNO feeds and emits one rolling summary line per simulated day: active
// users, national mobility averages (§2.3), sketch-estimated KPI medians
// (§2.4) and control-plane totals (§2.2).
//
// Two input modes:
//
//	mnostream -feeds ./data [...]   replay a feed directory written by
//	                                `mnosim -raw` (traces.csv required;
//	                                kpi.csv / events.csv used if present).
//	                                Pass the same -users/-seed the feeds
//	                                were generated with: feeds carry tower
//	                                and user IDs that are only meaningful
//	                                relative to that synthetic stack.
//	mnostream [...]                 run the simulator inline (KPI engine
//	                                and control-plane generation included)
//	                                and stream it straight into analytics.
//
// Multi-process sweeps: -partial FILE additionally serializes the
// replay's mergeable aggregates (internal/partial JSON). Split a feed
// directory into user-range shards with `feedconv -partition N`, replay
// each shard in its own process with -partial, then fold the files with
// `feedmerge`: the merged table is bit-identical to a single-process
// replay of the whole directory (KPI sketch merges are exact; mobility
// is re-folded in user order).
//
// Engine sizing: -workers bounds the goroutines producing days and
// running shard tasks, -shards the logical partitions. Summaries do not
// depend on -workers, and the figure-grade pipeline behind
// experiments.RunStreaming is bit-identical to the serial pipeline at
// any of these settings. -engineshards additionally parallelizes the
// KPI engine *within* each inline day (traffic.Engine.DayAppendSharded):
// records stay a pure function of the stack and the shard count, but
// differ from the serial engine in float association (≤1e-9 relative).
//
// In inline mode -scenario selects the behavioural scenario (a registry
// name — see `mnosweep -list` — or a JSON spec file). In -feeds mode the
// scenario is already baked into the replayed traces, so the flag is
// rejected; the feed's own scenario is recorded in its meta sidecar.
//
// Reliability (see RELIABILITY.md): corrupt feed rows abort a replay
// with file:line context by default; -lenient skips them instead,
// reporting each on stderr and the total at exit (still exit 0).
// SIGINT/SIGTERM cancels the run but still flushes the -metrics-out
// snapshot before exiting 130. -fault arms the deterministic fault
// harness (site:kind:key rules, internal/fault) for chaos drills.
// Exit codes: 0 success, 1 runtime failure, 2 bad usage, 130
// interrupted.
//
// Observability: -metrics ADDR serves the live metric registry and
// net/http/pprof while the run is in flight, -metrics-out FILE writes
// the end-of-run snapshot (obs/v1 JSON, diffable with `benchdiff -obs`);
// either flag also prints the human metric table at exit. See
// PERFORMANCE.md, "Observability".
//
// Usage:
//
//	mnostream [-feeds DIR] [-lenient] [-partial FILE] [-users N] [-seed S]
//	          [-scenario NAME|FILE.json]
//	          [-workers W] [-shards K] [-engineshards E] [-days D]
//	          [-fault SPEC] [-metrics ADDR] [-metrics-out FILE]
//	          [-cpuprofile F] [-memprofile F]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/feeds"
	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/partial"
	"repro/internal/popsim"
	"repro/internal/scenario"
	"repro/internal/signaling"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func main() {
	var (
		feedDir   = flag.String("feeds", "", "feed directory to replay (empty: run the simulator inline)")
		lenient   = flag.Bool("lenient", false, "skip corrupt feed rows (reported on stderr) instead of failing the replay")
		users     = flag.Int("users", popsim.ScaleSmall, "synthetic native smartphone users (must match the feed's value in -feeds mode)")
		seed      = flag.Uint64("seed", 42, "master random seed (must match the feed's value in -feeds mode)")
		scen      = flag.String("scenario", "", "behavioural scenario for inline mode: registry name or JSON spec file (empty: the calibrated default)")
		workers   = flag.Int("workers", 0, "worker goroutines (0: GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "logical shards (0: default)")
		engShards = flag.Int("engineshards", 0, "intra-day KPI accumulation shards in inline mode (<=1: serial engine; sharded records differ from serial only in float association, <=1e-9 relative)")
		days      = flag.Int("days", timegrid.SimDays, "days to stream in inline mode")
		noSig      = flag.Bool("nosignaling", false, "skip control-plane generation in inline mode")
		faultSpec  = flag.String("fault", "", "deterministic fault injection spec: site:kind:key[:delay][,...] (see internal/fault)")
		partialOut = flag.String("partial", "", "write the replay's mergeable partial (internal/partial JSON) to FILE; -feeds mode only — merge shard partials with feedmerge")
		of         = obs.Flags()
	)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	err := of.Run(func() error {
		return run(ctx, *feedDir, *lenient, *users, *seed, *scen, *workers, *shards, *engShards, *days, !*noSig, *faultSpec, *partialOut, of.Registry())
	})
	cli.Exit("mnostream", err)
}

func run(ctx context.Context, feedDir string, lenient bool, users int, seed uint64, scenName string, workers, shards, engShards, days int, withSignaling bool, faultSpec, partialOut string, reg *obs.Registry) error {
	fi, err := fault.ParseSpec(faultSpec)
	if err != nil {
		return cli.Usagef("%w", err)
	}
	scfg := stream.Config{Workers: workers, Shards: shards, EngineShards: engShards, Metrics: reg, Fault: fi}.WithDefaults()

	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	if feedDir != "" {
		cfg.SkipKPI = true // KPI records come from the feed, if at all
		if scenName != "" {
			return cli.Usagef("-scenario only applies to inline mode; the feed in %s was generated under its own scenario", feedDir)
		}
		if engShards > 1 {
			return cli.Usagef("-engineshards only applies to inline mode; the feed in %s carries prebuilt KPI records", feedDir)
		}
	} else if scenName != "" {
		s, err := scenario.Load(scenName)
		if err != nil {
			return cli.Usagef("%w", err)
		}
		cfg.Scenario = s
	}
	if lenient && feedDir == "" {
		return cli.Usagef("-lenient only applies to -feeds mode; inline simulation has no corrupt rows to skip")
	}
	if partialOut != "" && feedDir == "" {
		return cli.Usagef("-partial only applies to -feeds mode; it serializes a replay for feedmerge")
	}
	d := experiments.NewDataset(cfg)

	eng := stream.NewEngine(scfg)
	mob := stream.NewRollingMobility(d.Topology, cfg.TopN, scfg.Shards)
	kpi := stream.NewKPIMedians(scfg.Shards)
	eng.AddTraceSharder(mob)
	eng.AddKPISharder(kpi)

	gen := signaling.NewGenerator(d.Pop, cfg.Seed)
	var sig *stream.Signaling
	var src stream.Source
	var fs *feeds.FeedSource
	var writePartial func() error
	switch {
	case feedDir != "":
		meta, ok, err := feeds.ReadMeta(feedDir)
		if err != nil {
			return err
		}
		if ok && (meta.Users != users || meta.Seed != seed) {
			return cli.Usagef("feed directory was generated with -users %d -seed %d (got -users %d -seed %d); IDs in the feeds are only meaningful relative to that stack",
				meta.Users, meta.Seed, users, seed)
		}
		if !ok {
			meta = feeds.Meta{Users: users, Seed: seed}
		}
		if partialOut != "" {
			rec := partial.NewRecorder(d.Topology, cfg.TopN, meta)
			eng.AddTraceConsumer(rec.Traces())
			eng.AddKPIConsumer(rec.KPI())
			eng.AddEventSharder(rec.Events())
			writePartial = func() error { return partial.WriteFile(partialOut, rec.Partial()) }
		}
		// Skipped-row accounting: every lenient skip is reported as it
		// happens and counted (feeds.skipped_rows when metrics are on).
		var skipCounter *obs.Counter
		if reg != nil {
			skipCounter = reg.Counter("feeds.skipped_rows")
		}
		opt := feeds.Options{Lenient: lenient}
		if lenient {
			opt.OnSkip = func(name string, line int, err error) {
				skipCounter.Inc()
				fmt.Fprintf(os.Stderr, "mnostream: skipping corrupt row %s:%d: %v\n", name, line, err)
			}
		}
		fs, err = feeds.OpenDirOpts(feedDir, opt)
		if err != nil {
			return err
		}
		defer fs.Close()
		fs.WithFault(fi)
		sig = stream.NewSignaling(gen, d.Topology, scfg.Shards, false)
		eng.AddEventSharder(sig.Events())
		src = stream.Prefetch(fs, scfg.Buffer)
	default:
		if withSignaling {
			sig = stream.NewSignaling(gen, d.Topology, scfg.Shards, true)
			eng.AddTraceSharder(sig)
		}
		limit := timegrid.SimDay(days)
		if limit > timegrid.SimDays {
			limit = timegrid.SimDays
		}
		src = stream.NewSimSource(ctx, d.Sim, d.Engine, 0, limit, scfg)
	}

	p := &printer{mob: mob, kpi: kpi, sig: sig, start: time.Now()}
	eng.AddTraceConsumer(p)

	fmt.Println("date        day users  entropy gyr_km  cells dl_med_mb conn_med  events   fail_pct")
	if err := eng.Run(ctx, src); err != nil {
		// The partial summary still matters on an interrupt: report how
		// far the stream got before handing the error (and its exit
		// code) back. The obs wrapper flushes -metrics-out either way.
		fmt.Fprintf(os.Stderr, "mnostream: stopped after %d days: %v\n", p.daysDone, err)
		return err
	}
	if fs != nil && fs.Skipped() > 0 {
		fmt.Fprintf(os.Stderr, "mnostream: skipped %d corrupt feed rows\n", fs.Skipped())
	}
	if writePartial != nil {
		if err := writePartial(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mnostream: partial written to %s\n", partialOut)
	}
	fmt.Fprintf(os.Stderr, "mnostream: %d days in %v (%d workers, %d shards)\n",
		p.daysDone, time.Since(p.start).Round(time.Millisecond), scfg.Workers, scfg.Shards)
	return nil
}

// printer is a serial merge-stage consumer that renders one summary line
// per day after every sharded stage has merged.
type printer struct {
	mob      *stream.RollingMobility
	kpi      *stream.KPIMedians
	sig      *stream.Signaling
	start    time.Time
	daysDone int

	prevEvents, prevFailures int64
}

// ConsumeDay implements stream.TraceConsumer; it runs after every
// sharded stage of the day has merged.
func (p *printer) ConsumeDay(day timegrid.SimDay, _ []mobsim.DayTrace) {
	p.daysDone++
	m := p.mob.Last()

	cells, dlMed, connMed := 0, 0.0, 0.0
	if k := p.kpi.Last(); k.Day == day {
		cells = k.Cells
		dlMed = k.Medians[traffic.DLVolume]
		connMed = k.Medians[traffic.ConnectedUsers]
	}

	var dayEvents int64
	failPct := 0.0
	if p.sig != nil {
		events, failures := p.sig.Totals()
		dayEvents = events - p.prevEvents
		if dayEvents > 0 {
			failPct = float64(failures-p.prevFailures) / float64(dayEvents) * 100
		}
		p.prevEvents, p.prevFailures = events, failures
	}

	fmt.Printf("%s %3d %6d %7.3f %6.2f %6d %9.2f %8.3f %8d %8.3f\n",
		timegrid.DateOfSimDay(day).Format("2006-01-02"), int(day), m.Users,
		m.AvgEntropy, m.AvgGyration, cells, dlMed, connMed, dayEvents, failPct)
}
