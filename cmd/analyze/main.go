// Command analyze re-runs the paper's mobility analysis from a
// persisted trace feed instead of re-simulating: the replay counterpart
// of `mnosim -raw`. The seed and user count MUST match the run that
// produced the feed — traces carry tower and user IDs that are only
// meaningful against the same synthetic UK build.
//
//	mnosim  -out data -users 4000 -seed 7 -raw
//	analyze -traces data/traces.csv -users 4000 -seed 7
//
// Corrupt feed rows abort the replay with file:line context by
// default; -lenient skips and reports them instead (still exit 0).
// Exit codes: 0 success, 1 runtime failure, 2 bad usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/feeds"
	"repro/internal/popsim"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

func main() {
	var (
		tracesPath = flag.String("traces", "", "trace feed CSV (from mnosim -raw)")
		users      = flag.Int("users", popsim.ScaleSmall, "user count of the original run")
		seed       = flag.Uint64("seed", 42, "seed of the original run")
		lenient    = flag.Bool("lenient", false, "skip corrupt feed rows (reported on stderr) instead of failing the replay")
	)
	flag.Parse()
	cli.Exit("analyze", run(*tracesPath, *users, *seed, *lenient))
}

func run(tracesPath string, users int, seed uint64, lenient bool) error {
	if tracesPath == "" {
		return cli.Usagef("-traces is required")
	}

	// Rebuild the identical stack (no simulation is run).
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	cfg.SkipKPI = true
	d := experiments.NewDataset(cfg)

	f, err := os.Open(tracesPath)
	if err != nil {
		return err
	}
	defer f.Close()
	opt := feeds.Options{Name: tracesPath, Lenient: lenient}
	if lenient {
		opt.OnSkip = func(name string, line int, err error) {
			fmt.Fprintf(os.Stderr, "analyze: skipping corrupt row %s:%d: %v\n", name, line, err)
		}
	}
	tr, err := feeds.NewTraceReaderOpts(f, opt)
	if err != nil {
		return err
	}

	hd := core.NewHomeDetector(d.Topology)
	mob := core.NewMobilityAnalyzer(d.Pop, cfg.TopN)
	days, err := experiments.ReplayTraces(tr, []experiments.DayConsumer{hd, mob})
	if err != nil {
		return err
	}
	if n := tr.Skipped(); n > 0 {
		fmt.Fprintf(os.Stderr, "analyze: skipped %d corrupt feed rows\n", n)
	}
	fmt.Fprintf(os.Stderr, "replayed %d days from %s\n\n", days, tracesPath)

	homes := hd.Detect()
	scale := float64(len(d.Pop.Native())) / float64(d.Model.TotalPopulation())
	if v, err := core.ValidateAgainstCensus(homes, d.Model, scale); err == nil {
		fmt.Printf("home detection: %d homes, census r² = %.3f\n\n", len(homes), v.Fit.R2)
	}

	gyr := mob.NationalSeries(core.MetricGyration)
	ent := mob.NationalSeries(core.MetricEntropy)
	t := stats.Table{Title: "national mobility, Δ% vs week 9 (weekly means)", ColNames: weekCols()}
	t.AddRow("gyration", core.DeltaSeries(gyr, stats.Mean(gyr.Values[:7])).WeeklyMeans().Values)
	t.AddRow("entropy", core.DeltaSeries(ent, stats.Mean(ent.Values[:7])).WeeklyMeans().Values)
	report.WriteTable(os.Stdout, &t)
	return nil
}

func weekCols() []string {
	out := make([]string, 0, timegrid.StudyWeeks)
	for _, w := range timegrid.Weeks() {
		out = append(out, fmt.Sprintf("w%d", int(w)))
	}
	return out
}
