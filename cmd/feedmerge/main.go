// Command feedmerge folds the mergeable partials written by
// `mnostream -partial` into the single-process result and prints the
// same per-day summary table mnostream prints.
//
// Pass either one partial (a whole-directory replay) or the complete
// shard set of one partitioned run (`feedconv -partition N`, one
// partial per shard, any order). The merge validates provenance, shard
// completeness and day alignment, then reproduces the single-process
// rows exactly: mobility averages are re-folded from the per-user
// metrics in user order (bit-identical), KPI medians come from exact
// quantile-sketch merges (bit-identical), control-plane totals are
// integer sums. Exit codes: 0 success, 1 runtime failure (including
// inconsistent partials), 2 bad usage.
//
// Usage:
//
//	feedmerge [-out FILE] PARTIAL.json...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/partial"
	"repro/internal/prof"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func main() {
	var (
		out = flag.String("out", "", "also write the merged table to FILE (same format as stdout)")
		pf  = prof.Flags()
	)
	flag.Parse()

	err := pf.Run(func() error {
		return run(flag.Args(), *out)
	})
	cli.Exit("feedmerge", err)
}

func run(paths []string, outPath string) error {
	if len(paths) == 0 {
		return cli.Usagef("no partial files given")
	}
	parts := make([]*partial.Partial, len(paths))
	for i, p := range paths {
		var err error
		if parts[i], err = partial.ReadFile(p); err != nil {
			return err
		}
	}
	res, err := partial.Merge(parts)
	if err != nil {
		return err
	}

	outs := []*os.File{os.Stdout}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		outs = append(outs, f)
	}
	for _, w := range outs {
		if err := render(w, res); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "feedmerge: merged %d partial(s), %d days\n", len(parts), len(res.Mobility))
	return nil
}

// render prints the merged per-day table in mnostream's format.
func render(w *os.File, res *partial.Result) error {
	if _, err := fmt.Fprintln(w, "date        day users  entropy gyr_km  cells dl_med_mb conn_med  events   fail_pct"); err != nil {
		return err
	}
	ki := 0
	for i, m := range res.Mobility {
		cells, dlMed, connMed := 0, 0.0, 0.0
		if ki < len(res.KPI) && res.KPI[ki].Day == m.Day {
			k := res.KPI[ki]
			cells, dlMed, connMed = k.Cells, k.Medians[traffic.DLVolume], k.Medians[traffic.ConnectedUsers]
			ki++
		}
		ev := res.Events[i]
		failPct := 0.0
		if ev.Events > 0 {
			failPct = float64(ev.Failures) / float64(ev.Events) * 100
		}
		_, err := fmt.Fprintf(w, "%s %3d %6d %7.3f %6.2f %6d %9.2f %8.3f %8d %8.3f\n",
			timegrid.DateOfSimDay(m.Day).Format("2006-01-02"), int(m.Day), m.Users,
			m.AvgEntropy, m.AvgGyration, cells, dlMed, connMed, ev.Events, failPct)
		if err != nil {
			return err
		}
	}
	return nil
}
