// Command calibrate runs the full pipeline at a small scale and prints
// the headline numbers of every paper result next to the paper's target,
// for calibrating the behavioural model. It is a development tool; the
// user-facing harness is cmd/figures.
package main

import (
	"fmt"
	"time"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	start := time.Now()
	cfg := experiments.DefaultConfig()
	r := experiments.RunStandard(cfg)
	fmt.Printf("pipeline: %v  towers=%d cells4G=%d users=%d homes=%d cohort=%d\n",
		time.Since(start).Round(time.Millisecond),
		len(r.Dataset.Topology.Towers), len(r.Dataset.Topology.Cells4G()),
		len(r.Dataset.Pop.Native()), len(r.Homes), r.Matrix.CohortSize())

	weekly := func(s stats.Series) []float64 {
		base := stats.Mean(s.Values[:7])
		return core.DeltaSeries(s, base).WeeklyMeans().Values
	}
	p := func(name string, xs []float64) {
		fmt.Printf("%-34s", name)
		for _, x := range xs {
			fmt.Printf("%7.1f", x)
		}
		fmt.Println()
	}
	fmt.Println("\n--- weeks:                            9     10     11     12     13     14     15     16     17     18     19")
	gyr := r.Mobility.NationalSeries(core.MetricGyration)
	ent := r.Mobility.NationalSeries(core.MetricEntropy)
	p("national gyration Δ% (tgt w12 -20, w13 -50)", weekly(gyr))
	p("national entropy Δ% (smaller drop)", weekly(ent))

	for _, name := range census.FocusRegionNames() {
		c, _ := r.Dataset.Model.CountyByName(name)
		p("gyr "+name, weekly(r.Mobility.CountySeries(c, core.MetricGyration)))
	}
	for _, cl := range census.Clusters() {
		p("gyr "+cl.Name(), weekly(r.Mobility.ClusterSeries(cl, core.MetricGyration)))
	}

	fmt.Println()
	wk := func(s stats.Series) []float64 { return core.WeeklyDeltaSeries(s).Values }
	kpi := r.KPI
	p("UK DL vol (tgt +8 w10, -24 w17)", wk(kpi.NationalSeries(traffic.DLVolume)))
	p("UK UL vol (tgt -7..+1.5)", wk(kpi.NationalSeries(traffic.ULVolume)))
	p("UK DL active (tgt -28.6 w19)", wk(kpi.NationalSeries(traffic.DLActiveUsers)))
	p("UK thr (tgt >= -10)", wk(kpi.NationalSeries(traffic.DLThroughput)))
	p("UK load (tgt -15.1 w16)", wk(kpi.NationalSeries(traffic.RadioLoad)))
	p("UK voice vol (tgt +140 w12)", wk(kpi.NationalSeries(traffic.VoiceVolume)))
	p("UK voice DL loss (tgt >+100 w10-11)", wk(kpi.NationalSeries(traffic.VoiceDLLoss)))
	p("UK voice UL loss (decrease)", wk(kpi.NationalSeries(traffic.VoiceULLoss)))

	inner, _ := r.Dataset.Model.CountyByName("Inner London")
	outer, _ := r.Dataset.Model.CountyByName("Outer London")
	p("InnerLondon DL (tgt -41)", wk(kpi.CountySeries(inner, traffic.DLVolume)))
	p("OuterLondon DL (tgt -15)", wk(kpi.CountySeries(outer, traffic.DLVolume)))
	p("InnerLondon UL (tgt -22 w14)", wk(kpi.CountySeries(inner, traffic.ULVolume)))
	p("OuterLondon UL (tgt +17 w14)", wk(kpi.CountySeries(outer, traffic.ULVolume)))

	p("Cosmo DL vol (sharp drop)", wk(kpi.ClusterSeries(census.Cosmopolitans, traffic.DLVolume)))
	p("Rural DL vol (stable)", wk(kpi.ClusterSeries(census.RuralResidents, traffic.DLVolume)))
	p("Cosmo users (tgt -50)", wk(kpi.ClusterSeries(census.Cosmopolitans, traffic.ConnectedUsers)))

	fmt.Println("\ncorrelations users~DLvol (tgt: Cosmo +.97 EthC +.82 Rural +.30 Suburb -.47):")
	for _, cl := range []census.Cluster{census.Cosmopolitans, census.EthnicityCentral, census.RuralResidents, census.Suburbanites} {
		fmt.Printf("  %-28s %+.3f\n", cl.Name(), kpi.UsersVolumeCorrelation(cl))
	}

	// London districts (Fig 11).
	for _, code := range []string{"EC", "WC", "N", "SW"} {
		d, _ := r.Dataset.Model.DistrictByCode(code)
		p("London "+code+" DL", wk(kpi.DistrictSeries(d, traffic.DLVolume)))
	}
	nd, _ := r.Dataset.Model.DistrictByCode("N")
	p("London N DLusers (tgt +10..23 w10-14)", wk(kpi.DistrictSeries(nd, traffic.DLActiveUsers)))

	// Fig 2 validation.
	val, err := core.ValidateAgainstCensus(r.Homes, r.Dataset.Model, float64(len(r.Dataset.Pop.Native()))/float64(r.Dataset.Model.TotalPopulation()))
	fmt.Printf("\nFig2 home-detect r2=%.3f (tgt 0.955) err=%v homes=%d\n", val.Fit.R2, err, len(r.Homes))

	// Fig 7 matrix headline: Inner London residents present at home.
	home := r.Matrix.HomePresenceSeries()
	base := stats.Mean(home.Values[:7])
	hw := core.DeltaSeries(home, base).WeeklyMeans()
	p("IL residents at home (tgt -10 w13+)", hw.Values)
	for _, c := range r.Matrix.TopDestinations(5) {
		pres := r.Matrix.PresenceSeries(c)
		b := stats.Mean(pres.Values[:7])
		p("IL pres in "+c.Name, core.DeltaSeries(pres, b).WeeklyMeans().Values)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}
