package main

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/experiments"
)

func testHeader() journalHeader {
	return journalHeader{
		V: journalVersion, Kind: "mnosweep-journal",
		Users: 600, Seed: 42, NoKPI: true,
		Scenarios: []string{"default-covid", "no-pandemic"},
	}
}

func testHeadlines(base float64) []experiments.Headline {
	// Deliberately awkward floats: the journal round-trip must preserve
	// them bit for bit (the byte-identical resume table depends on it).
	return []experiments.Headline{
		{Name: "gyration drop", Value: base + 0.1 + 0.2},
		{Name: "entropy drop", Value: base * 1e-17},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	hdr := testHeader()
	j, done, err := openJournal(path, hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	if done != nil {
		t.Fatal("fresh journal reports completed runs")
	}
	ok := experiments.SweepRun{Name: "default-covid", Headlines: testHeadlines(3)}
	failed := experiments.SweepRun{Name: "no-pandemic", Err: errors.New("injected")}
	if err := j.record(ok); err != nil {
		t.Fatal(err)
	}
	if err := j.record(failed); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	gotHdr, entries, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !headerMatches(gotHdr, hdr) {
		t.Fatalf("header mismatch after round-trip: %+v vs %+v", gotHdr, hdr)
	}
	if len(entries) != 1 {
		t.Fatalf("journal has %d entries, want 1 (failed runs never journaled)", len(entries))
	}
	if !reflect.DeepEqual(entries["default-covid"], ok.Headlines) {
		t.Fatalf("headlines drifted through the journal:\nwant %+v\n got %+v", ok.Headlines, entries["default-covid"])
	}
}

func TestJournalResumeAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	hdr := testHeader()
	j, _, err := openJournal(path, hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	j.record(experiments.SweepRun{Name: "default-covid", Headlines: testHeadlines(1)})
	j.Close()

	j2, done, err := openJournal(path, hdr, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done["default-covid"] == nil {
		t.Fatalf("resume found %d completed runs, want default-covid", len(done))
	}
	j2.record(experiments.SweepRun{Name: "no-pandemic", Headlines: testHeadlines(2)})
	j2.Close()

	_, entries, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("after resumed append: %d entries, want 2", len(entries))
	}
}

func TestJournalRefusesForeignHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, err := openJournal(path, testHeader(), false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	for _, mutate := range []func(*journalHeader){
		func(h *journalHeader) { h.Users = 601 },
		func(h *journalHeader) { h.Seed = 43 },
		func(h *journalHeader) { h.NoKPI = false },
		func(h *journalHeader) { h.Scenarios = []string{"no-pandemic", "default-covid"} }, // order matters
		func(h *journalHeader) { h.Scenarios = h.Scenarios[:1] },
	} {
		hdr := testHeader()
		mutate(&hdr)
		if _, _, err := openJournal(path, hdr, true); err == nil {
			t.Errorf("resume accepted a journal from a different sweep: %+v", hdr)
		}
	}
}

func TestJournalResumeMissingFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, done, err := openJournal(path, testHeader(), true)
	if err != nil {
		t.Fatalf("resume with no journal: %v", err)
	}
	if done != nil {
		t.Fatal("missing journal reports completed runs")
	}
	j.Close()
	if _, _, err := readJournal(path); err != nil {
		t.Fatalf("fresh journal written by resume is unreadable: %v", err)
	}
}

func TestJournalDropsTornTailLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	hdr := testHeader()
	j, _, err := openJournal(path, hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	j.record(experiments.SweepRun{Name: "default-covid", Headlines: testHeadlines(1)})
	j.Close()
	// Simulate a writer killed mid-line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"run":"no-pandemic","headl`)
	f.Close()

	_, entries, err := readJournal(path)
	if err != nil {
		t.Fatalf("torn tail made the journal unreadable: %v", err)
	}
	if len(entries) != 1 || entries["no-pandemic"] != nil {
		t.Fatalf("torn entry surfaced: %+v", entries)
	}
	// And resume still works — the torn run is simply re-run.
	j2, done, err := openJournal(path, hdr, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(done) != 1 {
		t.Fatalf("resume after torn tail: %d done, want 1", len(done))
	}
}

func TestJournalRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	os.WriteFile(path, []byte(`{"v":99,"kind":"mnosweep-journal"}`+"\n"), 0o644)
	if _, _, err := readJournal(path); err == nil {
		t.Fatal("future journal version accepted")
	}
	os.WriteFile(path, []byte("not json\n"), 0o644)
	if _, _, err := readJournal(path); err == nil {
		t.Fatal("garbage header accepted")
	}
}
