// Command mnosweep runs several behavioural scenarios over one shared
// world — the census model, radio topology and synthesized population
// are built exactly once — and prints a headline comparison table, one
// column per scenario. Each scenario streams through the sharded
// engine (internal/stream) with recycled day buffers, so a sweep of N
// scenarios costs one world build plus N streaming passes.
//
// Scenario sets are comma-separated registry names and/or JSON spec
// files (the SCENARIOS.md schema); "all" expands to every registry
// built-in.
//
// -parallel N executes up to N scenario runs concurrently
// (experiments.RunSweepParallel): output is bit-identical to the serial
// sweep, re-sequenced to the input order. A parallel sweep usually
// wants -workers 1, since each concurrent run drives its own streaming
// engine. -baseline NAME additionally prints a differential table —
// every scenario's per-day KPI and mobility series against the named
// run: absolute and percent mean deltas plus trough/peak day shifts.
//
// -engineshards E parallelizes the KPI engine *within* each simulated
// day (traffic.Engine.DayAppendSharded), the right axis when sweeping
// few scenarios on many cores. Sharded KPI values are deterministic in
// E but differ from the serial engine in float association (≤1e-9
// relative per value); mobility columns are unaffected.
//
//	mnosweep -list                  # show the registry
//	mnosweep                        # default-covid vs no-pandemic vs early-lockdown
//	mnosweep -scenarios all -users 2000
//	mnosweep -scenarios default-covid,./my-scenario.json
//	mnosweep -scenarios all -parallel 4 -workers 1 -baseline no-pandemic
//
// Observability: -metrics ADDR serves the live metric registry and
// net/http/pprof while the sweep is in flight, -metrics-out FILE writes
// the end-of-run snapshot (obs/v1 JSON, diffable with `benchdiff -obs`);
// either flag also prints the human metric table at exit. See
// PERFORMANCE.md, "Observability".
//
// Usage:
//
//	mnosweep [-list] [-scenarios NAMES|all] [-users N] [-seed S] [-nokpi]
//	         [-workers W] [-shards K] [-engineshards E] [-parallel P]
//	         [-baseline NAME] [-metrics ADDR] [-metrics-out FILE]
//	         [-cpuprofile F] [-memprofile F]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/stream"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the built-in scenario registry and exit")
		names     = flag.String("scenarios", "default-covid,no-pandemic,early-lockdown", "comma-separated registry names and/or JSON spec files; \"all\" runs every built-in")
		users     = flag.Int("users", 4000, "synthetic native smartphone users")
		seed      = flag.Uint64("seed", 42, "master random seed (shared by every scenario: paired draws)")
		noKPI     = flag.Bool("nokpi", false, "skip the traffic engine (mobility headlines only, ~3× faster)")
		workers   = flag.Int("workers", 0, "worker goroutines per run (0: GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "logical shards (0: default)")
		engShards = flag.Int("engineshards", 0, "intra-day KPI accumulation shards (<=1: serial engine; sharded KPI values differ from serial only in float association, <=1e-9 relative)")
		parallel  = flag.Int("parallel", 1, "concurrent scenario runs (1: serial; output is identical either way)")
		baseline  = flag.String("baseline", "", "scenario name to difference every other run against (prints the delta table)")
		of        = obs.Flags()
	)
	flag.Parse()

	if *list {
		printRegistry()
		return
	}
	err := of.Run(func() error {
		return run(*names, *users, *seed, *noKPI, *workers, *shards, *engShards, *parallel, *baseline, of.Registry())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnosweep:", err)
		os.Exit(1)
	}
}

func printRegistry() {
	fmt.Println("built-in scenarios:")
	for _, sp := range scenario.List() {
		fmt.Printf("  %-16s %s\n", sp.Name, sp.Description)
	}
	fmt.Println("\npass -scenarios with any of these and/or paths to JSON spec files (see SCENARIOS.md)")
}

// resolve expands the -scenarios flag into named sweep entries.
func resolve(names string) ([]experiments.SweepScenario, error) {
	var tokens []string
	if names == "all" {
		tokens = scenario.Names()
	} else {
		for _, tok := range strings.Split(names, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				tokens = append(tokens, tok)
			}
		}
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("no scenarios given")
	}
	out := make([]experiments.SweepScenario, 0, len(tokens))
	for _, tok := range tokens {
		sp, err := scenario.LoadSpec(tok)
		if err != nil {
			return nil, err
		}
		s, err := sp.Scenario()
		if err != nil {
			return nil, err
		}
		label := sp.Name
		if label == "" {
			label = strings.TrimSuffix(filepath.Base(tok), ".json")
		}
		out = append(out, experiments.SweepScenario{Name: label, Scenario: s})
	}
	return out, nil
}

func run(names string, users int, seed uint64, noKPI bool, workers, shards, engShards, parallel int, baseline string, reg *obs.Registry) error {
	scens, err := resolve(names)
	if err != nil {
		return err
	}
	// Validate the baseline before the sweep runs, not after: a typo'd
	// name must not cost a full multi-scenario run only to fail at the
	// delta table.
	if baseline != "" {
		found := false
		labels := make([]string, len(scens))
		for i, sc := range scens {
			labels[i] = sc.Name
			found = found || sc.Name == baseline
		}
		if !found {
			return fmt.Errorf("baseline %q is not part of the sweep %v", baseline, labels)
		}
	}
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	cfg.SkipKPI = noKPI
	scfg := stream.Config{Workers: workers, Shards: shards, EngineShards: engShards, Metrics: reg}

	start := time.Now()
	world := experiments.NewWorld(cfg)
	fmt.Fprintf(os.Stderr, "world built in %v (%d users); sweeping %d scenarios (parallel %d)\n",
		time.Since(start).Round(time.Millisecond), users, len(scens), parallel)

	runs := experiments.RunSweepParallel(world, cfg, scfg, scens, parallel)
	table := experiments.SweepTable(runs)
	table.Title = fmt.Sprintf("scenario sweep (%d users, seed %d)", users, seed)
	report.WriteMarkdownTable(os.Stdout, &table)
	if baseline != "" {
		delta, err := experiments.DeltaTable(runs, baseline)
		if err != nil {
			return err
		}
		report.WriteMarkdownTable(os.Stdout, &delta)
	}
	fmt.Fprintf(os.Stderr, "sweep done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
