// Command mnosweep runs several behavioural scenarios over one shared
// world — the census model, radio topology and synthesized population
// are built exactly once — and prints a headline comparison table, one
// column per scenario. Each scenario streams through the sharded
// engine (internal/stream) with recycled day buffers, so a sweep of N
// scenarios costs one world build plus N streaming passes.
//
// Scenario sets are comma-separated registry names and/or JSON spec
// files (the SCENARIOS.md schema); "all" expands to every registry
// built-in.
//
// -share-prefix (default on) runs the sweep copy-on-divergence: the
// scenarios are grouped by the first day their behaviour can differ
// (pandemic.Scenario.DivergenceFrom), each shared prefix is simulated
// once, checkpointed at the fork day and forked per scenario. Output is
// bit-identical to -share-prefix=false; the journal records which runs
// were forked and how many days they skipped. See PERFORMANCE.md,
// "Copy-on-divergence sweeps".
//
// -parallel N executes up to N scenario runs concurrently
// (experiments.RunSweepParallel): output is bit-identical to the serial
// sweep, re-sequenced to the input order. A parallel sweep usually
// wants -workers 1, since each concurrent run drives its own streaming
// engine. -baseline NAME additionally prints a differential table —
// every scenario's per-day KPI and mobility series against the named
// run: absolute and percent mean deltas plus trough/peak day shifts.
//
// -engineshards E parallelizes the KPI engine *within* each simulated
// day (traffic.Engine.DayAppendSharded), the right axis when sweeping
// few scenarios on many cores. Sharded KPI values are deterministic in
// E but differ from the serial engine in float association (≤1e-9
// relative per value); mobility columns are unaffected.
//
// Reliability (see RELIABILITY.md): scenario runs fail independently —
// a poisoned run is reported and the table is printed for the rest
// (exit 1). SIGINT/SIGTERM cancels the sweep, prints the partial table
// for the runs that finished and exits 130. -journal FILE records each
// completed run as it lands; -resume skips those runs on restart, so an
// interrupted or partially-failed sweep continues instead of starting
// over, and the stitched final table is byte-identical to an
// uninterrupted sweep. -fault arms the deterministic fault harness
// (internal/fault; site sweep.run is keyed by run index). Exit codes:
// 0 success, 1 runtime failure, 2 bad usage, 130 interrupted.
//
// Observability: -metrics ADDR serves the live metric registry and
// net/http/pprof while the sweep is in flight, -metrics-out FILE writes
// the end-of-run snapshot (obs/v1 JSON, diffable with `benchdiff -obs`);
// either flag also prints the human metric table at exit. See
// PERFORMANCE.md, "Observability".
//
// Usage:
//
//	mnosweep [-list] [-scenarios NAMES|all] [-users N] [-seed S] [-nokpi]
//	         [-workers W] [-shards K] [-engineshards E] [-parallel P]
//	         [-share-prefix=BOOL]
//	         [-baseline NAME] [-journal FILE] [-resume] [-fault SPEC]
//	         [-metrics ADDR] [-metrics-out FILE]
//	         [-cpuprofile F] [-memprofile F]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/stream"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list the built-in scenario registry and exit")
		names       = flag.String("scenarios", "default-covid,no-pandemic,early-lockdown", "comma-separated registry names and/or JSON spec files; \"all\" runs every built-in")
		users       = flag.Int("users", 4000, "synthetic native smartphone users")
		seed        = flag.Uint64("seed", 42, "master random seed (shared by every scenario: paired draws)")
		noKPI       = flag.Bool("nokpi", false, "skip the traffic engine (mobility headlines only, ~3× faster)")
		workers     = flag.Int("workers", 0, "worker goroutines per run (0: GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "logical shards (0: default)")
		engShards   = flag.Int("engineshards", 0, "intra-day KPI accumulation shards (<=1: serial engine; sharded KPI values differ from serial only in float association, <=1e-9 relative)")
		parallel    = flag.Int("parallel", 1, "concurrent scenario runs (1: serial; output is identical either way)")
		sharePrefix = flag.Bool("share-prefix", true, "simulate shared scenario prefixes once and fork at the divergence day (bit-identical output; =false re-simulates every scenario from day 0)")
		baseline    = flag.String("baseline", "", "scenario name to difference every other run against (prints the delta table)")
		journalPath = flag.String("journal", "", "record completed runs to this JSON-lines file as they finish")
		resume      = flag.Bool("resume", false, "skip runs already recorded in the -journal file (requires -journal)")
		faultSpec   = flag.String("fault", "", "deterministic fault injection spec: site:kind:key[:delay][,...] (see internal/fault)")
		of          = obs.Flags()
	)
	flag.Parse()

	if *list {
		printRegistry()
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	err := of.Run(func() error {
		return run(ctx, *names, *users, *seed, *noKPI, *workers, *shards, *engShards, *parallel, *sharePrefix, *baseline, *journalPath, *resume, *faultSpec, of.Registry())
	})
	cli.Exit("mnosweep", err)
}

func printRegistry() {
	fmt.Println("built-in scenarios:")
	for _, sp := range scenario.List() {
		fmt.Printf("  %-16s %s\n", sp.Name, sp.Description)
	}
	fmt.Println("\npass -scenarios with any of these and/or paths to JSON spec files (see SCENARIOS.md)")
}

// resolve expands the -scenarios flag into named sweep entries.
func resolve(names string) ([]experiments.SweepScenario, error) {
	var tokens []string
	if names == "all" {
		tokens = scenario.Names()
	} else {
		for _, tok := range strings.Split(names, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				tokens = append(tokens, tok)
			}
		}
	}
	if len(tokens) == 0 {
		return nil, cli.Usagef("no scenarios given")
	}
	out := make([]experiments.SweepScenario, 0, len(tokens))
	for _, tok := range tokens {
		sp, err := scenario.LoadSpec(tok)
		if err != nil {
			return nil, cli.Usagef("%w", err)
		}
		s, err := sp.Scenario()
		if err != nil {
			return nil, cli.Usagef("%w", err)
		}
		label := sp.Name
		if label == "" {
			label = strings.TrimSuffix(filepath.Base(tok), ".json")
		}
		out = append(out, experiments.SweepScenario{Name: label, Scenario: s})
	}
	return out, nil
}

func run(ctx context.Context, names string, users int, seed uint64, noKPI bool, workers, shards, engShards, parallel int, sharePrefix bool, baseline, journalPath string, resume bool, faultSpec string, reg *obs.Registry) error {
	scens, err := resolve(names)
	if err != nil {
		return err
	}
	fi, err := fault.ParseSpec(faultSpec)
	if err != nil {
		return cli.Usagef("%w", err)
	}
	if resume && journalPath == "" {
		return cli.Usagef("-resume requires -journal FILE")
	}
	if resume && baseline != "" {
		// The journal records headline statistics, not the per-day
		// series DeltaTable differences, so a resumed sweep cannot
		// rebuild the baseline comparison for its skipped runs.
		return cli.Usagef("-baseline cannot be combined with -resume (the journal keeps headlines, not per-day series)")
	}
	// Validate the baseline before the sweep runs, not after: a typo'd
	// name must not cost a full multi-scenario run only to fail at the
	// delta table.
	if baseline != "" {
		found := false
		labels := make([]string, len(scens))
		for i, sc := range scens {
			labels[i] = sc.Name
			found = found || sc.Name == baseline
		}
		if !found {
			return cli.Usagef("baseline %q is not part of the sweep %v", baseline, labels)
		}
	}
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	cfg.SkipKPI = noKPI
	scfg := stream.Config{Workers: workers, Shards: shards, EngineShards: engShards, Metrics: reg, Fault: fi}

	// Journal bookkeeping: open (or resume) before any work, so a crash
	// at any later point leaves a loadable file behind.
	var (
		jnl  *journal
		done map[string][]experiments.Headline
		opt  = experiments.SweepOptions{Parallel: parallel, SharePrefix: sharePrefix}
	)
	if journalPath != "" {
		labels := make([]string, len(scens))
		for i, sc := range scens {
			labels[i] = sc.Name
		}
		hdr := journalHeader{V: journalVersion, Kind: "mnosweep-journal",
			Users: users, Seed: seed, NoKPI: noKPI, SharePrefix: sharePrefix, Scenarios: labels}
		jnl, done, err = openJournal(journalPath, hdr, resume)
		if err != nil {
			return err
		}
		defer jnl.Close()
		opt.OnRun = func(i int, run experiments.SweepRun) {
			if err := jnl.record(run); err != nil {
				fmt.Fprintf(os.Stderr, "mnosweep: journal write failed: %v\n", err)
			}
		}
	}

	// Split the sweep into journaled (skip) and pending (run) entries;
	// without -resume everything is pending.
	var pending []experiments.SweepScenario
	for _, sc := range scens {
		if _, ok := done[sc.Name]; !ok {
			pending = append(pending, sc)
		}
	}

	start := time.Now()
	var runs []experiments.SweepRun
	var sweepErr error
	if len(pending) > 0 {
		world := experiments.NewWorld(cfg)
		fmt.Fprintf(os.Stderr, "world built in %v (%d users); sweeping %d scenarios (parallel %d, %d resumed from journal)\n",
			time.Since(start).Round(time.Millisecond), users, len(pending), parallel, len(scens)-len(pending))
		runs, sweepErr = experiments.RunSweepParallelOpts(ctx, world, cfg, scfg, pending, opt)
	} else {
		fmt.Fprintf(os.Stderr, "all %d scenarios already journaled; reprinting from %s\n", len(scens), journalPath)
	}

	// Stitch journaled and fresh runs back into flag order, then drop
	// failures — the table is printed for whatever completed, and the
	// error (if any) decides the exit code after.
	fresh := make(map[string]experiments.SweepRun, len(runs))
	for _, r := range runs {
		fresh[r.Name] = r
	}
	var ok []experiments.SweepRun
	for _, sc := range scens {
		if h, is := done[sc.Name]; is {
			ok = append(ok, experiments.SweepRun{Name: sc.Name, Headlines: h})
			continue
		}
		if r, is := fresh[sc.Name]; is && r.Err == nil {
			ok = append(ok, r)
		}
	}
	if len(ok) > 0 {
		table := experiments.SweepTable(ok)
		table.Title = fmt.Sprintf("scenario sweep (%d users, seed %d)", users, seed)
		if len(ok) < len(scens) {
			table.Title += fmt.Sprintf(" — partial: %d/%d runs", len(ok), len(scens))
		}
		report.WriteMarkdownTable(os.Stdout, &table)
	}
	if baseline != "" && sweepErr == nil {
		delta, err := experiments.DeltaTable(runs, baseline)
		if err != nil {
			return err
		}
		report.WriteMarkdownTable(os.Stdout, &delta)
	}
	if sweepErr != nil {
		fmt.Fprintf(os.Stderr, "sweep stopped after %v: %d/%d runs completed\n",
			time.Since(start).Round(time.Millisecond), len(ok), len(scens))
		return sweepErr
	}
	fmt.Fprintf(os.Stderr, "sweep done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
