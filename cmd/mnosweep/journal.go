package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

// The sweep journal is a JSON-lines file: one header line binding the
// journal to its sweep configuration, then one entry line per completed
// scenario run. Every line is written (and fsynced by close) as soon as
// its run finishes, so a sweep killed mid-flight keeps everything it
// already paid for; `-resume` replays the entries instead of the runs.
//
// Only headline statistics are journaled — enough to reprint the sweep
// table byte-identically (encoding/json round-trips float64 exactly) —
// not the per-day series, which is why -resume rejects -baseline.

// journalVersion guards the line format; bump on incompatible change.
const journalVersion = 1

// journalHeader is line one: the sweep configuration the entries are
// only valid for. Resume refuses a journal whose header disagrees with
// the current flags — silently mixing headline sets from two different
// sweeps is exactly the corruption a journal exists to prevent.
type journalHeader struct {
	V     int    `json:"v"`
	Kind  string `json:"kind"`
	Users int    `json:"users"`
	Seed  uint64 `json:"seed"`
	NoKPI bool   `json:"nokpi"`
	// SharePrefix records whether the sweep ran copy-on-divergence.
	// Results are bit-identical either way, but a journal must not stitch
	// runs recorded under differing settings — the setting changes which
	// simulation path produced the entries, and a resume that silently
	// mixes paths would mask any parity regression between them.
	SharePrefix bool     `json:"share_prefix"`
	Scenarios   []string `json:"scenarios"`
}

// journalEntry is one completed scenario run. ForkedFrom/PrefixDays
// record copy-on-divergence provenance when the run was forked from
// another scenario's checkpoint (absent for standalone day-0 runs).
type journalEntry struct {
	Run        string                 `json:"run"`
	ForkedFrom string                 `json:"forked_from,omitempty"`
	PrefixDays int                    `json:"prefix_days,omitempty"`
	Headlines  []experiments.Headline `json:"headlines"`
}

// journal appends completed runs to an open file.
type journal struct {
	f *os.File
}

// openJournal creates (or, when resuming, opens for append) the journal
// at path, writing the header when the file is fresh. done maps the
// runs already journaled (nil on a fresh file).
func openJournal(path string, hdr journalHeader, resume bool) (*journal, map[string][]experiments.Headline, error) {
	var done map[string][]experiments.Headline
	if resume {
		prev, entries, err := readJournal(path)
		switch {
		case os.IsNotExist(err):
			// Nothing to resume; fall through to a fresh journal.
		case err != nil:
			return nil, nil, err
		default:
			if !headerMatches(prev, hdr) {
				return nil, nil, fmt.Errorf("journal %s was written by a different sweep (%+v); refusing to resume into %+v", path, prev, hdr)
			}
			done = entries
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			return &journal{f: f}, done, nil
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{f: f}
	if err := j.writeLine(hdr); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, nil, nil
}

// record appends one completed run. Failed runs are never journaled —
// resume must retry them.
func (j *journal) record(run experiments.SweepRun) error {
	if run.Err != nil {
		return nil
	}
	return j.writeLine(journalEntry{Run: run.Name, ForkedFrom: run.ForkedFrom, PrefixDays: run.PrefixDays, Headlines: run.Headlines})
}

func (j *journal) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = j.f.Write(append(line, '\n'))
	return err
}

func (j *journal) Close() error { return j.f.Close() }

// readJournal loads a journal's header and completed entries. A
// truncated trailing line (the process died mid-write) is ignored: the
// run it would have recorded is simply re-run.
func readJournal(path string) (journalHeader, map[string][]experiments.Headline, error) {
	f, err := os.Open(path)
	if err != nil {
		return journalHeader{}, nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return journalHeader{}, nil, err
		}
		return journalHeader{}, nil, io.ErrUnexpectedEOF
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return journalHeader{}, nil, fmt.Errorf("journal %s: bad header: %w", path, err)
	}
	if hdr.V != journalVersion || hdr.Kind != "mnosweep-journal" {
		return journalHeader{}, nil, fmt.Errorf("journal %s: unsupported header %+v", path, hdr)
	}
	done := make(map[string][]experiments.Headline)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			break // torn tail line from a killed writer: drop it
		}
		done[e.Run] = e.Headlines
	}
	if err := sc.Err(); err != nil {
		return journalHeader{}, nil, err
	}
	return hdr, done, nil
}

// headerMatches reports whether a journal belongs to the sweep about to
// run: same knobs, same scenario set in the same order.
func headerMatches(a, b journalHeader) bool {
	if a.V != b.V || a.Kind != b.Kind || a.Users != b.Users || a.Seed != b.Seed || a.NoKPI != b.NoKPI || a.SharePrefix != b.SharePrefix {
		return false
	}
	if len(a.Scenarios) != len(b.Scenarios) {
		return false
	}
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			return false
		}
	}
	return true
}
