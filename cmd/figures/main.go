// Command figures regenerates the paper's tables and figures from the
// synthetic reproduction pipeline and prints the series the paper plots,
// together with PASS/FAIL shape checks against the paper's reported
// results.
//
// Usage:
//
//	figures [-fig all|table1|fig2|...|fig12] [-users N] [-seed S] [-checks]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/experiments"
	"repro/internal/popsim"
	"repro/internal/report"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate (all, table1, fig2 … fig12)")
		users  = flag.Int("users", popsim.ScaleSmall, "synthetic native smartphone users")
		seed   = flag.Uint64("seed", 42, "master random seed")
		checks = flag.Bool("checks", true, "print shape checks against the paper")
		quiet  = flag.Bool("quiet", false, "suppress data tables, print checks only")
		ext    = flag.Bool("ext", false, "also run the extension experiments (per-bin mobility, percentile bands)")
		md     = flag.Bool("md", false, "emit data tables as markdown")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = *users
	cfg.Seed = *seed

	start := time.Now()
	fmt.Fprintf(os.Stderr, "simulating %d users over 100 days (seed %d)...\n", *users, *seed)
	results := experiments.RunStandard(cfg)
	fmt.Fprintf(os.Stderr, "simulation done in %v\n\n", time.Since(start).Round(time.Millisecond))

	all := experiments.AllFigures(results)
	if *ext || strings.HasPrefix(strings.ToLower(*fig), "ext-") {
		fmt.Fprintln(os.Stderr, "running extension experiments...")
		all = append(all, experiments.ExtBinsAndBands(results.Dataset), experiments.ExtSEIR(results))
	}
	var figures []*experiments.Figure
	if *fig == "all" {
		figures = all
	} else {
		for _, f := range all {
			if strings.EqualFold(f.ID, *fig) {
				figures = append(figures, f)
			}
		}
		if len(figures) == 0 {
			cli.Exit("figures", cli.Usagef("unknown figure %q", *fig))
		}
	}

	failed := 0
	for _, f := range figures {
		fmt.Printf("=== %s: %s ===\n", f.ID, f.Title)
		if !*quiet {
			for i := range f.Tables {
				if *md {
					report.WriteMarkdownTable(os.Stdout, &f.Tables[i])
				} else {
					report.WriteTable(os.Stdout, &f.Tables[i])
					fmt.Println()
				}
			}
			for _, n := range f.Notes {
				fmt.Println("  note:", n)
			}
		}
		if *checks {
			for _, c := range f.Checks {
				fmt.Printf("  [%s] %s: got %s, want %s\n", report.CheckMark(c.Pass), c.Name, c.Got, c.Want)
				if !c.Pass {
					failed++
				}
			}
		}
		fmt.Println()
	}
	if failed > 0 {
		cli.Exit("figures", fmt.Errorf("%d shape check(s) failed", failed))
	}
}
