// Command mobilityrpt prints a compact mobility report for a region or
// geodemographic cluster over the study window: weekly gyration/entropy
// deltas with sparklines, plus the intervention milestones.
//
// Usage:
//
//	mobilityrpt [-region "Inner London"] [-cluster "Cosmopolitans"] [-users N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cmd/internal/cli"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

func main() {
	var (
		region  = flag.String("region", "", "county to report on (default: national)")
		cluster = flag.String("cluster", "", "OAC cluster to report on")
		users   = flag.Int("users", 5000, "synthetic users")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = *users
	cfg.Seed = *seed
	cfg.SkipKPI = true // mobility only: ~3× faster
	r := experiments.RunStandard(cfg)

	gyr := r.Mobility.NationalSeries(core.MetricGyration)
	ent := r.Mobility.NationalSeries(core.MetricEntropy)
	label := "United Kingdom (all regions)"

	if *region != "" {
		c, ok := r.Dataset.Model.CountyByName(*region)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown region %q; available:\n", *region)
			for i := range r.Dataset.Model.Counties {
				fmt.Fprintln(os.Stderr, "  ", r.Dataset.Model.Counties[i].Name)
			}
			cli.Exit("mobilityrpt", cli.Usagef("unknown region %q", *region))
		}
		gyr = r.Mobility.CountySeries(c, core.MetricGyration)
		ent = r.Mobility.CountySeries(c, core.MetricEntropy)
		label = c.Name
	} else if *cluster != "" {
		var found *census.Cluster
		for _, cl := range census.Clusters() {
			if strings.EqualFold(cl.Name(), *cluster) {
				cl := cl
				found = &cl
			}
		}
		if found == nil {
			fmt.Fprintf(os.Stderr, "unknown cluster %q; available:\n", *cluster)
			for _, cl := range census.Clusters() {
				fmt.Fprintln(os.Stderr, "  ", cl.Name())
			}
			cli.Exit("mobilityrpt", cli.Usagef("unknown cluster %q", *cluster))
		}
		gyr = r.Mobility.ClusterSeries(*found, core.MetricGyration)
		ent = r.Mobility.ClusterSeries(*found, core.MetricEntropy)
		label = found.Name() + " (geodemographic cluster)"
	}

	fmt.Printf("Mobility report: %s\n", label)
	fmt.Printf("window: %s – %s (weeks 9–19 of 2020)\n\n",
		timegrid.StudyStart.Format("2 Jan"), timegrid.StudyEnd.Format("2 Jan 2006"))

	baseG := stats.Mean(gyr.Values[:7])
	baseE := stats.Mean(ent.Values[:7])
	gw := core.DeltaSeries(gyr, baseG).WeeklyMeans()
	ew := core.DeltaSeries(ent, baseE).WeeklyMeans()
	fmt.Printf("baseline (week 9): gyration %.2f km, entropy %.3f nats\n\n", baseG, baseE)

	printRow := func(name string, w stats.Series) {
		fmt.Printf("  %-22s %s ", name, report.Sparkline(w.Values))
		for i, v := range w.Values {
			fmt.Printf(" w%d:%+.0f%%", timegrid.FirstWeek+i, v)
			_ = i
		}
		fmt.Println()
	}
	printRow("radius of gyration", gw)
	printRow("mobility entropy", ew)

	// Distribution of per-user daily gyration: baseline vs lockdown.
	printHistograms(r, label, *region, *cluster)

	fmt.Println("\nmilestones:")
	for _, m := range []struct {
		day  timegrid.StudyDay
		what string
	}{
		{timegrid.PandemicDeclared, "WHO declares pandemic"},
		{timegrid.WorkFromHomeAdvice, "work-from-home advice"},
		{timegrid.VenueClosures, "schools and venues close"},
		{timegrid.LockdownStart, "national stay-at-home order"},
	} {
		fmt.Printf("  %s  %-28s gyration %+.0f%%\n",
			timegrid.DateOfStudyDay(m.day).Format("Mon 02 Jan"), m.what,
			stats.DeltaPercent(gyr.Values[m.day], baseG))
	}
}

// printHistograms renders the per-user daily gyration distribution on a
// baseline weekday versus a lockdown weekday.
func printHistograms(r *experiments.Results, label, region, cluster string) {
	d := r.Dataset
	show := func(name string, day timegrid.SimDay) {
		h := stats.NewHistogram(0, 20, 10)
		traces := d.Sim.Day(day)
		for i := range traces {
			u := d.Pop.User(traces[i].User)
			if region != "" && d.Model.County(u.HomeCounty).Name != region {
				continue
			}
			if cluster != "" && !strings.EqualFold(u.Cluster.Name(), cluster) {
				continue
			}
			m := core.ComputeDayMetrics(&traces[i], d.Topology, core.DefaultTopN)
			h.Add(m.Gyration)
		}
		fmt.Printf("\nper-user daily gyration, %s (%s), km:\n", name,
			timegrid.DateOfSimDay(day).Format("Mon 02 Jan"))
		fmt.Print(h.Render(36))
	}
	show("baseline weekday", timegrid.SimDay(timegrid.StudyDayOffset+2))
	show("lockdown weekday", timegrid.SimDay(timegrid.StudyDayOffset+37))
	_ = label
}
