// Command mnosim runs the full synthetic-MNO simulation and exports the
// datasets the paper's pipeline consumes, as CSV files:
//
//	mobility_daily.csv   per-day national/regional/cluster mobility metrics
//	kpi_daily.csv        per-day per-group KPI medians (all metrics)
//	mobility_matrix.csv  Inner-London resident presence per county per day
//	homes.csv            per-district inferred vs census population
//	signaling_summary.csv per-day control-plane event counts by type
//
// With -raw it additionally persists the replayable feed directory that
// cmd/mnostream consumes: traces (full window), KPI records (full
// window) and events.csv (one sample day). -format picks the trace/KPI
// encoding: csv (traces.csv/kpi.csv, the default) or col — the columnar
// binary day-block format (traces.col/kpi.col, internal/feeds/colfmt),
// which is several times faster to replay and a fraction of the size.
// cmd/feedconv converts between the two after the fact.
//
// The behavioural scenario defaults to the calibrated COVID timeline;
// -scenario selects a registry built-in (see `mnosweep -list`) or a
// JSON spec file in the SCENARIOS.md schema.
//
// Usage:
//
//	mnosim -out ./data [-users N] [-seed S] [-scenario NAME|FILE.json]
//	       [-raw] [-format csv|col] [-cpuprofile F] [-memprofile F]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/feeds"
	"repro/internal/feeds/colfmt"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/prof"
	"repro/internal/scenario"
	"repro/internal/signaling"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func main() {
	var (
		out   = flag.String("out", "data", "output directory")
		users = flag.Int("users", popsim.ScaleSmall, "synthetic native smartphone users")
		seed  = flag.Uint64("seed", 42, "master random seed")
		scen  = flag.String("scenario", "", "behavioural scenario: registry name or JSON spec file (empty: the calibrated default)")
		raw    = flag.Bool("raw", false, "also export raw per-visit traces and a sample signalling feed (large)")
		format = flag.String("format", feeds.FormatCSV, "raw feed encoding: csv or col (columnar binary, faster to replay)")
		pf     = prof.Flags()
	)
	flag.Parse()

	err := pf.Run(func() error {
		return run(*out, *users, *seed, *scen, *raw, *format)
	})
	cli.Exit("mnosim", err)
}

func run(out string, users int, seed uint64, scenName string, raw bool, format string) error {
	if format != feeds.FormatCSV && format != feeds.FormatCol {
		return cli.Usagef("unknown -format %q (want %q or %q)", format, feeds.FormatCSV, feeds.FormatCol)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	start := time.Now()
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	cfg.Seed = seed
	if scenName != "" {
		s, err := scenario.Load(scenName)
		if err != nil {
			return cli.Usagef("%w", err)
		}
		cfg.Scenario = s
	}
	r := experiments.RunStandard(cfg)
	fmt.Fprintf(os.Stderr, "simulation done in %v\n", time.Since(start).Round(time.Millisecond))

	if err := writeMobility(out, r); err != nil {
		return err
	}
	if err := writeKPI(out, r); err != nil {
		return err
	}
	if err := writeMatrix(out, r); err != nil {
		return err
	}
	if err := writeHomes(out, r); err != nil {
		return err
	}
	if err := writeSignaling(out, r); err != nil {
		return err
	}
	if raw {
		if err := writeRaw(out, r, scenName, format); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "datasets written to %s\n", out)
	return nil
}

// dayTraceWriter and dayKPIWriter abstract the per-format feed writers
// (feeds CSV vs colfmt columnar).
type dayTraceWriter interface {
	WriteDay(day timegrid.SimDay, traces []mobsim.DayTrace) error
	Flush() error
}

type dayKPIWriter interface {
	WriteDay(day timegrid.SimDay, cells []traffic.CellDay) error
	Flush() error
}

// writeRaw exports the raw per-visit trace feed and the per-cell KPI
// feed for the full window, plus one day of raw control-plane events, in
// the feeds package's formats — the directory layout cmd/mnostream
// replays (feeds.OpenDir), so analyses can be re-run without
// re-simulating.
func writeRaw(out string, r *experiments.Results, scenName, format string) error {
	col := format == feeds.FormatCol
	meta := feeds.Meta{Users: r.Dataset.Config.TargetUsers, Seed: r.Dataset.Config.Seed, Scenario: scenName, Format: format}
	traceName, kpiName := feeds.TraceFeedName, feeds.KPIFeedName
	if col {
		meta.FormatVersion = colfmt.Version
		traceName, kpiName = feeds.TraceColFeedName, feeds.KPIColFeedName
	}
	if err := feeds.WriteMeta(out, meta); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(out, traceName))
	if err != nil {
		return err
	}
	defer tf.Close()
	var tw dayTraceWriter = feeds.NewTraceWriter(tf)
	if col {
		tw = colfmt.NewTraceWriter(tf)
	}
	var kw dayKPIWriter
	var kf *os.File
	if r.Dataset.Engine != nil {
		kf, err = os.Create(filepath.Join(out, kpiName))
		if err != nil {
			return err
		}
		defer kf.Close()
		if col {
			kw = colfmt.NewKPIWriter(kf)
		} else {
			kw = feeds.NewKPIWriter(kf)
		}
	}
	buf := mobsim.NewDayBuffer()
	var cells []traffic.CellDay
	for day := timegrid.SimDay(0); day < timegrid.SimDays; day++ {
		traces := r.Dataset.Sim.DayInto(buf, day)
		if err := tw.WriteDay(day, traces); err != nil {
			return err
		}
		if kw != nil {
			cells = r.Dataset.Engine.DayAppend(cells[:0], day, traces)
			if err := kw.WriteDay(day, cells); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if kw != nil {
		if err := kw.Flush(); err != nil {
			return err
		}
	}

	// One sample day of raw control-plane events (the full window would
	// dwarf every other feed); cmd/mnostream attaches it to that day and
	// streams the rest of the window without events.
	ef, err := os.Create(filepath.Join(out, feeds.EventFeedName))
	if err != nil {
		return err
	}
	defer ef.Close()
	ew := feeds.NewEventWriter(ef)
	gen := signaling.NewGenerator(r.Dataset.Pop, r.Dataset.Config.Seed)
	day := timegrid.LockdownStart.ToSimDay()
	gen.Day(day, r.Dataset.Sim.Day(day), ew.Consume)
	return ew.Flush()
}

// create opens a CSV writer for a file in the output directory.
func create(out, name string) (*csv.Writer, *os.File, error) {
	f, err := os.Create(filepath.Join(out, name))
	if err != nil {
		return nil, nil, err
	}
	return csv.NewWriter(f), f, nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// seriesRows writes one row per day of a named series.
func seriesRows(w *csv.Writer, group, metric string, s stats.Series) error {
	for d := 0; d < s.Len(); d++ {
		date := timegrid.DateOfStudyDay(timegrid.StudyDay(d)).Format("2006-01-02")
		if err := w.Write([]string{date, group, metric, fmtF(s.Values[d])}); err != nil {
			return err
		}
	}
	return nil
}

func writeMobility(out string, r *experiments.Results) error {
	w, f, err := create(out, "mobility_daily.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := w.Write([]string{"date", "group", "metric", "value"}); err != nil {
		return err
	}
	for _, m := range []core.MobilityMetric{core.MetricGyration, core.MetricEntropy} {
		if err := seriesRows(w, "UK", m.String(), r.Mobility.NationalSeries(m)); err != nil {
			return err
		}
		for _, c := range r.Dataset.Model.FocusRegions() {
			if err := seriesRows(w, c.Name, m.String(), r.Mobility.CountySeries(c, m)); err != nil {
				return err
			}
		}
		for _, cl := range census.Clusters() {
			if err := seriesRows(w, cl.Name(), m.String(), r.Mobility.ClusterSeries(cl, m)); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func writeKPI(out string, r *experiments.Results) error {
	w, f, err := create(out, "kpi_daily.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := w.Write([]string{"date", "group", "metric", "value"}); err != nil {
		return err
	}
	for _, m := range traffic.Metrics() {
		if err := seriesRows(w, "UK", m.String(), r.KPI.NationalSeries(m)); err != nil {
			return err
		}
		for _, c := range r.Dataset.Model.FocusRegions() {
			if err := seriesRows(w, c.Name, m.String(), r.KPI.CountySeries(c, m)); err != nil {
				return err
			}
		}
		for _, cl := range census.Clusters() {
			if err := seriesRows(w, "cluster:"+cl.Name(), m.String(), r.KPI.ClusterSeries(cl, m)); err != nil {
				return err
			}
		}
		for _, did := range r.Dataset.Model.InnerLondon().Districts {
			d := r.Dataset.Model.District(did)
			if err := seriesRows(w, "london:"+d.Code, m.String(), r.KPI.DistrictSeries(d, m)); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func writeMatrix(out string, r *experiments.Results) error {
	w, f, err := create(out, "mobility_matrix.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := w.Write([]string{"date", "county", "residents_present"}); err != nil {
		return err
	}
	counties := append([]*census.County{r.Dataset.Model.InnerLondon()}, r.Matrix.TopDestinations(10)...)
	for _, c := range counties {
		s := r.Matrix.PresenceSeries(c)
		for d := 0; d < s.Len(); d++ {
			date := timegrid.DateOfStudyDay(timegrid.StudyDay(d)).Format("2006-01-02")
			if err := w.Write([]string{date, c.Name, fmtF(s.Values[d])}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func writeHomes(out string, r *experiments.Results) error {
	w, f, err := create(out, "homes.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := w.Write([]string{"district", "census_scaled", "inferred"}); err != nil {
		return err
	}
	scale := float64(len(r.Dataset.Pop.Native())) / float64(r.Dataset.Model.TotalPopulation())
	v, err := core.ValidateAgainstCensus(r.Homes, r.Dataset.Model, scale)
	if err != nil {
		return err
	}
	for i, label := range v.Labels {
		if err := w.Write([]string{label, fmtF(v.Census[i]), fmtF(v.Inferred[i])}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeSignaling(out string, r *experiments.Results) error {
	w, f, err := create(out, "signaling_summary.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := w.Write([]string{"date", "event_type", "count"}); err != nil {
		return err
	}
	gen := signaling.NewGenerator(r.Dataset.Pop, r.Dataset.Config.Seed)
	// One representative day per week keeps the export light.
	for _, wk := range timegrid.Weeks() {
		day := wk.Days()[2] // Wednesday
		agg := signaling.NewAggregator(r.Dataset.Topology)
		gen.Day(day.ToSimDay(), r.Dataset.Sim.Day(day.ToSimDay()), agg.Consume)
		date := timegrid.DateOfStudyDay(day).Format("2006-01-02")
		for et := signaling.EventType(0); int(et) < signaling.NumEventTypes; et++ {
			if err := w.Write([]string{date, et.String(), strconv.FormatInt(agg.ByType[et], 10)}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
