// Package cli is the shared process-boundary helper of the repro
// commands: exit codes, usage errors and signal-driven cancellation.
// It exists because nothing under internal/ is allowed to decide
// process fate (scripts/fault_check.sh enforces that) — library errors
// flow up as values, and the cmd layer converts them to exactly one
// documented exit status here.
//
// Exit codes, shared by every command:
//
//	0  success (lenient replays that skipped corrupt rows still exit 0)
//	1  runtime failure: the pipeline errored (injected fault, worker
//	   panic, corrupt feed in strict mode, I/O failure)
//	2  usage/config failure: bad flags or arguments, before any work
//	130  interrupted: the run was cancelled by SIGINT/SIGTERM (128+SIGINT,
//	   the shell convention); partial outputs were still flushed
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// The documented exit codes.
const (
	CodeOK          = 0
	CodeRuntime     = 1
	CodeUsage       = 2
	CodeInterrupted = 130
)

// usageError marks an error as a config/usage failure (exit 2).
type usageError struct{ err error }

func (u *usageError) Error() string { return u.err.Error() }
func (u *usageError) Unwrap() error { return u.err }

// Usagef builds a usage/config error: Exit maps it to CodeUsage.
func Usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// ExitCode maps an error to the documented exit code: nil is success,
// Usagef errors are config failures, context cancellation (anywhere in
// the chain) is an interrupt, anything else is a runtime failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return CodeOK
	case errors.As(err, new(*usageError)):
		return CodeUsage
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return CodeInterrupted
	default:
		return CodeRuntime
	}
}

// Exit reports err (prefixed with the command name) on stderr and
// terminates the process with the mapped code. A nil err exits 0
// silently.
func Exit(name string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	os.Exit(ExitCode(err))
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, and a
// stop function releasing the signal handler. The first signal cancels
// the context — commands then drain their pipelines and flush partial
// outputs; a second signal kills the process with the default handler
// (signal.NotifyContext semantics), so a wedged drain can still be
// interrupted.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
