package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	wrapped := fmt.Errorf("sweep stopped: %w", context.Canceled)
	deepUsage := fmt.Errorf("mnosweep: %w", Usagef("bad flag %q", "-x"))
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, CodeOK},
		{"runtime", errors.New("boom"), CodeRuntime},
		{"usage", Usagef("unknown scenario %q", "x"), CodeUsage},
		{"wrapped usage", deepUsage, CodeUsage},
		{"canceled", context.Canceled, CodeInterrupted},
		{"wrapped canceled", wrapped, CodeInterrupted},
		{"deadline", context.DeadlineExceeded, CodeInterrupted},
	} {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestUsagefWraps(t *testing.T) {
	inner := errors.New("inner")
	err := Usagef("context: %w", inner)
	if !errors.Is(err, inner) {
		t.Error("Usagef does not preserve the wrapped chain")
	}
	if err.Error() != "context: inner" {
		t.Errorf("message = %q", err.Error())
	}
}

func TestSignalContextCancels(t *testing.T) {
	ctx, stop := SignalContext()
	if ctx.Err() != nil {
		t.Fatal("fresh signal context already cancelled")
	}
	stop()
	// After stop the context is released; a command can call stop
	// unconditionally in a defer.
}
