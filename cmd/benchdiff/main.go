// Command benchdiff compares the two newest committed benchmark
// snapshots (BENCH_<sha>.json, written by scripts/bench.sh) and prints
// per-benchmark deltas: ns/op, B/op and allocs/op, oldest → newest.
//
// Benchmarks in the hot-path set (-hot) whose ns/op regressed by more
// than -warn percent, or whose allocs/op rose, are flagged with a WARN
// line; with -github the flag is also emitted as a `::warning::`
// workflow command so CI annotates the run without failing it (the
// exit status is 0 either way — snapshots from different runners are a
// trajectory, not a gate; -fail turns warnings into exit 1 for local
// use).
//
// Snapshots suffixed -dirty are ignored: their numbers are attributable
// to no commit (see PERFORMANCE.md, "Snapshot hygiene").
//
// Snapshots record runner metadata (go version, GOMAXPROCS, core count,
// commit date); diffing two snapshots taken on different core counts
// prints a comparability note, since parallel benchmarks don't transfer
// across machine shapes.
//
// -obs switches to metric snapshots (obs/v1 JSON, written by the
// -metrics-out flag of mnostream/mnosweep): one file is validated and
// summarized, two comma-separated files are diffed counter by counter
// and histogram by histogram. A snapshot that fails to parse or carries
// the wrong schema is an error, which is what the CI smoke step relies
// on.
//
// Usage:
//
//	benchdiff [-dir DIR] [-warn PCT] [-hot REGEX] [-github] [-fail]
//	benchdiff -obs run.json
//	benchdiff -obs old.json,new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/cmd/internal/cli"
	"repro/internal/obs"
)

// snapshot mirrors the JSON scripts/bench.sh emits. The metadata fields
// are absent from snapshots written before they existed, so zero values
// mean "unknown", never "different".
type snapshot struct {
	Sha        string   `json:"sha"`
	Date       string   `json:"date"`
	CommitDate string   `json:"commit_date"`
	Go         string   `json:"go"`
	Gomaxprocs int      `json:"gomaxprocs"`
	Numcpu     int      `json:"numcpu"`
	Benchtime  string   `json:"benchtime"`
	Results    []result `json:"results"`

	path  string
	mtime int64
}

type result struct {
	Name        string   `json:"name"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// defaultHot is the hot-path set the CI regression warning watches: the
// per-day pipeline benchmarks whose trajectory the PRs optimize.
const defaultHot = `SimDayInto|EngineDayAppend|DayMetricsMerger|MergeVisits`

func main() {
	var (
		dir     = flag.String("dir", ".", "directory holding BENCH_<sha>.json snapshots")
		warn    = flag.Float64("warn", 10, "ns/op regression percent that triggers a warning (hot-path set only)")
		hot     = flag.String("hot", defaultHot, "regexp of the hot-path benchmark set")
		github  = flag.Bool("github", false, "emit GitHub ::warning:: workflow commands for flagged regressions")
		fail    = flag.Bool("fail", false, "exit 1 when a hot-path benchmark regresses past -warn")
		obsSpec = flag.String("obs", "", "metric snapshot mode: one obs/v1 JSON file to summarize, or two comma-separated files to diff")
	)
	flag.Parse()

	var err error
	if *obsSpec != "" {
		err = runObs(*obsSpec)
	} else {
		err = run(*dir, *warn, *hot, *github, *fail)
	}
	cli.Exit("benchdiff", err)
}

func run(dir string, warnPct float64, hotPattern string, github, fail bool) error {
	hot, err := regexp.Compile(hotPattern)
	if err != nil {
		return fmt.Errorf("bad -hot pattern: %w", err)
	}
	snaps, err := loadSnapshots(dir)
	if err != nil {
		return err
	}
	if len(snaps) < 2 {
		fmt.Printf("benchdiff: %d committed snapshot(s) in %s — need two to diff; nothing to do\n", len(snaps), dir)
		return nil
	}
	old, new := snaps[len(snaps)-2], snaps[len(snaps)-1]
	fmt.Printf("benchmark deltas: %s (%s) → %s (%s)\n", old.Sha, old.Date, new.Sha, new.Date)
	// Comparability: parallel benchmarks scale with the machine shape, so
	// deltas between runners with different core counts are mostly noise.
	// Only warn when both snapshots carry the metadata (older ones don't).
	if old.Numcpu > 0 && new.Numcpu > 0 && (old.Numcpu != new.Numcpu || old.Gomaxprocs != new.Gomaxprocs) {
		fmt.Printf("NOTE: snapshots ran on different core counts (%d cpus / GOMAXPROCS %d → %d cpus / GOMAXPROCS %d) — deltas are not comparable\n",
			old.Numcpu, old.Gomaxprocs, new.Numcpu, new.Gomaxprocs)
	}
	fmt.Println()
	fmt.Printf("%-36s %14s %14s %8s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "allocs", "Δallocs")

	oldBy := map[string]result{}
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	var warned int
	for _, nr := range new.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-36s %14s %14s %8s %9s %9s\n", nr.Name, "-", num(nr.NsPerOp), "new", allocs(nr.AllocsPerOp), "-")
			continue
		}
		dns := deltaPct(or.NsPerOp, nr.NsPerOp)
		dal := deltaAbs(or.AllocsPerOp, nr.AllocsPerOp)
		fmt.Printf("%-36s %14s %14s %8s %9s %9s\n",
			nr.Name, num(or.NsPerOp), num(nr.NsPerOp), pct(dns), allocs(nr.AllocsPerOp), signed(dal))
		if !hot.MatchString(nr.Name) {
			continue
		}
		var msgs []string
		if dns != nil && *dns > warnPct {
			msgs = append(msgs, fmt.Sprintf("ns/op regressed %.1f%% (>%g%%)", *dns, warnPct))
		}
		if dal != nil && *dal > 0 {
			msgs = append(msgs, fmt.Sprintf("allocs/op rose by %g", *dal))
		}
		if len(msgs) > 0 {
			warned++
			msg := fmt.Sprintf("%s: %s [%s → %s]", nr.Name, strings.Join(msgs, "; "), old.Sha, new.Sha)
			fmt.Printf("WARN %s\n", msg)
			if github {
				fmt.Printf("::warning title=benchmark regression::%s\n", msg)
			}
		}
	}
	if warned > 0 {
		fmt.Printf("\n%d hot-path regression(s) past the %g%% threshold — advisory only (cross-runner noise applies; see PERFORMANCE.md)\n", warned, warnPct)
		if fail {
			os.Exit(1)
		}
	}
	return nil
}

// loadSnapshots reads every clean BENCH_*.json in dir, ordered by the
// snapshot's own date stamp (RFC 3339 sorts lexically).
func loadSnapshots(dir string) ([]snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var snaps []snapshot
	for _, p := range paths {
		if strings.Contains(filepath.Base(p), "-dirty") {
			continue
		}
		buf, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var s snapshot
		if err := json.Unmarshal(buf, &s); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		s.path = p
		if fi, err := os.Stat(p); err == nil {
			s.mtime = fi.ModTime().UnixNano()
		}
		snaps = append(snaps, s)
	}
	// Date stamps have second resolution, so break ties by file mtime
	// (then path, for determinism) rather than the glob's sha-lexical
	// order, which says nothing about which snapshot is newer.
	sort.SliceStable(snaps, func(i, j int) bool {
		a, b := snaps[i], snaps[j]
		if a.Date != b.Date {
			return a.Date < b.Date
		}
		if a.mtime != b.mtime {
			return a.mtime < b.mtime
		}
		return a.path < b.path
	})
	return snaps, nil
}

func deltaPct(old, new *float64) *float64 {
	if old == nil || new == nil || *old == 0 {
		return nil
	}
	d := (*new - *old) / *old * 100
	return &d
}

func deltaAbs(old, new *float64) *float64 {
	if old == nil || new == nil {
		return nil
	}
	d := *new - *old
	return &d
}

func num(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", *v)
}

func allocs(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%g", *v)
}

func pct(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", *v)
}

func signed(v *float64) string {
	if v == nil {
		return "-"
	}
	if *v == 0 {
		return "0"
	}
	return fmt.Sprintf("%+g", *v)
}

// runObs handles metric snapshots: one path summarizes (and validates —
// a parse failure or wrong schema is an error), two comma-separated
// paths diff counters and histogram means between runs.
func runObs(spec string) error {
	paths := strings.Split(spec, ",")
	if len(paths) > 2 {
		return fmt.Errorf("-obs takes one or two comma-separated files, got %d", len(paths))
	}
	snaps := make([]obsSnap, len(paths))
	for i, p := range paths {
		s, err := loadObs(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		snaps[i] = s
	}
	if len(snaps) == 1 {
		printObs(snaps[0])
		return nil
	}
	diffObs(snaps[0], snaps[1])
	return nil
}

type obsSnap struct {
	obs.Snapshot
	path string
}

func loadObs(path string) (obsSnap, error) {
	var s obsSnap
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(buf, &s.Snapshot); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != obs.SchemaV1 {
		return s, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, obs.SchemaV1)
	}
	s.path = path
	return s, nil
}

func printObs(s obsSnap) {
	fmt.Printf("metric snapshot %s (%s): %d counters, %d gauges, %d histograms\n\n",
		s.path, s.Schema, len(s.Counters), len(s.Gauges), len(s.Histograms))
	for _, k := range sortedKeys(s.Counters) {
		fmt.Printf("%-40s %16d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Printf("%-40s %16d\n", k, s.Gauges[k])
	}
	if len(s.Histograms) > 0 {
		fmt.Printf("\n%-40s %10s %14s %14s\n", "histogram", "count", "mean ns", "p90 ns")
		for _, k := range sortedStrings(s.Histograms) {
			h := s.Histograms[k]
			fmt.Printf("%-40s %10d %14.0f %14.0f\n", k, h.Count, h.MeanNs, h.P90Ns)
		}
	}
}

func diffObs(a, b obsSnap) {
	fmt.Printf("metric deltas: %s → %s\n\n", a.path, b.path)
	fmt.Printf("%-40s %16s %16s\n", "counter/gauge", "old", "new")
	for _, k := range unionKeys(a.Counters, b.Counters) {
		fmt.Printf("%-40s %16d %16d\n", k, a.Counters[k], b.Counters[k])
	}
	for _, k := range unionKeys(a.Gauges, b.Gauges) {
		fmt.Printf("%-40s %16d %16d\n", k, a.Gauges[k], b.Gauges[k])
	}
	fmt.Printf("\n%-40s %14s %14s %8s\n", "histogram mean ns", "old", "new", "Δ")
	seen := map[string]bool{}
	var keys []string
	for k := range a.Histograms {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range b.Histograms {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		oh, nh := a.Histograms[k], b.Histograms[k]
		d := "-"
		if oh.MeanNs > 0 && nh.MeanNs > 0 {
			d = fmt.Sprintf("%+.1f%%", (nh.MeanNs-oh.MeanNs)/oh.MeanNs*100)
		}
		fmt.Printf("%-40s %14.0f %14.0f %8s\n", k, oh.MeanNs, nh.MeanNs, d)
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedStrings(m map[string]obs.HistSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unionKeys(a, b map[string]int64) []string {
	seen := map[string]bool{}
	var keys []string
	for k := range a {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range b {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
