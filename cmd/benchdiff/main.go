// Command benchdiff compares the two newest committed benchmark
// snapshots (BENCH_<sha>.json, written by scripts/bench.sh) and prints
// per-benchmark deltas: ns/op, B/op and allocs/op, oldest → newest.
//
// Benchmarks in the hot-path set (-hot) whose ns/op regressed by more
// than -warn percent, or whose allocs/op rose, are flagged with a WARN
// line; with -github the flag is also emitted as a `::warning::`
// workflow command so CI annotates the run without failing it (the
// exit status is 0 either way — snapshots from different runners are a
// trajectory, not a gate; -fail turns warnings into exit 1 for local
// use).
//
// Snapshots suffixed -dirty are ignored: their numbers are attributable
// to no commit (see PERFORMANCE.md, "Snapshot hygiene").
//
// Usage:
//
//	benchdiff [-dir DIR] [-warn PCT] [-hot REGEX] [-github] [-fail]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// snapshot mirrors the JSON scripts/bench.sh emits.
type snapshot struct {
	Sha       string   `json:"sha"`
	Date      string   `json:"date"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`

	path  string
	mtime int64
}

type result struct {
	Name        string   `json:"name"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// defaultHot is the hot-path set the CI regression warning watches: the
// per-day pipeline benchmarks whose trajectory the PRs optimize.
const defaultHot = `SimDayInto|EngineDayAppend|DayMetricsMerger|MergeVisits`

func main() {
	var (
		dir    = flag.String("dir", ".", "directory holding BENCH_<sha>.json snapshots")
		warn   = flag.Float64("warn", 10, "ns/op regression percent that triggers a warning (hot-path set only)")
		hot    = flag.String("hot", defaultHot, "regexp of the hot-path benchmark set")
		github = flag.Bool("github", false, "emit GitHub ::warning:: workflow commands for flagged regressions")
		fail   = flag.Bool("fail", false, "exit 1 when a hot-path benchmark regresses past -warn")
	)
	flag.Parse()

	if err := run(*dir, *warn, *hot, *github, *fail); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(dir string, warnPct float64, hotPattern string, github, fail bool) error {
	hot, err := regexp.Compile(hotPattern)
	if err != nil {
		return fmt.Errorf("bad -hot pattern: %w", err)
	}
	snaps, err := loadSnapshots(dir)
	if err != nil {
		return err
	}
	if len(snaps) < 2 {
		fmt.Printf("benchdiff: %d committed snapshot(s) in %s — need two to diff; nothing to do\n", len(snaps), dir)
		return nil
	}
	old, new := snaps[len(snaps)-2], snaps[len(snaps)-1]
	fmt.Printf("benchmark deltas: %s (%s) → %s (%s)\n\n", old.Sha, old.Date, new.Sha, new.Date)
	fmt.Printf("%-36s %14s %14s %8s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "allocs", "Δallocs")

	oldBy := map[string]result{}
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	var warned int
	for _, nr := range new.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-36s %14s %14s %8s %9s %9s\n", nr.Name, "-", num(nr.NsPerOp), "new", allocs(nr.AllocsPerOp), "-")
			continue
		}
		dns := deltaPct(or.NsPerOp, nr.NsPerOp)
		dal := deltaAbs(or.AllocsPerOp, nr.AllocsPerOp)
		fmt.Printf("%-36s %14s %14s %8s %9s %9s\n",
			nr.Name, num(or.NsPerOp), num(nr.NsPerOp), pct(dns), allocs(nr.AllocsPerOp), signed(dal))
		if !hot.MatchString(nr.Name) {
			continue
		}
		var msgs []string
		if dns != nil && *dns > warnPct {
			msgs = append(msgs, fmt.Sprintf("ns/op regressed %.1f%% (>%g%%)", *dns, warnPct))
		}
		if dal != nil && *dal > 0 {
			msgs = append(msgs, fmt.Sprintf("allocs/op rose by %g", *dal))
		}
		if len(msgs) > 0 {
			warned++
			msg := fmt.Sprintf("%s: %s [%s → %s]", nr.Name, strings.Join(msgs, "; "), old.Sha, new.Sha)
			fmt.Printf("WARN %s\n", msg)
			if github {
				fmt.Printf("::warning title=benchmark regression::%s\n", msg)
			}
		}
	}
	if warned > 0 {
		fmt.Printf("\n%d hot-path regression(s) past the %g%% threshold — advisory only (cross-runner noise applies; see PERFORMANCE.md)\n", warned, warnPct)
		if fail {
			os.Exit(1)
		}
	}
	return nil
}

// loadSnapshots reads every clean BENCH_*.json in dir, ordered by the
// snapshot's own date stamp (RFC 3339 sorts lexically).
func loadSnapshots(dir string) ([]snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var snaps []snapshot
	for _, p := range paths {
		if strings.Contains(filepath.Base(p), "-dirty") {
			continue
		}
		buf, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var s snapshot
		if err := json.Unmarshal(buf, &s); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		s.path = p
		if fi, err := os.Stat(p); err == nil {
			s.mtime = fi.ModTime().UnixNano()
		}
		snaps = append(snaps, s)
	}
	// Date stamps have second resolution, so break ties by file mtime
	// (then path, for determinism) rather than the glob's sha-lexical
	// order, which says nothing about which snapshot is newer.
	sort.SliceStable(snaps, func(i, j int) bool {
		a, b := snaps[i], snaps[j]
		if a.Date != b.Date {
			return a.Date < b.Date
		}
		if a.mtime != b.mtime {
			return a.mtime < b.mtime
		}
		return a.path < b.path
	})
	return snaps, nil
}

func deltaPct(old, new *float64) *float64 {
	if old == nil || new == nil || *old == 0 {
		return nil
	}
	d := (*new - *old) / *old * 100
	return &d
}

func deltaAbs(old, new *float64) *float64 {
	if old == nil || new == nil {
		return nil
	}
	d := *new - *old
	return &d
}

func num(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", *v)
}

func allocs(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%g", *v)
}

func pct(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", *v)
}

func signed(v *float64) string {
	if v == nil {
		return "-"
	}
	if *v == 0 {
		return "0"
	}
	return fmt.Sprintf("%+g", *v)
}
