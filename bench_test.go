// Benchmarks regenerating every table and figure of the paper (one
// benchmark per experiment, per DESIGN.md §3), the ablation sweeps of
// DESIGN.md §5, and micro-benchmarks of the hot paths (per-day
// simulation, per-day KPI generation, the mobility metrics).
//
// The shared fixture simulates once; figure benchmarks then measure the
// analysis/regeneration step, which is what varies across experiments.
package repro_test

import (
	"bytes"
	"context"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/epi"
	"repro/internal/experiments"
	"repro/internal/feeds"
	"repro/internal/feeds/colfmt"
	"repro/internal/geo"
	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/signaling"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

var (
	benchOnce sync.Once
	benchRes  *experiments.Results
	benchDay  []mobsim.DayTrace // one representative simulated day
)

func benchResults(b *testing.B) *experiments.Results {
	b.Helper()
	benchOnce.Do(func() {
		// The default scale: the figure checks are calibrated against it
		// (smaller populations make the Fig. 2 census fit too noisy).
		cfg := experiments.DefaultConfig()
		benchRes = experiments.RunStandard(cfg)
		benchDay = benchRes.Dataset.Sim.Day(timegrid.SimDay(timegrid.StudyDayOffset + 30))
	})
	return benchRes
}

// --- one benchmark per paper table/figure --------------------------------

func BenchmarkTable1Clusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := experiments.Table1(); len(f.Tables) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2HomeDetection(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := experiments.Fig2(r); !f.Passed() {
			b.Fatal("fig2 checks failed")
		}
	}
}

func BenchmarkFig3Gyration(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Mobility.NationalSeries(core.MetricGyration)
		if s.Len() != timegrid.StudyDays {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFig3Entropy(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Mobility.NationalSeries(core.MetricEntropy)
		if s.Len() != timegrid.StudyDays {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFig4CasesCorrelation(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := experiments.Fig4(r); !f.Passed() {
			b.Fatal("fig4 checks failed")
		}
	}
}

func BenchmarkFig5RegionalMobility(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig5(r)
	}
}

func BenchmarkFig6ClusterMobility(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(r)
	}
}

func BenchmarkFig7MobilityMatrix(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(r)
	}
}

func BenchmarkFig8NetworkKPIs(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig8(r)
	}
}

func BenchmarkFig9VoiceKPIs(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig9(r)
	}
}

func BenchmarkFig10ClusterKPIs(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig10(r)
	}
}

func BenchmarkFig11LondonDistricts(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig11(r)
	}
}

func BenchmarkFig12LondonClusters(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig12(r)
	}
}

// --- §2.3/§2.4 pipeline benchmarks ----------------------------------------

func BenchmarkSignalingFilter(b *testing.B) {
	r := benchResults(b)
	catalog := devices.NewCatalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := signaling.FilterPopulation(r.Dataset.Pop, catalog)
		if rep.NativeSmartphones == 0 {
			b.Fatal("filter dropped everyone")
		}
	}
}

func BenchmarkSignalingDay(b *testing.B) {
	r := benchResults(b)
	gen := signaling.NewGenerator(r.Dataset.Pop, 1)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		gen.Day(day, benchDay, func(*signaling.Event) { n++ })
	}
	if n == 0 {
		b.Fatal("no events")
	}
}

func BenchmarkRATShare(b *testing.B) {
	r := benchResults(b)
	gen := signaling.NewGenerator(r.Dataset.Pop, 1)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := signaling.NewRATShare(gen)
		rs.ConsumeDay(day, benchDay)
		if s := rs.Shares(); s[radio.RAT4G] < 0.5 {
			b.Fatal("4G share collapsed")
		}
	}
}

// --- ablation benchmarks (DESIGN.md §5) ------------------------------------

// BenchmarkAblationHomeNights sweeps the minimum-nights threshold of the
// home detection rule.
func BenchmarkAblationHomeNights(b *testing.B) {
	r := benchResults(b)
	days := make([][]mobsim.DayTrace, 14)
	for d := range days {
		days[d] = r.Dataset.Sim.Day(timegrid.SimDay(d))
	}
	for _, nights := range []int{7, 14, 21} {
		nights := nights
		b.Run(benchName("minNights", nights), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hd := core.NewHomeDetector(r.Dataset.Topology)
				hd.MinNights = nights
				for d := range days {
					hd.ConsumeDay(timegrid.SimDay(d), days[d])
				}
				_ = hd.Detect()
			}
		})
	}
}

// BenchmarkAblationTopN sweeps the per-user tower filter.
func BenchmarkAblationTopN(b *testing.B) {
	r := benchResults(b)
	topo := r.Dataset.Topology
	for _, n := range []int{5, 10, 20, 0} {
		n := n
		b.Run(benchName("topN", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range benchDay {
					core.ComputeDayMetrics(&benchDay[j], topo, n)
				}
			}
		})
	}
}

// BenchmarkAblationEntropyGranularity compares whole-day metrics with the
// per-4-hour-bin variant of §2.3.
func BenchmarkAblationEntropyGranularity(b *testing.B) {
	r := benchResults(b)
	topo := r.Dataset.Topology
	b.Run("day", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range benchDay {
				core.ComputeDayMetrics(&benchDay[j], topo, core.DefaultTopN)
			}
		}
	})
	b.Run("bins", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range benchDay {
				for bin := 0; bin < timegrid.BinsPerDay; bin++ {
					core.BinMetrics(&benchDay[j], topo, bin, core.DefaultTopN)
				}
			}
		}
	})
}

// BenchmarkAblationInterconnect sweeps the interconnect headroom that
// controls the voice-loss incident.
func BenchmarkAblationInterconnect(b *testing.B) {
	r := benchResults(b)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 23) // week-12 surge
	traces := r.Dataset.Sim.Day(day)
	for _, headroom := range []float64{0.9, 1.0, 1.5, 2.5} {
		headroom := headroom
		b.Run(benchName("headroomPct", int(headroom*100)), func(b *testing.B) {
			params := traffic.DefaultParams()
			params.InterconnectHeadroom = headroom
			eng := traffic.NewEngine(r.Dataset.Pop, r.Dataset.Scenario, params, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cells := eng.Day(day, traces); len(cells) == 0 {
					b.Fatal("no cells")
				}
			}
		})
	}
}

// BenchmarkAblationDailyAggregate compares the paper's hourly-median
// daily reduction against a mean-based variant at the analysis layer.
func BenchmarkAblationDailyAggregate(b *testing.B) {
	r := benchResults(b)
	eng := r.Dataset.Engine
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	b.Run("hourly-median", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Day(day, benchDay)
		}
	})
	// The mean variant is approximated by post-processing the medians;
	// its cost bound is the same engine pass.
	b.Run("hourly-median+postmean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cells := eng.Day(day, benchDay)
			var sum float64
			for j := range cells {
				sum += cells[j].Values[traffic.DLVolume]
			}
			_ = sum / float64(len(cells))
		}
	})
}

// --- micro-benchmarks of the hot paths -------------------------------------

func BenchmarkSimulateDay(b *testing.B) {
	r := benchResults(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Dataset.Sim.Day(timegrid.SimDay(timegrid.StudyDayOffset + i%timegrid.StudyDays))
	}
}

// BenchmarkSimDayInto is BenchmarkSimulateDay on the arena path: one
// warm DayBuffer reused across iterations. allocs/op should read 0.
func BenchmarkSimDayInto(b *testing.B) {
	r := benchResults(b)
	buf := mobsim.NewDayBuffer()
	r.Dataset.Sim.DayInto(buf, timegrid.SimDay(timegrid.StudyDayOffset))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Dataset.Sim.DayInto(buf, timegrid.SimDay(timegrid.StudyDayOffset+i%timegrid.StudyDays))
	}
}

func BenchmarkEngineDay(b *testing.B) {
	r := benchResults(b)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Dataset.Engine.Day(day, benchDay)
	}
}

// BenchmarkEngineDayAppend is BenchmarkEngineDay with a reused
// destination, the steady-state shape of every pipeline. allocs/op
// should read 0.
func BenchmarkEngineDayAppend(b *testing.B) {
	r := benchResults(b)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	var cells []traffic.CellDay
	cells = r.Dataset.Engine.DayAppend(cells, day, benchDay)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells = r.Dataset.Engine.DayAppend(cells[:0], day, benchDay)
	}
}

// BenchmarkEngineDayAppendInstrumented is BenchmarkEngineDayAppend with
// a live metrics registry attached: the instrumented path adds two clock
// reads, one histogram observe and one counter add per day. Compare
// against BenchmarkEngineDayAppend — the overhead budget is <= 2%
// (enforced qualitatively here, and allocs/op must still read 0).
func BenchmarkEngineDayAppendInstrumented(b *testing.B) {
	r := benchResults(b)
	eng := r.Dataset.Engine.Clone().Instrument(obs.New())
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	var cells []traffic.CellDay
	cells = eng.DayAppend(cells, day, benchDay)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells = eng.DayAppend(cells[:0], day, benchDay)
	}
}

// benchmarkEngineDayAppendSharded is BenchmarkEngineDayAppend on the
// intra-day sharded path: the visit accumulation partitioned across N
// per-shard tiles on the persistent worker pool, merged in shard-index
// order. allocs/op should read 0 (pinned by the traffic alloc tests).
// On a single-core runner the numbers show the sharding overhead near
// zero; the speedup needs cores.
func benchmarkEngineDayAppendSharded(b *testing.B, shards int) {
	r := benchResults(b)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	var cells []traffic.CellDay
	cells = r.Dataset.Engine.DayAppendSharded(cells, day, benchDay, shards)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells = r.Dataset.Engine.DayAppendSharded(cells[:0], day, benchDay, shards)
	}
}

func BenchmarkEngineDayAppendSharded2(b *testing.B) { benchmarkEngineDayAppendSharded(b, 2) }
func BenchmarkEngineDayAppendSharded4(b *testing.B) { benchmarkEngineDayAppendSharded(b, 4) }

func BenchmarkDayMetrics(b *testing.B) {
	r := benchResults(b)
	topo := r.Dataset.Topology
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeDayMetrics(&benchDay[i%len(benchDay)], topo, core.DefaultTopN)
	}
}

// BenchmarkDayMetricsMerger is BenchmarkDayMetrics through a reused
// VisitMerger, the steady-state shape of every analyzer. allocs/op
// should read 0.
func BenchmarkDayMetricsMerger(b *testing.B) {
	r := benchResults(b)
	topo := r.Dataset.Topology
	var mg core.VisitMerger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.DayMetrics(&benchDay[i%len(benchDay)], topo, core.DefaultTopN)
	}
}

// BenchmarkMergeVisits isolates the visit dedupe+sort inside the §2.3
// pipeline, on the reusable merger.
func BenchmarkMergeVisits(b *testing.B) {
	r := benchResults(b)
	topo := r.Dataset.Topology
	var mg core.VisitMerger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Merge(&benchDay[i%len(benchDay)], topo)
	}
}

func BenchmarkPopulationSynthesis(b *testing.B) {
	m := census.BuildUK(1)
	topo := radio.Build(m, radio.DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		popsim.Synthesize(m, topo, popsim.Config{Seed: uint64(i), TargetUsers: 2000})
	}
}

func BenchmarkBuildUK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		census.BuildUK(uint64(i))
	}
}

func BenchmarkTopologyBuild(b *testing.B) {
	m := census.BuildUK(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		radio.Build(m, radio.DefaultConfig(), uint64(i))
	}
}

// benchName formats a sub-benchmark label.
func benchName(key string, v int) string {
	return key + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// --- streaming engine benchmarks ---------------------------------------------

// BenchmarkRunStandardSerial is the serial end-to-end baseline the
// streaming benchmarks compare against: the full two-pass pipeline at
// the default popsim.ScaleSmall scale.
func BenchmarkRunStandardSerial(b *testing.B) {
	cfg := experiments.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := experiments.RunStandard(cfg); r.KPI == nil {
			b.Fatal("no KPI analyzer")
		}
	}
}

// benchmarkStream runs the sharded streaming pipeline end to end. The
// results are bit-identical to RunStandard; what varies is wall clock.
// Speedup over BenchmarkRunStandardSerial tracks the perf trajectory of
// the engine across PRs (on multi-core hardware; a single-core runner
// shows parity plus a small scheduling overhead).
func benchmarkStream(b *testing.B, workers int) {
	cfg := experiments.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r, err := experiments.RunStreaming(context.Background(), cfg, workers); err != nil || r.KPI == nil {
			b.Fatal("no KPI analyzer")
		}
	}
}

func BenchmarkStreamWorkers1(b *testing.B) { benchmarkStream(b, 1) }
func BenchmarkStreamWorkers4(b *testing.B) { benchmarkStream(b, 4) }
func BenchmarkStreamWorkers8(b *testing.B) { benchmarkStream(b, 8) }

// BenchmarkStreamSimSource isolates the parallel day-production stage
// (simulation + KPI engine on per-worker clones, re-sequenced).
func BenchmarkStreamSimSource(b *testing.B) {
	r := benchResults(b)
	d := r.Dataset
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := stream.NewSimSource(context.Background(), d.Sim, d.Engine,
			timegrid.SimDay(timegrid.StudyDayOffset), timegrid.SimDay(timegrid.StudyDayOffset+7),
			stream.Config{Workers: 4})
		days := 0
		for {
			bt, err := src.Next()
			if err != nil {
				break
			}
			bt.Release() // recycle the day buffer, as the engine would
			days++
		}
		if days != 7 {
			b.Fatalf("want 7 days, got %d", days)
		}
	}
}

// --- sweep benchmarks --------------------------------------------------------

var (
	sweepBenchOnce  sync.Once
	sweepBenchWorld *experiments.World
	sweepBenchCfg   experiments.Config
	sweepBenchScens []experiments.SweepScenario
)

// sweepBenchFixture builds one shared 1000-user world (KPI enabled) and
// a 4-scenario registry set, and warms the world's cached February
// home-detection pass so every sweep benchmark measures only the study
// passes.
func sweepBenchFixture(b *testing.B) (*experiments.World, experiments.Config, []experiments.SweepScenario) {
	b.Helper()
	sweepBenchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.TargetUsers = 1000
		sweepBenchCfg = cfg
		sweepBenchWorld = experiments.NewWorld(cfg)
		sweepBenchWorld.Homes()
		for _, name := range []string{
			scenario.DefaultCovid, scenario.NoPandemic, scenario.EarlyLockdown, scenario.VoiceSurge,
		} {
			s, err := scenario.Load(name)
			if err != nil {
				panic(err)
			}
			sweepBenchScens = append(sweepBenchScens, experiments.SweepScenario{Name: name, Scenario: s})
		}
	})
	return sweepBenchWorld, sweepBenchCfg, sweepBenchScens
}

// BenchmarkSweepSerial is the serial baseline of the sweep executor:
// four full-KPI scenario runs, one after another, over the one shared
// world.
func BenchmarkSweepSerial(b *testing.B) {
	w, cfg, scens := sweepBenchFixture(b)
	scfg := stream.Config{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runs, err := experiments.RunSweep(context.Background(), w, cfg, scfg, scens); err != nil || len(runs) != len(scens) {
			b.Fatal("short sweep")
		}
	}
}

// benchmarkSweepParallel runs the same sweep concurrently. Output is
// bit-identical to BenchmarkSweepSerial (asserted by the parity tests);
// what varies is wall clock, which on multi-core hardware should
// approach serial/min(parallel, cores, scenarios). Each scenario run is
// kept single-worker so the comparison isolates the outer parallelism.
func benchmarkSweepParallel(b *testing.B, parallel int) {
	w, cfg, scens := sweepBenchFixture(b)
	scfg := stream.Config{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runs, err := experiments.RunSweepParallel(context.Background(), w, cfg, scfg, scens, parallel); err != nil || len(runs) != len(scens) {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkSweepParallel is the headline parallel-sweep benchmark at
// two concurrent scenario runs (fixed, not GOMAXPROCS, so the
// concurrent path is exercised even on a single-core runner).
func BenchmarkSweepParallel(b *testing.B)  { benchmarkSweepParallel(b, 2) }
func BenchmarkSweepParallel4(b *testing.B) { benchmarkSweepParallel(b, 4) }

// sweepAllFixture builds the full 7-scenario registry set over its own
// world at the default popsim.ScaleSmall scale (the scale BenchmarkRunStandardSerial
// and the streaming benchmarks quote) — the copy-on-divergence headline
// pair runs here rather than on the small sweepBenchFixture world. At
// 1000 users the per-cell engine reduction and KPI fold, which do not
// scale with users, dominate each day and flatten the relative win of
// the shared prefix; at the production scale the per-user simulation
// work and the streaming pipeline overhead the forked path avoids are
// proportionally larger, so this pair reflects what mnosweep/ablate
// users actually see. February home detection is warmed so the pair
// measures only the study passes.
var (
	sweepAllOnce   sync.Once
	sweepAllWorld  *experiments.World
	sweepAllCfg    experiments.Config
	sweepAllScens_ []experiments.SweepScenario
)

func sweepAllFixture(b *testing.B) (*experiments.World, experiments.Config, []experiments.SweepScenario) {
	b.Helper()
	sweepAllOnce.Do(func() {
		sweepAllCfg = experiments.DefaultConfig()
		sweepAllWorld = experiments.NewWorld(sweepAllCfg)
		sweepAllWorld.Homes()
		for _, name := range scenario.Names() {
			s, err := scenario.Load(name)
			if err != nil {
				panic(err)
			}
			sweepAllScens_ = append(sweepAllScens_, experiments.SweepScenario{Name: name, Scenario: s})
		}
	})
	return sweepAllWorld, sweepAllCfg, sweepAllScens_
}

// benchmarkSweepRegistry sweeps the whole registry through the public
// executor with copy-on-divergence on or off — exactly the two sides of
// the mnosweep -share-prefix flag. Output is bit-identical either way
// (asserted by TestSharedPrefixSweepMatchesUnshared); what varies is
// wall clock: the shared path simulates each shared scenario prefix
// once and forks checkpoints at the divergence days (see PERFORMANCE.md,
// "Copy-on-divergence sweeps" for the expected gap decomposition).
func benchmarkSweepRegistry(b *testing.B, share bool) {
	w, cfg, scens := sweepAllFixture(b)
	scfg := stream.Config{Workers: 1}
	opt := experiments.SweepOptions{Parallel: 1, SharePrefix: share}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runs, err := experiments.RunSweepParallelOpts(context.Background(), w, cfg, scfg, scens, opt); err != nil || len(runs) != len(scens) {
			b.Fatal("short sweep")
		}
	}
}

func BenchmarkSweepSharedPrefix(b *testing.B)     { benchmarkSweepRegistry(b, true) }
func BenchmarkSweepUnsharedRegistry(b *testing.B) { benchmarkSweepRegistry(b, false) }

// BenchmarkQSketch measures the streaming quantile sketch hot path.
func BenchmarkQSketch(b *testing.B) {
	q := stream.NewQSketch()
	for i := 0; i < b.N; i++ {
		q.Add(float64(i%10000) + 0.5)
	}
	if q.Median() <= 0 {
		b.Fatal("bad median")
	}
}

// --- scale ladder ------------------------------------------------------------

// benchmarkScaleLadderRung builds a full stack (census, topology,
// population, simulator, KPI engine) at the given rung and measures the
// warm per-day hot path: one DayInto into a reused arena plus one
// DayAppend into a reused cell slice — the unit the 77-day study window
// multiplies. The rung's retained footprint is reported as a bytes/user
// metric from a ReadMemStats delta around the stack build (see
// PERFORMANCE.md, "Scale ladder"); TestBytesPerUserBudget enforces the
// documented per-user budget.
func benchmarkScaleLadderRung(b *testing.B, users int) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	d := experiments.NewDataset(cfg)
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if delta < 0 {
		delta = 0
	}

	buf := mobsim.NewDayBuffer()
	day0 := timegrid.SimDay(timegrid.StudyDayOffset)
	var cells []traffic.CellDay
	cells = d.Engine.DayAppend(cells, day0, d.Sim.DayInto(buf, day0)) // warm the arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day := timegrid.SimDay(timegrid.StudyDayOffset + i%timegrid.StudyDays)
		cells = d.Engine.DayAppend(cells[:0], day, d.Sim.DayInto(buf, day))
	}
	if len(cells) == 0 {
		b.Fatal("no cells")
	}
	// Reported after the loop: ResetTimer discards metrics set before it.
	b.ReportMetric(float64(delta)/float64(users), "bytes/user")
}

// BenchmarkScaleLadder walks the memory-diet scale ladder. The small
// rung is the default test/figure scale, the medium rung is the CI
// streaming smoke scale, and the large rung is the paper's full-MNO
// order of magnitude — it documents that a simulated day at a million
// subscribers completes in seconds on stock hardware.
func BenchmarkScaleLadder(b *testing.B) {
	for _, users := range []int{popsim.ScaleSmall, popsim.ScaleMedium, popsim.ScaleLarge} {
		b.Run(benchName("users", users), func(b *testing.B) {
			benchmarkScaleLadderRung(b, users)
		})
	}
}

// --- extension and infrastructure benchmarks --------------------------------

func BenchmarkExtSEIR(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := experiments.ExtSEIR(r); !f.Passed() {
			b.Fatal("ext-seir checks failed")
		}
	}
}

func BenchmarkSEIRIntegration(b *testing.B) {
	p := epi.UK2020()
	for i := 0; i < b.N; i++ {
		if _, err := epi.Run(p, 365, epi.ConstantContact(0.8)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridNearest(b *testing.B) {
	r := benchResults(b)
	topo := r.Dataset.Topology
	pts := make([]geo.Point, 256)
	src := rng.New(1)
	for i := range pts {
		pts[i] = geo.Pt(src.Range(200, 650), src.Range(50, 600))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.NearestTower(pts[i%len(pts)])
	}
}

func BenchmarkServingTower(b *testing.B) {
	r := benchResults(b)
	topo := r.Dataset.Topology
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw := &topo.Towers[i%len(topo.Towers)]
		topo.ServingTower(tw.Loc)
	}
}

func BenchmarkErlangB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traffic.ErlangB(float64(i%100)+1, 120)
	}
}

func BenchmarkTraceFeedRoundTrip(b *testing.B) {
	r := benchResults(b)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := feeds.NewTraceWriter(&buf)
		if err := w.WriteDay(day, benchDay); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		rd, err := feeds.NewTraceReader(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := rd.ReadDay(); err != nil {
			b.Fatal(err)
		}
	}
	_ = r
}

// --- feed replay: CSV vs columnar -------------------------------------------

// feedReplayDays is the number of simulated days each replay benchmark
// encodes and decodes per iteration.
const feedReplayDays = 3

// benchmarkFeedReplay builds a stack at the given rung, encodes
// feedReplayDays days of traces + KPI records in one format, and
// measures a full decode pass over the feed (the read side of
// `mnostream -feeds`). Reported metrics: bytes/day is the encoded feed
// size per day, ns/day the replay time per day. The columnar path
// reuses its readers via Reset (its steady state is allocation-free;
// colfmt's alloc pins enforce that), the CSV path re-opens per pass as
// feeds.OpenDir does.
func benchmarkFeedReplay(b *testing.B, users int, col bool) {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = users
	d := experiments.NewDataset(cfg)

	var traceBuf, kpiBuf bytes.Buffer
	var tw interface {
		WriteDay(timegrid.SimDay, []mobsim.DayTrace) error
		Flush() error
	}
	var kw interface {
		WriteDay(timegrid.SimDay, []traffic.CellDay) error
		Flush() error
	}
	if col {
		tw, kw = colfmt.NewTraceWriter(&traceBuf), colfmt.NewKPIWriter(&kpiBuf)
	} else {
		tw, kw = feeds.NewTraceWriter(&traceBuf), feeds.NewKPIWriter(&kpiBuf)
	}
	buf := mobsim.NewDayBuffer()
	var cells []traffic.CellDay
	for day := timegrid.SimDay(0); day < feedReplayDays; day++ {
		traces := d.Sim.DayInto(buf, day)
		if err := tw.WriteDay(day, traces); err != nil {
			b.Fatal(err)
		}
		cells = d.Engine.DayAppend(cells[:0], day, traces)
		if err := kw.WriteDay(day, cells); err != nil {
			b.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := kw.Flush(); err != nil {
		b.Fatal(err)
	}
	feedBytes := traceBuf.Len() + kpiBuf.Len()

	tr := bytes.NewReader(traceBuf.Bytes())
	kr := bytes.NewReader(kpiBuf.Bytes())
	var ctr *colfmt.TraceReader
	var ckr *colfmt.KPIReader
	if col {
		var err error
		if ctr, err = colfmt.NewTraceReader(tr); err != nil {
			b.Fatal(err)
		}
		if ckr, err = colfmt.NewKPIReader(kr); err != nil {
			b.Fatal(err)
		}
	}
	openTrace := func() (feeds.TraceDayReader, error) {
		tr.Reset(traceBuf.Bytes())
		if col {
			return ctr, ctr.Reset(tr)
		}
		return feeds.NewTraceReader(tr)
	}
	openKPI := func() (feeds.KPIDayReader, error) {
		kr.Reset(kpiBuf.Bytes())
		if col {
			return ckr, ckr.Reset(kr)
		}
		return feeds.NewKPIReader(kr)
	}

	visits := 0
	replay := func() error {
		trd, err := openTrace()
		if err != nil {
			return err
		}
		for {
			if _, err := trd.ReadDayInto(buf); err == io.EOF {
				break
			} else if err != nil {
				return err
			}
			visits += buf.Len()
		}
		krd, err := openKPI()
		if err != nil {
			return err
		}
		for {
			day, out, err := krd.ReadDayAppend(cells[:0])
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			_, cells = day, out
		}
		return nil
	}
	if err := replay(); err != nil { // warm the arenas before timing
		b.Fatal(err)
	}
	if visits == 0 {
		b.Fatal("replay decoded no visits")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := replay(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/feedReplayDays, "ns/day")
	b.ReportMetric(float64(feedBytes)/feedReplayDays, "bytes/day")
}

// BenchmarkFeedReplayCSV and BenchmarkFeedReplayCol compare feed decode
// throughput at the 8k (test/figure) and 100k (CI streaming) rungs —
// the measured table lives in PERFORMANCE.md, "Columnar feeds".
func BenchmarkFeedReplayCSV(b *testing.B) {
	for _, users := range []int{popsim.ScaleSmall, popsim.ScaleMedium} {
		b.Run(benchName("users", users), func(b *testing.B) {
			benchmarkFeedReplay(b, users, false)
		})
	}
}

func BenchmarkFeedReplayCol(b *testing.B) {
	for _, users := range []int{popsim.ScaleSmall, popsim.ScaleMedium} {
		b.Run(benchName("users", users), func(b *testing.B) {
			benchmarkFeedReplay(b, users, true)
		})
	}
}
