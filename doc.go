// Package repro is a full, self-contained Go reproduction of
// "A Characterization of the COVID-19 Pandemic Impact on a Mobile
// Network Operator Traffic" (Lutu, Perino, Bagnulo, Frias-Martinez,
// Khangosstar — ACM IMC 2020).
//
// The paper is a measurement study over a UK operator's proprietary
// control-plane and radio-KPI feeds; this module substitutes a complete
// synthetic United Kingdom and synthetic MNO (see DESIGN.md) and
// re-implements the paper's entire analysis pipeline on top of it:
// mobility entropy and radius of gyration, night-time home detection,
// mobility matrices, and the per-cell KPI delta statistics behind every
// figure.
//
// Entry points:
//
//   - internal/experiments: one runner per paper figure (Fig2 … Fig12),
//     with shape checks against the published results. RunStandard is
//     the serial pipeline; RunStreaming is the same pipeline on the
//     sharded streaming engine, bit-identical at any worker count. The
//     stack splits into a scenario-independent World (census + radio +
//     population, built once) and per-scenario run stacks
//     (World.Instantiate); RunSweep streams many scenarios over one
//     shared World and SweepTable compares their headlines.
//   - internal/stream: the sharded, backpressured streaming analytics
//     engine (worker-pool day production, hash-partitioned shard
//     stages, deterministic merge) every scaling path builds on.
//   - internal/scenario: declarative JSON scenario specs and the named
//     registry (default-covid, no-pandemic, early-lockdown, …) behind
//     every -scenario flag; lossless round trips to pandemic.Scenario
//     (see SCENARIOS.md).
//   - cmd/figures: regenerate all figures and print PASS/FAIL checks.
//   - cmd/mnosim: export the synthetic datasets as CSV (with -raw, the
//     replayable trace/KPI/event feed directory; -scenario selects the
//     behavioural timeline).
//   - cmd/mnostream: stream a feed directory — or the simulator inline,
//     under any -scenario — through the engine and emit rolling daily
//     KPI/mobility summaries (-workers / -shards).
//   - cmd/mnosweep: run a scenario set over one shared world — serially
//     or with -parallel N concurrent runs (bit-identical output) — and
//     print the headline comparison table plus, with -baseline NAME,
//     the per-series delta table against that run (-list shows the
//     registry).
//   - cmd/analyze, cmd/ablate, cmd/calibrate, cmd/mobilityrpt: ad-hoc
//     analysis, ablation sweeps (scenario ablation rides the sweep
//     runner), calibration and mobility reports.
//   - internal/obs: the nil-safe metrics layer behind -metrics (live
//     HTTP JSON + pprof) and -metrics-out (stable obs/v1 snapshots,
//     diffable with cmd/benchdiff -obs) on mnostream and mnosweep;
//     PERFORMANCE.md, "Observability", catalogs the metrics.
//   - examples/: runnable walk-throughs of the public pipeline.
//
// The benchmarks in bench_test.go regenerate every table and figure (one
// benchmark each), include the ablations called out in DESIGN.md, and
// track the streaming engine's speedup over the serial pipeline
// (BenchmarkStreamWorkers1/4/8 vs BenchmarkRunStandardSerial).
//
// Failure semantics are documented in RELIABILITY.md: every runner is
// context-cancellable (SIGINT/SIGTERM exits 130 with partial outputs
// flushed), panics in pipeline goroutines surface as typed
// stream.WorkerPanic errors, sweep runs fail independently, feed
// replays run strict or lenient (-lenient), interrupted sweeps resume
// from a run journal (mnosweep -journal/-resume), and internal/fault
// provides deterministic fault injection behind the -fault flags.
//
// The per-day hot path is zero-allocation in steady state: arena-backed
// day buffers (mobsim.DayBuffer), engine-owned KPI scratch
// (traffic.Engine.DayAppend), reusable per-user merge scratch
// (core.VisitMerger) and batch recycling through the streaming engine
// (stream.DayBatch.Release). PERFORMANCE.md documents the guarantees,
// the observability and profiling workflow (-metrics/-metrics-out,
// -cpuprofile/-memprofile) and scripts/bench.sh, which snapshots the
// perf trajectory.
package repro
