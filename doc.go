// Package repro is a full, self-contained Go reproduction of
// "A Characterization of the COVID-19 Pandemic Impact on a Mobile
// Network Operator Traffic" (Lutu, Perino, Bagnulo, Frias-Martinez,
// Khangosstar — ACM IMC 2020).
//
// The paper is a measurement study over a UK operator's proprietary
// control-plane and radio-KPI feeds; this module substitutes a complete
// synthetic United Kingdom and synthetic MNO (see DESIGN.md) and
// re-implements the paper's entire analysis pipeline on top of it:
// mobility entropy and radius of gyration, night-time home detection,
// mobility matrices, and the per-cell KPI delta statistics behind every
// figure.
//
// Entry points:
//
//   - internal/experiments: one runner per paper figure (Fig2 … Fig12),
//     with shape checks against the published results.
//   - cmd/figures: regenerate all figures and print PASS/FAIL checks.
//   - cmd/mnosim: export the synthetic datasets as CSV.
//   - cmd/mobilityrpt: ad-hoc mobility reports.
//   - examples/: runnable walk-throughs of the public pipeline.
//
// The benchmarks in bench_test.go regenerate every table and figure (one
// benchmark each) and include the ablations called out in DESIGN.md.
package repro
