// Package timegrid defines the study calendar used throughout the
// reproduction: the simulated period (1 February – 10 May 2020), the ISO
// week numbering the paper refers to (week 9 … week 19 of 2020), the
// hourly grid and the six disjoint 4-hour bins over which mobility
// statistics are aggregated, and the key dates of the UK intervention
// timeline.
//
// All times are UTC. Days are indexed two ways:
//
//   - SimDay: 0-based index from the simulation start (1 Feb 2020), which
//     includes the February home-detection window.
//   - StudyDay: 0-based index from the study start (Mon 24 Feb 2020, the
//     first day of ISO week 9), spanning the 77 days of weeks 9–19 that
//     every figure in the paper covers.
package timegrid

import (
	"fmt"
	"time"
)

// Calendar anchors. The paper's analysis window is weeks 9–19 of 2020 with
// week 9 as the pre-pandemic baseline; February is simulated additionally
// because the home-detection algorithm (§2.3) requires ≥14 nights observed
// "during February 2020".
var (
	// SimStart is the first simulated instant: 00:00 UTC, 1 Feb 2020.
	SimStart = time.Date(2020, time.February, 1, 0, 0, 0, 0, time.UTC)
	// StudyStart is the first day of ISO week 9 of 2020 (Mon 24 Feb).
	StudyStart = time.Date(2020, time.February, 24, 0, 0, 0, 0, time.UTC)
	// StudyEnd is the last day of ISO week 19 of 2020 (Sun 10 May).
	StudyEnd = time.Date(2020, time.May, 10, 0, 0, 0, 0, time.UTC)
)

// Sizes of the simulated grids.
const (
	// SimDays is the total number of simulated days (1 Feb – 10 May 2020,
	// inclusive; 2020 is a leap year).
	SimDays = 100
	// StudyDays is the number of days in the analysis window
	// (weeks 9–19, Mon 24 Feb – Sun 10 May 2020).
	StudyDays = 77
	// StudyDayOffset is the SimDay index of the first study day.
	StudyDayOffset = 23
	// FebruaryDays is the length of the home-detection window.
	FebruaryDays = 29
	// HoursPerDay is the hourly KPI grid resolution.
	HoursPerDay = 24
	// BinsPerDay is the number of disjoint 4-hour mobility bins per day
	// (§2.3: e.g. 04:00–08:00, 08:00–12:00, 12:00–16:00, …).
	BinsPerDay = 6
	// BinHours is the width of one mobility bin.
	BinHours = 4
	// FirstWeek and LastWeek bound the paper's week numbering.
	FirstWeek = 9
	LastWeek  = 19
	// StudyWeeks is the number of analysed weeks.
	StudyWeeks = LastWeek - FirstWeek + 1
	// BaselineWeek is the reference week for all delta-variation series.
	BaselineWeek = 9
)

// Key intervention dates of the UK COVID-19 timeline (§1), expressed as
// StudyDay indices. All fall within the study window.
var (
	// PandemicDeclared is 11 Mar 2020 (week 11): WHO declares a pandemic.
	PandemicDeclared = MustStudyDayOf(time.Date(2020, time.March, 11, 0, 0, 0, 0, time.UTC))
	// WorkFromHomeAdvice is 16 Mar 2020 (week 12): government recommends
	// working from home.
	WorkFromHomeAdvice = MustStudyDayOf(time.Date(2020, time.March, 16, 0, 0, 0, 0, time.UTC))
	// VenueClosures is 20 Mar 2020 (week 12): closure of schools,
	// restaurants, bars, gyms and sporting events.
	VenueClosures = MustStudyDayOf(time.Date(2020, time.March, 20, 0, 0, 0, 0, time.UTC))
	// LockdownStart is 23 Mar 2020 (week 13): nationwide stay-at-home
	// order.
	LockdownStart = MustStudyDayOf(time.Date(2020, time.March, 23, 0, 0, 0, 0, time.UTC))
)

// SimDay is a 0-based day index from SimStart (1 Feb 2020).
type SimDay int

// StudyDay is a 0-based day index from StudyStart (Mon 24 Feb 2020).
type StudyDay int

// Week is a week number of 2020 using the paper's (ISO) numbering.
type Week int

// Bin identifies one of the six disjoint 4-hour mobility bins of a day:
// bin 0 is 00:00–04:00, bin 1 is 04:00–08:00, and so on.
type Bin int

// DateOfSimDay returns the calendar date (midnight UTC) of a simulated day.
func DateOfSimDay(d SimDay) time.Time {
	return SimStart.AddDate(0, 0, int(d))
}

// DateOfStudyDay returns the calendar date (midnight UTC) of a study day.
func DateOfStudyDay(d StudyDay) time.Time {
	return StudyStart.AddDate(0, 0, int(d))
}

// SimDayOf returns the SimDay index of a date, and whether the date lies
// inside the simulated window.
func SimDayOf(t time.Time) (SimDay, bool) {
	d := int(t.Truncate(24*time.Hour).Sub(SimStart).Hours() / 24)
	if d < 0 || d >= SimDays {
		return 0, false
	}
	return SimDay(d), true
}

// StudyDayOf returns the StudyDay index of a date, and whether the date
// lies inside the study window (weeks 9–19).
func StudyDayOf(t time.Time) (StudyDay, bool) {
	d := int(t.Truncate(24*time.Hour).Sub(StudyStart).Hours() / 24)
	if d < 0 || d >= StudyDays {
		return 0, false
	}
	return StudyDay(d), true
}

// MustStudyDayOf is StudyDayOf for dates known to be inside the window;
// it panics otherwise. It is used for package-level constants.
func MustStudyDayOf(t time.Time) StudyDay {
	d, ok := StudyDayOf(t)
	if !ok {
		panic(fmt.Sprintf("timegrid: %s outside study window", t.Format("2006-01-02")))
	}
	return d
}

// ToStudyDay converts a SimDay to a StudyDay, reporting whether the day is
// inside the study window.
func (d SimDay) ToStudyDay() (StudyDay, bool) {
	s := int(d) - StudyDayOffset
	if s < 0 || s >= StudyDays {
		return 0, false
	}
	return StudyDay(s), true
}

// ToSimDay converts a StudyDay to its SimDay index.
func (d StudyDay) ToSimDay() SimDay { return SimDay(int(d) + StudyDayOffset) }

// Week returns the paper's week number for a study day. Study day 0 is the
// Monday of week 9, so weeks advance every 7 days.
func (d StudyDay) Week() Week { return Week(FirstWeek + int(d)/7) }

// Weekday returns the weekday of a study day.
func (d StudyDay) Weekday() time.Weekday { return DateOfStudyDay(d).Weekday() }

// IsWeekend reports whether the study day is a Saturday or Sunday.
func (d StudyDay) IsWeekend() bool {
	wd := d.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// IsWeekend reports whether the simulated day is a Saturday or Sunday.
func (d SimDay) IsWeekend() bool {
	wd := DateOfSimDay(d).Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// InFebruary reports whether the simulated day falls in the February 2020
// home-detection window.
func (d SimDay) InFebruary() bool { return int(d) < FebruaryDays }

// Days returns the StudyDay indices belonging to the week, clipped to the
// study window.
func (w Week) Days() []StudyDay {
	if w < FirstWeek || w > LastWeek {
		return nil
	}
	start := (int(w) - FirstWeek) * 7
	days := make([]StudyDay, 0, 7)
	for i := 0; i < 7; i++ {
		d := start + i
		if d >= StudyDays {
			break
		}
		days = append(days, StudyDay(d))
	}
	return days
}

// Valid reports whether the week is inside the analysis window.
func (w Week) Valid() bool { return w >= FirstWeek && w <= LastWeek }

// Index returns the 0-based index of the week within the study window.
func (w Week) Index() int { return int(w) - FirstWeek }

// Weeks returns all analysed weeks in order (9 … 19).
func Weeks() []Week {
	ws := make([]Week, 0, StudyWeeks)
	for w := Week(FirstWeek); w <= LastWeek; w++ {
		ws = append(ws, w)
	}
	return ws
}

// BinOfHour maps an hour of day (0–23) to its 4-hour bin.
func BinOfHour(hour int) Bin { return Bin(hour / BinHours) }

// Hours returns the first and one-past-last hour covered by the bin.
func (b Bin) Hours() (start, end int) { return int(b) * BinHours, (int(b) + 1) * BinHours }

// Contains reports whether the bin covers the given hour of day.
func (b Bin) Contains(hour int) bool {
	s, e := b.Hours()
	return hour >= s && hour < e
}

// String implements fmt.Stringer ("04:00-08:00" style).
func (b Bin) String() string {
	s, e := b.Hours()
	return fmt.Sprintf("%02d:00-%02d:00", s, e%24)
}

// String implements fmt.Stringer for weeks ("week 13").
func (w Week) String() string { return fmt.Sprintf("week %d", int(w)) }

// NightHour reports whether the hour of day falls inside the home-detection
// night window used in §2.3 (midnight through 08:00).
func NightHour(hour int) bool { return hour >= 0 && hour < 8 }

// Phase describes where a study day sits relative to the intervention
// timeline; it is used by the behaviour model and by phase-split analyses
// (e.g. the Fig. 4 correlation by phase).
type Phase int

// Phases of the UK timeline, in chronological order.
const (
	PhaseBaseline   Phase = iota // before the pandemic declaration
	PhasePandemic                // declaration → WFH advice
	PhaseTransition              // WFH advice → lockdown order
	PhaseLockdown                // lockdown → relaxation onset (week 15)
	PhaseRelaxation              // week 15 onward
)

// relaxationOnset is the first day of week 15, when the paper observes
// mobility "slightly increases … despite the lockdown still being
// enforced" (§3.1).
var relaxationOnset = StudyDay((15 - FirstWeek) * 7)

// PhaseOf returns the timeline phase of a study day.
func PhaseOf(d StudyDay) Phase {
	switch {
	case d < PandemicDeclared:
		return PhaseBaseline
	case d < WorkFromHomeAdvice:
		return PhasePandemic
	case d < LockdownStart:
		return PhaseTransition
	case d < relaxationOnset:
		return PhaseLockdown
	default:
		return PhaseRelaxation
	}
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseBaseline:
		return "baseline"
	case PhasePandemic:
		return "pandemic-declared"
	case PhaseTransition:
		return "transition"
	case PhaseLockdown:
		return "lockdown"
	case PhaseRelaxation:
		return "relaxation"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}
