package timegrid

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCalendarAnchors(t *testing.T) {
	if got := StudyStart.Weekday(); got != time.Monday {
		t.Errorf("StudyStart weekday = %v, want Monday", got)
	}
	if got := StudyEnd.Weekday(); got != time.Sunday {
		t.Errorf("StudyEnd weekday = %v, want Sunday", got)
	}
	if _, w := StudyStart.ISOWeek(); w != FirstWeek {
		t.Errorf("StudyStart ISO week = %d, want %d", w, FirstWeek)
	}
	if _, w := StudyEnd.ISOWeek(); w != LastWeek {
		t.Errorf("StudyEnd ISO week = %d, want %d", w, LastWeek)
	}
	if got := int(StudyEnd.Sub(StudyStart).Hours()/24) + 1; got != StudyDays {
		t.Errorf("study window spans %d days, want %d", got, StudyDays)
	}
	if got := int(StudyStart.Sub(SimStart).Hours() / 24); got != StudyDayOffset {
		t.Errorf("study offset = %d, want %d", got, StudyDayOffset)
	}
	if got := DateOfSimDay(SimDays - 1); !got.Equal(StudyEnd) {
		t.Errorf("last sim day = %v, want %v", got, StudyEnd)
	}
}

func TestInterventionDates(t *testing.T) {
	cases := []struct {
		name string
		day  StudyDay
		date string
		week Week
	}{
		{"pandemic declared", PandemicDeclared, "2020-03-11", 11},
		{"WFH advice", WorkFromHomeAdvice, "2020-03-16", 12},
		{"venue closures", VenueClosures, "2020-03-20", 12},
		{"lockdown", LockdownStart, "2020-03-23", 13},
	}
	for _, c := range cases {
		if got := DateOfStudyDay(c.day).Format("2006-01-02"); got != c.date {
			t.Errorf("%s: date = %s, want %s", c.name, got, c.date)
		}
		if got := c.day.Week(); got != c.week {
			t.Errorf("%s: week = %d, want %d", c.name, got, c.week)
		}
	}
}

func TestSimStudyDayRoundTrip(t *testing.T) {
	for d := SimDay(0); d < SimDays; d++ {
		sd, ok := d.ToStudyDay()
		if int(d) < StudyDayOffset {
			if ok {
				t.Fatalf("sim day %d should be outside study window", d)
			}
			continue
		}
		if !ok {
			t.Fatalf("sim day %d should be inside study window", d)
		}
		if back := sd.ToSimDay(); back != d {
			t.Fatalf("round trip %d -> %d -> %d", d, sd, back)
		}
	}
}

func TestStudyDayOfAndDateOf(t *testing.T) {
	for d := StudyDay(0); d < StudyDays; d++ {
		got, ok := StudyDayOf(DateOfStudyDay(d))
		if !ok || got != d {
			t.Fatalf("StudyDayOf(DateOfStudyDay(%d)) = %d, %v", d, got, ok)
		}
	}
	if _, ok := StudyDayOf(SimStart); ok {
		t.Error("1 Feb should be outside the study window")
	}
	if _, ok := SimDayOf(StudyEnd.AddDate(0, 0, 1)); ok {
		t.Error("11 May should be outside the simulated window")
	}
	if d, ok := SimDayOf(SimStart); !ok || d != 0 {
		t.Errorf("SimDayOf(SimStart) = %d, %v", d, ok)
	}
}

func TestWeeks(t *testing.T) {
	ws := Weeks()
	if len(ws) != StudyWeeks {
		t.Fatalf("Weeks() returned %d, want %d", len(ws), StudyWeeks)
	}
	total := 0
	for _, w := range ws {
		days := w.Days()
		total += len(days)
		for _, d := range days {
			if d.Week() != w {
				t.Errorf("day %d assigned to week %d, expected %d", d, d.Week(), w)
			}
		}
	}
	if total != StudyDays {
		t.Errorf("weeks cover %d days, want %d", total, StudyDays)
	}
	if Week(8).Valid() || Week(20).Valid() {
		t.Error("weeks 8 and 20 must be invalid")
	}
	if Week(8).Days() != nil {
		t.Error("invalid week should have no days")
	}
}

func TestWeekends(t *testing.T) {
	// 29 Feb 2020 was a Saturday: sim day 28, study day 5.
	if !(SimDay(28)).IsWeekend() {
		t.Error("29 Feb 2020 should be a weekend")
	}
	if !(StudyDay(5)).IsWeekend() {
		t.Error("study day 5 (Sat 29 Feb) should be a weekend")
	}
	if (StudyDay(0)).IsWeekend() {
		t.Error("study day 0 (Mon 24 Feb) should not be a weekend")
	}
	// Exactly 22 weekend days in 11 full weeks.
	n := 0
	for d := StudyDay(0); d < StudyDays; d++ {
		if d.IsWeekend() {
			n++
		}
	}
	if n != 22 {
		t.Errorf("%d weekend study days, want 22", n)
	}
}

func TestBins(t *testing.T) {
	for h := 0; h < HoursPerDay; h++ {
		b := BinOfHour(h)
		if !b.Contains(h) {
			t.Errorf("bin %v does not contain hour %d", b, h)
		}
		s, e := b.Hours()
		if h < s || h >= e {
			t.Errorf("hour %d outside bin bounds [%d, %d)", h, s, e)
		}
	}
	if got := Bin(1).String(); got != "04:00-08:00" {
		t.Errorf("Bin(1) = %q", got)
	}
	if got := Bin(5).String(); got != "20:00-00:00" {
		t.Errorf("Bin(5) = %q", got)
	}
}

func TestNightHour(t *testing.T) {
	for h := 0; h < HoursPerDay; h++ {
		want := h < 8
		if got := NightHour(h); got != want {
			t.Errorf("NightHour(%d) = %v, want %v", h, got, want)
		}
	}
}

func TestPhases(t *testing.T) {
	if got := PhaseOf(0); got != PhaseBaseline {
		t.Errorf("day 0 phase = %v", got)
	}
	if got := PhaseOf(PandemicDeclared); got != PhasePandemic {
		t.Errorf("declaration day phase = %v", got)
	}
	if got := PhaseOf(WorkFromHomeAdvice); got != PhaseTransition {
		t.Errorf("WFH day phase = %v", got)
	}
	if got := PhaseOf(LockdownStart); got != PhaseLockdown {
		t.Errorf("lockdown day phase = %v", got)
	}
	if got := PhaseOf(StudyDays - 1); got != PhaseRelaxation {
		t.Errorf("last day phase = %v", got)
	}
	// Phases are monotone in time.
	prev := PhaseBaseline
	for d := StudyDay(0); d < StudyDays; d++ {
		p := PhaseOf(d)
		if p < prev {
			t.Fatalf("phase regressed at day %d: %v after %v", d, p, prev)
		}
		prev = p
	}
}

func TestPhaseStrings(t *testing.T) {
	for p := PhaseBaseline; p <= PhaseRelaxation; p++ {
		if p.String() == "" {
			t.Errorf("phase %d has empty string", p)
		}
	}
}

func TestBinOfHourProperty(t *testing.T) {
	f := func(h uint8) bool {
		hour := int(h) % HoursPerDay
		b := BinOfHour(hour)
		return b >= 0 && int(b) < BinsPerDay && b.Contains(hour)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustStudyDayOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-window date")
		}
	}()
	MustStudyDayOf(time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC))
}
