// Package devices implements a synthetic substitute for the GSMA TAC
// device catalog used in §2.2 of the paper. A Type Allocation Code (TAC)
// is the first 8 digits of a device IMEI and is statically allocated to a
// device vendor and model; the paper joins signalling events against the
// catalog to keep only smartphones (primary personal devices), dropping
// Machine-to-Machine (M2M) devices such as smart meters and trackers.
//
// The package also models SIM identity (MCC/MNC) so that the paper's
// second filter — dropping international inbound roamers and keeping the
// MNO's native subscribers — can be exercised.
package devices

import (
	"fmt"

	"repro/internal/rng"
)

// Class is the coarse device classification the paper's analysis needs.
type Class int

// Device classes.
const (
	ClassSmartphone Class = iota
	ClassFeaturePhone
	ClassM2M    // smart sensors, meters, trackers, telematics
	ClassRouter // MiFi/home routers on cellular
	NumClasses  = int(ClassRouter) + 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSmartphone:
		return "smartphone"
	case ClassFeaturePhone:
		return "feature-phone"
	case ClassM2M:
		return "m2m"
	case ClassRouter:
		return "router"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IsPrimaryDevice reports whether the class is a plausible primary
// personal device; the mobility analysis of the paper keeps smartphones
// only (§2.3).
func (c Class) IsPrimaryDevice() bool { return c == ClassSmartphone }

// TAC is a Type Allocation Code: the first 8 digits of an IMEI.
type TAC uint32

// Entry is one catalog record, mirroring the fields §2.2 lists
// (manufacturer, brand/model, operating system, radio capability).
type Entry struct {
	TAC          TAC
	Manufacturer string
	Model        string
	OS           string
	Class        Class
	LTECapable   bool
}

// Catalog maps TACs to device metadata.
type Catalog struct {
	entries map[TAC]Entry
	byClass [NumClasses][]TAC
}

// vendorSpec seeds the synthetic catalog.
type vendorSpec struct {
	manufacturer string
	os           string
	class        Class
	models       int
	lte          bool
	// popularity is the relative share of this vendor's devices in the
	// subscriber population; used by AssignDevice.
	popularity float64
}

var vendorSpecs = []vendorSpec{
	{"Fruitphone", "iOS-like", ClassSmartphone, 24, true, 0.34},
	{"Galaxia", "Android-like", ClassSmartphone, 30, true, 0.30},
	{"Pixelworks", "Android-like", ClassSmartphone, 12, true, 0.08},
	{"Huaxia", "Android-like", ClassSmartphone, 18, true, 0.12},
	{"BudgetFone", "Android-like", ClassSmartphone, 16, true, 0.06},
	{"Classic Mobile", "proprietary", ClassFeaturePhone, 10, false, 0.03},
	{"MeterCorp", "rtos", ClassM2M, 14, false, 0.03},
	{"TrackIt", "rtos", ClassM2M, 10, true, 0.02},
	{"FleetSense", "rtos", ClassM2M, 8, true, 0.01},
	{"HomeLink", "linux", ClassRouter, 6, true, 0.01},
}

// NewCatalog builds the deterministic synthetic catalog. TACs are
// assigned from disjoint per-vendor ranges, like real GSMA allocations.
func NewCatalog() *Catalog {
	c := &Catalog{entries: make(map[TAC]Entry)}
	next := TAC(35_000_000) // plausible 8-digit space
	for _, v := range vendorSpecs {
		for i := 0; i < v.models; i++ {
			t := next
			next++
			e := Entry{
				TAC:          t,
				Manufacturer: v.manufacturer,
				Model:        fmt.Sprintf("%s-%02d", v.manufacturer, i+1),
				OS:           v.os,
				Class:        v.class,
				LTECapable:   v.lte,
			}
			c.entries[t] = e
			c.byClass[v.class] = append(c.byClass[v.class], t)
		}
	}
	return c
}

// Lookup returns the catalog entry for a TAC.
func (c *Catalog) Lookup(t TAC) (Entry, bool) {
	e, ok := c.entries[t]
	return e, ok
}

// IsSmartphone reports whether the TAC belongs to a smartphone; unknown
// TACs are conservatively treated as non-smartphones, as the paper's
// filtering drops unclassifiable devices.
func (c *Catalog) IsSmartphone(t TAC) bool {
	e, ok := c.entries[t]
	return ok && e.Class == ClassSmartphone
}

// Size returns the number of catalog entries.
func (c *Catalog) Size() int { return len(c.entries) }

// TACsOfClass returns all TACs of a class, in allocation order.
func (c *Catalog) TACsOfClass(cl Class) []TAC { return c.byClass[cl] }

// AssignDevice draws a device for a subscriber: a vendor weighted by
// popularity, then a uniform model of that vendor. The result is
// deterministic in the source's state.
func (c *Catalog) AssignDevice(src *rng.Source) Entry {
	weights := make([]float64, len(vendorSpecs))
	for i, v := range vendorSpecs {
		weights[i] = v.popularity
	}
	v := vendorSpecs[src.Pick(weights)]
	tacs := c.byClass[v.class]
	// Restrict to the chosen vendor's contiguous range.
	var own []TAC
	for _, t := range tacs {
		if e := c.entries[t]; e.Manufacturer == v.manufacturer {
			own = append(own, t)
		}
	}
	return c.entries[own[src.Intn(len(own))]]
}

// AssignSmartphone draws a smartphone for a primary-device subscriber:
// a smartphone vendor weighted by popularity, then a uniform model.
func (c *Catalog) AssignSmartphone(src *rng.Source) Entry {
	var weights []float64
	var vendors []vendorSpec
	for _, v := range vendorSpecs {
		if v.class == ClassSmartphone {
			vendors = append(vendors, v)
			weights = append(weights, v.popularity)
		}
	}
	v := vendors[src.Pick(weights)]
	var own []TAC
	for _, t := range c.byClass[ClassSmartphone] {
		if c.entries[t].Manufacturer == v.manufacturer {
			own = append(own, t)
		}
	}
	return c.entries[own[src.Intn(len(own))]]
}

// AssignM2MDevice draws an M2M device (for the non-smartphone population
// the signalling filter must reject).
func (c *Catalog) AssignM2MDevice(src *rng.Source) Entry {
	tacs := c.byClass[ClassM2M]
	return c.entries[tacs[src.Intn(len(tacs))]]
}

// PLMN identifies a mobile network by Mobile Country Code and Mobile
// Network Code, as carried in every signalling event (§2.2).
type PLMN struct {
	MCC uint16
	MNC uint16
}

// Network identities used by the simulator.
var (
	// HomePLMN is the studied UK MNO.
	HomePLMN = PLMN{MCC: 234, MNC: 10}
	// Foreign PLMNs observed as inbound roamers.
	foreignPLMNs = []PLMN{
		{MCC: 208, MNC: 1},   // France
		{MCC: 262, MNC: 2},   // Germany
		{MCC: 214, MNC: 7},   // Spain
		{MCC: 310, MNC: 260}, // USA
		{MCC: 222, MNC: 10},  // Italy
	}
)

// String implements fmt.Stringer ("234-10").
func (p PLMN) String() string { return fmt.Sprintf("%d-%d", p.MCC, p.MNC) }

// IsNative reports whether the PLMN is the studied MNO's own network;
// the paper keeps native users and drops international inbound roamers.
func (p PLMN) IsNative() bool { return p == HomePLMN }

// RoamerPLMN draws a foreign PLMN for an inbound roamer.
func RoamerPLMN(src *rng.Source) PLMN {
	return foreignPLMNs[src.Intn(len(foreignPLMNs))]
}
