package devices

import (
	"testing"

	"repro/internal/rng"
)

func TestCatalogConstruction(t *testing.T) {
	c := NewCatalog()
	if c.Size() == 0 {
		t.Fatal("empty catalog")
	}
	// Every entry is indexed consistently by class and TAC.
	total := 0
	for cl := Class(0); int(cl) < NumClasses; cl++ {
		tacs := c.TACsOfClass(cl)
		total += len(tacs)
		for _, tac := range tacs {
			e, ok := c.Lookup(tac)
			if !ok {
				t.Fatalf("TAC %d not found", tac)
			}
			if e.Class != cl {
				t.Errorf("TAC %d class %v, indexed under %v", tac, e.Class, cl)
			}
			if e.Manufacturer == "" || e.Model == "" {
				t.Errorf("TAC %d missing metadata", tac)
			}
		}
	}
	if total != c.Size() {
		t.Errorf("class index covers %d, catalog has %d", total, c.Size())
	}
}

func TestTACsDisjoint(t *testing.T) {
	c := NewCatalog()
	seen := map[TAC]bool{}
	for cl := Class(0); int(cl) < NumClasses; cl++ {
		for _, tac := range c.TACsOfClass(cl) {
			if seen[tac] {
				t.Fatalf("TAC %d allocated twice", tac)
			}
			seen[tac] = true
		}
	}
}

func TestIsSmartphone(t *testing.T) {
	c := NewCatalog()
	for _, tac := range c.TACsOfClass(ClassSmartphone) {
		if !c.IsSmartphone(tac) {
			t.Errorf("smartphone TAC %d not recognised", tac)
		}
	}
	for _, tac := range c.TACsOfClass(ClassM2M) {
		if c.IsSmartphone(tac) {
			t.Errorf("M2M TAC %d classified as smartphone", tac)
		}
	}
	if c.IsSmartphone(TAC(1)) {
		t.Error("unknown TAC should not be a smartphone")
	}
}

func TestClassSemantics(t *testing.T) {
	if !ClassSmartphone.IsPrimaryDevice() {
		t.Error("smartphone should be a primary device")
	}
	for _, cl := range []Class{ClassFeaturePhone, ClassM2M, ClassRouter} {
		if cl.IsPrimaryDevice() {
			t.Errorf("%v should not be a primary device", cl)
		}
	}
	for cl := Class(0); int(cl) < NumClasses; cl++ {
		if cl.String() == "" {
			t.Errorf("class %d has empty name", cl)
		}
	}
}

func TestAssignDeviceDistribution(t *testing.T) {
	c := NewCatalog()
	src := rng.New(1)
	smart := 0
	const n = 5000
	vendors := map[string]int{}
	for i := 0; i < n; i++ {
		e := c.AssignDevice(src)
		vendors[e.Manufacturer]++
		if e.Class == ClassSmartphone {
			smart++
		}
	}
	// ~90% of the popularity mass is smartphones.
	if frac := float64(smart) / n; frac < 0.80 || frac > 0.98 {
		t.Errorf("smartphone share = %v", frac)
	}
	if len(vendors) < 5 {
		t.Errorf("only %d vendors drawn", len(vendors))
	}
}

func TestAssignDeviceDeterminism(t *testing.T) {
	c := NewCatalog()
	a, b := rng.New(9), rng.New(9)
	for i := 0; i < 100; i++ {
		if c.AssignDevice(a).TAC != c.AssignDevice(b).TAC {
			t.Fatal("AssignDevice not deterministic")
		}
	}
}

func TestAssignM2MDevice(t *testing.T) {
	c := NewCatalog()
	src := rng.New(2)
	for i := 0; i < 200; i++ {
		e := c.AssignM2MDevice(src)
		if e.Class != ClassM2M {
			t.Fatalf("AssignM2MDevice returned %v", e.Class)
		}
	}
}

func TestPLMN(t *testing.T) {
	if !HomePLMN.IsNative() {
		t.Error("home PLMN should be native")
	}
	src := rng.New(3)
	for i := 0; i < 100; i++ {
		p := RoamerPLMN(src)
		if p.IsNative() {
			t.Fatal("roamer PLMN classified native")
		}
		if p.String() == "" {
			t.Error("PLMN string empty")
		}
	}
	if HomePLMN.String() != "234-10" {
		t.Errorf("home PLMN = %s", HomePLMN.String())
	}
}
