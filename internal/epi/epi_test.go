package epi

import (
	"math"
	"testing"

	"repro/internal/pandemic"
	"repro/internal/timegrid"
)

func TestConservation(t *testing.T) {
	p := UK2020()
	r, err := Run(p, 120, ConstantContact(1))
	if err != nil {
		t.Fatal(err)
	}
	for d, s := range r.States {
		total := s.S + s.E + s.I + s.R
		if math.Abs(total-p.Population) > p.Population*1e-6 {
			t.Fatalf("day %d: compartments sum to %v, want %v", d, total, p.Population)
		}
		if s.S < 0 || s.E < -1e-6 || s.I < -1e-6 || s.R < -1e-6 {
			t.Fatalf("day %d: negative compartment %+v", d, s)
		}
	}
}

func TestEpidemicGrowsThenWanes(t *testing.T) {
	p := UK2020()
	r, err := Run(p, 360, ConstantContact(1))
	if err != nil {
		t.Fatal(err)
	}
	peakDay, peak := r.PeakInfectious()
	if peakDay <= 10 || peakDay >= 250 {
		t.Errorf("peak at day %d", peakDay)
	}
	if peak < p.SeedInfections*10 {
		t.Errorf("peak %v too small", peak)
	}
	// After the peak the epidemic wanes.
	last := r.States[len(r.States)-1]
	if last.I > peak/4 {
		t.Errorf("end infectious %v vs peak %v: no decline", last.I, peak)
	}
	// Classic SEIR final size with R0≈2.8: most of the population.
	ar := r.AttackRate(p.Population)
	if ar < 0.7 || ar > 1 {
		t.Errorf("attack rate = %v", ar)
	}
}

func TestInterventionShrinksEpidemic(t *testing.T) {
	p := UK2020()
	horizon := 200
	free, err := Run(p, horizon, ConstantContact(1))
	if err != nil {
		t.Fatal(err)
	}
	// Contact rate halves on day 30 (a lockdown).
	locked, err := Run(p, horizon, func(day float64) float64 {
		if day < 30 {
			return 1
		}
		return 0.35
	})
	if err != nil {
		t.Fatal(err)
	}
	if locked.AttackRate(p.Population) >= free.AttackRate(p.Population)*0.8 {
		t.Errorf("lockdown attack rate %v vs free %v: intervention ineffective",
			locked.AttackRate(p.Population), free.AttackRate(p.Population))
	}
	_, freePeak := free.PeakInfectious()
	_, lockPeak := locked.PeakInfectious()
	if lockPeak >= freePeak {
		t.Error("lockdown did not flatten the peak")
	}
}

func TestConfirmedCurveProperties(t *testing.T) {
	p := UK2020()
	r, err := Run(p, 150, ConstantContact(0.9))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for d, c := range r.Confirmed {
		if c < prev {
			t.Fatalf("confirmed curve not monotone at day %d", d)
		}
		prev = c
	}
	// Ascertainment bounds confirmed below cumulative infections.
	last := len(r.Confirmed) - 1
	if r.Confirmed[last] > r.States[last].CumInfections {
		t.Error("confirmed exceeds infections")
	}
	// Reporting lag: confirmed lags the unlagged series.
	if r.Confirmed[p.ReportingLagDays] > p.Ascertainment*r.States[p.ReportingLagDays].CumInfections+1e-6 {
		t.Error("reporting lag not applied")
	}
}

func TestScenarioCoupledContact(t *testing.T) {
	// Drive the SEIR model with the behavioural scenario's activity —
	// the mechanistic replacement for the logistic case curve.
	scen := pandemic.Default()
	contact := func(day float64) float64 {
		sd := timegrid.StudyDay(day)
		if sd >= timegrid.StudyDays {
			sd = timegrid.StudyDays - 1
		}
		// Transmission scales between a floor (household) and full
		// baseline contact with the activity level.
		return 0.35 + 0.65*scen.Activity(sd)
	}
	p := UK2020()
	r, err := Run(p, timegrid.StudyDays, contact)
	if err != nil {
		t.Fatal(err)
	}
	// Peak infectious lands after the lockdown starts (the intervention
	// bends the curve), well inside the window.
	peakDay, _ := r.PeakInfectious()
	if peakDay < int(timegrid.LockdownStart) {
		t.Errorf("peak at day %d, before the lockdown at %d", peakDay, timegrid.LockdownStart)
	}
	// First-wave attack rate stays well below the free-running epidemic.
	if ar := r.AttackRate(p.Population); ar > 0.35 {
		t.Errorf("attack rate %v too high for a suppressed first wave", ar)
	}
	// Confirmed cases land in the first-wave ballpark (10^5 … 10^6).
	final := r.Confirmed[len(r.Confirmed)-1]
	if final < 5e4 || final > 5e6 {
		t.Errorf("confirmed cases = %v", final)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{},
		{Population: -1, R0: 2, IncubationDays: 5, InfectiousDays: 5},
		{Population: 1000, R0: 0, IncubationDays: 5, InfectiousDays: 5},
		{Population: 1000, R0: 2, IncubationDays: 0, InfectiousDays: 5},
		{Population: 1000, R0: 2, IncubationDays: 5, InfectiousDays: 5, SeedInfections: 5000},
		{Population: 1000, R0: 2, IncubationDays: 5, InfectiousDays: 5, Ascertainment: 2},
		{Population: 1000, R0: 2, IncubationDays: 5, InfectiousDays: 5, ReportingLagDays: -1},
	}
	for i, p := range bad {
		if _, err := Run(p, 10, nil); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := Run(UK2020(), -5, nil); err == nil {
		t.Error("negative horizon accepted")
	}
	// Nil contact defaults to baseline.
	if _, err := Run(UK2020(), 10, nil); err != nil {
		t.Errorf("nil contact rejected: %v", err)
	}
}

func TestEffectiveR(t *testing.T) {
	p := UK2020()
	s := State{S: p.Population, I: 1}
	if got := EffectiveR(p, nil, s); math.Abs(got-p.R0) > 1e-9 {
		t.Errorf("initial Reff = %v, want R0 %v", got, p.R0)
	}
	half := State{S: p.Population / 2}
	if got := EffectiveR(p, ConstantContact(0.5), half); math.Abs(got-p.R0/4) > 1e-9 {
		t.Errorf("Reff = %v, want R0/4", got)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(UK2020(), 100, ConstantContact(0.8))
	b, _ := Run(UK2020(), 100, ConstantContact(0.8))
	for d := range a.States {
		if a.States[d] != b.States[d] {
			t.Fatalf("states differ at day %d", d)
		}
	}
}
