// Package epi implements a deterministic SEIR compartmental epidemic
// model. The paper only consumes the *cumulative confirmed case curve*
// (Fig. 4 correlates it with mobility), for which the pandemic package
// ships a calibrated logistic; this package provides the mechanistic
// alternative: an SEIR integration whose transmission rate responds to
// the simulated mobility reduction, so counterfactual scenarios (see
// pandemic.Builder) get epidemiologically-consistent case curves.
//
// The model is the classic four-compartment system over a closed
// population N:
//
//	S' = −β(t)·S·I/N
//	E' = +β(t)·S·I/N − σ·E
//	I' = +σ·E − γ·I
//	R' = +γ·I
//
// integrated with RK4 at fixed steps. β(t) is supplied by the caller as
// a contact-rate curve — typically proportional to the behavioural
// scenario's activity level, which is precisely the feedback loop the
// interventions create. Confirmed cases are modelled as a constant
// ascertainment fraction of cumulative infections, reported with a lag.
package epi

import (
	"errors"
	"fmt"
)

// Params configures the SEIR model.
type Params struct {
	// Population is the closed population N.
	Population float64
	// R0 is the basic reproduction number at baseline contact rates;
	// beta(t) = R0·γ·contact(t).
	R0 float64
	// IncubationDays is 1/σ (exposed → infectious).
	IncubationDays float64
	// InfectiousDays is 1/γ (infectious → removed).
	InfectiousDays float64
	// SeedInfections is the initial infectious count I(0); E(0) is
	// seeded at twice that, as in early-growth conditions.
	SeedInfections float64
	// Ascertainment is the fraction of cumulative infections that
	// appear as lab-confirmed cases.
	Ascertainment float64
	// ReportingLagDays delays confirmed counts relative to infection.
	ReportingLagDays int
	// StepsPerDay is the RK4 resolution (default 4).
	StepsPerDay int
}

// UK2020 returns parameters in the ranges the early-2020 literature
// used for the UK epidemic (R0 ≈ 2.8, ~5 day incubation, ~5 day
// infectious period, low ascertainment of the first wave).
func UK2020() Params {
	return Params{
		Population:       66_000_000,
		R0:               2.8,
		IncubationDays:   5,
		InfectiousDays:   5,
		SeedInfections:   2_000, // imported seeding by late February
		Ascertainment:    0.045,
		ReportingLagDays: 6,
		StepsPerDay:      4,
	}
}

// validate checks parameter sanity.
func (p Params) validate() error {
	switch {
	case p.Population <= 0:
		return errors.New("epi: non-positive population")
	case p.R0 <= 0:
		return errors.New("epi: non-positive R0")
	case p.IncubationDays <= 0 || p.InfectiousDays <= 0:
		return errors.New("epi: non-positive stage durations")
	case p.SeedInfections < 0 || p.SeedInfections > p.Population:
		return fmt.Errorf("epi: seed infections %v out of range", p.SeedInfections)
	case p.Ascertainment < 0 || p.Ascertainment > 1:
		return fmt.Errorf("epi: ascertainment %v out of [0,1]", p.Ascertainment)
	case p.ReportingLagDays < 0:
		return errors.New("epi: negative reporting lag")
	}
	return nil
}

// State is the compartment occupancy at one day boundary.
type State struct {
	S, E, I, R float64
	// CumInfections is the running total of everyone who has left S.
	CumInfections float64
}

// Result is a full simulated trajectory at daily resolution.
type Result struct {
	Days   int
	States []State // len Days+1; States[0] is the initial condition
	// Confirmed[d] is the cumulative lab-confirmed count on day d,
	// after ascertainment and reporting lag.
	Confirmed []float64
}

// ContactFunc returns the relative contact rate on a (possibly
// fractional) day: 1.0 at baseline, lower under restrictions. Values are
// clamped at 0.
type ContactFunc func(day float64) float64

// ConstantContact returns a flat contact curve.
func ConstantContact(level float64) ContactFunc {
	return func(float64) float64 { return level }
}

// Run integrates the model for the given number of days.
func Run(p Params, days int, contact ContactFunc) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if days < 0 {
		return Result{}, errors.New("epi: negative horizon")
	}
	if contact == nil {
		contact = ConstantContact(1)
	}
	steps := p.StepsPerDay
	if steps <= 0 {
		steps = 4
	}
	sigma := 1 / p.IncubationDays
	gamma := 1 / p.InfectiousDays
	beta0 := p.R0 * gamma

	st := State{
		S: p.Population - 3*p.SeedInfections,
		E: 2 * p.SeedInfections,
		I: p.SeedInfections,
		R: 0,
	}
	st.CumInfections = p.Population - st.S

	res := Result{Days: days}
	res.States = make([]State, 0, days+1)
	res.States = append(res.States, st)

	h := 1.0 / float64(steps)
	deriv := func(s State, t float64) (dS, dE, dI, dR float64) {
		c := contact(t)
		if c < 0 {
			c = 0
		}
		force := beta0 * c * s.S * s.I / p.Population
		return -force, force - sigma*s.E, sigma*s.E - gamma*s.I, gamma * s.I
	}

	for d := 0; d < days; d++ {
		for k := 0; k < steps; k++ {
			t := float64(d) + float64(k)*h
			// RK4 step.
			s1S, s1E, s1I, s1R := deriv(st, t)
			mid1 := State{S: st.S + h/2*s1S, E: st.E + h/2*s1E, I: st.I + h/2*s1I, R: st.R + h/2*s1R}
			s2S, s2E, s2I, s2R := deriv(mid1, t+h/2)
			mid2 := State{S: st.S + h/2*s2S, E: st.E + h/2*s2E, I: st.I + h/2*s2I, R: st.R + h/2*s2R}
			s3S, s3E, s3I, s3R := deriv(mid2, t+h/2)
			end := State{S: st.S + h*s3S, E: st.E + h*s3E, I: st.I + h*s3I, R: st.R + h*s3R}
			s4S, s4E, s4I, s4R := deriv(end, t+h)
			st.S += h / 6 * (s1S + 2*s2S + 2*s3S + s4S)
			st.E += h / 6 * (s1E + 2*s2E + 2*s3E + s4E)
			st.I += h / 6 * (s1I + 2*s2I + 2*s3I + s4I)
			st.R += h / 6 * (s1R + 2*s2R + 2*s3R + s4R)
			if st.S < 0 {
				st.S = 0
			}
		}
		st.CumInfections = p.Population - st.S
		res.States = append(res.States, st)
	}

	// Confirmed cases: lagged, ascertained cumulative infections.
	res.Confirmed = make([]float64, days+1)
	for d := 0; d <= days; d++ {
		src := d - p.ReportingLagDays
		if src < 0 {
			src = 0
		}
		res.Confirmed[d] = p.Ascertainment * res.States[src].CumInfections
	}
	return res, nil
}

// PeakInfectious returns the day and level of the infectious peak.
func (r Result) PeakInfectious() (day int, level float64) {
	for d, s := range r.States {
		if s.I > level {
			level = s.I
			day = d
		}
	}
	return day, level
}

// AttackRate returns the fraction of the population infected by the end
// of the horizon.
func (r Result) AttackRate(population float64) float64 {
	if len(r.States) == 0 || population <= 0 {
		return 0
	}
	return r.States[len(r.States)-1].CumInfections / population
}

// EffectiveR returns the effective reproduction number on a given day:
// R0 · contact(day) · S/N.
func EffectiveR(p Params, contact ContactFunc, s State) float64 {
	c := 1.0
	if contact != nil {
		c = contact(0)
	}
	return p.R0 * c * s.S / p.Population
}
