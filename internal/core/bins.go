package core

import (
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

// ComputeAllBinMetrics computes the mobility metrics for each of the six
// disjoint 4-hour bins of a day — the per-bin aggregation §2.3 describes
// alongside the whole-day metrics. Hot loops should hold a VisitMerger
// and call its AllBinMetrics method, which reuses scratch across users.
func ComputeAllBinMetrics(t *mobsim.DayTrace, topo *radio.Topology, topN int) [timegrid.BinsPerDay]DayMetrics {
	var m VisitMerger
	return m.AllBinMetrics(t, topo, topN)
}

// BinAnalyzer aggregates national mobility metrics per 4-hour bin of the
// day: the paper generates statistics "over six disjoint 4-hour bins of
// the day … and also over the entire day" (§2.3). It shows the diurnal
// structure of the lockdown response — daytime bins collapse, night bins
// barely move.
type BinAnalyzer struct {
	pop  *popsim.Population
	topN int
	mg   VisitMerger // per-user merge scratch, reused across the stream

	sumE [timegrid.BinsPerDay][timegrid.StudyDays]float64
	sumG [timegrid.BinsPerDay][timegrid.StudyDays]float64
	n    [timegrid.BinsPerDay][timegrid.StudyDays]int
}

// NewBinAnalyzer returns an analyzer with the paper's top-N filter.
func NewBinAnalyzer(pop *popsim.Population, topN int) *BinAnalyzer {
	return &BinAnalyzer{pop: pop, topN: topN}
}

// ConsumeDay ingests one simulated day; February days are ignored.
func (a *BinAnalyzer) ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	sd, ok := day.ToStudyDay()
	if !ok {
		return
	}
	topo := a.pop.Topology()
	for i := range traces {
		ms := a.mg.AllBinMetrics(&traces[i], topo, a.topN)
		for b := 0; b < timegrid.BinsPerDay; b++ {
			if ms[b].Towers == 0 {
				continue
			}
			a.sumE[b][sd] += ms[b].Entropy
			a.sumG[b][sd] += ms[b].Gyration
			a.n[b][sd]++
		}
	}
}

// BinSeries returns the national daily average of the metric within the
// given 4-hour bin.
func (a *BinAnalyzer) BinSeries(bin timegrid.Bin, metric MobilityMetric) stats.Series {
	s := stats.NewSeries(bin.String(), timegrid.StudyDays)
	for d := 0; d < timegrid.StudyDays; d++ {
		if a.n[bin][d] == 0 {
			continue
		}
		switch metric {
		case MetricEntropy:
			s.Values[d] = a.sumE[bin][d] / float64(a.n[bin][d])
		default:
			s.Values[d] = a.sumG[bin][d] / float64(a.n[bin][d])
		}
	}
	return s
}

// BandAnalyzer tracks the per-user distribution of the daily mobility
// metrics with streaming quantile estimators (P²), supporting the
// paper's observation that "metrics distributions have little variance
// in all regions, and all percentiles are close to the median" (§3.2).
type BandAnalyzer struct {
	pop  *popsim.Population
	topN int
	mg   VisitMerger // per-user merge scratch, reused across the stream

	gyr [timegrid.StudyDays]*stats.QuantileBand
	ent [timegrid.StudyDays]*stats.QuantileBand
}

// bandQuantiles are the tracked quantiles: P10, P25, P50, P75, P90.
var bandQuantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90}

// NewBandAnalyzer returns a band analyzer.
func NewBandAnalyzer(pop *popsim.Population, topN int) *BandAnalyzer {
	a := &BandAnalyzer{pop: pop, topN: topN}
	for d := 0; d < timegrid.StudyDays; d++ {
		a.gyr[d] = stats.NewQuantileBand(bandQuantiles...)
		a.ent[d] = stats.NewQuantileBand(bandQuantiles...)
	}
	return a
}

// ConsumeDay ingests one simulated day; February days are ignored.
func (a *BandAnalyzer) ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	sd, ok := day.ToStudyDay()
	if !ok {
		return
	}
	topo := a.pop.Topology()
	for i := range traces {
		m := a.mg.DayMetrics(&traces[i], topo, a.topN)
		a.gyr[sd].Add(m.Gyration)
		a.ent[sd].Add(m.Entropy)
	}
}

// Band returns the daily percentile band of the metric.
func (a *BandAnalyzer) Band(metric MobilityMetric) stats.Band {
	b := stats.Band{
		Label: metric.String(),
		P10:   make([]float64, timegrid.StudyDays),
		P25:   make([]float64, timegrid.StudyDays),
		P50:   make([]float64, timegrid.StudyDays),
		P75:   make([]float64, timegrid.StudyDays),
		P90:   make([]float64, timegrid.StudyDays),
	}
	for d := 0; d < timegrid.StudyDays; d++ {
		var qb *stats.QuantileBand
		if metric == MetricEntropy {
			qb = a.ent[d]
		} else {
			qb = a.gyr[d]
		}
		vals := qb.Values()
		b.P10[d], b.P25[d], b.P50[d], b.P75[d], b.P90[d] = vals[0], vals[1], vals[2], vals[3], vals[4]
	}
	return b
}
