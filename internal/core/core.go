package core
