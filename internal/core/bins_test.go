package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/timegrid"
)

func TestComputeAllBinMetricsConsistent(t *testing.T) {
	r := fixtureResults(t)
	topo := r.Dataset.Topology
	traces := r.Sim.Day(30)
	for i := 0; i < 50; i++ {
		tr := &traces[i]
		all := ComputeAllBinMetrics(tr, topo, DefaultTopN)
		for b := 0; b < timegrid.BinsPerDay; b++ {
			single := BinMetrics(tr, topo, b, DefaultTopN)
			if math.Abs(all[b].Entropy-single.Entropy) > 1e-12 ||
				math.Abs(all[b].Gyration-single.Gyration) > 1e-12 ||
				all[b].Towers != single.Towers {
				t.Fatalf("user %d bin %d: batch %+v vs single %+v", tr.User, b, all[b], single)
			}
		}
	}
}

func TestBinAnalyzerDiurnalStructure(t *testing.T) {
	r := fixtureResults(t)
	ba := NewBinAnalyzer(r.Dataset.Pop, DefaultTopN)
	// A baseline week-9 weekday and a lockdown week-14 weekday.
	baseDay := timegrid.SimDay(timegrid.StudyDayOffset + 2)
	lockDay := timegrid.SimDay(timegrid.StudyDayOffset + 37)
	ba.ConsumeDay(baseDay, r.Sim.Day(baseDay))
	ba.ConsumeDay(lockDay, r.Sim.Day(lockDay))
	// February days ignored.
	ba.ConsumeDay(3, r.Sim.Day(3))

	baseSD, _ := baseDay.ToStudyDay()
	lockSD, _ := lockDay.ToStudyDay()

	// The 16:00-20:00 bin mixes workplace and home dwell, so it carries
	// the commute distance at baseline and collapses under lockdown;
	// the 00:00-04:00 bin is home-only at both times.
	day := ba.BinSeries(4, MetricGyration)
	night := ba.BinSeries(0, MetricGyration)
	if day.Values[baseSD] <= night.Values[baseSD] {
		t.Errorf("baseline evening-commute gyration %v should exceed night %v",
			day.Values[baseSD], night.Values[baseSD])
	}
	dayDrop := (day.Values[lockSD] - day.Values[baseSD]) / day.Values[baseSD]
	if dayDrop > -0.3 {
		t.Errorf("evening-commute bin gyration drop = %v, want a collapse", dayDrop)
	}
	// Bin labels flow into series labels.
	if day.Label != "16:00-20:00" {
		t.Errorf("bin series label = %q", day.Label)
	}
	// The ignored February day must not contaminate study-day zero.
	if got := ba.BinSeries(2, MetricEntropy).Values[0]; got != 0 {
		t.Errorf("study day 0 populated from a February trace: %v", got)
	}
}

func TestBandAnalyzerPercentilesOrdered(t *testing.T) {
	r := fixtureResults(t)
	ba := NewBandAnalyzer(r.Dataset.Pop, DefaultTopN)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 1)
	ba.ConsumeDay(day, r.Sim.Day(day))

	sd, _ := day.ToStudyDay()
	band := ba.Band(MetricGyration)
	p := []float64{band.P10[sd], band.P25[sd], band.P50[sd], band.P75[sd], band.P90[sd]}
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1]-1e-9 {
			t.Fatalf("percentiles not ordered: %v", p)
		}
	}
	if band.P50[sd] <= 0 {
		t.Error("median gyration should be positive on a weekday")
	}
	// Median track matches the Band→Series bridge.
	med := band.Median()
	if med.Values[sd] != band.P50[sd] {
		t.Error("Median() track inconsistent")
	}
	// Entropy band behaves too.
	eband := ba.Band(MetricEntropy)
	if eband.P90[sd] < eband.P10[sd] {
		t.Error("entropy band inverted")
	}
	_ = stats.Band{} // keep the stats import for the bridge type
}
