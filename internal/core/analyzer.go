package core

import (
	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

// MobilityMetric selects one of the two §2.3 mobility metrics.
type MobilityMetric int

// Mobility metrics.
const (
	MetricEntropy MobilityMetric = iota
	MetricGyration
)

// String implements fmt.Stringer.
func (m MobilityMetric) String() string {
	if m == MetricEntropy {
		return "entropy"
	}
	return "gyration"
}

// groupAcc accumulates per-day sums of both metrics for one user group.
type groupAcc struct {
	sumE [timegrid.StudyDays]float64
	sumG [timegrid.StudyDays]float64
	n    [timegrid.StudyDays]int
}

func (g *groupAcc) add(day timegrid.StudyDay, m DayMetrics) {
	g.sumE[day] += m.Entropy
	g.sumG[day] += m.Gyration
	g.n[day]++
}

// series extracts the daily per-user average of a metric.
func (g *groupAcc) series(label string, metric MobilityMetric) stats.Series {
	s := stats.NewSeries(label, timegrid.StudyDays)
	for d := 0; d < timegrid.StudyDays; d++ {
		if g.n[d] == 0 {
			continue
		}
		switch metric {
		case MetricEntropy:
			s.Values[d] = g.sumE[d] / float64(g.n[d])
		default:
			s.Values[d] = g.sumG[d] / float64(g.n[d])
		}
	}
	return s
}

// MobilityAnalyzer streams day traces and aggregates the per-user daily
// mobility metrics at national, county and geodemographic-cluster level —
// the aggregation §2.3 describes ("even if we compute these metrics per
// user at cell tower level, we aggregate them at postcode or larger
// granularity").
type MobilityAnalyzer struct {
	pop  *popsim.Population
	topN int
	mg   VisitMerger // per-user merge scratch for the serial ConsumeDay path

	national  groupAcc
	byCounty  []groupAcc
	byCluster [census.NumClusters]groupAcc
}

// NewMobilityAnalyzer returns an analyzer using the paper's top-20
// filter; pass topN <= 0 to disable filtering.
func NewMobilityAnalyzer(pop *popsim.Population, topN int) *MobilityAnalyzer {
	return &MobilityAnalyzer{
		pop:      pop,
		topN:     topN,
		byCounty: make([]groupAcc, len(pop.Model().Counties)),
	}
}

// ConsumeDay ingests one simulated day. Days outside the study window
// (the February home-detection period) are ignored.
func (a *MobilityAnalyzer) ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	sd, ok := day.ToStudyDay()
	if !ok {
		return
	}
	topo := a.pop.Topology()
	for i := range traces {
		t := &traces[i]
		a.addUser(sd, t.User, a.mg.DayMetrics(t, topo, a.topN))
	}
}

// ConsumeDayMetrics ingests one day of precomputed per-user metrics,
// metrics[i] belonging to traces[i]. It performs exactly the additions
// ConsumeDay would, in the same order, so a pipeline that computes the
// metrics elsewhere (e.g. sharded across workers) and folds them here
// produces bit-identical aggregates. Days outside the study window are
// ignored.
func (a *MobilityAnalyzer) ConsumeDayMetrics(day timegrid.SimDay, traces []mobsim.DayTrace, metrics []DayMetrics) {
	sd, ok := day.ToStudyDay()
	if !ok {
		return
	}
	for i := range traces {
		a.addUser(sd, traces[i].User, metrics[i])
	}
}

// addUser folds one user-day of metrics into every aggregation level.
func (a *MobilityAnalyzer) addUser(sd timegrid.StudyDay, id popsim.UserID, m DayMetrics) {
	u := a.pop.User(id)
	a.national.add(sd, m)
	a.byCounty[u.HomeCounty].add(sd, m)
	a.byCluster[u.Cluster].add(sd, m)
}

// TopN returns the analyzer's per-user tower filter.
func (a *MobilityAnalyzer) TopN() int { return a.topN }

// Population returns the population the analyzer aggregates over.
func (a *MobilityAnalyzer) Population() *popsim.Population { return a.pop }

// NationalSeries returns the nation-wide daily average of the metric per
// user (the Fig. 3 series before the delta transformation).
func (a *MobilityAnalyzer) NationalSeries(metric MobilityMetric) stats.Series {
	return a.national.series("UK", metric)
}

// CountySeries returns the daily average for residents of a county.
func (a *MobilityAnalyzer) CountySeries(c *census.County, metric MobilityMetric) stats.Series {
	return a.byCounty[c.ID].series(c.Name, metric)
}

// ClusterSeries returns the daily average for residents of an OAC
// cluster.
func (a *MobilityAnalyzer) ClusterSeries(c census.Cluster, metric MobilityMetric) stats.Series {
	return a.byCluster[c].series(c.Name(), metric)
}

// NationalWeek9Baseline returns the average national value of the metric
// over week 9, the reference every regional/cluster figure compares to.
func (a *MobilityAnalyzer) NationalWeek9Baseline(metric MobilityMetric) float64 {
	s := a.NationalSeries(metric)
	return stats.Mean(s.Values[:7])
}

// DeltaSeries converts a raw series into the paper's delta-variation
// percentage against an explicit baseline value.
func DeltaSeries(s stats.Series, baseline float64) stats.Series {
	out := stats.NewSeries(s.Label, s.Len())
	for i, v := range s.Values {
		out.Values[i] = stats.DeltaPercent(v, baseline)
	}
	return out
}
