package core

import (
	"slices"

	"repro/internal/geo"
	"repro/internal/mobsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

// VisitMerger is reusable scratch for the per-user-day half of the §2.3
// pipeline: merging a trace's visits per distinct tower, sorting, and
// computing the mobility metrics. One merger per goroutine replaces the
// map+slice+sort the package-level helpers allocate on every call, so a
// warm merger runs the whole per-user-day pipeline without touching the
// heap — the property the streaming engine's shard stages and the serial
// analyzers both rely on at scale.
//
// A user visits ~10 distinct towers per day at most (the paper's "people
// have at most ~8 important places"), so the dedupe is a linear scan of
// the sample slice and the sort is a handful of comparisons.
//
// Everything returned by Merge/DayMetrics aliases the merger and is
// valid until its next call. The zero value is ready to use.
type VisitMerger struct {
	samples []VisitSample
	pts     []geo.Point
	w       []float64
}

// Merge collapses a day trace into one VisitSample per distinct tower,
// summing dwell across bins in visit order (the same accumulation order
// as the map-based MergeVisits, so sums are bit-identical), sorted by
// descending dwell with tower-ID tie-break. The result aliases the
// merger's scratch.
func (m *VisitMerger) Merge(t *mobsim.DayTrace, topo *radio.Topology) []VisitSample {
	dst := m.samples[:0]
	for _, v := range t.Visits {
		tw, sec := v.Tower(), float64(v.Seconds())
		found := false
		for i := range dst {
			if dst[i].Tower == tw {
				dst[i].Seconds += sec
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, VisitSample{Tower: tw, Loc: topo.Tower(tw).Loc, Seconds: sec})
		}
	}
	sortSamples(dst)
	m.samples = dst
	return dst
}

// mergeBin is Merge restricted to the visits of one 4-hour bin.
func (m *VisitMerger) mergeBin(t *mobsim.DayTrace, topo *radio.Topology, bin int) []VisitSample {
	dst := m.samples[:0]
	for _, v := range t.Visits {
		if int(v.Bin()) != bin {
			continue
		}
		tw, sec := v.Tower(), float64(v.Seconds())
		found := false
		for i := range dst {
			if dst[i].Tower == tw {
				dst[i].Seconds += sec
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, VisitSample{Tower: tw, Loc: topo.Tower(tw).Loc, Seconds: sec})
		}
	}
	sortSamples(dst)
	m.samples = dst
	return dst
}

// sortSamples orders samples by descending dwell, tower ID ascending on
// ties. Distinct towers make this a total order, so the sorted result is
// unique — independent of the pre-sort order, which is how the merger
// (first-appearance order) stays bit-identical to the map-based helpers
// (random iteration order).
func sortSamples(s []VisitSample) {
	slices.SortFunc(s, func(a, b VisitSample) int {
		switch {
		case a.Seconds > b.Seconds:
			return -1
		case a.Seconds < b.Seconds:
			return 1
		case a.Tower < b.Tower:
			return -1
		case a.Tower > b.Tower:
			return 1
		default:
			return 0
		}
	})
}

// DayMetrics runs the full §2.3 per-user-day pipeline in the merger's
// scratch: bit-identical to ComputeDayMetrics, allocation-free once the
// merger is warm.
func (m *VisitMerger) DayMetrics(t *mobsim.DayTrace, topo *radio.Topology, topN int) DayMetrics {
	samples := TopN(m.Merge(t, topo), topN)
	return DayMetrics{
		Entropy:  Entropy(samples),
		Gyration: m.gyration(samples),
		Towers:   len(samples),
	}
}

// AllBinMetrics computes the metrics of each 4-hour bin in the merger's
// scratch: bit-identical to ComputeAllBinMetrics.
func (m *VisitMerger) AllBinMetrics(t *mobsim.DayTrace, topo *radio.Topology, topN int) [timegrid.BinsPerDay]DayMetrics {
	var out [timegrid.BinsPerDay]DayMetrics
	for bin := 0; bin < timegrid.BinsPerDay; bin++ {
		samples := m.mergeBin(t, topo, bin)
		if len(samples) == 0 {
			continue
		}
		samples = TopN(samples, topN)
		out[bin] = DayMetrics{
			Entropy:  Entropy(samples),
			Gyration: m.gyration(samples),
			Towers:   len(samples),
		}
	}
	return out
}

// gyration computes Gyration over the samples with reused point/weight
// scratch; the accumulation order matches Gyration exactly.
func (m *VisitMerger) gyration(samples []VisitSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	m.pts, m.w = m.pts[:0], m.w[:0]
	for _, s := range samples {
		m.pts = append(m.pts, s.Loc)
		m.w = append(m.w, s.Seconds)
	}
	return geo.RadiusOfGyration(m.pts, m.w)
}
