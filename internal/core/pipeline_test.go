package core

import (
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// testStack is a small end-to-end pipeline shared by the package's
// integration tests (the experiments package cannot be imported here —
// it depends on core).
type testStack struct {
	Dataset struct {
		Model    *census.Model
		Topology *radio.Topology
		Pop      *popsim.Population
	}
	Sim      *mobsim.Simulator
	Mobility *MobilityAnalyzer
	KPI      *KPIAnalyzer
	Homes    map[popsim.UserID]Home
	Matrix   *MobilityMatrix
}

var (
	stackOnce sync.Once
	stack     *testStack
)

func fixtureResults(t *testing.T) *testStack {
	t.Helper()
	stackOnce.Do(func() {
		s := &testStack{}
		m := census.BuildUK(1)
		topo := radio.Build(m, radio.DefaultConfig(), 1)
		scen := pandemic.Default()
		pop := popsim.Synthesize(m, topo, popsim.Config{Seed: 1, TargetUsers: 3000})
		s.Dataset.Model, s.Dataset.Topology, s.Dataset.Pop = m, topo, pop
		s.Sim = mobsim.New(pop, scen, 1)

		// February pass: home detection.
		hd := NewHomeDetector(topo)
		for day := timegrid.SimDay(0); day < timegrid.FebruaryDays; day++ {
			hd.ConsumeDay(day, s.Sim.Day(day))
		}
		s.Homes = hd.Detect()

		inner := m.InnerLondon()
		var cohort []popsim.UserID
		for uid, h := range s.Homes {
			if h.County == inner.ID {
				cohort = append(cohort, uid)
			}
		}

		s.Mobility = NewMobilityAnalyzer(pop, DefaultTopN)
		s.Matrix = NewMobilityMatrix(pop, inner.ID, cohort, DefaultTopN)
		s.KPI = NewKPIAnalyzer(topo)
		engine := traffic.NewEngine(pop, scen, traffic.DefaultParams(), 1)
		for day := timegrid.SimDay(timegrid.StudyDayOffset); day < timegrid.SimDays; day++ {
			traces := s.Sim.Day(day)
			s.Mobility.ConsumeDay(day, traces)
			s.Matrix.ConsumeDay(day, traces)
			s.KPI.ConsumeDay(day, engine.Day(day, traces))
		}
		stack = s
	})
	return stack
}

func TestPipelineNationalMobilityShape(t *testing.T) {
	r := fixtureResults(t)
	gyr := r.Mobility.NationalSeries(MetricGyration)
	base := r.Mobility.NationalWeek9Baseline(MetricGyration)
	if base <= 0 {
		t.Fatal("zero baseline gyration")
	}
	delta := DeltaSeries(gyr, base).WeeklyMeans()
	w13 := delta.Values[13-timegrid.FirstWeek]
	if w13 > -35 || w13 < -70 {
		t.Errorf("week-13 gyration delta = %v, want a ~50%% collapse", w13)
	}
	// Entropy falls less.
	ent := r.Mobility.NationalSeries(MetricEntropy)
	entDelta := DeltaSeries(ent, r.Mobility.NationalWeek9Baseline(MetricEntropy)).WeeklyMeans()
	if entDelta.Values[13-timegrid.FirstWeek] < w13 {
		t.Errorf("entropy fell more than gyration: %v vs %v",
			entDelta.Values[13-timegrid.FirstWeek], w13)
	}
}

func TestPipelineCountySeriesCoverAllCounties(t *testing.T) {
	r := fixtureResults(t)
	for ci := range r.Dataset.Model.Counties {
		c := &r.Dataset.Model.Counties[ci]
		s := r.Mobility.CountySeries(c, MetricGyration)
		if s.Label != c.Name {
			t.Errorf("series label %q for county %q", s.Label, c.Name)
		}
		nonzero := 0
		for _, v := range s.Values {
			if v > 0 {
				nonzero++
			}
		}
		if nonzero < timegrid.StudyDays {
			t.Errorf("county %s has %d/%d populated days", c.Name, nonzero, timegrid.StudyDays)
		}
	}
}

func TestPipelineClusterSeries(t *testing.T) {
	r := fixtureResults(t)
	for _, cl := range census.Clusters() {
		s := r.Mobility.ClusterSeries(cl, MetricEntropy)
		if s.At(0) <= 0 {
			t.Errorf("cluster %v entropy day-0 = %v", cl, s.At(0))
		}
	}
}

func TestHomeDetectionAccuracy(t *testing.T) {
	r := fixtureResults(t)
	pop := r.Dataset.Pop
	// The paper detects homes for ~16M of ~22M users (73%): the
	// night-off observability model leaves a comparable fraction below
	// the 14-night threshold.
	frac0 := float64(len(r.Homes)) / float64(len(pop.Native()))
	if frac0 < 0.70 || frac0 > 0.97 {
		t.Fatalf("homes detected for %d/%d users (%.2f)", len(r.Homes), len(pop.Native()), frac0)
	}
	correct := 0
	for uid, h := range r.Homes {
		if pop.User(uid).HomeDistrict == h.District {
			correct++
		}
	}
	frac := float64(correct) / float64(len(r.Homes))
	if frac < 0.95 {
		t.Errorf("home detection district accuracy = %v", frac)
	}
}

func TestHomeDetectionMinNights(t *testing.T) {
	// With an impossible nights threshold nothing is detected.
	r := fixtureResults(t)
	hd := NewHomeDetector(r.Dataset.Topology)
	hd.MinNights = 99
	hd.ConsumeDay(0, r.Sim.Day(0))
	if got := len(hd.Detect()); got != 0 {
		t.Errorf("detected %d homes from one night with MinNights=99", got)
	}
	// A fortnight of nights meets the default threshold.
	hd2 := NewHomeDetector(r.Dataset.Topology)
	for day := timegrid.SimDay(0); day < 14; day++ {
		hd2.ConsumeDay(day, r.Sim.Day(day))
	}
	if got := len(hd2.Detect()); got == 0 {
		t.Error("14 nights should be enough for detection")
	}
	// Days outside February are ignored.
	hd3 := NewHomeDetector(r.Dataset.Topology)
	for day := timegrid.SimDay(timegrid.FebruaryDays); day < timegrid.FebruaryDays+20; day++ {
		hd3.ConsumeDay(day, r.Sim.Day(day))
	}
	if got := len(hd3.Detect()); got != 0 {
		t.Errorf("non-February days produced %d homes", got)
	}
}

func TestCensusValidation(t *testing.T) {
	r := fixtureResults(t)
	scale := float64(len(r.Dataset.Pop.Native())) / float64(r.Dataset.Model.TotalPopulation())
	v, err := ValidateAgainstCensus(r.Homes, r.Dataset.Model, scale)
	if err != nil {
		t.Fatal(err)
	}
	if v.Fit.R2 < 0.85 {
		t.Errorf("census validation r² = %v", v.Fit.R2)
	}
	if v.Fit.Slope <= 0 {
		t.Errorf("census validation slope = %v", v.Fit.Slope)
	}
	if v.Areas != len(r.Dataset.Model.Districts) {
		t.Errorf("validation areas = %d", v.Areas)
	}
}

func TestMobilityMatrixShape(t *testing.T) {
	r := fixtureResults(t)
	m := r.Matrix
	if m.CohortSize() == 0 {
		t.Fatal("empty cohort")
	}
	home := m.HomePresenceSeries()
	away := m.AwaySeries()
	// Presence conservation: home + away = cohort (every member is
	// somewhere every day).
	for d := 0; d < timegrid.StudyDays; d++ {
		if got := home.Values[d] + away.Values[d]; int(got) != m.CohortSize() {
			t.Fatalf("day %d: home %v + away %v != cohort %d", d, home.Values[d], away.Values[d], m.CohortSize())
		}
	}
	// Relocation signal: away counts grow markedly after lockdown.
	baseAway := away.Values[2]
	lockAway := away.Values[40]
	if lockAway < baseAway+float64(m.CohortSize())/25 {
		t.Errorf("away: baseline %v, lockdown %v — expected a clear rise", baseAway, lockAway)
	}
	// Matrix rows: home county first, then destinations.
	table := m.Matrix(10)
	if len(table.Rows) != 11 {
		t.Fatalf("matrix rows = %d", len(table.Rows))
	}
	if table.Rows[0].Label != "Inner London" {
		t.Errorf("first row = %s", table.Rows[0].Label)
	}
	if len(table.ColNames) != timegrid.StudyDays {
		t.Errorf("matrix columns = %d", len(table.ColNames))
	}
	dests := m.TopDestinations(10)
	seen := map[string]bool{}
	for _, c := range dests {
		if c.Name == "Inner London" {
			t.Error("home county listed as destination")
		}
		if seen[c.Name] {
			t.Error("duplicate destination")
		}
		seen[c.Name] = true
	}
}

func TestKPIAnalyzerSeries(t *testing.T) {
	r := fixtureResults(t)
	kpi := r.KPI
	nat := kpi.NationalSeries(traffic.DLVolume)
	if nat.Len() != timegrid.StudyDays {
		t.Fatalf("national series length = %d", nat.Len())
	}
	for d, v := range nat.Values {
		if v <= 0 {
			t.Fatalf("national DL volume day %d = %v", d, v)
		}
	}
	// Weekly delta pipeline: week 9 is ~0 by construction.
	wd := WeeklyDeltaSeries(nat)
	if wd.Len() != timegrid.StudyWeeks {
		t.Fatalf("weekly series length = %d", wd.Len())
	}
	if wd.Values[0] > 8 || wd.Values[0] < -8 {
		t.Errorf("week-9 delta = %v, want ≈0", wd.Values[0])
	}
	// DL volume declines during lockdown at every aggregation level.
	if wd.Values[13-timegrid.FirstWeek] > -5 {
		t.Errorf("week-13 national DL delta = %v", wd.Values[13-timegrid.FirstWeek])
	}
	inner := r.Dataset.Model.InnerLondon()
	iw := WeeklyDeltaSeries(kpi.CountySeries(inner, traffic.DLVolume))
	if iw.Values[14-timegrid.FirstWeek] > wd.Values[14-timegrid.FirstWeek] {
		t.Error("Inner London should fall at least as hard as the UK")
	}
}

func TestKPIVoiceShape(t *testing.T) {
	r := fixtureResults(t)
	vw := WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.VoiceVolume))
	w12 := vw.Values[12-timegrid.FirstWeek]
	if w12 < 80 || w12 > 200 {
		t.Errorf("week-12 voice delta = %v, want the +140%% spike", w12)
	}
	loss := WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.VoiceDLLoss))
	if loss.Values[11-timegrid.FirstWeek] < 50 {
		t.Errorf("week-11 DL loss delta = %v, want a surge", loss.Values[11-timegrid.FirstWeek])
	}
	if loss.Values[15-timegrid.FirstWeek] > 0 {
		t.Errorf("week-15 DL loss delta = %v, want below baseline after the upgrade",
			loss.Values[15-timegrid.FirstWeek])
	}
}

func TestUsersVolumeCorrelationBounds(t *testing.T) {
	r := fixtureResults(t)
	for _, cl := range census.Clusters() {
		rho := r.KPI.UsersVolumeCorrelation(cl)
		if rho < -1 || rho > 1 {
			t.Fatalf("correlation for %v = %v", cl, rho)
		}
	}
	if r.KPI.UsersVolumeCorrelation(census.Cosmopolitans) < 0.8 {
		t.Error("Cosmopolitan correlation should be strongly positive")
	}
}

func TestDistrictSeriesEC(t *testing.T) {
	r := fixtureResults(t)
	ec, _ := r.Dataset.Model.DistrictByCode("EC")
	sw, _ := r.Dataset.Model.DistrictByCode("SW")
	ecW := WeeklyDeltaSeries(r.KPI.DistrictSeries(ec, traffic.DLVolume))
	swW := WeeklyDeltaSeries(r.KPI.DistrictSeries(sw, traffic.DLVolume))
	wk := 15 - timegrid.FirstWeek
	if ecW.Values[wk] > swW.Values[wk]-10 {
		t.Errorf("EC (%v) should collapse far below SW (%v)", ecW.Values[wk], swW.Values[wk])
	}
}

func TestDeltaSeriesHelper(t *testing.T) {
	s := DeltaSeries(stats.Series{Label: "x", Values: []float64{100, 110, 90}}, 100)
	if s.Values[0] != 0 || s.Values[1] != 10 || s.Values[2] != -10 {
		t.Errorf("DeltaSeries = %v", s.Values)
	}
	if s.Label != "x" {
		t.Error("label lost")
	}
}
