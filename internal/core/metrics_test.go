package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/mobsim"
	"repro/internal/radio"
)

func samplesOf(secs ...float64) []VisitSample {
	out := make([]VisitSample, len(secs))
	for i, s := range secs {
		out[i] = VisitSample{
			Tower:   radio.TowerID(i),
			Loc:     geo.Pt(float64(i*3), 0),
			Seconds: s,
		}
	}
	return out
}

func TestEntropyKnownValues(t *testing.T) {
	// Single place: zero entropy.
	if got := Entropy(samplesOf(86_400)); got != 0 {
		t.Errorf("single-place entropy = %v", got)
	}
	// Two equal places: ln 2.
	if got := Entropy(samplesOf(100, 100)); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("two-place entropy = %v, want ln2", got)
	}
	// Four equal places: ln 4.
	if got := Entropy(samplesOf(1, 1, 1, 1)); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Errorf("four-place entropy = %v", got)
	}
	// Skew reduces entropy below the uniform bound.
	if got := Entropy(samplesOf(99, 1)); got >= math.Log(2) || got <= 0 {
		t.Errorf("skewed entropy = %v", got)
	}
	// Empty and non-positive dwell.
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
	if got := Entropy(samplesOf(0, -5)); got != 0 {
		t.Errorf("degenerate entropy = %v", got)
	}
	// Non-positive entries ignored: {100, 0} behaves like {100}.
	if got := Entropy(samplesOf(100, 0)); got != 0 {
		t.Errorf("zero-dwell entry affected entropy: %v", got)
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]VisitSample, 0, len(raw))
		n := 0
		for i, s := range raw {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return true
			}
			s = math.Abs(s)
			if s > 0 {
				n++
			}
			samples = append(samples, VisitSample{Tower: radio.TowerID(i), Seconds: s})
		}
		e := Entropy(samples)
		if e < -1e-12 {
			return false
		}
		if n > 0 && e > math.Log(float64(n))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestGyrationFromSamples(t *testing.T) {
	s := []VisitSample{
		{Tower: 0, Loc: geo.Pt(0, 0), Seconds: 1},
		{Tower: 1, Loc: geo.Pt(10, 0), Seconds: 1},
	}
	if got := Gyration(s); math.Abs(got-5) > 1e-12 {
		t.Errorf("gyration = %v, want 5", got)
	}
	if got := Gyration(nil); got != 0 {
		t.Errorf("empty gyration = %v", got)
	}
	// A home-body (all dwell at one tower) has zero gyration.
	if got := Gyration(s[:1]); got != 0 {
		t.Errorf("single-tower gyration = %v", got)
	}
}

func TestTopN(t *testing.T) {
	s := samplesOf(5, 4, 3, 2, 1)
	if got := TopN(s, 3); len(got) != 3 {
		t.Fatalf("TopN(3) = %d entries", len(got))
	}
	if got := TopN(s, 0); len(got) != 5 {
		t.Error("TopN(0) should disable filtering")
	}
	if got := TopN(s, 10); len(got) != 5 {
		t.Error("TopN larger than input should be identity")
	}
}

func TestMergeVisitsAndTopNOrdering(t *testing.T) {
	// Build a tiny topology-like fixture via the real simulator stack
	// is heavy; instead exercise MergeVisits through ComputeDayMetrics
	// in integration tests, and check ordering contract here.
	s := []VisitSample{
		{Tower: 2, Seconds: 10}, {Tower: 1, Seconds: 30}, {Tower: 3, Seconds: 20},
	}
	// TopN assumes descending order: construct it as MergeVisits would.
	ordered := []VisitSample{s[1], s[2], s[0]}
	top := TopN(ordered, 2)
	if top[0].Seconds != 30 || top[1].Seconds != 20 {
		t.Errorf("TopN kept wrong entries: %+v", top)
	}
}

func TestTopNReducesEntropy(t *testing.T) {
	// The filter drops low-dwell places, so entropy can only decrease
	// or stay equal.
	s := samplesOf(50, 20, 10, 5, 2, 1)
	full := Entropy(s)
	filtered := Entropy(TopN(s, 3))
	if filtered > full {
		t.Errorf("TopN increased entropy: %v > %v", filtered, full)
	}
}

// fakeTrace builds a DayTrace directly.
func fakeTrace(user uint32, visits ...mobsim.Visit) mobsim.DayTrace {
	return mobsim.DayTrace{User: 0, Visits: visits}
}

func TestBinMetricsSelectsBin(t *testing.T) {
	// BinMetrics must only see the chosen bin's dwell. Uses a real
	// topology from the integration fixture.
	r := fixtureResults(t)
	topo := r.Dataset.Topology
	tw0, tw1 := radio.TowerID(0), radio.TowerID(1)
	tr := fakeTrace(0,
		mobsim.MakeVisit(tw0, 0, 14_400, false),
		mobsim.MakeVisit(tw1, 2, 14_400, false),
	)
	m0 := BinMetrics(&tr, topo, 0, 20)
	if m0.Towers != 1 || m0.Entropy != 0 {
		t.Errorf("bin 0 metrics = %+v", m0)
	}
	m1 := BinMetrics(&tr, topo, 1, 20)
	if m1.Towers != 0 {
		t.Errorf("bin 1 should be empty, got %+v", m1)
	}
	whole := ComputeDayMetrics(&tr, topo, 20)
	if whole.Towers != 2 {
		t.Errorf("whole-day towers = %d", whole.Towers)
	}
	if whole.Entropy <= 0 {
		t.Error("two-tower day should have positive entropy")
	}
}

func TestMergeVisitsProperties(t *testing.T) {
	r := fixtureResults(t)
	topo := r.Dataset.Topology
	traces := r.Sim.Day(40)
	for i := range traces[:100] {
		tr := &traces[i]
		samples := MergeVisits(tr, topo)
		// Dwell conservation: merged seconds equal the trace total.
		var merged, raw float64
		for _, s := range samples {
			merged += s.Seconds
		}
		for _, v := range tr.Visits {
			raw += float64(v.Seconds())
		}
		if merged != raw {
			t.Fatalf("user %d: merged %v vs raw %v", tr.User, merged, raw)
		}
		// Descending order and distinct towers.
		seen := map[radio.TowerID]bool{}
		for j, s := range samples {
			if seen[s.Tower] {
				t.Fatalf("user %d: duplicate tower after merge", tr.User)
			}
			seen[s.Tower] = true
			if j > 0 && s.Seconds > samples[j-1].Seconds {
				t.Fatalf("user %d: samples not descending", tr.User)
			}
			if s.Loc != topo.Tower(s.Tower).Loc {
				t.Fatalf("user %d: stale location", tr.User)
			}
		}
	}
}

func TestTopNSubsetEntropyGyration(t *testing.T) {
	// Structural property on real traces: the top-N filter never
	// increases entropy, and keeps gyration finite and non-negative.
	r := fixtureResults(t)
	topo := r.Dataset.Topology
	traces := r.Sim.Day(25)
	for i := range traces[:150] {
		samples := MergeVisits(&traces[i], topo)
		full := Entropy(samples)
		for _, n := range []int{1, 3, 8} {
			sub := TopN(samples, n)
			if e := Entropy(sub); e > full+1e-9 {
				t.Fatalf("topN(%d) raised entropy %v > %v", n, e, full)
			}
			if g := Gyration(sub); g < 0 || math.IsNaN(g) {
				t.Fatalf("topN(%d) gyration %v", n, g)
			}
		}
	}
}
