package core

import (
	"testing"

	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func TestNationalBandOrdered(t *testing.T) {
	r := fixtureResults(t)
	for _, m := range []traffic.Metric{traffic.DLVolume, traffic.ConnectedUsers, traffic.VoiceVolume} {
		p10, p50, p90 := r.KPI.NationalBand(m)
		for d := 0; d < timegrid.StudyDays; d++ {
			if !(p10.Values[d] <= p50.Values[d] && p50.Values[d] <= p90.Values[d]) {
				t.Fatalf("%v day %d: band not ordered (%v, %v, %v)",
					m, d, p10.Values[d], p50.Values[d], p90.Values[d])
			}
		}
		// A wide distribution is expected in a heterogeneous estate.
		if p90.Values[2] <= p10.Values[2] {
			t.Errorf("%v: degenerate band", m)
		}
	}
}

func TestBandStability(t *testing.T) {
	r := fixtureResults(t)
	// The §4.1 claim: the cross-cell distribution shape is roughly
	// preserved through the lockdown — the relative spread changes by
	// well under a factor of two.
	for _, wk := range []timegrid.Week{13, 16, 19} {
		s := r.KPI.BandStability(traffic.DLVolume, wk)
		if s < -0.6 || s > 1.0 {
			t.Errorf("DL volume band spread change at %v = %v", wk, s)
		}
	}
	// Baseline week against itself is exactly zero.
	if got := r.KPI.BandStability(traffic.DLVolume, timegrid.BaselineWeek); got != 0 {
		t.Errorf("self stability = %v", got)
	}
}
