package core

import (
	"fmt"
	"sort"

	"repro/internal/census"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// This file makes the per-day analyzer folds resumable from a day
// boundary: every streaming analyzer gains a deep-copy Fork (so N
// scenario runs can continue from one shared-prefix snapshot without
// aliasing — the copy-on-divergence sweep) and an exported State /
// Restore pair (plain-data snapshots that round-trip through JSON or
// gob for experiments.Checkpoint serialization).
//
// Forks copy the accumulated folds and share only state that is never
// written after construction (the population, topology and cell→group
// lookup tables); per-call scratch is never carried over — it is
// rebuilt lazily, exactly as a fresh analyzer would, so a fork's future
// output is bit-identical to the original's from the fork point on.

// GroupState is the serializable form of one group's mobility
// accumulator.
type GroupState struct {
	SumE [timegrid.StudyDays]float64 `json:"sum_e"`
	SumG [timegrid.StudyDays]float64 `json:"sum_g"`
	N    [timegrid.StudyDays]int     `json:"n"`
}

func (g *groupAcc) state() GroupState   { return GroupState{SumE: g.sumE, SumG: g.sumG, N: g.n} }
func (g *groupAcc) load(st *GroupState) { g.sumE, g.sumG, g.n = st.SumE, st.SumG, st.N }

// MobilityState is the serializable fold of a MobilityAnalyzer.
type MobilityState struct {
	TopN      int                            `json:"top_n"`
	National  GroupState                     `json:"national"`
	ByCounty  []GroupState                   `json:"by_county"`
	ByCluster [census.NumClusters]GroupState `json:"by_cluster"`
}

// Fork returns an independent copy of the analyzer: the accumulated
// folds are deep-copied, the population reference is shared (read-only
// by contract) and the merge scratch starts fresh. Advancing the fork
// and the original with different scenarios never aliases.
func (a *MobilityAnalyzer) Fork() *MobilityAnalyzer {
	f := &MobilityAnalyzer{
		pop:       a.pop,
		topN:      a.topN,
		national:  a.national,
		byCounty:  append([]groupAcc(nil), a.byCounty...),
		byCluster: a.byCluster,
	}
	return f
}

// State snapshots the analyzer's fold for serialization.
func (a *MobilityAnalyzer) State() MobilityState {
	st := MobilityState{
		TopN:     a.topN,
		National: a.national.state(),
		ByCounty: make([]GroupState, len(a.byCounty)),
	}
	for i := range a.byCounty {
		st.ByCounty[i] = a.byCounty[i].state()
	}
	for i := range a.byCluster {
		st.ByCluster[i] = a.byCluster[i].state()
	}
	return st
}

// RestoreMobilityAnalyzer rebuilds an analyzer from a snapshot, bound
// to the given population (which must be the one the snapshot was taken
// over — the county count is validated).
func RestoreMobilityAnalyzer(pop *popsim.Population, st MobilityState) (*MobilityAnalyzer, error) {
	a := NewMobilityAnalyzer(pop, st.TopN)
	if len(st.ByCounty) != len(a.byCounty) {
		return nil, fmt.Errorf("core: mobility snapshot has %d counties, population model has %d", len(st.ByCounty), len(a.byCounty))
	}
	a.national.load(&st.National)
	for i := range st.ByCounty {
		a.byCounty[i].load(&st.ByCounty[i])
	}
	for i := range st.ByCluster {
		a.byCluster[i].load(&st.ByCluster[i])
	}
	return a, nil
}

// MatrixState is the serializable fold of a MobilityMatrix, including
// the cohort definition (sorted for deterministic encoding).
type MatrixState struct {
	HomeCounty census.CountyID             `json:"home_county"`
	TopN       int                         `json:"top_n"`
	Cohort     []popsim.UserID             `json:"cohort"`
	Presence   [][]float64                 `json:"presence"`
	AtHome     [timegrid.StudyDays]float64 `json:"at_home"`
	AwayAll    [timegrid.StudyDays]float64 `json:"away_all"`
}

// Fork returns an independent copy of the matrix: presence counts are
// deep-copied; the population and the cohort set (never written after
// construction) are shared; the per-call merge scratch starts fresh.
func (m *MobilityMatrix) Fork() *MobilityMatrix {
	f := &MobilityMatrix{
		pop:        m.pop,
		homeCounty: m.homeCounty,
		cohort:     m.cohort,
		topN:       m.topN,
		presence:   make([][]float64, len(m.presence)),
		atHome:     m.atHome,
		awayAll:    m.awayAll,
	}
	for i := range m.presence {
		f.presence[i] = append([]float64(nil), m.presence[i]...)
	}
	return f
}

// State snapshots the matrix fold for serialization.
func (m *MobilityMatrix) State() MatrixState {
	st := MatrixState{
		HomeCounty: m.homeCounty,
		TopN:       m.topN,
		Cohort:     make([]popsim.UserID, 0, len(m.cohort)),
		Presence:   make([][]float64, len(m.presence)),
		AtHome:     m.atHome,
		AwayAll:    m.awayAll,
	}
	for id := range m.cohort {
		st.Cohort = append(st.Cohort, id)
	}
	sort.Slice(st.Cohort, func(i, j int) bool { return st.Cohort[i] < st.Cohort[j] })
	for i := range m.presence {
		st.Presence[i] = append([]float64(nil), m.presence[i]...)
	}
	return st
}

// RestoreMobilityMatrix rebuilds a matrix from a snapshot, bound to the
// given population.
func RestoreMobilityMatrix(pop *popsim.Population, st MatrixState) (*MobilityMatrix, error) {
	m := NewMobilityMatrix(pop, st.HomeCounty, st.Cohort, st.TopN)
	if len(st.Presence) != len(m.presence) {
		return nil, fmt.Errorf("core: matrix snapshot has %d counties, population model has %d", len(st.Presence), len(m.presence))
	}
	for i := range st.Presence {
		if len(st.Presence[i]) != timegrid.StudyDays {
			return nil, fmt.Errorf("core: matrix snapshot county %d has %d days, want %d", i, len(st.Presence[i]), timegrid.StudyDays)
		}
		copy(m.presence[i], st.Presence[i])
	}
	m.atHome, m.awayAll = st.AtHome, st.AwayAll
	return m, nil
}

// KPIGrid is the serializable form of one group's KPI series grid.
type KPIGrid = [traffic.NumMetrics][timegrid.StudyDays]float64

// KPIState is the serializable fold of a KPIAnalyzer.
type KPIState struct {
	National   KPIGrid   `json:"national"`
	P10        KPIGrid   `json:"p10"`
	P90        KPIGrid   `json:"p90"`
	ByCounty   []KPIGrid `json:"by_county"`
	ByCluster  []KPIGrid `json:"by_cluster"`
	ByDistrict []KPIGrid `json:"by_district"`
}

// Fork returns an independent copy of the analyzer: the series grids
// are deep-copied; the topology, model and cell→group lookup tables
// (never written after construction) are shared; the per-day value
// buckets start fresh and are regrown lazily by ConsumeDay.
func (k *KPIAnalyzer) Fork() *KPIAnalyzer {
	f := &KPIAnalyzer{
		topo:         k.topo,
		model:        k.model,
		cellDistrict: k.cellDistrict,
		cellCounty:   k.cellCounty,
		cellCluster:  k.cellCluster,
		national:     k.national,
		natP10:       k.natP10,
		natP90:       k.natP90,
		byCounty:     append([]seriesGrid(nil), k.byCounty...),
		byCluster:    append([]seriesGrid(nil), k.byCluster...),
		byDistrict:   append([]seriesGrid(nil), k.byDistrict...),
		cntyVals:     make([][traffic.NumMetrics][]float64, len(k.cntyVals)),
		clstVals:     make([][traffic.NumMetrics][]float64, len(k.clstVals)),
		distVals:     make([][traffic.NumMetrics][]float64, len(k.distVals)),
	}
	return f
}

func gridStates(grids []seriesGrid) []KPIGrid {
	out := make([]KPIGrid, len(grids))
	for i := range grids {
		out[i] = grids[i].v
	}
	return out
}

func loadGrids(dst []seriesGrid, src []KPIGrid, what string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("core: KPI snapshot has %d %s groups, topology has %d", len(src), what, len(dst))
	}
	for i := range src {
		dst[i].v = src[i]
	}
	return nil
}

// State snapshots the analyzer's fold for serialization.
func (k *KPIAnalyzer) State() KPIState {
	return KPIState{
		National:   k.national.v,
		P10:        k.natP10.v,
		P90:        k.natP90.v,
		ByCounty:   gridStates(k.byCounty),
		ByCluster:  gridStates(k.byCluster),
		ByDistrict: gridStates(k.byDistrict),
	}
}

// RestoreKPIAnalyzer rebuilds an analyzer from a snapshot, bound to the
// given topology (which must match the one the snapshot was taken
// over).
func RestoreKPIAnalyzer(topo *radio.Topology, st KPIState) (*KPIAnalyzer, error) {
	k := NewKPIAnalyzer(topo)
	k.national.v, k.natP10.v, k.natP90.v = st.National, st.P10, st.P90
	if err := loadGrids(k.byCounty, st.ByCounty, "county"); err != nil {
		return nil, err
	}
	if err := loadGrids(k.byCluster, st.ByCluster, "cluster"); err != nil {
		return nil, err
	}
	if err := loadGrids(k.byDistrict, st.ByDistrict, "district"); err != nil {
		return nil, err
	}
	return k, nil
}

// HomeDetectorState is the serializable fold of a HomeDetector.
type HomeDetectorState struct {
	MinNights    int                                         `json:"min_nights"`
	NightBins    []timegrid.Bin                              `json:"night_bins"`
	NightSeconds map[popsim.UserID]map[radio.TowerID]float64 `json:"night_seconds"`
	NightCount   map[popsim.UserID]map[radio.TowerID]int     `json:"night_count"`
}

// Fork returns an independent copy of the detector: the per-user night
// tallies are deep-copied, the topology is shared and the per-night
// scratch starts fresh.
func (h *HomeDetector) Fork() *HomeDetector {
	f := &HomeDetector{
		topo:         h.topo,
		MinNights:    h.MinNights,
		NightBins:    append([]timegrid.Bin(nil), h.NightBins...),
		nightSeconds: make(map[popsim.UserID]map[radio.TowerID]float64, len(h.nightSeconds)),
		nightCount:   make(map[popsim.UserID]map[radio.TowerID]int, len(h.nightCount)),
	}
	for u, m := range h.nightSeconds {
		cp := make(map[radio.TowerID]float64, len(m))
		for t, s := range m {
			cp[t] = s
		}
		f.nightSeconds[u] = cp
	}
	for u, m := range h.nightCount {
		cp := make(map[radio.TowerID]int, len(m))
		for t, n := range m {
			cp[t] = n
		}
		f.nightCount[u] = cp
	}
	return f
}

// State snapshots the detector's fold for serialization. The maps are
// deep-copied, so later ConsumeDay calls do not mutate the snapshot.
func (h *HomeDetector) State() HomeDetectorState {
	f := h.Fork()
	return HomeDetectorState{
		MinNights:    f.MinNights,
		NightBins:    f.NightBins,
		NightSeconds: f.nightSeconds,
		NightCount:   f.nightCount,
	}
}

// RestoreHomeDetector rebuilds a detector from a snapshot, bound to the
// given topology.
func RestoreHomeDetector(topo *radio.Topology, st HomeDetectorState) *HomeDetector {
	h := NewHomeDetector(topo)
	h.MinNights = st.MinNights
	if st.NightBins != nil {
		h.NightBins = append([]timegrid.Bin(nil), st.NightBins...)
	}
	for u, m := range st.NightSeconds {
		cp := make(map[radio.TowerID]float64, len(m))
		for t, s := range m {
			cp[t] = s
		}
		h.nightSeconds[u] = cp
	}
	for u, m := range st.NightCount {
		cp := make(map[radio.TowerID]int, len(m))
		for t, n := range m {
			cp[t] = n
		}
		h.nightCount[u] = cp
	}
	return h
}
