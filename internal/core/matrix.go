package core

import (
	"sort"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

// MobilityMatrix reproduces the §3.4 analysis: for a cohort of users
// whose inferred residence is a given county (Inner London in the
// paper), it counts, per day and per destination county, how many cohort
// members were active there — "for each Inner London resident, we check
// the top 20 locations (at county level) that they visit during each
// day; if none of the visited locations during a day matches their home
// county we are able to identify relocations".
type MobilityMatrix struct {
	pop        *popsim.Population
	homeCounty census.CountyID
	cohort     map[popsim.UserID]bool
	topN       int

	// mg/countyScratch serve the serial ConsumeDay path; sharded
	// pipelines pass their own per-goroutine merger and destination to
	// UserCountiesInto instead.
	mg            VisitMerger
	countyScratch []census.CountyID

	// presence[county][studyDay] = cohort members active in county.
	presence [][]float64
	// atHome[studyDay] = cohort members whose visited counties include
	// the home county; awayAll[studyDay] = members present only
	// elsewhere (the relocation signal).
	atHome  [timegrid.StudyDays]float64
	awayAll [timegrid.StudyDays]float64
}

// NewMobilityMatrix builds the analyzer for a resident cohort. The
// cohort is typically the users whose *detected* home county (via
// HomeDetector) is homeCounty, matching the paper's pipeline.
func NewMobilityMatrix(pop *popsim.Population, homeCounty census.CountyID, cohort []popsim.UserID, topN int) *MobilityMatrix {
	m := &MobilityMatrix{
		pop:        pop,
		homeCounty: homeCounty,
		cohort:     make(map[popsim.UserID]bool, len(cohort)),
		topN:       topN,
		presence:   make([][]float64, len(pop.Model().Counties)),
	}
	for i := range m.presence {
		m.presence[i] = make([]float64, timegrid.StudyDays)
	}
	for _, id := range cohort {
		m.cohort[id] = true
	}
	return m
}

// CohortSize returns the number of tracked residents.
func (m *MobilityMatrix) CohortSize() int { return len(m.cohort) }

// ConsumeDay ingests one simulated day of traces.
func (m *MobilityMatrix) ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	sd, ok := day.ToStudyDay()
	if !ok {
		return
	}
	for i := range traces {
		counties, ok := m.UserCountiesInto(&m.mg, &traces[i], m.countyScratch[:0])
		m.countyScratch = counties
		if ok {
			m.ConsumeUserCounties(sd, counties)
		}
	}
}

// UserCounties computes the distinct counties a user's top-N towers fall
// in over one day, reporting whether the user belongs to the cohort.
// This is the expensive per-user half of ConsumeDay, split out so a
// sharded pipeline can run it in parallel and fold the results back in
// with ConsumeUserCounties. It allocates per call; hot loops should use
// UserCountiesInto with a reused merger and destination.
func (m *MobilityMatrix) UserCounties(t *mobsim.DayTrace) ([]census.CountyID, bool) {
	var mg VisitMerger
	return m.UserCountiesInto(&mg, t, nil)
}

// UserCountiesInto is UserCounties with caller-owned scratch: mg supplies
// the visit-merge buffers and the county set is appended to dst (which
// must be empty; pass prev[:0] to reuse capacity). ConsumeUserCounties
// treats the set as unordered, so the first-appearance order emitted
// here folds identically to any other order. Concurrent callers must use
// one merger per goroutine; the matrix itself is not written.
func (m *MobilityMatrix) UserCountiesInto(mg *VisitMerger, t *mobsim.DayTrace, dst []census.CountyID) ([]census.CountyID, bool) {
	if !m.cohort[t.User] {
		return dst, false
	}
	topo := m.pop.Topology()
	samples := TopN(mg.Merge(t, topo), m.topN)
	for _, s := range samples {
		c := topo.Tower(s.Tower).County
		seen := false
		for _, prev := range dst {
			if prev == c {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, c)
		}
	}
	return dst, true
}

// ConsumeUserCounties folds one cohort member's visited-county set for a
// study day into the matrix. All updates are unit count increments, so
// the result is independent of the order members are folded in.
func (m *MobilityMatrix) ConsumeUserCounties(sd timegrid.StudyDay, counties []census.CountyID) {
	home := false
	for _, c := range counties {
		m.presence[c][sd]++
		if c == m.homeCounty {
			home = true
		}
	}
	if home {
		m.atHome[sd]++
	} else {
		m.awayAll[sd]++
	}
}

// PresenceSeries returns the raw daily presence counts for a county.
func (m *MobilityMatrix) PresenceSeries(c *census.County) stats.Series {
	return stats.Series{Label: c.Name, Values: append([]float64(nil), m.presence[c.ID]...)}
}

// HomePresenceSeries returns the daily count of cohort members present
// in their home county (the "Inner London line" of Fig. 7).
func (m *MobilityMatrix) HomePresenceSeries() stats.Series {
	return stats.Series{Label: "home presence", Values: append([]float64(nil), m.atHome[:]...)}
}

// AwaySeries returns the daily count of cohort members seen exclusively
// outside their home county — the relocation signal of §3.4.
func (m *MobilityMatrix) AwaySeries() stats.Series {
	return stats.Series{Label: "relocated", Values: append([]float64(nil), m.awayAll[:]...)}
}

// TopDestinations returns the n counties (excluding the home county)
// with the highest average cohort presence during week 9, the row
// selection rule of Fig. 7 ("the top 10 counties in terms of receiving
// inbound residents from Inner London according to the average in week
// 9" — plus any county whose lockdown-era presence grew, so relocation
// sinks like Hampshire always appear).
func (m *MobilityMatrix) TopDestinations(n int) []*census.County {
	model := m.pop.Model()
	type scored struct {
		county *census.County
		score  float64
	}
	var all []scored
	for ci := range model.Counties {
		c := &model.Counties[ci]
		if c.ID == m.homeCounty {
			continue
		}
		week9 := stats.Mean(m.presence[c.ID][:7])
		rest := stats.Mean(m.presence[c.ID][7:])
		score := week9
		if rest > score {
			score = rest
		}
		all = append(all, scored{c, score})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].county.Name < all[j].county.Name
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]*census.County, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].county
	}
	return out
}

// Matrix renders the Fig. 7 table: one row per county (home county
// first, then the top destinations), one column per study day, each cell
// the delta-variation percentage of cohort presence against the week-9
// average for that county.
func (m *MobilityMatrix) Matrix(nDest int) stats.Table {
	model := m.pop.Model()
	t := stats.Table{Title: "Inner London resident presence by county (Δ% vs week 9)"}
	for d := 0; d < timegrid.StudyDays; d++ {
		t.ColNames = append(t.ColNames, timegrid.DateOfStudyDay(timegrid.StudyDay(d)).Format("01-02"))
	}
	addRow := func(c *census.County) {
		raw := m.presence[c.ID]
		base := stats.Mean(raw[:7])
		t.AddRow(c.Name, stats.DeltaPercentSeries(raw, base))
	}
	addRow(model.County(m.homeCounty))
	for _, c := range m.TopDestinations(nDest) {
		addRow(c)
	}
	return t
}
