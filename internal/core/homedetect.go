package core

import (
	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

// HomeDetector implements the §2.3 home-detection algorithm: a user's
// home is the cell tower they connect to the longest during night-time
// hours (midnight through 08:00), observed on at least MinNights
// distinct nights during February 2020.
type HomeDetector struct {
	topo *radio.Topology
	// MinNights is the minimum number of distinct nights the winning
	// tower must be observed on (14 in the paper).
	MinNights int
	// NightBins are the 4-hour bins counted as night (bins 0 and 1 cover
	// 00:00–08:00).
	NightBins []timegrid.Bin

	// per user: night dwell seconds and distinct-night counts per tower.
	nightSeconds map[popsim.UserID]map[radio.TowerID]float64
	nightCount   map[popsim.UserID]map[radio.TowerID]int

	// night is one night's per-tower dwell, reused across ConsumeTrace
	// calls so the hot path allocates nothing per user-day. A user sees
	// at most a handful of towers overnight, so the linear scan wins
	// over a map.
	night []towerDwell
}

// towerDwell is one (tower, dwell) pair of a single night.
type towerDwell struct {
	tower radio.TowerID
	sec   float64
}

// NewHomeDetector returns a detector with the paper's parameters.
func NewHomeDetector(topo *radio.Topology) *HomeDetector {
	return &HomeDetector{
		topo:         topo,
		MinNights:    14,
		NightBins:    []timegrid.Bin{0, 1},
		nightSeconds: make(map[popsim.UserID]map[radio.TowerID]float64),
		nightCount:   make(map[popsim.UserID]map[radio.TowerID]int),
	}
}

// ConsumeDay feeds one simulated day of traces. Only February days
// contribute (the paper's detection window); other days are ignored, so
// callers can stream the whole simulation through unconditionally.
func (h *HomeDetector) ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	if !day.InFebruary() {
		return
	}
	for i := range traces {
		h.ConsumeTrace(day, &traces[i])
	}
}

// ConsumeTrace feeds a single user's trace for one night. All detector
// state is per-user, so a pipeline that shards users across several
// detectors and unions their Detect() results reproduces a single
// detector exactly, as long as each user's nights arrive in day order.
func (h *HomeDetector) ConsumeTrace(day timegrid.SimDay, t *mobsim.DayTrace) {
	if !day.InFebruary() {
		return
	}
	// Night dwell per tower for this night, accumulated in visit order
	// (the same per-tower addition order as the former map, so the
	// per-user sums stay bit-identical) in the reused scratch.
	night := h.night[:0]
	for _, v := range t.Visits {
		if !h.isNight(v.Bin()) {
			continue
		}
		tw, sec := v.Tower(), float64(v.Seconds())
		found := false
		for i := range night {
			if night[i].tower == tw {
				night[i].sec += sec
				found = true
				break
			}
		}
		if !found {
			night = append(night, towerDwell{tower: tw, sec: sec})
		}
	}
	h.night = night
	if len(night) == 0 {
		return
	}
	us, ok := h.nightSeconds[t.User]
	if !ok {
		us = make(map[radio.TowerID]float64, 2)
		h.nightSeconds[t.User] = us
		h.nightCount[t.User] = make(map[radio.TowerID]int, 2)
	}
	uc := h.nightCount[t.User]
	for _, td := range night {
		us[td.tower] += td.sec
		uc[td.tower]++
	}
}

func (h *HomeDetector) isNight(b timegrid.Bin) bool {
	for _, nb := range h.NightBins {
		if b == nb {
			return true
		}
	}
	return false
}

// Home is a detected home location.
type Home struct {
	User     popsim.UserID
	Tower    radio.TowerID
	District census.DistrictID
	County   census.CountyID
}

// Detect finalises the detection: for every user with enough night
// observations it returns the inferred home. Users whose best tower was
// seen on fewer than MinNights nights are dropped, mirroring the paper
// (homes were determined for ~16M of ~22M users).
func (h *HomeDetector) Detect() map[popsim.UserID]Home {
	out := make(map[popsim.UserID]Home, len(h.nightSeconds))
	for user, perTower := range h.nightSeconds {
		var best radio.TowerID
		bestSec := -1.0
		for tw, s := range perTower {
			if s > bestSec || (s == bestSec && tw < best) {
				best, bestSec = tw, s
			}
		}
		if bestSec < 0 || h.nightCount[user][best] < h.MinNights {
			continue
		}
		tw := h.topo.Tower(best)
		out[user] = Home{User: user, Tower: best, District: tw.District, County: tw.County}
	}
	return out
}

// CensusValidation is the Fig. 2 experiment: it compares the number of
// inferred residents per area against the (scaled) census population and
// fits a line, reporting r².
type CensusValidation struct {
	Fit stats.LinearFit
	// Areas is the number of comparison points (districts standing in
	// for Local Authority Districts).
	Areas int
	// Inferred and Census hold the paired observations, for plotting.
	Inferred []float64
	Census   []float64
	Labels   []string
}

// ValidateAgainstCensus aggregates detected homes per district and
// regresses the counts against census populations scaled to the agent
// population, reproducing the Fig. 2 validation (paper: r² = 0.955).
func ValidateAgainstCensus(homes map[popsim.UserID]Home, model *census.Model, scale float64) (CensusValidation, error) {
	counts := make([]float64, len(model.Districts))
	for _, h := range homes {
		counts[h.District]++
	}
	v := CensusValidation{
		Inferred: make([]float64, 0, len(model.Districts)),
		Census:   make([]float64, 0, len(model.Districts)),
		Labels:   make([]string, 0, len(model.Districts)),
	}
	for i := range model.Districts {
		d := &model.Districts[i]
		v.Inferred = append(v.Inferred, counts[i])
		v.Census = append(v.Census, float64(d.Population)*scale)
		v.Labels = append(v.Labels, d.Code)
	}
	fit, err := stats.OLS(v.Census, v.Inferred)
	if err != nil {
		return v, err
	}
	v.Fit = fit
	v.Areas = len(v.Inferred)
	return v, nil
}
