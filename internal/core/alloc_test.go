package core

import (
	"testing"

	"repro/internal/mobsim"
	"repro/internal/timegrid"
)

// TestVisitMergerSteadyStateAllocs pins the analyzer-side guarantee: a
// warm VisitMerger runs the whole per-user-day §2.3 pipeline — merge,
// top-N, entropy, gyration, and the six per-bin variants — without heap
// allocation. The pre-refactor helpers allocated a map, a sample slice
// and a sort closure per user-day (plus two slices inside Gyration):
// five-plus allocations per user, per analyzer, per day.
func TestVisitMergerSteadyStateAllocs(t *testing.T) {
	s := fixtureResults(t)
	topo := s.Dataset.Topology
	traces := s.Sim.Day(timegrid.SimDay(timegrid.StudyDayOffset + 30))

	var mg VisitMerger
	for i := range traces {
		mg.DayMetrics(&traces[i], topo, DefaultTopN) // warm
		mg.AllBinMetrics(&traces[i], topo, DefaultTopN)
	}
	i := 0
	allocs := testing.AllocsPerRun(len(traces), func() {
		tr := &traces[i%len(traces)]
		mg.DayMetrics(tr, topo, DefaultTopN)
		mg.AllBinMetrics(tr, topo, DefaultTopN)
		i++
	})
	if allocs > 0 {
		t.Errorf("VisitMerger pipeline allocates %.1f times per user-day in steady state, want 0", allocs)
	}
}

// TestVisitMergerMatchesHelpers asserts the merger is bit-identical to
// the allocating package helpers across a full simulated day.
func TestVisitMergerMatchesHelpers(t *testing.T) {
	s := fixtureResults(t)
	topo := s.Dataset.Topology
	traces := s.Sim.Day(timegrid.SimDay(timegrid.StudyDayOffset + 12))

	var mg VisitMerger
	for i := range traces {
		tr := &traces[i]
		if got, want := mg.DayMetrics(tr, topo, DefaultTopN), ComputeDayMetrics(tr, topo, DefaultTopN); got != want {
			t.Fatalf("user %d: merger %+v vs helper %+v", tr.User, got, want)
		}
		if got, want := mg.AllBinMetrics(tr, topo, DefaultTopN), ComputeAllBinMetrics(tr, topo, DefaultTopN); got != want {
			t.Fatalf("user %d bins: merger %+v vs helper %+v", tr.User, got, want)
		}
	}
}

// TestHomeDetectorSteadyStateAllocs checks the night-scratch reuse: a
// detector that has already seen a night from every user consumes
// further nights without per-call allocation (the per-user maps exist,
// so folding a night touches only existing keys).
func TestHomeDetectorSteadyStateAllocs(t *testing.T) {
	s := fixtureResults(t)
	hd := NewHomeDetector(s.Dataset.Topology)
	days := []timegrid.SimDay{1, 2}
	traces := make([][]mobsim.DayTrace, len(days))
	for i, day := range days {
		traces[i] = s.Sim.Day(day)
		hd.ConsumeDay(day, traces[i]) // warm: per-user state now exists
	}
	i := 0
	allocs := testing.AllocsPerRun(4, func() {
		hd.ConsumeDay(days[i%len(days)], traces[i%len(days)])
		i++
	})
	if allocs > 0 {
		t.Errorf("HomeDetector.ConsumeDay allocates %.1f times per day in steady state, want 0", allocs)
	}
}
