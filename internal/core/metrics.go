// Package core implements the paper's primary contribution: the analysis
// pipeline that turns raw per-user tower visits and per-cell KPIs into
// the mobility and network-performance statistics reported in every
// figure — temporal-uncorrelated entropy and radius of gyration (§2.3),
// top-N tower filtering, night-time home detection with census
// validation (Fig. 2), geographic aggregation at
// postcode/county/cluster/national level, the Inner-London mobility
// matrix (Fig. 7), and the delta-variation-versus-week-9 statistics used
// throughout §3–§5.
package core

import (
	"math"

	"repro/internal/geo"
	"repro/internal/mobsim"
	"repro/internal/radio"
)

// VisitSample is one (place, dwell) observation of a user over a time
// window — the input to both mobility metrics.
type VisitSample struct {
	Tower   radio.TowerID
	Loc     geo.Point
	Seconds float64
}

// DefaultTopN is the paper's place filter: for each user, only the top
// 20 towers by connection time are retained, which the paper justifies
// by the finding that people have at most ~8 important places (§2.3).
const DefaultTopN = 20

// MergeVisits collapses a day trace into one VisitSample per distinct
// tower, summing dwell across bins, with locations resolved against the
// topology. The result is sorted by descending dwell. It allocates a
// fresh slice per call; hot loops should hold a VisitMerger and call its
// Merge method instead.
func MergeVisits(t *mobsim.DayTrace, topo *radio.Topology) []VisitSample {
	var m VisitMerger
	return m.Merge(t, topo)
}

// TopN returns the first n samples of a descending-sorted sample list
// (the §2.3 top-20 filter). It returns the input unchanged when n <= 0
// or the list is shorter than n.
func TopN(samples []VisitSample, n int) []VisitSample {
	if n <= 0 || len(samples) <= n {
		return samples
	}
	return samples[:n]
}

// Entropy computes the temporal-uncorrelated entropy of Eq. (1):
//
//	e = − Σ_j p(j)·ln p(j)
//
// where p(j) is the fraction of time spent at the j-th visited tower.
// It is 0 for a user who never leaves one tower and ln(N) at most for N
// towers. Samples with non-positive dwell are ignored.
func Entropy(samples []VisitSample) float64 {
	var total float64
	for _, s := range samples {
		if s.Seconds > 0 {
			total += s.Seconds
		}
	}
	if total <= 0 {
		return 0
	}
	var e float64
	for _, s := range samples {
		if s.Seconds <= 0 {
			continue
		}
		p := s.Seconds / total
		e -= p * math.Log(p)
	}
	return e
}

// Gyration computes the radius of gyration of Eq. (2): the root mean
// squared distance of the visited towers from the user's centre of mass,
// weighted by the time spent at each tower. The result is in kilometres.
func Gyration(samples []VisitSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	pts := make([]geo.Point, len(samples))
	w := make([]float64, len(samples))
	for i, s := range samples {
		pts[i] = s.Loc
		w[i] = s.Seconds
	}
	return geo.RadiusOfGyration(pts, w)
}

// DayMetrics holds a user's mobility metrics for one day.
type DayMetrics struct {
	Entropy  float64
	Gyration float64 // km
	Towers   int     // distinct towers after the top-N filter
}

// ComputeDayMetrics runs the full §2.3 per-user-day pipeline: merge
// visits per tower, apply the top-N filter, and compute both metrics.
// Hot loops should hold a VisitMerger and call its DayMetrics method,
// which reuses the merge scratch across users.
func ComputeDayMetrics(t *mobsim.DayTrace, topo *radio.Topology, topN int) DayMetrics {
	var m VisitMerger
	return m.DayMetrics(t, topo, topN)
}

// BinMetrics computes the metrics over a single 4-hour bin of the day,
// supporting the paper's per-bin aggregation (§2.3 computes statistics
// over six disjoint 4-hour bins as well as over the full day).
func BinMetrics(t *mobsim.DayTrace, topo *radio.Topology, bin int, topN int) DayMetrics {
	var m VisitMerger
	samples := TopN(m.mergeBin(t, topo, bin), topN)
	return DayMetrics{
		Entropy:  Entropy(samples),
		Gyration: m.gyration(samples),
		Towers:   len(samples),
	}
}
