package core

import (
	"repro/internal/census"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// KPIAnalyzer streams per-cell daily KPI records and aggregates them at
// the geographies the paper reports on: nation-wide, per county (§4.3),
// per geodemographic cluster (§4.4), and per postcode district (§5.1).
// For every (group, metric, day) it keeps the median across the group's
// cells, matching the figures' "median values for the delta variation".
type KPIAnalyzer struct {
	topo  *radio.Topology
	model *census.Model

	// Static cell → group lookups.
	cellDistrict []census.DistrictID
	cellCounty   []census.CountyID
	cellCluster  []census.Cluster

	national   seriesGrid
	byCounty   []seriesGrid
	byCluster  []seriesGrid
	byDistrict []seriesGrid

	// Distribution tracks across cells for the national aggregate: the
	// paper observes that "metrics' distribution across cells does not
	// significantly change across weeks" (§4.1).
	natP10, natP90 seriesGrid

	// scratch value buckets, reused across days.
	natVals  [traffic.NumMetrics][]float64
	cntyVals [][traffic.NumMetrics][]float64
	clstVals [][traffic.NumMetrics][]float64
	distVals [][traffic.NumMetrics][]float64
}

// seriesGrid holds one daily value per metric per study day.
type seriesGrid struct {
	v [traffic.NumMetrics][timegrid.StudyDays]float64
}

// NewKPIAnalyzer builds the analyzer for a topology.
func NewKPIAnalyzer(topo *radio.Topology) *KPIAnalyzer {
	model := topo.Model()
	k := &KPIAnalyzer{
		topo:       topo,
		model:      model,
		byCounty:   make([]seriesGrid, len(model.Counties)),
		byCluster:  make([]seriesGrid, census.NumClusters),
		byDistrict: make([]seriesGrid, len(model.Districts)),
		cntyVals:   make([][traffic.NumMetrics][]float64, len(model.Counties)),
		clstVals:   make([][traffic.NumMetrics][]float64, census.NumClusters),
		distVals:   make([][traffic.NumMetrics][]float64, len(model.Districts)),
	}
	nCells := len(topo.Cells)
	k.cellDistrict = make([]census.DistrictID, nCells)
	k.cellCounty = make([]census.CountyID, nCells)
	k.cellCluster = make([]census.Cluster, nCells)
	for i := range topo.Cells {
		id := topo.Cells[i].ID
		d := topo.DistrictOfCell(id)
		k.cellDistrict[id] = d
		k.cellCounty[id] = model.District(d).County
		k.cellCluster[id] = model.District(d).Cluster
	}
	return k
}

// ConsumeDay ingests one day of per-cell records; non-study days are
// ignored.
func (k *KPIAnalyzer) ConsumeDay(day timegrid.SimDay, cells []traffic.CellDay) {
	sd, ok := day.ToStudyDay()
	if !ok {
		return
	}
	// Reset buckets.
	for m := 0; m < traffic.NumMetrics; m++ {
		k.natVals[m] = k.natVals[m][:0]
	}
	reset := func(buckets [][traffic.NumMetrics][]float64) {
		for g := range buckets {
			for m := 0; m < traffic.NumMetrics; m++ {
				buckets[g][m] = buckets[g][m][:0]
			}
		}
	}
	reset(k.cntyVals)
	reset(k.clstVals)
	reset(k.distVals)

	for i := range cells {
		c := &cells[i]
		cnty := k.cellCounty[c.Cell]
		clst := k.cellCluster[c.Cell]
		dist := k.cellDistrict[c.Cell]
		for m := 0; m < traffic.NumMetrics; m++ {
			v := c.Values[m]
			k.natVals[m] = append(k.natVals[m], v)
			k.cntyVals[cnty][m] = append(k.cntyVals[cnty][m], v)
			k.clstVals[clst][m] = append(k.clstVals[clst][m], v)
			k.distVals[dist][m] = append(k.distVals[dist][m], v)
		}
	}

	for m := 0; m < traffic.NumMetrics; m++ {
		qs, err := stats.Quantiles(k.natVals[m], 10, 50, 90)
		if err != nil {
			continue
		}
		k.natP10.v[m][sd] = qs[0]
		k.national.v[m][sd] = qs[1]
		k.natP90.v[m][sd] = qs[2]
	}
	store := func(buckets [][traffic.NumMetrics][]float64, grids []seriesGrid) {
		for g := range buckets {
			for m := 0; m < traffic.NumMetrics; m++ {
				if len(buckets[g][m]) > 0 {
					grids[g].v[m][sd] = stats.Median(buckets[g][m])
				}
			}
		}
	}
	store(k.cntyVals, k.byCounty)
	store(k.clstVals, k.byCluster)
	store(k.distVals, k.byDistrict)
}

// series converts a grid row into a Series.
func (g *seriesGrid) series(label string, m traffic.Metric) stats.Series {
	return stats.Series{Label: label, Values: append([]float64(nil), g.v[m][:]...)}
}

// NationalSeries returns the UK-wide daily median of the metric across
// all 4G cells.
func (k *KPIAnalyzer) NationalSeries(m traffic.Metric) stats.Series {
	return k.national.series("UK - all regions", m)
}

// CountySeries returns the daily median across the county's cells.
func (k *KPIAnalyzer) CountySeries(c *census.County, m traffic.Metric) stats.Series {
	return k.byCounty[c.ID].series(c.Name, m)
}

// ClusterSeries returns the daily median across the cluster's cells.
func (k *KPIAnalyzer) ClusterSeries(c census.Cluster, m traffic.Metric) stats.Series {
	return k.byCluster[c].series(c.Name(), m)
}

// DistrictSeries returns the daily median across the district's cells.
func (k *KPIAnalyzer) DistrictSeries(d *census.District, m traffic.Metric) stats.Series {
	return k.byDistrict[d.ID].series(d.Code, m)
}

// NationalBand returns the P10/median/P90 tracks of the metric's
// distribution across the national cell population.
func (k *KPIAnalyzer) NationalBand(m traffic.Metric) (p10, p50, p90 stats.Series) {
	return k.natP10.series("p10", m), k.national.series("p50", m), k.natP90.series("p90", m)
}

// BandStability quantifies the §4.1 observation that the cross-cell
// distribution keeps its shape: it returns the relative change of the
// (P90−P10)/median spread between week 9 and the given week. Values
// near zero mean the distribution only shifted, without reshaping.
func (k *KPIAnalyzer) BandStability(m traffic.Metric, week timegrid.Week) float64 {
	p10, p50, p90 := k.NationalBand(m)
	spread := func(days []timegrid.StudyDay) float64 {
		var s, n float64
		for _, d := range days {
			if p50.Values[d] == 0 {
				continue
			}
			s += (p90.Values[d] - p10.Values[d]) / p50.Values[d]
			n++
		}
		if n == 0 {
			return 0
		}
		return s / n
	}
	base := spread(timegrid.Week(timegrid.BaselineWeek).Days())
	cur := spread(week.Days())
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}

// WeeklyDeltaSeries applies the paper's presentation pipeline to a raw
// daily series: delta-variation percentage against the week-9 median,
// then the median per week — one point per week 9…19.
func WeeklyDeltaSeries(s stats.Series) stats.Series {
	base := stats.Median(s.Values[:7])
	daily := DeltaSeries(s, base)
	return daily.WeeklyMedians()
}

// UsersVolumeCorrelation reproduces the §4.4 correlation between the
// total number of connected users and the downlink data volume over the
// study window for one cluster (paper: +0.973 Cosmopolitans, +0.816
// Ethnicity Central, +0.299 Rural Residents, −0.466 Suburbanites).
func (k *KPIAnalyzer) UsersVolumeCorrelation(c census.Cluster) float64 {
	users := k.ClusterSeries(c, traffic.ConnectedUsers)
	vol := k.ClusterSeries(c, traffic.DLVolume)
	r, err := stats.Pearson(users.Values, vol.Values)
	if err != nil {
		return 0
	}
	return r
}
