package popsim

import (
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/devices"
	"repro/internal/pandemic"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

var (
	fixOnce sync.Once
	fixPop  *Population
)

// fixture synthesizes one small population shared across tests.
func fixture(t *testing.T) *Population {
	t.Helper()
	fixOnce.Do(func() {
		m := census.BuildUK(1)
		topo := radio.Build(m, radio.DefaultConfig(), 1)
		fixPop = Synthesize(m, topo, Config{
			Seed: 1, TargetUsers: 4000, M2MFraction: 0.08, RoamerFraction: 0.03,
		})
	})
	return fixPop
}

func TestPopulationCounts(t *testing.T) {
	p := fixture(t)
	counts := p.CountByKind()
	native := counts[NativeSmartphone]
	if native < 3600 || native > 4600 {
		t.Errorf("native smartphones = %d, want ≈4000", native)
	}
	if got := counts[NativeM2M]; got < 250 || got > 400 {
		t.Errorf("M2M SIMs = %d, want ≈320", got)
	}
	if got := counts[InboundRoamer]; got < 80 || got > 160 {
		t.Errorf("roamers = %d, want ≈120", got)
	}
	if len(p.Native()) != native {
		t.Errorf("Native() length %d != count %d", len(p.Native()), native)
	}
}

func TestUserInvariants(t *testing.T) {
	p := fixture(t)
	m := p.Model()
	topo := p.Topology()
	catalog := devices.NewCatalog()
	for i := range p.Users {
		u := &p.Users[i]
		if u.ID != UserID(i) {
			t.Fatalf("user %d mis-IDed", i)
		}
		d := m.District(u.HomeDistrict)
		if d.County != u.HomeCounty {
			t.Fatalf("user %d district/county mismatch", i)
		}
		if u.Cluster != d.Cluster {
			t.Fatalf("user %d cluster mismatch", i)
		}
		if topo.Tower(u.HomeTower).District != u.HomeDistrict {
			t.Fatalf("user %d home tower outside home district", i)
		}
		if len(u.Anchors) == 0 || u.Anchors[0].Kind != AnchorHome {
			t.Fatalf("user %d anchors must start with home", i)
		}
		if u.Kind == NativeSmartphone {
			// 3–8 important places per the literature: home + work +
			// 1–6 others.
			if n := len(u.Anchors); n < 2 || n > 8 {
				t.Errorf("user %d has %d anchors", i, n)
			}
			if !catalog.IsSmartphone(u.Device.TAC) {
				t.Errorf("native analysis user %d has non-smartphone device", i)
			}
			if !u.PLMN.IsNative() {
				t.Errorf("native user %d has foreign PLMN", i)
			}
		}
		if u.Kind == InboundRoamer && u.PLMN.IsNative() {
			t.Errorf("roamer %d has native PLMN", i)
		}
		if u.Kind == NativeM2M && u.Device.Class != devices.ClassM2M {
			t.Errorf("M2M SIM %d has device class %v", i, u.Device.Class)
		}
	}
}

func TestWorkersHaveWorkAnchor(t *testing.T) {
	p := fixture(t)
	for _, id := range p.Native() {
		u := p.User(id)
		if u.Worker() {
			if len(u.Anchors) < 2 || u.Anchors[1].Kind != AnchorWork {
				t.Fatalf("worker %d lacks work anchor", id)
			}
		} else {
			for _, a := range u.Anchors {
				if a.Kind == AnchorWork {
					t.Fatalf("non-worker %d has a work anchor", id)
				}
			}
		}
	}
}

func TestProfileDistribution(t *testing.T) {
	p := fixture(t)
	byProfile := map[Profile]int{}
	cosmoStudents, cosmoTotal := 0, 0
	for _, id := range p.Native() {
		u := p.User(id)
		byProfile[u.Profile]++
		if u.Cluster == census.Cosmopolitans {
			cosmoTotal++
			if u.Profile == Student {
				cosmoStudents++
			}
		}
	}
	for pr := Profile(0); int(pr) < NumProfiles; pr++ {
		if byProfile[pr] == 0 {
			t.Errorf("no users with profile %v", pr)
		}
	}
	// Cosmopolitans are student-heavy (Table 1 pen portrait).
	if frac := float64(cosmoStudents) / float64(cosmoTotal); frac < 0.2 {
		t.Errorf("cosmopolitan student share = %v", frac)
	}
}

func TestRelocationCalibration(t *testing.T) {
	p := fixture(t)
	inner := p.Model().InnerLondon()
	ids := p.NativeInCounty(inner.ID)
	if len(ids) < 150 {
		t.Fatalf("only %d Inner London users", len(ids))
	}
	reloc := 0
	for _, id := range ids {
		u := p.User(id)
		if u.Relocates {
			reloc++
			if u.RelocCounty == inner.ID {
				t.Error("relocation destination must differ from home county")
			}
			if p.Topology().Tower(u.RelocTower).District != u.RelocDistrict {
				t.Error("relocation tower outside relocation district")
			}
		}
	}
	frac := float64(reloc) / float64(len(ids))
	// The §3.4 target: ≈10% of Inner London residents relocate.
	if frac < 0.06 || frac > 0.18 {
		t.Errorf("Inner London relocation fraction = %v, want ≈0.10", frac)
	}
}

func TestRelocationDestinationsAreFig7Counties(t *testing.T) {
	p := fixture(t)
	inner := p.Model().InnerLondon()
	destNames, _ := pandemic.RelocationDestinations()
	allowed := map[string]bool{}
	for _, n := range destNames {
		allowed[n] = true
	}
	for _, id := range p.NativeInCounty(inner.ID) {
		u := p.User(id)
		if !u.Relocates {
			continue
		}
		name := p.Model().County(u.RelocCounty).Name
		if !allowed[name] {
			t.Errorf("Inner London relocation to unexpected county %s", name)
		}
	}
}

func TestCommuterGravity(t *testing.T) {
	p := fixture(t)
	m := p.Model()
	// EC/WC must attract a disproportionate share of work anchors.
	ec, _ := m.DistrictByCode("EC")
	wc, _ := m.DistrictByCode("WC")
	workInCore, workers := 0, 0
	outerToCore := 0
	outer, _ := m.CountyByName("Outer London")
	for _, id := range p.Native() {
		u := p.User(id)
		if !u.Worker() || len(u.Anchors) < 2 {
			continue
		}
		workers++
		wd := u.Anchors[1].District
		if wd == ec.ID || wd == wc.ID {
			workInCore++
			if u.HomeCounty == outer.ID {
				outerToCore++
			}
		}
	}
	if workers == 0 {
		t.Fatal("no workers")
	}
	coreShare := float64(workInCore) / float64(workers)
	if coreShare < 0.02 {
		t.Errorf("EC/WC work share = %v, CBDs should attract commuters", coreShare)
	}
	if outerToCore == 0 {
		t.Error("no Outer London → central London commuters")
	}
}

func TestScaleAndDistribution(t *testing.T) {
	p := fixture(t)
	m := p.Model()
	if p.Scale() <= 0 || p.Scale() > 0.01 {
		t.Errorf("scale = %v", p.Scale())
	}
	// Per-county agent counts roughly track census populations (market
	// share jitter is bounded at ±~20%).
	for ci := range m.Counties {
		c := &m.Counties[ci]
		got := len(p.NativeInCounty(c.ID))
		want := float64(c.Population) * p.Scale()
		if float64(got) < want*0.6 || float64(got) > want*1.5 {
			t.Errorf("%s agents = %d, census-scaled %f", c.Name, got, want)
		}
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	m := census.BuildUK(2)
	topo := radio.Build(m, radio.DefaultConfig(), 2)
	cfg := Config{Seed: 9, TargetUsers: 500, M2MFraction: 0.05, RoamerFraction: 0.02}
	a := Synthesize(m, topo, cfg)
	b := Synthesize(m, topo, cfg)
	if len(a.Users) != len(b.Users) {
		t.Fatal("user counts differ")
	}
	for i := range a.Users {
		ua, ub := &a.Users[i], &b.Users[i]
		if ua.HomeTower != ub.HomeTower || ua.Profile != ub.Profile ||
			ua.Device.TAC != ub.Device.TAC || ua.Relocates != ub.Relocates {
			t.Fatalf("user %d differs across identical syntheses", i)
		}
	}
}

func TestRelocationCandidatesAreSeasonal(t *testing.T) {
	// Candidacy is scenario-free: it is drawn from the district's
	// seasonal share alone, so districts with no seasonal population
	// produce no candidates — whatever scenario later runs on top.
	p := fixture(t)
	m := p.Model()
	candidates := 0
	for _, id := range p.Native() {
		u := p.User(id)
		if !u.Relocates {
			continue
		}
		candidates++
		if pandemic.SeasonalRelocationPropensity(m.District(u.HomeDistrict)) == 0 {
			t.Fatalf("user %d is a relocation candidate in a district with zero seasonal share", id)
		}
	}
	if candidates == 0 {
		t.Fatal("no relocation candidates synthesized")
	}
	// The null scenario keeps every candidate at home: activation, not
	// candidacy, is the scenario's decision.
	if pandemic.NoPandemic().RelocationActive(timegrid.SimDays - 1) {
		t.Error("null scenario must never activate relocation")
	}
}

func TestZeroConfigFallsBack(t *testing.T) {
	m := census.BuildUK(4)
	topo := radio.Build(m, radio.DefaultConfig(), 4)
	p := Synthesize(m, topo, Config{})
	if len(p.Native()) == 0 {
		t.Fatal("zero config should fall back to defaults")
	}
}
