// Package popsim synthesizes the subscriber population: agents with a
// home, a personal set of anchor places, a socio-economic profile, a
// device, and (for a minority) a decision to temporarily relocate during
// lockdown.
//
// The design follows the mobility literature the paper builds on: most
// people have 3–6 important places and rarely more than 8 (Gonzalez et
// al. 2008; Isaacman et al. 2011, both cited in §2.3), daily movement is
// dominated by home/work commuting plus short-range discretionary trips,
// and trip radii differ systematically across geodemographic clusters —
// rural residents roam widest, inner-city dwellers move within small but
// varied neighbourhoods (high entropy, low gyration; §3.2–3.3).
package popsim

import (
	"fmt"
	"math"

	"repro/internal/census"
	"repro/internal/devices"
	"repro/internal/geo"
	"repro/internal/pandemic"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Profile is an agent's activity profile; it determines how the agent
// responds to the interventions (office workers switch to WFH, key
// workers keep commuting, students lose school trips).
type Profile int

// Profiles.
const (
	OfficeWorker Profile = iota // can work from home
	KeyWorker                   // health, food retail, logistics: keeps commuting
	Student                     // school/university; closed from week 12
	Retired
	HomeBased   // home-makers, home workers pre-pandemic
	NumProfiles = int(HomeBased) + 1
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case OfficeWorker:
		return "office-worker"
	case KeyWorker:
		return "key-worker"
	case Student:
		return "student"
	case Retired:
		return "retired"
	case HomeBased:
		return "home-based"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// SIMKind distinguishes the subscriber categories §2.3 filters over.
type SIMKind int

// SIM kinds.
const (
	NativeSmartphone SIMKind = iota // the analysis population
	NativeM2M                       // machine-to-machine SIMs (dropped)
	InboundRoamer                   // foreign subscribers (dropped)
)

// AnchorKind labels an agent's important places.
type AnchorKind int

// Anchor kinds.
const (
	AnchorHome    AnchorKind = iota
	AnchorWork               // workplace or school
	AnchorErrand             // shopping, gym, worship, family …
	AnchorLeisure            // parks, venues, nightlife
)

// Anchor is one important place of an agent, pinned to a radio tower.
type Anchor struct {
	Kind     AnchorKind
	Tower    radio.TowerID
	District census.DistrictID
	// Weight is the relative propensity to visit this anchor on a
	// discretionary trip.
	Weight float64
}

// UserID identifies an agent.
type UserID uint32

// User is one synthetic subscriber.
type User struct {
	ID      UserID
	Kind    SIMKind
	Profile Profile
	Device  devices.Entry
	PLMN    devices.PLMN

	HomeDistrict census.DistrictID
	HomeCounty   census.CountyID
	HomeTower    radio.TowerID
	Cluster      census.Cluster

	// Anchors always starts with home ([0]) and, for commuters, work
	// ([1]); discretionary anchors follow. len is 3–8.
	Anchors []Anchor

	// Relocates marks relocation *candidates*: agents (students,
	// long-term tourists, second-home owners) who would leave their
	// primary residence for a lockdown. Whether the move actually
	// happens is the scenario's call — the mobility simulator only
	// relocates candidates while pandemic.Scenario.RelocationActive
	// holds, so the synthesized population stays scenario-independent.
	Relocates     bool
	RelocTower    radio.TowerID
	RelocDistrict census.DistrictID
	RelocCounty   census.CountyID

	// NightOff is the probability that the agent's phone is off (or out
	// of coverage) during the night bins of a given day. A minority of
	// users switch phones off overnight, which is why the paper's
	// home-detection rule (≥14 observed nights) finds homes for only
	// ~16M of ~22M users.
	NightOff float64
}

// Worker reports whether the agent has a work/school anchor.
func (u *User) Worker() bool {
	return u.Profile == OfficeWorker || u.Profile == KeyWorker || u.Profile == Student
}

// The rungs of the scale ladder (PERFORMANCE.md, "Scale ladder"):
// named so tests, benchmarks and the cmd -users flags agree on what
// each rung means instead of repeating magic numbers.
//
//	ScaleSmall   the default experiment scale — large enough for stable
//	             medians, small enough for fast tests
//	ScaleMedium  the parity/smoke rung: big enough that per-user memory
//	             and allocation behaviour is no longer dominated by
//	             fixed overheads
//	ScaleLarge   the million-subscriber rung of the paper's real MNO
//	             footprint; must fit the documented bytes-per-user
//	             budget
const (
	ScaleSmall  = 8_000
	ScaleMedium = 100_000
	ScaleLarge  = 1_000_000
)

// Config controls population synthesis.
type Config struct {
	Seed           uint64
	TargetUsers    int     // native smartphone agents to synthesize
	M2MFraction    float64 // extra M2M SIMs, as a fraction of TargetUsers
	RoamerFraction float64 // extra inbound-roamer SIMs, idem
}

// DefaultConfig returns the scale used by the experiments: ScaleSmall
// users, with the paper's M2M and roamer fractions.
func DefaultConfig() Config {
	return Config{Seed: 1, TargetUsers: ScaleSmall, M2MFraction: 0.08, RoamerFraction: 0.03}
}

// Population is the synthesized subscriber base.
type Population struct {
	Users []User

	model *census.Model
	topo  *radio.Topology

	native       []UserID // indices of native smartphones
	byHomeCounty map[census.CountyID][]UserID
	scale        float64 // agents per census person

	// cols is the struct-of-arrays mirror of the hot per-agent fields
	// (see Columns); sealed at the end of Synthesize.
	cols Columns
}

// profileWeights returns the profile distribution for a cluster,
// following the Table 1 pen portraits (students in Cosmopolitans,
// retirees in Suburbanites and Rural Residents, unemployment in
// Constrained City Dwellers and Hard-pressed Living).
func profileWeights(c census.Cluster) [NumProfiles]float64 {
	switch c {
	case census.Cosmopolitans:
		return [NumProfiles]float64{0.38, 0.10, 0.34, 0.04, 0.14}
	case census.EthnicityCentral:
		return [NumProfiles]float64{0.36, 0.18, 0.18, 0.08, 0.20}
	case census.MulticulturalMetropolitans:
		return [NumProfiles]float64{0.34, 0.20, 0.16, 0.10, 0.20}
	case census.Urbanites:
		return [NumProfiles]float64{0.44, 0.12, 0.10, 0.16, 0.18}
	case census.Suburbanites:
		return [NumProfiles]float64{0.36, 0.10, 0.12, 0.26, 0.16}
	case census.ConstrainedCityDwellers:
		return [NumProfiles]float64{0.24, 0.16, 0.10, 0.22, 0.28}
	case census.HardPressedLiving:
		return [NumProfiles]float64{0.26, 0.20, 0.12, 0.18, 0.24}
	case census.RuralResidents:
		return [NumProfiles]float64{0.30, 0.12, 0.08, 0.30, 0.20}
	default:
		return [NumProfiles]float64{0.35, 0.15, 0.15, 0.15, 0.20}
	}
}

// anchorRadiusKm returns the typical distance scale of discretionary
// anchors for a cluster: rural residents cover wide areas, inner-city
// clusters live in compact neighbourhoods.
func anchorRadiusKm(c census.Cluster) float64 {
	switch c {
	case census.RuralResidents:
		return 24
	case census.EthnicityCentral:
		// The most compact neighbourhoods: daily life within walking
		// distance, so the commute dominates the baseline gyration and
		// its removal under lockdown produces the largest relative drop
		// of all clusters (§3.3).
		return 3.2
	case census.Cosmopolitans:
		return 5.0
	case census.MulticulturalMetropolitans, census.ConstrainedCityDwellers:
		return 7
	case census.Urbanites:
		return 13.5
	case census.Suburbanites:
		return 12.5
	case census.HardPressedLiving:
		return 10
	default:
		return 10
	}
}

// anchorCount draws the number of discretionary anchors: total important
// places land in the 3–8 range of the literature, with inner-city
// clusters at the high end (more places, higher entropy).
func anchorCount(c census.Cluster, src *rng.Source) int {
	lo, hi := 1, 4
	switch c {
	case census.Cosmopolitans, census.EthnicityCentral:
		lo, hi = 3, 6
	case census.MulticulturalMetropolitans, census.ConstrainedCityDwellers:
		lo, hi = 2, 5
	case census.RuralResidents, census.Suburbanites:
		lo, hi = 1, 3
	}
	return src.IntRange(lo, hi)
}

// Synthesize builds the population over the census model and radio
// topology. The result is deterministic in (model, topo, cfg) and
// scenario-independent: relocation *candidates* are drawn from the
// scenario-free seasonal propensity, so one population can be shared
// across every scenario of a sweep (experiments.World).
func Synthesize(model *census.Model, topo *radio.Topology, cfg Config) *Population {
	if cfg.TargetUsers <= 0 {
		cfg = DefaultConfig()
	}
	master := rng.New(rng.Hash64(cfg.Seed ^ 0x9090))
	p := &Population{
		model:        model,
		topo:         topo,
		byHomeCounty: make(map[census.CountyID][]UserID),
		scale:        float64(cfg.TargetUsers) / float64(model.TotalPopulation()),
	}
	catalog := devices.NewCatalog()

	destNames, destWeights := pandemic.RelocationDestinations()

	// Native smartphone agents, distributed per district population.
	// The MNO's market share varies across districts (stronger in some
	// regions than others), which is why the paper's census validation
	// reaches r² = 0.955 rather than a perfect fit (Fig. 2); we model
	// the same dispersion with a deterministic per-district factor.
	for di := range model.Districts {
		d := &model.Districts[di]
		shareJitter := master.Split2(0x5A4E, uint64(di)).Range(0.90, 1.12)
		n := int(math.Round(float64(d.Population) * p.scale * shareJitter))
		if n < 1 {
			n = 1
		}
		dsrc := master.Split(uint64(di))
		for i := 0; i < n; i++ {
			usrc := dsrc.Split(uint64(i))
			u := p.newNativeUser(d, catalog, usrc, destNames, destWeights)
			p.byHomeCounty[u.HomeCounty] = append(p.byHomeCounty[u.HomeCounty], u.ID)
			p.native = append(p.native, u.ID)
		}
	}

	// M2M SIMs and inbound roamers: present in the signalling feed, and
	// filtered out by the §2.3 pipeline.
	m2m := int(float64(cfg.TargetUsers) * cfg.M2MFraction)
	for i := 0; i < m2m; i++ {
		src := master.Split2(0xAA, uint64(i))
		d := &model.Districts[src.Intn(len(model.Districts))]
		u := User{
			ID:           UserID(len(p.Users)),
			Kind:         NativeM2M,
			Device:       catalog.AssignM2MDevice(src),
			PLMN:         devices.HomePLMN,
			HomeDistrict: d.ID,
			HomeCounty:   d.County,
			HomeTower:    topo.PickTower(d.ID, 0, src),
			Cluster:      d.Cluster,
			Profile:      HomeBased,
		}
		u.Anchors = []Anchor{{Kind: AnchorHome, Tower: u.HomeTower, District: d.ID, Weight: 1}}
		p.Users = append(p.Users, u)
	}
	roamers := int(float64(cfg.TargetUsers) * cfg.RoamerFraction)
	for i := 0; i < roamers; i++ {
		src := master.Split2(0xBB, uint64(i))
		// Roamers concentrate in central, touristic districts.
		d := p.pickVisitorDistrict(src)
		u := User{
			ID:           UserID(len(p.Users)),
			Kind:         InboundRoamer,
			Device:       catalog.AssignDevice(src),
			PLMN:         devices.RoamerPLMN(src),
			HomeDistrict: d.ID,
			HomeCounty:   d.County,
			HomeTower:    topo.PickTower(d.ID, 0, src),
			Cluster:      d.Cluster,
			Profile:      HomeBased,
		}
		u.Anchors = []Anchor{{Kind: AnchorHome, Tower: u.HomeTower, District: d.ID, Weight: 1}}
		p.Users = append(p.Users, u)
	}
	return p
}

// newNativeUser synthesizes one native smartphone agent homed in d.
func (p *Population) newNativeUser(d *census.District, catalog *devices.Catalog, src *rng.Source, destNames []string, destWeights []float64) *User {
	model, topo := p.model, p.topo
	u := User{
		ID:           UserID(len(p.Users)),
		Kind:         NativeSmartphone,
		Device:       catalog.AssignSmartphone(src),
		PLMN:         devices.HomePLMN,
		HomeDistrict: d.ID,
		HomeCounty:   d.County,
		HomeTower:    topo.PickTower(d.ID, 0, src),
		Cluster:      d.Cluster,
	}
	w := profileWeights(d.Cluster)
	u.Profile = Profile(src.Pick(w[:]))
	if src.Bool(0.20) {
		u.NightOff = src.Range(0.55, 0.90)
	}

	u.Anchors = append(u.Anchors, Anchor{Kind: AnchorHome, Tower: u.HomeTower, District: d.ID, Weight: 1})

	// London is compact: whatever the cluster, daily life in the
	// metropolis happens over shorter distances than the same cluster
	// elsewhere (the paper's London reference gyration sits ~20% below
	// the national average, §3.2).
	kind := model.County(d.County).Kind
	isLondon := kind == census.KindMetroCore || kind == census.KindMetroSuburb

	if u.Profile == OfficeWorker || u.Profile == KeyWorker || u.Profile == Student {
		wd := p.pickWorkDistrict(&u, src)
		u.Anchors = append(u.Anchors, Anchor{
			Kind:     AnchorWork,
			Tower:    topo.PickTower(wd, 0, src),
			District: wd,
			Weight:   1,
		})
	}

	// Discretionary anchors within the cluster's radius of home.
	homeLoc := topo.Tower(u.HomeTower).Loc
	radius := anchorRadiusKm(d.Cluster)
	if isLondon && radius > 5.0 {
		radius = 5.0
	}
	n := anchorCount(d.Cluster, src)
	for i := 0; i < n; i++ {
		dist := src.Exp(radius / 2)
		if dist > radius*2.5 {
			dist = radius * 2.5
		}
		angle := src.Range(0, 2*math.Pi)
		target := homeLoc.Add(geo.Pt(dist*math.Cos(angle), dist*math.Sin(angle)))
		ad := p.nearestDistrict(target, d.County)
		kind := AnchorErrand
		if src.Bool(0.4) {
			kind = AnchorLeisure
		}
		u.Anchors = append(u.Anchors, Anchor{
			Kind:     kind,
			Tower:    topo.PickTower(ad, 0, src),
			District: ad,
			Weight:   src.Range(0.3, 1.0),
		})
	}

	// Relocation candidacy (§3.4): drawn from the scenario-free
	// seasonal propensity so the population is reusable across
	// scenarios; the scenario's relocation toggle decides at simulation
	// time whether candidates actually move.
	if src.Bool(pandemic.SeasonalRelocationPropensity(d)) {
		u.Relocates = true
		var destCounty *census.County
		if model.County(d.County).Kind == census.KindMetroCore || model.County(d.County).Kind == census.KindMetroSuburb {
			name := destNames[src.Pick(destWeights)]
			c, ok := model.CountyByName(name)
			if !ok {
				c = model.County(d.County)
			}
			destCounty = c
		} else {
			// Non-London seasonal residents scatter to rural/mixed counties.
			destCounty = p.pickRuralCounty(src)
		}
		dd := p.pickResidentialDistrict(destCounty, src)
		u.RelocCounty = destCounty.ID
		u.RelocDistrict = dd
		u.RelocTower = topo.PickTower(dd, 0, src)
	}

	p.Users = append(p.Users, u)
	return &p.Users[len(p.Users)-1]
}

// pickWorkDistrict draws a workplace by a gravity rule: districts attract
// commuters proportionally to their day-visitor weight and inversely to
// (squared, floored) distance. Students attend school near home.
func (p *Population) pickWorkDistrict(u *User, src *rng.Source) census.DistrictID {
	if u.Profile == Student {
		// Schools are local; universities draw across the county.
		if src.Bool(0.7) {
			return u.HomeDistrict
		}
		c := p.model.County(u.HomeCounty)
		return c.Districts[src.Intn(len(c.Districts))]
	}
	homeLoc := p.topo.Tower(u.HomeTower).Loc
	homeKind := p.model.County(u.HomeCounty).Kind
	// Commuter-belt flows into central London: Outer London (and, less
	// often, the home counties) send large worker flows into the Inner
	// London core — the mechanism behind the paper's Inner/Outer London
	// divergence during lockdown (§4.3: Inner London UL −22% in week 14
	// versus Outer London +17% as commuters stay home).
	coreProb := 0.0
	switch homeKind {
	case census.KindMetroSuburb:
		coreProb = 0.25
	case census.KindHomeCounties:
		coreProb = 0.15
	}
	if coreProb > 0 && src.Bool(coreProb) {
		core := p.model.InnerLondon()
		weights := make([]float64, len(core.Districts))
		for i, did := range core.Districts {
			weights[i] = p.model.District(did).DayVisitorWeight
		}
		return core.Districts[src.Pick(weights)]
	}
	// Candidate districts: all of the home county plus all districts of
	// counties whose centres are within commuting range.
	const commuteKm = 55.0
	var cands []census.DistrictID
	var weights []float64
	for ci := range p.model.Counties {
		c := &p.model.Counties[ci]
		if c.ID != u.HomeCounty && c.Area.Center.Dist(homeLoc) > commuteKm+c.Area.Radius {
			continue
		}
		for _, did := range c.Districts {
			d := p.model.District(did)
			dist := d.Area.Center.Dist(homeLoc)
			if d.County != u.HomeCounty && dist > commuteKm {
				continue
			}
			floor := 3.0
			if dist < floor {
				dist = floor
			}
			cands = append(cands, did)
			weights = append(weights, d.DayVisitorWeight/(dist*dist))
		}
	}
	if len(cands) == 0 {
		return u.HomeDistrict
	}
	return cands[src.Pick(weights)]
}

// nearestDistrict returns the district whose centre is closest to the
// point, preferring districts of the given county on ties of convenience
// (cheap linear scan over ~120 districts).
func (p *Population) nearestDistrict(pt geo.Point, prefer census.CountyID) census.DistrictID {
	best := census.DistrictID(0)
	bestDist := math.Inf(1)
	for i := range p.model.Districts {
		d := &p.model.Districts[i]
		dd := d.Area.Center.Dist(pt)
		if d.County == prefer {
			dd *= 0.8 // mild preference for staying within the home county
		}
		if dd < bestDist {
			bestDist = dd
			best = d.ID
		}
	}
	return best
}

// pickVisitorDistrict draws a district weighted by day-visitor weight
// (where roamers/tourists cluster).
func (p *Population) pickVisitorDistrict(src *rng.Source) *census.District {
	weights := make([]float64, len(p.model.Districts))
	for i := range p.model.Districts {
		weights[i] = p.model.Districts[i].DayVisitorWeight
	}
	return &p.model.Districts[src.Pick(weights)]
}

// pickRuralCounty draws a rural or mixed county.
func (p *Population) pickRuralCounty(src *rng.Source) *census.County {
	var cands []*census.County
	for i := range p.model.Counties {
		c := &p.model.Counties[i]
		if c.Kind == census.KindRural || c.Kind == census.KindMixed {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return &p.model.Counties[0]
	}
	return cands[src.Intn(len(cands))]
}

// pickResidentialDistrict draws a district of the county weighted by
// resident population.
func (p *Population) pickResidentialDistrict(c *census.County, src *rng.Source) census.DistrictID {
	weights := make([]float64, len(c.Districts))
	for i, did := range c.Districts {
		weights[i] = float64(p.model.District(did).Population)
	}
	return c.Districts[src.Pick(weights)]
}

// Model returns the underlying census model.
func (p *Population) Model() *census.Model { return p.model }

// Topology returns the underlying radio topology.
func (p *Population) Topology() *radio.Topology { return p.topo }

// Scale returns agents per census person.
func (p *Population) Scale() float64 { return p.scale }

// Native returns the IDs of native smartphone agents (the §2.3 analysis
// population).
func (p *Population) Native() []UserID { return p.native }

// User returns the agent with the given ID.
func (p *Population) User(id UserID) *User { return &p.Users[id] }

// NativeInCounty returns native smartphone agents homed in the county.
func (p *Population) NativeInCounty(c census.CountyID) []UserID {
	ids := p.byHomeCounty[c]
	out := make([]UserID, 0, len(ids))
	for _, id := range ids {
		if p.Users[id].Kind == NativeSmartphone {
			out = append(out, id)
		}
	}
	return out
}

// CountByKind tallies the population per SIM kind.
func (p *Population) CountByKind() map[SIMKind]int {
	out := make(map[SIMKind]int, 3)
	for i := range p.Users {
		out[p.Users[i].Kind]++
	}
	return out
}
