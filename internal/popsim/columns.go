package popsim

import (
	"repro/internal/census"
	"repro/internal/radio"
)

// Columns is the struct-of-arrays mirror of the per-agent fields the
// per-day hot path reads for *every* agent before the day's shape is
// decided: the night-off propensity, the relocation candidacy and its
// destination, and the home anchors. The mobility simulator's per-agent
// prologue runs once per agent per day — at the million-subscriber rung
// that is the single most executed code in the repository — and with
// the columnar mirror it walks small dense arrays (4–8 bytes per agent
// per column) instead of pulling each agent's full ~200-byte User
// struct (anchors slice, device entry, …) through the cache to read a
// handful of fields.
//
// All slices are indexed by UserID and cover every SIM in the
// population (native, M2M, roamer). Values are copies: Columns is
// derived read-only data, sealed once at the end of Synthesize, shared
// safely by any number of concurrent simulators.
type Columns struct {
	HomeTower    []radio.TowerID
	HomeDistrict []census.DistrictID
	HomeCounty   []census.CountyID
	Profile      []Profile
	Cluster      []census.Cluster

	// NightOff is User.NightOff: the nightly probability the device is
	// invisible to the network.
	NightOff []float64

	// Relocates marks relocation candidates; RelocTower/RelocDistrict
	// are only meaningful where Relocates is true.
	Relocates     []bool
	RelocTower    []radio.TowerID
	RelocDistrict []census.DistrictID
}

// sealColumns (re)builds the columnar mirror from Users.
func (p *Population) sealColumns() {
	n := len(p.Users)
	c := &p.cols
	c.HomeTower = make([]radio.TowerID, n)
	c.HomeDistrict = make([]census.DistrictID, n)
	c.HomeCounty = make([]census.CountyID, n)
	c.Profile = make([]Profile, n)
	c.Cluster = make([]census.Cluster, n)
	c.NightOff = make([]float64, n)
	c.Relocates = make([]bool, n)
	c.RelocTower = make([]radio.TowerID, n)
	c.RelocDistrict = make([]census.DistrictID, n)
	for i := range p.Users {
		u := &p.Users[i]
		c.HomeTower[i] = u.HomeTower
		c.HomeDistrict[i] = u.HomeDistrict
		c.HomeCounty[i] = u.HomeCounty
		c.Profile[i] = u.Profile
		c.Cluster[i] = u.Cluster
		c.NightOff[i] = u.NightOff
		c.Relocates[i] = u.Relocates
		c.RelocTower[i] = u.RelocTower
		c.RelocDistrict[i] = u.RelocDistrict
	}
}

// Cols returns the read-only columnar mirror of the population's hot
// per-agent fields. Synthesize seals it; a Population assembled by hand
// (tests) gets it built on first use. The result aliases the
// population and must not be mutated.
func (p *Population) Cols() *Columns {
	if len(p.cols.HomeTower) != len(p.Users) {
		p.sealColumns()
	}
	return &p.cols
}
