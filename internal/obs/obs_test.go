package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety pins the disabled contract: a nil registry hands out nil
// handles, and every method on a nil handle (and on a zero Span) is a
// no-op rather than a panic — that is what lets call sites wire metrics
// through unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", 4)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(1)
	c.Inc()
	g.Set(3)
	g.Add(-1)
	g.SetMax(9)
	h.Observe(5)
	h.Merge(NewHistogram(1))
	h.Shard(3).Observe(5)
	obsSpan := Start(h)
	obsSpan.End()
	StartShard(nil).End()
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil handles must read as zero")
	}
	s := r.Snapshot()
	if s.Schema != SchemaV1 || len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	var buf bytes.Buffer
	r.Report(&buf) // must not panic
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("c") != c {
		t.Fatal("repeated lookup must return the same handle")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	g.SetMax(5) // below current: no-op
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(50)
	if got := g.Value(); got != 50 {
		t.Fatalf("gauge after SetMax = %d, want 50", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns int64
		b  int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 46, histBuckets - 1}, {1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.b {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.b)
		}
	}
	for i := 1; i < histBuckets-1; i++ {
		lo, hi := bucketBounds(i)
		if bucketOf(lo) != i || bucketOf(hi-1) != i {
			t.Errorf("bucket %d bounds [%d,%d) do not round-trip", i, lo, hi)
		}
	}
}

// TestHistogramMergeOrderInvariant is the property test of the
// mergeability contract: the same observations split across N per-worker
// shards and merged in any order yield identical bucket counts, count,
// sum and max — the same contract stream.QSketch pins for KPI medians.
func TestHistogramMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	obs := make([]int64, n)
	for i := range obs {
		obs[i] = rng.Int63n(1 << 30)
	}

	// Reference: everything observed into one single-shard histogram.
	ref := NewHistogram(1)
	for _, v := range obs {
		ref.Observe(v)
	}
	want := ref.Snapshot()

	for trial := 0; trial < 10; trial++ {
		shards := 1 + rng.Intn(7)
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i] = NewHistogram(1 + rng.Intn(3))
		}
		// Deal observations to random shards of random parts.
		for _, v := range obs {
			p := parts[rng.Intn(shards)]
			p.Shard(rng.Intn(8)).Observe(v)
		}
		// Merge the parts in a random order.
		merged := NewHistogram(1)
		for _, i := range rng.Perm(shards) {
			merged.Merge(parts[i])
		}
		got := merged.Snapshot()
		if got.Count != want.Count || got.SumNs != want.SumNs || got.MaxNs != want.MaxNs {
			t.Fatalf("trial %d: merged summary %+v, want %+v", trial, got, want)
		}
		if len(got.Buckets) != len(want.Buckets) {
			t.Fatalf("trial %d: %d buckets, want %d", trial, len(got.Buckets), len(want.Buckets))
		}
		for i := range got.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Fatalf("trial %d bucket %d: %+v, want %+v", trial, i, got.Buckets[i], want.Buckets[i])
			}
		}
		if got.P50Ns != want.P50Ns || got.P90Ns != want.P90Ns || got.P99Ns != want.P99Ns {
			t.Fatalf("trial %d: quantiles %v/%v/%v, want %v/%v/%v",
				trial, got.P50Ns, got.P90Ns, got.P99Ns, want.P50Ns, want.P90Ns, want.P99Ns)
		}
	}
}

// TestSpanConcurrentWriters exercises spans from many goroutines under
// the race detector and asserts the recorded timings are monotone
// non-negative: sum and max never go negative, the count matches, and a
// concurrent Snapshot never observes sum < 0 (time.Since on the
// monotonic clock cannot yield a negative span; Observe clamps anyway).
func TestSpanConcurrentWriters(t *testing.T) {
	h := NewHistogram(4)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent reader: snapshots must stay consistent-enough
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.SumNs < 0 || s.Count < 0 || s.MaxNs < 0 {
				panic("negative snapshot field under concurrency")
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := h.Shard(w)
			for i := 0; i < perWorker; i++ {
				sp := StartShard(sh)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.SumNs < 0 || s.MaxNs < 0 {
		t.Fatalf("negative timing: sum %d, max %d", s.SumNs, s.MaxNs)
	}
}

// TestSnapshotJSONRoundTrip pins the obs/v1 schema: a written snapshot
// parses back with identical content, and two writes of the same state
// are byte-identical (encoding/json sorts map keys).
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("stream.pool.hits").Add(12)
	r.Gauge("sweep.world_builds").Set(1)
	h := r.Histogram("traffic.day_ns", 2)
	h.Shard(0).Observe(1500)
	h.Shard(1).Observe(3000)

	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two writes of the same state differ")
	}
	var s Snapshot
	if err := json.Unmarshal(a.Bytes(), &s); err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if s.Schema != SchemaV1 {
		t.Fatalf("schema = %q, want %q", s.Schema, SchemaV1)
	}
	if s.Counters["stream.pool.hits"] != 12 || s.Gauges["sweep.world_builds"] != 1 {
		t.Fatalf("values lost in round trip: %+v", s)
	}
	hs := s.Histograms["traffic.day_ns"]
	if hs.Count != 2 || hs.SumNs != 4500 || hs.MaxNs != 3000 {
		t.Fatalf("histogram lost in round trip: %+v", hs)
	}
}

func TestReportRenders(t *testing.T) {
	r := New()
	r.Counter("stream.worker.busy_ns").Add(2_500_000)
	r.Histogram("traffic.day_ns", 1).Observe(1_000_000)
	var buf bytes.Buffer
	r.Report(&buf)
	out := buf.String()
	for _, want := range []string{"stream.worker.busy_ns", "2.5ms", "traffic.day_ns", "p90"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestObserveAllocFree pins the hot-path guarantee of the package
// itself: counter adds, gauge sets, histogram observes and span
// start/end pairs perform zero heap allocations.
func TestObserveAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 2)
	sh := h.Shard(1)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.SetMax(42)
		sh.Observe(1234)
		sp := StartShard(sh)
		sp.End()
	})
	if allocs > 0 {
		t.Errorf("observe path allocates %.1f per op, want 0", allocs)
	}
}

// TestRegistrySnapshotConcurrent takes snapshots while writers run; the
// race detector is the assertion.
func TestRegistrySnapshotConcurrent(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Shard(w).Observe(int64(w))
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		_ = r.Snapshot()
	}
	close(stop)
	wg.Wait()
}
