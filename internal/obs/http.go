package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
)

// Handler returns an http.Handler serving the registry snapshot as
// JSON. Each request takes a fresh snapshot, so the endpoint is a live
// view of the run.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// Serve starts the introspection listener on addr (":0" picks a free
// port) and returns the bound address plus a shutdown function. The
// mux carries the whole runtime-visibility story in one place:
//
//	/metrics        the live registry snapshot (SchemaV1 JSON)
//	/debug/vars     expvar (cmdline, memstats)
//	/debug/pprof/   the standard pprof index (profile, heap, trace, …)
//
// Offline profiling keeps working through internal/prof's
// -cpuprofile/-memprofile; this endpoint adds the on-demand variant for
// long-lived runs.
func Serve(addr string, r *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "endpoints: /metrics /debug/vars /debug/pprof/")
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
