package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestServeEndpoints boots the listener on a free port and checks the
// three surfaces respond: /metrics with a parseable obs/v1 snapshot,
// /debug/vars (expvar) and /debug/pprof/ (the pprof index).
func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("stream.engine.days").Add(7)
	bound, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var s Snapshot
	if err := json.Unmarshal(get("/metrics"), &s); err != nil {
		t.Fatalf("/metrics did not parse: %v", err)
	}
	if s.Schema != SchemaV1 || s.Counters["stream.engine.days"] != 7 {
		t.Fatalf("/metrics snapshot = %+v", s)
	}
	if body := get("/debug/vars"); len(body) == 0 {
		t.Fatal("/debug/vars empty")
	}
	if body := get("/debug/pprof/"); len(body) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
}
