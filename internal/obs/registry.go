package obs

import "sync"

// Registry is a named metric store with cheap get-or-create lookup.
// Handles are resolved once at construction time (NewEngine,
// NewSimSource, Engine.Instrument, …) and held as pointers, so the hot
// path never touches the registry — the mutex only guards registration.
//
// A nil *Registry is the disabled state: every lookup returns a nil
// handle, whose methods are no-ops. That lets call sites wire a
// registry through unconditionally and pay one branch when it is off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first lookup.
// Repeated lookups return the same handle. Nil registry: nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first lookup. Nil
// registry: nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// writer shard count on first lookup; the first creation fixes the
// sizing (later lookups return the existing histogram regardless of
// shards — Shard wraps modulo the real count, so any index stays
// valid). Nil registry: nil.
func (r *Registry) Histogram(name string, shards int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(shards)
		r.hists[name] = h
	}
	return h
}
