package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SchemaV1 identifies the snapshot JSON schema. The schema is a
// first-class artifact — end-of-run snapshots sit next to the
// BENCH_<sha>.json files and are diffed by cmd/benchdiff (-obs), so
// field names and semantics are stable: additions are allowed, renames
// and removals are not.
const SchemaV1 = "obs/v1"

// Snapshot is one consistent-enough read of a registry: every counter
// and gauge value, and every histogram with its shards merged. Map keys
// marshal sorted (encoding/json sorts string keys), so two snapshots of
// the same run state are byte-identical.
type Snapshot struct {
	Schema     string                  `json:"schema"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state. Safe to call
// concurrently with writers (each metric is read atomically); a nil
// registry yields an empty snapshot with the schema stamp.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SchemaV1,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// Report writes the human exit table: counters, gauges, then
// histograms with count / mean / p50 / p90 / max — the
// how-did-the-run-behave summary printed at exit when metrics are on
// (see PERFORMANCE.md, "Observability", for how to read it).
func (r *Registry) Report(w io.Writer) {
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) == 0 {
		fmt.Fprintln(w, "obs: no metrics recorded")
		return
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "%-36s %16s\n", "counter", "value")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "%-36s %16s\n", k, fmtCount(k, s.Counters[k]))
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "%-36s %16s\n", "gauge", "value")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "%-36s %16s\n", k, fmtCount(k, s.Gauges[k]))
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(w, "%-36s %10s %10s %10s %10s %10s\n",
			"histogram", "count", "mean", "p50", "p90", "max")
		keys := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := s.Histograms[k]
			fmt.Fprintf(w, "%-36s %10d %10s %10s %10s %10s\n",
				k, h.Count, fmtNs(h.MeanNs), fmtNs(h.P50Ns), fmtNs(h.P90Ns), fmtNs(float64(h.MaxNs)))
		}
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtCount renders a counter/gauge value; names ending in _ns hold
// accumulated nanoseconds and render as durations.
func fmtCount(name string, v int64) string {
	if len(name) > 3 && name[len(name)-3:] == "_ns" {
		return fmtNs(float64(v))
	}
	return fmt.Sprintf("%d", v)
}

// fmtNs renders nanoseconds human-readably.
func fmtNs(ns float64) string {
	if ns <= 0 {
		return "0"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}
