// Package obs is the pipeline's runtime telemetry layer: atomic
// counters and gauges, a fixed-bucket log2 latency histogram with
// per-worker shards merged on read (mergeable, like stream.QSketch), a
// named Registry, and a Span helper for stage timing. It exists so the
// three parallelism axes of the pipeline — stream workers, sweep runs,
// engine shards — can be *seen* at runtime instead of inferred from
// end-of-run wall clock.
//
// Design rules, in the repo's idiom:
//
//   - Zero allocation on the hot path. Observing a counter, histogram
//     or span performs only atomic operations on pre-resolved handles;
//     the alloc-pin tests assert the instrumented day loop stays at
//     0 allocs/op.
//   - Nil-safe everywhere. A nil *Registry hands out nil metric
//     handles, and every method on a nil handle is a no-op, so a
//     disabled pipeline pays one nil check per site and the default
//     path stays bit-identical — instrumentation observes, never
//     perturbs.
//   - Mergeable reads. Writers own shards (cache-line padded, so
//     workers never false-share); readers merge on demand. Merging is
//     exact and order-invariant (bucket counts add), pinned by the
//     property tests.
//
// Surfaces: Registry.Snapshot (stable JSON schema, SchemaV1),
// Registry.Handler / Serve (live HTTP JSON plus net/http/pprof), and
// Registry.Report (the human exit table). Command-line wiring lives in
// Flags, which folds internal/prof's -cpuprofile/-memprofile into the
// same story.
package obs

import "sync/atomic"

// cacheLine is the padding unit keeping concurrently-written metrics
// off each other's cache lines.
const cacheLine = 64

// Counter is a monotonically increasing atomic counter, padded to a
// cache line so counters resolved next to each other in a registry
// never false-share. All methods are safe on a nil receiver (no-ops),
// which is how a disabled registry costs one branch per site.
type Counter struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins atomic gauge (same padding and nil-safety
// rules as Counter).
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
