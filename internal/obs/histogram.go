package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of the log2 latency histogram.
// Bucket 0 holds observations <= 0 ns; bucket i (i >= 1) holds the
// range [2^(i-1), 2^i) ns. 2^46 ns is ~19.5 hours, so the top bucket
// saturates anything a single run could plausibly time.
const histBuckets = 48

// bucketOf maps an observation (ns) to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) // value 1 -> bucket 1: [1, 2)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketBounds returns the [lo, hi) ns range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// HistShard is one writer's slice of a Histogram: count, sum, max and
// the fixed log2 buckets, all atomic, padded so shards of one histogram
// never share a cache line. Writers hold their shard pointer
// (Histogram.Shard) and call Observe; readers merge every shard on
// demand (Histogram.Snapshot). All methods are nil-safe no-ops.
type HistShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
	_       [cacheLine - (3+histBuckets)*8%cacheLine]byte
}

// Observe records one duration in nanoseconds. Negative inputs clamp
// to zero (durations from a monotonic clock are non-negative; the
// clamp keeps arithmetic on merged sums safe regardless).
func (s *HistShard) Observe(ns int64) {
	if s == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	s.count.Add(1)
	s.sum.Add(ns)
	for {
		m := s.max.Load()
		if ns <= m || s.max.CompareAndSwap(m, ns) {
			break
		}
	}
	s.buckets[bucketOf(ns)].Add(1)
}

// Histogram is a fixed-bucket log2 latency histogram split into
// per-worker shards. Concurrent writers each own a shard (by worker
// index) so the hot path is an uncontended atomic add; reads merge the
// shards, which is exact and order-invariant because bucket counts add
// (the same contract as stream.QSketch). A nil histogram hands out nil
// shards, so every path stays a no-op when disabled.
type Histogram struct {
	shards []HistShard
}

// NewHistogram builds a histogram with the given writer shard count
// (values < 1 are clamped to 1).
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	return &Histogram{shards: make([]HistShard, shards)}
}

// Shard returns writer w's shard (wrapping modulo the shard count), or
// nil on a nil histogram.
func (h *Histogram) Shard(w int) *HistShard {
	if h == nil {
		return nil
	}
	if w < 0 {
		w = -w
	}
	return &h.shards[w%len(h.shards)]
}

// Observe records one duration into shard 0 — the single-writer form.
func (h *Histogram) Observe(ns int64) { h.Shard(0).Observe(ns) }

// Merge folds o's observations into h (shard 0). Bucket counts, counts
// and sums add and max combines by maximum, so merging any partition of
// a stream in any order yields identical totals — pinned by
// TestHistogramMergeOrderInvariant.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	dst := h.Shard(0)
	for i := range o.shards {
		src := &o.shards[i]
		dst.count.Add(src.count.Load())
		dst.sum.Add(src.sum.Load())
		for {
			m, v := dst.max.Load(), src.max.Load()
			if v <= m || dst.max.CompareAndSwap(m, v) {
				break
			}
		}
		for b := range src.buckets {
			dst.buckets[b].Add(src.buckets[b].Load())
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot: Count
// observations below LtNs (and at or above the previous bucket's LtNs).
type Bucket struct {
	LtNs  int64 `json:"lt_ns"`
	Count int64 `json:"count"`
}

// HistSnapshot is the read-side view of a histogram: every shard
// merged, with derived mean and quantile estimates. Quantiles are the
// arithmetic midpoint of the holding bucket, so their relative error is
// bounded by the log2 bucket width (< 2x), which is plenty to tell a
// stalled stage from a busy one.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	MaxNs   int64    `json:"max_ns"`
	MeanNs  float64  `json:"mean_ns"`
	P50Ns   float64  `json:"p50_ns"`
	P90Ns   float64  `json:"p90_ns"`
	P99Ns   float64  `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot merges every shard and derives the summary statistics.
// Safe to call concurrently with writers: each atomic is read once, so
// the snapshot is a consistent-enough view for monitoring (counts may
// trail sums by in-flight observations).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var buckets [histBuckets]int64
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.SumNs += sh.sum.Load()
		if m := sh.max.Load(); m > s.MaxNs {
			s.MaxNs = m
		}
		for b := range sh.buckets {
			buckets[b] += sh.buckets[b].Load()
		}
	}
	if s.Count > 0 {
		s.MeanNs = float64(s.SumNs) / float64(s.Count)
	}
	s.P50Ns = quantile(&buckets, s.Count, 0.50)
	s.P90Ns = quantile(&buckets, s.Count, 0.90)
	s.P99Ns = quantile(&buckets, s.Count, 0.99)
	for b, c := range buckets {
		if c > 0 {
			_, hi := bucketBounds(b)
			s.Buckets = append(s.Buckets, Bucket{LtNs: hi, Count: c})
		}
	}
	return s
}

// quantile estimates the p-quantile from merged bucket counts: the
// midpoint of the bucket holding the rank-⌈p·n⌉ observation.
func quantile(buckets *[histBuckets]int64, n int64, p float64) float64 {
	if n == 0 {
		return 0
	}
	rank := int64(p * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range buckets {
		cum += c
		if cum >= rank {
			if b == 0 {
				return 0
			}
			lo, hi := bucketBounds(b)
			return float64(lo+hi) / 2
		}
	}
	return 0
}

// Span is an in-flight stage timing: obs.Start(h) (or StartShard for a
// per-worker shard) stamps the monotonic clock, End records the elapsed
// nanoseconds into the histogram. Spans are values — starting and
// ending one never allocates — and a span started from a nil histogram
// or shard is inert.
type Span struct {
	sh *HistShard
	t0 time.Time
}

// Start opens a span recording into h's shard 0 on End.
func Start(h *Histogram) Span { return StartShard(h.Shard(0)) }

// StartShard opens a span recording into the given shard on End.
func StartShard(sh *HistShard) Span {
	if sh == nil {
		return Span{}
	}
	return Span{sh: sh, t0: time.Now()}
}

// End records the span's elapsed time. time.Since reads the monotonic
// clock, so recorded durations are monotone non-negative (pinned under
// -race by TestSpanConcurrentWriters).
func (sp Span) End() {
	if sp.sh == nil {
		return
	}
	sp.sh.Observe(int64(time.Since(sp.t0)))
}
