package obs

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/prof"
)

// FlagSet bundles the observability flags a binary needs: the live
// -metrics listener, the -metrics-out end-of-run snapshot, and the
// -cpuprofile/-memprofile pair from internal/prof (embedded here so
// binaries stop re-declaring them by hand). Usage:
//
//	of := obs.Flags()
//	flag.Parse()
//	err := of.Run(func() error { return run(of.Registry(), ...) })
type FlagSet struct {
	addr *string
	out  *string
	prof *prof.FlagSet

	reg   *Registry
	fixed bool
}

// Flags registers -metrics, -metrics-out, -cpuprofile and -memprofile
// on the default flag set. Call before flag.Parse.
func Flags() *FlagSet {
	return &FlagSet{
		addr: flag.String("metrics", "", "serve live metrics + pprof on this address (\":0\" picks a port)"),
		out:  flag.String("metrics-out", "", "write the end-of-run metrics snapshot (obs/v1 JSON) to this file"),
		prof: prof.Flags(),
	}
}

// Registry returns the run's metric registry: non-nil only when
// -metrics or -metrics-out was set, so a run without either flag keeps
// the fully disabled (nil-handle) fast path. Call after flag.Parse.
func (f *FlagSet) Registry() *Registry {
	if f == nil {
		return nil
	}
	if !f.fixed {
		f.fixed = true
		if *f.addr != "" || *f.out != "" {
			f.reg = New()
		}
	}
	return f.reg
}

// Run executes fn with the parsed flags wired through: the metrics
// listener covers fn's duration, profiling wraps it (internal/prof
// semantics), and afterwards the snapshot file is written and the human
// report printed to stderr. fn's error wins over snapshot-write errors.
func (f *FlagSet) Run(fn func() error) error {
	reg := f.Registry()
	if *f.addr != "" {
		bound, shutdown, err := Serve(*f.addr, reg)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", bound)
	}
	runErr := f.prof.Run(fn)
	if reg == nil {
		return runErr
	}
	if *f.out != "" {
		if err := f.writeSnapshot(*f.out, reg); err != nil && runErr == nil {
			runErr = err
		}
	}
	fmt.Fprintln(os.Stderr)
	reg.Report(os.Stderr)
	return runErr
}

func (f *FlagSet) writeSnapshot(path string, reg *Registry) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
