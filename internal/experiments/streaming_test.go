package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// streamingTestConfig is a reduced but KPI-enabled scale: enough users
// for every analyzer to have data, a sparser topology to keep the KPI
// engine fast under -race.
func streamingTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.TargetUsers = 700
	cfg.PopPerTower = 160_000
	return cfg
}

// TestStreamingMatchesSerial asserts the tentpole invariant: the sharded
// streaming pipeline is bit-identical to the serial pipeline at the same
// seed, for 1, 2 and 8 workers. Run under -race this also exercises the
// engine's synchronization.
func TestStreamingMatchesSerial(t *testing.T) {
	cfg := streamingTestConfig()
	serial := RunStandard(cfg)
	for _, tc := range []struct {
		name    string
		workers int
		shards  int
	}{
		{"workers=1", 1, 0},
		{"workers=2", 2, 0},
		{"workers=8", 8, 0},
		{"workers=4/shards=3", 4, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := mustStreamingConfig(t, cfg, stream.Config{Workers: tc.workers, Shards: tc.shards})
			assertResultsEqual(t, serial, got)
		})
	}
}

// TestStreamingMatchesSerialMobilityOnly covers the SkipKPI path.
func TestStreamingMatchesSerialMobilityOnly(t *testing.T) {
	cfg := streamingTestConfig()
	cfg.SkipKPI = true
	serial := RunStandard(cfg)
	got, err := RunStreaming(context.Background(), cfg, 3)
	if err != nil {
		t.Fatalf("RunStreaming: %v", err)
	}
	assertResultsEqual(t, serial, got)
}

// assertResultsEqual compares every externally observable aggregate of
// two pipeline runs bit for bit.
func assertResultsEqual(t *testing.T, want, got *Results) {
	t.Helper()

	if !reflect.DeepEqual(want.Homes, got.Homes) {
		t.Fatalf("detected homes differ: %d vs %d users", len(want.Homes), len(got.Homes))
	}

	model := want.Dataset.Model
	for _, m := range []core.MobilityMetric{core.MetricEntropy, core.MetricGyration} {
		assertSeriesEqual(t, "mobility national "+m.String(),
			want.Mobility.NationalSeries(m), got.Mobility.NationalSeries(m))
		for ci := range model.Counties {
			c := &model.Counties[ci]
			assertSeriesEqual(t, "mobility county "+c.Name+" "+m.String(),
				want.Mobility.CountySeries(c, m), got.Mobility.CountySeries(c, m))
		}
	}

	if want.Matrix.CohortSize() != got.Matrix.CohortSize() {
		t.Fatalf("cohort size: want %d, got %d", want.Matrix.CohortSize(), got.Matrix.CohortSize())
	}
	assertSeriesEqual(t, "matrix home", want.Matrix.HomePresenceSeries(), got.Matrix.HomePresenceSeries())
	assertSeriesEqual(t, "matrix away", want.Matrix.AwaySeries(), got.Matrix.AwaySeries())
	for ci := range model.Counties {
		c := &model.Counties[ci]
		assertSeriesEqual(t, "matrix presence "+c.Name,
			want.Matrix.PresenceSeries(c), got.Matrix.PresenceSeries(c))
	}

	if (want.KPI == nil) != (got.KPI == nil) {
		t.Fatalf("KPI analyzer presence differs")
	}
	if want.KPI != nil {
		for m := traffic.Metric(0); m < traffic.Metric(traffic.NumMetrics); m++ {
			assertSeriesEqual(t, "kpi national "+m.String(),
				want.KPI.NationalSeries(m), got.KPI.NationalSeries(m))
			wp10, wp50, wp90 := want.KPI.NationalBand(m)
			gp10, gp50, gp90 := got.KPI.NationalBand(m)
			assertSeriesEqual(t, "kpi band p10 "+m.String(), wp10, gp10)
			assertSeriesEqual(t, "kpi band p50 "+m.String(), wp50, gp50)
			assertSeriesEqual(t, "kpi band p90 "+m.String(), wp90, gp90)
		}
		for di := range model.Districts {
			d := &model.Districts[di]
			assertSeriesEqual(t, "kpi district "+d.Code,
				want.KPI.DistrictSeries(d, traffic.DLVolume), got.KPI.DistrictSeries(d, traffic.DLVolume))
		}
	}
}

func assertSeriesEqual(t *testing.T, what string, want, got interface{ Len() int }) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: series differ", what)
	}
}

// TestStreamingSimSourceOrdered asserts the re-sequencer delivers days in
// order with more workers than buffered slots.
func TestStreamingSimSourceOrdered(t *testing.T) {
	cfg := streamingTestConfig()
	cfg.SkipKPI = true
	d := NewDataset(cfg)
	src := stream.NewSimSource(context.Background(), d.Sim, nil, 0, timegrid.SimDay(12), stream.Config{Workers: 5, Buffer: 1})
	for day := timegrid.SimDay(0); day < 12; day++ {
		b, err := src.Next()
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if b.Day != day {
			t.Fatalf("out of order: want day %d, got %d", day, b.Day)
		}
		if len(b.Traces) == 0 {
			t.Fatalf("day %d: empty traces", day)
		}
	}
	if _, err := src.Next(); err == nil {
		t.Fatal("expected EOF after last day")
	}
}
