package experiments

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stream"
)

// TestDeltaTableAgainstBaseline runs a small mobility-only sweep and
// checks the differential analytics: the baseline column is excluded,
// self-comparison is exactly zero, and the COVID timeline shows the
// expected large negative mobility delta against the null scenario.
func TestDeltaTableAgainstBaseline(t *testing.T) {
	cfg := sweepConfig()
	scens := sweepScenarios(t, scenario.DefaultCovid, scenario.NoPandemic)
	w := NewWorld(cfg)
	runs := mustSweep(t, w, cfg, stream.Config{Workers: 1}, scens)

	table, err := DeltaTable(runs, scenario.NoPandemic)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.ColNames) != 1 || table.ColNames[0] != scenario.DefaultCovid {
		t.Fatalf("delta columns = %v, want just %s", table.ColNames, scenario.DefaultCovid)
	}
	if len(table.Rows) == 0 {
		t.Fatal("delta table has no rows")
	}
	// Mobility-only sweep: no KPI series may leak into the table.
	for _, row := range table.Rows {
		if strings.Contains(row.Label, "Volume") || strings.Contains(row.Label, "Voice") {
			t.Fatalf("KPI row %q in a mobility-only delta table", row.Label)
		}
	}
	row, ok := table.Row("gyration mean Δ%")
	if !ok {
		t.Fatal("gyration mean Δ% row missing")
	}
	if row.Values[0] > -20 {
		t.Errorf("covid gyration mean Δ%% vs null = %v, want strongly negative", row.Values[0])
	}

	// Self-comparison: every delta and every shift is exactly zero.
	for _, d := range DeltaSeries(runs[0].Results, runs[0].Results) {
		if d.MeanDelta != 0 || d.MeanPct != 0 || d.TroughShiftDays != 0 || d.PeakShiftDays != 0 {
			t.Errorf("self-delta of %q non-zero: %+v", d.Series, d)
		}
	}

	// DeltaHeadlines flattens four rows per series.
	hs := DeltaHeadlines(runs[0].Results, runs[1].Results)
	if len(hs) != 4*len(DeltaSeries(runs[0].Results, runs[1].Results)) {
		t.Fatalf("headline count %d is not 4 per series", len(hs))
	}

	if _, err := DeltaTable(runs, "not-a-run"); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}
