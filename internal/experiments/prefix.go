package experiments

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Copy-on-divergence sweep: before a scenario's behaviour departs from
// an already-scheduled scenario's (pandemic.Scenario.DivergenceFrom),
// their simulated days are bit-identical — so the sweep simulates each
// shared prefix once, checkpoints at the fork day, and forks the
// continuation per scenario. See PERFORMANCE.md, "Copy-on-divergence
// sweeps".

// prefixPlan is the fork tree of a sweep: for every scenario, the
// earlier-indexed scenario it forks from (or -1 for a root that runs
// from day 0) and the number of leading study days they share.
type prefixPlan struct {
	parent   []int
	forkDay  []int
	children [][]int
	// snapAt[i] marks the study days run i must checkpoint at, i.e. the
	// fork days of its non-rider children. timegrid.StudyDays itself is
	// a valid snap day (behaviourally identical scenarios fork after the
	// last day and re-simulate nothing).
	snapAt []map[int]bool
	// rider[i] marks scenarios whose traces are bit-identical to their
	// parent's over the whole window (pandemic.Scenario.TraceEqual):
	// instead of forking a checkpoint and re-simulating the suffix, a
	// rider runs inside its host's day loop, consuming the host's traces
	// with its own traffic engine and KPI fold. riders[j] lists run j's
	// riders. Riders are leaves — they never host checkpoints or riders
	// of their own.
	rider  []bool
	riders [][]int
}

// planPrefix builds the fork tree greedily: each scenario forks from
// the earlier-indexed scenario it shares the most leading days with
// (ties to the smallest index). The earliest-index tie-break makes the
// tree feasible by construction: divergence days are an ultrametric
// (two scenarios that each match a third through day d-1 match each
// other through day d-1), so a child is only attached to parent i when
// it shares strictly more days with i than with i's own ancestor —
// every checkpoint a run must take therefore lies at or after the day
// the run itself starts.
func planPrefix(scens []SweepScenario) prefixPlan {
	n := len(scens)
	p := prefixPlan{
		parent:   make([]int, n),
		forkDay:  make([]int, n),
		children: make([][]int, n),
		snapAt:   make([]map[int]bool, n),
		rider:    make([]bool, n),
		riders:   make([][]int, n),
	}
	compiled := make([]*pandemic.Scenario, n)
	for i := range scens {
		if compiled[i] = scens[i].Scenario; compiled[i] == nil {
			compiled[i] = pandemic.Default()
		}
	}
	for i := 0; i < n; i++ {
		p.parent[i] = -1
		best := 0
		for j := 0; j < i; j++ {
			if shared := sharedPrefixDays(compiled[i], compiled[j]); shared > best {
				best, p.parent[i] = shared, j
			}
		}
		p.forkDay[i] = best
		if j := p.parent[i]; j >= 0 {
			p.children[j] = append(p.children[j], i)
		}
	}
	// Riders: parented leaves whose traces are bit-identical to their
	// parent's over the whole study window. Only leaves qualify — a run
	// that hands checkpoints (or riders) to others must own its day loop.
	// A rider's parent is never itself a rider: having a child
	// disqualifies the parent from the leaf check.
	for i := 0; i < n; i++ {
		if j := p.parent[i]; j >= 0 && len(p.children[i]) == 0 && compiled[i].TraceEqual(compiled[j]) {
			p.rider[i] = true
			p.riders[j] = append(p.riders[j], i)
		}
	}
	// The checkpoint hand-off covers non-rider children only; riders are
	// serviced inside the host's own day loop.
	for j := 0; j < n; j++ {
		kept := p.children[j][:0]
		for _, c := range p.children[j] {
			if p.rider[c] {
				continue
			}
			kept = append(kept, c)
			if p.snapAt[j] == nil {
				p.snapAt[j] = make(map[int]bool)
			}
			p.snapAt[j][p.forkDay[c]] = true
		}
		p.children[j] = kept
	}
	return p
}

// sharedPrefixDays converts a divergence day into a whole number of
// leading study days two scenarios share, clamped to the study window
// (+Inf — behaviourally identical — shares everything).
func sharedPrefixDays(a, b *pandemic.Scenario) int {
	div := a.DivergenceFrom(b)
	if !(div > 0) {
		return 0 // also catches NaN defensively
	}
	if div > timegrid.StudyDays {
		return timegrid.StudyDays
	}
	return int(div)
}

// captureCheckpoint forks the run's live folds into a checkpoint at
// study day sd (days [0, sd) consumed).
func captureCheckpoint(d *Dataset, r *Results, sd int) *Checkpoint {
	ck := &Checkpoint{
		Day:      timegrid.StudyDay(sd),
		Seed:     d.Config.Seed,
		Users:    d.Config.TargetUsers,
		Mobility: r.Mobility.Fork(),
		Matrix:   r.Matrix.Fork(),
	}
	if r.KPI != nil {
		ck.KPI = r.KPI.Fork()
	}
	return ck
}

// riderSpec describes a trace-equal scenario serviced inside a host
// run's day loop instead of getting a day loop of its own.
type riderSpec struct {
	idx     int
	forkDay int
	sc      SweepScenario
}

// riderRun is one rider outcome a host run produced: the rider's sweep
// result (or its attach-time error) plus the prefix days it inherited.
type riderRun struct {
	idx  int
	days int // fork provenance; 0 when the rider failed
	run  SweepRun
}

// errRiderUnattached guards an impossible-by-construction state: the
// planPrefix feasibility argument puts every rider's fork day at or
// after its host's start day, so a host loop always visits it.
var errRiderUnattached = errors.New("experiments: rider fork day precedes host start; plan infeasible")

// enginePool recycles warm traffic engines across the sweep's runs and
// riders. Rebind is bit-identical to NewEngine, so reuse never changes
// output; get returns nil when empty and instantiate builds fresh.
// Engines from panicked runs are never returned (poisoned scratch).
type enginePool struct {
	mu   sync.Mutex
	free []*traffic.Engine
}

func (p *enginePool) get() *traffic.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		return e
	}
	return nil
}

func (p *enginePool) put(e *traffic.Engine) {
	if e == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, e)
	p.mu.Unlock()
}

// runPrefixScenario executes one sweep entry on the checkpointable
// serial day loop (the RunStandardOn study loop — bit-identical to the
// streaming engine at any worker and shard count, see RunStreaming),
// optionally resuming from a forked checkpoint, capturing checkpoints
// at the requested day boundaries for this run's non-rider children,
// and carrying the run's riders inline.
//
// A rider attaches at the boundary a checkpoint child would fork at
// (host KPI fold with days [0, forkDay) consumed is the rider's own
// fold through those days, since factors agree below the fork day) and
// from there consumes the host's traces — bit-identical to its own by
// pandemic.Scenario.TraceEqual — with its own traffic engine and KPI
// fold; its mobility folds are forked from the host's final state.
// Rider attach runs the same ctx/fault gates a standalone run would, so
// injected rider faults surface identically; a rider failure never
// touches the host. A host failure loses its riders' partial state —
// runPrefixScenario then reports no rider outcomes and the caller falls
// back to standalone day-0 runs, matching the children-of-a-failed-
// parent fallback (a panic mid-loop therefore fails the host run but
// only costs its riders the sharing, not their results).
//
// Failure modes otherwise match runScenario: cancelled ctx, injected
// fault.SweepRun faults, and panics anywhere in the stack all land in
// run.Err without touching the other runs.
func runPrefixScenario(ctx context.Context, w *World, cfg Config, scfg stream.Config, sc SweepScenario, idx int, homes homesMap, start *Checkpoint, snapAt map[int]bool, riders []riderSpec, pool *enginePool) (run SweepRun, riderRuns []riderRun, snaps map[int]*Checkpoint) {
	run.Name = sc.Name
	defer func() {
		if v := recover(); v != nil {
			run.Results, run.Headlines = nil, nil
			run.Err = stream.NewWorkerPanic("sweep", -1, -1, v)
			riderRuns, snaps = nil, nil
		}
	}()
	if err := ctx.Err(); err != nil {
		run.Err = err
		return
	}
	if err := scfg.Fault.Fire(fault.SweepRun, int64(idx)); err != nil {
		run.Err = err
		return
	}

	c := cfg
	c.Scenario = sc.Scenario
	d := w.instantiate(c, pool.get())
	r := &Results{Dataset: d, Homes: homes}

	startDay := 0
	if start != nil {
		startDay = int(start.Day)
		r.Mobility, r.Matrix, r.KPI = start.Mobility, start.Matrix, start.KPI
	} else {
		// Cohort: users whose detected home county is Inner London —
		// the same selection as the streaming study pass.
		inner := d.Model.InnerLondon()
		var cohort []popsim.UserID
		for uid, h := range r.Homes {
			if h.County == inner.ID {
				cohort = append(cohort, uid)
			}
		}
		r.Mobility = core.NewMobilityAnalyzer(d.Pop, c.TopN)
		r.Matrix = core.NewMobilityMatrix(d.Pop, inner.ID, cohort, c.TopN)
		if d.Engine != nil {
			r.KPI = core.NewKPIAnalyzer(d.Topology)
		}
	}

	// Rider stacks: each rider gets its own engine and result set but
	// shares the host's simulated traces.
	type riderState struct {
		riderSpec
		d        *Dataset
		r        *Results
		cells    []traffic.CellDay
		err      error
		attached bool
	}
	rs := make([]riderState, len(riders))
	for k, spec := range riders {
		rc := cfg
		rc.Scenario = spec.sc.Scenario
		rd := w.instantiateNoSim(rc, pool.get())
		rs[k] = riderState{riderSpec: spec, d: rd, r: &Results{Dataset: rd, Homes: homes}}
	}

	buf := mobsim.NewDayBuffer()
	var cells []traffic.CellDay
	for sd := startDay; sd <= timegrid.StudyDays; sd++ {
		// Checkpoints are taken at day boundaries: state with days
		// [0, sd) consumed, before day sd is simulated.
		if snapAt[sd] {
			if snaps == nil {
				snaps = make(map[int]*Checkpoint, len(snapAt))
			}
			snaps[sd] = captureCheckpoint(d, r, sd)
		}
		// Riders attach at the same kind of boundary.
		for k := range rs {
			rd := &rs[k]
			if rd.attached || rd.err != nil || rd.forkDay != sd {
				continue
			}
			if err := ctx.Err(); err != nil {
				rd.err = err
				continue
			}
			if err := scfg.Fault.Fire(fault.SweepRun, int64(rd.idx)); err != nil {
				rd.err = err
				continue
			}
			if r.KPI != nil {
				rd.r.KPI = r.KPI.Fork()
			}
			rd.attached = true
		}
		if sd == timegrid.StudyDays {
			break
		}
		if err := ctx.Err(); err != nil {
			run.Err = err
			return run, nil, nil
		}
		day := timegrid.StudyDay(sd).ToSimDay()
		traces := d.Sim.DayInto(buf, day)
		r.Mobility.ConsumeDay(day, traces)
		r.Matrix.ConsumeDay(day, traces)
		if d.Engine != nil {
			if scfg.EngineShards > 1 {
				cells = d.Engine.DayAppendSharded(cells[:0], day, traces, scfg.EngineShards)
			} else {
				cells = d.Engine.DayAppend(cells[:0], day, traces)
			}
			r.KPI.ConsumeDay(day, cells)
		}
		for k := range rs {
			rd := &rs[k]
			if !rd.attached || rd.err != nil || rd.d.Engine == nil {
				continue
			}
			if scfg.EngineShards > 1 {
				rd.cells = rd.d.Engine.DayAppendSharded(rd.cells[:0], day, traces, scfg.EngineShards)
			} else {
				rd.cells = rd.d.Engine.DayAppend(rd.cells[:0], day, traces)
			}
			rd.r.KPI.ConsumeDay(day, rd.cells)
		}
	}
	run.Results, run.Headlines = r, Headlines(r)
	// Finalize riders: the host's final mobility folds are each rider's
	// own (identical traces every day), so fork rather than re-fold.
	riderRuns = make([]riderRun, 0, len(rs))
	for k := range rs {
		rd := &rs[k]
		rr := riderRun{idx: rd.idx, days: rd.forkDay}
		rr.run.Name = rd.sc.Name
		switch {
		case rd.err != nil:
			rr.run.Err = rd.err
			rr.days = 0
		case !rd.attached:
			rr.run.Err = errRiderUnattached
			rr.days = 0
		default:
			rd.r.Mobility = r.Mobility.Fork()
			rd.r.Matrix = r.Matrix.Fork()
			rr.run.Results, rr.run.Headlines = rd.r, Headlines(rd.r)
		}
		pool.put(rd.d.Engine)
		riderRuns = append(riderRuns, rr)
	}
	pool.put(d.Engine)
	return run, riderRuns, snaps
}

// ckKey addresses a stored checkpoint: the run that captured it and the
// day boundary it holds.
type ckKey struct{ parent, day int }

// ckStore hands forked checkpoints from parents to children, dropping
// each checkpoint after its last consumer (reference counted up front
// from the plan).
type ckStore struct {
	mu    sync.Mutex
	plan  *prefixPlan
	store map[ckKey]*Checkpoint
	refs  map[ckKey]int
}

func newCkStore(plan *prefixPlan) *ckStore {
	s := &ckStore{plan: plan, store: map[ckKey]*Checkpoint{}, refs: map[ckKey]int{}}
	for i := range plan.parent {
		if plan.parent[i] >= 0 && !plan.rider[i] {
			s.refs[ckKey{plan.parent[i], plan.forkDay[i]}]++
		}
	}
	return s
}

// put stores a finished run's checkpoints, keeping only the ones still
// awaited.
func (s *ckStore) put(i int, snaps map[int]*Checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for day, ck := range snaps {
		k := ckKey{i, day}
		if s.refs[k] > 0 {
			s.store[k] = ck
		}
	}
}

// take forks run i's planned start checkpoint, or returns nil when the
// run is a root — or when its parent failed or was cancelled before
// capturing one, in which case the run falls back to a standalone
// day-0 run (per-run isolation is preserved over prefix reuse). The
// reference count drops either way, so abandoned checkpoints are freed.
func (s *ckStore) take(i int) *Checkpoint {
	p := s.plan.parent[i]
	if p < 0 || s.plan.forkDay[i] <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := ckKey{p, s.plan.forkDay[i]}
	ck := s.store[k]
	last := false
	if s.refs[k]--; s.refs[k] <= 0 {
		delete(s.store, k)
		delete(s.refs, k)
		last = true
	}
	if ck == nil {
		return nil
	}
	if last {
		// Hand the last consumer the stored checkpoint itself: nobody
		// else will read it, so the isolating fork-copy is pure waste
		// (most checkpoints have exactly one consumer).
		return ck
	}
	return ck.Fork()
}

// runSweepShared is the copy-on-divergence sweep executor behind
// SweepOptions.SharePrefix: scenarios run on the checkpointable serial
// day loop, grouped by divergence into the planPrefix fork tree, each
// child forking its parent's checkpoint instead of re-simulating the
// shared prefix; trace-equal leaves skip even that and ride their
// host's day loop (see prefixPlan.rider). Results are bit-identical to
// the unshared path (asserted by TestSharedPrefixSweepMatchesUnshared
// under -race).
//
// With opt.Parallel > 1 the fork tree is executed by a worker pool over
// a ready queue: a scenario becomes ready when its parent run has
// completed (roots are ready immediately). Scheduling order cannot
// influence results — every run is deterministic in (world, scenario,
// start checkpoint) and checkpoints are deterministic in (world,
// parent scenario, day) — so the output is bit-identical at any worker
// count. A failed or cancelled parent yields no checkpoints; its
// children fall back to standalone day-0 runs, preserving the per-run
// failure isolation of RunSweep.
func runSweepShared(ctx context.Context, w *World, cfg Config, scfg stream.Config, scens []SweepScenario, opt SweepOptions, notify func(int, SweepRun)) ([]SweepRun, error) {
	scfg = scfg.WithDefaults()
	homes := w.Homes()
	plan := planPrefix(scens)
	store := newCkStore(&plan)
	out := make([]SweepRun, len(scens))

	parallel := opt.Parallel
	if parallel > len(scens) {
		parallel = len(scens)
	}
	if parallel < 1 {
		parallel = 1
	}
	m := newSweepMetrics(scfg.Metrics, parallel)

	pool := &enginePool{}

	// finish post-processes one completed run (host, rider, or rider
	// fallback): record fork provenance, bump the sharing counters,
	// stash the checkpoints its children await and detach the pooled
	// engine from the stored stack (as in RunSweepParallel).
	finish := func(i int, run SweepRun, prefixDays int, snaps map[int]*Checkpoint) {
		if run.Err == nil {
			if prefixDays > 0 {
				run.ForkedFrom = scens[plan.parent[i]].Name
				run.PrefixDays = prefixDays
				if m != nil {
					m.forks.Inc()
					m.prefixSaved.Add(int64(prefixDays))
				}
			}
			store.put(i, snaps)
			run.Results.Dataset.Engine = nil
		}
		out[i] = run
		notify(i, run)
		if m != nil {
			m.runs.Inc()
		}
	}

	// riderSpecs materializes run i's planned riders.
	riderSpecs := func(i int) []riderSpec {
		rs := plan.riders[i]
		if len(rs) == 0 {
			return nil
		}
		specs := make([]riderSpec, len(rs))
		for k, ri := range rs {
			specs[k] = riderSpec{idx: ri, forkDay: plan.forkDay[ri], sc: scens[ri]}
		}
		return specs
	}

	// execute runs host i with its riders inline and returns every
	// scenario index it settled. A failed host reports no rider
	// outcomes; its riders then fall back to standalone day-0 runs,
	// exactly as the children of a failed checkpoint parent do.
	execute := func(i int) []int {
		start := store.take(i)
		prefixDays := 0
		if start != nil {
			prefixDays = int(start.Day)
		}
		run, riderRuns, snaps := runPrefixScenario(ctx, w, cfg, scfg, scens[i], i, homes, start, plan.snapAt[i], riderSpecs(i), pool)
		finish(i, run, prefixDays, snaps)
		done := append(make([]int, 0, 1+len(plan.riders[i])), i)
		if run.Err == nil {
			for _, rr := range riderRuns {
				finish(rr.idx, rr.run, rr.days, nil)
				done = append(done, rr.idx)
			}
		} else {
			for _, ri := range plan.riders[i] {
				frun, _, _ := runPrefixScenario(ctx, w, cfg, scfg, scens[ri], ri, homes, nil, nil, nil, pool)
				finish(ri, frun, 0, nil)
				done = append(done, ri)
			}
		}
		return done
	}

	if parallel <= 1 || len(scens) <= 1 {
		for i := range scens {
			if plan.rider[i] {
				continue // settled inside its host's run
			}
			execute(i)
		}
		return out, sweepErr(out)
	}

	// Parallel: ready queue over the fork tree. The channel holds every
	// index at most once (each has one parent), so len(scens) capacity
	// never blocks a producer; the final completion closes it.
	ready := make(chan int, len(scens))
	for i := range scens {
		if !plan.rider[i] && (plan.parent[i] < 0 || plan.forkDay[i] <= 0) {
			ready <- i
		}
	}
	var (
		fanOut    time.Time
		completed int
		compMu    sync.Mutex
	)
	if m != nil {
		fanOut = time.Now()
	}
	complete := func(i int) {
		for _, c := range plan.children[i] {
			if plan.forkDay[c] > 0 {
				ready <- c
			}
		}
		compMu.Lock()
		completed++
		if completed == len(scens) {
			close(ready)
		}
		compMu.Unlock()
	}

	var wg sync.WaitGroup
	for p := 0; p < parallel; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var runSh *obs.HistShard
			if m != nil {
				runSh = m.runNs.Shard(p)
			}
			for i := range ready {
				var t0 time.Time
				if m != nil {
					t0 = time.Now()
					m.queueNs.Observe(int64(t0.Sub(fanOut)))
				}
				done := execute(i)
				if m != nil {
					runSh.Observe(int64(time.Since(t0)))
				}
				// A host settles its riders too; every settled index
				// counts toward completion (riders have no children).
				for _, idx := range done {
					complete(idx)
				}
			}
		}(p)
	}
	wg.Wait()
	if m != nil {
		m.builds.Set(WorldBuildCount())
	}
	return out, sweepErr(out)
}
