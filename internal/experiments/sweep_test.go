package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/timegrid"
)

// sweepConfig is a tiny mobility-only config for sweep tests.
func sweepConfig() Config {
	cfg := DefaultConfig()
	cfg.TargetUsers = 600
	cfg.SkipKPI = true
	return cfg
}

func loadScenario(t *testing.T, name string) *SweepScenario {
	t.Helper()
	s, err := scenario.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return &SweepScenario{Name: name, Scenario: s}
}

func TestSweepBuildsWorldExactlyOnce(t *testing.T) {
	cfg := sweepConfig()
	scens := []SweepScenario{
		*loadScenario(t, scenario.DefaultCovid),
		*loadScenario(t, scenario.NoPandemic),
		*loadScenario(t, scenario.EarlyLockdown),
	}
	before := WorldBuildCount()
	w := NewWorld(cfg)
	runs := mustSweep(t, w, cfg, stream.Config{Workers: 1}, scens)
	if got := WorldBuildCount() - before; got != 1 {
		t.Fatalf("3-scenario sweep built %d worlds, want exactly 1", got)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs", len(runs))
	}
	for _, run := range runs {
		if run.Results.Dataset.World != w {
			t.Fatalf("run %s does not share the sweep's world", run.Name)
		}
		if run.Results.Dataset.Pop != w.Pop {
			t.Fatalf("run %s re-synthesized the population", run.Name)
		}
		if len(run.Headlines) == 0 {
			t.Fatalf("run %s has no headlines", run.Name)
		}
		if len(run.Results.Homes) == 0 {
			t.Fatalf("run %s has no detected homes", run.Name)
		}
	}

	// The comparison table has one column per scenario and separates
	// them: the COVID gyration trough must be far below the null's.
	table := SweepTable(runs)
	if len(table.ColNames) != 3 || len(table.Rows) == 0 {
		t.Fatalf("sweep table shape: cols %v, %d rows", table.ColNames, len(table.Rows))
	}
	row, ok := table.Row("gyration trough Δ%")
	if !ok {
		t.Fatal("gyration trough row missing")
	}
	covid, null := row.Values[0], row.Values[1]
	if covid > -40 {
		t.Errorf("covid trough = %v", covid)
	}
	if null < -15 {
		t.Errorf("null trough = %v", null)
	}
}

// TestDefaultCovidSpecBitIdenticalToDefaultPath is the acceptance gate
// of the scenario subsystem: running the pipeline with the default-covid
// spec loaded from its JSON form must reproduce, bit for bit, the
// results of the legacy pandemic.Default() path.
func TestDefaultCovidSpecBitIdenticalToDefaultPath(t *testing.T) {
	cfg := sweepConfig()
	want := RunStandard(cfg) // cfg.Scenario == nil → pandemic.Default()

	sp, ok := scenario.Get(scenario.DefaultCovid)
	if !ok {
		t.Fatal("default-covid missing")
	}
	data, err := sp.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := parsed.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = scen
	got := RunStandard(cfg)

	for _, m := range []core.MobilityMetric{core.MetricGyration, core.MetricEntropy} {
		a := want.Mobility.NationalSeries(m)
		b := got.Mobility.NationalSeries(m)
		for d := 0; d < timegrid.StudyDays; d++ {
			if a.Values[d] != b.Values[d] {
				t.Fatalf("%v differs at day %d: %v vs %v", m, d, a.Values[d], b.Values[d])
			}
		}
	}
	if len(want.Homes) != len(got.Homes) {
		t.Fatalf("home detection differs: %d vs %d", len(want.Homes), len(got.Homes))
	}
	for uid, h := range want.Homes {
		if got.Homes[uid] != h {
			t.Fatalf("home of user %d differs", uid)
		}
	}
	as := want.Matrix.HomePresenceSeries()
	bs := got.Matrix.HomePresenceSeries()
	for d := range as.Values {
		if as.Values[d] != bs.Values[d] {
			t.Fatalf("matrix presence differs at day %d", d)
		}
	}
}

// TestWorldHomesScenarioInvariant backs the sweep runner's shared
// February pass: homes detected once on the world (under the default
// scenario) must be identical to a full per-scenario run's — February
// precedes the study window, so no scenario factor can touch it.
func TestWorldHomesScenarioInvariant(t *testing.T) {
	cfg := sweepConfig()
	w := NewWorld(cfg)
	homes := w.Homes()
	if len(homes) == 0 {
		t.Fatal("no homes detected on the world")
	}
	nullCfg := cfg
	nullCfg.Scenario = loadScenario(t, scenario.NoPandemic).Scenario
	r := RunStandard(nullCfg)
	if len(r.Homes) != len(homes) {
		t.Fatalf("home counts differ: world %d vs null run %d", len(homes), len(r.Homes))
	}
	for uid, h := range homes {
		if r.Homes[uid] != h {
			t.Fatalf("home of user %d differs between world cache and null-scenario run", uid)
		}
	}
}

func TestInstantiateNormalizesToWorld(t *testing.T) {
	cfg := sweepConfig()
	w := NewWorld(cfg)
	other := cfg
	other.Seed = cfg.Seed + 99
	other.TargetUsers = 5
	d := w.Instantiate(other)
	if d.Config.Seed != w.Seed || d.Config.TargetUsers != w.TargetUsers {
		t.Fatalf("Instantiate kept mismatched world fields: %+v", d.Config)
	}
	if d.Scenario == nil || d.Sim == nil {
		t.Fatal("incomplete stack")
	}
	if d.Engine != nil {
		t.Fatal("SkipKPI ignored")
	}
}
