package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Headline is one summary statistic of a run, used when comparing
// scenarios (counterfactual timelines, parameter sweeps).
type Headline struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Headlines extracts the run's headline statistics: the troughs, peaks
// and means that summarise every figure.
func Headlines(r *Results) []Headline {
	var out []Headline
	add := func(name string, v float64) { out = append(out, Headline{name, v}) }

	gyr := r.Mobility.NationalSeries(core.MetricGyration)
	ent := r.Mobility.NationalSeries(core.MetricEntropy)
	gw := weeklyMeanDelta(gyr, stats.Mean(gyr.Values[:7]))
	ew := weeklyMeanDelta(ent, stats.Mean(ent.Values[:7]))
	add("gyration trough Δ%", minOver(gw, 10, 19))
	add("entropy trough Δ%", minOver(ew, 10, 19))
	add("gyration weeks 18-19 Δ%", meanOver(gw, 18, 19))

	if r.KPI != nil {
		dl := core.WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.DLVolume)).Values
		ul := core.WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.ULVolume)).Values
		vol := core.WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.VoiceVolume)).Values
		loss := core.WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.VoiceDLLoss)).Values
		act := core.WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.DLActiveUsers)).Values
		add("DL volume trough Δ%", minOver(dl, 10, 19))
		add("UL volume lockdown mean Δ%", meanOver(ul, 13, 19))
		add("voice volume peak Δ%", maxOverWeeks(vol, 10, 19))
		add("voice DL loss peak Δ%", maxOverWeeks(loss, 10, 19))
		add("DL active users trough Δ%", minOver(act, 10, 19))
	}
	if r.Matrix != nil && r.Matrix.CohortSize() > 0 {
		home := r.Matrix.HomePresenceSeries()
		hw := weeklyMeanDelta(home, stats.Mean(home.Values[:7]))
		add("Inner London home presence weeks 13-19 Δ%", meanOver(hw, 13, 19))
	}
	return out
}

// CompareScenarios tabulates the headline statistics of two runs side
// by side (e.g. the calibrated timeline against a counterfactual built
// with pandemic.Builder). Headlines present in only one run are skipped.
func CompareScenarios(labelA string, a *Results, labelB string, b *Results) stats.Table {
	t := stats.Table{
		Title:    "scenario comparison: " + labelA + " vs " + labelB,
		ColNames: []string{labelA, labelB, "diff"},
	}
	ha, hb := Headlines(a), Headlines(b)
	byName := map[string]float64{}
	for _, h := range hb {
		byName[h.Name] = h.Value
	}
	for _, h := range ha {
		v, ok := byName[h.Name]
		if !ok {
			continue
		}
		t.AddRow(h.Name, []float64{h.Value, v, v - h.Value})
	}
	return t
}
