package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

// ExtBinsAndBands is an extension experiment beyond the paper's figures:
// it re-runs the mobility pipeline with (a) the §2.3 per-4-hour-bin
// aggregation and (b) streaming percentile bands over the per-user daily
// metrics, verifying two statements the paper makes in passing — the
// per-bin statistics exist ("six disjoint 4-hour bins of the day") and
// "all percentiles are close to the median, following similar trends".
//
// It runs its own simulation pass at the dataset's scale (the bin
// analysis costs an extra metrics pass per user-day, so it is not part
// of RunStandard).
func ExtBinsAndBands(d *Dataset) *Figure {
	f := &Figure{ID: "ext-bins", Title: "Extension: per-bin mobility and percentile bands"}

	bins := core.NewBinAnalyzer(d.Pop, d.Config.TopN)
	bands := core.NewBandAnalyzer(d.Pop, d.Config.TopN)
	for day := timegrid.SimDay(timegrid.StudyDayOffset); day < timegrid.SimDays; day++ {
		traces := d.Sim.Day(day)
		bins.ConsumeDay(day, traces)
		bands.ConsumeDay(day, traces)
	}

	// Per-bin gyration, weekly deltas against each bin's own week 9.
	tb := stats.Table{Title: "gyration Δ% vs own week 9, per 4-hour bin (weekly means)", ColNames: weekColNames()}
	binDrop := map[timegrid.Bin]float64{}
	for b := timegrid.Bin(0); int(b) < timegrid.BinsPerDay; b++ {
		s := bins.BinSeries(b, core.MetricGyration)
		base := stats.Mean(s.Values[:7])
		if base == 0 {
			continue
		}
		w := weeklyMeanDelta(s, base)
		tb.AddRow(b.String(), w)
		binDrop[b] = minOver(w, 13, 15)
	}
	f.Tables = append(f.Tables, tb)

	// Percentile band of the daily gyration distribution.
	band := bands.Band(core.MetricGyration)
	bt := stats.Table{Title: "gyration percentile band across users (daily, km)", ColNames: nil}
	bt.AddRow("p10", band.P10)
	bt.AddRow("p25", band.P25)
	bt.AddRow("p50", band.P50)
	bt.AddRow("p75", band.P75)
	bt.AddRow("p90", band.P90)
	f.Tables = append(f.Tables, bt)

	// Checks: the evening-commute bin (16-20h) collapses far more than
	// the night bin (00-04h), and the percentile tracks co-move with the
	// median (their week-13 drop has the same sign and order of
	// magnitude).
	f.checkTrue("evening-commute bin collapses more than the night bin",
		binDrop[4] < binDrop[0]-10,
		fmt.Sprintf("bin4 %.1f vs bin0 %.1f", binDrop[4], binDrop[0]),
		"≥10 points deeper")
	dropOf := func(track []float64) float64 {
		base := stats.Mean(track[:7])
		w := weeklyMeanDelta(stats.Series{Values: track}, base)
		return weekValue(w, 14)
	}
	p25drop, p50drop, p75drop := dropOf(band.P25), dropOf(band.P50), dropOf(band.P75)
	f.checkTrue("percentile tracks follow the median's collapse",
		p25drop < -15 && p50drop < -25 && p75drop < -25,
		fmt.Sprintf("p25 %.1f, p50 %.1f, p75 %.1f (w14)", p25drop, p50drop, p75drop),
		"all strongly negative")
	f.Notes = append(f.Notes,
		"the paper notes metrics distributions have little variance and percentiles follow the median (§3.2)")
	return f
}
