package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/feeds"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func TestReplayTracesMatchesLive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetUsers = 700
	cfg.SkipKPI = true
	d := NewDataset(cfg)

	// Live pass over a slice of the study window, persisting as we go.
	var buf bytes.Buffer
	w := feeds.NewTraceWriter(&buf)
	live := core.NewMobilityAnalyzer(d.Pop, cfg.TopN)
	start := timegrid.SimDay(timegrid.StudyDayOffset)
	for day := start; day < start+10; day++ {
		traces := d.Sim.Day(day)
		live.ConsumeDay(day, traces)
		if err := w.WriteDay(day, traces); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replay pass from the persisted feed.
	r, err := feeds.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := core.NewMobilityAnalyzer(d.Pop, cfg.TopN)
	days, err := ReplayTraces(r, []DayConsumer{replayed})
	if err != nil {
		t.Fatal(err)
	}
	if days != 10 {
		t.Fatalf("replayed %d days, want 10", days)
	}

	a := live.NationalSeries(core.MetricGyration)
	b := replayed.NationalSeries(core.MetricGyration)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("day %d: live %v vs replayed %v", i, a.Values[i], b.Values[i])
		}
	}
	e1 := live.NationalSeries(core.MetricEntropy)
	e2 := replayed.NationalSeries(core.MetricEntropy)
	for i := range e1.Values {
		if e1.Values[i] != e2.Values[i] {
			t.Fatalf("entropy day %d differs after replay", i)
		}
	}
}

func TestReplayKPIMatchesLive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetUsers = 700
	d := NewDataset(cfg)

	var buf bytes.Buffer
	w := feeds.NewKPIWriter(&buf)
	live := core.NewKPIAnalyzer(d.Topology)
	start := timegrid.SimDay(timegrid.StudyDayOffset)
	for day := start; day < start+7; day++ {
		cells := d.Engine.Day(day, d.Sim.Day(day))
		live.ConsumeDay(day, cells)
		if err := w.WriteDay(day, cells); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := feeds.NewKPIReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := core.NewKPIAnalyzer(d.Topology)
	days, err := ReplayKPI(r, []KPIConsumer{replayed})
	if err != nil {
		t.Fatal(err)
	}
	if days != 7 {
		t.Fatalf("replayed %d days", days)
	}
	// Compare a handful of series across all metrics.
	for _, m := range []int{0, 4, 9} {
		a := live.NationalSeries(metricOf(m))
		b := replayed.NationalSeries(metricOf(m))
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				t.Fatalf("metric %d day %d: %v vs %v", m, i, a.Values[i], b.Values[i])
			}
		}
	}
}

func TestReplayRejectsBadDays(t *testing.T) {
	feed := "day,user,tower,bin,seconds,at_residence\n500,1,0,0,100,1\n"
	r, err := feeds.NewTraceReader(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTraces(r, nil); err == nil {
		t.Error("out-of-window day accepted")
	}
}

// metricOf converts an int index to a traffic.Metric.
func metricOf(i int) traffic.Metric { return traffic.Metric(i) }
