package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/timegrid"
)

// A Checkpoint captures the state of a study-window run at a day
// boundary: study days [0, Day) consumed, everything the per-day loop
// threads forward across days. That state is exactly the analyzer folds
// — by the pipeline's day-purity invariants, nothing else carries
// across a day boundary:
//
//   - rng streams are derived fresh per (user, day) from the master
//     seed (rng.Stream2), so no generator position survives a day;
//   - the mobility simulator is a pure function of (population,
//     scenario, seed, day) — mobsim.Simulator.DayInto holds no
//     cross-day state;
//   - the traffic engine's tower accumulators are epoch-stamped per-day
//     scratch, rebuilt from that day's traces (traffic.Engine.DayAppend
//     is pure in construction inputs and day), and engine construction
//     is scenario-independent (Engine.Rebind);
//   - the February home-detection fold is finished before the study
//     window starts and shared read-only (World.Homes).
//
// A checkpoint taken at the fork day of two scenarios that agree on
// every earlier day (pandemic.Scenario.DivergenceFrom) can therefore
// seed either scenario's continuation, bit-identically to running that
// scenario from day 0 — the basis of the copy-on-divergence sweep.
// Fork gives each continuation its own deep copy; State/Restore
// round-trip the checkpoint through JSON or gob for crash recovery and
// warm starts.
type Checkpoint struct {
	// Day is the first unconsumed study day: the run resumes here.
	Day timegrid.StudyDay
	// Seed and Users identify the world the folds were computed over;
	// Restore refuses a mismatched world.
	Seed  uint64
	Users int

	Mobility *core.MobilityAnalyzer
	Matrix   *core.MobilityMatrix
	// KPI is nil for SkipKPI (mobility-only) runs.
	KPI *core.KPIAnalyzer
}

// Fork returns an independent deep copy: continuations advanced from
// the original and the fork (e.g. under different scenarios) share no
// mutable state (asserted by TestCheckpointForkNoAliasing).
func (c *Checkpoint) Fork() *Checkpoint {
	f := &Checkpoint{Day: c.Day, Seed: c.Seed, Users: c.Users,
		Mobility: c.Mobility.Fork(), Matrix: c.Matrix.Fork()}
	if c.KPI != nil {
		f.KPI = c.KPI.Fork()
	}
	return f
}

// checkpointVersion guards the serialized format.
const checkpointVersion = 1

// CheckpointState is the serializable form of a Checkpoint: plain
// exported data that round-trips through encoding/json and encoding/gob
// without loss (float64 folds are preserved bit-exactly by both).
type CheckpointState struct {
	V     int    `json:"v"`
	Seed  uint64 `json:"seed"`
	Users int    `json:"users"`
	Day   int    `json:"day"`

	Mobility core.MobilityState `json:"mobility"`
	Matrix   core.MatrixState   `json:"matrix"`
	KPI      *core.KPIState     `json:"kpi,omitempty"`
}

// State snapshots the checkpoint for serialization.
func (c *Checkpoint) State() CheckpointState {
	st := CheckpointState{
		V:        checkpointVersion,
		Seed:     c.Seed,
		Users:    c.Users,
		Day:      int(c.Day),
		Mobility: c.Mobility.State(),
		Matrix:   c.Matrix.State(),
	}
	if c.KPI != nil {
		k := c.KPI.State()
		st.KPI = &k
	}
	return st
}

// RestoreCheckpoint rebuilds a checkpoint against a live world, which
// must be the world the snapshot was taken over (same seed and user
// count; the analyzer restores further validate the model and topology
// shapes). Resuming a scenario from the restored checkpoint is
// bit-identical to resuming from the original.
func RestoreCheckpoint(w *World, st CheckpointState) (*Checkpoint, error) {
	if st.V != checkpointVersion {
		return nil, fmt.Errorf("experiments: checkpoint version %d, this build reads %d", st.V, checkpointVersion)
	}
	if st.Seed != w.Seed || st.Users != w.TargetUsers {
		return nil, fmt.Errorf("experiments: checkpoint is for seed %d / %d users, world has seed %d / %d users",
			st.Seed, st.Users, w.Seed, w.TargetUsers)
	}
	if st.Day < 0 || st.Day > timegrid.StudyDays {
		return nil, fmt.Errorf("experiments: checkpoint day %d outside [0, %d]", st.Day, timegrid.StudyDays)
	}
	mob, err := core.RestoreMobilityAnalyzer(w.Pop, st.Mobility)
	if err != nil {
		return nil, err
	}
	mat, err := core.RestoreMobilityMatrix(w.Pop, st.Matrix)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{Day: timegrid.StudyDay(st.Day), Seed: st.Seed, Users: st.Users, Mobility: mob, Matrix: mat}
	if st.KPI != nil {
		kpi, err := core.RestoreKPIAnalyzer(w.Topology, *st.KPI)
		if err != nil {
			return nil, err
		}
		ck.KPI = kpi
	}
	return ck, nil
}
