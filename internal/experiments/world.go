package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// World is the immutable, scenario-independent part of a simulation
// stack: the synthetic census, the radio topology and the synthesized
// population. Building one is the expensive step of every run; a World
// built once can instantiate any number of per-scenario run stacks
// (Instantiate), which is how a Sweep streams many scenarios through
// one shared world.
//
// Nothing in a World is mutated by simulation, so per-scenario stacks —
// and the workers inside each streaming run — share it freely.
type World struct {
	// Seed, TargetUsers and PopPerTower echo the Config the world was
	// built from (normalized: a zero config falls back to defaults).
	Seed        uint64
	TargetUsers int
	PopPerTower int

	Model    *census.Model
	Topology *radio.Topology
	Pop      *popsim.Population

	homesOnce sync.Once
	homes     map[popsim.UserID]core.Home
}

// Homes returns the February home-detection result, computed once per
// world and shared by every scenario run on it. February precedes the
// study window, so every scenario's behavioural factors sit at their
// baselines there and the simulated traces — hence the detected homes —
// are scenario-invariant (asserted by TestWorldHomesScenarioInvariant).
// Callers must treat the returned map as read-only.
func (w *World) Homes() map[popsim.UserID]core.Home {
	w.homesOnce.Do(func() {
		sim := mobsim.New(w.Pop, pandemic.Default(), w.Seed)
		hd := core.NewHomeDetector(w.Topology)
		buf := mobsim.NewDayBuffer()
		for day := timegrid.SimDay(0); day < timegrid.FebruaryDays; day++ {
			hd.ConsumeDay(day, sim.DayInto(buf, day))
		}
		w.homes = hd.Detect()
	})
	return w.homes
}

// worldBuilds counts World constructions process-wide; tests use it to
// assert that a sweep reuses one world instead of rebuilding per
// scenario.
var worldBuilds atomic.Int64

// WorldBuildCount returns the number of Worlds built by this process.
func WorldBuildCount() int64 { return worldBuilds.Load() }

// NewWorld builds the scenario-independent stack deterministically from
// the config's Seed, TargetUsers and PopPerTower (the scenario and
// per-run knobs are ignored here; they bind at Instantiate time).
func NewWorld(cfg Config) *World {
	if cfg.TargetUsers == 0 {
		cfg = DefaultConfig()
	}
	worldBuilds.Add(1)
	model := census.BuildUK(cfg.Seed)
	rcfg := radio.DefaultConfig()
	if cfg.PopPerTower > 0 {
		rcfg.PopPerTower = cfg.PopPerTower
	}
	topo := radio.Build(model, rcfg, cfg.Seed)
	pop := popsim.Synthesize(model, topo, popsim.Config{
		Seed:           cfg.Seed,
		TargetUsers:    cfg.TargetUsers,
		M2MFraction:    0.08,
		RoamerFraction: 0.03,
	})
	return &World{
		Seed:        cfg.Seed,
		TargetUsers: cfg.TargetUsers,
		PopPerTower: cfg.PopPerTower,
		Model:       model,
		Topology:    topo,
		Pop:         pop,
	}
}

// Instantiate binds a scenario and the per-run knobs (TopN, SkipKPI,
// SkipFebruary) to the world, returning a ready run stack. cfg.Scenario
// nil means the calibrated default. The world fields of cfg (Seed,
// TargetUsers, PopPerTower) are overwritten with the world's own values
// so the Dataset's Config always reflects the stack it runs on.
func (w *World) Instantiate(cfg Config) *Dataset {
	return w.instantiate(cfg, nil)
}

// instantiate is Instantiate with an optional traffic engine to reuse:
// when non-nil (and KPI is enabled), the engine — built earlier on this
// same world and seed — is rebound to the new scenario instead of
// constructing a fresh one, keeping its warm scratch. Rebind preserves
// bit-identity with NewEngine (see traffic.Engine.Rebind), so sweep
// workers thread their engine through consecutive scenario runs.
func (w *World) instantiate(cfg Config, reuse *traffic.Engine) *Dataset {
	d := w.instantiateNoSim(cfg, reuse)
	d.Sim = mobsim.New(w.Pop, d.Scenario, d.Config.Seed)
	return d
}

// instantiateNoSim is instantiate without the mobility simulator, for
// stacks that consume traces produced elsewhere: a sweep rider rides
// its host's day loop and never simulates, so building the per-user
// simulator state would be waste. The returned Dataset has Sim == nil.
func (w *World) instantiateNoSim(cfg Config, reuse *traffic.Engine) *Dataset {
	if cfg.TopN == 0 {
		cfg.TopN = core.DefaultTopN
	}
	cfg.Seed = w.Seed
	cfg.TargetUsers = w.TargetUsers
	cfg.PopPerTower = w.PopPerTower
	scen := cfg.Scenario
	if scen == nil {
		scen = pandemic.Default()
	}
	d := &Dataset{
		Config:   cfg,
		World:    w,
		Model:    w.Model,
		Topology: w.Topology,
		Pop:      w.Pop,
		Scenario: scen,
	}
	if !cfg.SkipKPI {
		if reuse != nil {
			d.Engine = reuse.Rebind(scen)
		} else {
			d.Engine = traffic.NewEngine(w.Pop, scen, traffic.DefaultParams(), cfg.Seed)
		}
	}
	return d
}
