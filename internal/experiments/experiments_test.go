package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

var (
	resOnce sync.Once
	res     *Results
)

// results runs the standard pipeline once at the default scale; all
// integration tests share it.
func results(t *testing.T) *Results {
	t.Helper()
	resOnce.Do(func() {
		res = RunStandard(DefaultConfig())
	})
	return res
}

func TestAllFiguresPass(t *testing.T) {
	r := results(t)
	for _, f := range AllFigures(r) {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			for _, c := range f.Checks {
				if !c.Pass {
					t.Errorf("%s: got %s, want %s", c.Name, c.Got, c.Want)
				}
			}
		})
	}
}

func TestFiguresHaveData(t *testing.T) {
	r := results(t)
	for _, f := range AllFigures(r) {
		if f.ID == "" || f.Title == "" {
			t.Errorf("figure missing identity: %+v", f)
		}
		if len(f.Tables) == 0 {
			t.Errorf("figure %s has no tables", f.ID)
		}
		for _, tb := range f.Tables {
			if len(tb.Rows) == 0 {
				t.Errorf("figure %s table %q empty", f.ID, tb.Title)
			}
		}
	}
}

func TestFigurePassedHelper(t *testing.T) {
	f := &Figure{}
	f.checkRange("in range", 5, 0, 10)
	if !f.Passed() {
		t.Error("passing figure reported failed")
	}
	f.checkRange("out of range", 50, 0, 10)
	if f.Passed() {
		t.Error("failing figure reported passed")
	}
	f2 := &Figure{}
	f2.checkTrue("bool", false, "x", "y")
	if f2.Passed() {
		t.Error("checkTrue(false) should fail the figure")
	}
}

func TestRunStandardPopulatesEverything(t *testing.T) {
	r := results(t)
	if r.Mobility == nil || r.KPI == nil || r.Matrix == nil {
		t.Fatal("missing analyzers")
	}
	if len(r.Homes) == 0 {
		t.Fatal("no homes detected")
	}
	if r.Matrix.CohortSize() == 0 {
		t.Fatal("empty Inner London cohort")
	}
	// The cohort should approximate the Inner London agent population.
	inner := r.Dataset.Model.InnerLondon()
	agents := len(r.Dataset.Pop.NativeInCounty(inner.ID))
	if c := r.Matrix.CohortSize(); c < agents*8/10 || c > agents*11/10 {
		t.Errorf("cohort %d vs %d Inner London agents", c, agents)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetUsers = 800
	cfg.SkipKPI = true
	a := RunStandard(cfg)
	b := RunStandard(cfg)
	sa := a.Mobility.NationalSeries(core.MetricGyration)
	sb := b.Mobility.NationalSeries(core.MetricGyration)
	for i := range sa.Values {
		if sa.Values[i] != sb.Values[i] {
			t.Fatalf("gyration series differs at day %d across identical runs", i)
		}
	}
	if len(a.Homes) != len(b.Homes) {
		t.Error("home detection differs across identical runs")
	}
}

func TestSeedChangesDetails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetUsers = 800
	cfg.SkipKPI = true
	a := RunStandard(cfg)
	cfg.Seed++
	b := RunStandard(cfg)
	sa := a.Mobility.NationalSeries(core.MetricGyration)
	sb := b.Mobility.NationalSeries(core.MetricGyration)
	same := 0
	for i := range sa.Values {
		if sa.Values[i] == sb.Values[i] {
			same++
		}
	}
	if same == len(sa.Values) {
		t.Error("different seeds produced identical series")
	}
}

func TestShapesHoldAtSmallerScale(t *testing.T) {
	// Scale invariance: the headline mobility shape holds with a quarter
	// of the agents (KPIs get noisy below that, so only mobility is
	// asserted here).
	cfg := DefaultConfig()
	cfg.TargetUsers = 2000
	cfg.Seed = 99
	cfg.SkipKPI = true
	r := RunStandard(cfg)
	f := Fig3(r)
	for _, c := range f.Checks {
		if !c.Pass {
			t.Errorf("small-scale %s: got %s, want %s", c.Name, c.Got, c.Want)
		}
	}
}

func TestNoPandemicScenarioIsFlat(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetUsers = 1500
	cfg.Scenario = pandemic.NoPandemic()
	cfg.SkipKPI = true
	r := RunStandard(cfg)
	gyr := r.Mobility.NationalSeries(core.MetricGyration)
	base := stats.Mean(gyr.Values[:7])
	weekly := core.DeltaSeries(gyr, base).WeeklyMeans()
	for w, v := range weekly.Values {
		if v < -10 || v > 10 {
			t.Errorf("null scenario gyration delta week %d = %v", w+timegrid.FirstWeek, v)
		}
	}
}

func TestDatasetRunConsumers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetUsers = 600
	d := NewDataset(cfg)
	countTraces := &countingTraceConsumer{}
	countKPI := &countingKPIConsumer{}
	d.Run([]DayConsumer{countTraces}, []KPIConsumer{countKPI})
	if countTraces.days != timegrid.SimDays {
		t.Errorf("trace consumer saw %d days", countTraces.days)
	}
	if countKPI.days != timegrid.SimDays {
		t.Errorf("KPI consumer saw %d days", countKPI.days)
	}
	// SkipFebruary trims the window.
	cfg.SkipFebruary = true
	d2 := NewDataset(cfg)
	c2 := &countingTraceConsumer{}
	d2.Run([]DayConsumer{c2}, nil)
	if c2.days != timegrid.StudyDays {
		t.Errorf("SkipFebruary consumer saw %d days, want %d", c2.days, timegrid.StudyDays)
	}
}

type countingTraceConsumer struct{ days int }

func (c *countingTraceConsumer) ConsumeDay(timegrid.SimDay, []mobsim.DayTrace) { c.days++ }

type countingKPIConsumer struct{ days int }

func (c *countingKPIConsumer) ConsumeDay(timegrid.SimDay, []traffic.CellDay) { c.days++ }

func TestWeekHelpers(t *testing.T) {
	vals := make([]float64, timegrid.StudyWeeks)
	for i := range vals {
		vals[i] = float64(i)
	}
	if got := weekValue(vals, 9); got != 0 {
		t.Errorf("weekValue(w9) = %v", got)
	}
	if got := weekValue(vals, 19); got != 10 {
		t.Errorf("weekValue(w19) = %v", got)
	}
	if got := minOver(vals, 12, 15); got != 3 {
		t.Errorf("minOver = %v", got)
	}
	if got := maxOverWeeks(vals, 12, 15); got != 6 {
		t.Errorf("maxOverWeeks = %v", got)
	}
	if got := meanOver(vals, 10, 12); got != 2 {
		t.Errorf("meanOver = %v", got)
	}
	cols := weekColNames()
	if len(cols) != timegrid.StudyWeeks || cols[0] != "w9" || cols[10] != "w19" {
		t.Errorf("weekColNames = %v", cols)
	}
}

func TestFig9UsesResultsKPI(t *testing.T) {
	r := results(t)
	f := Fig9(r)
	tb := f.Tables[0]
	if len(tb.Rows) != len(traffic.VoiceMetrics()) {
		t.Errorf("Fig9 rows = %d", len(tb.Rows))
	}
	row, ok := tb.Row(traffic.VoiceVolume.String())
	if !ok {
		t.Fatal("voice volume row missing")
	}
	if len(row.Values) != timegrid.StudyWeeks {
		t.Errorf("voice row has %d weeks", len(row.Values))
	}
}

func TestExtensionFigures(t *testing.T) {
	r := results(t)
	for _, f := range []*Figure{ExtBinsAndBands(r.Dataset), ExtSEIR(r)} {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			if len(f.Checks) == 0 {
				t.Fatal("extension has no checks")
			}
			for _, c := range f.Checks {
				if !c.Pass {
					t.Errorf("%s: got %s, want %s", c.Name, c.Got, c.Want)
				}
			}
		})
	}
}

func TestHeadlinesAndComparison(t *testing.T) {
	r := results(t)
	hs := Headlines(r)
	if len(hs) < 8 {
		t.Fatalf("only %d headlines", len(hs))
	}
	names := map[string]bool{}
	for _, h := range hs {
		if names[h.Name] {
			t.Errorf("duplicate headline %q", h.Name)
		}
		names[h.Name] = true
	}
	if !names["gyration trough Δ%"] || !names["voice volume peak Δ%"] {
		t.Error("expected headlines missing")
	}

	// Compare against the no-pandemic null: the diff column must show a
	// dramatic gap on the gyration trough.
	cfg := DefaultConfig()
	cfg.TargetUsers = 1200
	cfg.Scenario = pandemic.NoPandemic()
	cfg.SkipKPI = true
	null := RunStandard(cfg)
	table := CompareScenarios("covid", r, "null", null)
	if len(table.Rows) == 0 {
		t.Fatal("empty comparison")
	}
	row, ok := table.Row("gyration trough Δ%")
	if !ok {
		t.Fatal("gyration trough row missing")
	}
	covid, nullV := row.Values[0], row.Values[1]
	if covid > -40 {
		t.Errorf("covid trough = %v", covid)
	}
	if nullV < -15 {
		t.Errorf("null trough = %v", nullV)
	}
	if diff := row.Values[2]; diff != nullV-covid {
		t.Errorf("diff column = %v, want %v", diff, nullV-covid)
	}
	// KPI headlines are skipped for the KPI-less null run.
	if _, ok := table.Row("DL volume trough Δ%"); ok {
		t.Error("KPI headline should be absent when one run lacks KPIs")
	}
}
