package experiments

import (
	"context"
	"testing"

	"repro/internal/stream"
)

// The streaming and sweep runners return errors only under cancellation
// or fault injection; the functional tests run clean pipelines, so they
// funnel through these must-helpers and keep their assertions on the
// results.

func mustStreamingConfig(t testing.TB, cfg Config, scfg stream.Config) *Results {
	t.Helper()
	r, err := RunStreamingConfig(context.Background(), cfg, scfg)
	if err != nil {
		t.Fatalf("RunStreamingConfig: %v", err)
	}
	return r
}

func mustSweep(t testing.TB, w *World, cfg Config, scfg stream.Config, scens []SweepScenario) []SweepRun {
	t.Helper()
	runs, err := RunSweep(context.Background(), w, cfg, scfg, scens)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	return runs
}

func mustSweepParallel(t testing.TB, w *World, cfg Config, scfg stream.Config, scens []SweepScenario, parallel int) []SweepRun {
	t.Helper()
	runs, err := RunSweepParallel(context.Background(), w, cfg, scfg, scens, parallel)
	if err != nil {
		t.Fatalf("RunSweepParallel: %v", err)
	}
	return runs
}
