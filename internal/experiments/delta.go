package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// SeriesDelta is the differential summary of one per-day series of a
// scenario run against the same series of the sweep's baseline run.
type SeriesDelta struct {
	Series string
	// MeanDelta is mean(run) − mean(baseline) in the series' own units.
	MeanDelta float64
	// MeanPct is the delta-variation percentage of the run's mean
	// against the baseline's mean.
	MeanPct float64
	// TroughShiftDays is argmin(run) − argmin(baseline): by how many
	// days the scenario moves the series' lowest day. PeakShiftDays is
	// the argmax counterpart.
	TroughShiftDays int
	PeakShiftDays   int
}

// SweepSeries extracts a run's per-day comparison series under stable
// names: the two national mobility metrics, every KPI metric the run
// carries, and the Inner-London home presence when the cohort is
// non-empty. These are the series the delta analytics difference
// against a baseline scenario.
func SweepSeries(r *Results) []stats.Series {
	out := []stats.Series{
		named("gyration", r.Mobility.NationalSeries(core.MetricGyration)),
		named("entropy", r.Mobility.NationalSeries(core.MetricEntropy)),
	}
	if r.KPI != nil {
		for _, m := range traffic.Metrics() {
			out = append(out, named(m.String(), r.KPI.NationalSeries(m)))
		}
	}
	if r.Matrix != nil && r.Matrix.CohortSize() > 0 {
		out = append(out, named("Inner London home presence", r.Matrix.HomePresenceSeries()))
	}
	return out
}

func named(name string, s stats.Series) stats.Series {
	s.Label = name
	return s
}

// DeltaSeries differences every shared per-day series of run against
// base. Series present in only one of the two runs (e.g. KPI series
// against a mobility-only baseline) are skipped.
func DeltaSeries(run, base *Results) []SeriesDelta {
	baseByName := map[string]stats.Series{}
	for _, s := range SweepSeries(base) {
		baseByName[s.Label] = s
	}
	var out []SeriesDelta
	for _, s := range SweepSeries(run) {
		b, ok := baseByName[s.Label]
		if !ok || s.Len() == 0 || b.Len() == 0 {
			continue
		}
		rm, bm := stats.Mean(s.Values), stats.Mean(b.Values)
		_, rTrough := s.Min()
		_, bTrough := b.Min()
		_, rPeak := s.Max()
		_, bPeak := b.Max()
		out = append(out, SeriesDelta{
			Series:          s.Label,
			MeanDelta:       rm - bm,
			MeanPct:         stats.DeltaPercent(rm, bm),
			TroughShiftDays: rTrough - bTrough,
			PeakShiftDays:   rPeak - bPeak,
		})
	}
	return out
}

// DeltaHeadlines flattens DeltaSeries into headline rows, four per
// series, for tabulation alongside the absolute headline statistics.
func DeltaHeadlines(run, base *Results) []Headline {
	var out []Headline
	for _, d := range DeltaSeries(run, base) {
		out = append(out,
			Headline{d.Series + " mean Δ", d.MeanDelta},
			Headline{d.Series + " mean Δ%", d.MeanPct},
			Headline{d.Series + " trough shift (days)", float64(d.TroughShiftDays)},
			Headline{d.Series + " peak shift (days)", float64(d.PeakShiftDays)},
		)
	}
	return out
}

// DeltaTable tabulates a sweep differentially: every scenario's per-day
// KPI and mobility series against the named baseline run, one column
// per non-baseline scenario and four rows (absolute mean delta, percent
// delta, trough and peak day shifts) per shared series. The baseline
// must be one of the sweep's run names; rows are kept only when every
// compared run shares the series, mirroring SweepTable.
func DeltaTable(runs []SweepRun, baseline string) (stats.Table, error) {
	var base *SweepRun
	for i := range runs {
		if runs[i].Name == baseline {
			base = &runs[i]
			break
		}
	}
	if base == nil {
		names := make([]string, len(runs))
		for i, r := range runs {
			names[i] = r.Name
		}
		return stats.Table{}, fmt.Errorf("experiments: baseline scenario %q is not part of the sweep %v", baseline, names)
	}

	t := stats.Table{Title: "scenario deltas vs " + baseline}
	var deltas [][]Headline
	for i := range runs {
		if runs[i].Name == baseline {
			continue
		}
		t.ColNames = append(t.ColNames, runs[i].Name)
		deltas = append(deltas, DeltaHeadlines(runs[i].Results, base.Results))
	}
	if len(deltas) == 0 {
		return t, nil
	}
	byName := make([]map[string]float64, len(deltas))
	for i, hs := range deltas {
		byName[i] = make(map[string]float64, len(hs))
		for _, h := range hs {
			byName[i][h.Name] = h.Value
		}
	}
	for _, h := range deltas[0] {
		row := make([]float64, len(deltas))
		ok := true
		for i := range deltas {
			v, has := byName[i][h.Name]
			if !has {
				ok = false
				break
			}
			row[i] = v
		}
		if ok {
			t.AddRow(h.Name, row)
		}
	}
	return t, nil
}
