// Package experiments wires the full reproduction pipeline together and
// provides one runner per paper figure. A Dataset owns the synthetic UK,
// the radio topology, the population and the simulators; Run streams the
// 100 simulated days (February for home detection, weeks 9–19 for the
// analyses) through every analyzer in a single pass.
package experiments

import (
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Config scales the reproduction. Larger TargetUsers give smoother
// medians at linear cost.
type Config struct {
	Seed        uint64
	TargetUsers int
	// PopPerTower controls radio density (see radio.Config).
	PopPerTower int
	// Scenario overrides the default pandemic scenario when non-nil.
	Scenario *pandemic.Scenario
	// TopN is the per-user tower filter (0 disables, default 20).
	TopN int
	// SkipKPI skips the traffic engine (mobility-only runs are ~3×
	// faster; used by mobility figures and benchmarks).
	SkipKPI bool
	// SkipFebruary skips the home-detection window (no Fig. 2 / Fig. 7
	// cohort, but 23% faster).
	SkipFebruary bool
}

// DefaultConfig is the scale used by tests and the figure harness.
func DefaultConfig() Config {
	return Config{Seed: 42, TargetUsers: popsim.ScaleSmall, PopPerTower: 40_000, TopN: core.DefaultTopN}
}

// Dataset is a fully constructed simulation stack: a shared,
// scenario-independent World plus the per-scenario run stack (the
// mobility simulator and the traffic engine) bound to it.
type Dataset struct {
	Config   Config
	World    *World
	Model    *census.Model
	Topology *radio.Topology
	Pop      *popsim.Population
	Scenario *pandemic.Scenario
	Sim      *mobsim.Simulator
	Engine   *traffic.Engine
}

// NewDataset builds a fresh world and binds the config's scenario to
// it. Callers running several scenarios over the same seed and scale
// should build one World and Instantiate per scenario instead (or use
// RunSweep), which skips the expensive world rebuild.
func NewDataset(cfg Config) *Dataset {
	if cfg.TargetUsers == 0 {
		cfg = DefaultConfig()
	}
	return NewWorld(cfg).Instantiate(cfg)
}

// DayConsumer receives one simulated day of traces. The slice is only
// valid for the duration of the call — the runners reuse one day buffer
// across the whole pass — so implementations must copy anything they
// keep.
type DayConsumer interface {
	ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace)
}

// KPIConsumer receives one simulated day of per-cell KPI records, under
// the same ownership rule as DayConsumer: copy anything kept past the
// call.
type KPIConsumer interface {
	ConsumeDay(day timegrid.SimDay, cells []traffic.CellDay)
}

// Run streams every simulated day through the given consumers in one
// pass, reusing a single day buffer (and KPI record buffer) across days.
// KPI records are only generated if at least one KPIConsumer is supplied
// and the dataset was built with KPI enabled.
func (d *Dataset) Run(traceConsumers []DayConsumer, kpiConsumers []KPIConsumer) {
	firstDay := timegrid.SimDay(0)
	if d.Config.SkipFebruary {
		firstDay = timegrid.SimDay(timegrid.StudyDayOffset)
	}
	buf := mobsim.NewDayBuffer()
	var cells []traffic.CellDay
	for day := firstDay; day < timegrid.SimDays; day++ {
		traces := d.Sim.DayInto(buf, day)
		for _, c := range traceConsumers {
			c.ConsumeDay(day, traces)
		}
		if d.Engine != nil && len(kpiConsumers) > 0 {
			cells = d.Engine.DayAppend(cells[:0], day, traces)
			for _, c := range kpiConsumers {
				c.ConsumeDay(day, cells)
			}
		}
	}
}

// Results bundles the analyzers most figures share; RunStandard fills it
// in one pass over the simulation.
type Results struct {
	Dataset  *Dataset
	Mobility *core.MobilityAnalyzer
	KPI      *core.KPIAnalyzer
	Homes    map[popsim.UserID]core.Home
	Matrix   *core.MobilityMatrix
}

// RunStandard executes the canonical full pipeline on a fresh world:
// home detection over February, then mobility metrics, the Inner-London
// mobility matrix (with the cohort chosen by *detected* homes, as in
// the paper) and the KPI analysis over the study window.
func RunStandard(cfg Config) *Results {
	return RunStandardOn(NewDataset(cfg))
}

// RunStandardOn is RunStandard over an already-instantiated stack
// (e.g. one of several scenarios bound to a shared World).
//
// It runs the simulation twice: a February-only pass to detect homes
// (so the matrix cohort exists before the study window starts), then the
// full pass. Both passes are deterministic and share the same per-day
// streams, so the traces are identical across passes.
func RunStandardOn(d *Dataset) *Results {
	cfg := d.Config
	r := &Results{Dataset: d}

	// Pass 1: February only, for home detection. One day buffer serves
	// the whole run: every analyzer consumes a day before the next is
	// simulated, so nothing outlives the buffer's reuse.
	buf := mobsim.NewDayBuffer()
	hd := core.NewHomeDetector(d.Topology)
	for day := timegrid.SimDay(0); day < timegrid.FebruaryDays; day++ {
		hd.ConsumeDay(day, d.Sim.DayInto(buf, day))
	}
	r.Homes = hd.Detect()

	// Cohort: users whose detected home county is Inner London.
	inner := d.Model.InnerLondon()
	var cohort []popsim.UserID
	for uid, h := range r.Homes {
		if h.County == inner.ID {
			cohort = append(cohort, uid)
		}
	}

	r.Mobility = core.NewMobilityAnalyzer(d.Pop, cfg.TopN)
	r.Matrix = core.NewMobilityMatrix(d.Pop, inner.ID, cohort, cfg.TopN)
	traceConsumers := []DayConsumer{r.Mobility, r.Matrix}
	var kpiConsumers []KPIConsumer
	if d.Engine != nil {
		r.KPI = core.NewKPIAnalyzer(d.Topology)
		kpiConsumers = append(kpiConsumers, r.KPI)
	}

	// Pass 2: the study window.
	var cells []traffic.CellDay
	for day := timegrid.SimDay(timegrid.StudyDayOffset); day < timegrid.SimDays; day++ {
		traces := d.Sim.DayInto(buf, day)
		for _, c := range traceConsumers {
			c.ConsumeDay(day, traces)
		}
		if d.Engine != nil {
			cells = d.Engine.DayAppend(cells[:0], day, traces)
			for _, c := range kpiConsumers {
				c.ConsumeDay(day, cells)
			}
		}
	}
	return r
}
