package experiments

import (
	"fmt"
	"io"

	"repro/internal/feeds"
	"repro/internal/timegrid"
)

// ReplayTraces streams a persisted trace feed (written by
// feeds.TraceWriter, e.g. `mnosim -raw`) through the given consumers,
// exactly as Run would stream live simulation output. The feed must
// come from a simulation built with the same seed, scale and topology
// as the dataset the consumers were constructed against — feeds carry
// tower and user IDs, which are only meaningful relative to that stack.
//
// It returns the number of days replayed.
func ReplayTraces(r *feeds.TraceReader, consumers []DayConsumer) (int, error) {
	days := 0
	for {
		day, traces, err := r.ReadDay()
		if err == io.EOF {
			return days, nil
		}
		if err != nil {
			return days, fmt.Errorf("experiments: replaying traces: %w", err)
		}
		if day < 0 || day >= timegrid.SimDays {
			return days, fmt.Errorf("experiments: trace feed day %d outside the simulated window", day)
		}
		for _, c := range consumers {
			c.ConsumeDay(day, traces)
		}
		days++
	}
}

// ReplayKPI streams a persisted per-cell KPI feed through the given
// consumers. The same provenance caveat as ReplayTraces applies: cell
// IDs must come from the same topology build.
func ReplayKPI(r *feeds.KPIReader, consumers []KPIConsumer) (int, error) {
	days := 0
	for {
		day, cells, err := r.ReadDay()
		if err == io.EOF {
			return days, nil
		}
		if err != nil {
			return days, fmt.Errorf("experiments: replaying KPIs: %w", err)
		}
		if day < 0 || day >= timegrid.SimDays {
			return days, fmt.Errorf("experiments: KPI feed day %d outside the simulated window", day)
		}
		for _, c := range consumers {
			c.ConsumeDay(day, cells)
		}
		days++
	}
}
