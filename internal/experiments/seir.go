package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/epi"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

// ExtSEIR is an extension experiment: it replaces the calibrated
// logistic case curve of Fig. 4 with a mechanistic SEIR epidemic whose
// transmission rate is driven by the *simulated* mobility reduction,
// then re-checks the paper's central causal claim — mobility responds
// to interventions, not to case counts — against the mechanistic curve.
//
// The coupling runs one way (mobility → transmission), exactly the
// paper's reading: the population reacted to announcements and orders,
// while the epidemic kept growing regardless.
func ExtSEIR(r *Results) *Figure {
	f := &Figure{ID: "ext-seir", Title: "Extension: SEIR-driven case curve vs mobility"}

	// Contact rate from the measured national activity proxy: scale the
	// scenario's activity into a household-floor … baseline range.
	scen := r.Dataset.Scenario
	contact := func(day float64) float64 {
		sd := timegrid.StudyDay(day)
		if sd >= timegrid.StudyDays {
			sd = timegrid.StudyDays - 1
		}
		return 0.35 + 0.65*scen.Activity(sd)
	}
	p := epi.UK2020()
	res, err := epi.Run(p, timegrid.StudyDays-1, contact)
	if err != nil {
		f.checkTrue("SEIR integration", false, err.Error(), "no error")
		return f
	}

	ent := r.Mobility.NationalSeries(core.MetricEntropy)
	base := stats.Mean(ent.Values[:7])
	delta := core.DeltaSeries(ent, base)

	t := stats.Table{Title: "per-day (SEIR confirmed cases, entropy Δ%)", ColNames: []string{"cases", "entropyΔ%"}}
	var lowCase []float64
	var relaxCases, relaxEnt []float64
	for d := 0; d < timegrid.StudyDays; d++ {
		sd := timegrid.StudyDay(d)
		cases := res.Confirmed[d]
		t.AddRow(timegrid.DateOfStudyDay(sd).Format("01-02"), []float64{cases, delta.Values[d]})
		if cases < 1000 {
			lowCase = append(lowCase, delta.Values[d])
		}
		if timegrid.PhaseOf(sd) == timegrid.PhaseRelaxation {
			relaxCases = append(relaxCases, cases)
			relaxEnt = append(relaxEnt, delta.Values[d])
		}
	}
	f.Tables = append(f.Tables, t)

	// The same Fig. 4 claims must hold against the mechanistic curve.
	if len(lowCase) > 0 {
		f.checkRange("entropy near baseline while SEIR cases < 1000", stats.Mean(lowCase), -12, 5)
	} else {
		f.checkTrue("early low-case window exists", false, "none", "cases start below 1000")
	}
	rho, err := stats.Pearson(relaxCases, relaxEnt)
	f.checkTrue("no negative coupling during relaxation (SEIR curve)",
		err == nil && rho > -0.2, fmt.Sprintf("pearson %.2f", rho), "> -0.2")

	// Mechanistic sanity: the intervention visibly bends the epidemic.
	free, err := epi.Run(p, timegrid.StudyDays-1, epi.ConstantContact(1))
	if err == nil {
		f.checkTrue("lockdown suppresses the epidemic vs free spread",
			res.AttackRate(p.Population) < free.AttackRate(p.Population)*0.75,
			fmt.Sprintf("attack rate %.3f vs %.3f", res.AttackRate(p.Population), free.AttackRate(p.Population)),
			"≥25% lower attack rate")
	}
	peakDay, _ := res.PeakInfectious()
	f.checkTrue("infectious peak lands after the lockdown order",
		peakDay >= int(timegrid.LockdownStart),
		fmt.Sprintf("day %d", peakDay),
		fmt.Sprintf("≥ %d", int(timegrid.LockdownStart)))
	f.Notes = append(f.Notes,
		fmt.Sprintf("SEIR confirmed cases at end of window: %.0f (logistic scenario: %.0f)",
			res.Confirmed[len(res.Confirmed)-1], scen.CumulativeCases(timegrid.StudyDays-1)))
	return f
}
