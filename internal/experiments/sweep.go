package experiments

import (
	"repro/internal/pandemic"
	"repro/internal/stats"
	"repro/internal/stream"
)

// SweepScenario is one named entry of a scenario sweep. A nil Scenario
// means the calibrated default timeline.
type SweepScenario struct {
	Name     string
	Scenario *pandemic.Scenario
}

// SweepRun is the outcome of one scenario of a sweep.
type SweepRun struct {
	Name      string
	Results   *Results
	Headlines []Headline
}

// RunSweep executes every scenario over the shared world, each through
// the streaming engine (with its recycled day buffers), and extracts the
// headline statistics per run. cfg carries the per-run knobs (TopN,
// SkipKPI, …); its Scenario field is ignored — the sweep entries decide.
// The world is built exactly once by the caller; RunSweep never
// constructs another, and the February home-detection pass — scenario-
// invariant, like everything else in the world — runs once and is
// shared by every run.
//
// Runs share the world's seed, so scenarios are compared on *paired*
// draws: every agent keeps its home, anchors, device and relocation
// candidacy across runs, and only the behavioural response differs.
func RunSweep(w *World, cfg Config, scfg stream.Config, scens []SweepScenario) []SweepRun {
	homes := w.Homes()
	out := make([]SweepRun, 0, len(scens))
	for _, sc := range scens {
		c := cfg
		c.Scenario = sc.Scenario
		r := runStreamingStudy(w.Instantiate(c), scfg, homes)
		out = append(out, SweepRun{Name: sc.Name, Results: r, Headlines: Headlines(r)})
	}
	return out
}

// SweepTable tabulates a sweep as headline rows × scenario columns,
// keeping only the headlines present in every run (KPI headlines drop
// out of mobility-only sweeps, exactly as in CompareScenarios).
func SweepTable(runs []SweepRun) stats.Table {
	t := stats.Table{Title: "scenario sweep"}
	if len(runs) == 0 {
		return t
	}
	for _, run := range runs {
		t.ColNames = append(t.ColNames, run.Name)
	}
	byName := make([]map[string]float64, len(runs))
	for i, run := range runs {
		byName[i] = make(map[string]float64, len(run.Headlines))
		for _, h := range run.Headlines {
			byName[i][h.Name] = h.Value
		}
	}
	for _, h := range runs[0].Headlines {
		row := make([]float64, len(runs))
		ok := true
		for i := range runs {
			v, has := byName[i][h.Name]
			if !has {
				ok = false
				break
			}
			row[i] = v
		}
		if ok {
			t.AddRow(h.Name, row)
		}
	}
	return t
}
