package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/stats"
	"repro/internal/stream"
)

// homesMap is the World's shared February home-detection result,
// threaded into every scenario run.
type homesMap = map[popsim.UserID]core.Home

// SweepScenario is one named entry of a scenario sweep. A nil Scenario
// means the calibrated default timeline.
type SweepScenario struct {
	Name     string
	Scenario *pandemic.Scenario
}

// SweepRun is the outcome of one scenario of a sweep. A failed run —
// its stack panicked, a fault was injected, or the sweep was cancelled
// before it ran — has Err set and nil Results/Headlines; the other
// runs of the sweep complete normally (per-run isolation,
// RELIABILITY.md). Filter failed runs out before tabulating
// (SweepTable assumes complete headline sets).
type SweepRun struct {
	Name      string
	Results   *Results
	Headlines []Headline
	Err       error

	// ForkedFrom and PrefixDays record copy-on-divergence provenance
	// (SweepOptions.SharePrefix): when the run was forked from another
	// scenario's checkpoint instead of simulating from day 0, ForkedFrom
	// names that scenario and PrefixDays counts the shared study days it
	// skipped. Zero values mean a standalone day-0 run. Provenance only
	// — the results are bit-identical either way.
	ForkedFrom string
	PrefixDays int
}

// runScenario executes one sweep entry, converting every failure mode
// — a cancelled ctx, an injected fault.SweepRun error, a panic
// anywhere in the scenario stack — into run.Err, so one poisoned
// scenario cannot take down its sweep.
func runScenario(ctx context.Context, w *World, cfg Config, scfg stream.Config, sc SweepScenario, idx int, homes homesMap, ws *sweepWorker) (run SweepRun) {
	run.Name = sc.Name
	defer func() {
		if v := recover(); v != nil {
			run.Results, run.Headlines = nil, nil
			run.Err = stream.NewWorkerPanic("sweep", -1, -1, v)
		}
	}()
	if err := ctx.Err(); err != nil {
		run.Err = err
		return
	}
	if err := scfg.Fault.Fire(fault.SweepRun, int64(idx)); err != nil {
		run.Err = err
		return
	}
	c := cfg
	c.Scenario = sc.Scenario
	r, err := runStreamingStudyWith(ctx, ws.instantiate(w, c), scfg, homes, ws)
	if err != nil {
		run.Err = err
		return
	}
	run.Results, run.Headlines = r, Headlines(r)
	return
}

// sweepErr joins the failures of a sweep into one error (nil when every
// run completed), naming each failed run.
func sweepErr(runs []SweepRun) error {
	var errs []error
	for i := range runs {
		if runs[i].Err != nil {
			errs = append(errs, fmt.Errorf("sweep run %q: %w", runs[i].Name, runs[i].Err))
		}
	}
	return errors.Join(errs...)
}

// RunSweep executes every scenario over the shared world, each through
// the streaming engine (with its recycled day buffers), and extracts the
// headline statistics per run. cfg carries the per-run knobs (TopN,
// SkipKPI, …); its Scenario field is ignored — the sweep entries decide.
// The world is built exactly once by the caller; RunSweep never
// constructs another, and the February home-detection pass — scenario-
// invariant, like everything else in the world — runs once and is
// shared by every run.
//
// Runs share the world's seed, so scenarios are compared on *paired*
// draws: every agent keeps its home, anchors, device and relocation
// candidacy across runs, and only the behavioural response differs.
//
// Failures are isolated per run: a scenario that panics or hits an
// injected fault gets its Err set while the others complete. The
// returned slice always has one entry per scenario, in input order; the
// error is nil iff every run succeeded, else the joined per-run
// failures. Cancelling ctx marks the not-yet-run scenarios with
// ctx.Err().
func RunSweep(ctx context.Context, w *World, cfg Config, scfg stream.Config, scens []SweepScenario) ([]SweepRun, error) {
	homes := w.Homes()
	out := make([]SweepRun, len(scens))
	for i, sc := range scens {
		out[i] = runScenario(ctx, w, cfg, scfg, sc, i, homes, nil)
	}
	return out, sweepErr(out)
}

// SweepTable tabulates a sweep as headline rows × scenario columns,
// keeping only the headlines present in every run (KPI headlines drop
// out of mobility-only sweeps, exactly as in CompareScenarios). Failed
// runs (Err set, no headlines) must be filtered out by the caller
// first.
func SweepTable(runs []SweepRun) stats.Table {
	t := stats.Table{Title: "scenario sweep"}
	if len(runs) == 0 {
		return t
	}
	for _, run := range runs {
		t.ColNames = append(t.ColNames, run.Name)
	}
	byName := make([]map[string]float64, len(runs))
	for i, run := range runs {
		byName[i] = make(map[string]float64, len(run.Headlines))
		for _, h := range run.Headlines {
			byName[i][h.Name] = h.Value
		}
	}
	for _, h := range runs[0].Headlines {
		row := make([]float64, len(runs))
		ok := true
		for i := range runs {
			v, has := byName[i][h.Name]
			if !has {
				ok = false
				break
			}
			row[i] = v
		}
		if ok {
			t.AddRow(h.Name, row)
		}
	}
	return t
}
