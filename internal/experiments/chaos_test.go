package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/timegrid"
)

// settleGoroutines polls until the goroutine count returns to roughly
// base, failing the test if it never does — the no-dependency leak
// check for every Run/RunSweepParallel exit path.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertNoBufferAbuse pins the pooled-buffer invariants after a chaos
// run: no batch released twice anywhere in the process.
func assertNoBufferAbuse(t *testing.T, before int64) {
	t.Helper()
	if got := stream.DoubleReleases() - before; got != 0 {
		t.Fatalf("%d double releases during run", got)
	}
}

// TestStreamingProduceFaultPropagates injects an error into a SimSource
// producer worker mid-study and asserts the full stack — source, engine,
// runner — surfaces it typed, with no goroutine or buffer leak.
func TestStreamingProduceFaultPropagates(t *testing.T) {
	base := runtime.NumGoroutine()
	dr := stream.DoubleReleases()
	cfg := sweepConfig()
	fi := fault.New(fault.Rule{Site: fault.ProduceDay, Kind: fault.KindError, Key: 40})
	r, err := RunStreamingConfig(context.Background(), cfg, stream.Config{Workers: 3, Fault: fi})
	if r != nil {
		t.Fatal("failed run returned results")
	}
	if !fault.IsInjected(err) {
		t.Fatalf("want injected fault error, got %v", err)
	}
	var fe *fault.Error
	errors.As(err, &fe)
	if fe.Site != fault.ProduceDay || fe.Key != 40 {
		t.Errorf("fault context: %+v", fe)
	}
	if fi.Fired(fault.ProduceDay) == 0 {
		t.Error("injector never fired")
	}
	settleGoroutines(t, base)
	assertNoBufferAbuse(t, dr)
}

// TestStreamingProducePanicIsTyped injects a panic into a producer
// worker and asserts it comes back as a *stream.WorkerPanic naming the
// produce stage and day, not as a crashed process.
func TestStreamingProducePanicIsTyped(t *testing.T) {
	base := runtime.NumGoroutine()
	dr := stream.DoubleReleases()
	cfg := sweepConfig()
	fi := fault.New(fault.Rule{Site: fault.ProduceDay, Kind: fault.KindPanic, Key: 45})
	_, err := RunStreamingConfig(context.Background(), cfg, stream.Config{Workers: 3, Fault: fi})
	var wp *stream.WorkerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("want *stream.WorkerPanic, got %T: %v", err, err)
	}
	if wp.Stage != "produce" || wp.Day != 45 {
		t.Errorf("panic context: stage=%q day=%d, want produce/45", wp.Stage, wp.Day)
	}
	settleGoroutines(t, base)
	assertNoBufferAbuse(t, dr)
}

// TestStreamingShardFaultPropagates injects at the engine's shard stage
// through the full runner and asserts typed propagation plus clean
// teardown of the producer workers feeding it.
func TestStreamingShardFaultPropagates(t *testing.T) {
	base := runtime.NumGoroutine()
	dr := stream.DoubleReleases()
	cfg := sweepConfig()
	fi := fault.New(fault.Rule{Site: fault.ShardTask, Kind: fault.KindError, Key: 50})
	_, err := RunStreamingConfig(context.Background(), cfg, stream.Config{Workers: 3, Shards: 4, Fault: fi})
	if !fault.IsInjected(err) {
		t.Fatalf("want injected fault error, got %v", err)
	}
	settleGoroutines(t, base)
	assertNoBufferAbuse(t, dr)
}

// TestSimSourceCancelDrains cancels a SimSource mid-read and asserts
// Next reports the cancellation (not EOF), Stop is idempotent, and the
// producer pool drains without leaking goroutines or pooled buffers.
func TestSimSourceCancelDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	dr := stream.DoubleReleases()
	cfg := sweepConfig()
	d := NewDataset(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	src := stream.NewSimSource(ctx, d.Sim, nil, 0, timegrid.SimDay(40), stream.Config{Workers: 4, Buffer: 2})
	for day := timegrid.SimDay(0); day < 5; day++ {
		b, err := src.Next()
		if err != nil {
			t.Fatalf("day %d before cancel: %v", day, err)
		}
		b.Release()
	}
	cancel()
	// Within a bounded number of reads the cancellation must surface.
	var err error
	for i := 0; i < 10; i++ {
		var b stream.DayBatch
		b, err = src.Next()
		if err != nil {
			break
		}
		b.Release()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from Next, got %v", err)
	}
	stopSrc(src)
	stopSrc(src) // Stop must be idempotent
	settleGoroutines(t, base)
	assertNoBufferAbuse(t, dr)
}

// stopSrc invokes the optional Stopper interface the way the engine
// does.
func stopSrc(src stream.Source) {
	if s, ok := src.(interface{ Stop() }); ok {
		s.Stop()
	}
}

// TestStreamingCancelledContext cancels the runner's context before the
// study completes and asserts ctx.Err() surfaces and everything drains.
func TestStreamingCancelledContext(t *testing.T) {
	base := runtime.NumGoroutine()
	dr := stream.DoubleReleases()
	cfg := sweepConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunStreamingConfig(ctx, cfg, stream.Config{Workers: 3})
	if r != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want nil results + context.Canceled, got %v, %v", r, err)
	}
	settleGoroutines(t, base)
	assertNoBufferAbuse(t, dr)
}

// TestSweepIsolatesPoisonedRun is the headline robustness contract: a
// sweep where run index 1 panics completes every other scenario, marks
// only the poisoned slot failed with a typed *stream.WorkerPanic, and
// returns a joined error naming the failed run.
func TestSweepIsolatesPoisonedRun(t *testing.T) {
	base := runtime.NumGoroutine()
	dr := stream.DoubleReleases()
	cfg := sweepConfig()
	scens := sweepScenarios(t,
		scenario.DefaultCovid, scenario.NoPandemic, scenario.EarlyLockdown)
	w := NewWorld(cfg)
	fi := fault.New(fault.Rule{Site: fault.SweepRun, Kind: fault.KindPanic, Key: 1})
	scfg := stream.Config{Workers: 1, Fault: fi}

	runs, err := RunSweepParallel(context.Background(), w, cfg, scfg, scens, 2)
	if err == nil {
		t.Fatal("sweep with a poisoned run returned nil error")
	}
	var wp *stream.WorkerPanic
	if !errors.As(err, &wp) || wp.Stage != "sweep" {
		t.Fatalf("joined error does not carry the sweep panic: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	for i, run := range runs {
		if run.Name != scens[i].Name {
			t.Errorf("run %d out of sequence: %s", i, run.Name)
		}
		if i == 1 {
			if run.Err == nil || run.Results != nil || run.Headlines != nil {
				t.Errorf("poisoned run not isolated: err=%v results=%v", run.Err, run.Results)
			}
			continue
		}
		if run.Err != nil || run.Results == nil || len(run.Headlines) == 0 {
			t.Errorf("healthy run %s failed: %v", run.Name, run.Err)
		}
	}

	// The healthy runs must be bit-identical to a clean sweep — a
	// poisoned neighbor cannot perturb them (worker discard on failure).
	clean := mustSweepParallel(t, w, cfg, stream.Config{Workers: 1}, scens, 2)
	for _, i := range []int{0, 2} {
		if runs[i].Headlines == nil {
			continue // already reported above
		}
		assertSweepRunsEqual(t,
			[]SweepRun{{Name: clean[i].Name, Results: clean[i].Results, Headlines: clean[i].Headlines}},
			[]SweepRun{{Name: runs[i].Name, Results: runs[i].Results, Headlines: runs[i].Headlines}})
	}
	settleGoroutines(t, base)
	assertNoBufferAbuse(t, dr)
}

// TestSweepSerialPathIsolatesPoisonedRun pins the same isolation on the
// parallel<=1 path.
func TestSweepSerialPathIsolatesPoisonedRun(t *testing.T) {
	cfg := sweepConfig()
	scens := sweepScenarios(t, scenario.DefaultCovid, scenario.NoPandemic)
	w := NewWorld(cfg)
	fi := fault.New(fault.Rule{Site: fault.SweepRun, Kind: fault.KindError, Key: 0})
	runs, err := RunSweepParallel(context.Background(), w, cfg, stream.Config{Workers: 1, Fault: fi}, scens, 1)
	if !fault.IsInjected(err) {
		t.Fatalf("want injected error joined out, got %v", err)
	}
	if runs[0].Err == nil || runs[1].Err != nil {
		t.Fatalf("isolation wrong: run0.Err=%v run1.Err=%v", runs[0].Err, runs[1].Err)
	}
	if len(runs[1].Headlines) == 0 {
		t.Fatal("surviving run has no headlines")
	}
}

// TestSweepCancelledContext cancels before the sweep starts: every slot
// carries ctx.Err(), the joined error reports it, nothing leaks.
func TestSweepCancelledContext(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := sweepConfig()
	scens := sweepScenarios(t, scenario.DefaultCovid, scenario.NoPandemic)
	w := NewWorld(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs, err := RunSweepParallel(ctx, w, cfg, stream.Config{Workers: 1}, scens, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for _, run := range runs {
		if !errors.Is(run.Err, context.Canceled) {
			t.Errorf("run %s: Err = %v, want context.Canceled", run.Name, run.Err)
		}
	}
	settleGoroutines(t, base)
}

// TestSweepOnRunObservesCompletions pins the OnRun hook contract used by
// mnosweep's journal: called once per run with the input index, only
// completed runs have headlines, and calls are serialized (the race
// detector guards that part).
func TestSweepOnRunObservesCompletions(t *testing.T) {
	cfg := sweepConfig()
	scens := sweepScenarios(t, scenario.DefaultCovid, scenario.NoPandemic, scenario.EarlyLockdown)
	w := NewWorld(cfg)
	seen := make(map[int]string)
	runs, err := RunSweepParallelOpts(context.Background(), w, cfg, stream.Config{Workers: 1}, scens,
		SweepOptions{Parallel: 2, OnRun: func(i int, run SweepRun) { seen[i] = run.Name }})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(scens) {
		t.Fatalf("OnRun fired %d times, want %d", len(seen), len(scens))
	}
	for i := range scens {
		if seen[i] != scens[i].Name {
			t.Errorf("OnRun(%d) = %s, want %s", i, seen[i], scens[i].Name)
		}
	}
	_ = runs
}
