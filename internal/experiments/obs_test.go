package experiments

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/timegrid"
)

// TestStreamingInstrumentedBitIdentical pins the end-to-end observability
// contract at the pipeline level: running the streaming pipeline with a
// live metrics registry yields results bit-identical to the serial
// pipeline, and the registry comes back populated with the core stage
// metrics — worker busy time, pool hit/miss accounting, per-day produce
// latency and the traffic engine's day timings.
func TestStreamingInstrumentedBitIdentical(t *testing.T) {
	cfg := streamingTestConfig()
	serial := RunStandard(cfg)

	reg := obs.New()
	got := mustStreamingConfig(t, cfg, stream.Config{Workers: 3, Metrics: reg})
	assertResultsEqual(t, serial, got)

	s := reg.Snapshot()
	// February home detection plus the study window, one produced batch
	// (and one engine day) each.
	const totalDays = timegrid.FebruaryDays + (timegrid.SimDays - timegrid.StudyDayOffset)
	const studyDays = timegrid.SimDays - timegrid.StudyDayOffset

	for _, name := range []string{
		"stream.worker.busy_ns",
		"stream.worker.idle_ns",
		"stream.pool.hits",
		"stream.pool.misses",
		"traffic.visits",
	} {
		if _, ok := s.Counters[name]; !ok {
			t.Errorf("counter %s missing from snapshot", name)
		}
	}
	if s.Counters["stream.worker.busy_ns"] <= 0 {
		t.Errorf("stream.worker.busy_ns = %d, want > 0", s.Counters["stream.worker.busy_ns"])
	}
	if got := s.Counters["stream.engine.days"]; got != totalDays {
		t.Errorf("stream.engine.days = %d, want %d (Feb pass + study window)", got, totalDays)
	}
	if got := s.Histograms["stream.produce_day_ns"].Count; got != totalDays {
		t.Errorf("stream.produce_day_ns count = %d, want %d (one per produced day)", got, totalDays)
	}
	// The traffic engine only runs inside the study window (the February
	// pass carries no KPI engine).
	if got := s.Histograms["traffic.day_ns"].Count; got != studyDays {
		t.Errorf("traffic.day_ns count = %d, want %d (one per study day)", got, studyDays)
	}
	// The study source draws its day stores from an instrumented pool.
	if total := s.Counters["stream.pool.hits"] + s.Counters["stream.pool.misses"]; total < studyDays {
		t.Errorf("pool hits+misses = %d, want >= %d (one draw per study day)", total, studyDays)
	}
}

// TestSweepParallelInstrumented pins the sweep-level metrics: every
// scenario run is counted, timed and queue-stamped exactly once, and the
// world-builds gauge records the shared-dataset guarantee (builds do not
// scale with runs).
func TestSweepParallelInstrumented(t *testing.T) {
	cfg := streamingTestConfig()
	cfg.SkipKPI = true
	scens := sweepScenarios(t, scenario.DefaultCovid, scenario.NoPandemic, scenario.VoiceSurge)
	w := NewWorld(cfg)

	reg := obs.New()
	before := WorldBuildCount()
	runs := mustSweepParallel(t, w, cfg, stream.Config{Workers: 1, Metrics: reg}, scens, 2)
	if len(runs) != len(scens) {
		t.Fatalf("got %d runs, want %d", len(runs), len(scens))
	}

	s := reg.Snapshot()
	n := int64(len(scens))
	if got := s.Counters["sweep.runs"]; got != n {
		t.Errorf("sweep.runs = %d, want %d", got, n)
	}
	if got := s.Histograms["sweep.run_ns"].Count; got != n {
		t.Errorf("sweep.run_ns count = %d, want %d", got, n)
	}
	if got := s.Histograms["sweep.queue_wait_ns"].Count; got != n {
		t.Errorf("sweep.queue_wait_ns count = %d, want %d", got, n)
	}
	if got := s.Gauges["sweep.world_builds"]; got != WorldBuildCount() {
		t.Errorf("sweep.world_builds = %d, want %d (current WorldBuildCount)", got, WorldBuildCount())
	}
	if extra := WorldBuildCount() - before; extra != 0 {
		t.Errorf("instrumented sweep built %d extra worlds, want 0", extra)
	}
}
