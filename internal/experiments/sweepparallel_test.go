package experiments

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stream"
)

// sweepScenarios loads a named scenario set for parity tests.
func sweepScenarios(t *testing.T, names ...string) []SweepScenario {
	t.Helper()
	out := make([]SweepScenario, 0, len(names))
	for _, name := range names {
		out = append(out, *loadScenario(t, name))
	}
	return out
}

// assertSweepRunsEqual compares two sweeps bit for bit: run order,
// headline statistics, and every externally observable aggregate of
// every run.
func assertSweepRunsEqual(t *testing.T, want, got []SweepRun) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("run counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Name != got[i].Name {
			t.Fatalf("run %d out of sequence: want %s, got %s", i, want[i].Name, got[i].Name)
		}
		if !reflect.DeepEqual(want[i].Headlines, got[i].Headlines) {
			t.Errorf("run %s: headlines differ:\nwant %+v\n got %+v", want[i].Name, want[i].Headlines, got[i].Headlines)
		}
		assertResultsEqual(t, want[i].Results, got[i].Results)
	}
}

// TestParallelSweepMatchesSerial asserts the tentpole invariant: the
// parallel sweep executor is bit-identical to serial RunSweep at worker
// counts 1, 2, 4 and 8, re-sequenced to the input order, while building
// zero additional Worlds (counter-verified). Run under -race this also
// exercises the cross-worker synchronization (the shared immutable
// World, the shared homes map, the per-worker pools).
func TestParallelSweepMatchesSerial(t *testing.T) {
	cfg := sweepConfig()
	scens := sweepScenarios(t,
		scenario.DefaultCovid, scenario.NoPandemic, scenario.EarlyLockdown,
		scenario.SecondWave, scenario.VoiceSurge)
	w := NewWorld(cfg)
	scfg := stream.Config{Workers: 1}
	serial := mustSweep(t, w, cfg, scfg, scens)

	before := WorldBuildCount()
	for _, parallel := range []int{1, 2, 4, 8} {
		got := mustSweepParallel(t, w, cfg, scfg, scens, parallel)
		assertSweepRunsEqual(t, serial, got)
	}
	if extra := WorldBuildCount() - before; extra != 0 {
		t.Fatalf("parallel sweeps built %d extra worlds, want 0", extra)
	}
}

// TestParallelSweepMatchesSerialKPI covers the engine-reuse path: with
// KPI enabled and more scenarios than workers, each sweep worker runs
// several scenarios on one rebound traffic engine (Engine.Rebind), and
// the KPI series must still be bit-identical to the serial sweep's
// freshly constructed engines.
func TestParallelSweepMatchesSerialKPI(t *testing.T) {
	cfg := streamingTestConfig() // KPI enabled, sparser topology
	scens := sweepScenarios(t, scenario.DefaultCovid, scenario.NoPandemic, scenario.VoiceSurge)
	w := NewWorld(cfg)
	scfg := stream.Config{Workers: 1}
	serial := mustSweep(t, w, cfg, scfg, scens)
	for i := range serial {
		if serial[i].Results.KPI == nil {
			t.Fatalf("run %s has no KPI analyzer", serial[i].Name)
		}
	}
	got := mustSweepParallel(t, w, cfg, scfg, scens, 2)
	assertSweepRunsEqual(t, serial, got)
	// Documented contract: parallel runs carry no live engine — it is
	// per-worker scratch that would otherwise alias every run of a
	// worker to its last scenario.
	for _, run := range got {
		if run.Results.Dataset.Engine != nil {
			t.Fatalf("run %s exports the worker's shared engine", run.Name)
		}
	}
}

// TestParallelSweepDegradesToSerial pins the fallback contract:
// parallel <= 1 and single-scenario sweeps take the serial path.
func TestParallelSweepDegradesToSerial(t *testing.T) {
	cfg := sweepConfig()
	scens := sweepScenarios(t, scenario.DefaultCovid)
	w := NewWorld(cfg)
	runs := mustSweepParallel(t, w, cfg, stream.Config{Workers: 1}, scens, 8)
	if len(runs) != 1 || runs[0].Name != scenario.DefaultCovid {
		t.Fatalf("unexpected runs: %+v", runs)
	}
	if len(runs[0].Headlines) == 0 {
		t.Fatal("degraded run has no headlines")
	}
}
