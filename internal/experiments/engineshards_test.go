package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// TestStreamingEngineShardsWithinTolerance wires the intra-day sharded
// KPI engine (stream.Config.EngineShards) through the full streaming
// pipeline: mobility aggregates, which never touch the KPI engine, stay
// bit-identical to the serial run, while every national KPI series value
// stays within 1e-9 relative — the sharded accumulation differs from
// serial only in floating-point association.
func TestStreamingEngineShardsWithinTolerance(t *testing.T) {
	cfg := streamingTestConfig()
	serial := mustStreamingConfig(t, cfg, stream.Config{Workers: 1})
	sharded := mustStreamingConfig(t, cfg, stream.Config{Workers: 1, EngineShards: 2})

	for _, m := range []core.MobilityMetric{core.MetricEntropy, core.MetricGyration} {
		a := serial.Mobility.NationalSeries(m)
		b := sharded.Mobility.NationalSeries(m)
		for d := 0; d < a.Len(); d++ {
			if a.At(d) != b.At(d) {
				t.Fatalf("mobility %v day %d: %v vs %v (must be bit-identical; EngineShards leaked into mobility)",
					m, d, a.At(d), b.At(d))
			}
		}
	}

	if serial.KPI == nil || sharded.KPI == nil {
		t.Fatal("KPI analyzer missing")
	}
	for m := 0; m < traffic.NumMetrics; m++ {
		a := serial.KPI.NationalSeries(traffic.Metric(m))
		b := sharded.KPI.NationalSeries(traffic.Metric(m))
		for d := 0; d < timegrid.StudyDays; d++ {
			av, bv := a.At(d), b.At(d)
			if av == bv {
				continue
			}
			scale := math.Max(math.Abs(av), math.Abs(bv))
			if math.Abs(av-bv) > 1e-9*scale {
				t.Fatalf("KPI %v day %d: serial %v vs sharded %v, drift beyond 1e-9 relative",
					traffic.Metric(m), d, av, bv)
			}
		}
	}
}

// TestParallelSweepShardedEngineDeterministic pins the sweep-scale
// contract: with EngineShards set, the parallel sweep executor must
// still be bit-identical to the serial sweep at every worker count —
// the sharded records differ from the serial engine's, but they are a
// pure function of (world, seed, scenario, EngineShards), so outer
// parallelism and the engine-rebind reuse path must not move a bit.
func TestParallelSweepShardedEngineDeterministic(t *testing.T) {
	cfg := streamingTestConfig()
	scens := sweepScenarios(t, scenario.DefaultCovid, scenario.NoPandemic, scenario.VoiceSurge)
	w := NewWorld(cfg)
	scfg := stream.Config{Workers: 1, EngineShards: 2}
	serial := mustSweep(t, w, cfg, scfg, scens)
	for _, parallel := range []int{2, 3} {
		got := mustSweepParallel(t, w, cfg, scfg, scens, parallel)
		assertSweepRunsEqual(t, serial, got)
	}
}
