package experiments

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stream"
)

func headlinesJSON(t *testing.T, hs []Headline) string {
	t.Helper()
	data, err := json.Marshal(hs)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// registrySweep loads every registry scenario, in registry order.
func registrySweep(t *testing.T) []SweepScenario {
	t.Helper()
	var scens []SweepScenario
	for _, name := range scenario.Names() {
		scens = append(scens, *loadScenario(t, name))
	}
	return scens
}

// TestSharedPrefixSweepMatchesUnshared is the copy-on-divergence
// correctness gate: the SharePrefix executor — serial and parallel —
// must reproduce the unshared serial sweep bit for bit over the whole
// registry (JSON float64 encoding is shortest-round-trip, so any drift
// in any headline fails), while actually forking: the expected fork
// tree and the sweep.prefix_days_saved / sweep.checkpoint_forks
// counters are pinned.
func TestSharedPrefixSweepMatchesUnshared(t *testing.T) {
	cfg := goldenConfig()
	scens := registrySweep(t)
	w := NewWorld(cfg)
	ref := mustSweep(t, w, cfg, stream.Config{Workers: 1}, scens)

	// The expected fork tree over the registry order: each scenario's
	// parent and the study days it skips (pandemic.Scenario.DivergenceFrom
	// pairwise values are pinned in internal/scenario's divergence tests;
	// default-covid and early-lockdown run standalone from day 0).
	wantFork := map[string]struct {
		From string
		Days int
	}{
		scenario.NoPandemic:   {scenario.DefaultCovid, 1},
		scenario.LateLockdown: {scenario.NoPandemic, 15},
		scenario.SecondWave:   {scenario.DefaultCovid, 42},
		scenario.DeepOffload:  {scenario.DefaultCovid, 1},
		scenario.VoiceSurge:   {scenario.DefaultCovid, 7},
	}
	wantSaved := 0
	for _, f := range wantFork {
		wantSaved += f.Days
	}

	for _, parallel := range []int{1, 4} {
		reg := obs.New()
		runs, err := RunSweepParallelOpts(context.Background(), w, cfg,
			stream.Config{Workers: 1, Metrics: reg}, scens,
			SweepOptions{Parallel: parallel, SharePrefix: true})
		if err != nil {
			t.Fatalf("shared sweep (parallel=%d): %v", parallel, err)
		}
		for i := range runs {
			if runs[i].Name != ref[i].Name {
				t.Fatalf("parallel=%d run %d: name %q, want %q", parallel, i, runs[i].Name, ref[i].Name)
			}
			got, want := headlinesJSON(t, runs[i].Headlines), headlinesJSON(t, ref[i].Headlines)
			if got != want {
				t.Errorf("parallel=%d %s: shared-prefix headlines diverge from unshared sweep\n got: %s\nwant: %s",
					parallel, runs[i].Name, got, want)
			}
			f, forked := wantFork[runs[i].Name]
			if forked != (runs[i].ForkedFrom != "") || (forked && (runs[i].ForkedFrom != f.From || runs[i].PrefixDays != f.Days)) {
				t.Errorf("parallel=%d %s: forked from %q after %d days, want %q after %d days",
					parallel, runs[i].Name, runs[i].ForkedFrom, runs[i].PrefixDays, f.From, f.Days)
			}
		}
		if got := reg.Counter("sweep.checkpoint_forks").Value(); got != int64(len(wantFork)) {
			t.Errorf("parallel=%d: sweep.checkpoint_forks = %d, want %d", parallel, got, len(wantFork))
		}
		if got := reg.Counter("sweep.prefix_days_saved").Value(); got != int64(wantSaved) {
			t.Errorf("parallel=%d: sweep.prefix_days_saved = %d, want %d", parallel, got, wantSaved)
		}
	}
}

// checkpointConfig is the scale of the checkpoint tests: small, but
// full-pipeline (KPI engine and Inner-London cohort included).
func checkpointConfig() Config {
	return Config{Seed: 42, TargetUsers: 300, PopPerTower: 40_000, TopN: core.DefaultTopN}
}

// runFromCheckpoint resumes one scenario from start (nil = day 0),
// optionally checkpointing at the snap days, and fails the test on any
// run error.
func runFromCheckpoint(t *testing.T, w *World, cfg Config, sc SweepScenario, start *Checkpoint, snapAt map[int]bool) (SweepRun, map[int]*Checkpoint) {
	t.Helper()
	run, _, snaps := runPrefixScenario(context.Background(), w, cfg, stream.Config{Workers: 1}, sc, 0, w.Homes(), start, snapAt, nil, &enginePool{})
	if run.Err != nil {
		t.Fatalf("run %s: %v", sc.Name, run.Err)
	}
	return run, snaps
}

// TestCheckpointRoundTrip serializes a mid-run checkpoint through JSON
// and through gob, restores each against the live world, resumes, and
// requires the resumed headlines to be bit-identical to the
// uninterrupted run's.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := checkpointConfig()
	w := NewWorld(cfg)
	sc := *loadScenario(t, scenario.DefaultCovid)

	full, snaps := runFromCheckpoint(t, w, cfg, sc, nil, map[int]bool{30: true})
	want := headlinesJSON(t, full.Headlines)
	ck := snaps[30]
	if ck == nil {
		t.Fatal("no checkpoint captured at day 30")
	}

	restore := func(t *testing.T, st CheckpointState) {
		t.Helper()
		rck, err := RestoreCheckpoint(w, st)
		if err != nil {
			t.Fatal(err)
		}
		resumed, _ := runFromCheckpoint(t, w, cfg, sc, rck, nil)
		if got := headlinesJSON(t, resumed.Headlines); got != want {
			t.Errorf("resumed headlines diverge from uninterrupted run\n got: %s\nwant: %s", got, want)
		}
	}

	t.Run("json", func(t *testing.T) {
		data, err := json.Marshal(ck.State())
		if err != nil {
			t.Fatal(err)
		}
		var st CheckpointState
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		restore(t, st)
	})

	t.Run("gob", func(t *testing.T) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck.State()); err != nil {
			t.Fatal(err)
		}
		var st CheckpointState
		if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
			t.Fatal(err)
		}
		restore(t, st)
	})

	t.Run("rejects-mismatched-world", func(t *testing.T) {
		st := ck.State()
		st.Seed++
		if _, err := RestoreCheckpoint(w, st); err == nil {
			t.Error("RestoreCheckpoint accepted a checkpoint from a different seed")
		}
		st = ck.State()
		st.V++
		if _, err := RestoreCheckpoint(w, st); err == nil {
			t.Error("RestoreCheckpoint accepted an unknown version")
		}
	})
}

// TestCheckpointForkNoAliasing advances a fork to the end of the study
// window — under a different scenario — and requires the original
// checkpoint to be untouched (snapshot-identical) and still usable:
// resuming it must still reproduce the uninterrupted run.
func TestCheckpointForkNoAliasing(t *testing.T) {
	cfg := checkpointConfig()
	w := NewWorld(cfg)
	base := *loadScenario(t, scenario.DefaultCovid)
	other := *loadScenario(t, scenario.NoPandemic)

	full, snaps := runFromCheckpoint(t, w, cfg, base, nil, map[int]bool{20: true})
	ck := snaps[20]
	before, err := json.Marshal(ck.State())
	if err != nil {
		t.Fatal(err)
	}

	forked, _ := runFromCheckpoint(t, w, cfg, other, ck.Fork(), nil)

	after, err := json.Marshal(ck.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("advancing a fork mutated the original checkpoint")
	}
	if got, want := headlinesJSON(t, forked.Headlines), headlinesJSON(t, full.Headlines); got == want {
		t.Error("fork advanced under a different scenario reproduced the base scenario exactly; fork is not independent")
	}
	resumed, _ := runFromCheckpoint(t, w, cfg, base, ck, nil)
	if got, want := headlinesJSON(t, resumed.Headlines), headlinesJSON(t, full.Headlines); got != want {
		t.Errorf("original checkpoint no longer reproduces the uninterrupted run after its fork was advanced\n got: %s\nwant: %s", got, want)
	}
}
