package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/popsim"
	"repro/internal/stream"
	"repro/internal/timegrid"
)

// RunStreaming executes the canonical full pipeline — the same two
// passes as RunStandard — on the sharded streaming engine: day
// production (simulation and KPI generation) runs ahead on a worker
// pool, the per-user analysis work is partitioned across shards, and
// shard results are merged deterministically. The returned Results are
// bit-identical to RunStandard at the same seed for every worker and
// shard count, including workers == 1.
//
// ctx cancels the run: production drains, pooled buffers are recycled
// and ctx.Err() is returned (RELIABILITY.md). A clean run of the
// default engine never errors; with fault injection armed
// (stream.Config.Fault) or a cancelled ctx, the error carries the
// failing stage (stream.WorkerPanic for panics, fault.Error for
// injected failures).
func RunStreaming(ctx context.Context, cfg Config, workers int) (*Results, error) {
	return RunStreamingConfig(ctx, cfg, stream.Config{Workers: workers})
}

// RunStreamingConfig is RunStreaming with full control over the engine
// sizing (shard count, backpressure window).
func RunStreamingConfig(ctx context.Context, cfg Config, scfg stream.Config) (*Results, error) {
	return RunStreamingOn(ctx, NewDataset(cfg), scfg)
}

// RunStreamingOn is RunStreamingConfig over an already-instantiated
// stack.
func RunStreamingOn(ctx context.Context, d *Dataset, scfg stream.Config) (*Results, error) {
	scfg = scfg.WithDefaults()

	// Pass 1: February only, for home detection, sharded by user.
	homes := stream.NewHomes(d.Topology, scfg.Shards)
	eng := stream.NewEngine(scfg)
	eng.AddTraceSharder(homes)
	febSrc := stream.NewSimSource(ctx, d.Sim, nil, 0, timegrid.FebruaryDays, scfg)
	if err := eng.Run(ctx, febSrc); err != nil {
		return nil, err
	}
	return runStreamingStudy(ctx, d, scfg, homes.Detect())
}

// runStreamingStudy is the study-window pass over prebuilt February
// homes. The sweep runner calls it directly with the World's shared
// homes — February traces are scenario-invariant, so re-detecting per
// scenario would only repeat identical work.
func runStreamingStudy(ctx context.Context, d *Dataset, scfg stream.Config, detected map[popsim.UserID]core.Home) (*Results, error) {
	return runStreamingStudyWith(ctx, d, scfg, detected, nil)
}

// runStreamingStudyWith is runStreamingStudy drawing reusable state from
// a sweep worker when one is given: the sharded mobility/matrix stages
// are reset instead of re-allocated (keeping their per-shard mergers and
// day buffers warm) and day production recycles through the worker's
// shared BufferPool, so consecutive scenario runs on one worker stay at
// the PR 2 zero-alloc steady state. All reused state is scratch —
// nothing in it influences the computed aggregates — so results are
// bit-identical to the unpooled path.
//
// A failed run leaves the worker's reused state partially consumed;
// callers must discard the sweepWorker after any error (the sweep
// runners do).
func runStreamingStudyWith(ctx context.Context, d *Dataset, scfg stream.Config, detected map[popsim.UserID]core.Home, ws *sweepWorker) (*Results, error) {
	scfg = scfg.WithDefaults()
	cfg := d.Config
	r := &Results{Dataset: d, Homes: detected}

	// Cohort: users whose detected home county is Inner London.
	inner := d.Model.InnerLondon()
	var cohort []popsim.UserID
	for uid, h := range r.Homes {
		if h.County == inner.ID {
			cohort = append(cohort, uid)
		}
	}

	r.Mobility = core.NewMobilityAnalyzer(d.Pop, cfg.TopN)
	r.Matrix = core.NewMobilityMatrix(d.Pop, inner.ID, cohort, cfg.TopN)

	// Pass 2: the study window, with sharded mobility/matrix stages and
	// the exact KPI analyzer in the merge stage.
	study := stream.NewEngine(scfg)
	study.AddTraceSharder(ws.mobility(r.Mobility, scfg.Shards))
	study.AddTraceSharder(ws.matrix(r.Matrix, scfg.Shards))
	kpiEngine := d.Engine
	if kpiEngine != nil {
		r.KPI = core.NewKPIAnalyzer(d.Topology)
		study.AddKPIConsumer(r.KPI)
	}
	studySrc := stream.NewSimSourcePooled(ctx, d.Sim, kpiEngine,
		timegrid.SimDay(timegrid.StudyDayOffset), timegrid.SimDays, scfg, ws.bufferPool())
	if err := study.Run(ctx, studySrc); err != nil {
		return nil, err
	}
	return r, nil
}
