package experiments

import (
	"repro/internal/core"
	"repro/internal/popsim"
	"repro/internal/stream"
	"repro/internal/timegrid"
)

// RunStreaming executes the canonical full pipeline — the same two
// passes as RunStandard — on the sharded streaming engine: day
// production (simulation and KPI generation) runs ahead on a worker
// pool, the per-user analysis work is partitioned across shards, and
// shard results are merged deterministically. The returned Results are
// bit-identical to RunStandard at the same seed for every worker and
// shard count, including workers == 1.
func RunStreaming(cfg Config, workers int) *Results {
	return RunStreamingConfig(cfg, stream.Config{Workers: workers})
}

// RunStreamingConfig is RunStreaming with full control over the engine
// sizing (shard count, backpressure window).
func RunStreamingConfig(cfg Config, scfg stream.Config) *Results {
	return RunStreamingOn(NewDataset(cfg), scfg)
}

// RunStreamingOn is RunStreamingConfig over an already-instantiated
// stack.
func RunStreamingOn(d *Dataset, scfg stream.Config) *Results {
	scfg = scfg.WithDefaults()

	// Pass 1: February only, for home detection, sharded by user.
	homes := stream.NewHomes(d.Topology, scfg.Shards)
	eng := stream.NewEngine(scfg)
	eng.AddTraceSharder(homes)
	febSrc := stream.NewSimSource(d.Sim, nil, 0, timegrid.FebruaryDays, scfg)
	_ = eng.Run(febSrc) // SimSource never errors
	return runStreamingStudy(d, scfg, homes.Detect())
}

// runStreamingStudy is the study-window pass over prebuilt February
// homes. The sweep runner calls it directly with the World's shared
// homes — February traces are scenario-invariant, so re-detecting per
// scenario would only repeat identical work.
func runStreamingStudy(d *Dataset, scfg stream.Config, detected map[popsim.UserID]core.Home) *Results {
	return runStreamingStudyWith(d, scfg, detected, nil)
}

// runStreamingStudyWith is runStreamingStudy drawing reusable state from
// a sweep worker when one is given: the sharded mobility/matrix stages
// are reset instead of re-allocated (keeping their per-shard mergers and
// day buffers warm) and day production recycles through the worker's
// shared BufferPool, so consecutive scenario runs on one worker stay at
// the PR 2 zero-alloc steady state. All reused state is scratch —
// nothing in it influences the computed aggregates — so results are
// bit-identical to the unpooled path.
func runStreamingStudyWith(d *Dataset, scfg stream.Config, detected map[popsim.UserID]core.Home, ws *sweepWorker) *Results {
	scfg = scfg.WithDefaults()
	cfg := d.Config
	r := &Results{Dataset: d, Homes: detected}

	// Cohort: users whose detected home county is Inner London.
	inner := d.Model.InnerLondon()
	var cohort []popsim.UserID
	for uid, h := range r.Homes {
		if h.County == inner.ID {
			cohort = append(cohort, uid)
		}
	}

	r.Mobility = core.NewMobilityAnalyzer(d.Pop, cfg.TopN)
	r.Matrix = core.NewMobilityMatrix(d.Pop, inner.ID, cohort, cfg.TopN)

	// Pass 2: the study window, with sharded mobility/matrix stages and
	// the exact KPI analyzer in the merge stage.
	study := stream.NewEngine(scfg)
	study.AddTraceSharder(ws.mobility(r.Mobility, scfg.Shards))
	study.AddTraceSharder(ws.matrix(r.Matrix, scfg.Shards))
	kpiEngine := d.Engine
	if kpiEngine != nil {
		r.KPI = core.NewKPIAnalyzer(d.Topology)
		study.AddKPIConsumer(r.KPI)
	}
	studySrc := stream.NewSimSourcePooled(d.Sim, kpiEngine,
		timegrid.SimDay(timegrid.StudyDayOffset), timegrid.SimDays, scfg, ws.bufferPool())
	_ = study.Run(studySrc)
	return r
}
