package experiments

import (
	"fmt"
	"math"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Check is one shape assertion against the paper: a direction, ordering
// or coarse magnitude the reproduction must match. Absolute values are
// not compared — the substrate is a simulator, not the authors' testbed.
type Check struct {
	Name string
	Pass bool
	Got  string
	Want string
}

// Figure is the output of one figure runner: the regenerated data
// (tables of weekly series, as the paper plots) plus the shape checks.
type Figure struct {
	ID     string
	Title  string
	Tables []stats.Table
	Notes  []string
	Checks []Check
}

// Passed reports whether every check passed.
func (f *Figure) Passed() bool {
	for _, c := range f.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// checkRange appends a range assertion.
func (f *Figure) checkRange(name string, got, lo, hi float64) {
	f.Checks = append(f.Checks, Check{
		Name: name,
		Pass: got >= lo && got <= hi,
		Got:  fmt.Sprintf("%.1f", got),
		Want: fmt.Sprintf("[%.1f, %.1f]", lo, hi),
	})
}

// checkTrue appends a boolean assertion.
func (f *Figure) checkTrue(name string, pass bool, got, want string) {
	f.Checks = append(f.Checks, Check{Name: name, Pass: pass, Got: got, Want: want})
}

// weekColNames returns the column labels "w9" … "w19".
func weekColNames() []string {
	out := make([]string, 0, timegrid.StudyWeeks)
	for _, w := range timegrid.Weeks() {
		out = append(out, fmt.Sprintf("w%d", int(w)))
	}
	return out
}

// weeklyMeanDelta converts a raw daily series to weekly means of the
// delta-variation percentage against the given baseline value.
func weeklyMeanDelta(s stats.Series, baseline float64) []float64 {
	return core.DeltaSeries(s, baseline).WeeklyMeans().Values
}

// weekValue extracts the value for a paper week from a weekly series.
func weekValue(vals []float64, w timegrid.Week) float64 {
	i := w.Index()
	if i < 0 || i >= len(vals) {
		return math.NaN()
	}
	return vals[i]
}

// minOver returns the minimum over the inclusive week range.
func minOver(vals []float64, from, to timegrid.Week) float64 {
	min := math.Inf(1)
	for w := from; w <= to; w++ {
		if v := weekValue(vals, w); v < min {
			min = v
		}
	}
	return min
}

// meanOver returns the mean over the inclusive week range.
func meanOver(vals []float64, from, to timegrid.Week) float64 {
	var sum float64
	var n int
	for w := from; w <= to; w++ {
		sum += weekValue(vals, w)
		n++
	}
	return sum / float64(n)
}

// --- Table 1 ------------------------------------------------------------

// Table1 renders the geodemographic cluster definitions (a static
// dataset, included for completeness).
func Table1() *Figure {
	f := &Figure{ID: "table1", Title: "Geodemographic clusters (2011 OAC)"}
	t := stats.Table{Title: "Table 1", ColNames: []string{}}
	for _, c := range census.Clusters() {
		t.AddRow(c.Name()+" — "+c.Definition(), nil)
	}
	f.Tables = append(f.Tables, t)
	return f
}

// --- Fig. 2: home detection census validation ----------------------------

// Fig2 reproduces the §2.3 validation: inferred residential population
// per area versus census population, with the OLS r² (paper: 0.955).
func Fig2(r *Results) *Figure {
	f := &Figure{ID: "fig2", Title: "Inferred residential population vs census (home detection)"}
	scale := float64(len(r.Dataset.Pop.Native())) / float64(r.Dataset.Model.TotalPopulation())
	val, err := core.ValidateAgainstCensus(r.Homes, r.Dataset.Model, scale)
	if err != nil {
		f.checkTrue("ols fit computed", false, err.Error(), "no error")
		return f
	}
	t := stats.Table{Title: "Fig. 2: per-district inferred vs census (scaled)", ColNames: []string{"census", "inferred"}}
	for i, label := range val.Labels {
		t.AddRow(label, []float64{val.Census[i], val.Inferred[i]})
	}
	f.Tables = append(f.Tables, t)
	f.Notes = append(f.Notes,
		fmt.Sprintf("OLS fit: inferred = %.2f + %.3f·census, r² = %.3f over %d areas (paper: r² = 0.955)",
			val.Fit.Intercept, val.Fit.Slope, val.Fit.R2, val.Areas),
		fmt.Sprintf("homes detected for %d of %d native users (paper: ~16M of ~22M)",
			len(r.Homes), len(r.Dataset.Pop.Native())))
	f.checkRange("r² of census fit", val.Fit.R2, 0.90, 1.0)
	f.checkTrue("positive linear relationship", val.Fit.Slope > 0,
		fmt.Sprintf("slope %.3f", val.Fit.Slope), "> 0")
	frac := float64(len(r.Homes)) / float64(len(r.Dataset.Pop.Native()))
	f.checkRange("fraction of users with detected home", frac, 0.70, 1.0)
	return f
}

// --- Fig. 3: national mobility -------------------------------------------

// Fig3 reproduces the national gyration/entropy time series (daily
// averages, delta vs week-9 average).
func Fig3(r *Results) *Figure {
	f := &Figure{ID: "fig3", Title: "National mobility: radius of gyration and entropy"}
	gyr := r.Mobility.NationalSeries(core.MetricGyration)
	ent := r.Mobility.NationalSeries(core.MetricEntropy)
	gw := weeklyMeanDelta(gyr, stats.Mean(gyr.Values[:7]))
	ew := weeklyMeanDelta(ent, stats.Mean(ent.Values[:7]))

	t := stats.Table{Title: "Fig. 3: Δ% vs week-9 average (weekly means)", ColNames: weekColNames()}
	t.AddRow("gyration", gw)
	t.AddRow("entropy", ew)
	f.Tables = append(f.Tables, t)

	f.checkRange("gyration decrease by week 12 (paper ≈ −20%)", weekValue(gw, 12), -35, -8)
	f.checkRange("gyration drop in weeks 13-14 (paper ≈ −50%)", minOver(gw, 13, 14), -65, -40)
	f.checkTrue("entropy drops less than gyration",
		math.Abs(minOver(ew, 13, 19)) < math.Abs(minOver(gw, 13, 19)),
		fmt.Sprintf("entropy min %.1f vs gyration min %.1f", minOver(ew, 13, 19), minOver(gw, 13, 19)),
		"|entropy| < |gyration|")
	f.checkTrue("slight relaxation after week 14",
		meanOver(gw, 18, 19) > weekValue(gw, 14)+2,
		fmt.Sprintf("w18-19 %.1f vs w14 %.1f", meanOver(gw, 18, 19), weekValue(gw, 14)),
		"weeks 18-19 above week 14")
	f.checkRange("pre-pandemic weeks stay near baseline", math.Abs(weekValue(gw, 10)), 0, 8)
	return f
}

// --- Fig. 4: mobility vs confirmed cases ---------------------------------

// Fig4 reproduces the entropy-vs-cumulative-cases scatter: mobility
// responds to interventions, not to case counts.
func Fig4(r *Results) *Figure {
	f := &Figure{ID: "fig4", Title: "Entropy variation vs cumulative SARS-CoV-2 cases"}
	ent := r.Mobility.NationalSeries(core.MetricEntropy)
	base := stats.Mean(ent.Values[:7])
	delta := core.DeltaSeries(ent, base)
	scen := r.Dataset.Scenario

	t := stats.Table{Title: "Fig. 4: per-day (cases, entropy Δ%)", ColNames: []string{"cases", "entropyΔ%"}}
	var lowCaseDeltas, relaxEnt, relaxCases []float64
	for d := 0; d < timegrid.StudyDays; d++ {
		sd := timegrid.StudyDay(d)
		cases := scen.CumulativeCases(sd)
		t.AddRow(timegrid.DateOfStudyDay(sd).Format("01-02"), []float64{cases, delta.Values[d]})
		if cases < 1000 {
			lowCaseDeltas = append(lowCaseDeltas, delta.Values[d])
		}
		if timegrid.PhaseOf(sd) == timegrid.PhaseRelaxation {
			relaxEnt = append(relaxEnt, delta.Values[d])
			relaxCases = append(relaxCases, cases)
		}
	}
	f.Tables = append(f.Tables, t)

	// Mobility is still near baseline while cases are below 1,000 (the
	// pandemic-declaration threshold of the figure's red line).
	f.checkRange("mean entropy Δ% while cases < 1000", stats.Mean(lowCaseDeltas), -10, 5)
	// Decoupling after lockdown: cases keep rising while mobility is
	// flat or recovering, so the within-phase correlation is not the
	// strong negative a causal link would produce.
	rho, err := stats.Pearson(relaxCases, relaxEnt)
	f.checkTrue("no negative coupling during relaxation phase",
		err == nil && rho > -0.2,
		fmt.Sprintf("pearson %.2f", rho), "> -0.2")
	f.Notes = append(f.Notes,
		"mobility drops only after the declaration/lockdown, not in proportion to case counts",
		fmt.Sprintf("cases at declaration ≈ %.0f; at end of window ≈ %.0f",
			scen.CumulativeCases(timegrid.PandemicDeclared), scen.CumulativeCases(timegrid.StudyDays-1)))
	return f
}

// --- Fig. 5: regional mobility -------------------------------------------

// Fig5 reproduces the five-region mobility comparison, with deltas
// against the *national* week-9 average as in the paper.
func Fig5(r *Results) *Figure {
	f := &Figure{ID: "fig5", Title: "Regional mobility (vs national week-9 average)"}
	natG := r.Mobility.NationalWeek9Baseline(core.MetricGyration)
	natE := r.Mobility.NationalWeek9Baseline(core.MetricEntropy)

	tg := stats.Table{Title: "Fig. 5a: gyration Δ% vs national week 9", ColNames: weekColNames()}
	te := stats.Table{Title: "Fig. 5b: entropy Δ% vs national week 9", ColNames: weekColNames()}
	regionW := map[string][]float64{}
	var refG, refE = map[string]float64{}, map[string]float64{}
	for _, c := range r.Dataset.Model.FocusRegions() {
		g := r.Mobility.CountySeries(c, core.MetricGyration)
		e := r.Mobility.CountySeries(c, core.MetricEntropy)
		gw := weeklyMeanDelta(g, natG)
		ew := weeklyMeanDelta(e, natE)
		tg.AddRow(c.Name, gw)
		te.AddRow(c.Name, ew)
		regionW[c.Name] = gw
		refG[c.Name] = stats.Mean(g.Values[:7])
		refE[c.Name] = stats.Mean(e.Values[:7])
	}
	f.Tables = append(f.Tables, tg, te)

	// London reference levels: gyration below national, entropy above.
	for _, ln := range []string{"Inner London", "Outer London"} {
		f.checkTrue(ln+" baseline gyration below national",
			refG[ln] < natG*0.95,
			fmt.Sprintf("%.2f vs national %.2f km", refG[ln], natG), "< 0.95×national")
		f.checkTrue(ln+" baseline entropy above national",
			refE[ln] > natE*1.02,
			fmt.Sprintf("%.3f vs national %.3f", refE[ln], natE), "> 1.02×national")
	}
	// Every region collapses after the stay-at-home order.
	for name, gw := range regionW {
		f.checkTrue(name+" sharp decrease in weeks 13-14",
			minOver(gw, 13, 14) < refDelta(refG[name], natG)-30,
			fmt.Sprintf("min %.1f vs ref %.1f", minOver(gw, 13, 14), refDelta(refG[name], natG)),
			"≥30 points below own reference")
	}
	// Regional relaxation differences in weeks 18-19.
	relaxOf := func(name string) float64 {
		return meanOver(regionW[name], 18, 19) - weekValue(regionW[name], 14)
	}
	f.checkTrue("London and West Yorkshire relax more than Manchester/West Midlands",
		(relaxOf("Inner London")+relaxOf("West Yorkshire"))/2 >
			(relaxOf("Greater Manchester")+relaxOf("West Midlands"))/2+2,
		fmt.Sprintf("IL/WY %.1f vs GM/WM %.1f", (relaxOf("Inner London")+relaxOf("West Yorkshire"))/2,
			(relaxOf("Greater Manchester")+relaxOf("West Midlands"))/2),
		"larger week-18/19 rebound")
	return f
}

// refDelta converts a region's baseline level into its Δ% versus the
// national baseline (the offset its reference line sits at in Fig. 5).
func refDelta(regional, national float64) float64 {
	return stats.DeltaPercent(regional, national)
}

// --- Fig. 6: geodemographic mobility -------------------------------------

// Fig6 reproduces the per-cluster mobility comparison.
func Fig6(r *Results) *Figure {
	f := &Figure{ID: "fig6", Title: "Geodemographic cluster mobility (vs national week-9 average)"}
	natG := r.Mobility.NationalWeek9Baseline(core.MetricGyration)
	natE := r.Mobility.NationalWeek9Baseline(core.MetricEntropy)

	tg := stats.Table{Title: "Fig. 6a: gyration Δ% vs national week 9", ColNames: weekColNames()}
	te := stats.Table{Title: "Fig. 6b: entropy Δ% vs national week 9", ColNames: weekColNames()}
	type clusterStats struct {
		gw, ew       []float64
		refG, refE   float64
		gDrop, eDrop float64 // relative drop vs own week-9 level
	}
	cs := map[census.Cluster]clusterStats{}
	for _, c := range census.Clusters() {
		g := r.Mobility.ClusterSeries(c, core.MetricGyration)
		e := r.Mobility.ClusterSeries(c, core.MetricEntropy)
		st := clusterStats{
			gw:   weeklyMeanDelta(g, natG),
			ew:   weeklyMeanDelta(e, natE),
			refG: stats.Mean(g.Values[:7]),
			refE: stats.Mean(e.Values[:7]),
		}
		ownGW := weeklyMeanDelta(g, st.refG)
		ownEW := weeklyMeanDelta(e, st.refE)
		st.gDrop = minOver(ownGW, 13, 15)
		st.eDrop = minOver(ownEW, 13, 15)
		tg.AddRow(c.Name(), st.gw)
		te.AddRow(c.Name(), st.ew)
		cs[c] = st
	}
	f.Tables = append(f.Tables, tg, te)

	f.checkTrue("rural baseline gyration above national",
		cs[census.RuralResidents].refG > natG*1.15,
		fmt.Sprintf("%.2f vs %.2f km", cs[census.RuralResidents].refG, natG), "> 1.15×national")
	f.checkTrue("dense urban clusters cover smaller areas",
		cs[census.Cosmopolitans].refG < natG && cs[census.EthnicityCentral].refG < natG,
		fmt.Sprintf("cosmo %.2f, ethC %.2f vs national %.2f", cs[census.Cosmopolitans].refG,
			cs[census.EthnicityCentral].refG, natG), "both < national")
	f.checkTrue("dense urban clusters have higher entropy",
		cs[census.Cosmopolitans].refE > natE && cs[census.EthnicityCentral].refE > natE,
		fmt.Sprintf("cosmo %.3f, ethC %.3f vs national %.3f", cs[census.Cosmopolitans].refE,
			cs[census.EthnicityCentral].refE, natE), "both > national")
	for _, c := range census.Clusters() {
		f.checkRange(c.Name()+" gyration drop vs own baseline (weeks 13-15)", cs[c].gDrop, -85, -38)
	}
	f.checkTrue("Ethnicity Central entropy reduction smaller than its gyration reduction",
		math.Abs(cs[census.EthnicityCentral].eDrop) < math.Abs(cs[census.EthnicityCentral].gDrop),
		fmt.Sprintf("entropy %.1f vs gyration %.1f", cs[census.EthnicityCentral].eDrop,
			cs[census.EthnicityCentral].gDrop), "|entropy| < |gyration|")
	return f
}

// --- Fig. 7: Inner London mobility matrix --------------------------------

// Fig7 reproduces the temporary-relocation analysis of §3.4.
func Fig7(r *Results) *Figure {
	f := &Figure{ID: "fig7", Title: "Mobility matrix: Inner London residents by county"}
	m := r.Matrix
	f.Tables = append(f.Tables, m.Matrix(10))

	home := m.HomePresenceSeries()
	base := stats.Mean(home.Values[:7])
	hw := weeklyMeanDelta(home, base)
	f.checkRange("Inner London residents present at home from week 13 (paper ≈ −10%)",
		meanOver(hw, 13, 19), -18, -6)
	f.checkTrue("decrease is sustained (weeks 13-19 all below −5%)",
		minOver(hw, 13, 19) < -5 && maxOverWeeks(hw, 13, 19) < -5,
		fmt.Sprintf("range [%.1f, %.1f]", minOver(hw, 13, 19), maxOverWeeks(hw, 13, 19)), "all < -5")

	if hamp, ok := r.Dataset.Model.CountyByName("Hampshire"); ok {
		p := m.PresenceSeries(hamp)
		b := stats.Mean(p.Values[:7])
		pw := weeklyMeanDelta(p, b)
		f.checkTrue("sustained relocation into Hampshire during lockdown",
			meanOver(pw, 13, 19) > 100,
			fmt.Sprintf("weeks 13-19 mean %.0f%%", meanOver(pw, 13, 19)), "> +100%")
	}
	if es, ok := r.Dataset.Model.CountyByName("East Sussex"); ok {
		p := m.PresenceSeries(es)
		// 21–22 March are study days 26–27.
		spike := (p.Values[26] + p.Values[27]) / 2
		b := stats.Mean(p.Values[:7])
		f.checkTrue("East Sussex spike on 21-22 March (pre-lockdown weekend)",
			spike > 1.5*b,
			fmt.Sprintf("%.1f vs baseline %.1f", spike, b), "> 1.5×baseline")
	}
	f.Notes = append(f.Notes, fmt.Sprintf("cohort: %d users with detected Inner London homes", m.CohortSize()))
	return f
}

// maxOverWeeks mirrors minOver for maxima.
func maxOverWeeks(vals []float64, from, to timegrid.Week) float64 {
	max := math.Inf(-1)
	for w := from; w <= to; w++ {
		if v := weekValue(vals, w); v > max {
			max = v
		}
	}
	return max
}

// --- Fig. 8: network KPIs, UK + regions ----------------------------------

// Fig8 reproduces the six KPI panels over the UK and the five focus
// regions (all-bearer traffic).
func Fig8(r *Results) *Figure {
	f := &Figure{ID: "fig8", Title: "MNO performance characterization (all data traffic)"}
	kpi := r.KPI
	rows := func(m traffic.Metric) stats.Table {
		t := stats.Table{Title: "Fig. 8: " + m.String() + " (weekly median Δ% vs week-9 median)", ColNames: weekColNames()}
		t.AddRow("UK - all regions", core.WeeklyDeltaSeries(kpi.NationalSeries(m)).Values)
		for _, c := range r.Dataset.Model.FocusRegions() {
			t.AddRow(c.Name, core.WeeklyDeltaSeries(kpi.CountySeries(c, m)).Values)
		}
		return t
	}
	for _, m := range traffic.DataMetrics() {
		f.Tables = append(f.Tables, rows(m))
	}

	uk := func(m traffic.Metric) []float64 {
		return core.WeeklyDeltaSeries(kpi.NationalSeries(m)).Values
	}
	dl, ul := uk(traffic.DLVolume), uk(traffic.ULVolume)
	act, thr, load := uk(traffic.DLActiveUsers), uk(traffic.DLThroughput), uk(traffic.RadioLoad)

	f.checkRange("UK DL volume increase in week 10 (paper +8%)", weekValue(dl, 10), 1, 15)
	f.checkRange("UK DL volume trough (paper −24% in week 17)", minOver(dl, 14, 19), -35, -15)
	f.checkTrue("UL volume far more stable than DL during lockdown",
		math.Abs(meanOver(ul, 14, 19)) < math.Abs(meanOver(dl, 14, 19))/2,
		fmt.Sprintf("UL %.1f vs DL %.1f", meanOver(ul, 14, 19), meanOver(dl, 14, 19)), "|UL| < |DL|/2")
	f.checkRange("UL volume within modest bounds during lockdown", meanOver(ul, 13, 19), -12, 6)
	posRegions, minRegion := regionalULWeek(r, 10)
	f.checkTrue("UL grows in week 10 across regions",
		posRegions >= 4 && minRegion > -3,
		fmt.Sprintf("%d/5 regions positive, min %.1f", posRegions, minRegion),
		"≥4 of 5 positive, none below -3 (small-sample noise allowed)")
	f.checkRange("UK active DL users trough (paper −28.6%)", minOver(act, 14, 19), -40, -18)
	f.checkRange("user DL throughput max drop (paper ≈ −10%)", minOver(thr, 13, 19), -15, -5)
	f.checkRange("radio load trough (paper −15.1% in week 16)", minOver(load, 14, 19), -25, -8)

	inner, _ := r.Dataset.Model.CountyByName("Inner London")
	outer, _ := r.Dataset.Model.CountyByName("Outer London")
	idl := core.WeeklyDeltaSeries(kpi.CountySeries(inner, traffic.DLVolume)).Values
	odl := core.WeeklyDeltaSeries(kpi.CountySeries(outer, traffic.DLVolume)).Values
	iul := core.WeeklyDeltaSeries(kpi.CountySeries(inner, traffic.ULVolume)).Values
	oul := core.WeeklyDeltaSeries(kpi.CountySeries(outer, traffic.ULVolume)).Values
	f.checkTrue("Inner London DL decrease much larger than Outer London (paper −41% vs −15%)",
		minOver(idl, 14, 19) < minOver(odl, 14, 19)-12,
		fmt.Sprintf("inner %.1f vs outer %.1f", minOver(idl, 14, 19), minOver(odl, 14, 19)),
		"≥12 points deeper")
	f.checkTrue("Inner/Outer London UL diverge (paper −22% vs +17% in week 14)",
		weekValue(iul, 13) < weekValue(oul, 13)-15,
		fmt.Sprintf("inner %.1f vs outer %.1f (w13)", weekValue(iul, 13), weekValue(oul, 13)),
		"inner ≥15 points below outer")
	f.checkTrue("Outer London UL positive entering lockdown",
		weekValue(oul, 12) > 0,
		fmt.Sprintf("w12 %.1f", weekValue(oul, 12)), "> 0")
	return f
}

// regionalULWeek returns how many focus regions had positive UL volume
// deltas in the given week, and the smallest regional value.
func regionalULWeek(r *Results, w timegrid.Week) (positive int, min float64) {
	min = math.Inf(1)
	for _, c := range r.Dataset.Model.FocusRegions() {
		vals := core.WeeklyDeltaSeries(r.KPI.CountySeries(c, traffic.ULVolume)).Values
		v := weekValue(vals, w)
		if v > 0 {
			positive++
		}
		if v < min {
			min = v
		}
	}
	return positive, min
}

// --- Fig. 9: voice traffic ------------------------------------------------

// Fig9 reproduces the QCI-1 voice analysis, including the interconnect
// congestion incident.
func Fig9(r *Results) *Figure {
	f := &Figure{ID: "fig9", Title: "4G voice traffic (QCI 1), UK"}
	kpi := r.KPI
	t := stats.Table{Title: "Fig. 9: voice metrics (weekly median Δ% vs week-9 median)", ColNames: weekColNames()}
	series := map[traffic.Metric][]float64{}
	for _, m := range traffic.VoiceMetrics() {
		vals := core.WeeklyDeltaSeries(kpi.NationalSeries(m)).Values
		series[m] = vals
		t.AddRow(m.String(), vals)
	}
	f.Tables = append(f.Tables, t)

	vol, users := series[traffic.VoiceVolume], series[traffic.VoiceUsers]
	dls, uls := series[traffic.VoiceDLLoss], series[traffic.VoiceULLoss]

	f.checkRange("voice volume spike in week 12 (paper +140%)", weekValue(vol, 12), 100, 180)
	f.checkRange("voice volume peak (paper ≈ +150%)", maxOverWeeks(vol, 12, 14), 120, 185)
	f.checkTrue("simultaneous voice users spike with the volume",
		weekValue(users, 12) > 80,
		fmt.Sprintf("w12 %.1f", weekValue(users, 12)), "> +80%")
	f.checkRange("DL packet loss surge in week 10 (paper > +100%)", weekValue(dls, 10), 60, 400)
	f.checkRange("DL packet loss surge in week 11 (paper > +100%)", weekValue(dls, 11), 100, 500)
	f.checkTrue("DL loss reverts below baseline after the interconnect upgrade",
		maxOverWeeks(dls, 13, 19) < 0,
		fmt.Sprintf("weeks 13-19 max %.1f", maxOverWeeks(dls, 13, 19)), "< 0")
	f.checkTrue("UL packet loss decreases during the pandemic period",
		meanOver(uls, 13, 19) < 0,
		fmt.Sprintf("weeks 13-19 mean %.1f", meanOver(uls, 13, 19)), "< 0")
	f.Notes = append(f.Notes,
		"the voice surge exceeded the inter-MNO interconnection capacity in weeks 10-12;",
		"operations response (capacity upgrade on 21 March) restored DL loss below normal values")
	return f
}

// --- Fig. 10: cluster KPIs -------------------------------------------------

// Fig10 reproduces the geodemographic-cluster network analysis.
func Fig10(r *Results) *Figure {
	f := &Figure{ID: "fig10", Title: "Network performance by geodemographic cluster"}
	kpi := r.KPI
	for _, m := range []traffic.Metric{traffic.DLVolume, traffic.ULVolume, traffic.ConnectedUsers, traffic.DLActiveUsers} {
		t := stats.Table{Title: "Fig. 10: " + m.String() + " (weekly median Δ% vs week-9 median)", ColNames: weekColNames()}
		for _, c := range census.Clusters() {
			t.AddRow(c.Name(), core.WeeklyDeltaSeries(kpi.ClusterSeries(c, m)).Values)
		}
		f.Tables = append(f.Tables, t)
	}

	cosmoDL := core.WeeklyDeltaSeries(kpi.ClusterSeries(census.Cosmopolitans, traffic.DLVolume)).Values
	ruralDL := core.WeeklyDeltaSeries(kpi.ClusterSeries(census.RuralResidents, traffic.DLVolume)).Values
	cosmoU := core.WeeklyDeltaSeries(kpi.ClusterSeries(census.Cosmopolitans, traffic.ConnectedUsers)).Values

	f.checkTrue("Cosmopolitan DL volume decreases dramatically after week 13",
		minOver(cosmoDL, 13, 19) < -40,
		fmt.Sprintf("min %.1f", minOver(cosmoDL, 13, 19)), "< -40")
	f.checkRange("Rural DL volume remains largely stable", meanOver(ruralDL, 13, 19), -12, 12)
	f.checkTrue("Cosmopolitan connected users drop sharply (paper up to −50%)",
		minOver(cosmoU, 13, 19) < -30,
		fmt.Sprintf("min %.1f", minOver(cosmoU, 13, 19)), "< -30")

	// Correlation table (paper: +0.973, +0.816, +0.299, −0.466).
	ct := stats.Table{Title: "Fig. 10: correlation between total users and DL volume", ColNames: []string{"pearson"}}
	var cCosmo, cEth, cRural, cSub float64
	for _, c := range census.Clusters() {
		rho := kpi.UsersVolumeCorrelation(c)
		ct.AddRow(c.Name(), []float64{rho})
		switch c {
		case census.Cosmopolitans:
			cCosmo = rho
		case census.EthnicityCentral:
			cEth = rho
		case census.RuralResidents:
			cRural = rho
		case census.Suburbanites:
			cSub = rho
		}
	}
	f.Tables = append(f.Tables, ct)
	f.checkRange("Cosmopolitans users↔volume correlation (paper +0.973)", cCosmo, 0.85, 1.0)
	f.checkRange("Ethnicity Central correlation (paper +0.816)", cEth, 0.6, 1.0)
	f.checkTrue("Rural correlation low (paper +0.299)",
		cRural < cCosmo-0.2 && cRural < cEth && cRural > -0.4,
		fmt.Sprintf("%.3f", cRural), "well below the urban clusters, not strongly negative")
	f.checkRange("Suburbanites correlation negative (paper −0.466)", cSub, -1.0, -0.15)
	return f
}

// --- Fig. 11: London postal districts --------------------------------------

// Fig11 reproduces the Inner-London per-district KPI analysis.
func Fig11(r *Results) *Figure {
	f := &Figure{ID: "fig11", Title: "Network performance: Inner London postal districts"}
	kpi := r.KPI
	inner := r.Dataset.Model.InnerLondon()
	metrics := []traffic.Metric{traffic.DLVolume, traffic.ULVolume, traffic.DLActiveUsers, traffic.ConnectedUsers, traffic.RadioLoad, traffic.DLThroughput}
	perDistrict := map[string]map[traffic.Metric][]float64{}
	for _, m := range metrics {
		t := stats.Table{Title: "Fig. 11: " + m.String() + " (weekly median Δ% vs week-9 median)", ColNames: weekColNames()}
		for _, did := range inner.Districts {
			d := r.Dataset.Model.District(did)
			vals := core.WeeklyDeltaSeries(kpi.DistrictSeries(d, m)).Values
			t.AddRow(d.Code, vals)
			if perDistrict[d.Code] == nil {
				perDistrict[d.Code] = map[traffic.Metric][]float64{}
			}
			perDistrict[d.Code][m] = vals
		}
		f.Tables = append(f.Tables, t)
	}

	ec := perDistrict["EC"][traffic.DLVolume]
	wc := perDistrict["WC"][traffic.DLVolume]
	f.checkTrue("EC district DL collapse (paper > 70% decrease)",
		minOver(ec, 14, 19) < -50,
		fmt.Sprintf("min %.1f", minOver(ec, 14, 19)), "< -50")
	f.checkTrue("WC district DL collapse (paper > 80% decrease)",
		minOver(wc, 14, 19) < -55,
		fmt.Sprintf("min %.1f", minOver(wc, 14, 19)), "< -55")
	f.checkTrue("EC/WC uplink collapses alongside the downlink",
		minOver(perDistrict["EC"][traffic.ULVolume], 14, 19) < -45 &&
			minOver(perDistrict["WC"][traffic.ULVolume], 14, 19) < -45,
		fmt.Sprintf("EC %.1f, WC %.1f", minOver(perDistrict["EC"][traffic.ULVolume], 14, 19),
			minOver(perDistrict["WC"][traffic.ULVolume], 14, 19)), "both < -45")
	// Central districts fall much harder than the residential ones.
	resMean := (minOver(perDistrict["N"][traffic.DLVolume], 14, 19) +
		minOver(perDistrict["SE"][traffic.DLVolume], 14, 19) +
		minOver(perDistrict["SW"][traffic.DLVolume], 14, 19)) / 3
	cenMean := (minOver(ec, 14, 19) + minOver(wc, 14, 19)) / 2
	f.checkTrue("central EC/WC detach from residential districts",
		cenMean < resMean-20,
		fmt.Sprintf("central %.1f vs residential %.1f", cenMean, resMean), "≥20 points deeper")
	f.checkTrue("N district holds up best among Inner London districts (hotspot moves north)",
		minOver(perDistrict["N"][traffic.DLActiveUsers], 10, 14) >
			minOver(perDistrict["EC"][traffic.DLActiveUsers], 10, 14)+15,
		fmt.Sprintf("N %.1f vs EC %.1f", minOver(perDistrict["N"][traffic.DLActiveUsers], 10, 14),
			minOver(perDistrict["EC"][traffic.DLActiveUsers], 10, 14)), "N ≥15 points above EC")
	f.Notes = append(f.Notes,
		"paper also reports N-district DL users *increasing* +10–23% in weeks 10-14; our model keeps N mildest-declining rather than growing (documented deviation, see EXPERIMENTS.md)")
	return f
}

// --- Fig. 12: London geodemographic clusters -------------------------------

// Fig12 reproduces the London-centric cluster analysis.
func Fig12(r *Results) *Figure {
	f := &Figure{ID: "fig12", Title: "London network performance by geodemographic cluster"}
	kpi := r.KPI
	model := r.Dataset.Model
	londonClusters := model.LondonClusters()
	f.checkTrue("exactly three clusters map to Inner London",
		len(londonClusters) == 3,
		fmt.Sprintf("%d clusters", len(londonClusters)), "3")

	// London-only aggregation: median across the Inner London districts
	// belonging to each cluster.
	inner := model.InnerLondon()
	metrics := []traffic.Metric{traffic.DLVolume, traffic.ULVolume, traffic.DLActiveUsers, traffic.DLThroughput}
	clusterVals := map[census.Cluster]map[traffic.Metric][]float64{}
	for _, m := range metrics {
		t := stats.Table{Title: "Fig. 12: " + m.String() + " (London, weekly median Δ% vs week-9 median)", ColNames: weekColNames()}
		for _, cl := range londonClusters {
			// Average the weekly deltas of this cluster's districts.
			var acc []float64
			var n int
			for _, did := range inner.Districts {
				d := model.District(did)
				if d.Cluster != cl {
					continue
				}
				vals := core.WeeklyDeltaSeries(kpi.DistrictSeries(d, m)).Values
				if acc == nil {
					acc = make([]float64, len(vals))
				}
				for i, v := range vals {
					acc[i] += v
				}
				n++
			}
			for i := range acc {
				acc[i] /= float64(n)
			}
			t.AddRow(cl.Name(), acc)
			if clusterVals[cl] == nil {
				clusterVals[cl] = map[traffic.Metric][]float64{}
			}
			clusterVals[cl][m] = acc
		}
		f.Tables = append(f.Tables, t)
	}

	cosmo := clusterVals[census.Cosmopolitans]
	multi := clusterVals[census.MulticulturalMetropolitans]
	f.checkTrue("Cosmopolitan London areas drop sharply in both directions (paper > 50% in week 13)",
		weekValue(cosmo[traffic.DLVolume], 13) < -35 && weekValue(cosmo[traffic.ULVolume], 13) < -30,
		fmt.Sprintf("DL %.1f, UL %.1f (w13)", weekValue(cosmo[traffic.DLVolume], 13),
			weekValue(cosmo[traffic.ULVolume], 13)), "both strongly negative")
	f.checkTrue("Multicultural areas hold up far better than Cosmopolitan areas",
		weekValue(multi[traffic.ULVolume], 13) > weekValue(cosmo[traffic.ULVolume], 13)+25,
		fmt.Sprintf("multi %.1f vs cosmo %.1f (w13 UL)", weekValue(multi[traffic.ULVolume], 13),
			weekValue(cosmo[traffic.ULVolume], 13)), "≥25 points above")
	f.checkTrue("throughput trends are common across London clusters",
		math.Abs(minOver(cosmo[traffic.DLThroughput], 13, 19)-minOver(multi[traffic.DLThroughput], 13, 19)) < 6,
		fmt.Sprintf("cosmo %.1f vs multi %.1f", minOver(cosmo[traffic.DLThroughput], 13, 19),
			minOver(multi[traffic.DLThroughput], 13, 19)), "within 6 points")
	return f
}

// AllFigures runs every figure against one set of results.
func AllFigures(r *Results) []*Figure {
	return []*Figure{
		Table1(),
		Fig2(r), Fig3(r), Fig4(r), Fig5(r), Fig6(r), Fig7(r),
		Fig8(r), Fig9(r), Fig10(r), Fig11(r), Fig12(r),
	}
}
