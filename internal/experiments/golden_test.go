package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stream"
)

// -update regenerates the golden headline fixtures under testdata/.
var update = flag.Bool("update", false, "rewrite golden headline fixtures")

// goldenConfig is the committed fixture scale: small enough to run the
// whole registry in one test, large enough that every headline (KPI and
// Inner-London cohort included) has data.
func goldenConfig() Config {
	return Config{Seed: 42, TargetUsers: 500, PopPerTower: 40_000, TopN: core.DefaultTopN}
}

// goldenFixture is the serialized form of one scenario's end-to-end
// headline output.
type goldenFixture struct {
	Scenario  string     `json:"scenario"`
	Users     int        `json:"users"`
	Seed      uint64     `json:"seed"`
	Headlines []Headline `json:"headlines"`
}

// TestGoldenHeadlines is the end-to-end regression gate: the full
// pipeline (world build, shared February home detection, streaming
// study pass, headline extraction) at 500 users must reproduce the
// committed fixture for every registry scenario, bit for bit — JSON
// encodes float64 with shortest round-trip precision, so any drift in
// any simulated value that reaches a headline fails the comparison.
// Run `go test ./internal/experiments -run GoldenHeadlines -update`
// after an intentional behaviour change.
func TestGoldenHeadlines(t *testing.T) {
	cfg := goldenConfig()
	var scens []SweepScenario
	for _, name := range scenario.Names() {
		scens = append(scens, *loadScenario(t, name))
	}
	w := NewWorld(cfg)
	runs := mustSweep(t, w, cfg, stream.Config{Workers: 1}, scens)

	for _, run := range runs {
		run := run
		t.Run(run.Name, func(t *testing.T) {
			fix := goldenFixture{
				Scenario:  run.Name,
				Users:     cfg.TargetUsers,
				Seed:      cfg.Seed,
				Headlines: run.Headlines,
			}
			data, err := json.MarshalIndent(fix, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, '\n')
			path := filepath.Join("testdata", "headlines-"+run.Name+".json")
			if *update {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/experiments -run GoldenHeadlines -update` to regenerate)", err)
			}
			if string(data) != string(want) {
				t.Errorf("headlines of %s drifted from the golden fixture:\n got: %s\nwant: %s\n(run with -update if the change is intentional)",
					run.Name, data, want)
			}
		})
	}
}
