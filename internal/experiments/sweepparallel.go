package experiments

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/traffic"
)

// sweepMetrics are the sweep runner's handles, resolved once per sweep
// from scfg.Metrics (nil when metrics are off — no clock reads then).
type sweepMetrics struct {
	runs    *obs.Counter   // sweep.runs: scenario runs completed
	runNs   *obs.Histogram // sweep.run_ns: per-run wall time, one shard per worker
	queueNs *obs.Histogram // sweep.queue_wait_ns: how long each scenario queued behind the workers
	builds  *obs.Gauge     // sweep.world_builds: process-wide World builds (should stay at 1 per sweep)

	// Copy-on-divergence counters (SharePrefix sweeps only).
	prefixSaved *obs.Counter // sweep.prefix_days_saved: study days skipped by forking checkpoints
	forks       *obs.Counter // sweep.checkpoint_forks: runs started from a forked checkpoint
}

func newSweepMetrics(r *obs.Registry, parallel int) *sweepMetrics {
	if r == nil {
		return nil
	}
	return &sweepMetrics{
		runs:        r.Counter("sweep.runs"),
		runNs:       r.Histogram("sweep.run_ns", parallel),
		queueNs:     r.Histogram("sweep.queue_wait_ns", 1),
		builds:      r.Gauge("sweep.world_builds"),
		prefixSaved: r.Counter("sweep.prefix_days_saved"),
		forks:       r.Counter("sweep.checkpoint_forks"),
	}
}

// sweepWorker is the reusable per-worker state of a parallel sweep: a
// shared day-buffer recycle pool, the resettable sharded consumer
// wrappers and the rebindable KPI engine. Everything in it is scratch —
// reused allocations whose contents are rebuilt every run — so carrying
// it across scenario runs changes nothing about the results, only the
// allocation profile: after a worker's first scenario, later scenarios
// run on warm buffers, mergers and tower accumulators.
//
// A nil *sweepWorker is valid and means "no reuse": every accessor then
// falls back to fresh construction, which is how the single-run
// streaming path uses runStreamingStudyWith. A worker whose run failed
// must be discarded — its reused state may be partially consumed by the
// aborted run — and the sweep runners do, rebuilding a fresh worker for
// the next scenario.
type sweepWorker struct {
	pool *stream.BufferPool
	mob  *stream.Mobility
	mat  *stream.Matrix
	eng  *traffic.Engine
}

// newSweepWorker sizes the worker's buffer pool to one run's in-flight
// window so the steady state never falls back to allocation. The pool is
// instrumented here (not by the sources that later share it): after the
// first scenario warms it, every later draw should be a stream.pool hit.
func newSweepWorker(scfg stream.Config) *sweepWorker {
	scfg = scfg.WithDefaults()
	return &sweepWorker{pool: stream.NewBufferPool(scfg.Workers + scfg.Buffer).Instrument(scfg.Metrics)}
}

// bufferPool returns the worker's shared pool, or nil (private pool per
// source) without a worker.
func (ws *sweepWorker) bufferPool() *stream.BufferPool {
	if ws == nil {
		return nil
	}
	return ws.pool
}

// mobility returns a sharded mobility stage bound to a, reusing the
// worker's wrapper when it has one.
func (ws *sweepWorker) mobility(a *core.MobilityAnalyzer, shards int) *stream.Mobility {
	if ws == nil {
		return stream.NewMobility(a, shards)
	}
	if ws.mob == nil {
		ws.mob = stream.NewMobility(a, shards)
		return ws.mob
	}
	return ws.mob.Reset(a)
}

// matrix returns a sharded matrix stage bound to m, reusing the
// worker's wrapper when it has one.
func (ws *sweepWorker) matrix(m *core.MobilityMatrix, shards int) *stream.Matrix {
	if ws == nil {
		return stream.NewMatrix(m, shards)
	}
	if ws.mat == nil {
		ws.mat = stream.NewMatrix(m, shards)
		return ws.mat
	}
	return ws.mat.Reset(m)
}

// instantiate binds a scenario stack for the worker's next run, reusing
// (rebinding) the worker's traffic engine when it has one.
func (ws *sweepWorker) instantiate(w *World, cfg Config) *Dataset {
	if ws == nil {
		return w.Instantiate(cfg)
	}
	d := w.instantiate(cfg, ws.eng)
	ws.eng = d.Engine
	return d
}

// SweepOptions tunes RunSweepParallelOpts beyond the worker count.
type SweepOptions struct {
	// Parallel is the worker count; <= 1 runs the serial path (with the
	// same per-run isolation and OnRun hook).
	Parallel int
	// OnRun, when non-nil, observes every finished run — including
	// failed ones — as soon as its slot completes, before the sweep
	// returns. Calls are serialized by the runner (no caller locking)
	// but arrive in completion order, not input order; i is the run's
	// index in scens. cmd/mnosweep journals completed runs through this
	// hook so an interrupted sweep can resume.
	OnRun func(i int, run SweepRun)
	// SharePrefix switches the sweep to the copy-on-divergence executor
	// (runSweepShared): scenarios are grouped by divergence day
	// (pandemic.Scenario.DivergenceFrom), each shared prefix is
	// simulated once, checkpointed at the fork day and forked per
	// scenario. Results are bit-identical to the unshared path; runs
	// gain ForkedFrom/PrefixDays provenance. Multi-scenario sweeps only
	// — a single scenario has no prefix to share.
	SharePrefix bool
}

// RunSweepParallel is RunSweep executing the scenario stacks
// concurrently: up to parallel workers claim scenarios from the input
// order, each running the full streaming study over the one shared
// immutable World. Results land in index-addressed slots, so the output
// is re-sequenced to the input order deterministically — and because
// every scenario run is itself deterministic in (world, seed, scenario)
// and shares only immutable state (the World, the cached February
// homes), the output is bit-identical to serial RunSweep at any worker
// count (asserted by TestParallelSweepMatchesSerial under -race).
//
// Each worker owns a sweepWorker: a day-buffer pool, resettable sharded
// consumer stages and a rebindable KPI engine threaded through its
// consecutive runs, so the per-scenario steady state stays at the PR 2
// zero-allocation profile instead of paying a fresh warm-up per
// scenario. This is the capacity–computation trade of the sweep: bounded
// per-worker memory (one in-flight window of day buffers each) buys
// concurrent recomputation over the world we refuse to rebuild.
//
// Failure semantics mirror RunSweep: a run that panics or errors fails
// alone (its worker discards its reused state and rebuilds), the other
// N-1 complete, and the joined per-run failures come back as the error.
// Cancelling ctx stops workers claiming new scenarios; every unstarted
// slot gets Err = ctx.Err() and in-flight runs drain their pipelines
// before returning.
//
// One observable difference from the serial runner: the returned
// Results carry no live traffic engine (Results.Dataset.Engine is nil)
// — engines are per-worker scratch rebound from scenario to scenario,
// so exporting one would alias every run of a worker to its last
// scenario. The analyzers (Results.KPI included) are complete either
// way; callers that want to replay KPI generation for one run should
// Instantiate a fresh stack for that scenario.
//
// parallel <= 1 (or a single scenario) degrades to the serial runner.
// Note the total goroutine budget multiplies: each of the parallel
// scenario runs drives its own streaming engine with scfg.Workers
// workers, so sweeps that set parallel > 1 usually want scfg.Workers =
// 1 (see PERFORMANCE.md, "Parallel sweeps").
func RunSweepParallel(ctx context.Context, w *World, cfg Config, scfg stream.Config, scens []SweepScenario, parallel int) ([]SweepRun, error) {
	return RunSweepParallelOpts(ctx, w, cfg, scfg, scens, SweepOptions{Parallel: parallel})
}

// RunSweepParallelOpts is RunSweepParallel with the full option set
// (per-run completion hook for journaling).
func RunSweepParallelOpts(ctx context.Context, w *World, cfg Config, scfg stream.Config, scens []SweepScenario, opt SweepOptions) ([]SweepRun, error) {
	parallel := opt.Parallel
	if parallel > len(scens) {
		parallel = len(scens)
	}

	var onRunMu sync.Mutex
	notify := func(i int, run SweepRun) {
		if opt.OnRun == nil {
			return
		}
		onRunMu.Lock()
		defer onRunMu.Unlock()
		opt.OnRun(i, run)
	}

	if opt.SharePrefix && len(scens) > 1 {
		return runSweepShared(ctx, w, cfg, scfg, scens, opt, notify)
	}

	if parallel <= 1 || len(scens) <= 1 {
		homes := w.Homes()
		out := make([]SweepRun, len(scens))
		var ws *sweepWorker
		for i, sc := range scens {
			if ws == nil {
				ws = newSweepWorker(scfg)
			}
			out[i] = runScenario(ctx, w, cfg, scfg, sc, i, homes, ws)
			if out[i].Err != nil {
				ws = nil // reused state may be poisoned; rebuild
			} else if out[i].Results != nil {
				out[i].Results.Dataset.Engine = nil
			}
			notify(i, out[i])
		}
		return out, sweepErr(out)
	}

	// The February pass is world-cached and scenario-invariant; force it
	// before the fan-out so no worker repeats it (sync.Once would serialize
	// them against each other anyway — this just makes the cost visible in
	// one place).
	homes := w.Homes()

	m := newSweepMetrics(scfg.Metrics, parallel)
	var fanOut time.Time
	if m != nil {
		fanOut = time.Now()
	}

	out := make([]SweepRun, len(scens))
	var next atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parallel; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ws := newSweepWorker(scfg)
			var runSh *obs.HistShard
			if m != nil {
				runSh = m.runNs.Shard(p)
			}
			for {
				i := int(next.Add(1) - 1)
				if i >= len(scens) {
					return
				}
				var t0 time.Time
				if m != nil {
					// Queue wait: how long this scenario sat behind the
					// worker fleet before being claimed.
					t0 = time.Now()
					m.queueNs.Observe(int64(t0.Sub(fanOut)))
				}
				r := runScenario(ctx, w, cfg, scfg, scens[i], i, homes, ws)
				if m != nil {
					runSh.Observe(int64(time.Since(t0)))
					m.runs.Inc()
				}
				if r.Err != nil {
					// The aborted run may have left the worker's reused
					// buffers, mergers or engine partially consumed;
					// never thread them into the next scenario.
					ws = newSweepWorker(scfg)
				} else {
					// Detach the worker's shared engine from the stored
					// stack: it is about to be rebound to the worker's next
					// scenario, so leaving it on the Dataset would hand
					// every run an engine bound to whichever scenario its
					// worker finished last (and share one scratch across
					// runs). Callers replaying KPI from a sweep result
					// should Instantiate a fresh stack for that run.
					r.Results.Dataset.Engine = nil
				}
				out[i] = r
				notify(i, r)
			}
		}(p)
	}
	wg.Wait()
	if m != nil {
		m.builds.Set(WorldBuildCount())
	}
	return out, sweepErr(out)
}
