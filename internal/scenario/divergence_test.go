package scenario

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

// divergenceSpec adapts randomSpec for DivergenceDay properties: each
// present curve's first anchor is pinned to the baseline value 1.0, so
// the curve departs from baseline at a known interior day. (Raw
// randomCurve values are never exactly 1, and a curve clamping to a
// non-baseline value before its first anchor diverges at day 0 — every
// property below would degenerate.)
func divergenceSpec(rnd *rand.Rand) Spec {
	sp := randomSpec(rnd)
	for _, c := range specCurves(sp) {
		if len(c) > 0 {
			c[0].Value = 1.0
		}
	}
	return sp
}

// specCurves lists the five factor curves of a spec.
func specCurves(sp Spec) []Curve {
	return []Curve{sp.Activity, sp.Voice, sp.Data, sp.HomeCellular, sp.Throttle}
}

// expectedDivergence recomputes DivergenceDay from first principles for
// a divergenceSpec-shaped spec: the curve component is the day of each
// curve's leading baseline anchor (the last day it is still pinned at
// 1.0), capped by the calendar-pinned components.
func expectedDivergence(sp Spec, curveShift float64) float64 {
	div := pandemic.NullDivergenceDay()
	if sp.Relocation {
		div = math.Min(div, pandemic.RelocationDivergenceDay())
	}
	if len(sp.RelaxBonus) > 0 {
		div = math.Min(div, pandemic.RelaxDivergenceDay())
	}
	for _, c := range specCurves(sp) {
		if len(c) > 0 {
			div = math.Min(div, c[0].Day+curveShift)
		}
	}
	return div
}

// TestDivergenceDayShiftProperty asserts, over randomized specs, that
// DivergenceDay matches the first-principles expectation and that
// Shifted(sp, delta) moves the curve component of the divergence by
// exactly delta — while the calendar-pinned caps stay put (Shifted's
// documented contract: the spec's own timeline moves, the calendar does
// not). Anchor days and deltas live on the quarter-day grid, so the
// expected shifted day is one exact float addition and the comparison
// is bitwise.
func TestDivergenceDayShiftProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260807))
	for iter := 0; iter < 300; iter++ {
		sp := divergenceSpec(rnd)
		if got, want := sp.DivergenceDay(), expectedDivergence(sp, 0); got != want {
			t.Fatalf("iter %d: DivergenceDay() = %v, want %v (spec %+v)", iter, got, want, sp)
		}
		delta := (0.25 + rnd.Float64()*(maxShift-0.25)) * float64(1-2*rnd.Intn(2))
		delta = math.Round(delta*4) / 4
		shifted := Shifted(sp, delta)
		if got, want := shifted.DivergenceDay(), expectedDivergence(sp, delta); got != want {
			t.Fatalf("iter %d: DivergenceDay(Shifted(sp, %v)) = %v, want %v", iter, delta, got, want)
		}
	}
	if (Spec{Null: true}).DivergenceDay() != math.Inf(1) {
		t.Fatal("null spec must never diverge from itself (want +Inf)")
	}
}

// The shared fixture of the simulation property test: a small world and
// the cached no-pandemic traces of the days any randomized spec can
// share with the null baseline (divergence is capped by the week-11
// weekend, so only days strictly below pandemic.NullDivergenceDay()
// ever need comparing).
var (
	divOnce sync.Once
	divPop  *popsim.Population
	divNull [][]mobsim.DayTrace
)

func divFixture(t *testing.T) (*popsim.Population, [][]mobsim.DayTrace) {
	t.Helper()
	divOnce.Do(func() {
		m := census.BuildUK(9)
		topo := radio.Build(m, radio.DefaultConfig(), 9)
		divPop = popsim.Synthesize(m, topo, popsim.Config{Seed: 9, TargetUsers: 200})
		sim := mobsim.New(divPop, pandemic.NoPandemic(), 9)
		buf := mobsim.NewDayBuffer()
		days := int(pandemic.NullDivergenceDay())
		divNull = make([][]mobsim.DayTrace, days)
		for d := 0; d < days; d++ {
			divNull[d] = copyTraces(sim.DayInto(buf, timegrid.StudyDay(d).ToSimDay()))
		}
	})
	return divPop, divNull
}

func copyTraces(traces []mobsim.DayTrace) []mobsim.DayTrace {
	out := make([]mobsim.DayTrace, len(traces))
	for i, tr := range traces {
		out[i] = mobsim.DayTrace{User: tr.User, Visits: append([]mobsim.Visit(nil), tr.Visits...)}
	}
	return out
}

func sameTraces(a, b []mobsim.DayTrace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].User != b[i].User || len(a[i].Visits) != len(b[i].Visits) {
			return false
		}
		for j := range a[i].Visits {
			if a[i].Visits[j] != b[i].Visits[j] {
				return false
			}
		}
	}
	return true
}

// TestDivergenceDayPrefixBitIdentical is the conservative-contract
// gate over randomized specs: for every study day strictly below
// DivergenceDay(), the compiled scenario must be indistinguishable from
// the no-pandemic baseline — mobility traces bit-identical (covering
// the regional-activity, weekend-trip, exodus and relocation consults)
// and every per-day factor the traffic engine samples bitwise equal.
func TestDivergenceDayPrefixBitIdentical(t *testing.T) {
	pop, null := divFixture(t)
	nullScen := pandemic.NoPandemic()
	rnd := rand.New(rand.NewSource(20260807))
	buf := mobsim.NewDayBuffer()
	for iter := 0; iter < 300; iter++ {
		sp := divergenceSpec(rnd)
		scen, err := sp.Scenario()
		if err != nil {
			t.Fatalf("iter %d: compiling random spec: %v", iter, err)
		}
		div := sp.DivergenceDay()
		sim := mobsim.New(pop, scen, 9)
		for d := 0; float64(d) < div && d < len(null); d++ {
			sd := timegrid.StudyDay(d)
			if scen.Activity(sd) != nullScen.Activity(sd) ||
				scen.VoiceFactor(sd) != nullScen.VoiceFactor(sd) ||
				scen.DataFactor(sd) != nullScen.DataFactor(sd) ||
				scen.HomeCellularFactor(sd) != nullScen.HomeCellularFactor(sd) ||
				scen.ThrottleFactor(sd) != nullScen.ThrottleFactor(sd) {
				t.Fatalf("iter %d: a traffic factor differs from null on day %d, before DivergenceDay %v", iter, d, div)
			}
			if !sameTraces(sim.DayInto(buf, sd.ToSimDay()), null[d]) {
				t.Fatalf("iter %d: mobility traces differ from null on day %d, before DivergenceDay %v", iter, d, div)
			}
		}
	}
}

// TestRegistryDivergencePinned pins the pairwise integer-day divergence
// of the built-in scenarios — the fork tree of a registry sweep (see
// PERFORMANCE.md). A change here silently reshapes how much work
// copy-on-divergence sweeps share, so it must be deliberate.
func TestRegistryDivergencePinned(t *testing.T) {
	get := func(name string) *pandemic.Scenario {
		s, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		a, b string
		want float64
	}{
		{DefaultCovid, NoPandemic, 1},
		{LateLockdown, NoPandemic, 15},
		{EarlyLockdown, DefaultCovid, 0},
		{EarlyLockdown, NoPandemic, 0},
		{SecondWave, DefaultCovid, 42},
		{DeepOffload, DefaultCovid, 1},
		{VoiceSurge, DefaultCovid, 7},
		{LateLockdown, DefaultCovid, 1},
	}
	for _, c := range cases {
		a, b := get(c.a), get(c.b)
		if got := a.DivergenceFrom(b); got != c.want {
			t.Errorf("DivergenceFrom(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.DivergenceFrom(a); got != c.want {
			t.Errorf("DivergenceFrom(%s, %s) = %v, want %v (asymmetric)", c.b, c.a, got, c.want)
		}
	}
	for _, name := range Names() {
		s := get(name)
		if got := s.DivergenceFrom(s); !math.IsInf(got, 1) {
			t.Errorf("DivergenceFrom(%s, itself) = %v, want +Inf", name, got)
		}
	}
}
