package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/pandemic"
)

// Built-in registry names.
const (
	DefaultCovid  = "default-covid"
	NoPandemic    = "no-pandemic"
	EarlyLockdown = "early-lockdown"
	LateLockdown  = "late-lockdown"
	SecondWave    = "second-wave"
	DeepOffload   = "deep-offload"
	VoiceSurge    = "voice-surge"
)

var (
	registryOnce sync.Once
	registry     map[string]Spec
	registryOrd  []string
)

// buildRegistry constructs the built-in specs once. Every entry derives
// from the default-covid snapshot, so the registry stays consistent
// with pandemic.Default by construction.
func buildRegistry() {
	base := FromScenario(DefaultCovid,
		"the calibrated UK COVID-19 timeline of the paper; identical to pandemic.Default",
		pandemic.Default())

	early := Shifted(base, -14)
	early.Name = EarlyLockdown
	early.Description = "the behavioural curves (activity, demand, offload, cases) land two weeks earlier against the same calendar"

	late := Shifted(base, 14)
	late.Name = LateLockdown
	late.Description = "the behavioural curves land two weeks later; the unchecked spread grows a larger case wave"
	late.CaseCurve = &CaseCurve{Plateau: 420_000, Growth: late.CaseCurve.Growth, MidDay: late.CaseCurve.MidDay}

	second := base
	second.Name = SecondWave
	second.Description = "restrictions ease from week 15, mobility rebounds, and a renewed wave forces a second clampdown by week 19"
	second.Activity = replaceFrom(base.Activity, 48, Curve{
		{Day: 48, Value: 0.50},
		{Day: 55, Value: 0.68},
		{Day: 60, Value: 0.80},
		{Day: 66, Value: 0.60},
		{Day: 71, Value: 0.46},
		{Day: 76, Value: 0.42},
	})
	second.Voice = replaceFrom(base.Voice, 55, Curve{
		{Day: 55, Value: 2.00},
		{Day: 62, Value: 2.10},
		{Day: 69, Value: 2.35},
		{Day: 76, Value: 2.30},
	})

	offload := base
	offload.Name = DeepOffload
	offload.Description = "confinement pushes far more at-home data onto residential WiFi (deeper cellular offload)"
	offload.HomeCellular = Curve{
		{Day: 0, Value: 1.00},
		{Day: 21, Value: 0.84},
		{Day: 28, Value: 0.62},
		{Day: 41, Value: 0.55},
		{Day: 76, Value: 0.58},
	}

	voice := base
	voice.Name = VoiceSurge
	voice.Description = "the conversational voice comeback overshoots: demand peaks above 3× instead of 2.5×"
	voice.Voice = Curve{
		{Day: 0, Value: 1.00},
		{Day: 6, Value: 1.05},
		{Day: 8, Value: 1.72},
		{Day: 13, Value: 2.10},
		{Day: 20, Value: 2.60},
		{Day: 21, Value: 2.80},
		{Day: 25, Value: 3.00},
		{Day: 30, Value: 3.20},
		{Day: 41, Value: 2.80},
		{Day: 55, Value: 2.40},
		{Day: 76, Value: 2.00},
	}

	null := Spec{
		Name:        NoPandemic,
		Description: "the null scenario: no pandemic ever happens, every factor stays at baseline",
		Null:        true,
	}

	registry = map[string]Spec{}
	for _, sp := range []Spec{base, null, early, late, second, offload, voice} {
		registry[sp.Name] = sp
		registryOrd = append(registryOrd, sp.Name)
	}
}

// replaceFrom drops the curve's anchors at or after day `from` and
// appends the replacement tail.
func replaceFrom(c Curve, from float64, tail Curve) Curve {
	var out Curve
	for _, p := range c {
		if p.Day >= from {
			break
		}
		out = append(out, p)
	}
	return append(out, tail...)
}

// Names returns the built-in scenario names in registry order.
func Names() []string {
	registryOnce.Do(buildRegistry)
	return append([]string(nil), registryOrd...)
}

// Get returns a copy of the named built-in spec.
func Get(name string) (Spec, bool) {
	registryOnce.Do(buildRegistry)
	sp, ok := registry[name]
	if !ok {
		return Spec{}, false
	}
	return clone(sp), true
}

// List returns copies of every built-in spec, in registry order.
func List() []Spec {
	registryOnce.Do(buildRegistry)
	out := make([]Spec, 0, len(registryOrd))
	for _, name := range registryOrd {
		out = append(out, clone(registry[name]))
	}
	return out
}

// clone deep-copies a spec so registry entries cannot be mutated
// through the copies Get/List hand out.
func clone(sp Spec) Spec {
	sp.Activity = append(Curve(nil), sp.Activity...)
	sp.Voice = append(Curve(nil), sp.Voice...)
	sp.Data = append(Curve(nil), sp.Data...)
	sp.HomeCellular = append(Curve(nil), sp.HomeCellular...)
	sp.Throttle = append(Curve(nil), sp.Throttle...)
	if sp.RelaxBonus != nil {
		m := make(map[string]float64, len(sp.RelaxBonus))
		for k, v := range sp.RelaxBonus {
			m[k] = v
		}
		sp.RelaxBonus = m
	}
	if sp.CaseCurve != nil {
		cc := *sp.CaseCurve
		sp.CaseCurve = &cc
	}
	return sp
}

// LoadSpec resolves a -scenario flag value: a registry name, or a path
// to a JSON spec file (anything containing a path separator or ending
// in .json).
func LoadSpec(nameOrPath string) (Spec, error) {
	if strings.ContainsAny(nameOrPath, `/\`) || strings.HasSuffix(nameOrPath, ".json") {
		return ReadFile(nameOrPath)
	}
	if sp, ok := Get(nameOrPath); ok {
		return sp, nil
	}
	names := Names()
	sort.Strings(names)
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q (built-ins: %s; or pass a .json spec file)",
		nameOrPath, strings.Join(names, ", "))
}

// Load resolves a registry name or spec file straight to a compiled
// pandemic.Scenario.
func Load(nameOrPath string) (*pandemic.Scenario, error) {
	sp, err := LoadSpec(nameOrPath)
	if err != nil {
		return nil, err
	}
	return sp.Scenario()
}
