// Package scenario provides a declarative, JSON-serializable scenario
// format on top of pandemic.Scenario, plus a registry of named
// built-ins. A Spec holds the full definition of a behavioural scenario
// — anchor curves, regional relaxation bonuses, case-curve parameters
// and the relocation toggle — and round-trips losslessly:
//
//	spec → JSON → Spec → pandemic.Scenario
//
// reproduces bit-identical daily factors (the JSON encoder emits
// shortest round-trip float representations, and the pandemic.Builder
// preserves anchors verbatim). The registry's "default-covid" entry is
// the calibrated timeline of the paper: loading it from JSON produces
// results bit-identical to pandemic.Default().
//
// Specs are how the cmd layer names scenarios (-scenario flag, sweep
// sets): a flag value resolves to either a registry name or a .json
// file written in this schema (see SCENARIOS.md).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/pandemic"
	"repro/internal/timegrid"
)

// Point is one (study day, value) control point of a factor curve. Day
// may be fractional; 0 is the first study day (24 Feb 2020, week 9).
type Point struct {
	Day   float64 `json:"day"`
	Value float64 `json:"value"`
}

// Curve is a piecewise-linear factor curve over the study window,
// clamped outside its anchor range. An empty curve is flat at 1.0.
type Curve []Point

// Eval evaluates the curve at a study day, with the same semantics as
// the pandemic package's interpolation (clamp outside the anchors).
func (c Curve) Eval(day float64) float64 {
	if len(c) == 0 {
		return 1
	}
	if day <= c[0].Day {
		return c[0].Value
	}
	last := c[len(c)-1]
	if day >= last.Day {
		return last.Value
	}
	for i := 1; i < len(c); i++ {
		if day <= c[i].Day {
			a, b := c[i-1], c[i]
			f := (day - a.Day) / (b.Day - a.Day)
			return a.Value + f*(b.Value-a.Value)
		}
	}
	return last.Value
}

// CaseCurve parameterizes the logistic cumulative confirmed-case curve.
type CaseCurve struct {
	Plateau float64 `json:"plateau"`
	Growth  float64 `json:"growth"`
	MidDay  float64 `json:"mid_day"`
}

// Spec is the declarative form of a behavioural scenario.
type Spec struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`

	// Null marks the no-pandemic scenario: every factor pinned at
	// baseline, no relocation, no weekend-pattern changes. All other
	// behavioural fields must be empty.
	Null bool `json:"null,omitempty"`

	Activity     Curve `json:"activity,omitempty"`
	Voice        Curve `json:"voice,omitempty"`
	Data         Curve `json:"data,omitempty"`
	HomeCellular Curve `json:"home_cellular,omitempty"`
	Throttle     Curve `json:"throttle,omitempty"`

	// RelaxBonus grants counties a late-window (week 18+) activity
	// bonus, keyed by county name.
	RelaxBonus map[string]float64 `json:"relax_bonus,omitempty"`

	CaseCurve *CaseCurve `json:"case_curve,omitempty"`

	// Relocation toggles the Inner-London style seasonal-resident
	// relocation wave.
	Relocation bool `json:"relocation,omitempty"`
}

// Scenario compiles the spec into a pandemic.Scenario through the
// Builder, inheriting its validation (anchor windows, non-negative
// values, bonus bounds).
func (sp Spec) Scenario() (*pandemic.Scenario, error) {
	sn := pandemic.Snapshot{
		Null:         sp.Null,
		Activity:     points(sp.Activity),
		Voice:        points(sp.Voice),
		Data:         points(sp.Data),
		HomeCellular: points(sp.HomeCellular),
		Throttle:     points(sp.Throttle),
		RelaxBonus:   sp.RelaxBonus,
		Relocation:   sp.Relocation,
	}
	if sp.CaseCurve != nil {
		sn.CasePlateau = sp.CaseCurve.Plateau
		sn.CaseGrowth = sp.CaseCurve.Growth
		sn.CaseMidDay = sp.CaseCurve.MidDay
	}
	s, err := pandemic.FromSnapshot(sn)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sp.Name, err)
	}
	return s, nil
}

// FromScenario snapshots a scenario into a named spec. The result
// round-trips: FromScenario(...).Scenario() reproduces bit-identical
// daily factors.
func FromScenario(name, description string, s *pandemic.Scenario) Spec {
	sn := s.Snapshot()
	sp := Spec{
		Name:         name,
		Description:  description,
		Null:         sn.Null,
		Activity:     curve(sn.Activity),
		Voice:        curve(sn.Voice),
		Data:         curve(sn.Data),
		HomeCellular: curve(sn.HomeCellular),
		Throttle:     curve(sn.Throttle),
		RelaxBonus:   sn.RelaxBonus,
		Relocation:   sn.Relocation,
	}
	if !sn.Null {
		sp.CaseCurve = &CaseCurve{Plateau: sn.CasePlateau, Growth: sn.CaseGrowth, MidDay: sn.CaseMidDay}
	}
	return sp
}

func points(c Curve) []pandemic.AnchorPoint {
	if len(c) == 0 {
		return nil
	}
	out := make([]pandemic.AnchorPoint, len(c))
	for i, p := range c {
		out[i] = pandemic.AnchorPoint{Day: p.Day, Value: p.Value}
	}
	return out
}

func curve(pts []pandemic.AnchorPoint) Curve {
	if len(pts) == 0 {
		return nil
	}
	out := make(Curve, len(pts))
	for i, p := range pts {
		out[i] = Point{Day: p.Day, Value: p.Value}
	}
	return out
}

// MarshalIndentJSON renders the spec as stable, human-editable JSON
// (the golden-file and -scenario file format).
func (sp Spec) MarshalIndentJSON() ([]byte, error) {
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse decodes a JSON spec, rejecting unknown fields so typos in
// hand-written files fail loudly instead of silently flattening a
// curve.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if sp.Null && (len(sp.Activity)+len(sp.Voice)+len(sp.Data)+len(sp.HomeCellular)+len(sp.Throttle)+len(sp.RelaxBonus) > 0 || sp.CaseCurve != nil || sp.Relocation) {
		return Spec{}, fmt.Errorf("scenario %q: null scenarios must not define curves, bonuses, a case curve or relocation", sp.Name)
	}
	return sp, nil
}

// ReadFile loads a spec from a JSON file.
func ReadFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	sp, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}

// lastStudyDay is the final evaluable day of the study window.
const lastStudyDay = float64(timegrid.StudyDays - 1)

// Shifted returns a copy of the spec with its anchor curves and
// case-curve midpoint moved by delta days (negative = earlier, positive
// = later). Curves are resampled at the window edges — the shifted
// curve evaluates to the original curve at (day − delta), clamped into
// the study window.
//
// Only the spec's own timeline shifts: the calendar-pinned behavioural
// windows hard-coded in the pandemic package (the 19 March relocation
// start, the week-12 exodus weekend, the week-18 regional relax window
// and the weekly weekend-trip pattern) stay where the paper observed
// them. A shifted counterfactual therefore answers "what if demand and
// activity had moved earlier/later against the same calendar", not
// "what if the entire calendar had moved".
func Shifted(sp Spec, delta float64) Spec {
	out := sp
	out.Activity = shiftCurve(sp.Activity, delta)
	out.Voice = shiftCurve(sp.Voice, delta)
	out.Data = shiftCurve(sp.Data, delta)
	out.HomeCellular = shiftCurve(sp.HomeCellular, delta)
	out.Throttle = shiftCurve(sp.Throttle, delta)
	if sp.CaseCurve != nil {
		cc := *sp.CaseCurve
		cc.MidDay += delta
		out.CaseCurve = &cc
	}
	return out
}

// shiftCurve translates a curve in time and re-anchors it to the study
// window: anchors pushed outside [0, lastStudyDay] are dropped, and
// boundary anchors are added so the kept range still evaluates to the
// translated original.
func shiftCurve(c Curve, delta float64) Curve {
	if len(c) == 0 {
		return nil
	}
	var out Curve
	for _, p := range c {
		d := p.Day + delta
		if d < 0 || d > lastStudyDay {
			continue
		}
		out = append(out, Point{Day: d, Value: p.Value})
	}
	if len(out) == 0 || out[0].Day > 0 {
		out = append(Curve{{Day: 0, Value: c.Eval(-delta)}}, out...)
	}
	if last := out[len(out)-1]; last.Day < lastStudyDay {
		out = append(out, Point{Day: lastStudyDay, Value: c.Eval(lastStudyDay - delta)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out
}
