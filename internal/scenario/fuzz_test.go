package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecUnmarshal fuzzes the JSON spec parser with the registry's
// golden files as the seed corpus. The contract under arbitrary input:
// Parse never panics (it may error), and any input it accepts is a
// valid spec whose canonical JSON form round-trips losslessly —
// re-parsing the marshalled form must succeed and re-marshal to the
// same bytes — and whose compilation to a pandemic.Scenario never
// panics (validation errors are fine). Equality is checked on the
// canonical form, not the structs, because omitempty collapses empty
// (non-nil) curves and maps to absent fields by design.
func FuzzSpecUnmarshal(f *testing.F) {
	for _, name := range Names() {
		data, err := os.ReadFile(filepath.Join("testdata", name+".json"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","null":true}`))
	f.Add([]byte(`{"activity":[{"day":0,"value":1},{"day":76,"value":0.5}],"relocation":true}`))
	f.Add([]byte(`{"case_curve":{"plateau":1e6,"growth":0.2,"mid_day":40}}`))
	f.Add([]byte(`{"relax_bonus":{"Inner London":0.15}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		canon, err := sp.MarshalIndentJSON()
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form of an accepted spec is rejected: %v\ninput: %q\ncanonical: %s", err, data, canon)
		}
		canon2, err := sp2.MarshalIndentJSON()
		if err != nil {
			t.Fatalf("re-parsed spec does not marshal: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("round trip is lossy:\nfirst:  %s\nsecond: %s", canon, canon2)
		}
		// Compilation may reject the spec (anchor windows, negative
		// values) but must never panic.
		_, _ = sp.Scenario()
		_, _ = sp2.Scenario()
	})
}
