package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/census"
	"repro/internal/pandemic"
	"repro/internal/timegrid"
)

// -update regenerates the golden spec files under testdata/.
var update = flag.Bool("update", false, "rewrite golden spec files")

// sameFactors asserts two scenarios produce bit-identical daily factors
// (and relocation windows) across the whole study window.
func sameFactors(t *testing.T, got, want *pandemic.Scenario) {
	t.Helper()
	relaxed := &census.County{Name: "Inner London"}
	plain := &census.County{Name: "Greater Manchester", Kind: census.KindMetroCore}
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d++ {
		type pair struct {
			name string
			g, w float64
		}
		for _, p := range []pair{
			{"activity", got.Activity(d), want.Activity(d)},
			{"regional activity", got.RegionalActivity(d, relaxed), want.RegionalActivity(d, relaxed)},
			{"voice", got.VoiceFactor(d), want.VoiceFactor(d)},
			{"data", got.DataFactor(d), want.DataFactor(d)},
			{"home-cellular", got.HomeCellularFactor(d), want.HomeCellularFactor(d)},
			{"throttle", got.ThrottleFactor(d), want.ThrottleFactor(d)},
			{"cases", got.CumulativeCases(d), want.CumulativeCases(d)},
			{"weekend-away", got.WeekendAwayProb(d, plain), want.WeekendAwayProb(d, plain)},
			{"exodus bias", got.ExodusDestinationBias(d, "East Sussex"), want.ExodusDestinationBias(d, "East Sussex")},
		} {
			if p.g != p.w {
				t.Fatalf("day %d: %s %v != %v", d, p.name, p.g, p.w)
			}
		}
	}
	for d := timegrid.SimDay(0); d < timegrid.SimDays; d++ {
		if got.RelocationActive(d) != want.RelocationActive(d) {
			t.Fatalf("day %d: relocation window differs", d)
		}
	}
	dist := &census.District{SeasonalShare: 0.125}
	if got.RelocationProb(dist) != want.RelocationProb(dist) {
		t.Fatal("relocation probability differs")
	}
}

func TestDefaultCovidJSONRoundTripBitIdentical(t *testing.T) {
	sp, ok := Get(DefaultCovid)
	if !ok {
		t.Fatal("default-covid missing from registry")
	}
	data, err := sp.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := parsed.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	sameFactors(t, scen, pandemic.Default())
}

func TestEveryRegistryEntryRoundTrips(t *testing.T) {
	for _, sp := range List() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			scen, err := sp.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			// Spec → Scenario → Spec is lossless.
			back := FromScenario(sp.Name, sp.Description, scen)
			if !reflect.DeepEqual(back, sp) {
				t.Fatalf("snapshot round trip changed the spec:\n got %+v\nwant %+v", back, sp)
			}
			// And JSON → Spec → Scenario matches the direct compile.
			data, err := sp.MarshalIndentJSON()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			reScen, err := parsed.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			sameFactors(t, reScen, scen)
		})
	}
}

func TestRegistryGolden(t *testing.T) {
	for _, sp := range List() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			path := filepath.Join("testdata", sp.Name+".json")
			data, err := sp.MarshalIndentJSON()
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/scenario -update` to regenerate)", err)
			}
			if string(data) != string(want) {
				t.Errorf("registry spec %s drifted from its golden file; run `go test ./internal/scenario -update` if intentional", sp.Name)
			}
		})
	}
}

func TestGoldenFilesCompile(t *testing.T) {
	// Every golden file is also a valid -scenario file: loading it by
	// path reproduces the registry entry's factors.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			fromFile, err := Load(filepath.Join("testdata", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			fromRegistry, err := Load(name)
			if err != nil {
				t.Fatal(err)
			}
			sameFactors(t, fromFile, fromRegistry)
		})
	}
}

func TestNoPandemicSpecIsNull(t *testing.T) {
	scen, err := Load(NoPandemic)
	if err != nil {
		t.Fatal(err)
	}
	if !scen.Null() {
		t.Fatal("no-pandemic spec must compile to the null scenario")
	}
	if scen.RelocationActive(timegrid.SimDays - 1) {
		t.Error("null scenario relocates")
	}
}

func TestRegistryCompleteness(t *testing.T) {
	want := []string{DefaultCovid, NoPandemic, EarlyLockdown, LateLockdown, SecondWave, DeepOffload, VoiceSurge}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry names = %v, want %v", got, want)
	}
	for _, name := range want {
		sp, ok := Get(name)
		if !ok {
			t.Fatalf("missing built-in %s", name)
		}
		if sp.Description == "" {
			t.Errorf("%s has no description", name)
		}
		if _, err := sp.Scenario(); err != nil {
			t.Errorf("%s does not compile: %v", name, err)
		}
	}
}

func TestShiftedResamplesAtWindowEdges(t *testing.T) {
	base, _ := Get(DefaultCovid)
	for _, delta := range []float64{-14, 14} {
		shifted := Shifted(base, delta)
		for _, c := range []struct {
			name       string
			orig, next Curve
		}{
			{"activity", base.Activity, shifted.Activity},
			{"voice", base.Voice, shifted.Voice},
		} {
			// Wherever the translated day still falls inside the study
			// window, the shift must be a pure translation (up to float
			// rounding through the resampled boundary anchors).
			for d := 0.0; d <= lastStudyDay; d += 0.5 {
				if d-delta < 0 || d-delta > lastStudyDay {
					continue
				}
				got, want := c.next.Eval(d), c.orig.Eval(d-delta)
				if diff := got - want; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("delta %v: %s at day %v = %v, want %v", delta, c.name, d, got, want)
				}
			}
		}
		if cc := shifted.CaseCurve; cc == nil || cc.MidDay != base.CaseCurve.MidDay+delta {
			t.Fatalf("delta %v: case midpoint not shifted", delta)
		}
	}
}

func TestParseRejectsUnknownFieldsAndBadNull(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","activty":[]}`)); err == nil {
		t.Error("typo'd field accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","null":true,"relocation":true}`)); err == nil {
		t.Error("null scenario with relocation accepted")
	}
}

func TestLoadSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.json")
	spec := Spec{
		Name:       "custom",
		Activity:   Curve{{Day: 0, Value: 1}, {Day: 10, Value: 0.5}, {Day: 76, Value: 0.6}},
		Relocation: true,
	}
	data, err := spec.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	scen, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := scen.Activity(10); got != 0.5 {
		t.Errorf("activity(10) = %v", got)
	}
	if _, err := Load("definitely-not-registered"); err == nil {
		t.Error("unknown name accepted")
	}
}
