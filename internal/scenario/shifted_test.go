package scenario

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// maxShift bounds the shift magnitude of the property tests; random
// anchors are kept in [maxShift, lastStudyDay−maxShift] so a single
// shift never pushes them out of the study window (where Shifted
// intentionally drops them and the round trip loses information).
const maxShift = 18

// randomCurve draws a strictly increasing anchor curve confined to the
// shift-safe interior of the study window.
func randomCurve(rnd *rand.Rand) Curve {
	n := 2 + rnd.Intn(5)
	days := make([]float64, 0, n)
	seen := map[float64]bool{}
	for len(days) < n {
		d := maxShift + rnd.Float64()*(lastStudyDay-2*maxShift)
		d = math.Round(d*4) / 4 // quarter-day grid keeps days distinct
		if !seen[d] {
			seen[d] = true
			days = append(days, d)
		}
	}
	sort.Float64s(days)
	c := make(Curve, n)
	for i, d := range days {
		c[i] = Point{Day: d, Value: 0.1 + 3*rnd.Float64()}
	}
	return c
}

// randomSpec draws a spec with a random subset of curves, an optional
// case curve and random non-timeline fields.
func randomSpec(rnd *rand.Rand) Spec {
	sp := Spec{Name: "prop", Relocation: rnd.Intn(2) == 0}
	if rnd.Intn(4) > 0 {
		sp.Activity = randomCurve(rnd)
	}
	if rnd.Intn(4) > 0 {
		sp.Voice = randomCurve(rnd)
	}
	if rnd.Intn(2) == 0 {
		sp.Data = randomCurve(rnd)
	}
	if rnd.Intn(2) == 0 {
		sp.HomeCellular = randomCurve(rnd)
	}
	if rnd.Intn(2) == 0 {
		sp.Throttle = randomCurve(rnd)
	}
	if rnd.Intn(2) == 0 {
		sp.CaseCurve = &CaseCurve{
			Plateau: 1e4 + 1e6*rnd.Float64(),
			Growth:  0.05 + 0.3*rnd.Float64(),
			MidDay:  maxShift + rnd.Float64()*(lastStudyDay-2*maxShift),
		}
	}
	if rnd.Intn(3) == 0 {
		sp.RelaxBonus = map[string]float64{"Inner London": 0.1 * rnd.Float64()}
	}
	return sp
}

// curvePairs enumerates the five shiftable curves of two specs.
func curvePairs(a, b Spec) [][2]Curve {
	return [][2]Curve{
		{a.Activity, b.Activity},
		{a.Voice, b.Voice},
		{a.Data, b.Data},
		{a.HomeCellular, b.HomeCellular},
		{a.Throttle, b.Throttle},
	}
}

// TestShiftedPropertyTranslatesAnchors asserts, for randomized specs
// and shifts: every anchor of the original curve appears in the shifted
// curve at exactly day+delta (the translated day is computed by the
// same single float addition, so the comparison is bitwise) with its
// value untouched, and the case-curve midpoint moves by exactly delta.
func TestShiftedPropertyTranslatesAnchors(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260728))
	for iter := 0; iter < 300; iter++ {
		sp := randomSpec(rnd)
		delta := (0.25 + rnd.Float64()*(maxShift-0.25)) * float64(1-2*rnd.Intn(2))
		delta = math.Round(delta*4) / 4
		shifted := Shifted(sp, delta)

		for ci, pair := range curvePairs(sp, shifted) {
			orig, next := pair[0], pair[1]
			for _, p := range orig {
				want := p.Day + delta
				found := false
				for _, q := range next {
					if q.Day == want && q.Value == p.Value {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("iter %d curve %d delta %v: anchor (%v,%v) not translated to day %v in %v",
						iter, ci, delta, p.Day, p.Value, want, next)
				}
			}
		}
		if sp.CaseCurve != nil {
			if got, want := shifted.CaseCurve.MidDay, sp.CaseCurve.MidDay+delta; got != want {
				t.Fatalf("iter %d: case midpoint %v, want %v", iter, got, want)
			}
			if shifted.CaseCurve == sp.CaseCurve {
				t.Fatal("Shifted aliases the input's case curve")
			}
		}
		// Non-timeline fields pass through untouched.
		if shifted.Relocation != sp.Relocation {
			t.Fatal("Shifted changed the relocation toggle")
		}
		for k, v := range sp.RelaxBonus {
			if shifted.RelaxBonus[k] != v {
				t.Fatal("Shifted changed a relax bonus")
			}
		}
	}
}

// TestShiftedPropertyRoundTripIdentity asserts that shifting by d and
// then by −d is the identity for randomized interior specs: interior
// anchors are restored (values bit-identical, days within float
// round-off of one add-subtract), and the composed curve evaluates
// identically to the original across the whole study window — the
// resampled boundary anchors Shifted inserts carry the clamped values,
// so no information is lost while every anchor stays inside the window.
func TestShiftedPropertyRoundTripIdentity(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	const tol = 1e-9
	for iter := 0; iter < 300; iter++ {
		sp := randomSpec(rnd)
		delta := (0.25 + rnd.Float64()*(maxShift-0.25)) * float64(1-2*rnd.Intn(2))
		back := Shifted(Shifted(sp, delta), -delta)

		for ci, pair := range curvePairs(sp, back) {
			orig, got := pair[0], pair[1]
			// Interior anchors restored.
			for _, p := range orig {
				found := false
				for _, q := range got {
					if math.Abs(q.Day-p.Day) <= tol && q.Value == p.Value {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("iter %d curve %d delta %v: anchor (%v,%v) lost in round trip %v",
						iter, ci, delta, p.Day, p.Value, got)
				}
			}
			// Function identity over the window.
			for d := 0.0; d <= lastStudyDay; d += 0.5 {
				if diff := got.Eval(d) - orig.Eval(d); math.Abs(diff) > tol {
					t.Fatalf("iter %d curve %d delta %v: Eval(%v) drifted by %v", iter, ci, delta, d, diff)
				}
			}
		}
		if sp.CaseCurve != nil {
			if diff := back.CaseCurve.MidDay - sp.CaseCurve.MidDay; math.Abs(diff) > tol {
				t.Fatalf("iter %d: case midpoint drifted by %v", iter, diff)
			}
		}
	}
}
