package scenario

import (
	"math"

	"repro/internal/pandemic"
)

// DivergenceDay returns the first (possibly fractional) study day at
// which this spec's simulated behaviour can differ from the null
// scenario's — +Inf for the null spec itself. The contract is
// conservative: the returned day is never later than the true
// divergence, so all simulated days strictly before it are
// bit-identical to a no-pandemic run (asserted by
// TestDivergenceDayProperty over randomized specs).
//
// The day is the minimum over:
//
//   - each factor curve's departure from baseline: a curve that is
//     empty or pinned at 1.0 everywhere never diverges; otherwise the
//     curve leaves 1.0 after its last leading value-1 anchor (or at day
//     0 when it clamps to a non-1 value before its first anchor);
//   - pandemic.NullDivergenceDay(), the calendar-pinned week-11 weekend
//     where any non-null scenario's weekend-trip pattern departs from
//     the null baseline;
//   - pandemic.RelocationDivergenceDay() when the relocation toggle is
//     on;
//   - pandemic.RelaxDivergenceDay() when regional relax bonuses are
//     set.
//
// The case curve is excluded: it feeds figures and the SEIR comparison
// only, never the mobility or traffic simulation (see
// internal/pandemic/divergence.go). Note that the calendar-pinned
// components do not move under Shifted — only the curve component
// shifts with the spec's own timeline (Shifted's documented contract).
func (sp Spec) DivergenceDay() float64 {
	if sp.Null {
		return math.Inf(1)
	}
	div := pandemic.NullDivergenceDay()
	for _, c := range []Curve{sp.Activity, sp.Voice, sp.Data, sp.HomeCellular, sp.Throttle} {
		div = math.Min(div, curveDivergence(c))
	}
	if sp.Relocation {
		div = math.Min(div, pandemic.RelocationDivergenceDay())
	}
	if len(sp.RelaxBonus) > 0 {
		div = math.Min(div, pandemic.RelaxDivergenceDay())
	}
	return div
}

// curveDivergence returns the first day the curve can differ from the
// constant baseline 1.0: +Inf for an empty or all-baseline curve, 0 for
// a curve that clamps to a non-baseline value before its first anchor,
// else the day of the last leading value-1 anchor (interpolation moves
// off baseline only after it).
func curveDivergence(c Curve) float64 {
	first := -1
	for i, p := range c {
		if p.Value != 1 {
			first = i
			break
		}
	}
	switch {
	case first < 0:
		return math.Inf(1)
	case first == 0:
		return 0
	default:
		return c[first-1].Day
	}
}
