package partial

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/feeds"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/signaling"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

const (
	fixUsers = 500
	fixSeed  = 1
	fixDays  = 7
)

var (
	fixOnce sync.Once
	fixTopo *radio.Topology
	fixPop  *popsim.Population
	fixSim  *mobsim.Simulator
	fixEng  *traffic.Engine
)

func fixture(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		m := census.BuildUK(1)
		fixTopo = radio.Build(m, radio.DefaultConfig(), 1)
		fixPop = popsim.Synthesize(m, fixTopo, popsim.Config{Seed: fixSeed, TargetUsers: fixUsers})
		fixSim = mobsim.New(fixPop, pandemic.Default(), fixSeed)
		fixEng = traffic.NewEngine(fixPop, pandemic.Default(), traffic.DefaultParams(), fixSeed)
	})
}

// writeFeedDir generates a fixDays feed directory (traces + KPI for
// every day, control-plane events for day 2) the way `mnosim -raw`
// does.
func writeFeedDir(t *testing.T, dir string) {
	t.Helper()
	fixture(t)
	if err := feeds.WriteMeta(dir, feeds.Meta{Users: fixUsers, Seed: fixSeed}); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Create(filepath.Join(dir, feeds.TraceFeedName))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	tw := feeds.NewTraceWriter(tf)
	kf, err := os.Create(filepath.Join(dir, feeds.KPIFeedName))
	if err != nil {
		t.Fatal(err)
	}
	defer kf.Close()
	kw := feeds.NewKPIWriter(kf)
	buf := mobsim.NewDayBuffer()
	var cells []traffic.CellDay
	for day := timegrid.SimDay(0); day < fixDays; day++ {
		traces := fixSim.DayInto(buf, day)
		if err := tw.WriteDay(day, traces); err != nil {
			t.Fatal(err)
		}
		cells = fixEng.DayAppend(cells[:0], day, traces)
		if err := kw.WriteDay(day, cells); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := kw.Flush(); err != nil {
		t.Fatal(err)
	}

	ef, err := os.Create(filepath.Join(dir, feeds.EventFeedName))
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	ew := feeds.NewEventWriter(ef)
	gen := signaling.NewGenerator(fixPop, fixSeed)
	gen.Day(2, fixSim.Day(2), ew.Consume)
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
}

// replay runs the streaming engine over a feed directory with a
// Recorder attached and returns its Partial after a WriteFile/ReadFile
// round trip (so the parity checks also pin the JSON serialization).
func replay(t *testing.T, dir string) *Partial {
	t.Helper()
	meta, _, err := feeds.ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := feeds.OpenDirOpts(dir, feeds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	scfg := stream.Config{}.WithDefaults()
	eng := stream.NewEngine(scfg)
	rec := NewRecorder(fixTopo, core.DefaultTopN, meta)
	eng.AddTraceConsumer(rec.Traces())
	eng.AddKPIConsumer(rec.KPI())
	eng.AddEventSharder(rec.Events())
	if err := eng.Run(context.Background(), stream.Prefetch(fs, scfg.Buffer)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := WriteFile(path, rec.Partial()); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMergeParity pins the headline guarantee: replaying partition
// shards in separate engine runs and merging the partials reproduces
// the single-process result — mobility bit-identical, KPI medians
// bit-identical (well inside the 1e-9 acceptance tolerance), event
// totals exactly equal.
func TestMergeParity(t *testing.T) {
	full := t.TempDir()
	writeFeedDir(t, full)
	single := replay(t, full)
	ref, err := Merge([]*Partial{single})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Mobility) != fixDays || len(ref.KPI) != fixDays || len(ref.Events) != fixDays {
		t.Fatalf("reference rows: %d mobility, %d kpi, %d events (want %d each)",
			len(ref.Mobility), len(ref.KPI), len(ref.Events), fixDays)
	}
	var evTotal int64
	for _, e := range ref.Events {
		evTotal += e.Events
	}
	if evTotal == 0 {
		t.Fatal("fixture produced no control-plane events; the event merge path is untested")
	}

	for _, parts := range []int{2, 4} {
		out := t.TempDir()
		metas, err := feeds.PartitionDir(full, out, parts, feeds.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ps := make([]*Partial, parts)
		for s := range ps {
			ps[s] = replay(t, filepath.Join(out, feeds.ShardDirName(s)))
			if !ps[s].Partitioned() || ps[s].UserLo != metas[s].UserLo {
				t.Fatalf("%d-way shard %d partial lost partition coordinates: %+v", parts, s, ps[s])
			}
		}
		got, err := Merge(ps)
		if err != nil {
			t.Fatalf("%d-way merge: %v", parts, err)
		}
		for j := range ref.Mobility {
			if got.Mobility[j] != ref.Mobility[j] {
				t.Errorf("%d-way merge: mobility day %d not bit-identical:\n got %+v\nwant %+v",
					parts, ref.Mobility[j].Day, got.Mobility[j], ref.Mobility[j])
			}
		}
		if len(got.KPI) != len(ref.KPI) {
			t.Fatalf("%d-way merge: %d KPI rows, want %d", parts, len(got.KPI), len(ref.KPI))
		}
		for j := range ref.KPI {
			if got.KPI[j] != ref.KPI[j] {
				t.Errorf("%d-way merge: KPI day %d diverges:\n got %+v\nwant %+v",
					parts, ref.KPI[j].Day, got.KPI[j], ref.KPI[j])
			}
		}
		for j := range ref.Events {
			if got.Events[j] != ref.Events[j] {
				t.Errorf("%d-way merge: events day %d: got %+v, want %+v",
					parts, ref.Events[j].Day, got.Events[j], ref.Events[j])
			}
		}
	}
}

// TestSketchMediansWithinGuarantee compares the merged sketch medians
// against exact medians computed from the raw KPI records: the HDR
// sketch promises about 10^(1/32)-1 ≈ 7.5% relative error, and the
// replayed feed must stay inside it.
func TestSketchMediansWithinGuarantee(t *testing.T) {
	dir := t.TempDir()
	writeFeedDir(t, dir)
	res, err := Merge([]*Partial{replay(t, dir)})
	if err != nil {
		t.Fatal(err)
	}

	maxRel := math.Pow(10, 1.0/32) - 1
	buf := mobsim.NewDayBuffer()
	var cells []traffic.CellDay
	for _, k := range res.KPI {
		traces := fixSim.DayInto(buf, k.Day)
		cells = fixEng.DayAppend(cells[:0], k.Day, traces)
		if len(cells) != k.Cells {
			t.Fatalf("day %d: merged %d cells, engine produced %d", k.Day, k.Cells, len(cells))
		}
		vals := make([]float64, len(cells))
		for m := 0; m < traffic.NumMetrics; m++ {
			for i := range cells {
				vals[i] = cells[i].Values[m]
			}
			sort.Float64s(vals)
			exact := vals[(len(vals)-1)/2] // rank ⌈n/2⌉, matching QSketch.Quantile
			got := k.Medians[m]
			if exact == 0 {
				if got != 0 {
					t.Errorf("day %d metric %d: exact median 0, sketch %g", k.Day, m, got)
				}
				continue
			}
			if rel := math.Abs(got-exact) / exact; rel > maxRel {
				t.Errorf("day %d metric %d: sketch median %g vs exact %g (rel %.4f > %.4f)",
					k.Day, m, got, exact, rel, maxRel)
			}
		}
	}
}

func TestMergeValidation(t *testing.T) {
	mk := func(part, parts int, lo, hi uint32, days ...timegrid.SimDay) *Partial {
		p := &Partial{Version: Version, Users: 10, Seed: 1, Part: part, Parts: parts, UserLo: lo, UserHi: hi}
		for _, d := range days {
			p.Days = append(p.Days, Day{Day: d})
		}
		return p
	}
	cases := []struct {
		name  string
		parts []*Partial
	}{
		{"empty", nil},
		{"bad version", []*Partial{{Version: Version + 1}}},
		{"incomplete shard set", []*Partial{mk(0, 2, 0, 4, 0)}},
		{"duplicate part", []*Partial{mk(0, 2, 0, 4, 0), mk(0, 2, 0, 4, 0)}},
		{"overlapping ranges", []*Partial{mk(0, 2, 0, 5, 0), mk(1, 2, 5, 9, 0)}},
		{"diverging days", []*Partial{mk(0, 2, 0, 4, 0, 1), mk(1, 2, 5, 9, 0, 2)}},
		{"mixed provenance", func() []*Partial {
			a, b := mk(0, 2, 0, 4, 0), mk(1, 2, 5, 9, 0)
			b.Seed = 2
			return []*Partial{a, b}
		}()},
	}
	for _, tc := range cases {
		if _, err := Merge(tc.parts); err == nil {
			t.Errorf("%s: merge accepted", tc.name)
		}
	}
	// The valid counterpart merges cleanly.
	if _, err := Merge([]*Partial{mk(0, 2, 0, 4, 0), mk(1, 2, 5, 9, 0)}); err != nil {
		t.Errorf("valid shard set rejected: %v", err)
	}
}
