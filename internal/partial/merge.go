package partial

import (
	"fmt"
	"sort"

	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// EventTotals is one day of merged control-plane counts.
type EventTotals struct {
	Day      timegrid.SimDay
	Events   int64
	Failures int64
}

// Result is the merged output of a complete set of partials: the same
// rows a single process replaying the whole feed would produce.
type Result struct {
	Users    int
	Seed     uint64
	Scenario string

	// Mobility has one row per replayed day; KPI only the days that saw
	// cells (matching stream.KPIMedians); Events one row per day.
	Mobility []stream.MobilityDay
	KPI      []stream.KPIDay
	Events   []EventTotals
}

// Merge folds partials into the single-process result. It accepts
// either one unpartitioned partial or the complete shard set of one
// partitioned run (every Part 0..Parts-1 exactly once, disjoint user
// ranges, identical day sequences and provenance).
//
// Mobility averages are bit-identical to a single-process replay: the
// per-user metrics are re-folded in ascending user-range order, which
// is the single process's trace order. KPI medians are bit-identical
// because sketch bin counts add exactly. Event totals are integer sums.
func Merge(parts []*Partial) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("partial: nothing to merge")
	}
	for _, p := range parts {
		if p.Version != Version {
			return nil, fmt.Errorf("partial: version %d not supported (this build reads %d)", p.Version, Version)
		}
	}
	ref := parts[0]
	for _, p := range parts[1:] {
		if p.Users != ref.Users || p.Seed != ref.Seed || p.Scenario != ref.Scenario {
			return nil, fmt.Errorf("partial: mixed provenance: (users=%d seed=%d scenario=%q) vs (users=%d seed=%d scenario=%q)",
				ref.Users, ref.Seed, ref.Scenario, p.Users, p.Seed, p.Scenario)
		}
	}

	if len(parts) > 1 || ref.Partitioned() {
		for _, p := range parts {
			if p.Parts != len(parts) {
				return nil, fmt.Errorf("partial: part %d/%d merged with %d partials; need the complete shard set", p.Part, p.Parts, len(parts))
			}
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i].Part < parts[j].Part })
		for s, p := range parts {
			if p.Part != s {
				return nil, fmt.Errorf("partial: shard set has no part %d (found part %d)", s, p.Part)
			}
			if s > 0 && p.UserLo <= parts[s-1].UserHi {
				return nil, fmt.Errorf("partial: parts %d and %d have overlapping user ranges", s-1, s)
			}
		}
	}

	days := len(ref.Days)
	for _, p := range parts {
		if len(p.Days) != days {
			return nil, fmt.Errorf("partial: part %d replayed %d days, part %d replayed %d", ref.Part, days, p.Part, len(p.Days))
		}
		for j := range p.Days {
			if p.Days[j].Day != ref.Days[j].Day {
				return nil, fmt.Errorf("partial: day sequences diverge at index %d: %d vs %d", j, ref.Days[j].Day, p.Days[j].Day)
			}
			d := &p.Days[j]
			if len(d.Users) != len(d.Entropy) || len(d.Users) != len(d.Gyration) {
				return nil, fmt.Errorf("partial: part %d day %d: ragged metric columns", p.Part, d.Day)
			}
			if d.Cells > 0 && len(d.Sketches) != traffic.NumMetrics {
				return nil, fmt.Errorf("partial: part %d day %d: %d sketches, want %d", p.Part, d.Day, len(d.Sketches), traffic.NumMetrics)
			}
		}
	}

	res := &Result{Users: ref.Users, Seed: ref.Seed, Scenario: ref.Scenario}
	merged := make([]*stream.QSketch, traffic.NumMetrics)
	for j := 0; j < days; j++ {
		day := ref.Days[j].Day

		// Mobility: sequential fold in shard (== user-range == single
		// process trace) order.
		var e, g float64
		n := 0
		for _, p := range parts {
			d := &p.Days[j]
			for i := range d.Entropy {
				e += d.Entropy[i]
				g += d.Gyration[i]
				n++
			}
		}
		row := stream.MobilityDay{Day: day, Users: n}
		if n > 0 {
			row.AvgEntropy = e / float64(n)
			row.AvgGyration = g / float64(n)
		}
		res.Mobility = append(res.Mobility, row)

		// KPI: exact sketch merge.
		cells := 0
		for m := range merged {
			merged[m] = nil
		}
		for _, p := range parts {
			d := &p.Days[j]
			if d.Cells == 0 {
				continue
			}
			cells += d.Cells
			for m := range merged {
				q, err := stream.QSketchFromState(d.Sketches[m])
				if err != nil {
					return nil, fmt.Errorf("partial: part %d day %d metric %d: %w", p.Part, day, m, err)
				}
				if merged[m] == nil {
					merged[m] = q
				} else {
					merged[m].Merge(q)
				}
			}
		}
		if cells > 0 {
			k := stream.KPIDay{Day: day, Cells: cells}
			for m := range merged {
				k.Medians[m] = merged[m].Median()
			}
			res.KPI = append(res.KPI, k)
		}

		// Control plane: integer sums.
		ev := EventTotals{Day: day}
		for _, p := range parts {
			ev.Events += p.Days[j].Events
			ev.Failures += p.Days[j].Failures
		}
		res.Events = append(res.Events, ev)
	}
	return res, nil
}
