// Package partial serializes per-process replay results so that a feed
// directory partitioned by user range (feeds.PartitionDir) can be
// replayed by independent processes whose outputs merge into exactly the
// single-process result.
//
// Every aggregate a Partial carries is chosen to survive merging:
//
//   - Mobility is stored as the raw per-user per-day §2.3 metrics
//     (entropy, radius of gyration) in trace order. The merge re-folds
//     them in global user order — partition shards hold contiguous user
//     ranges and traces are user-ordered within a day, so the fold
//     visits users in exactly the single-process order and the merged
//     national averages are bit-identical, not merely close.
//   - KPI medians are stored as stream.QSketchState snapshots, whose bin
//     counts add: merging per-shard sketches is exact and commutative,
//     so merged medians equal the single-process sketch medians bit for
//     bit.
//   - Control-plane totals are integer event and failure counts, which
//     simply add.
//
// A Recorder is attached to a stream.Engine replay (serial trace/KPI
// consumers plus an event sharder) and captures one Day row per
// replayed day; WriteFile/ReadFile move the Partial through JSON (the
// encoding round-trips float64 exactly); Merge folds any complete set
// of shards — or a single unpartitioned run — into the final rows.
// cmd/feedmerge is the CLI over this package.
package partial

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/feeds"
	"repro/internal/mobsim"
	"repro/internal/radio"
	"repro/internal/signaling"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Version is the Partial schema version; bump on incompatible change.
const Version = 1

// Day is one replayed day of a single process's aggregates.
type Day struct {
	Day timegrid.SimDay `json:"day"`

	// Per-user mobility metrics in trace order (all three slices share
	// indices). Users carries the native user IDs so Merge can verify
	// shard ranges.
	Users    []uint32  `json:"users"`
	Entropy  []float64 `json:"entropy"`
	Gyration []float64 `json:"gyration"`

	// KPI cells seen this day and the per-metric quantile sketches
	// (len traffic.NumMetrics when Cells > 0, absent otherwise).
	Cells    int                   `json:"cells"`
	Sketches []stream.QSketchState `json:"sketches,omitempty"`

	// Control-plane totals.
	Events   int64 `json:"events"`
	Failures int64 `json:"failures"`
}

// Partial is the serializable result of one process replaying one feed
// directory (a partition shard, or a whole unpartitioned feed).
type Partial struct {
	Version  int    `json:"version"`
	Users    int    `json:"pop_users"`
	Seed     uint64 `json:"seed"`
	Scenario string `json:"scenario,omitempty"`

	// Partition coordinates, copied from the feed's meta sidecar; an
	// unpartitioned replay has Parts == 0.
	Part   int    `json:"part"`
	Parts  int    `json:"parts"`
	UserLo uint32 `json:"user_lo"`
	UserHi uint32 `json:"user_hi"`

	Days []Day `json:"days"`
}

// Partitioned reports whether the partial covers a partition shard.
func (p *Partial) Partitioned() bool { return p.Parts > 0 }

// Recorder captures a Partial from a stream.Engine replay. Attach all
// three views:
//
//	rec := partial.NewRecorder(topo, topN, meta)
//	eng.AddTraceConsumer(rec.Traces())
//	eng.AddKPIConsumer(rec.KPI())
//	eng.AddEventSharder(rec.Events())
//
// The trace and KPI views run in the engine's serial merge stage (day
// order); the event view counts concurrently with atomic adds, which is
// exact for integers.
type Recorder struct {
	topo   *radio.Topology
	topN   int
	merger core.VisitMerger

	p   Partial
	idx map[timegrid.SimDay]int

	// Event scratch: accumulated by concurrent ShardDay calls, folded
	// into the day row by EndDay.
	evDay    int
	evCount  atomic.Int64
	evFailed atomic.Int64
}

// NewRecorder builds a recorder. topo and topN must match the stack the
// feed was generated from; meta supplies the provenance and partition
// coordinates stamped into the Partial.
func NewRecorder(topo *radio.Topology, topN int, meta feeds.Meta) *Recorder {
	return &Recorder{
		topo: topo,
		topN: topN,
		p: Partial{
			Version: Version,
			Users:   meta.Users, Seed: meta.Seed, Scenario: meta.Scenario,
			Part: meta.Part, Parts: meta.Parts,
			UserLo: meta.UserLo, UserHi: meta.UserHi,
		},
		idx: make(map[timegrid.SimDay]int),
	}
}

// dayRow returns the row for day, creating it in arrival order. The
// pointer is only valid until the next dayRow call.
func (r *Recorder) dayRow(day timegrid.SimDay) *Day {
	if i, ok := r.idx[day]; ok {
		return &r.p.Days[i]
	}
	r.idx[day] = len(r.p.Days)
	r.p.Days = append(r.p.Days, Day{Day: day})
	return &r.p.Days[len(r.p.Days)-1]
}

// Partial returns the recorded result. Call after the engine run
// completes; the returned value aliases the recorder's state.
func (r *Recorder) Partial() *Partial { return &r.p }

// Traces returns the serial trace consumer view.
func (r *Recorder) Traces() stream.TraceConsumer { return traceView{r} }

type traceView struct{ r *Recorder }

func (v traceView) ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	r := v.r
	d := r.dayRow(day)
	for i := range traces {
		m := r.merger.DayMetrics(&traces[i], r.topo, r.topN)
		d.Users = append(d.Users, uint32(traces[i].User))
		d.Entropy = append(d.Entropy, m.Entropy)
		d.Gyration = append(d.Gyration, m.Gyration)
	}
}

// KPI returns the serial KPI consumer view.
func (r *Recorder) KPI() stream.KPIConsumer { return kpiView{r} }

type kpiView struct{ r *Recorder }

func (v kpiView) ConsumeDay(day timegrid.SimDay, cells []traffic.CellDay) {
	r := v.r
	d := r.dayRow(day)
	if len(cells) == 0 {
		return
	}
	d.Cells += len(cells)
	qs := make([]*stream.QSketch, traffic.NumMetrics)
	for m := range qs {
		if d.Sketches != nil {
			q, err := stream.QSketchFromState(d.Sketches[m])
			if err != nil {
				// Only possible if this build's sketch resolution changed
				// mid-run, which cannot happen; keep the signature clean.
				panic(err)
			}
			qs[m] = q
		} else {
			qs[m] = stream.NewQSketch()
		}
	}
	for i := range cells {
		for m := 0; m < traffic.NumMetrics; m++ {
			qs[m].Add(cells[i].Values[m])
		}
	}
	states := make([]stream.QSketchState, traffic.NumMetrics)
	for m := range qs {
		states[m] = qs[m].State()
	}
	d.Sketches = states
}

// Events returns the event sharder view.
func (r *Recorder) Events() stream.EventSharder { return eventView{r} }

type eventView struct{ r *Recorder }

func (v eventView) BeginDay(day timegrid.SimDay, _ []signaling.Event) {
	r := v.r
	r.dayRow(day)
	r.evDay = r.idx[day]
	r.evCount.Store(0)
	r.evFailed.Store(0)
}

func (v eventView) ShardDay(_ int, _ timegrid.SimDay, events []signaling.Event, idx []int) {
	var failed int64
	for _, i := range idx {
		if !events[i].OK {
			failed++
		}
	}
	v.r.evCount.Add(int64(len(idx)))
	v.r.evFailed.Add(failed)
}

func (v eventView) EndDay(timegrid.SimDay) {
	r := v.r
	d := &r.p.Days[r.evDay]
	d.Events += r.evCount.Load()
	d.Failures += r.evFailed.Load()
}
