package partial

import (
	"encoding/json"
	"fmt"
	"os"
)

// WriteFile persists a Partial as JSON. Go's encoder emits the shortest
// float64 representation that round-trips exactly, so reading the file
// back reproduces every metric bit for bit.
func WriteFile(path string, p *Partial) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(p); err != nil {
		f.Close()
		return fmt.Errorf("partial: encoding %s: %w", path, err)
	}
	return f.Close()
}

// ReadFile loads a Partial written by WriteFile, rejecting unsupported
// schema versions.
func ReadFile(path string) (*Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var p Partial
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("partial: decoding %s: %w", path, err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("partial: %s has version %d (this build reads %d)", path, p.Version, Version)
	}
	return &p, nil
}
