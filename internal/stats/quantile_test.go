package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestP2SmallSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Error("empty estimator should return 0")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("single-sample value = %v", e.Value())
	}
	e.Add(20)
	v := e.Value()
	if v < 10 || v > 20 {
		t.Errorf("two-sample median = %v", v)
	}
}

func TestP2MedianUniform(t *testing.T) {
	e := NewP2Quantile(0.5)
	src := rng.New(1)
	for i := 0; i < 50_000; i++ {
		e.Add(src.Float64())
	}
	if got := e.Value(); math.Abs(got-0.5) > 0.02 {
		t.Errorf("uniform median estimate = %v", got)
	}
	if e.N() != 50_000 {
		t.Errorf("N = %d", e.N())
	}
}

func TestP2TailQuantiles(t *testing.T) {
	src := rng.New(2)
	e90 := NewP2Quantile(0.9)
	e10 := NewP2Quantile(0.1)
	for i := 0; i < 50_000; i++ {
		x := src.Float64()
		e90.Add(x)
		e10.Add(x)
	}
	if got := e90.Value(); math.Abs(got-0.9) > 0.03 {
		t.Errorf("p90 estimate = %v", got)
	}
	if got := e10.Value(); math.Abs(got-0.1) > 0.03 {
		t.Errorf("p10 estimate = %v", got)
	}
}

func TestP2NormalDistribution(t *testing.T) {
	src := rng.New(3)
	e := NewP2Quantile(0.75)
	var exact []float64
	for i := 0; i < 20_000; i++ {
		x := src.NormRange(100, 15)
		e.Add(x)
		exact = append(exact, x)
	}
	sort.Float64s(exact)
	want := percentileSorted(exact, 75)
	if math.Abs(e.Value()-want) > 1.0 {
		t.Errorf("p75 estimate = %v, exact %v", e.Value(), want)
	}
}

func TestP2ExtremeTargetsClamped(t *testing.T) {
	lo := NewP2Quantile(0)
	hi := NewP2Quantile(1)
	src := rng.New(4)
	for i := 0; i < 1000; i++ {
		x := src.Float64()
		lo.Add(x)
		hi.Add(x)
	}
	if lo.Value() > 0.1 {
		t.Errorf("q≈0 estimate = %v", lo.Value())
	}
	if hi.Value() < 0.9 {
		t.Errorf("q≈1 estimate = %v", hi.Value())
	}
}

func TestP2MonotoneStream(t *testing.T) {
	e := NewP2Quantile(0.5)
	for i := 1; i <= 1001; i++ {
		e.Add(float64(i))
	}
	if got := e.Value(); math.Abs(got-501) > 25 {
		t.Errorf("median of 1..1001 = %v", got)
	}
}

func TestQuantileBand(t *testing.T) {
	b := NewQuantileBand(0.1, 0.5, 0.9)
	if b.N() != 0 {
		t.Error("empty band N != 0")
	}
	src := rng.New(5)
	for i := 0; i < 30_000; i++ {
		b.Add(src.Float64())
	}
	vals := b.Values()
	if len(vals) != 3 {
		t.Fatalf("band values = %d", len(vals))
	}
	if !(vals[0] < vals[1] && vals[1] < vals[2]) {
		t.Errorf("band not ordered: %v", vals)
	}
	if math.Abs(vals[1]-0.5) > 0.03 {
		t.Errorf("band median = %v", vals[1])
	}
	if b.N() != 30_000 {
		t.Errorf("band N = %d", b.N())
	}
	var empty QuantileBand
	if empty.N() != 0 {
		t.Error("zero band N != 0")
	}
}
