package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0.5, 1.5, 1.6, 9.99, -1, 15} {
		h.Add(x)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Errorf("out of range = %d, %d", under, over)
	}
	lo, hi := h.BinBounds(3)
	if lo != 3 || hi != 4 {
		t.Errorf("bin 3 bounds = %v, %v", lo, hi)
	}
	if got := h.Mean(); math.Abs(got-(0.5+1.5+1.6+9.99-1+15)/6) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramEdgeValueGoesToLastBin(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(0.9999999999999999) // rounds to 1.0 in the bin computation
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	_, over := h.OutOfRange()
	if total+over != 1 {
		t.Error("edge value lost")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	src := rng.New(1)
	var exact []float64
	for i := 0; i < 50_000; i++ {
		x := src.Range(0, 100)
		h.Add(x)
		exact = append(exact, x)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.Quantile(q)
		want, _ := Percentile(exact, q*100)
		if math.Abs(got-want) > 1.5 {
			t.Errorf("quantile(%v) = %v, exact %v", q, got, want)
		}
	}
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("quantile should clamp below 0")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	b.Add(-3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 4 || a.Counts[0] != 2 || a.Counts[4] != 1 {
		t.Errorf("merged = %+v", a)
	}
	under, _ := a.OutOfRange()
	if under != 1 {
		t.Error("merge lost underflow")
	}
	c := NewHistogram(0, 20, 5)
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for i := 0; i < 8; i++ {
		h.Add(1.5)
	}
	h.Add(2.5)
	out := h.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Error("modal bin should be full width")
	}
	if strings.Count(lines[2], "#") >= 10 {
		t.Error("non-modal bin should be shorter")
	}
	if h.Render(0) == "" {
		t.Error("zero width should default, not vanish")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 10) },
		func() { NewHistogram(10, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
