package stats

import "sort"

// P2Quantile is a streaming quantile estimator implementing the P²
// algorithm (Jain & Chlamtac, 1985): it tracks a single quantile of an
// unbounded stream with O(1) memory by maintaining five markers whose
// positions are adjusted with piecewise-parabolic interpolation.
//
// The KPI and mobility analyzers use it to expose the percentile bands
// the paper draws (e.g. "the metrics' distribution has little variance
// in all regions") without retaining per-entity samples.
type P2Quantile struct {
	p       float64 // target quantile in (0, 1)
	n       int     // observations seen
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	desired [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments per observation
	initial []float64  // first five observations, before steady state
}

// NewP2Quantile returns an estimator for the q-th quantile (0 < q < 1).
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 {
		q = 0.0001
	}
	if q >= 1 {
		q = 0.9999
	}
	e := &P2Quantile{p: q}
	e.desired = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	e.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return e
}

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if e.n <= 5 {
		e.initial = append(e.initial, x)
		if e.n == 5 {
			sort.Float64s(e.initial)
			for i := 0; i < 5; i++ {
				e.heights[i] = e.initial[i]
				e.pos[i] = float64(i + 1)
			}
			e.initial = nil
		}
		return
	}

	// Locate the cell containing x and update extreme heights.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < e.heights[i] {
				k = i - 1
				break
			}
		}
	}

	// Shift positions of markers above the cell.
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.desired[i] += e.incr[i]
	}

	// Adjust the three interior markers if they drifted.
	for i := 1; i < 4; i++ {
		d := e.desired[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic computes the P² piecewise-parabolic height prediction.
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.heights[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.heights[i] + d*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// N returns the number of observations fed.
func (e *P2Quantile) N() int { return e.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to an exact small-sample quantile.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		cp := append([]float64(nil), e.initial...)
		sort.Float64s(cp)
		return percentileSorted(cp, e.p*100)
	}
	return e.heights[2]
}

// QuantileBand tracks a fixed set of quantiles of one stream; it is the
// streaming counterpart of NewBand for analyzers that cannot retain all
// samples.
type QuantileBand struct {
	qs   []float64
	ests []*P2Quantile
}

// NewQuantileBand returns a band tracking the given quantiles (0–1).
func NewQuantileBand(qs ...float64) *QuantileBand {
	b := &QuantileBand{qs: qs}
	for _, q := range qs {
		b.ests = append(b.ests, NewP2Quantile(q))
	}
	return b
}

// Add feeds one observation to every tracked quantile.
func (b *QuantileBand) Add(x float64) {
	for _, e := range b.ests {
		e.Add(x)
	}
}

// Values returns the current estimates, in the order the quantiles were
// given.
func (b *QuantileBand) Values() []float64 {
	out := make([]float64, len(b.ests))
	for i, e := range b.ests {
		out[i] = e.Value()
	}
	return out
}

// N returns the number of observations fed.
func (b *QuantileBand) N() int {
	if len(b.ests) == 0 {
		return 0
	}
	return b.ests[0].N()
}
