package stats

import (
	"math"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x", 5)
	if s.Len() != 5 || s.Label != "x" {
		t.Fatalf("NewSeries = %+v", s)
	}
	s.Values = []float64{3, 1, 4, 1, 5}
	if got := s.At(2); got != 4 {
		t.Errorf("At(2) = %v", got)
	}
	if got := s.At(-1); got != 0 {
		t.Errorf("At(-1) = %v", got)
	}
	if got := s.At(99); got != 0 {
		t.Errorf("At(99) = %v", got)
	}
	min, mi := s.Min()
	if min != 1 || mi != 1 {
		t.Errorf("Min = %v at %d", min, mi)
	}
	max, xi := s.Max()
	if max != 5 || xi != 4 {
		t.Errorf("Max = %v at %d", max, xi)
	}
	var empty Series
	if _, i := empty.Min(); i != -1 {
		t.Error("empty Min index should be -1")
	}
}

func TestWeeklyMedians(t *testing.T) {
	s := NewSeries("w", 14)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	wm := s.WeeklyMedians()
	if wm.Len() != 2 {
		t.Fatalf("weeks = %d", wm.Len())
	}
	if wm.Values[0] != 3 || wm.Values[1] != 10 {
		t.Errorf("weekly medians = %v", wm.Values)
	}
	// Ragged tail week.
	s2 := Series{Label: "r", Values: []float64{1, 1, 1, 1, 1, 1, 1, 9, 11}}
	wm2 := s2.WeeklyMedians()
	if wm2.Len() != 2 || wm2.Values[1] != 10 {
		t.Errorf("ragged weekly medians = %v", wm2.Values)
	}
}

func TestWeeklyMeans(t *testing.T) {
	s := Series{Label: "m", Values: []float64{1, 2, 3, 4, 5, 6, 7, 100}}
	wm := s.WeeklyMeans()
	if wm.Values[0] != 4 || wm.Values[1] != 100 {
		t.Errorf("weekly means = %v", wm.Values)
	}
}

func TestDeltaVsBaseline(t *testing.T) {
	s := Series{Label: "d", Values: []float64{10, 10, 20, 5}}
	d := s.DeltaVsBaseline(2, Mean)
	want := []float64{0, 0, 100, -50}
	for i := range want {
		if math.Abs(d.Values[i]-want[i]) > 1e-9 {
			t.Errorf("delta[%d] = %v, want %v", i, d.Values[i], want[i])
		}
	}
	// Baseline window longer than the series degrades gracefully.
	short := Series{Values: []float64{4, 8}}
	d2 := short.DeltaVsBaseline(10, Mean)
	if d2.Values[1] != 100.0/3*1 { // baseline = 6, 8 vs 6 = +33.3%
		if math.Abs(d2.Values[1]-33.333333) > 1e-3 {
			t.Errorf("short delta = %v", d2.Values)
		}
	}
}

func TestSmooth(t *testing.T) {
	s := Series{Values: []float64{0, 0, 9, 0, 0}}
	sm := s.Smooth(3)
	if sm.Values[2] != 3 {
		t.Errorf("smoothed centre = %v", sm.Values[2])
	}
	if sm.Values[0] != 0 {
		t.Errorf("smoothed edge = %v", sm.Values[0])
	}
	// Window 1 (and even windows round up) keep length.
	if got := s.Smooth(0); got.Len() != s.Len() {
		t.Error("Smooth changed length")
	}
	if got := s.Smooth(2); got.Len() != s.Len() {
		t.Error("even window Smooth changed length")
	}
}

func TestBand(t *testing.T) {
	samples := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{},
		{5, 5, 5},
	}
	b := NewBand("b", samples)
	if b.P50[0] != 5.5 {
		t.Errorf("P50[0] = %v", b.P50[0])
	}
	if b.P10[0] >= b.P90[0] {
		t.Error("band percentiles not ordered")
	}
	if b.P50[1] != 0 {
		t.Error("empty sample point should stay zero")
	}
	if b.P10[2] != 5 || b.P90[2] != 5 {
		t.Error("constant sample band wrong")
	}
	med := b.Median()
	if med.Values[0] != 5.5 || med.Label != "b" {
		t.Error("Median() track wrong")
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.Title = "t"
	tb.AddRow("b", []float64{1})
	tb.AddRow("a", []float64{2})
	if r, ok := tb.Row("a"); !ok || r.Values[0] != 2 {
		t.Error("Row lookup failed")
	}
	if _, ok := tb.Row("zz"); ok {
		t.Error("missing row should not be found")
	}
	tb.SortRows()
	if tb.Rows[0].Label != "a" {
		t.Error("SortRows did not sort")
	}
	if got := tb.MustRow("b"); got.Values[0] != 1 {
		t.Error("MustRow wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRow should panic on missing row")
		}
	}()
	tb.MustRow("nope")
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.N() != 0 {
		t.Error("zero accumulator not neutral")
	}
	for _, x := range []float64{2, 4, 6} {
		a.Add(x)
	}
	if a.N() != 3 || a.Sum() != 12 || a.Mean() != 4 {
		t.Errorf("accumulator = n%d sum%v mean%v", a.N(), a.Sum(), a.Mean())
	}
	if a.Min() != 2 || a.Max() != 6 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	if math.Abs(a.Variance()-8.0/3) > 1e-9 {
		t.Errorf("variance = %v", a.Variance())
	}
	var single Accumulator
	single.Add(5)
	if single.Variance() != 0 {
		t.Error("single-observation variance should be 0")
	}
}
