// Package stats implements the statistical primitives the paper's analysis
// relies on: means, medians and percentiles, Pearson correlation, ordinary
// least squares with r², and the "delta variation percentage versus the
// week-9 baseline" transformation used in every figure.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by reductions over empty datasets.
var ErrEmpty = errors.New("stats: empty dataset")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks; xs need not be sorted. It returns
// ErrEmpty for an empty slice.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	return percentileSelect(cp, p), nil
}

// percentileSorted assumes xs is sorted ascending and non-empty; it is
// the closed form percentileSelect reproduces without the sort.
func percentileSorted(xs []float64, p float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// fless is the ordering sort.Float64s used: ascending with NaN smaller
// than everything. The selection below must reproduce it exactly so the
// order statistics — and every percentile built from them — stay
// bit-identical to the sort-based implementation they replaced.
func fless(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// selectKth partially orders xs so that xs[k] holds the k-th order
// statistic, everything before it is ≤ and everything after is ≥
// (Hoare-style 3-way quickselect, median-of-three pivot, insertion sort
// below a small cutoff). O(n) expected, allocation-free — the KPI fold
// calls this per day per metric, where the full sort it replaced was
// the single largest profile entry of a sweep.
func selectKth(xs []float64, k int) {
	lo, hi := 0, len(xs) // select within xs[lo:hi)
	for hi-lo > 16 {
		// Median-of-three pivot value.
		a, b, c := xs[lo], xs[lo+(hi-lo)/2], xs[hi-1]
		if fless(b, a) {
			a, b = b, a
		}
		if fless(c, b) { // median of {a ≤ b, c} is max(a, c)
			b = c
			if fless(b, a) {
				b = a
			}
		}
		p := b
		// 3-way partition: [lo,lt) < p, [lt,gt) == p, [gt,hi) > p.
		lt, i, gt := lo, lo, hi
		for i < gt {
			switch {
			case fless(xs[i], p):
				xs[lt], xs[i] = xs[i], xs[lt]
				lt++
				i++
			case fless(p, xs[i]):
				gt--
				xs[i], xs[gt] = xs[gt], xs[i]
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return // xs[k] sits in the == band
		}
	}
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && fless(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// percentileSelect computes the interpolated percentile of cp in place
// (cp is scratch, non-empty): the two closest-rank order statistics are
// located by selection instead of a full sort, with results identical
// to percentile-of-sorted.
func percentileSelect(cp []float64, p float64) float64 {
	if len(cp) == 1 {
		return cp[0]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	selectKth(cp, lo)
	x := cp[lo]
	if lo == hi {
		return x
	}
	// hi == lo+1, and after selectKth everything right of lo is ≥ the
	// k-th statistic: the (lo+1)-th is the minimum of that suffix.
	y := cp[lo+1]
	for _, v := range cp[lo+2:] {
		if fless(v, y) {
			y = v
		}
	}
	frac := rank - float64(lo)
	return x*(1-frac) + y*frac
}

// Median returns the 50th percentile of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	m, err := Percentile(xs, 50)
	if err != nil {
		return 0
	}
	return m
}

// Quantiles computes several percentiles of xs over one scratch copy.
// Each percentile is located by selection rather than a full sort; the
// partial order earlier selections leave behind accelerates the later
// ones. It returns ErrEmpty for an empty slice.
func Quantiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		out[i] = percentileSelect(cp, p)
	}
	return out, nil
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns ErrEmpty if the slices are empty or of different lengths, and
// 0 if either variable has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearFit holds the result of an ordinary-least-squares fit y = a + b·x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int     // number of points
}

// OLS fits y = a + b·x by ordinary least squares and reports r², as used
// for the census validation in Fig. 2 (r² = 0.955 in the paper).
func OLS(xs, ys []float64) (LinearFit, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x variance")
	}
	b := sxy / sxx
	fit := LinearFit{Intercept: my - b*mx, Slope: b, N: len(xs)}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// DeltaPercent returns the percentage change of value with respect to
// baseline, the transformation every figure in the paper applies:
// 100 · (value − baseline) / baseline. A zero baseline yields 0.
func DeltaPercent(value, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (value - baseline) / baseline
}

// DeltaPercentSeries maps DeltaPercent over a slice against one baseline.
func DeltaPercentSeries(values []float64, baseline float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = DeltaPercent(v, baseline)
	}
	return out
}

// MinMax returns the smallest and largest element of xs. It returns
// ErrEmpty for an empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// ArgMin returns the index of the smallest element, or -1 for empty xs.
func ArgMin(xs []float64) int {
	idx := -1
	for i, x := range xs {
		if idx < 0 || x < xs[idx] {
			idx = i
		}
	}
	return idx
}

// ArgMax returns the index of the largest element, or -1 for empty xs.
func ArgMax(xs []float64) int {
	idx := -1
	for i, x := range xs {
		if idx < 0 || x > xs[idx] {
			idx = i
		}
	}
	return idx
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
