package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMean(t *testing.T) {
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, %v; want %v", c.p, got, err, c.want)
		}
	}
	// Interpolation between ranks.
	got, _ := Percentile([]float64{10, 20}, 50)
	if !almostEq(got, 15, 1e-12) {
		t.Errorf("interp percentile = %v, want 15", got)
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("expected ErrEmpty, got %v", err)
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	qs, err := Quantiles(xs, 10, 50, 90)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(qs[1], 5.5, 1e-12) {
		t.Errorf("median via Quantiles = %v", qs[1])
	}
	if qs[0] >= qs[1] || qs[1] >= qs[2] {
		t.Errorf("quantiles not monotone: %v", qs)
	}
	if _, err := Quantiles(nil, 50); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, _ := Percentile(clean, p1)
		v2, _ := Percentile(clean, p2)
		return v1 <= v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if r, _ := Pearson(xs, xs); !almostEq(r, 1, 1e-12) {
		t.Errorf("self correlation = %v", r)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if r, _ := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Errorf("anti correlation = %v", r)
	}
	if r, _ := Pearson(xs, []float64{7, 7, 7, 7, 7}); r != 0 {
		t.Errorf("zero-variance correlation = %v", r)
	}
	if _, err := Pearson(xs, []float64{1}); err != ErrEmpty {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Error("empty should error")
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				return true
			}
			// Bound magnitudes to avoid float overflow artifacts.
			if math.Abs(p[0]) > 1e100 || math.Abs(p[1]) > 1e100 {
				return true
			}
			xs[i], ys[i] = p[0], p[1]
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return false
		}
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOLS(t *testing.T) {
	// Perfect line y = 3 + 2x.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	fit, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-9) || !almostEq(fit.Intercept, 3, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Errorf("r² = %v, want 1", fit.R2)
	}
	// Noisy line has r² < 1 but positive slope.
	ys2 := []float64{3, 6, 6, 10, 10}
	fit2, _ := OLS(xs, ys2)
	if fit2.R2 >= 1 || fit2.R2 <= 0.5 {
		t.Errorf("noisy r² = %v", fit2.R2)
	}
	if _, err := OLS([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
	if _, err := OLS([]float64{1}, []float64{2}); err != ErrEmpty {
		t.Error("short input should be ErrEmpty")
	}
}

func TestDeltaPercent(t *testing.T) {
	if got := DeltaPercent(110, 100); !almostEq(got, 10, 1e-12) {
		t.Errorf("DeltaPercent = %v", got)
	}
	if got := DeltaPercent(75, 100); !almostEq(got, -25, 1e-12) {
		t.Errorf("DeltaPercent = %v", got)
	}
	if got := DeltaPercent(5, 0); got != 0 {
		t.Errorf("zero baseline should yield 0, got %v", got)
	}
	s := DeltaPercentSeries([]float64{100, 50, 150}, 100)
	want := []float64{0, -50, 50}
	for i := range want {
		if !almostEq(s[i], want[i], 1e-12) {
			t.Errorf("series[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	min, max, err := MinMax(xs)
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v, %v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
	if got := ArgMin(xs); got != 1 {
		t.Errorf("ArgMin = %d", got)
	}
	if got := ArgMax(xs); got != 2 {
		t.Errorf("ArgMax = %d", got)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("Arg* of empty should be -1")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-2, 0, 3) != 0 || Clamp(1, 0, 3) != 1 {
		t.Error("Clamp misbehaves")
	}
}

// TestPercentileSelectMatchesSort pins the selection-based percentile
// machinery to the sort-based definition it replaced: for adversarial
// inputs (duplicates, constants, NaNs, already-sorted, reversed) and a
// deterministic random sweep, every percentile must be bit-identical to
// percentile-of-sorted (NaN treated as smaller than every number, as
// sort.Float64s orders it).
func TestPercentileSelectMatchesSort(t *testing.T) {
	ref := func(xs []float64, p float64) float64 {
		cp := make([]float64, len(xs))
		copy(cp, xs)
		sort.Float64s(cp)
		if len(cp) == 1 {
			return cp[0]
		}
		rank := p / 100 * float64(len(cp)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			return cp[lo]
		}
		frac := rank - float64(lo)
		return cp[lo]*(1-frac) + cp[hi]*frac
	}
	nan := math.NaN()
	cases := [][]float64{
		{1},
		{2, 1},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18},
		{18, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		{nan, 3, 1, nan, 2},
		{nan, nan, nan},
		{0, -0.0, 1e-300, -1e300, math.Inf(1), math.Inf(-1)},
	}
	// Deterministic LCG sweep: sizes crossing the insertion cutoff, heavy
	// duplicate mass.
	state := uint64(1)
	next := func() uint64 { state = state*6364136223846793005 + 1442695040888963407; return state }
	for size := 1; size <= 257; size += 16 {
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = float64(next()%23) / 7
		}
		cases = append(cases, xs)
	}
	ps := []float64{0, 3.7, 10, 25, 50, 74.9, 90, 99, 100}
	for ci, xs := range cases {
		orig := make([]float64, len(xs))
		copy(orig, xs)
		got, err := Quantiles(xs, ps...)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for pi, p := range ps {
			want := ref(orig, p)
			same := got[pi] == want || (math.IsNaN(got[pi]) && math.IsNaN(want))
			if !same {
				t.Errorf("case %d p=%v: Quantiles = %v, want %v", ci, p, got[pi], want)
			}
			one, err := Percentile(orig, p)
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			same = one == want || (math.IsNaN(one) && math.IsNaN(want))
			if !same {
				t.Errorf("case %d p=%v: Percentile = %v, want %v", ci, p, one, want)
			}
		}
		for i := range xs {
			same := xs[i] == orig[i] || (math.IsNaN(xs[i]) && math.IsNaN(orig[i]))
			if !same {
				t.Fatalf("case %d: input mutated at %d", ci, i)
			}
		}
	}
}
