package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over a known value range, used by
// the reporting tools to show metric distributions (e.g. per-user daily
// gyration before and after the lockdown).
type Histogram struct {
	Min, Max float64
	Counts   []int64
	under    int64 // observations below Min
	over     int64 // observations at or above Max
	n        int64
	sum      float64
}

// NewHistogram builds a histogram with bins over [min, max). It panics
// on a non-positive bin count or an empty range — both are programming
// errors of the caller.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: non-positive histogram bins")
	}
	if !(max > min) {
		panic("stats: empty histogram range")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, bins)}
}

// Add records an observation; out-of-range values are tallied in the
// underflow/overflow buckets.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		h.over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// N returns the total observations, including out-of-range ones.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the running mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// OutOfRange returns the underflow and overflow tallies.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// BinBounds returns the half-open interval covered by bin i.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + float64(i)*w, h.Min + float64(i+1)*w
}

// Quantile estimates the q-th quantile (0–1) from the binned counts by
// linear interpolation within the containing bin. Out-of-range mass is
// attributed to the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.Min
	}
	for i, c := range h.Counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			lo, hi := h.BinBounds(i)
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.Max
}

// Merge adds another histogram's tallies; the two must share bounds and
// bin counts.
func (h *Histogram) Merge(other *Histogram) error {
	if other.Min != h.Min || other.Max != h.Max || len(other.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging incompatible histograms [%v,%v)x%d vs [%v,%v)x%d",
			h.Min, h.Max, len(h.Counts), other.Min, other.Max, len(other.Counts))
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.n += other.n
	h.sum += other.sum
	return nil
}

// Render draws the histogram as rows of '#' bars, width chars wide at
// the modal bin; a compact terminal visualization for the report tools.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var max int64 = 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo, hi := h.BinBounds(i)
		bar := int(math.Round(float64(c) / float64(max) * float64(width)))
		fmt.Fprintf(&b, "%8.2f-%-8.2f %-*s %d\n", lo, hi, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
