package stats

import (
	"fmt"
	"sort"
)

// Series is a labelled daily time series over the study window; it is the
// common currency between the KPI/mobility pipelines and the figure
// harness. Values are typically delta-variation percentages.
type Series struct {
	Label  string
	Values []float64
}

// NewSeries returns a Series with n zero values.
func NewSeries(label string, n int) Series {
	return Series{Label: label, Values: make([]float64, n)}
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.Values) }

// At returns the i-th value; out-of-range indices yield 0.
func (s Series) At(i int) float64 {
	if i < 0 || i >= len(s.Values) {
		return 0
	}
	return s.Values[i]
}

// Min returns the smallest value and its index (0, -1 when empty).
func (s Series) Min() (float64, int) {
	i := ArgMin(s.Values)
	if i < 0 {
		return 0, -1
	}
	return s.Values[i], i
}

// Max returns the largest value and its index (0, -1 when empty).
func (s Series) Max() (float64, int) {
	i := ArgMax(s.Values)
	if i < 0 {
		return 0, -1
	}
	return s.Values[i], i
}

// WeeklyMedians collapses a daily series over the study window into one
// median value per week (7-day blocks), mirroring the paper's weekly plots
// ("we show the median values for the delta variation percentage for each
// metric over one week").
func (s Series) WeeklyMedians() Series {
	nWeeks := (len(s.Values) + 6) / 7
	out := NewSeries(s.Label, nWeeks)
	for w := 0; w < nWeeks; w++ {
		lo := w * 7
		hi := lo + 7
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		out.Values[w] = Median(s.Values[lo:hi])
	}
	return out
}

// WeeklyMeans collapses a daily series into per-week means; used by the
// mobility figures that plot average daily values.
func (s Series) WeeklyMeans() Series {
	nWeeks := (len(s.Values) + 6) / 7
	out := NewSeries(s.Label, nWeeks)
	for w := 0; w < nWeeks; w++ {
		lo := w * 7
		hi := lo + 7
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		out.Values[w] = Mean(s.Values[lo:hi])
	}
	return out
}

// DeltaVsBaseline converts the series to delta-variation percentages
// against the aggregate of its first baselineDays points, using agg
// (typically Mean or Median) as the baseline reducer.
func (s Series) DeltaVsBaseline(baselineDays int, agg func([]float64) float64) Series {
	if baselineDays > len(s.Values) {
		baselineDays = len(s.Values)
	}
	base := agg(s.Values[:baselineDays])
	out := NewSeries(s.Label, len(s.Values))
	for i, v := range s.Values {
		out.Values[i] = DeltaPercent(v, base)
	}
	return out
}

// Smooth returns a centred moving average of the series with the given
// odd window width (even widths are rounded up). It is used only for
// presentation, never for the statistics the tests assert on.
func (s Series) Smooth(window int) Series {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := NewSeries(s.Label, len(s.Values))
	for i := range s.Values {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		out.Values[i] = Mean(s.Values[lo:hi])
	}
	return out
}

// Band is a per-point distribution summary (percentile band) of a metric
// across a population of entities (users, cells), as drawn in the paper's
// shaded figures.
type Band struct {
	Label                   string
	P10, P25, P50, P75, P90 []float64
}

// NewBand builds a Band from per-point samples: samples[i] holds the
// population values at point i.
func NewBand(label string, samples [][]float64) Band {
	n := len(samples)
	b := Band{
		Label: label,
		P10:   make([]float64, n),
		P25:   make([]float64, n),
		P50:   make([]float64, n),
		P75:   make([]float64, n),
		P90:   make([]float64, n),
	}
	for i, xs := range samples {
		if len(xs) == 0 {
			continue
		}
		qs, err := Quantiles(xs, 10, 25, 50, 75, 90)
		if err != nil {
			continue
		}
		b.P10[i], b.P25[i], b.P50[i], b.P75[i], b.P90[i] = qs[0], qs[1], qs[2], qs[3], qs[4]
	}
	return b
}

// Median returns the P50 track as a Series.
func (b Band) Median() Series { return Series{Label: b.Label, Values: b.P50} }

// Table is a labelled rectangular result (rows × columns) used by the
// harness to print figure data: one row per entity (region, cluster,
// district, county), one column per week or day.
type Table struct {
	Title    string
	ColNames []string
	Rows     []TableRow
}

// TableRow is one labelled row of a Table.
type TableRow struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values []float64) {
	t.Rows = append(t.Rows, TableRow{Label: label, Values: values})
}

// Row returns the row with the given label, or false.
func (t *Table) Row(label string) (TableRow, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return TableRow{}, false
}

// MustRow returns the row with the given label and panics if absent; for
// use in experiments where the row set is fixed by construction.
func (t *Table) MustRow(label string) TableRow {
	r, ok := t.Row(label)
	if !ok {
		panic(fmt.Sprintf("stats: table %q has no row %q", t.Title, label))
	}
	return r
}

// SortRows orders rows by label for stable output.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].Label < t.Rows[j].Label })
}

// Accumulator incrementally collects float64 observations and reduces
// them without retaining more memory than needed; handy for per-cell
// streaming aggregation.
type Accumulator struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records an observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	a.sumSq += x * x
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Sum returns the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the running population variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sumSq/float64(a.n) - m*m
	if v < 0 {
		v = 0
	}
	return v
}
