package pandemic

import (
	"testing"

	"repro/internal/census"
	"repro/internal/timegrid"
)

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	want := Default()
	got, err := FromSnapshot(want.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	county := &census.County{Name: "Inner London"}
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d++ {
		if got.Activity(d) != want.Activity(d) ||
			got.RegionalActivity(d, county) != want.RegionalActivity(d, county) ||
			got.VoiceFactor(d) != want.VoiceFactor(d) ||
			got.DataFactor(d) != want.DataFactor(d) ||
			got.HomeCellularFactor(d) != want.HomeCellularFactor(d) ||
			got.ThrottleFactor(d) != want.ThrottleFactor(d) ||
			got.CumulativeCases(d) != want.CumulativeCases(d) {
			t.Fatalf("factor differs at day %d", d)
		}
	}
	for d := timegrid.SimDay(0); d < timegrid.SimDays; d++ {
		if got.RelocationActive(d) != want.RelocationActive(d) {
			t.Fatalf("relocation window differs at day %d", d)
		}
	}
	dist := &census.District{SeasonalShare: 0.2}
	if got.RelocationProb(dist) != want.RelocationProb(dist) {
		t.Fatal("relocation probability differs")
	}
}

func TestSnapshotNull(t *testing.T) {
	sn := NoPandemic().Snapshot()
	if !sn.Null {
		t.Fatal("null scenario snapshot not marked null")
	}
	s, err := FromSnapshot(sn)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Null() {
		t.Fatal("null snapshot did not rebuild the null scenario")
	}
}

func TestSnapshotRelocationToggle(t *testing.T) {
	noReloc, err := NewBuilder().Activity(0, 1).Activity(30, 0.5).Build()
	if err != nil {
		t.Fatal(err)
	}
	if noReloc.Snapshot().Relocation {
		t.Error("builder scenario without relocation snapshots as relocating")
	}
	if noReloc.RelocationActive(timegrid.LockdownStart.ToSimDay()) {
		t.Error("relocation-off scenario must never activate relocation")
	}
	reloc, err := FromSnapshot(Snapshot{
		Activity:   []AnchorPoint{{Day: 0, Value: 1}, {Day: 30, Value: 0.5}},
		Relocation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reloc.RelocationActive(timegrid.LockdownStart.ToSimDay()) {
		t.Error("relocation-on scenario should activate relocation by the lockdown")
	}
}

func TestBuilderAnchorAt(t *testing.T) {
	s, err := NewBuilder().
		AnchorAt(CurveActivity, 0, 1).
		AnchorAt(CurveActivity, 10.5, 0.5).
		AnchorAt(CurveVoice, 20, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Fractional anchor days interpolate exactly like whole ones.
	if got := s.Activity(10); got <= 0.5 || got >= 0.55 {
		t.Errorf("activity(10) = %v, want just above 0.5", got)
	}
	if got := s.VoiceFactor(30); got != 2 {
		t.Errorf("voice(30) = %v", got)
	}
	if _, err := NewBuilder().AnchorAt("no-such-curve", 0, 1).Build(); err == nil {
		t.Error("unknown curve name accepted")
	}
	if _, err := NewBuilder().AnchorAt(CurveActivity, float64(timegrid.StudyDays), 1).Build(); err == nil {
		t.Error("out-of-window fractional day accepted")
	}
	if len(CurveNames()) != 5 {
		t.Error("expected five factor curves")
	}
}
