package pandemic

import (
	"testing"

	"repro/internal/census"
	"repro/internal/timegrid"
)

func TestActivityTimeline(t *testing.T) {
	s := Default()
	if got := s.Activity(0); got != 1 {
		t.Errorf("baseline activity = %v", got)
	}
	// Monotone decline from declaration to the week-14 trough.
	prev := s.Activity(timegrid.PandemicDeclared)
	for d := timegrid.PandemicDeclared; d <= 41; d++ {
		a := s.Activity(d)
		if a > prev+1e-9 {
			t.Fatalf("activity rose during the restriction ramp at day %d", d)
		}
		prev = a
	}
	// Ordering at milestones.
	if !(s.Activity(timegrid.WorkFromHomeAdvice) > s.Activity(timegrid.VenueClosures) &&
		s.Activity(timegrid.VenueClosures) > s.Activity(timegrid.LockdownStart)) {
		t.Error("milestone activities out of order")
	}
	// Trough below 0.5, mild relaxation afterwards.
	if s.Activity(41) > 0.5 {
		t.Errorf("trough activity = %v", s.Activity(41))
	}
	if s.Activity(timegrid.StudyDays-1) <= s.Activity(41) {
		t.Error("no relaxation by the end of the window")
	}
}

func TestRegionalRelaxation(t *testing.T) {
	s := Default()
	m := census.BuildUK(1)
	inner, _ := m.CountyByName("Inner London")
	gm, _ := m.CountyByName("Greater Manchester")
	late := timegrid.StudyDay((18-timegrid.FirstWeek)*7 + 2)
	if s.RegionalActivity(late, inner) <= s.RegionalActivity(late, gm) {
		t.Error("Inner London should relax more than Greater Manchester in week 18")
	}
	early := timegrid.LockdownStart
	if s.RegionalActivity(early, inner) != s.Activity(early) {
		t.Error("relax bonus must not apply before week 18")
	}
	// Bonus never pushes activity above baseline.
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d++ {
		if s.RegionalActivity(d, inner) > 1 {
			t.Fatalf("regional activity > 1 at day %d", d)
		}
	}
	if s.RegionalActivity(late, nil) != s.Activity(late) {
		t.Error("nil county should fall back to national")
	}
}

func TestActivityOnSimDay(t *testing.T) {
	s := Default()
	if got := s.ActivityOnSimDay(3, nil); got != 1 {
		t.Errorf("February activity = %v, want baseline", got)
	}
	sd := timegrid.LockdownStart
	if got := s.ActivityOnSimDay(sd.ToSimDay(), nil); got != s.Activity(sd) {
		t.Error("sim-day mapping inconsistent")
	}
}

func TestVoiceCurve(t *testing.T) {
	s := Default()
	if got := s.VoiceFactor(0); got != 1 {
		t.Errorf("baseline voice factor = %v", got)
	}
	w12 := timegrid.VenueClosures
	if got := s.VoiceFactor(w12); got < 2.2 || got > 2.6 {
		t.Errorf("week-12 voice factor = %v, want ≈2.4 (+140%%)", got)
	}
	// Peak right after lockdown, then decay.
	peak := s.VoiceFactor(timegrid.LockdownStart + 2)
	if peak < 2.4 || peak > 2.6 {
		t.Errorf("voice peak = %v, want ≈2.5", peak)
	}
	if s.VoiceFactor(timegrid.StudyDays-1) >= peak {
		t.Error("voice factor should decay after the peak")
	}
	if s.VoiceFactor(timegrid.StudyDays-1) < 1.5 {
		t.Error("voice stays well above baseline through May")
	}
}

func TestDataFactors(t *testing.T) {
	s := Default()
	if got := s.DataFactor(8); got <= 1.02 {
		t.Errorf("week-10 data factor = %v, want >1 (the +8%% news surge)", got)
	}
	if got := s.HomeCellularFactor(timegrid.LockdownStart + 10); got >= 0.9 {
		t.Errorf("lockdown home-cellular factor = %v, want WiFi offload", got)
	}
	if got := s.ThrottleFactor(0); got != 1 {
		t.Errorf("baseline throttle = %v", got)
	}
	if got := s.ThrottleFactor(timegrid.LockdownStart); got >= 0.95 {
		t.Errorf("post-closures throttle = %v, want content quality reduction", got)
	}
}

func TestCaseCurve(t *testing.T) {
	s := Default()
	// ≈1,000 cases at the declaration (Fig. 4's red line).
	decl := s.CumulativeCases(timegrid.PandemicDeclared)
	if decl < 200 || decl > 6000 {
		t.Errorf("cases at declaration = %v, want O(1000)", decl)
	}
	// Strictly increasing, sigmoid-bounded.
	prev := -1.0
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d++ {
		c := s.CumulativeCases(d)
		if c <= prev {
			t.Fatalf("case curve not increasing at day %d", d)
		}
		if c < 0 || c > 200_000 {
			t.Fatalf("case count %v out of bounds", c)
		}
		prev = c
	}
	if end := s.CumulativeCases(timegrid.StudyDays - 1); end < 100_000 {
		t.Errorf("end-of-window cases = %v, want >100k", end)
	}
}

func TestRelocationWindow(t *testing.T) {
	s := Default()
	if s.RelocationActive(0) {
		t.Error("relocation must not be active in February")
	}
	if s.RelocationActive(timegrid.SimDay(timegrid.StudyDayOffset)) {
		t.Error("relocation must not be active in week 9")
	}
	lockdownSim := timegrid.LockdownStart.ToSimDay()
	if !s.RelocationActive(lockdownSim) {
		t.Error("relocation should be active by the lockdown")
	}
	if !s.RelocationActive(timegrid.SimDays - 1) {
		t.Error("relocation persists through the window")
	}
}

func TestRelocationProb(t *testing.T) {
	s := Default()
	m := census.BuildUK(1)
	ec, _ := m.DistrictByCode("EC")
	sw, _ := m.DistrictByCode("SW")
	if s.RelocationProb(ec) <= s.RelocationProb(sw) {
		t.Error("EC (seasonal) should relocate more than SW")
	}
	if p := s.RelocationProb(ec); p <= 0 || p >= 1 {
		t.Errorf("EC relocation prob = %v", p)
	}
	if s.RelocationProb(nil) != 0 {
		t.Error("nil district should have zero probability")
	}
}

func TestWeekendAwayPattern(t *testing.T) {
	s := Default()
	m := census.BuildUK(1)
	inner, _ := m.CountyByName("Inner London")
	// Baseline weekends: substantial; after lockdown: nearly gone.
	base := s.WeekendAwayProb(5, inner) // Sat of week 9
	lock := s.WeekendAwayProb(40, inner)
	if base < 0.03 {
		t.Errorf("baseline weekend-away prob = %v", base)
	}
	if lock > base/4 {
		t.Errorf("lockdown weekend-away prob = %v vs baseline %v", lock, base)
	}
	// Pre-lockdown exodus weekend (21-22 Mar, days 26-27) exceeds the
	// rest of week 12.
	exodus := s.WeekendAwayProb(26, inner)
	midweek12 := s.WeekendAwayProb(23, inner)
	if exodus <= midweek12 {
		t.Error("21-22 March should show the exodus bump")
	}
	// Late-April weekend renewal.
	lateWeekend := s.WeekendAwayProb(68, inner) // Sat of week 18
	if lateWeekend <= lock {
		t.Error("weeks 18-19 weekends should recover somewhat")
	}
}

func TestExodusBias(t *testing.T) {
	s := Default()
	// 21 March (study day 26) biases East Sussex.
	if s.ExodusDestinationBias(26, "East Sussex") <= 1 {
		t.Error("East Sussex should be biased on the exodus weekend")
	}
	if s.ExodusDestinationBias(26, "Hampshire") != 1 {
		t.Error("Hampshire unbiased on the exodus weekend")
	}
	// Late-April weekends bias Hampshire and Kent.
	if s.ExodusDestinationBias(68, "Hampshire") <= 1 {
		t.Error("Hampshire should be biased on late-April weekends")
	}
	if s.ExodusDestinationBias(68, "Kent") <= 1 {
		t.Error("Kent should be biased on late-April weekends")
	}
	if s.ExodusDestinationBias(2, "East Sussex") != 1 {
		t.Error("no bias at baseline")
	}
}

func TestRelocationDestinations(t *testing.T) {
	names, weights := RelocationDestinations()
	if len(names) != len(weights) || len(names) < 8 {
		t.Fatalf("destinations: %d names, %d weights", len(names), len(weights))
	}
	if names[0] != "Hampshire" {
		t.Errorf("top destination = %s, want Hampshire (Fig. 7)", names[0])
	}
	var sum float64
	for _, w := range weights {
		if w <= 0 {
			t.Error("non-positive destination weight")
		}
		sum += w
	}
	if sum < 0.95 || sum > 1.05 {
		t.Errorf("destination weights sum to %v", sum)
	}
}

func TestNoPandemic(t *testing.T) {
	s := NoPandemic()
	if !s.Null() {
		t.Error("NoPandemic should be null")
	}
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d += 7 {
		if s.Activity(d) != 1 || s.VoiceFactor(d) != 1 || s.DataFactor(d) != 1 ||
			s.HomeCellularFactor(d) != 1 || s.ThrottleFactor(d) != 1 {
			t.Fatalf("null scenario factor != 1 at day %d", d)
		}
		if s.CumulativeCases(d) != 0 {
			t.Fatal("null scenario should have no cases")
		}
	}
	if s.RelocationActive(timegrid.SimDays - 1) {
		t.Error("null scenario should not relocate anyone")
	}
	if s.RelocationProb(&census.District{SeasonalShare: 0.5}) != 0 {
		t.Error("null scenario relocation prob should be 0")
	}
	if s.ExodusDestinationBias(26, "East Sussex") != 1 {
		t.Error("null scenario should not bias destinations")
	}
}

func TestInterpClamping(t *testing.T) {
	s := Default()
	// Before the first anchor and after the last: clamped, not
	// extrapolated.
	if s.Activity(-100) != s.Activity(0) {
		t.Error("activity should clamp below the range")
	}
	if s.Activity(10_000) != s.Activity(timegrid.StudyDays+1000) {
		t.Error("activity should clamp above the range")
	}
}
