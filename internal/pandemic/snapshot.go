package pandemic

// AnchorPoint is one exported (study day, value) control point of a
// factor curve. Day may be fractional.
type AnchorPoint struct {
	Day   float64
	Value float64
}

// Snapshot is a portable, fully exported description of a Scenario: the
// anchor curves, regional relaxation bonuses, case-curve parameters and
// the relocation toggle. It exists so declarative scenario formats
// (internal/scenario) can round-trip a Scenario losslessly —
// FromSnapshot(s.Snapshot()) reproduces bit-identical daily factors.
type Snapshot struct {
	// Null marks the no-pandemic scenario; all other fields are empty.
	Null bool

	Activity     []AnchorPoint
	Voice        []AnchorPoint
	Data         []AnchorPoint
	HomeCellular []AnchorPoint
	Throttle     []AnchorPoint

	RelaxBonus map[string]float64

	CasePlateau float64
	CaseGrowth  float64
	CaseMidDay  float64

	Relocation bool
}

// points converts an internal anchor slice to exported control points.
func points(as []anchor) []AnchorPoint {
	if len(as) == 0 {
		return nil
	}
	out := make([]AnchorPoint, len(as))
	for i, a := range as {
		out[i] = AnchorPoint{Day: a.day, Value: a.value}
	}
	return out
}

// Snapshot exports the scenario's full definition.
func (s *Scenario) Snapshot() Snapshot {
	if s.null {
		return Snapshot{Null: true}
	}
	sn := Snapshot{
		Activity:     points(s.activityAnchors),
		Voice:        points(s.voiceAnchors),
		Data:         points(s.dataAnchors),
		HomeCellular: points(s.homeCellularAnchors),
		Throttle:     points(s.throttleAnchors),
		CasePlateau:  s.caseL,
		CaseGrowth:   s.caseK,
		CaseMidDay:   s.caseMid,
		Relocation:   s.relocationScale > 0,
	}
	if len(s.relaxBonus) > 0 {
		sn.RelaxBonus = make(map[string]float64, len(s.relaxBonus))
		for county, bonus := range s.relaxBonus {
			sn.RelaxBonus[county] = bonus
		}
	}
	return sn
}

// FromSnapshot rebuilds a Scenario from its snapshot through the Builder
// (so snapshots get the same validation as hand-built scenarios). The
// result's daily factors are bit-identical to the snapshotted
// scenario's.
func FromSnapshot(sn Snapshot) (*Scenario, error) {
	if sn.Null {
		return NoPandemic(), nil
	}
	b := NewBuilder()
	for _, c := range []struct {
		name string
		pts  []AnchorPoint
	}{
		{CurveActivity, sn.Activity},
		{CurveVoice, sn.Voice},
		{CurveData, sn.Data},
		{CurveHomeCellular, sn.HomeCellular},
		{CurveThrottle, sn.Throttle},
	} {
		for _, p := range c.pts {
			b.AnchorAt(c.name, p.Day, p.Value)
		}
	}
	for county, bonus := range sn.RelaxBonus {
		b.RelaxBonus(county, bonus)
	}
	if sn.CaseGrowth != 0 || sn.CasePlateau != 0 {
		b.CaseCurveAt(sn.CasePlateau, sn.CaseGrowth, sn.CaseMidDay)
	}
	b.Relocation(sn.Relocation)
	return b.Build()
}
