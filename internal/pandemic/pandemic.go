// Package pandemic encodes the UK COVID-19 timeline of early 2020 and the
// population's behavioural response to it: the scenario that drives the
// mobility and traffic simulators.
//
// The paper measures the *consequences* of this behaviour on a real
// network; here the behaviour itself is the model input. The scenario is
// expressed as smooth daily factors (activity level, voice demand, WiFi
// offload, content throttling) anchored at the documented intervention
// dates — WHO pandemic declaration (11 Mar, week 11), work-from-home
// advice (16 Mar, week 12), venue closures (20 Mar, week 12), and the
// national lockdown (23 Mar, week 13) — plus the regional differences and
// the Inner-London relocation wave §3 reports. Everything downstream
// (gyration, entropy, KPIs) *emerges* from simulating agents under these
// factors; no figure value is hard-coded.
package pandemic

import (
	"math"

	"repro/internal/census"
	"repro/internal/timegrid"
)

// Scenario is a full behavioural scenario. The zero value is not useful;
// use Default (the calibrated COVID scenario), NoPandemic (a null
// scenario for ablations), a Builder (custom timelines), or FromSnapshot
// (declarative specs — see internal/scenario).
type Scenario struct {
	// activity anchors: piecewise-linear national out-of-home activity
	// level by study day, 1.0 = pre-pandemic normal.
	activityAnchors []anchor
	// voice anchors: per-user conversational voice demand multiplier.
	voiceAnchors []anchor
	// dataDemand anchors: per-user cellular data appetite multiplier
	// (captures the small week-10 news-driven surge).
	dataAnchors []anchor
	// wifiOffload anchors: fraction of at-home data demand kept on
	// cellular (1.0 = all of the usual share; lower = more WiFi).
	homeCellularAnchors []anchor
	// throttle anchors: per-user application-level throughput cap factor
	// (content providers reduced streaming quality from mid-March).
	throttleAnchors []anchor

	// relaxation bonuses applied to specific counties late in the window
	// (weeks 18–19: London and West Yorkshire relax; Greater Manchester
	// and West Midlands do not — §3.2).
	relaxBonus map[string]float64

	// caseCurve parameters (logistic cumulative confirmed cases).
	caseL, caseK float64
	caseMid      float64 // study day of the logistic midpoint

	// relocationScale is the scenario's relocation toggle: 1 when
	// seasonal residents relocate for the lockdown (the default
	// scenario), 0 when a Builder scenario opts out. Population
	// synthesis marks relocation *candidates* scenario-free
	// (SeasonalRelocationPropensity); this toggle, via
	// RelocationActive, decides whether the move ever happens.
	relocationScale float64

	null bool // NoPandemic scenario
}

// anchor is a (study day, value) control point.
type anchor struct {
	day   float64
	value float64
}

// interp evaluates the piecewise-linear curve at day d, clamping outside
// the anchor range.
func interp(anchors []anchor, d float64) float64 {
	if len(anchors) == 0 {
		return 1
	}
	if d <= anchors[0].day {
		return anchors[0].value
	}
	last := anchors[len(anchors)-1]
	if d >= last.day {
		return last.value
	}
	for i := 1; i < len(anchors); i++ {
		if d <= anchors[i].day {
			a, b := anchors[i-1], anchors[i]
			f := (d - a.day) / (b.day - a.day)
			return a.value + f*(b.value-a.value)
		}
	}
	return last.value
}

// day converts a calendar milestone to float for anchor building.
func dayf(d timegrid.StudyDay) float64 { return float64(d) }

// Default returns the calibrated COVID-19 scenario reproducing the UK
// timeline of the paper.
func Default() *Scenario {
	decl := dayf(timegrid.PandemicDeclared)  // 11 Mar
	wfh := dayf(timegrid.WorkFromHomeAdvice) // 16 Mar
	closures := dayf(timegrid.VenueClosures) // 20 Mar
	lockdown := dayf(timegrid.LockdownStart) // 23 Mar
	endW13 := dayf(timegrid.LockdownStart) + 6
	return &Scenario{
		activityAnchors: []anchor{
			{0, 1.00},        // week 9 baseline
			{decl, 0.97},     // distancing advice begins
			{wfh, 0.74},      // WFH recommendation (week 12: −20% gyration)
			{closures, 0.56}, // venues close
			{lockdown, 0.54}, // stay-at-home order
			{endW13, 0.44},   // steep drop through week 13 (−50% gyration)
			{41, 0.42},       // week 14 trough
			{48, 0.44},       // week 15: slight relaxation despite lockdown
			{62, 0.44},       // week 17
			{76, 0.44},       // week 19 (regional bonuses add the rebound)
		},
		voiceAnchors: []anchor{
			{0, 1.00},
			{6, 1.05},  // the call surge starts with week 10
			{8, 1.52},  // early week 10: interconnect pressure begins
			{13, 1.72}, // end week 10
			{20, 2.00}, // week 11
			{wfh, 2.15},
			{closures, 2.40},     // week 12 spike (+140%)
			{lockdown + 2, 2.50}, // peak ≈ +150% right after lockdown
			{41, 2.25},
			{55, 2.00},
			{76, 1.80},
		},
		dataAnchors: []anchor{
			{0, 1.00},
			{7, 1.10},  // week 10: +8% DL volume (news, uncertainty)
			{14, 1.06}, // week 11
			{closures, 1.00},
			{lockdown, 0.97},
			{76, 0.95},
		},
		homeCellularAnchors: []anchor{
			{0, 1.00},
			{wfh, 0.90},
			{lockdown, 0.78}, // confinement pushes data to residential WiFi
			{41, 0.74},
			{76, 0.76},
		},
		throttleAnchors: []anchor{
			{0, 1.00},
			{closures - 1, 1.00},
			{closures, 0.92}, // content providers reduce streaming quality
			{lockdown, 0.895},
			{76, 0.90},
		},
		relaxBonus: map[string]float64{
			"Inner London":   0.16,
			"Outer London":   0.14,
			"West Yorkshire": 0.16,
		},
		caseL:           200_000, // UK cumulative lab-confirmed cases plateau scale
		caseK:           0.18,    // ≈1,000 cases at the 11 March declaration
		caseMid:         45,      // early April midpoint
		relocationScale: 1,
	}
}

// NoPandemic returns the null scenario: all factors pinned at their
// baseline values. It is used for ablations and differential tests.
func NoPandemic() *Scenario { return &Scenario{null: true} }

// Null reports whether this is the no-pandemic scenario.
func (s *Scenario) Null() bool { return s.null }

// relaxWindowStart is the first day of week 18, when the paper observes
// regional differences in how restrictions are relaxed.
var relaxWindowStart = timegrid.StudyDay((18 - timegrid.FirstWeek) * 7)

// Activity returns the national out-of-home activity level for a study
// day (1.0 = pre-pandemic).
func (s *Scenario) Activity(d timegrid.StudyDay) float64 {
	if s.null {
		return 1
	}
	return interp(s.activityAnchors, float64(d))
}

// RegionalActivity returns the activity level for residents of the given
// county, applying the late-window regional relaxation bonuses.
func (s *Scenario) RegionalActivity(d timegrid.StudyDay, county *census.County) float64 {
	a := s.Activity(d)
	if s.null || county == nil {
		return a
	}
	if d >= relaxWindowStart {
		if bonus, ok := s.relaxBonus[county.Name]; ok {
			a += bonus
		}
	}
	if a > 1 {
		a = 1
	}
	return a
}

// ActivityOnSimDay maps a simulated day (which may precede the study
// window — the February home-detection period) to the activity level;
// February is entirely pre-pandemic.
func (s *Scenario) ActivityOnSimDay(d timegrid.SimDay, county *census.County) float64 {
	sd, ok := d.ToStudyDay()
	if !ok {
		return 1
	}
	return s.RegionalActivity(sd, county)
}

// VoiceFactor returns the per-user conversational voice demand multiplier
// for a study day.
func (s *Scenario) VoiceFactor(d timegrid.StudyDay) float64 {
	if s.null {
		return 1
	}
	return interp(s.voiceAnchors, float64(d))
}

// DataFactor returns the per-user cellular data appetite multiplier.
func (s *Scenario) DataFactor(d timegrid.StudyDay) float64 {
	if s.null {
		return 1
	}
	return interp(s.dataAnchors, float64(d))
}

// HomeCellularFactor returns the fraction of the usual at-home cellular
// data demand that stays on cellular (the rest offloads to WiFi).
func (s *Scenario) HomeCellularFactor(d timegrid.StudyDay) float64 {
	if s.null {
		return 1
	}
	return interp(s.homeCellularAnchors, float64(d))
}

// ThrottleFactor returns the application-level per-user throughput cap
// factor (content quality reduction).
func (s *Scenario) ThrottleFactor(d timegrid.StudyDay) float64 {
	if s.null {
		return 1
	}
	return interp(s.throttleAnchors, float64(d))
}

// CumulativeCases returns the cumulative number of lab-confirmed
// SARS-CoV-2 cases on a study day (logistic curve calibrated so that
// ~1,000 cases coincide with the pandemic declaration, as in Fig. 4).
func (s *Scenario) CumulativeCases(d timegrid.StudyDay) float64 {
	if s.null {
		return 0
	}
	x := float64(d)
	return s.caseL / (1 + math.Exp(-s.caseK*(x-s.caseMid)))
}

// --- Relocation and trip special-casing (§3.4) ---

// relocationStart is 19 Mar 2020: schools closed on the 20th and the
// paper attributes part of the Inner-London population drop to students
// and long-term tourists leaving around that date.
var relocationStart = timegrid.MustStudyDayOf(timegrid.DateOfStudyDay(0).AddDate(0, 0, 24)) // 19 Mar

// RelocationActive reports whether, on the given simulated day, seasonal
// residents who decided to relocate are away from their primary home. It
// is always false for scenarios whose relocation toggle is off.
func (s *Scenario) RelocationActive(d timegrid.SimDay) bool {
	if s.null || s.relocationScale <= 0 {
		return false
	}
	sd, ok := d.ToStudyDay()
	if !ok {
		return false
	}
	return sd >= relocationStart
}

// WeekendAwayProb returns the probability that a resident of the county
// spends a weekend day in another county. The paper observes Londoners'
// weekend trips vanish starting weeks 11–12, with an extra pre-lockdown
// exodus on 21–22 March and renewed Hampshire/Kent weekends late April.
func (s *Scenario) WeekendAwayProb(d timegrid.StudyDay, county *census.County) float64 {
	base := 0.03
	if county != nil && (county.Kind == census.KindMetroCore || county.Kind == census.KindMetroSuburb) {
		base = 0.06 // city dwellers take more weekends away
	}
	if s.null {
		return base
	}
	w := d.Week()
	switch {
	case w <= 10:
		return base
	case w == 11:
		return base * 0.6
	case w == 12:
		// 21–22 March (the weekend before lockdown): a brief exodus
		// towards coastal counties.
		if d.IsWeekend() {
			return base * 1.4
		}
		return base * 0.25
	default:
		p := base * 0.07
		// Renewed weekend trips by the end of April (weeks 18–19).
		if w >= 18 && d.IsWeekend() {
			p = base * 0.35
		}
		return p
	}
}

// relocationDest weights the destination counties of Inner-London
// relocations and weekend trips, matching the top receiving counties of
// Fig. 7 (Hampshire first, then the home counties and the south coast).
var relocationDest = []struct {
	county string
	weight float64
}{
	{"Hampshire", 0.28},
	{"Kent", 0.14},
	{"Essex", 0.10},
	{"Surrey", 0.10},
	{"Hertfordshire", 0.08},
	{"Oxfordshire", 0.07},
	{"Berkshire", 0.06},
	{"Cambridgeshire", 0.06},
	{"East Sussex", 0.06},
	{"Outer London", 0.05},
}

// RelocationDestinations returns the destination county names and weights
// for trips/relocations out of London.
func RelocationDestinations() (names []string, weights []float64) {
	names = make([]string, len(relocationDest))
	weights = make([]float64, len(relocationDest))
	for i, rd := range relocationDest {
		names[i] = rd.county
		weights[i] = rd.weight
	}
	return names, weights
}

// ExodusDestinationBias returns a multiplicative bias on destination
// weights for a given study day: the 21–22 March weekend is biased
// towards East Sussex (the paper's observed spike), and late-April
// weekends towards Hampshire and Kent.
func (s *Scenario) ExodusDestinationBias(d timegrid.StudyDay, destCounty string) float64 {
	if s.null {
		return 1
	}
	w := d.Week()
	if w == 12 && d.IsWeekend() && destCounty == "East Sussex" {
		return 5.0
	}
	if w >= 18 && d.IsWeekend() {
		switch destCounty {
		case "Hampshire":
			return 2.5
		case "Kent":
			return 1.5
		}
	}
	return 1
}

// SeasonalRelocationPropensity returns the scenario-free probability
// that a *seasonal* resident of the district is a relocation candidate:
// a student, long-term tourist or second-home owner who would leave for
// the lockdown. It is calibrated so that ≈10% of Inner London residents
// are absent from week 13 onward (§3.4), given the district seasonal
// shares in the census model. Population synthesis draws candidates from
// this propensity; whether they actually move is the scenario's call
// (RelocationActive).
func SeasonalRelocationPropensity(d *census.District) float64 {
	if d == nil {
		return 0
	}
	return 0.80 * d.SeasonalShare
}

// RelocationProb returns the probability that a seasonal resident of the
// given district relocates away *under this scenario*: the scenario-free
// propensity gated by the scenario's relocation toggle.
func (s *Scenario) RelocationProb(d *census.District) float64 {
	if s.null {
		return 0
	}
	return SeasonalRelocationPropensity(d) * s.relocationScale
}
