package pandemic

import (
	"testing"

	"repro/internal/census"
	"repro/internal/timegrid"
)

func TestBuilderFlatByDefault(t *testing.T) {
	s, err := NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d += 11 {
		if s.Activity(d) != 1 || s.VoiceFactor(d) != 1 || s.DataFactor(d) != 1 ||
			s.HomeCellularFactor(d) != 1 || s.ThrottleFactor(d) != 1 {
			t.Fatalf("unset curve not flat at day %d", d)
		}
	}
	if s.CumulativeCases(40) != 0 {
		t.Error("unset case curve should be zero")
	}
	m := census.BuildUK(1)
	ec, _ := m.DistrictByCode("EC")
	if s.RelocationProb(ec) != 0 {
		t.Error("builder scenario without relocation should not relocate")
	}
}

func TestBuilderCustomCurves(t *testing.T) {
	s, err := NewBuilder().
		Activity(0, 1.0).
		Activity(14, 0.5).
		Activity(76, 0.7).
		Voice(14, 2.0).
		Data(7, 1.1).
		HomeCellular(20, 0.8).
		Throttle(20, 0.9).
		CaseCurve(100_000, 0.2, 40).
		WithRelocation().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Activity(14); got != 0.5 {
		t.Errorf("activity(14) = %v", got)
	}
	// Interpolated halfway between anchors.
	if got := s.Activity(7); got < 0.7 || got > 0.8 {
		t.Errorf("activity(7) = %v, want ≈0.75", got)
	}
	if got := s.VoiceFactor(30); got != 2.0 {
		t.Errorf("voice clamps at the last anchor: %v", got)
	}
	if s.CumulativeCases(40) < 40_000 || s.CumulativeCases(40) > 60_000 {
		t.Errorf("cases at midpoint = %v", s.CumulativeCases(40))
	}
	m := census.BuildUK(1)
	ec, _ := m.DistrictByCode("EC")
	if s.RelocationProb(ec) == 0 {
		t.Error("WithRelocation should enable relocation")
	}
}

func TestBuilderAnchorsSorted(t *testing.T) {
	s, err := NewBuilder().
		Activity(50, 0.8).
		Activity(10, 0.9).
		Activity(30, 0.6).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Interpolation must see anchors in day order: day 20 sits between
	// (10, 0.9) and (30, 0.6).
	if got := s.Activity(20); got < 0.7 || got > 0.8 {
		t.Errorf("activity(20) = %v, want ≈0.75", got)
	}
	// Day 40 between (30, 0.6) and (50, 0.8).
	if got := s.Activity(40); got < 0.65 || got > 0.75 {
		t.Errorf("activity(40) = %v, want ≈0.7", got)
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder().Activity(-1, 1).Build(); err == nil {
		t.Error("negative day accepted")
	}
	if _, err := NewBuilder().Activity(timegrid.StudyDays, 1).Build(); err == nil {
		t.Error("out-of-window day accepted")
	}
	if _, err := NewBuilder().Voice(5, -0.5).Build(); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := NewBuilder().RelaxBonus("Inner London", 0.9).Build(); err == nil {
		t.Error("excessive relax bonus accepted")
	}
	if _, err := NewBuilder().CaseCurve(-1, 0.1, 40).Build(); err == nil {
		t.Error("negative plateau accepted")
	}
	// The first error wins and later calls are no-ops.
	_, err := NewBuilder().Activity(-1, 1).Voice(5, 2).Build()
	if err == nil {
		t.Error("latched error lost")
	}
}

func TestBuilderRelaxBonus(t *testing.T) {
	s, err := NewBuilder().
		Activity(0, 1).
		Activity(40, 0.5).
		RelaxBonus("West Yorkshire", 0.2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := census.BuildUK(1)
	wy, _ := m.CountyByName("West Yorkshire")
	gm, _ := m.CountyByName("Greater Manchester")
	late := timegrid.StudyDay((18-timegrid.FirstWeek)*7 + 1)
	if s.RegionalActivity(late, wy) <= s.RegionalActivity(late, gm) {
		t.Error("relax bonus not applied")
	}
}
