package pandemic

import (
	"fmt"
	"sort"

	"repro/internal/timegrid"
)

// Builder constructs custom behavioural scenarios: alternative lockdown
// timings, different compliance levels, counterfactual voice surges.
// All curves start from flat baselines (factor 1.0 at day 0); anchors
// added out of order are sorted at Build time.
//
//	scen, err := pandemic.NewBuilder().
//	    Activity(0, 1.0).
//	    Activity(14, 0.5).   // a lockdown two weeks earlier
//	    Activity(76, 0.6).
//	    Voice(14, 2.0).
//	    Build()
type Builder struct {
	activity, voice, data, homeCellular, throttle []anchor
	relax                                         map[string]float64
	caseL, caseK, caseMid                         float64
	relocation                                    bool
	err                                           error
}

// NewBuilder returns a builder whose unset curves stay at baseline.
func NewBuilder() *Builder {
	return &Builder{
		relax:   map[string]float64{},
		caseL:   0,
		caseK:   0.18,
		caseMid: 45,
	}
}

// addAnchor validates and appends one whole-day control point.
func (b *Builder) addAnchor(curve *[]anchor, day timegrid.StudyDay, value float64, name string) *Builder {
	return b.addAnchorAt(curve, float64(day), value, name)
}

// addAnchorAt validates and appends one control point at a possibly
// fractional study day.
func (b *Builder) addAnchorAt(curve *[]anchor, day, value float64, name string) *Builder {
	if b.err != nil {
		return b
	}
	if day < 0 || day >= timegrid.StudyDays {
		b.err = fmt.Errorf("pandemic: %s anchor day %v outside the study window", name, day)
		return b
	}
	if value < 0 {
		b.err = fmt.Errorf("pandemic: %s anchor value %v negative", name, value)
		return b
	}
	*curve = append(*curve, anchor{day: day, value: value})
	return b
}

// Curve names accepted by AnchorAt, one per factor curve of a Scenario.
const (
	CurveActivity     = "activity"
	CurveVoice        = "voice"
	CurveData         = "data"
	CurveHomeCellular = "home-cellular"
	CurveThrottle     = "throttle"
)

// CurveNames lists the factor-curve names in canonical order.
func CurveNames() []string {
	return []string{CurveActivity, CurveVoice, CurveData, CurveHomeCellular, CurveThrottle}
}

// AnchorAt adds a control point to the curve named by one of the Curve*
// constants, at a possibly fractional study day. It is the declarative
// entry point used by spec-driven construction (internal/scenario); the
// typed methods below are equivalent for whole days.
func (b *Builder) AnchorAt(curve string, day, value float64) *Builder {
	if b.err != nil {
		return b
	}
	var c *[]anchor
	switch curve {
	case CurveActivity:
		c = &b.activity
	case CurveVoice:
		c = &b.voice
	case CurveData:
		c = &b.data
	case CurveHomeCellular:
		c = &b.homeCellular
	case CurveThrottle:
		c = &b.throttle
	default:
		b.err = fmt.Errorf("pandemic: unknown curve %q", curve)
		return b
	}
	return b.addAnchorAt(c, day, value, curve)
}

// Activity adds an out-of-home activity anchor (1.0 = normal).
func (b *Builder) Activity(day timegrid.StudyDay, level float64) *Builder {
	return b.addAnchor(&b.activity, day, level, "activity")
}

// Voice adds a voice-demand anchor (1.0 = normal).
func (b *Builder) Voice(day timegrid.StudyDay, factor float64) *Builder {
	return b.addAnchor(&b.voice, day, factor, "voice")
}

// Data adds a cellular data appetite anchor.
func (b *Builder) Data(day timegrid.StudyDay, factor float64) *Builder {
	return b.addAnchor(&b.data, day, factor, "data")
}

// HomeCellular adds a WiFi-offload anchor (1.0 = the usual cellular
// share of at-home demand).
func (b *Builder) HomeCellular(day timegrid.StudyDay, factor float64) *Builder {
	return b.addAnchor(&b.homeCellular, day, factor, "home-cellular")
}

// Throttle adds a content-throttling anchor (1.0 = no throttling).
func (b *Builder) Throttle(day timegrid.StudyDay, factor float64) *Builder {
	return b.addAnchor(&b.throttle, day, factor, "throttle")
}

// RelaxBonus grants a county a late-window activity bonus (week 18+).
func (b *Builder) RelaxBonus(county string, bonus float64) *Builder {
	if b.err != nil {
		return b
	}
	if bonus < 0 || bonus > 0.5 {
		b.err = fmt.Errorf("pandemic: relax bonus %v for %s out of [0, 0.5]", bonus, county)
		return b
	}
	b.relax[county] = bonus
	return b
}

// CaseCurve configures the logistic cumulative case curve: plateau
// scale, growth rate and midpoint (study day).
func (b *Builder) CaseCurve(plateau, k float64, midDay timegrid.StudyDay) *Builder {
	return b.CaseCurveAt(plateau, k, float64(midDay))
}

// CaseCurveAt is CaseCurve with a possibly fractional midpoint day.
func (b *Builder) CaseCurveAt(plateau, k, midDay float64) *Builder {
	if b.err != nil {
		return b
	}
	if plateau < 0 || k <= 0 {
		b.err = fmt.Errorf("pandemic: invalid case curve plateau=%v k=%v", plateau, k)
		return b
	}
	b.caseL, b.caseK, b.caseMid = plateau, k, midDay
	return b
}

// WithRelocation enables the Inner-London style temporary relocation of
// seasonal residents.
func (b *Builder) WithRelocation() *Builder {
	b.relocation = true
	return b
}

// Relocation sets the relocation toggle explicitly; Relocation(true) is
// WithRelocation.
func (b *Builder) Relocation(enabled bool) *Builder {
	b.relocation = enabled
	return b
}

// Build finalizes the scenario. Curves with no anchors remain flat at
// baseline (factor 1).
func (b *Builder) Build() (*Scenario, error) {
	if b.err != nil {
		return nil, b.err
	}
	s := &Scenario{
		activityAnchors:     finalize(b.activity),
		voiceAnchors:        finalize(b.voice),
		dataAnchors:         finalize(b.data),
		homeCellularAnchors: finalize(b.homeCellular),
		throttleAnchors:     finalize(b.throttle),
		relaxBonus:          b.relax,
		caseL:               b.caseL,
		caseK:               b.caseK,
		caseMid:             b.caseMid,
	}
	// The relocation toggle: population synthesis marks candidates
	// scenario-free, and RelocationActive gates on this scale, so a
	// scenario without relocation keeps every candidate at home.
	if b.relocation {
		s.relocationScale = 1
	}
	return s, nil
}

// finalize sorts anchors by day and returns nil for empty curves (which
// interp treats as flat 1.0).
func finalize(as []anchor) []anchor {
	if len(as) == 0 {
		return nil
	}
	cp := append([]anchor(nil), as...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].day < cp[j].day })
	return cp
}
