package pandemic

import (
	"math"

	"repro/internal/timegrid"
)

// This file locates the first study day on which two scenarios can
// produce different simulated behaviour — the fork point of the
// copy-on-divergence sweep (experiments.RunSweepParallelOpts with
// SharePrefix). The contract is conservative: DivergenceFrom may return
// a day earlier than the true divergence, never later, so simulating a
// shared prefix up to (but excluding) the returned day and forking
// per-scenario is bit-identical to running each scenario from day 0.
//
// The rule leans on two facts about how the simulators consume a
// scenario:
//
//   - Every factor query happens at an *integer* timegrid.StudyDay: the
//     mobility simulator calls RegionalActivity / WeekendAwayProb /
//     ExodusDestinationBias / RelocationActive with whole days, and the
//     traffic engine samples Activity / VoiceFactor / DataFactor /
//     HomeCellularFactor / ThrottleFactor once per day. Two scenarios
//     whose curves agree at every integer day through day d-1 are
//     therefore indistinguishable through day d-1, even if the
//     continuous curves differ between the sampling points.
//   - The remaining behavioural differences are calendar-pinned, not
//     curve-driven: the weekend-trip pattern and exodus bias depend only
//     on the null flag (first observable on the week-11 weekend), the
//     relocation wave starts on a fixed date, and the regional relax
//     bonuses apply from the week-18 window onward.
//
// CumulativeCases is deliberately excluded: the case curve feeds only
// the reporting layer (figures, SEIR comparison), never the mobility or
// traffic simulation, so two scenarios differing only in case-curve
// parameters behave identically.

// NullDivergenceDay returns the first study day on which a non-null
// scenario's weekend-trip behaviour can differ from the null
// scenario's: the first weekend day of the week-11 trip reduction
// (derived from the calendar, not hard-coded).
func NullDivergenceDay() float64 { return nullWeekendDay }

// RelocationDivergenceDay returns the study day the seasonal relocation
// wave begins; scenarios that disagree on the relocation toggle diverge
// here at the latest.
func RelocationDivergenceDay() float64 { return float64(relocationStart) }

// RelaxDivergenceDay returns the first study day of the regional
// relaxation window; scenarios with different relax bonuses diverge
// here at the latest.
func RelaxDivergenceDay() float64 { return float64(relaxWindowStart) }

// nullWeekendDay is the first weekend study day whose WeekendAwayProb
// differs between the null and any non-null scenario. The formula
// depends only on the calendar and the null flag (never on curves), so
// one representative comparison locates it for every scenario pair.
var nullWeekendDay = func() float64 {
	null, cov := NoPandemic(), Default()
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d++ {
		if !d.IsWeekend() {
			continue // mobsim consults the weekend pattern on weekends only
		}
		if null.WeekendAwayProb(d, nil) != cov.WeekendAwayProb(d, nil) {
			return float64(d)
		}
	}
	return math.Inf(1)
}()

// relocationOn reports whether the scenario's relocation wave can ever
// move a candidate (RelocationActive can return true on some day).
func (s *Scenario) relocationOn() bool {
	return !s.null && s.relocationScale > 0
}

// sameRelaxBonus reports whether two bonus maps are identical.
func sameRelaxBonus(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || w != v {
			return false
		}
	}
	return true
}

// factorsEqualAt reports whether every per-day factor the simulators
// consume agrees bitwise between s and o at integer study day d.
func factorsEqualAt(s, o *Scenario, d timegrid.StudyDay) bool {
	return s.Activity(d) == o.Activity(d) &&
		s.VoiceFactor(d) == o.VoiceFactor(d) &&
		s.DataFactor(d) == o.DataFactor(d) &&
		s.HomeCellularFactor(d) == o.HomeCellularFactor(d) &&
		s.ThrottleFactor(d) == o.ThrottleFactor(d)
}

// TraceEqual reports whether s and o drive the mobility simulator
// identically on every simulated day — bit-identical day traces for any
// population and seed over the whole window, even where the traffic-side
// behaviour has long diverged. The simulator consults only
// RegionalActivity, WeekendAwayProb, ExodusDestinationBias and
// RelocationActive; the latter three depend on nothing but the null
// flag and the calendar, so two non-null scenarios trace-equal iff
// their activity surfaces and relocation behaviour agree. Scenarios
// that differ only in traffic factor curves (voice, data, home
// cellular, throttle) or the case curve therefore trace-equal, and the
// copy-on-divergence sweep runs them as riders on one simulated trace
// stream instead of re-simulating identical mobility.
func (s *Scenario) TraceEqual(o *Scenario) bool {
	if s == o {
		return true
	}
	if s.null != o.null {
		return false // nullness changes the weekend/exodus/activity surfaces
	}
	if s.null {
		return true
	}
	if s.relocationScale != o.relocationScale {
		return false
	}
	if !sameRelaxBonus(s.relaxBonus, o.relaxBonus) {
		return false
	}
	// The activity surface is only ever sampled at integer study days
	// (RegionalActivity = Activity + relax bonus, clamped), so pointwise
	// agreement at the sampled days is exact, not approximate.
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d++ {
		if s.Activity(d) != o.Activity(d) {
			return false
		}
	}
	return true
}

// DivergenceFrom returns the first study day on which simulating s can
// differ from simulating o — +Inf when the two scenarios are
// behaviourally identical over the whole study window. Simulated days
// strictly before the returned day are bit-identical between the two
// scenarios (same traces, same KPI records); the sweep runner uses this
// to simulate the shared prefix once and fork.
//
// The comparison is symmetric: s.DivergenceFrom(o) == o.DivergenceFrom(s).
func (s *Scenario) DivergenceFrom(o *Scenario) float64 {
	div := math.Inf(1)
	// Per-day factor curves, compared at the integer days the simulators
	// actually sample.
	for d := timegrid.StudyDay(0); d < timegrid.StudyDays; d++ {
		if !factorsEqualAt(s, o, d) {
			div = float64(d)
			break
		}
	}
	// Calendar-pinned behaviour differences.
	if s.null != o.null {
		div = math.Min(div, nullWeekendDay)
	}
	if s.relocationOn() != o.relocationOn() {
		div = math.Min(div, RelocationDivergenceDay())
	}
	if !sameRelaxBonus(s.relaxBonus, o.relaxBonus) {
		div = math.Min(div, RelaxDivergenceDay())
	}
	return div
}
