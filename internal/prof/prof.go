// Package prof wires the standard runtime/pprof profiles into the
// command-line binaries, so the hot paths (day simulation, KPI
// generation, the analyzers) can be profiled on real hardware with the
// usual `go tool pprof` workflow. See PERFORMANCE.md for the recipes.
package prof

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// FlagSet holds the standard profiling flags. Every binary used to
// re-declare -cpuprofile/-memprofile by hand; Flags registers them once
// and Run wires them through, so the four binaries share one spelling.
type FlagSet struct {
	CPUProfile *string
	MemProfile *string
}

// Flags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse; binaries that also want live metrics use
// obs.Flags, which embeds this.
func Flags() *FlagSet {
	return &FlagSet{
		CPUProfile: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		MemProfile: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Run executes fn under the parsed profile flags (see the package-level
// Run for the semantics).
func (f *FlagSet) Run(fn func() error) error {
	return Run(*f.CPUProfile, *f.MemProfile, fn)
}

// StartCPU begins a CPU profile written to path and returns the stop
// function that ends it and closes the file. An empty path is a no-op
// (the returned stop still must be safe to call), so callers can wire a
// flag through unconditionally.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// Run executes fn with the profile flags wired through: a CPU profile
// covers fn's duration and a heap profile is written after it returns.
// fn's own error wins — a heap-profile failure is only reported when fn
// succeeded. Either path may be empty to skip that profile.
func Run(cpuPath, memPath string, fn func() error) error {
	stop, err := StartCPU(cpuPath)
	if err != nil {
		return err
	}
	runErr := fn()
	stop()
	if err := WriteHeap(memPath); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// WriteHeap dumps the heap profile to path after a final GC, which makes
// the numbers reflect live memory rather than collection timing. An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
