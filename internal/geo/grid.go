package geo

import "math"

// Grid is a uniform spatial hash over points, answering nearest-neighbor
// and radius queries in (amortised) constant candidate counts. The radio
// topology uses it for serving-cell selection over thousands of sites.
type Grid struct {
	cell   float64 // cell edge, km
	origin Point
	cols   int
	rows   int
	// buckets[row*cols+col] holds indices into pts.
	buckets [][]int32
	pts     []Point
}

// NewGrid indexes pts with the given cell size (km). Cell sizes at or
// below zero default to a size that yields ~1 point per bucket.
func NewGrid(pts []Point, cellKm float64) *Grid {
	g := &Grid{pts: append([]Point(nil), pts...)}
	if len(pts) == 0 {
		g.cell = 1
		g.cols, g.rows = 1, 1
		g.buckets = make([][]int32, 1)
		return g
	}
	b := Bounds(pts)
	if cellKm <= 0 {
		area := math.Max(b.Width()*b.Height(), 1)
		cellKm = math.Sqrt(area / float64(len(pts)))
		if cellKm <= 0 {
			cellKm = 1
		}
	}
	g.cell = cellKm
	g.origin = b.Min
	g.cols = int(b.Width()/cellKm) + 1
	g.rows = int(b.Height()/cellKm) + 1
	g.buckets = make([][]int32, g.cols*g.rows)
	for i, p := range g.pts {
		idx := g.bucketOf(p)
		g.buckets[idx] = append(g.buckets[idx], int32(i))
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// bucketOf maps a point to its bucket index, clamped to the grid.
func (g *Grid) bucketOf(p Point) int {
	col := int((p.X - g.origin.X) / g.cell)
	row := int((p.Y - g.origin.Y) / g.cell)
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// Nearest returns the index of the closest indexed point to p, and its
// distance. It returns (-1, +Inf) for an empty grid.
func (g *Grid) Nearest(p Point) (int, float64) {
	if len(g.pts) == 0 {
		return -1, math.Inf(1)
	}
	best := -1
	bestD2 := math.Inf(1)
	col := int((p.X - g.origin.X) / g.cell)
	row := int((p.Y - g.origin.Y) / g.cell)
	// Expand rings of buckets until the best candidate cannot be beaten
	// by anything in the next ring.
	for ring := 0; ; ring++ {
		found := false
		for r := row - ring; r <= row+ring; r++ {
			if r < 0 || r >= g.rows {
				continue
			}
			for c := col - ring; c <= col+ring; c++ {
				if c < 0 || c >= g.cols {
					continue
				}
				// Only the ring boundary (inner cells were already
				// scanned in previous rings).
				if ring > 0 && r != row-ring && r != row+ring && c != col-ring && c != col+ring {
					continue
				}
				found = true
				for _, i := range g.buckets[r*g.cols+c] {
					if d2 := g.pts[i].Dist2(p); d2 < bestD2 {
						bestD2 = d2
						best = int(i)
					}
				}
			}
		}
		// Stop when a candidate exists and the next ring's minimum
		// possible distance exceeds it, or the grid is exhausted.
		minNext := float64(ring) * g.cell
		if best >= 0 && minNext*minNext > bestD2 {
			break
		}
		if !found && ring > g.cols+g.rows {
			break
		}
	}
	return best, math.Sqrt(bestD2)
}

// Within appends to dst the indices of all points within radiusKm of p
// and returns the extended slice.
func (g *Grid) Within(dst []int32, p Point, radiusKm float64) []int32 {
	if len(g.pts) == 0 || radiusKm < 0 {
		return dst
	}
	r2 := radiusKm * radiusKm
	minCol := int((p.X - radiusKm - g.origin.X) / g.cell)
	maxCol := int((p.X + radiusKm - g.origin.X) / g.cell)
	minRow := int((p.Y - radiusKm - g.origin.Y) / g.cell)
	maxRow := int((p.Y + radiusKm - g.origin.Y) / g.cell)
	if minCol < 0 {
		minCol = 0
	}
	if minRow < 0 {
		minRow = 0
	}
	if maxCol >= g.cols {
		maxCol = g.cols - 1
	}
	if maxRow >= g.rows {
		maxRow = g.rows - 1
	}
	for r := minRow; r <= maxRow; r++ {
		for c := minCol; c <= maxCol; c++ {
			for _, i := range g.buckets[r*g.cols+c] {
				if g.pts[i].Dist2(p) <= r2 {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}
