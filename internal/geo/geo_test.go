package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, 1)
	if got := p.Sub(q); got != Pt(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Add(q); got != Pt(4, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := Pt(0, 0).Dist(p); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := Pt(0, 0).Dist2(p); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); got != Pt(1, 1) {
		t.Errorf("Centroid = %v", got)
	}
	if got := Centroid(nil); got != Pt(0, 0) {
		t.Errorf("Centroid(nil) = %v", got)
	}
}

func TestCenterOfMass(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0)}
	// Three times more weight at the origin.
	got := CenterOfMass(pts, []float64{3, 1})
	if math.Abs(got.X-2.5) > 1e-12 || got.Y != 0 {
		t.Errorf("CenterOfMass = %v", got)
	}
	// Zero/negative weights ignored.
	got = CenterOfMass(pts, []float64{1, -5})
	if got != Pt(0, 0) {
		t.Errorf("negative-weight CoM = %v", got)
	}
	// All-zero weights fall back to the centroid.
	got = CenterOfMass(pts, []float64{0, 0})
	if got != Pt(5, 0) {
		t.Errorf("zero-weight CoM = %v", got)
	}
	// Mismatched weights fall back to the centroid.
	got = CenterOfMass(pts, []float64{1})
	if got != Pt(5, 0) {
		t.Errorf("mismatched CoM = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 2)}
	if !r.Contains(Pt(2, 1)) || r.Contains(Pt(5, 1)) {
		t.Error("Contains misbehaves")
	}
	if r.Center() != Pt(2, 1) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Width() != 4 || r.Height() != 2 {
		t.Error("extent wrong")
	}
	b := Bounds([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, 4)})
	if b.Min != Pt(-2, 3) || b.Max != Pt(4, 5) {
		t.Errorf("Bounds = %+v", b)
	}
	if Bounds(nil) != (Rect{}) {
		t.Error("Bounds(nil) should be zero")
	}
}

func TestDisc(t *testing.T) {
	d := Disc{Center: Pt(10, 10), Radius: 5}
	if !d.Contains(Pt(13, 10)) || d.Contains(Pt(16, 10)) {
		t.Error("Disc.Contains misbehaves")
	}
	p := d.PointOnRing(0, 1)
	if math.Abs(p.X-15) > 1e-12 || math.Abs(p.Y-10) > 1e-9 {
		t.Errorf("PointOnRing = %v", p)
	}
	if got := d.PointOnRing(1.23, 0); got != d.Center {
		t.Errorf("rim fraction 0 should be the centre, got %v", got)
	}
	// All ring points are inside the disc.
	for f := 0.0; f <= 1.0; f += 0.1 {
		for a := 0.0; a < 6.28; a += 0.3 {
			if !d.Contains(d.PointOnRing(a, f)) {
				t.Fatalf("ring point outside disc at a=%v f=%v", a, f)
			}
		}
	}
}

func TestRadiusOfGyrationKnown(t *testing.T) {
	// Equal dwell at two points 10 km apart: CoM in the middle, every
	// point 5 km away, so g = 5.
	pts := []Point{Pt(0, 0), Pt(10, 0)}
	if got := RadiusOfGyration(pts, []float64{1, 1}); math.Abs(got-5) > 1e-12 {
		t.Errorf("g = %v, want 5", got)
	}
	// All mass at one point: g = 0.
	if got := RadiusOfGyration(pts, []float64{1, 0}); got != 0 {
		t.Errorf("single-point g = %v", got)
	}
	// No points: 0.
	if got := RadiusOfGyration(nil, nil); got != 0 {
		t.Errorf("empty g = %v", got)
	}
	// Unweighted (nil weights) behaves like equal weights.
	if got := RadiusOfGyration(pts, nil); math.Abs(got-5) > 1e-12 {
		t.Errorf("unweighted g = %v", got)
	}
}

func TestRadiusOfGyrationWeighting(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0)}
	// Skewed weights pull the centre of mass toward the heavy point and
	// shrink g below the balanced value.
	g := RadiusOfGyration(pts, []float64{9, 1})
	if g >= 5 || g <= 0 {
		t.Errorf("skewed g = %v, want within (0, 5)", g)
	}
	want := 3.0 // sqrt(0.9·1² + 0.1·9²) = sqrt(9) with CoM at x=1
	if math.Abs(g-want) > 1e-9 {
		t.Errorf("skewed g = %v, want %v", g, want)
	}
}

func TestGyrationInvariances(t *testing.T) {
	pts := []Point{Pt(1, 2), Pt(4, 6), Pt(-3, 0), Pt(10, -2)}
	w := []float64{1, 2, 3, 4}
	g := RadiusOfGyration(pts, w)

	// Translation invariance.
	moved := make([]Point, len(pts))
	for i, p := range pts {
		moved[i] = p.Add(Pt(100, -50))
	}
	if got := RadiusOfGyration(moved, w); math.Abs(got-g) > 1e-9 {
		t.Errorf("translation changed g: %v vs %v", got, g)
	}
	// Weight-scaling invariance.
	w2 := []float64{2, 4, 6, 8}
	if got := RadiusOfGyration(pts, w2); math.Abs(got-g) > 1e-9 {
		t.Errorf("weight scaling changed g: %v vs %v", got, g)
	}
	// Spatial scaling scales g linearly.
	scaled := make([]Point, len(pts))
	for i, p := range pts {
		scaled[i] = p.Scale(3)
	}
	if got := RadiusOfGyration(scaled, w); math.Abs(got-3*g) > 1e-9 {
		t.Errorf("spatial scaling: %v vs %v", got, 3*g)
	}
}

func TestGyrationNonNegativeProperty(t *testing.T) {
	f := func(raw [][3]float64) bool {
		pts := make([]Point, 0, len(raw))
		w := make([]float64, 0, len(raw))
		for _, r := range raw {
			for _, v := range r {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					return true
				}
			}
			pts = append(pts, Pt(r[0], r[1]))
			w = append(w, math.Abs(r[2]))
		}
		g := RadiusOfGyration(pts, w)
		return g >= 0 && !math.IsNaN(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax+ay+bx+by) || math.IsInf(ax+ay+bx+by, 0) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a) && a.Dist(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
