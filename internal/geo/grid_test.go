package geo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomPoints generates n deterministic points in a box.
func randomPoints(n int, seed uint64) []Point {
	src := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(src.Range(0, 700), src.Range(0, 1000))
	}
	return pts
}

// bruteNearest is the reference implementation.
func bruteNearest(pts []Point, p Point) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	for i, q := range pts {
		if d2 := q.Dist2(p); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, math.Sqrt(bestD2)
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 1)
	g := NewGrid(pts, 25)
	src := rng.New(2)
	for i := 0; i < 300; i++ {
		q := Pt(src.Range(-50, 750), src.Range(-50, 1050))
		gi, gd := g.Nearest(q)
		bi, bd := bruteNearest(pts, q)
		if gi != bi && math.Abs(gd-bd) > 1e-9 {
			t.Fatalf("query %v: grid (%d, %v) vs brute (%d, %v)", q, gi, gd, bi, bd)
		}
	}
}

func TestGridNearestAutoCell(t *testing.T) {
	pts := randomPoints(200, 3)
	g := NewGrid(pts, 0) // auto cell size
	for i, p := range pts {
		gi, gd := g.Nearest(p)
		if gd > 1e-9 {
			t.Fatalf("point %d: self-query distance %v", i, gd)
		}
		if pts[gi].Dist(p) > 1e-9 {
			t.Fatalf("point %d: wrong self match", i)
		}
	}
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	pts := randomPoints(400, 4)
	g := NewGrid(pts, 30)
	src := rng.New(5)
	for i := 0; i < 100; i++ {
		q := Pt(src.Range(0, 700), src.Range(0, 1000))
		radius := src.Range(5, 120)
		got := g.Within(nil, q, radius)
		want := map[int32]bool{}
		for j, p := range pts {
			if p.Dist(q) <= radius {
				want[int32(j)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %v r=%v: %d hits, want %d", q, radius, len(got), len(want))
		}
		for _, idx := range got {
			if !want[idx] {
				t.Fatalf("false positive %d", idx)
			}
		}
	}
}

func TestGridEmptyAndDegenerate(t *testing.T) {
	g := NewGrid(nil, 10)
	if g.Len() != 0 {
		t.Error("empty grid length")
	}
	if i, d := g.Nearest(Pt(1, 2)); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty Nearest = %d, %v", i, d)
	}
	if got := g.Within(nil, Pt(0, 0), 10); len(got) != 0 {
		t.Error("empty Within returned hits")
	}
	// All points identical.
	same := []Point{Pt(5, 5), Pt(5, 5), Pt(5, 5)}
	g2 := NewGrid(same, 0)
	if i, d := g2.Nearest(Pt(5, 5)); i < 0 || d > 1e-9 {
		t.Errorf("identical-point Nearest = %d, %v", i, d)
	}
	if got := g2.Within(nil, Pt(5, 5), 0.1); len(got) != 3 {
		t.Errorf("identical-point Within = %d", len(got))
	}
	// Negative radius.
	if got := g2.Within(nil, Pt(5, 5), -1); len(got) != 0 {
		t.Error("negative radius returned hits")
	}
}

func TestGridNearestProperty(t *testing.T) {
	pts := randomPoints(150, 6)
	g := NewGrid(pts, 40)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e4 || math.Abs(y) > 1e4 {
			return true
		}
		q := Pt(x, y)
		gi, _ := g.Nearest(q)
		bi, _ := bruteNearest(pts, q)
		return pts[gi].Dist(q) <= pts[bi].Dist(q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWithinReusesDst(t *testing.T) {
	pts := randomPoints(100, 7)
	g := NewGrid(pts, 20)
	buf := make([]int32, 0, 64)
	a := g.Within(buf, Pt(350, 500), 100)
	b := g.Within(a[:0], Pt(350, 500), 100)
	if len(a) != len(b) {
		t.Error("dst reuse changed results")
	}
}
