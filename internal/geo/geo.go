// Package geo provides the planar coordinate system of the synthetic
// United Kingdom: points in kilometres on a national grid, distances,
// centroids and weighted centres of mass (the quantity the radius of
// gyration is defined against), and simple region geometry.
//
// A planar approximation is appropriate here: the paper's radius of
// gyration is computed over cell-tower coordinates at the scale of daily
// human mobility (a few to a few hundred kilometres), where the error of a
// projected plane versus great-circle distance is negligible for the
// shape-level results we reproduce.
package geo

import (
	"fmt"
	"math"
)

// Point is a location on the national grid, in kilometres east (X) and
// north (Y) of the grid origin.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Sub returns p − q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q in kilometres.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared distance (cheaper when only comparing).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Centroid returns the unweighted centroid of pts, or the zero Point if
// pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// CenterOfMass returns the weighted centre of mass of pts with weights w
// (e.g. dwell-time fractions, as in the gyration definition of §2.3).
// Zero or negative weights are ignored; if the total weight is zero the
// unweighted centroid is returned.
func CenterOfMass(pts []Point, w []float64) Point {
	if len(pts) == 0 {
		return Point{}
	}
	if len(w) != len(pts) {
		return Centroid(pts)
	}
	var c Point
	var total float64
	for i, p := range pts {
		wi := w[i]
		if wi <= 0 {
			continue
		}
		c.X += p.X * wi
		c.Y += p.Y * wi
		total += wi
	}
	if total == 0 {
		return Centroid(pts)
	}
	return c.Scale(1 / total)
}

// Rect is an axis-aligned bounding box.
type Rect struct {
	Min, Max Point
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the rectangle's centre.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Width and Height return the rectangle extents in kilometres.
func (r Rect) Width() float64  { return r.Max.X - r.Min.X }
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Bounds returns the bounding box of pts (zero Rect when empty).
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// Disc is a circular area used to lay out districts and scatter towers.
type Disc struct {
	Center Point
	Radius float64 // km
}

// Contains reports whether p lies inside the disc.
func (d Disc) Contains(p Point) bool { return d.Center.Dist(p) <= d.Radius }

// PointOnRing returns the point at the given angle (radians) and radius
// fraction f (0 centre, 1 rim) of the disc.
func (d Disc) PointOnRing(angle, f float64) Point {
	r := d.Radius * f
	return Point{
		X: d.Center.X + r*math.Cos(angle),
		Y: d.Center.Y + r*math.Sin(angle),
	}
}

// RadiusOfGyration computes the root-mean-squared weighted distance of
// pts from their centre of mass, the exact definition in Eq. (2) of the
// paper with weights w = time fractions:
//
//	g = sqrt( Σ w_j · |l_j − l_cm|² / Σ w_j )
//
// Zero/negative weights are ignored. It returns 0 for empty input.
func RadiusOfGyration(pts []Point, w []float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	cm := CenterOfMass(pts, w)
	var num, den float64
	for i, p := range pts {
		wi := 1.0
		if len(w) == len(pts) {
			wi = w[i]
		}
		if wi <= 0 {
			continue
		}
		num += wi * p.Dist2(cm)
		den += wi
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
