// Package fault is a deterministic fault-injection harness for the
// streaming pipeline. An *Injector holds a schedule of rules, each
// bound to a named site (a place in the pipeline that agreed to be
// breakable) and an integer key (usually the simulated day, or the run
// index in a sweep). The instrumented site calls Fire; a matching rule
// injects an error, a panic or a delay, and a non-matching call costs a
// handful of integer compares.
//
// Like internal/obs, the disabled state is a nil *Injector: every
// method is nil-safe, so call sites thread an injector through
// unconditionally and pay one nil-check when it is off. With the
// injector nil the pipeline is bit-identical to a build without the
// harness — no clock reads, no allocations, no extra branches beyond
// the nil-check.
//
// The package depends only on the standard library; the layering gate
// (scripts/fault_check.sh) holds it there and keeps the leaf compute
// packages from importing it — injection belongs to the orchestration
// layers (stream, feeds, experiments), never to a kernel.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one injection point. The pipeline's agreed sites are the
// constants below; Fire on an unknown site is legal (it just never
// matches a rule built by ParseSpec's validation).
type Site string

// The named injection sites of the pipeline. Each is documented with
// the key its Fire calls carry.
const (
	// FeedRead fires in feeds.FeedSource.Next, keyed by the 0-based
	// index of the day being read (the trace feed's read cursor).
	FeedRead Site = "feed.read"
	// ProduceDay fires in a stream.SimSource producer worker, keyed by
	// the day being produced, after the day's backing store is drawn —
	// so an injected failure exercises the store-release path.
	ProduceDay Site = "stream.produce"
	// ShardTask fires inside every parallel shard task of
	// stream.Engine, keyed by the day being sharded.
	ShardTask Site = "stream.shard"
	// MergeDay fires at the start of stream.Engine's serial merge
	// stage, keyed by the day being merged.
	MergeDay Site = "stream.merge"
	// SweepRun fires at the start of each scenario run of
	// experiments.RunSweep/RunSweepParallel, keyed by the run's index
	// in the sweep's input order.
	SweepRun Site = "sweep.run"
)

// Sites lists every named injection site, in pipeline order; the chaos
// suite iterates it.
func Sites() []Site { return []Site{FeedRead, ProduceDay, ShardTask, MergeDay, SweepRun} }

// Kind is what a matching rule does.
type Kind uint8

const (
	// KindError makes Fire return an *Error.
	KindError Kind = iota
	// KindPanic makes Fire panic with a *PanicValue.
	KindPanic
	// KindDelay makes Fire sleep for the rule's Delay and keep going.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Rule arms one injection. Key matches the Fire key exactly; a negative
// Key matches every key (useful for "fail the first thing that hits
// this site").
type Rule struct {
	Site  Site
	Kind  Kind
	Key   int64
	Delay time.Duration // KindDelay only; 0 means DefaultDelay
}

// DefaultDelay is the sleep of a KindDelay rule with no explicit
// duration — long enough to reorder goroutines, short enough for tests.
const DefaultDelay = 2 * time.Millisecond

// Error is the typed error an armed KindError rule injects. Sites
// propagate it unchanged, so callers can errors.As it back out of the
// pipeline's aggregated failure.
type Error struct {
	Site Site
	Key  int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected error at %s key %d", e.Site, e.Key)
}

// PanicValue is the value an armed KindPanic rule panics with. The
// pipeline's recover machinery wraps it in a *stream.WorkerPanic like
// any other panic; chaos tests unwrap it to assert the panic they
// planted is the one that surfaced.
type PanicValue struct {
	Site Site
	Key  int64
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("fault: injected panic at %s key %d", p.Site, p.Key)
}

// Injector is an armed fault schedule. The zero value is not useful;
// build one with New, Schedule or ParseSpec. A nil *Injector is the
// disabled harness: Fire returns nil immediately.
//
// Injectors are safe for concurrent Fire from any number of
// goroutines; the rules are immutable after construction and the only
// mutable state is the per-rule fire counter.
type Injector struct {
	rules []Rule
	fired []atomic.Int64
}

// New arms the given rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, fired: make([]atomic.Int64, len(rules))}
}

// Rules returns a copy of the armed schedule.
func (i *Injector) Rules() []Rule {
	if i == nil {
		return nil
	}
	out := make([]Rule, len(i.rules))
	copy(out, i.rules)
	return out
}

// Fire reports whether a rule matches (site, key) and injects its
// fault: KindError returns an *Error, KindPanic panics with a
// *PanicValue, KindDelay sleeps and continues matching (so a delay can
// be stacked under an error at the same site). A nil injector, or no
// matching rule, returns nil.
func (i *Injector) Fire(site Site, key int64) error {
	if i == nil {
		return nil
	}
	for r := range i.rules {
		rule := &i.rules[r]
		if rule.Site != site || (rule.Key >= 0 && rule.Key != key) {
			continue
		}
		i.fired[r].Add(1)
		switch rule.Kind {
		case KindDelay:
			d := rule.Delay
			if d <= 0 {
				d = DefaultDelay
			}
			time.Sleep(d)
		case KindPanic:
			panic(&PanicValue{Site: site, Key: key})
		default:
			return &Error{Site: site, Key: key}
		}
	}
	return nil
}

// Fired returns how many times rules at the given site have injected
// (delays included). Nil injector: 0.
func (i *Injector) Fired(site Site) int64 {
	if i == nil {
		return 0
	}
	var n int64
	for r := range i.rules {
		if i.rules[r].Site == site {
			n += i.fired[r].Load()
		}
	}
	return n
}

// Schedule builds a deterministic seed-keyed random schedule: n rules,
// each drawn uniformly over the given sites and kinds with a key in
// [0, maxKey). The same seed always yields the same schedule, so a
// failing chaos trial is reproducible from its logged seed alone.
func Schedule(seed uint64, sites []Site, kinds []Kind, maxKey int64, n int) *Injector {
	rng := rand.New(rand.NewSource(int64(seed)))
	rules := make([]Rule, 0, n)
	for len(rules) < n {
		rules = append(rules, Rule{
			Site: sites[rng.Intn(len(sites))],
			Kind: kinds[rng.Intn(len(kinds))],
			Key:  rng.Int63n(maxKey),
		})
	}
	return New(rules...)
}

// ParseSpec parses a command-line fault spec: comma-separated rules of
// the form site:kind:key[:delay], e.g.
//
//	stream.produce:panic:3
//	feed.read:error:2,stream.shard:delay:-1:20ms
//
// kind is error|panic|delay; key is the integer Fire key to match, or
// -1 for any; delay (delay rules only) is a Go duration. An empty spec
// returns a nil (disabled) injector.
func ParseSpec(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	known := map[Site]bool{}
	for _, s := range Sites() {
		known[s] = true
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("fault: bad rule %q: want site:kind:key[:delay]", part)
		}
		site := Site(fields[0])
		if !known[site] {
			return nil, fmt.Errorf("fault: unknown site %q (known: %v)", fields[0], Sites())
		}
		var kind Kind
		switch fields[1] {
		case "error":
			kind = KindError
		case "panic":
			kind = KindPanic
		case "delay":
			kind = KindDelay
		default:
			return nil, fmt.Errorf("fault: unknown kind %q in %q (want error|panic|delay)", fields[1], part)
		}
		key, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad key in %q: %w", part, err)
		}
		rule := Rule{Site: site, Kind: kind, Key: key}
		if len(fields) == 4 {
			if kind != KindDelay {
				return nil, fmt.Errorf("fault: duration only applies to delay rules (got %q)", part)
			}
			d, err := time.ParseDuration(fields[3])
			if err != nil {
				return nil, fmt.Errorf("fault: bad delay in %q: %w", part, err)
			}
			rule.Delay = d
		}
		rules = append(rules, rule)
	}
	return New(rules...), nil
}

// IsInjected reports whether err (or anything it wraps) was planted by
// an injector — either directly as an *Error or carried inside a
// recovered *PanicValue rendered by the pipeline's panic wrapper.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}
