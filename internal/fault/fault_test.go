package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var i *Injector
	if err := i.Fire(ShardTask, 3); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if i.Fired(ShardTask) != 0 {
		t.Fatal("nil injector counts fires")
	}
	if i.Rules() != nil {
		t.Fatal("nil injector has rules")
	}
}

func TestFireError(t *testing.T) {
	i := New(Rule{Site: MergeDay, Kind: KindError, Key: 7})
	if err := i.Fire(MergeDay, 6); err != nil {
		t.Fatalf("non-matching key fired: %v", err)
	}
	if err := i.Fire(ShardTask, 7); err != nil {
		t.Fatalf("non-matching site fired: %v", err)
	}
	err := i.Fire(MergeDay, 7)
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != MergeDay || fe.Key != 7 {
		t.Fatalf("want *Error{merge,7}, got %v", err)
	}
	if !IsInjected(err) {
		t.Fatal("IsInjected false for injected error")
	}
	if got := i.Fired(MergeDay); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestFirePanic(t *testing.T) {
	i := New(Rule{Site: ProduceDay, Kind: KindPanic, Key: -1})
	defer func() {
		v := recover()
		pv, ok := v.(*PanicValue)
		if !ok {
			t.Fatalf("panic value %T, want *PanicValue", v)
		}
		if pv.Site != ProduceDay || pv.Key != 12 {
			t.Fatalf("panic context %+v", pv)
		}
	}()
	i.Fire(ProduceDay, 12)
	t.Fatal("rule did not panic")
}

func TestFireDelayContinuesMatching(t *testing.T) {
	// A delay stacked before an error at the same site: Fire sleeps,
	// keeps scanning, and still returns the error.
	i := New(
		Rule{Site: FeedRead, Kind: KindDelay, Key: 0, Delay: time.Millisecond},
		Rule{Site: FeedRead, Kind: KindError, Key: 0},
	)
	start := time.Now()
	err := i.Fire(FeedRead, 0)
	if !IsInjected(err) {
		t.Fatalf("error rule after delay did not fire: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("delay rule did not sleep")
	}
	if got := i.Fired(FeedRead); got != 2 {
		t.Errorf("Fired = %d, want 2 (delay + error)", got)
	}
}

func TestAnyKeyMatches(t *testing.T) {
	i := New(Rule{Site: SweepRun, Kind: KindError, Key: -1})
	for _, k := range []int64{0, 1, 99} {
		if err := i.Fire(SweepRun, k); !IsInjected(err) {
			t.Fatalf("Key=-1 did not match key %d: %v", k, err)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	sites, kinds := Sites(), []Kind{KindError, KindDelay}
	a := Schedule(42, sites, kinds, 30, 8)
	b := Schedule(42, sites, kinds, 30, 8)
	if !reflect.DeepEqual(a.Rules(), b.Rules()) {
		t.Fatal("same seed produced different schedules")
	}
	c := Schedule(43, sites, kinds, 30, 8)
	if reflect.DeepEqual(a.Rules(), c.Rules()) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	for _, r := range a.Rules() {
		if r.Key < 0 || r.Key >= 30 {
			t.Fatalf("scheduled key %d out of [0,30)", r.Key)
		}
	}
}

func TestParseSpec(t *testing.T) {
	i, err := ParseSpec("")
	if err != nil || i != nil {
		t.Fatalf("empty spec: injector=%v err=%v, want nil/nil", i, err)
	}

	i, err = ParseSpec("stream.produce:panic:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{{Site: ProduceDay, Kind: KindPanic, Key: 3}}
	if !reflect.DeepEqual(i.Rules(), want) {
		t.Fatalf("rules = %+v, want %+v", i.Rules(), want)
	}

	i, err = ParseSpec(" feed.read:error:2 , stream.shard:delay:-1:20ms ")
	if err != nil {
		t.Fatal(err)
	}
	want = []Rule{
		{Site: FeedRead, Kind: KindError, Key: 2},
		{Site: ShardTask, Kind: KindDelay, Key: -1, Delay: 20 * time.Millisecond},
	}
	if !reflect.DeepEqual(i.Rules(), want) {
		t.Fatalf("rules = %+v, want %+v", i.Rules(), want)
	}

	for _, bad := range []string{
		"stream.shard",                  // too few fields
		"stream.shard:error",            // too few fields
		"nosuch.site:error:0",           // unknown site
		"stream.shard:explode:0",        // unknown kind
		"stream.shard:error:x",          // bad key
		"stream.shard:error:0:5ms",      // duration on a non-delay rule
		"stream.shard:delay:0:fast",     // bad duration
		"stream.shard:error:0:5ms:more", // too many fields
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindError.String() != "error" || KindPanic.String() != "panic" || KindDelay.String() != "delay" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatalf("unknown kind renders %q", Kind(9).String())
	}
}
