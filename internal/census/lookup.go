package census

import (
	"fmt"
	"sort"
	"strings"
)

// PostcodeInfo is the NSPL-style join record for one postcode district:
// the administrative and geodemographic attributes the paper appends to
// every radio cell (§2.2, "UK Administrative and Geo-demographic
// Datasets" and §2.4).
type PostcodeInfo struct {
	District   *District
	County     *County
	Cluster    Cluster
	Population int
}

// Lookup resolves a postcode district code ("EC", "GM3") into its full
// administrative context, like an NSPL join.
func (m *Model) Lookup(code string) (PostcodeInfo, bool) {
	d, ok := m.DistrictByCode(strings.ToUpper(strings.TrimSpace(code)))
	if !ok {
		return PostcodeInfo{}, false
	}
	return PostcodeInfo{
		District:   d,
		County:     m.County(d.County),
		Cluster:    d.Cluster,
		Population: d.Population,
	}, true
}

// PenPortrait renders the ONS-style pen portrait of a cluster: the
// Table 1 definition plus the synthetic UK's realisation of it (how
// many districts, residents, and where they concentrate).
func (m *Model) PenPortrait(c Cluster) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  %s\n", c.Name(), c.Definition())
	districts := m.DistrictsInCluster(c)
	var pop int
	countyPop := map[string]int{}
	for _, d := range districts {
		pop += d.Population
		countyPop[m.County(d.County).Name] += d.Population
	}
	fmt.Fprintf(&b, "  %d districts, %d residents (%.1f%% of the population)\n",
		len(districts), pop, 100*float64(pop)/float64(m.TotalPopulation()))
	type kv struct {
		name string
		pop  int
	}
	var tops []kv
	for n, p := range countyPop {
		tops = append(tops, kv{n, p})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].pop != tops[j].pop {
			return tops[i].pop > tops[j].pop
		}
		return tops[i].name < tops[j].name
	})
	if len(tops) > 3 {
		tops = tops[:3]
	}
	names := make([]string, len(tops))
	for i, t := range tops {
		names[i] = t.name
	}
	fmt.Fprintf(&b, "  concentrated in: %s\n", strings.Join(names, ", "))
	return b.String()
}

// DistrictCodes returns every postcode district code, sorted.
func (m *Model) DistrictCodes() []string {
	out := make([]string, 0, len(m.Districts))
	for i := range m.Districts {
		out = append(out, m.Districts[i].Code)
	}
	sort.Strings(out)
	return out
}

// CountyNames returns every county name, sorted.
func (m *Model) CountyNames() []string {
	out := make([]string, 0, len(m.Counties))
	for i := range m.Counties {
		out = append(out, m.Counties[i].Name)
	}
	sort.Strings(out)
	return out
}
