package census

import (
	"sort"
	"strings"
	"testing"
)

func TestClusterTable1(t *testing.T) {
	if NumClusters != 8 {
		t.Fatalf("NumClusters = %d, want 8 (Table 1)", NumClusters)
	}
	seenNames := map[string]bool{}
	for _, c := range Clusters() {
		if !c.Valid() {
			t.Errorf("cluster %d invalid", c)
		}
		if c.Name() == "" || c.Definition() == "" {
			t.Errorf("cluster %d missing name/definition", c)
		}
		if seenNames[c.Name()] {
			t.Errorf("duplicate cluster name %q", c.Name())
		}
		seenNames[c.Name()] = true
		if c.String() != c.Name() {
			t.Errorf("String != Name for %v", c)
		}
	}
	// Spot-check Table 1 entries.
	if RuralResidents.Name() != "Rural Residents" {
		t.Error("cluster 0 should be Rural Residents")
	}
	if !strings.Contains(EthnicityCentral.Definition(), "London") {
		t.Error("Ethnicity Central definition should mention London")
	}
	if Cluster(-1).Valid() || Cluster(99).Valid() {
		t.Error("out-of-range clusters must be invalid")
	}
	if Cluster(99).Name() != "Unknown" || Cluster(99).Definition() != "" {
		t.Error("out-of-range cluster accessors should degrade")
	}
}

func TestBuildUKStructure(t *testing.T) {
	m := BuildUK(1)
	if len(m.Counties) != len(ukCounties) {
		t.Fatalf("counties = %d, want %d", len(m.Counties), len(ukCounties))
	}
	if len(m.Districts) == 0 {
		t.Fatal("no districts")
	}
	// Every district belongs to its county and is indexed.
	for i := range m.Districts {
		d := &m.Districts[i]
		if d.ID != DistrictID(i) {
			t.Fatalf("district %d has ID %d", i, d.ID)
		}
		c := m.County(d.County)
		found := false
		for _, did := range c.Districts {
			if did == d.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("district %s not listed in county %s", d.Code, c.Name)
		}
		if got, ok := m.DistrictByCode(d.Code); !ok || got.ID != d.ID {
			t.Errorf("DistrictByCode(%s) broken", d.Code)
		}
		if d.Population <= 0 {
			t.Errorf("district %s has population %d", d.Code, d.Population)
		}
		if !d.Cluster.Valid() {
			t.Errorf("district %s has invalid cluster", d.Code)
		}
		if !c.Area.Contains(d.Area.Center) && c.Kind != KindMetroSuburb {
			t.Errorf("district %s centre outside county disc", d.Code)
		}
	}
	// County populations are (approximately) conserved by the district
	// split: within 2% per county.
	for ci := range m.Counties {
		c := &m.Counties[ci]
		sum := 0
		for _, did := range c.Districts {
			sum += m.District(did).Population
		}
		diff := float64(sum-c.Population) / float64(c.Population)
		if diff > 0.02 || diff < -0.02 {
			t.Errorf("%s district populations sum to %d, county %d", c.Name, sum, c.Population)
		}
	}
	if m.TotalPopulation() < 30_000_000 {
		t.Errorf("total population = %d, suspiciously low", m.TotalPopulation())
	}
}

func TestBuildUKDeterminism(t *testing.T) {
	a, b := BuildUK(7), BuildUK(7)
	if len(a.Districts) != len(b.Districts) {
		t.Fatal("district counts differ across identical builds")
	}
	for i := range a.Districts {
		if a.Districts[i].Area != b.Districts[i].Area ||
			a.Districts[i].Population != b.Districts[i].Population ||
			a.Districts[i].Cluster != b.Districts[i].Cluster {
			t.Fatalf("district %d differs across identical builds", i)
		}
	}
	// Different seed jitters placement but keeps structure.
	c := BuildUK(8)
	if len(c.Districts) != len(a.Districts) {
		t.Error("seed should not change administrative structure")
	}
}

func TestInnerLondonDistricts(t *testing.T) {
	m := BuildUK(1)
	inner := m.InnerLondon()
	if inner.Kind != KindMetroCore {
		t.Fatal("Inner London kind wrong")
	}
	if len(inner.Districts) != 8 {
		t.Fatalf("Inner London has %d districts, want 8", len(inner.Districts))
	}
	codes := map[string]bool{}
	for _, did := range inner.Districts {
		codes[m.District(did).Code] = true
	}
	for _, want := range []string{"EC", "WC", "N", "E", "SE", "SW", "W", "NW"} {
		if !codes[want] {
			t.Errorf("missing Inner London district %s", want)
		}
	}
	ec, _ := m.DistrictByCode("EC")
	sw, _ := m.DistrictByCode("SW")
	// §5.1: ≈30k residents in EC vs ≈400k in SW.
	if ec.Population >= sw.Population/5 {
		t.Errorf("EC population %d should be far below SW %d", ec.Population, sw.Population)
	}
	if ec.DayVisitorWeight <= 3*sw.DayVisitorWeight {
		t.Errorf("EC visitor weight %v should dwarf SW %v", ec.DayVisitorWeight, sw.DayVisitorWeight)
	}
	if ec.SeasonalShare <= sw.SeasonalShare {
		t.Error("EC seasonal share should exceed SW")
	}
}

func TestFocusRegions(t *testing.T) {
	m := BuildUK(1)
	regions := m.FocusRegions()
	if len(regions) != 5 {
		t.Fatalf("focus regions = %d", len(regions))
	}
	names := FocusRegionNames()
	for i, c := range regions {
		if c.Name != names[i] {
			t.Errorf("region %d = %s, want %s", i, c.Name, names[i])
		}
	}
}

func TestLondonClusters(t *testing.T) {
	m := BuildUK(1)
	cls := m.LondonClusters()
	if len(cls) != 3 {
		t.Fatalf("London clusters = %d, want 3 (§5.2)", len(cls))
	}
	want := map[Cluster]bool{Cosmopolitans: true, EthnicityCentral: true, MulticulturalMetropolitans: true}
	for _, c := range cls {
		if !want[c] {
			t.Errorf("unexpected London cluster %v", c)
		}
	}
}

func TestClusterPopulationCoverage(t *testing.T) {
	m := BuildUK(1)
	byCluster := m.ClusterPopulation()
	var sum int
	for _, c := range Clusters() {
		sum += byCluster[c]
		if len(m.DistrictsInCluster(c)) == 0 {
			t.Errorf("cluster %v has no districts", c)
		}
	}
	var distSum int
	for i := range m.Districts {
		distSum += m.Districts[i].Population
	}
	if sum != distSum {
		t.Errorf("cluster populations %d != district sum %d", sum, distSum)
	}
	// Rural Residents should be a significant but minority share.
	rural := float64(byCluster[RuralResidents]) / float64(distSum)
	if rural < 0.03 || rural > 0.4 {
		t.Errorf("rural share = %v", rural)
	}
}

func TestCountyLookup(t *testing.T) {
	m := BuildUK(1)
	if _, ok := m.CountyByName("Atlantis"); ok {
		t.Error("nonexistent county found")
	}
	for _, name := range []string{"Hampshire", "Kent", "East Sussex", "Essex", "Surrey",
		"Hertfordshire", "Berkshire", "Oxfordshire", "Cambridgeshire", "Outer London"} {
		if _, ok := m.CountyByName(name); !ok {
			t.Errorf("Fig. 7 destination county %q missing", name)
		}
	}
}

func TestMetroCBDShape(t *testing.T) {
	m := BuildUK(1)
	gm, _ := m.CountyByName("Greater Manchester")
	cbd := m.District(gm.Districts[0])
	if cbd.Cluster != Cosmopolitans {
		t.Errorf("metro CBD cluster = %v, want Cosmopolitans", cbd.Cluster)
	}
	rest := m.District(gm.Districts[1])
	if cbd.DayVisitorWeight <= 2*rest.DayVisitorWeight {
		t.Error("metro CBD should attract far more visitors than suburbs")
	}
	if cbd.Population >= rest.Population*2 {
		t.Error("metro CBD resident population should be modest")
	}
}

func TestLookup(t *testing.T) {
	m := BuildUK(1)
	info, ok := m.Lookup("ec")
	if !ok {
		t.Fatal("EC lookup failed (case/space normalisation)")
	}
	if info.County.Name != "Inner London" || info.Cluster != Cosmopolitans {
		t.Errorf("EC lookup = %+v", info)
	}
	if info.Population != info.District.Population {
		t.Error("population mismatch")
	}
	if _, ok := m.Lookup("ZZ99"); ok {
		t.Error("unknown code resolved")
	}
	if _, ok := m.Lookup("  wc "); !ok {
		t.Error("whitespace not trimmed")
	}
}

func TestPenPortraits(t *testing.T) {
	m := BuildUK(1)
	for _, c := range Clusters() {
		p := m.PenPortrait(c)
		if !strings.Contains(p, c.Name()) || !strings.Contains(p, "districts") {
			t.Errorf("portrait of %v malformed:\n%s", c, p)
		}
	}
	if !strings.Contains(m.PenPortrait(EthnicityCentral), "Inner London") {
		t.Error("Ethnicity Central should concentrate in Inner London")
	}
}

func TestCodeAndNameEnumerations(t *testing.T) {
	m := BuildUK(1)
	codes := m.DistrictCodes()
	if len(codes) != len(m.Districts) {
		t.Errorf("codes = %d, districts = %d", len(codes), len(m.Districts))
	}
	if !sort.StringsAreSorted(codes) {
		t.Error("codes not sorted")
	}
	names := m.CountyNames()
	if len(names) != len(m.Counties) || !sort.StringsAreSorted(names) {
		t.Error("county names wrong")
	}
}
