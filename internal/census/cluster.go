// Package census builds the synthetic United Kingdom the reproduction
// runs on: the administrative hierarchy (postcode district → county/UTLA),
// census populations, and the eight 2011 OAC geodemographic clusters of
// Table 1 of the paper.
//
// The real study uses the ONS National Statistics Postcode Lookup (NSPL)
// and the 2011 Area Classification for Output Areas; both are replaced
// here by a deterministic synthetic model with the same hierarchy, the
// same cluster vocabulary, and populations calibrated so the regional
// user counts quoted in §3.2 (Inner London ≈ 700k users at ~25% market
// share, Outer London ≈ 1.1M, Greater Manchester ≈ 700k, West Midlands ≈
// 600k, West Yorkshire ≈ 500k) hold at full scale.
package census

// Cluster is one of the eight 2011 OAC geodemographic supergroups
// (Table 1 of the paper).
type Cluster int

// The eight OAC supergroups, in the order of Table 1.
const (
	RuralResidents Cluster = iota
	Cosmopolitans
	EthnicityCentral
	MulticulturalMetropolitans
	Urbanites
	Suburbanites
	ConstrainedCityDwellers
	HardPressedLiving
	NumClusters = int(HardPressedLiving) + 1
)

// clusterNames follows Table 1 verbatim.
var clusterNames = [NumClusters]string{
	"Rural Residents",
	"Cosmopolitans",
	"Ethnicity Central",
	"Multicultural Metropolitans",
	"Urbanites",
	"Suburbanites",
	"Constrained City Dwellers",
	"Hard-pressed Living",
}

// clusterDefinitions carries the Table 1 "Definition" column.
var clusterDefinitions = [NumClusters]string{
	"Rural areas, low density, older and educated population",
	"Densely populated urban areas, high ethnic integration, young adults and students",
	"Denser central areas of London, non-white ethnic groups, young adults",
	"Urban areas in transition between centres and suburbia, high ethnic mix",
	"Urban areas mainly in southern England, average ethnic mix, low unemployment",
	"Population above retirement age and parents with school age children, low unemployment",
	"Densely populated areas, single/divorced population, higher level of unemployment",
	"Urban surroundings (northern England/southern Wales), higher rates of unemployment",
}

// Name returns the OAC supergroup name (Table 1).
func (c Cluster) Name() string {
	if c < 0 || int(c) >= NumClusters {
		return "Unknown"
	}
	return clusterNames[c]
}

// Definition returns the Table 1 description of the supergroup.
func (c Cluster) Definition() string {
	if c < 0 || int(c) >= NumClusters {
		return ""
	}
	return clusterDefinitions[c]
}

// String implements fmt.Stringer.
func (c Cluster) String() string { return c.Name() }

// Clusters returns all supergroups in Table 1 order.
func Clusters() []Cluster {
	cs := make([]Cluster, NumClusters)
	for i := range cs {
		cs[i] = Cluster(i)
	}
	return cs
}

// Valid reports whether c is one of the eight supergroups.
func (c Cluster) Valid() bool { return c >= 0 && int(c) < NumClusters }
