package census

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
)

// CountyID indexes a county (UTLA) in the Model.
type CountyID int

// DistrictID indexes a postcode district in the Model.
type DistrictID int

// CountyKind classifies a county's dominant character; it drives the
// geodemographic makeup of its districts.
type CountyKind int

// County kinds.
const (
	KindMetroCore        CountyKind = iota // Inner London
	KindMetroSuburb                        // Outer London
	KindMetro                              // Greater Manchester, West Midlands
	KindMetroResidential                   // West Yorkshire (more residential metro)
	KindHomeCounties                       // commuter-belt counties
	KindMixed                              // mixed urban/rural shires
	KindUrbanNorth                         // northern England / South Wales urban
	KindCoastal                            // coastal retirement/seaside counties
	KindRural                              // predominantly rural counties
)

// County is a UTLA/county of the synthetic UK.
type County struct {
	ID         CountyID
	Name       string
	Kind       CountyKind
	Area       geo.Disc // geometry on the national km grid
	Population int      // census residents at full scale
	Districts  []DistrictID
}

// District is a postcode district (the paper's finest aggregation level).
type District struct {
	ID         DistrictID
	Code       string // e.g. "EC", "WC", "MAN3"
	County     CountyID
	Area       geo.Disc
	Population int // census residents at full scale
	Cluster    Cluster
	// DayVisitorWeight is the district's relative attraction for work,
	// commerce and recreation trips; EC/WC-style central districts have
	// weights far exceeding their resident population, which is the
	// mechanism behind their outsized traffic collapse (§5.1).
	DayVisitorWeight float64
	// SeasonalShare is the fraction of the resident population that is
	// transient (long-term tourists, students in term-time housing) and a
	// candidate for leaving during lockdown (§3.4).
	SeasonalShare float64
}

// Model is the synthetic UK: counties, districts and lookup tables.
type Model struct {
	Counties  []County
	Districts []District

	byCountyName map[string]CountyID
	byDistrict   map[string]DistrictID
	totalPop     int
}

// countySpec is the static seed table the model is built from.
type countySpec struct {
	name   string
	kind   CountyKind
	x, y   float64 // centre, km grid
	radius float64 // km
	pop    int
}

// ukCounties approximates the real geography on a planar kilometre grid
// (x east, y north). Populations are rounded census figures; the five
// focus regions of §3.2 are present along with the top receiving counties
// of the Fig. 7 mobility matrix.
var ukCounties = []countySpec{
	{"Inner London", KindMetroCore, 530, 180, 12, 2_900_000},
	{"Outer London", KindMetroSuburb, 530, 180, 28, 4_800_000},
	{"Greater Manchester", KindMetro, 384, 398, 22, 2_800_000},
	{"West Midlands", KindMetro, 407, 286, 22, 2_900_000},
	{"West Yorkshire", KindMetroResidential, 430, 433, 20, 2_300_000},
	{"Hampshire", KindMixed, 450, 130, 30, 1_850_000},
	{"Kent", KindMixed, 590, 160, 28, 1_850_000},
	{"East Sussex", KindCoastal, 555, 110, 20, 850_000},
	{"Essex", KindMixed, 585, 215, 26, 1_800_000},
	{"Surrey", KindHomeCounties, 510, 150, 18, 1_200_000},
	{"Hertfordshire", KindHomeCounties, 520, 215, 16, 1_200_000},
	{"Berkshire", KindHomeCounties, 470, 170, 16, 900_000},
	{"Oxfordshire", KindMixed, 455, 205, 18, 690_000},
	{"Cambridgeshire", KindMixed, 540, 260, 20, 650_000},
	{"Tyne and Wear", KindUrbanNorth, 425, 565, 14, 1_100_000},
	{"Lancashire", KindUrbanNorth, 355, 440, 22, 1_500_000},
	{"South Wales", KindUrbanNorth, 290, 180, 24, 1_300_000},
	{"Devon", KindRural, 290, 90, 28, 800_000},
	{"Cumbria", KindRural, 330, 520, 26, 500_000},
	{"North Yorkshire", KindRural, 440, 470, 28, 600_000},
	{"Norfolk", KindRural, 620, 300, 26, 900_000},
	{"Cornwall", KindRural, 210, 55, 22, 570_000},
}

// innerLondonDistrict seeds the eight fixed Inner London postal districts
// analysed in §5. EC and WC are the central business/commercial districts
// with tiny resident populations (the paper quotes ≈30k residents in EC
// versus ≈400k in SW) and very large daytime visitor attraction, plus a
// high seasonal share (tourists, students).
type innerLondonDistrict struct {
	code          string
	pop           int
	cluster       Cluster
	visitorWeight float64
	seasonalShare float64
	angleDeg      float64 // placement around the Inner London centre
	radiusFrac    float64
}

var innerLondonDistricts = []innerLondonDistrict{
	{"EC", 30_000, Cosmopolitans, 9.0, 0.40, 15, 0.15},
	{"WC", 45_000, Cosmopolitans, 8.0, 0.40, 165, 0.15},
	{"N", 350_000, EthnicityCentral, 1.1, 0.10, 90, 0.6},
	{"E", 400_000, EthnicityCentral, 1.2, 0.12, 30, 0.65},
	{"SE", 420_000, MulticulturalMetropolitans, 0.9, 0.08, 300, 0.65},
	{"SW", 400_000, EthnicityCentral, 1.0, 0.12, 240, 0.65},
	{"W", 330_000, Cosmopolitans, 2.2, 0.25, 195, 0.6},
	{"NW", 340_000, MulticulturalMetropolitans, 0.9, 0.08, 135, 0.65},
}

// clusterMix returns the cluster sequence used for a county kind's
// districts: districts are assigned clusters round-robin from this list,
// so earlier entries dominate. The mixes encode §4.4's observations
// (e.g. ~45% of Inner London postcodes are Cosmopolitans and ~50%
// Ethnicity Central; metro cores have Cosmopolitan centres; rural
// counties are Rural Residents with a market town).
func clusterMix(kind CountyKind) []Cluster {
	switch kind {
	case KindMetroSuburb:
		return []Cluster{MulticulturalMetropolitans, Suburbanites, MulticulturalMetropolitans, Urbanites, Suburbanites}
	case KindMetro:
		return []Cluster{Cosmopolitans, MulticulturalMetropolitans, ConstrainedCityDwellers, HardPressedLiving, Suburbanites, MulticulturalMetropolitans}
	case KindMetroResidential:
		return []Cluster{Cosmopolitans, Suburbanites, HardPressedLiving, MulticulturalMetropolitans, Suburbanites}
	case KindHomeCounties:
		return []Cluster{Suburbanites, Urbanites, Suburbanites, Urbanites}
	case KindMixed:
		return []Cluster{Urbanites, Suburbanites, RuralResidents, Urbanites, RuralResidents}
	case KindUrbanNorth:
		return []Cluster{HardPressedLiving, ConstrainedCityDwellers, HardPressedLiving, Suburbanites, MulticulturalMetropolitans}
	case KindCoastal:
		return []Cluster{Urbanites, ConstrainedCityDwellers, Suburbanites, RuralResidents}
	case KindRural:
		return []Cluster{RuralResidents, RuralResidents, Urbanites, RuralResidents}
	default:
		return []Cluster{Urbanites}
	}
}

// visitorWeightFor returns the day-visitor attraction of the i-th district
// of a county kind; the first district of metro counties is the centre.
func visitorWeightFor(kind CountyKind, i int) float64 {
	switch kind {
	case KindMetro:
		if i == 0 {
			return 5.0 // CBD: offices, commerce, nightlife, few residents
		}
		return 0.8
	case KindMetroResidential:
		if i == 0 {
			return 3.0 // smaller commercial core
		}
		return 0.8
	case KindMetroSuburb:
		return 0.7
	case KindHomeCounties:
		return 0.6
	case KindMixed, KindCoastal:
		return 0.6
	case KindUrbanNorth:
		if i == 0 {
			return 2.0
		}
		return 0.7
	case KindRural:
		if i == 2 { // the market town
			return 1.0
		}
		return 0.4
	default:
		return 0.6
	}
}

// seasonalShareFor returns the transient-resident share per county kind.
func seasonalShareFor(kind CountyKind, i int) float64 {
	switch kind {
	case KindMetro:
		if i == 0 {
			return 0.25 // students + business travellers in metro centres
		}
		return 0.04
	case KindMetroResidential:
		if i == 0 {
			return 0.15
		}
		return 0.03
	case KindCoastal, KindRural:
		return 0.02
	default:
		return 0.03
	}
}

// districtsFor returns how many districts a county of the given
// population gets (Inner London is fixed at 8 elsewhere).
func districtsFor(pop int) int {
	n := pop / 400_000
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return n
}

// BuildUK constructs the deterministic synthetic United Kingdom. The
// layout is identical for every call with the same seed; seed only
// perturbs district placement jitter, not the administrative structure.
func BuildUK(seed uint64) *Model {
	src := rng.New(rng.Hash64(seed ^ 0xC0FFEE))
	m := &Model{
		byCountyName: make(map[string]CountyID),
		byDistrict:   make(map[string]DistrictID),
	}

	for _, spec := range ukCounties {
		cid := CountyID(len(m.Counties))
		county := County{
			ID:         cid,
			Name:       spec.name,
			Kind:       spec.kind,
			Area:       geo.Disc{Center: geo.Pt(spec.x, spec.y), Radius: spec.radius},
			Population: spec.pop,
		}

		if spec.kind == KindMetroCore {
			// Inner London: the eight fixed postal districts of §5.
			for _, d := range innerLondonDistricts {
				did := m.addDistrict(District{
					Code:             d.code,
					County:           cid,
					Area:             geo.Disc{Center: county.Area.PointOnRing(d.angleDeg*math.Pi/180, d.radiusFrac), Radius: 2.5},
					Population:       d.pop,
					Cluster:          d.cluster,
					DayVisitorWeight: d.visitorWeight,
					SeasonalShare:    d.seasonalShare,
				})
				county.Districts = append(county.Districts, did)
			}
		} else {
			n := districtsFor(spec.pop)
			mix := clusterMix(spec.kind)
			// Population split: the first (central) district of metro
			// counties is larger; remaining population is spread evenly
			// with mild deterministic jitter.
			shares := make([]float64, n)
			var total float64
			for i := range shares {
				s := 1.0
				switch {
				case i == 0 && spec.kind == KindMetro:
					// CBDs have small resident populations relative to
					// their daytime attraction (EC/WC-style).
					s = 0.5
				case i == 0 && spec.kind == KindMetroResidential:
					s = 0.6
				case i == 0 && spec.kind == KindUrbanNorth:
					s = 1.4
				}
				s *= src.Range(0.85, 1.15)
				shares[i] = s
				total += s
			}
			for i := 0; i < n; i++ {
				angle := 2 * math.Pi * float64(i) / float64(n)
				frac := 0.55
				if i == 0 {
					frac = 0.0 // centre
				} else {
					frac = src.Range(0.45, 0.8)
				}
				var placement float64
				if spec.kind == KindMetroSuburb {
					// Outer London is an annulus around Inner London.
					frac = src.Range(0.35, 0.65)
					placement = frac
				} else {
					placement = frac
				}
				code := fmt.Sprintf("%s%d", countyCode(spec.name), i+1)
				did := m.addDistrict(District{
					Code:             code,
					County:           cid,
					Area:             geo.Disc{Center: county.Area.PointOnRing(angle, placement), Radius: spec.radius / float64(n) * 1.2},
					Population:       int(float64(spec.pop) * shares[i] / total),
					Cluster:          mix[i%len(mix)],
					DayVisitorWeight: visitorWeightFor(spec.kind, i),
					SeasonalShare:    seasonalShareFor(spec.kind, i),
				})
				county.Districts = append(county.Districts, did)
			}
		}

		// Keep the county total exactly consistent with its district
		// split (integer rounding and the fixed Inner-London districts
		// would otherwise drift).
		county.Population = 0
		for _, did := range county.Districts {
			county.Population += m.Districts[did].Population
		}
		m.Counties = append(m.Counties, county)
		m.byCountyName[county.Name] = cid
	}

	for _, c := range m.Counties {
		m.totalPop += c.Population
	}
	return m
}

// addDistrict appends d, assigning its ID, and indexes its code.
func (m *Model) addDistrict(d District) DistrictID {
	d.ID = DistrictID(len(m.Districts))
	m.Districts = append(m.Districts, d)
	m.byDistrict[d.Code] = d.ID
	return d.ID
}

// countyCode derives a short postcode-style prefix from a county name
// ("Greater Manchester" → "GM", "Kent" → "KEN").
func countyCode(name string) string {
	initials := ""
	wordStart := true
	for _, r := range name {
		if r == ' ' {
			wordStart = true
			continue
		}
		if wordStart {
			initials += string(r)
			wordStart = false
		}
	}
	if len(initials) >= 2 {
		return initials
	}
	if len(name) >= 3 {
		up := []rune(name)
		return string(up[0]) + string(up[1]-32+32) + string(up[2]) // keep simple 3-letter code
	}
	return name
}

// County returns the county with the given ID.
func (m *Model) County(id CountyID) *County { return &m.Counties[id] }

// District returns the district with the given ID.
func (m *Model) District(id DistrictID) *District { return &m.Districts[id] }

// CountyByName looks up a county by its exact name.
func (m *Model) CountyByName(name string) (*County, bool) {
	id, ok := m.byCountyName[name]
	if !ok {
		return nil, false
	}
	return &m.Counties[id], true
}

// DistrictByCode looks up a district by its postcode-district code.
func (m *Model) DistrictByCode(code string) (*District, bool) {
	id, ok := m.byDistrict[code]
	if !ok {
		return nil, false
	}
	return &m.Districts[id], true
}

// TotalPopulation returns the full-scale census population.
func (m *Model) TotalPopulation() int { return m.totalPop }

// InnerLondon returns the Inner London county.
func (m *Model) InnerLondon() *County {
	c, ok := m.CountyByName("Inner London")
	if !ok {
		panic("census: model missing Inner London")
	}
	return c
}

// FocusRegionNames lists the five high-density study regions of §3.2 and
// §4.3, in the paper's order.
func FocusRegionNames() []string {
	return []string{"Inner London", "Outer London", "Greater Manchester", "West Midlands", "West Yorkshire"}
}

// FocusRegions resolves FocusRegionNames against the model.
func (m *Model) FocusRegions() []*County {
	names := FocusRegionNames()
	out := make([]*County, 0, len(names))
	for _, n := range names {
		c, ok := m.CountyByName(n)
		if !ok {
			panic("census: model missing focus region " + n)
		}
		out = append(out, c)
	}
	return out
}

// ClusterPopulation returns the full-scale census population per OAC
// cluster.
func (m *Model) ClusterPopulation() map[Cluster]int {
	out := make(map[Cluster]int, NumClusters)
	for _, d := range m.Districts {
		out[d.Cluster] += d.Population
	}
	return out
}

// DistrictsInCluster returns all districts labelled with the cluster.
func (m *Model) DistrictsInCluster(c Cluster) []*District {
	var out []*District
	for i := range m.Districts {
		if m.Districts[i].Cluster == c {
			out = append(out, &m.Districts[i])
		}
	}
	return out
}

// LondonClusters returns the clusters present in Inner London (the paper
// finds exactly three map to London: Cosmopolitans, Ethnicity Central and
// Multicultural Metropolitans).
func (m *Model) LondonClusters() []Cluster {
	seen := make(map[Cluster]bool)
	var out []Cluster
	for _, did := range m.InnerLondon().Districts {
		c := m.Districts[did].Cluster
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
