// Sharded adapters for the serial analyzers of internal/core and
// internal/signaling. Each one splits its analyzer's per-day work into a
// parallel per-record half (run in the shard stage) and an exact fold
// (run in the serial merge stage), so the aggregates are bit-identical
// to the serial pipeline's — see the package comment for the invariants.
package stream

import (
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/signaling"
	"repro/internal/timegrid"
)

// --- mobility -----------------------------------------------------------

// Mobility shards the §2.3 per-user metric computation (merge visits,
// top-N filter, entropy, radius of gyration — the expensive half of
// core.MobilityAnalyzer.ConsumeDay) across workers, then folds the
// results into the wrapped analyzer in canonical trace order, which
// keeps every floating point accumulation identical to the serial path.
type Mobility struct {
	a       *core.MobilityAnalyzer
	topo    *radio.Topology
	topN    int
	mergers []core.VisitMerger // one per shard: ShardDay calls run concurrently
	traces  []mobsim.DayTrace
	metrics []core.DayMetrics
	inStudy bool
}

// NewMobility wraps an analyzer for sharded consumption across the given
// number of shards (the engine's Config.Shards after WithDefaults).
func NewMobility(a *core.MobilityAnalyzer, shards int) *Mobility {
	return &Mobility{
		a:       a,
		topo:    a.Population().Topology(),
		topN:    a.TopN(),
		mergers: make([]core.VisitMerger, shards),
	}
}

// Reset rebinds the wrapper to a fresh analyzer, keeping the per-shard
// merge scratch and the day metric buffer warm. Sweep workers reset one
// wrapper per scenario run instead of allocating a new one, so the
// steady state of a multi-scenario sweep reuses every merger. The
// wrapped analyzer must use the same shard partitioning (the shard
// count is fixed at construction).
func (m *Mobility) Reset(a *core.MobilityAnalyzer) *Mobility {
	m.a = a
	m.topo = a.Population().Topology()
	m.topN = a.TopN()
	m.traces = nil
	m.inStudy = false
	return m
}

// BeginDay sizes the per-day metric buffer.
func (m *Mobility) BeginDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	_, m.inStudy = day.ToStudyDay()
	if !m.inStudy {
		return
	}
	m.traces = traces
	if cap(m.metrics) < len(traces) {
		m.metrics = make([]core.DayMetrics, len(traces))
	}
	m.metrics = m.metrics[:len(traces)]
}

// ShardDay computes the metrics of the shard's users. Writes land on
// disjoint indices of the shared buffer, so shards never contend; each
// shard reuses its own merge scratch.
func (m *Mobility) ShardDay(shard int, _ timegrid.SimDay, traces []mobsim.DayTrace, idx []int) {
	if !m.inStudy {
		return
	}
	mg := &m.mergers[shard]
	for _, i := range idx {
		m.metrics[i] = mg.DayMetrics(&traces[i], m.topo, m.topN)
	}
}

// EndDay folds the day's metrics into the analyzer in trace order.
func (m *Mobility) EndDay(day timegrid.SimDay) {
	if !m.inStudy {
		return
	}
	m.a.ConsumeDayMetrics(day, m.traces, m.metrics)
	m.traces = nil
}

// --- mobility matrix ----------------------------------------------------

// Matrix shards the §3.4 Inner-London matrix: the per-user top-N county
// sets are computed in parallel and folded back as exact unit-count
// increments.
type Matrix struct {
	m        *core.MobilityMatrix
	mergers  []core.VisitMerger // one per shard: ShardDay calls run concurrently
	inCohort []bool
	counties [][]census.CountyID
	sd       timegrid.StudyDay
	inStudy  bool
}

// NewMatrix wraps a matrix for sharded consumption across the given
// number of shards (the engine's Config.Shards after WithDefaults).
func NewMatrix(m *core.MobilityMatrix, shards int) *Matrix {
	return &Matrix{m: m, mergers: make([]core.VisitMerger, shards)}
}

// Reset rebinds the wrapper to a fresh matrix, keeping the per-shard
// merge scratch, the cohort flags and the per-index county storage warm
// (index i always belongs to the same user across scenario runs on one
// shared world, so the capacity profile carries over exactly).
func (x *Matrix) Reset(m *core.MobilityMatrix) *Matrix {
	x.m = m
	x.inStudy = false
	return x
}

// BeginDay sizes and clears the per-day buffers. The per-index county
// slices keep their capacity across days (index i always belongs to the
// same user), so steady-state days append without allocating.
func (x *Matrix) BeginDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	x.sd, x.inStudy = day.ToStudyDay()
	if !x.inStudy {
		return
	}
	n := len(traces)
	if cap(x.inCohort) < n {
		x.inCohort = make([]bool, n)
		x.counties = make([][]census.CountyID, n)
	}
	x.inCohort = x.inCohort[:n]
	x.counties = x.counties[:n]
	for i := 0; i < n; i++ {
		x.inCohort[i] = false
	}
}

// ShardDay resolves the county sets of the shard's cohort members, each
// shard reusing its own merge scratch and the per-index county storage.
func (x *Matrix) ShardDay(shard int, _ timegrid.SimDay, traces []mobsim.DayTrace, idx []int) {
	if !x.inStudy {
		return
	}
	mg := &x.mergers[shard]
	for _, i := range idx {
		cs, ok := x.m.UserCountiesInto(mg, &traces[i], x.counties[i][:0])
		x.counties[i] = cs
		x.inCohort[i] = ok
	}
}

// EndDay folds the cohort's county sets into the matrix.
func (x *Matrix) EndDay(timegrid.SimDay) {
	if !x.inStudy {
		return
	}
	for i, in := range x.inCohort {
		if in {
			x.m.ConsumeUserCounties(x.sd, x.counties[i])
		}
	}
}

// --- home detection -----------------------------------------------------

// Homes shards the §2.3 night-time home detection: every shard owns a
// full core.HomeDetector holding only its users' state, and Detect
// unions the per-shard results. Detector state is strictly per-user and
// users are pinned to shards, so the union equals a single detector fed
// the whole stream.
type Homes struct {
	dets []*core.HomeDetector
}

// NewHomes builds a sharded detector with the paper's parameters.
func NewHomes(topo *radio.Topology, shards int) *Homes {
	h := &Homes{dets: make([]*core.HomeDetector, shards)}
	for i := range h.dets {
		h.dets[i] = core.NewHomeDetector(topo)
	}
	return h
}

// BeginDay implements TraceSharder.
func (h *Homes) BeginDay(timegrid.SimDay, []mobsim.DayTrace) {}

// ShardDay feeds the shard's users into its detector.
func (h *Homes) ShardDay(shard int, day timegrid.SimDay, traces []mobsim.DayTrace, idx []int) {
	det := h.dets[shard]
	for _, i := range idx {
		det.ConsumeTrace(day, &traces[i])
	}
}

// EndDay implements TraceSharder.
func (h *Homes) EndDay(timegrid.SimDay) {}

// Detect finalises detection across all shards.
func (h *Homes) Detect() map[popsim.UserID]core.Home {
	out := make(map[popsim.UserID]core.Home)
	for _, det := range h.dets {
		for u, home := range det.Detect() {
			out[u] = home
		}
	}
	return out
}

// --- control-plane signaling --------------------------------------------

// Signaling shards §2.2 control-plane analytics: each shard generates
// the events of its users straight from their traces (the generator is
// per-user deterministic) and folds them into a shard-local
// signaling.Aggregator; Merged combines the aggregators, which is exact
// because every aggregate is an integer count or a user set. It also
// implements EventSharder, so a persisted event feed can be dispatched
// to the same shard-local aggregators instead.
type Signaling struct {
	gen  *signaling.Generator
	aggs []*signaling.Aggregator
	// background re-creates the M2M / inbound-roamer event floor that
	// Generator.Day adds on top of the native traces; the non-native
	// users are pre-partitioned across shards at construction.
	background [][]int
}

// NewSignaling builds a sharded aggregation stage over a generator.
// When background is true, shards also emit the M2M and roamer event
// floor, matching signaling.Generator.Day.
func NewSignaling(gen *signaling.Generator, topo *radio.Topology, shards int, background bool) *Signaling {
	s := &Signaling{gen: gen, aggs: make([]*signaling.Aggregator, shards)}
	for i := range s.aggs {
		s.aggs[i] = signaling.NewAggregator(topo)
	}
	if background {
		s.background = make([][]int, shards)
		pop := gen.Population()
		for i := range pop.Users {
			u := &pop.Users[i]
			if u.Kind == popsim.NativeM2M || u.Kind == popsim.InboundRoamer {
				sh := ShardOfUser(uint64(u.ID), shards)
				s.background[sh] = append(s.background[sh], i)
			}
		}
	}
	return s
}

// BeginDay implements TraceSharder.
func (s *Signaling) BeginDay(timegrid.SimDay, []mobsim.DayTrace) {}

// ShardDay generates and aggregates the shard's events.
func (s *Signaling) ShardDay(shard int, day timegrid.SimDay, traces []mobsim.DayTrace, idx []int) {
	agg := s.aggs[shard]
	for _, i := range idx {
		s.gen.UserDay(&traces[i], day, agg.Consume)
	}
	if s.background != nil {
		pop := s.gen.Population()
		for _, ui := range s.background[shard] {
			u := &pop.Users[ui]
			switch u.Kind {
			case popsim.NativeM2M:
				s.gen.MachineDay(u, day, agg.Consume)
			case popsim.InboundRoamer:
				s.gen.RoamerDay(u, day, agg.Consume)
			}
		}
	}
}

// EndDay implements TraceSharder.
func (s *Signaling) EndDay(timegrid.SimDay) {}

// Events returns an EventSharder view over the same shard-local
// aggregators, for replaying a persisted event feed instead of
// generating events from traces. (A separate view is needed because the
// TraceSharder and EventSharder method sets share names.)
func (s *Signaling) Events() EventSharder { return signalingEvents{s} }

type signalingEvents struct{ s *Signaling }

func (e signalingEvents) BeginDay(timegrid.SimDay, []signaling.Event) {}

func (e signalingEvents) ShardDay(shard int, _ timegrid.SimDay, events []signaling.Event, idx []int) {
	agg := e.s.aggs[shard]
	for _, i := range idx {
		agg.Consume(&events[i])
	}
}

func (e signalingEvents) EndDay(timegrid.SimDay) {}

// Totals returns the cumulative event and failure counts across all
// shards — O(shards), allocation-free, for rolling monitors that only
// need the headline numbers (full district/type breakdowns: Merged).
func (s *Signaling) Totals() (events, failures int64) {
	for _, a := range s.aggs {
		events += a.Total
		failures += a.Failures
	}
	return events, failures
}

// Merged returns one aggregator combining every shard, merged in shard
// order.
func (s *Signaling) Merged(topo *radio.Topology) *signaling.Aggregator {
	out := signaling.NewAggregator(topo)
	for _, a := range s.aggs {
		out.Merge(a)
	}
	return out
}
