package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/fault"
	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// DefaultShards is the logical partition count used when Config.Shards
// is unset. Outputs are shard-count invariant for every consumer in this
// package; a fixed default merely keeps profiles comparable across runs.
const DefaultShards = 8

// Config sizes the engine.
type Config struct {
	// Workers bounds the goroutines of each pipeline stage: a source
	// built from this config uses up to Workers producers, and the
	// engine up to Workers shard tasks, so a full pipeline peaks at
	// about twice this many runnable goroutines. <= 0 means GOMAXPROCS.
	Workers int
	// Shards is the number of logical partitions. <= 0 means
	// DefaultShards.
	Shards int
	// Buffer is the number of extra day batches a source may compute
	// ahead of consumption (backpressure window). <= 0 means 2.
	Buffer int
	// EngineShards, when > 1, makes KPI day production run
	// traffic.Engine.DayAppendSharded with this shard count: the visit
	// accumulation of each day is partitioned across EngineShards
	// accumulator tiles and merged deterministically, so a
	// single-scenario run scales within a day, not just across days.
	// The records are a pure function of (stack, day, EngineShards) —
	// invariant to Workers — but differ from the serial engine in
	// floating-point association (≤1e-9 relative per KPI; see
	// traffic.Engine.DayAppendSharded). <= 1 keeps the bit-identical
	// serial DayAppend.
	EngineShards int
	// Metrics, when non-nil, instruments everything built from this
	// config — the engine's stage timings and per-shard record counts,
	// the source's worker busy/idle and re-sequencing stalls, the buffer
	// pool's hit rate, and (via traffic.Engine.Instrument) KPI day
	// latency. Handles resolve at construction, so the hot path performs
	// only atomic updates and stays at 0 allocs/op; nil (the default)
	// keeps the pipeline bit-identical and entirely uninstrumented. See
	// PERFORMANCE.md, "Observability", for the metric catalog.
	Metrics *obs.Registry
	// Fault, when non-nil, arms deterministic fault injection at the
	// pipeline's named sites (see internal/fault): day production
	// (fault.ProduceDay), parallel shard tasks (fault.ShardTask) and the
	// serial merge stage (fault.MergeDay). nil (the default) keeps every
	// site at a single nil-check and the pipeline bit-identical — the
	// chaos suite and RELIABILITY.md document the failure semantics.
	Fault *fault.Injector
}

// WithDefaults returns the config with unset fields resolved.
func (c Config) WithDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.Buffer <= 0 {
		c.Buffer = 2
	}
	return c
}

// TraceSharder consumes day traces partitioned by user. For every day
// the engine calls BeginDay once, then ShardDay concurrently (one call
// per shard, with disjoint index sets into the day's trace slice, always
// in input order within a shard), then EndDay once after every shard
// call returned. Shard s always receives the same users, so per-shard
// state evolves identically regardless of worker count.
type TraceSharder interface {
	BeginDay(day timegrid.SimDay, traces []mobsim.DayTrace)
	ShardDay(shard int, day timegrid.SimDay, traces []mobsim.DayTrace, idx []int)
	EndDay(day timegrid.SimDay)
}

// KPISharder is the TraceSharder counterpart for per-cell KPI records,
// partitioned by cell ID.
type KPISharder interface {
	BeginDay(day timegrid.SimDay, cells []traffic.CellDay)
	ShardDay(shard int, day timegrid.SimDay, cells []traffic.CellDay, idx []int)
	EndDay(day timegrid.SimDay)
}

// EventSharder is the TraceSharder counterpart for control-plane events,
// partitioned by user ID.
type EventSharder interface {
	BeginDay(day timegrid.SimDay, events []signaling.Event)
	ShardDay(shard int, day timegrid.SimDay, events []signaling.Event, idx []int)
	EndDay(day timegrid.SimDay)
}

// TraceConsumer is a serial per-day trace consumer (the shape of
// experiments.DayConsumer); it runs in the merge stage, in day order.
type TraceConsumer interface {
	ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace)
}

// KPIConsumer is a serial per-day KPI consumer (the shape of
// experiments.KPIConsumer); it runs in the merge stage, in day order.
type KPIConsumer interface {
	ConsumeDay(day timegrid.SimDay, cells []traffic.CellDay)
}

// Engine drives sources through sharded and serial consumers.
type Engine struct {
	cfg Config

	traceSharders []TraceSharder
	kpiSharders   []KPISharder
	eventSharders []EventSharder
	traceSerial   []TraceConsumer
	kpiSerial     []KPIConsumer

	// per-day partition scratch, reused across days.
	traceIdx [][]int
	cellIdx  [][]int
	eventIdx [][]int

	sem chan struct{}

	// m holds the engine's metric handles; nil when cfg.Metrics is unset
	// (the default), in which case runDay takes no timestamps at all.
	m *engineMetrics
	// fi is the armed fault injector; nil (the default) costs one
	// nil-check per site.
	fi *fault.Injector
}

// engineMetrics are the engine's handles, resolved once in NewEngine so
// runDay never touches the registry. Per-shard counters are indexed by
// shard — the partition is stable (ShardOfUser/ShardOfCell), so shard NN
// tallies the same users every day and the counts expose partition skew.
type engineMetrics struct {
	days       *obs.Counter   // stream.engine.days: days merged
	shardStage *obs.Histogram // stream.engine.shard_stage_ns: parallel stage latency per day
	mergeStage *obs.Histogram // stream.engine.merge_stage_ns: serial merge latency per day
	traces     []*obs.Counter // stream.shard.NN.traces
	visits     []*obs.Counter // stream.shard.NN.visits
}

func newEngineMetrics(r *obs.Registry, shards int) *engineMetrics {
	if r == nil {
		return nil
	}
	m := &engineMetrics{
		days:       r.Counter("stream.engine.days"),
		shardStage: r.Histogram("stream.engine.shard_stage_ns", 1),
		mergeStage: r.Histogram("stream.engine.merge_stage_ns", 1),
	}
	for i := 0; i < shards; i++ {
		m.traces = append(m.traces, r.Counter(fmt.Sprintf("stream.shard.%02d.traces", i)))
		m.visits = append(m.visits, r.Counter(fmt.Sprintf("stream.shard.%02d.visits", i)))
	}
	return m
}

func (m *engineMetrics) shardStageH() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.shardStage
}

func (m *engineMetrics) mergeStageH() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.mergeStage
}

// NewEngine builds an engine; consumers are attached with the Add
// methods before Run.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.WithDefaults()
	e := &Engine{cfg: cfg, sem: make(chan struct{}, cfg.Workers)}
	e.traceIdx = makeParts(cfg.Shards)
	e.cellIdx = makeParts(cfg.Shards)
	e.eventIdx = makeParts(cfg.Shards)
	e.m = newEngineMetrics(cfg.Metrics, cfg.Shards)
	e.fi = cfg.Fault
	return e
}

func makeParts(n int) [][]int {
	p := make([][]int, n)
	for i := range p {
		p[i] = make([]int, 0, 64)
	}
	return p
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// AddTraceSharder attaches a sharded trace consumer.
func (e *Engine) AddTraceSharder(s TraceSharder) { e.traceSharders = append(e.traceSharders, s) }

// AddKPISharder attaches a sharded KPI consumer.
func (e *Engine) AddKPISharder(s KPISharder) { e.kpiSharders = append(e.kpiSharders, s) }

// AddEventSharder attaches a sharded event consumer.
func (e *Engine) AddEventSharder(s EventSharder) { e.eventSharders = append(e.eventSharders, s) }

// AddTraceConsumer attaches a serial merge-stage trace consumer.
func (e *Engine) AddTraceConsumer(c TraceConsumer) { e.traceSerial = append(e.traceSerial, c) }

// AddKPIConsumer attaches a serial merge-stage KPI consumer.
func (e *Engine) AddKPIConsumer(c KPIConsumer) { e.kpiSerial = append(e.kpiSerial, c) }

// ShardOfUser returns the shard a user's records land on under s shards.
// The hash is a stable bit mixer, so the partition depends only on the
// user ID and shard count — never on run order or worker count.
func ShardOfUser(u uint64, s int) int { return int(rng.Hash64(u) % uint64(s)) }

// ShardOfCell returns the shard a cell's records land on under s shards.
func ShardOfCell(c uint64, s int) int { return int(rng.Hash64(c^0xCE11CE11) % uint64(s)) }

// Run pulls day batches from the source until io.EOF, fanning each day
// out across the shard workers and merging before the next day starts.
// After a day's merge stage the batch is released back to its source
// (DayBatch.Release), so consumers must copy anything they keep — see
// the buffer-ownership rules in README.md.
//
// Failure semantics (see RELIABILITY.md): ctx cancellation surfaces as
// ctx.Err() within at most one day of work; a panic in any shard task
// or the merge stage is recovered into a *WorkerPanic and returned as
// a joined error. On any early exit — cancellation, source error, or a
// failed day — the source is stopped (Stopper) so its producers exit
// and in-flight pooled buffers return to their free lists; the day's
// batch is always released exactly once.
func (e *Engine) Run(ctx context.Context, src Source) error {
	for {
		if err := ctx.Err(); err != nil {
			stopSource(src)
			return err
		}
		b, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			stopSource(src)
			return err
		}
		dayErr := e.runDay(&b)
		b.Release()
		if dayErr != nil {
			stopSource(src)
			return dayErr
		}
	}
}

// runDay processes one day batch: partition, parallel shard stage,
// serial merge stage. A non-nil error means the day failed — shard
// state may be mid-day inconsistent and the run must stop.
func (e *Engine) runDay(b *DayBatch) error {
	s := e.cfg.Shards
	partition(e.traceIdx, len(b.Traces), func(i int) int {
		return ShardOfUser(uint64(b.Traces[i].User), s)
	})
	partition(e.cellIdx, len(b.Cells), func(i int) int {
		return ShardOfCell(uint64(b.Cells[i].Cell), s)
	})
	partition(e.eventIdx, len(b.Events), func(i int) int {
		return ShardOfUser(uint64(b.Events[i].User), s)
	})

	if m := e.m; m != nil {
		m.days.Inc()
		// Per-shard record tallies: O(traces) integer adds, only when
		// metrics are on. The partition is stable, so these expose skew
		// across the run, not per-day noise.
		for sh := 0; sh < s; sh++ {
			idx := e.traceIdx[sh]
			nv := 0
			for _, i := range idx {
				nv += len(b.Traces[i].Visits)
			}
			m.traces[sh].Add(int64(len(idx)))
			m.visits[sh].Add(int64(nv))
		}
	}

	for _, sh := range e.traceSharders {
		sh.BeginDay(b.Day, b.Traces)
	}
	for _, sh := range e.kpiSharders {
		sh.BeginDay(b.Day, b.Cells)
	}
	for _, sh := range e.eventSharders {
		sh.BeginDay(b.Day, b.Events)
	}

	// Shard-stage failures (recovered panics, injected faults) collect
	// here; the slice stays nil — no allocation — on the clean path.
	var failMu sync.Mutex
	var failed []error
	fail := func(err error) {
		failMu.Lock()
		failed = append(failed, err)
		failMu.Unlock()
	}

	ssp := obs.Start(e.m.shardStageH())
	var wg sync.WaitGroup
	run := func(shard int, task func()) {
		wg.Add(1)
		e.sem <- struct{}{}
		go func() {
			defer func() { <-e.sem; wg.Done() }()
			var err error
			func() {
				defer capturePanic(&err, "shard", shard, b.Day)
				if ferr := e.fi.Fire(fault.ShardTask, int64(b.Day)); ferr != nil {
					err = ferr
					return
				}
				task()
			}()
			if err != nil {
				fail(err)
			}
		}()
	}
	for _, sh := range e.traceSharders {
		for i := 0; i < s; i++ {
			if len(e.traceIdx[i]) > 0 {
				sh, i := sh, i
				run(i, func() { sh.ShardDay(i, b.Day, b.Traces, e.traceIdx[i]) })
			}
		}
	}
	for _, sh := range e.kpiSharders {
		for i := 0; i < s; i++ {
			if len(e.cellIdx[i]) > 0 {
				sh, i := sh, i
				run(i, func() { sh.ShardDay(i, b.Day, b.Cells, e.cellIdx[i]) })
			}
		}
	}
	for _, sh := range e.eventSharders {
		for i := 0; i < s; i++ {
			if len(e.eventIdx[i]) > 0 {
				sh, i := sh, i
				run(i, func() { sh.ShardDay(i, b.Day, b.Events, e.eventIdx[i]) })
			}
		}
	}
	wg.Wait()
	ssp.End()
	if failed != nil {
		// Fail before the merge: a shard that died mid-day leaves its
		// consumer state inconsistent, so folding it would corrupt the
		// aggregates rather than report them.
		return errors.Join(failed...)
	}

	// Merge stage: strictly serial, fixed order. A panic here (or an
	// injected merge fault) fails the day the same way.
	msp := obs.Start(e.m.mergeStageH())
	var mergeErr error
	func() {
		defer capturePanic(&mergeErr, "merge", -1, b.Day)
		if ferr := e.fi.Fire(fault.MergeDay, int64(b.Day)); ferr != nil {
			mergeErr = ferr
			return
		}
		for _, sh := range e.traceSharders {
			sh.EndDay(b.Day)
		}
		for _, sh := range e.kpiSharders {
			sh.EndDay(b.Day)
		}
		for _, sh := range e.eventSharders {
			sh.EndDay(b.Day)
		}
		for _, c := range e.traceSerial {
			c.ConsumeDay(b.Day, b.Traces)
		}
		if b.Cells != nil {
			for _, c := range e.kpiSerial {
				c.ConsumeDay(b.Day, b.Cells)
			}
		}
	}()
	msp.End()
	return mergeErr
}

// partition fills parts with the indices 0..n-1 grouped by shardOf,
// preserving input order within each shard.
func partition(parts [][]int, n int, shardOf func(int) int) {
	for i := range parts {
		parts[i] = parts[i][:0]
	}
	for i := 0; i < n; i++ {
		s := shardOf(i)
		parts[s] = append(parts[s], i)
	}
}
