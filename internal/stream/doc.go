// Package stream is the sharded streaming analytics engine: it turns the
// batch pipeline of internal/experiments into a parallel, backpressured
// one without changing a single output bit.
//
// A Source delivers the three record kinds of the paper's measurement
// system — per-user day traces (§2.3), per-cell daily KPI records (§2.4)
// and control-plane events (§2.2) — one simulated day at a time, either
// from the live simulator (SimSource, which computes days ahead on a
// worker pool and re-sequences them) or from persisted feeds (see
// internal/feeds). The Engine partitions each day's records across a
// fixed number of logical shards by stable hash (user ID for traces and
// events, cell ID for KPI records), runs the per-shard work on a bounded
// worker pool, and then merges shard results deterministically.
//
// Three properties hold by construction and are what every consumer in
// this package is designed around:
//
//   - Shard-count invariance: per-shard state only ever accumulates
//     exactly mergeable quantities (integer counts, disjoint per-user
//     maps, value multisets) or per-record results folded back in
//     canonical input order, so outputs do not depend on Config.Shards.
//   - Worker-count invariance: a shard's records are processed by one
//     goroutine at a time in input order, and merges run serially in
//     shard order, so outputs do not depend on Config.Workers.
//   - Serial equivalence: the merge paths perform the same floating
//     point operations in the same order as the serial analyzers in
//     internal/core, so experiments.RunStreaming is bit-identical to
//     experiments.RunStandard at the same seed.
//
// Backpressure is bounded channels end to end: a SimSource keeps at most
// Workers+Buffer days in flight, and the engine finishes every shard of
// day d before merging it and pulling day d+1.
//
// Engines and sources are one-run objects, but cheap ones: everything
// expensive (the census, topology and population behind a SimSource's
// simulator) lives in the scenario-independent experiments.World, so a
// scenario sweep (experiments.RunSweep, cmd/mnosweep) runs one engine +
// source pair per scenario over the same shared world, each run
// recycling its own day buffers through DayBatch.Release.
package stream
