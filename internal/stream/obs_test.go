package stream

import (
	"context"
	"testing"

	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/timegrid"
)

// TestBufferPoolInstrumentedAllocFree pins the hot-path guarantee on the
// recycling path with metrics enabled: a warm get/recycle cycle on an
// instrumented pool performs zero heap allocations, and the hit/miss
// counters account for every draw.
func TestBufferPoolInstrumentedAllocFree(t *testing.T) {
	reg := obs.New()
	p := NewBufferPool(2).Instrument(reg)
	warm := p.get() // first draw allocates the store (a miss)
	warm.Recycle(warm.curGen())
	allocs := testing.AllocsPerRun(100, func() {
		r := p.get()
		r.Recycle(r.curGen())
	})
	if allocs > 0 {
		t.Errorf("instrumented pool cycle allocates %.1f per op, want 0", allocs)
	}
	s := reg.Snapshot()
	hits, misses := s.Counters["stream.pool.hits"], s.Counters["stream.pool.misses"]
	if misses < 1 {
		t.Errorf("stream.pool.misses = %d, want >= 1 (the cold draw)", misses)
	}
	if hits < 100 {
		t.Errorf("stream.pool.hits = %d, want >= 100 (the warm cycles)", hits)
	}
}

// syntheticBatchesWithVisits is syntheticBatches with v zero-valued
// visits per trace, so the engine's per-shard visit tally has something
// to count.
func syntheticBatchesWithVisits(days, users, v int) []DayBatch {
	batches := syntheticBatches(days, users)
	for d := range batches {
		for u := range batches[d].Traces {
			batches[d].Traces[u].Visits = make([]mobsim.Visit, v)
		}
	}
	return batches
}

// TestEngineMetrics runs the engine with metrics enabled and checks the
// accounting: day counter equals days run, per-shard trace/visit tallies
// sum to the input totals, both stage histograms saw every day — and the
// sharded consumer observes exactly what it would without metrics.
func TestEngineMetrics(t *testing.T) {
	const days, users, shards, visits = 4, 120, 3, 5

	plain := newRecordingSharder(shards)
	e := NewEngine(Config{Workers: 2, Shards: shards})
	e.AddTraceSharder(plain)
	if err := e.Run(context.Background(), NewSliceSource(syntheticBatchesWithVisits(days, users, visits))); err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	rec := newRecordingSharder(shards)
	ie := NewEngine(Config{Workers: 2, Shards: shards, Metrics: reg})
	ie.AddTraceSharder(rec)
	if err := ie.Run(context.Background(), NewSliceSource(syntheticBatchesWithVisits(days, users, visits))); err != nil {
		t.Fatal(err)
	}

	// Instrumentation observes, never perturbs: identical fan-out.
	for day := timegrid.SimDay(0); day < days; day++ {
		for s := 0; s < shards; s++ {
			a, b := plain.perDay[day][s], rec.perDay[day][s]
			if len(a) != len(b) {
				t.Fatalf("day %d shard %d: %d vs %d users with metrics on", day, s, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("day %d shard %d: order changed with metrics on", day, s)
				}
			}
		}
	}

	s := reg.Snapshot()
	if got := s.Counters["stream.engine.days"]; got != days {
		t.Errorf("stream.engine.days = %d, want %d", got, days)
	}
	var traceSum, visitSum int64
	for i := 0; i < shards; i++ {
		name := []string{"stream.shard.00", "stream.shard.01", "stream.shard.02"}[i]
		tr, ok := s.Counters[name+".traces"]
		if !ok {
			t.Fatalf("missing %s.traces in %v", name, s.Counters)
		}
		traceSum += tr
		visitSum += s.Counters[name+".visits"]
	}
	if traceSum != days*users {
		t.Errorf("per-shard traces sum to %d, want %d", traceSum, days*users)
	}
	if visitSum != days*users*visits {
		t.Errorf("per-shard visits sum to %d, want %d", visitSum, days*users*visits)
	}
	for _, h := range []string{"stream.engine.shard_stage_ns", "stream.engine.merge_stage_ns"} {
		if got := s.Histograms[h].Count; got != days {
			t.Errorf("%s count = %d, want %d", h, got, days)
		}
	}
}
