package stream

import (
	"fmt"
	"math"

	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// QSketch is a mergeable streaming quantile sketch over non-negative
// values, built for the §2.4 per-day KPI medians at scales where
// retaining every cell's value is not an option. It is an HDR-style
// histogram: log-spaced bins with a fixed number of bins per decade, so
// any quantile is answered with bounded *relative* error (about
// 10^(1/bpd)-1; ~7.5% at the default 32 bins per decade) in O(1) memory.
//
// Unlike the P² estimator in internal/stats — which is order-sensitive
// and cannot be combined — bin counts add, so per-shard sketches merged
// in any order equal one sketch fed the whole stream. That makes QSketch
// results shard- and worker-count invariant by construction.
//
// Values below Lo (including zero) are tracked exactly in an underflow
// count; values above Hi saturate into the top bin. Negative values are
// clamped to the underflow count (KPI metrics are non-negative).
type QSketch struct {
	bins  []int64
	under int64
	count int64
}

// Sketch resolution. Lo/Hi bound the resolvable magnitude range; KPI
// values (MB, users, load fractions, Mbps, loss percentages) all fall
// well inside it.
const (
	sketchBPD = 32   // bins per decade
	sketchLo  = 1e-9 // smallest resolvable magnitude
	sketchHi  = 1e12 // largest resolvable magnitude
	sketchLgL = -9.0 // log10(sketchLo)
	sketchLgH = 12.0 // log10(sketchHi)
)

const sketchBins = int((sketchLgH - sketchLgL) * sketchBPD)

// NewQSketch returns an empty sketch.
func NewQSketch() *QSketch { return &QSketch{bins: make([]int64, sketchBins)} }

// Reset empties the sketch for reuse.
func (q *QSketch) Reset() {
	for i := range q.bins {
		q.bins[i] = 0
	}
	q.under, q.count = 0, 0
}

// Add feeds one observation.
func (q *QSketch) Add(x float64) {
	q.count++
	if !(x >= sketchLo) { // catches < Lo, zero, negatives and NaN
		q.under++
		return
	}
	i := int((math.Log10(x) - sketchLgL) * sketchBPD)
	if i >= sketchBins {
		i = sketchBins - 1
	}
	q.bins[i]++
}

// Merge adds another sketch's counts; merging is exact and commutative.
func (q *QSketch) Merge(o *QSketch) {
	q.count += o.count
	q.under += o.under
	for i, c := range o.bins {
		q.bins[i] += c
	}
}

// N returns the number of observations fed.
func (q *QSketch) N() int64 { return q.count }

// Quantile returns the estimated p-quantile (0 <= p <= 1): the geometric
// midpoint of the bin holding the rank-⌈p·n⌉ observation, or 0 when the
// rank falls in the underflow count or the sketch is empty.
func (q *QSketch) Quantile(p float64) float64 {
	if q.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(q.count)))
	if rank < 1 {
		rank = 1
	}
	if rank <= q.under {
		return 0
	}
	cum := q.under
	for i, c := range q.bins {
		cum += c
		if cum >= rank {
			lo := sketchLgL + float64(i)/sketchBPD
			return math.Pow(10, lo+0.5/sketchBPD)
		}
	}
	return sketchHi
}

// Median is Quantile(0.5).
func (q *QSketch) Median() float64 { return q.Quantile(0.5) }

// Fork returns an independent copy of the sketch: both copies can keep
// Adding without sharing state, and (bins being pure counts) merging a
// fork back is exact.
func (q *QSketch) Fork() *QSketch {
	return &QSketch{bins: append([]int64(nil), q.bins...), under: q.under, count: q.count}
}

// QSketchState is the serializable form of a sketch. Bins length is
// bound to the package's compiled resolution (sketchBins); a snapshot
// taken with different constants is rejected on restore.
type QSketchState struct {
	Bins  []int64 `json:"bins"`
	Under int64   `json:"under"`
	Count int64   `json:"count"`
}

// State snapshots the sketch (deep copy) for serialization.
func (q *QSketch) State() QSketchState {
	return QSketchState{Bins: append([]int64(nil), q.bins...), Under: q.under, Count: q.count}
}

// QSketchFromState reconstructs a sketch from a snapshot; future Adds
// and Quantiles behave exactly as on the original.
func QSketchFromState(st QSketchState) (*QSketch, error) {
	if len(st.Bins) != sketchBins {
		return nil, fmt.Errorf("stream: sketch snapshot has %d bins, this build uses %d", len(st.Bins), sketchBins)
	}
	return &QSketch{bins: append([]int64(nil), st.Bins...), under: st.Under, count: st.Count}, nil
}

// --- sharded KPI medians ------------------------------------------------

// KPIDay is one day of sketch-estimated national KPI medians.
type KPIDay struct {
	Day     timegrid.SimDay
	Medians [traffic.NumMetrics]float64
	Cells   int
}

// KPIMedians is a KPISharder maintaining streaming per-day median
// estimates of every KPI metric across all cells, with per-shard
// sketches merged at end of day. It powers the rolling summaries of
// cmd/mnostream; the exact medians of the figures still come from
// core.KPIAnalyzer in the merge stage.
type KPIMedians struct {
	shards [][]*QSketch // [shard][metric]
	merged []*QSketch   // [metric], reused each day
	days   []KPIDay
	cells  int
}

// NewKPIMedians builds the sharded sketch stage.
func NewKPIMedians(shards int) *KPIMedians {
	k := &KPIMedians{
		shards: make([][]*QSketch, shards),
		merged: make([]*QSketch, traffic.NumMetrics),
	}
	for s := range k.shards {
		k.shards[s] = make([]*QSketch, traffic.NumMetrics)
		for m := range k.shards[s] {
			k.shards[s][m] = NewQSketch()
		}
	}
	for m := range k.merged {
		k.merged[m] = NewQSketch()
	}
	return k
}

// BeginDay resets every shard sketch.
func (k *KPIMedians) BeginDay(_ timegrid.SimDay, cells []traffic.CellDay) {
	k.cells = len(cells)
	for _, ms := range k.shards {
		for _, q := range ms {
			q.Reset()
		}
	}
}

// ShardDay feeds the shard's cells into its sketches.
func (k *KPIMedians) ShardDay(shard int, _ timegrid.SimDay, cells []traffic.CellDay, idx []int) {
	ms := k.shards[shard]
	for _, i := range idx {
		c := &cells[i]
		for m := 0; m < traffic.NumMetrics; m++ {
			ms[m].Add(c.Values[m])
		}
	}
}

// EndDay merges the shard sketches and records the day's medians.
func (k *KPIMedians) EndDay(day timegrid.SimDay) {
	if k.cells == 0 {
		return
	}
	d := KPIDay{Day: day, Cells: k.cells}
	for m := 0; m < traffic.NumMetrics; m++ {
		k.merged[m].Reset()
		for _, ms := range k.shards {
			k.merged[m].Merge(ms[m])
		}
		d.Medians[m] = k.merged[m].Median()
	}
	k.days = append(k.days, d)
}

// Days returns the recorded daily median rows, in day order.
func (k *KPIMedians) Days() []KPIDay { return k.days }
