package stream

import (
	"context"
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// recordingSharder records, per shard, the user IDs it received in
// order, and asserts the Begin/Shard/End protocol.
type recordingSharder struct {
	mu      sync.Mutex
	perDay  map[timegrid.SimDay][][]popsim.UserID // [shard] -> users in order
	began   int
	ended   int
	shards  int
	current timegrid.SimDay
}

func newRecordingSharder(shards int) *recordingSharder {
	return &recordingSharder{perDay: make(map[timegrid.SimDay][][]popsim.UserID), shards: shards}
}

func (r *recordingSharder) BeginDay(day timegrid.SimDay, _ []mobsim.DayTrace) {
	r.began++
	r.current = day
	r.perDay[day] = make([][]popsim.UserID, r.shards)
}

func (r *recordingSharder) ShardDay(shard int, day timegrid.SimDay, traces []mobsim.DayTrace, idx []int) {
	users := make([]popsim.UserID, 0, len(idx))
	for _, i := range idx {
		users = append(users, traces[i].User)
	}
	r.mu.Lock()
	r.perDay[day][shard] = users
	r.mu.Unlock()
}

func (r *recordingSharder) EndDay(day timegrid.SimDay) { r.ended++ }

func syntheticBatches(days, users int) []DayBatch {
	batches := make([]DayBatch, days)
	for d := range batches {
		traces := make([]mobsim.DayTrace, users)
		for u := range traces {
			traces[u] = mobsim.DayTrace{User: popsim.UserID(u)}
		}
		batches[d] = DayBatch{Day: timegrid.SimDay(d), Traces: traces}
	}
	return batches
}

// TestEnginePartitionIsStable asserts the fan-out invariants: every
// index lands on exactly one shard, a user's shard never changes, the
// in-shard order follows input order, and none of it depends on the
// worker count.
func TestEnginePartitionIsStable(t *testing.T) {
	const days, users, shards = 3, 257, 5
	var runs []*recordingSharder
	for _, workers := range []int{1, 4} {
		e := NewEngine(Config{Workers: workers, Shards: shards})
		rec := newRecordingSharder(shards)
		e.AddTraceSharder(rec)
		if err := e.Run(context.Background(), NewSliceSource(syntheticBatches(days, users))); err != nil {
			t.Fatal(err)
		}
		if rec.began != days || rec.ended != days {
			t.Fatalf("protocol: began %d, ended %d, want %d", rec.began, rec.ended, days)
		}
		runs = append(runs, rec)
	}

	for day := timegrid.SimDay(0); day < days; day++ {
		seen := make(map[popsim.UserID]int)
		for s := 0; s < shards; s++ {
			us := runs[0].perDay[day][s]
			// In-shard order must follow input (ascending user ID here).
			if !sort.SliceIsSorted(us, func(i, j int) bool { return us[i] < us[j] }) {
				t.Fatalf("day %d shard %d: not input order", day, s)
			}
			for _, u := range us {
				if _, dup := seen[u]; dup {
					t.Fatalf("user %d on two shards", u)
				}
				seen[u] = s
				if want := ShardOfUser(uint64(u), shards); want != s {
					t.Fatalf("user %d: on shard %d, hash says %d", u, s, want)
				}
			}
		}
		if len(seen) != users {
			t.Fatalf("day %d: %d users covered, want %d", day, len(seen), users)
		}
	}

	// Worker count must not change the partition.
	for day := timegrid.SimDay(0); day < days; day++ {
		for s := 0; s < shards; s++ {
			a, b := runs[0].perDay[day][s], runs[1].perDay[day][s]
			if len(a) != len(b) {
				t.Fatalf("day %d shard %d: partition depends on workers", day, s)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("day %d shard %d: order depends on workers", day, s)
				}
			}
		}
	}
}

// TestShardOfSpread sanity-checks the hash partition: no empty shard on
// a realistic ID range.
func TestShardOfSpread(t *testing.T) {
	const shards = 8
	var cnt [shards]int
	for u := 0; u < 4096; u++ {
		cnt[ShardOfUser(uint64(u), shards)]++
	}
	for s, c := range cnt {
		if c == 0 {
			t.Fatalf("shard %d empty", s)
		}
		if c < 4096/shards/2 || c > 4096/shards*2 {
			t.Errorf("shard %d badly skewed: %d of 4096", s, c)
		}
	}
	var cellCnt [shards]int
	for c := 0; c < 4096; c++ {
		cellCnt[ShardOfCell(uint64(radio.CellID(c)), shards)]++
	}
	for s, c := range cellCnt {
		if c == 0 {
			t.Fatalf("cell shard %d empty", s)
		}
	}
}

// TestQSketchQuantiles checks the sketch against exact quantiles within
// its documented relative error, and that shard-merging is exact.
func TestQSketchQuantiles(t *testing.T) {
	src := rng.New(11)
	n := 20000
	vals := make([]float64, n)
	whole := NewQSketch()
	parts := []*QSketch{NewQSketch(), NewQSketch(), NewQSketch()}
	for i := range vals {
		// Log-uniform over ~6 decades, like KPI magnitudes.
		v := math.Pow(10, src.Range(-2, 4))
		vals[i] = v
		whole.Add(v)
		parts[i%3].Add(v)
	}
	merged := NewQSketch()
	for _, p := range parts {
		merged.Merge(p)
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		exact := vals[int(p*float64(n))]
		got := whole.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.08 {
			t.Errorf("q%.1f: got %g, exact %g, rel err %.3f", p, got, exact, rel)
		}
		if mg := merged.Quantile(p); mg != got {
			t.Errorf("q%.1f: merged %g != whole %g (merge must be exact)", p, mg, got)
		}
	}
	if whole.N() != int64(n) || merged.N() != int64(n) {
		t.Fatalf("counts: whole %d merged %d want %d", whole.N(), merged.N(), n)
	}
}

// TestQSketchEdgeValues covers zero, negative and tiny values.
func TestQSketchEdgeValues(t *testing.T) {
	q := NewQSketch()
	for i := 0; i < 10; i++ {
		q.Add(0)
	}
	if got := q.Median(); got != 0 {
		t.Fatalf("all-zero median: %g", got)
	}
	q.Reset()
	q.Add(-5)
	q.Add(math.NaN())
	q.Add(1e-300)
	if got := q.Median(); got != 0 {
		t.Fatalf("underflow median: %g", got)
	}
	q.Reset()
	if got := q.Median(); got != 0 {
		t.Fatalf("empty median: %g", got)
	}
}

// TestKPIMediansMatchesExact compares the sketch stage's daily medians
// to exact medians within the sketch error.
func TestKPIMediansMatchesExact(t *testing.T) {
	const shards, nCells = 4, 600
	src := rng.New(3)
	cells := make([]traffic.CellDay, nCells)
	for i := range cells {
		cells[i].Cell = radio.CellID(i)
		for m := 0; m < traffic.NumMetrics; m++ {
			cells[i].Values[m] = math.Pow(10, src.Range(0, 3))
		}
	}
	e := NewEngine(Config{Workers: 3, Shards: shards})
	k := NewKPIMedians(shards)
	e.AddKPISharder(k)
	err := e.Run(context.Background(), NewSliceSource([]DayBatch{{Day: 0, Cells: cells}}))
	if err != nil {
		t.Fatal(err)
	}
	rows := k.Days()
	if len(rows) != 1 || rows[0].Cells != nCells {
		t.Fatalf("rows: %+v", rows)
	}
	for m := 0; m < traffic.NumMetrics; m++ {
		exact := make([]float64, nCells)
		for i := range cells {
			exact[i] = cells[i].Values[m]
		}
		sort.Float64s(exact)
		want := exact[nCells/2]
		got := rows[0].Medians[m]
		if rel := math.Abs(got-want) / want; rel > 0.08 {
			t.Errorf("metric %d: sketch median %g vs exact %g (rel %.3f)", m, got, want, rel)
		}
	}
}

// TestPrefetchDeliversInOrder checks the decode-ahead wrapper preserves
// order and surfaces EOF.
func TestPrefetchDeliversInOrder(t *testing.T) {
	src := Prefetch(NewSliceSource(syntheticBatches(7, 3)), 2)
	for d := 0; d < 7; d++ {
		b, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if int(b.Day) != d {
			t.Fatalf("day %d out of order (got %d)", d, b.Day)
		}
	}
	if _, err := src.Next(); err == nil {
		t.Fatal("want EOF")
	}
}
