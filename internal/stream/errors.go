package stream

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/timegrid"
)

// WorkerPanic is a panic recovered inside a pipeline worker — a day
// producer, a parallel shard task, the serial merge stage or a sweep
// runner — converted into an error so one poisoned goroutine fails the
// run instead of crashing the process. It carries enough context to
// reproduce: the stage, the shard (or -1), the simulated day (or -1)
// and the stack at the recover site.
//
// Every Run/RunSweep failure caused by a panic satisfies
// errors.As(err, **WorkerPanic); see RELIABILITY.md for the failure
// semantics per stage.
type WorkerPanic struct {
	Stage string          // "produce", "shard", "merge", "sweep", …
	Shard int             // shard index, or -1 when the stage is unsharded
	Day   timegrid.SimDay // simulated day, or -1 when not day-scoped
	Value any             // the value passed to panic()
	Stack []byte          // debug.Stack() at the recover site
}

func (p *WorkerPanic) Error() string {
	where := p.Stage
	if p.Shard >= 0 {
		where = fmt.Sprintf("%s shard %d", where, p.Shard)
	}
	if p.Day >= 0 {
		where = fmt.Sprintf("%s day %d", where, p.Day)
	}
	return fmt.Sprintf("stream: worker panic in %s: %v", where, p.Value)
}

// NewWorkerPanic wraps a recovered panic value (with the current
// stack) for stages outside this package — the sweep runner uses it so
// every layer reports panics through the one type.
func NewWorkerPanic(stage string, shard int, day timegrid.SimDay, value any) *WorkerPanic {
	return &WorkerPanic{Stage: stage, Shard: shard, Day: day, Value: value, Stack: debug.Stack()}
}

// capturePanic is the deferred recover helper of the pipeline stages:
//
//	defer capturePanic(&err, "shard", shard, day)
//
// It converts a panic into a *WorkerPanic stored in *dst, leaving an
// already-set error alone (first failure wins inside one goroutine).
func capturePanic(dst *error, stage string, shard int, day timegrid.SimDay) {
	if v := recover(); v != nil {
		if *dst == nil {
			*dst = NewWorkerPanic(stage, shard, day, v)
		}
	}
}

// doubleReleases counts rejected buffer releases process-wide: a
// DayBatch released twice, or a stale batch copy released after its
// store was re-issued. The pools report and refuse instead of
// corrupting the free list (see BufferPool); chaos tests assert the
// counter stays flat across clean and faulted runs.
var doubleReleases atomic.Int64

// DoubleReleases returns the number of rejected (double or stale)
// buffer releases seen process-wide since start.
func DoubleReleases() int64 { return doubleReleases.Load() }

// ReportDoubleRelease records one rejected release. It is called by
// this package's BufferPool and by external pooled sources
// (feeds.FeedSource) so every recycling path shares one ledger.
func ReportDoubleRelease() { doubleReleases.Add(1) }
