package stream

import (
	"io"
	"sync/atomic"

	"repro/internal/mobsim"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// DayBatch is one simulated day of feed records. Cells and Events are
// nil when the source does not carry that feed.
type DayBatch struct {
	Day    timegrid.SimDay
	Traces []mobsim.DayTrace
	Cells  []traffic.CellDay
	Events []signaling.Event

	// Recycle, when non-nil, returns the batch's backing buffers to the
	// source that produced it for reuse. Sources set it; everyone else
	// calls Release. After the hook runs, Traces/Cells/Events may be
	// overwritten by a later day at any time.
	Recycle func()
}

// Release hands the batch's buffers back to their source, exactly once;
// it is a no-op for batches without a recycle hook. The engine calls it
// after the merge stage of each day, so consumers must not retain the
// batch's slices past EndDay/ConsumeDay — copy anything they keep.
func (b *DayBatch) Release() {
	if f := b.Recycle; f != nil {
		b.Recycle = nil
		f()
	}
}

// Source delivers day batches in ascending day order; Next returns
// io.EOF when the stream is exhausted.
type Source interface {
	Next() (DayBatch, error)
}

// SimSource produces day batches from the live simulator. Day
// generation — mobsim.Simulator.Day plus, when a traffic engine is
// attached, traffic.Engine.Day on a per-worker clone — is the dominant
// cost of the whole pipeline and is embarrassingly parallel across days,
// so the source computes days ahead on a worker pool and re-sequences
// them: Next always returns days in order.
//
// Backpressure: at most workers+buffer days are claimed but not yet
// returned by Next, so memory stays bounded no matter how far the
// consumer falls behind.
//
// Buffer recycling: each batch is produced into a pooled backing store
// (a mobsim.DayBuffer plus a CellDay slice) drawn from a bounded free
// list. A consumer that calls DayBatch.Release when done (the stream
// engine does, after each day's merge stage) keeps the whole run at
// O(workers+buffer) live day buffers; a consumer that never releases
// merely falls back to one allocation set per day, as before.
type SimSource struct {
	out  chan DayBatch
	done chan struct{}
	pool *BufferPool
}

// NewSimSource streams days [first, limit). A nil engine skips KPI
// generation (mobility-only runs). cfg sizes the worker pool and the
// backpressure window. The source recycles through a private
// BufferPool; callers running several sources in sequence (scenario
// sweeps) should use NewSimSourcePooled to share one warm pool across
// them.
func NewSimSource(sim *mobsim.Simulator, eng *traffic.Engine, first, limit timegrid.SimDay, cfg Config) *SimSource {
	return NewSimSourcePooled(sim, eng, first, limit, cfg, nil)
}

// NewSimSourcePooled is NewSimSource drawing day-buffer backing stores
// from the given pool instead of a private one; nil means private. The
// pool may be shared with other sources, but only with sources whose
// batches have all been released (or abandoned for good) — a store is
// owned by one batch at a time.
func NewSimSourcePooled(sim *mobsim.Simulator, eng *traffic.Engine, first, limit timegrid.SimDay, cfg Config, pool *BufferPool) *SimSource {
	cfg = cfg.WithDefaults()
	if pool == nil {
		pool = NewBufferPool(cfg.Workers + cfg.Buffer)
	}
	s := &SimSource{
		out:  make(chan DayBatch),
		done: make(chan struct{}),
		pool: pool,
	}
	go s.run(sim, eng, first, limit, cfg)
	return s
}

// Next returns the next day batch, in day order.
func (s *SimSource) Next() (DayBatch, error) {
	b, ok := <-s.out
	if !ok {
		return DayBatch{}, io.EOF
	}
	return b, nil
}

// Stop abandons the stream early and releases the producer goroutines.
// Call it at most once; Next must not be called after Stop.
func (s *SimSource) Stop() { close(s.done) }

func (s *SimSource) run(sim *mobsim.Simulator, eng *traffic.Engine, first, limit timegrid.SimDay, cfg Config) {
	defer close(s.out)
	if first >= limit {
		return
	}
	total := int(limit - first)
	window := cfg.Workers + cfg.Buffer

	// sem bounds the days in flight; a token is taken before a day is
	// claimed and released when the sequencer hands the day out. Days
	// are claimed in ascending order, so the lowest unemitted day is
	// always already being computed — the window cannot deadlock.
	sem := make(chan struct{}, window)
	results := make(chan DayBatch)
	var next int64 = int64(first)

	// Clone the per-worker engines before any worker starts: Clone
	// snapshots the engine struct, which races with the scratch writes
	// of a DayAppend already running on the original.
	engines := make([]*traffic.Engine, cfg.Workers)
	for w := range engines {
		engines[w] = eng
		if eng != nil && w > 0 {
			engines[w] = eng.Clone()
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		go func(eng *traffic.Engine) {
			for {
				select {
				case sem <- struct{}{}:
				case <-s.done:
					return
				}
				day := timegrid.SimDay(atomic.AddInt64(&next, 1) - 1)
				if day >= limit {
					<-sem
					return
				}
				res := s.pool.get()
				b := DayBatch{Day: day, Traces: sim.DayInto(res.buf, day), Recycle: res.recycle}
				if eng != nil {
					if cfg.EngineShards > 1 {
						res.cells = eng.DayAppendSharded(res.cells[:0], day, b.Traces, cfg.EngineShards)
					} else {
						res.cells = eng.DayAppend(res.cells[:0], day, b.Traces)
					}
					b.Cells = res.cells
				}
				select {
				case results <- b:
				case <-s.done:
					return
				}
			}
		}(engines[w])
	}

	// Sequencer: emit in day order.
	pending := make(map[timegrid.SimDay]DayBatch, window)
	emit := first
	for received := 0; received < total; {
		var b DayBatch
		select {
		case b = <-results:
		case <-s.done:
			return
		}
		received++
		pending[b.Day] = b
		for {
			nb, ok := pending[emit]
			if !ok {
				break
			}
			delete(pending, emit)
			select {
			case s.out <- nb:
			case <-s.done:
				return
			}
			<-sem
			emit++
		}
	}
}

// Prefetch wraps a source with a decode-ahead goroutine: up to n day
// batches are produced before the consumer asks for them, so e.g. CSV
// feed decoding overlaps with analytics. The bounded channel is the
// backpressure: a slow consumer stalls the producer after n batches.
func Prefetch(src Source, n int) Source {
	if n < 1 {
		n = 1
	}
	p := &prefetchSource{ch: make(chan DayBatch, n), errc: make(chan error, 1)}
	go func() {
		defer close(p.ch)
		for {
			b, err := src.Next()
			if err != nil {
				p.errc <- err
				return
			}
			p.ch <- b
		}
	}()
	return p
}

type prefetchSource struct {
	ch   chan DayBatch
	errc chan error
	err  error
}

func (p *prefetchSource) Next() (DayBatch, error) {
	b, ok := <-p.ch
	if !ok {
		if p.err == nil {
			p.err = <-p.errc
		}
		return DayBatch{}, p.err
	}
	return b, nil
}

// sliceSource replays pre-built batches; used by tests and by feed
// adapters that already hold a window in memory.
type sliceSource struct {
	batches []DayBatch
	i       int
}

// NewSliceSource returns a Source over in-memory batches, in the order
// given.
func NewSliceSource(batches []DayBatch) Source { return &sliceSource{batches: batches} }

func (s *sliceSource) Next() (DayBatch, error) {
	if s.i >= len(s.batches) {
		return DayBatch{}, io.EOF
	}
	b := s.batches[s.i]
	s.i++
	return b, nil
}
