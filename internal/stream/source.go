package stream

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Recycler returns a pooled backing store to its free list. Gen is the
// checkout generation the batch was drawn with; implementations reject
// mismatched generations (double or stale releases) instead of
// recycling a store someone else owns — see BufferPool.
type Recycler interface {
	Recycle(gen uint64)
}

// DayBatch is one simulated day of feed records. Cells and Events are
// nil when the source does not carry that feed.
type DayBatch struct {
	Day    timegrid.SimDay
	Traces []mobsim.DayTrace
	Cells  []traffic.CellDay
	Events []signaling.Event

	// Owner/Gen, when Owner is non-nil, return the batch's pooled
	// backing store on Release. Gen stamps the checkout, so a released
	// batch (or any copy of it) can never recycle a store that has
	// since been re-issued. Sources set these; everyone else calls
	// Release.
	Owner Recycler
	Gen   uint64

	// Recycle is the unpooled recycling hook for ad-hoc batches (tests,
	// adapters holding their own buffers). Prefer Owner for pooled
	// stores — a bare func can not carry a generation stamp.
	Recycle func()
}

// Release hands the batch's buffers back to their source, exactly once
// per batch value; it is a no-op for batches without a recycle hook.
// The engine calls it after the merge stage of each day, so consumers
// must not retain the batch's slices past EndDay/ConsumeDay — copy
// anything they keep. Releasing copies of one batch more than once in
// total is reported and refused by pooled owners (DoubleReleases).
func (b *DayBatch) Release() {
	if o := b.Owner; o != nil {
		b.Owner = nil
		o.Recycle(b.Gen)
		return
	}
	if f := b.Recycle; f != nil {
		b.Recycle = nil
		f()
	}
}

// Source delivers day batches in ascending day order; Next returns
// io.EOF when the stream is exhausted, and any other error to abort
// the run (cancellation surfaces as the context's error).
type Source interface {
	Next() (DayBatch, error)
}

// Stopper is the optional early-shutdown half of a Source. The engine
// calls Stop when it abandons a source before EOF — on cancellation or
// a downstream failure — so producer goroutines exit and in-flight
// pooled buffers return to their free lists. Stop must be idempotent.
type Stopper interface {
	Stop()
}

// stopSource stops src if it knows how to be stopped.
func stopSource(src Source) {
	if st, ok := src.(Stopper); ok {
		st.Stop()
	}
}

// errStopped is returned by Next on a source that was stopped before
// its stream ended (calling Next after Stop is a caller bug; the error
// makes it loud instead of a hang).
var errStopped = errors.New("stream: source stopped")

// SimSource produces day batches from the live simulator. Day
// generation — mobsim.Simulator.Day plus, when a traffic engine is
// attached, traffic.Engine.Day on a per-worker clone — is the dominant
// cost of the whole pipeline and is embarrassingly parallel across days,
// so the source computes days ahead on a worker pool and re-sequences
// them: Next always returns days in order.
//
// Backpressure: at most workers+buffer days are claimed but not yet
// returned by Next, so memory stays bounded no matter how far the
// consumer falls behind.
//
// Buffer recycling: each batch is produced into a pooled backing store
// (a mobsim.DayBuffer plus a CellDay slice) drawn from a bounded free
// list. A consumer that calls DayBatch.Release when done (the stream
// engine does, after each day's merge stage) keeps the whole run at
// O(workers+buffer) live day buffers; a consumer that never releases
// merely falls back to one allocation set per day, as before.
//
// Failure semantics: a producer panic is recovered into a
// *WorkerPanic, cancellation of the construction context surfaces as
// its ctx.Err() — either stops all workers, releases every in-flight
// pooled buffer back to the free list, and is returned by the next
// Next call. The source never crashes the process.
type SimSource struct {
	out  chan DayBatch
	done chan struct{}
	stop sync.Once
	pool *BufferPool
	fi   *fault.Injector
	m    *sourceMetrics

	mu  sync.Mutex
	err error // first failure: worker panic, injected error or ctx.Err
}

// sourceMetrics are the source's handles, resolved once in
// NewSimSourcePooled. When nil (the default) the producer loop takes no
// timestamps at all — the disabled path does zero clock reads.
type sourceMetrics struct {
	busy       *obs.Counter   // stream.worker.busy_ns: producing (DayInto + DayAppend)
	idle       *obs.Counter   // stream.worker.idle_ns: waiting for the window or the sequencer
	produce    *obs.Histogram // stream.produce_day_ns: per-day production latency, one shard per worker
	stall      *obs.Histogram // stream.resequence.stall_ns: wait of a done day on its predecessors
	outOfOrder *obs.Counter   // stream.resequence.out_of_order: days finishing ahead of the emit cursor
}

func newSourceMetrics(r *obs.Registry, workers int) *sourceMetrics {
	if r == nil {
		return nil
	}
	return &sourceMetrics{
		busy:       r.Counter("stream.worker.busy_ns"),
		idle:       r.Counter("stream.worker.idle_ns"),
		produce:    r.Histogram("stream.produce_day_ns", workers),
		stall:      r.Histogram("stream.resequence.stall_ns", 1),
		outOfOrder: r.Counter("stream.resequence.out_of_order"),
	}
}

// NewSimSource streams days [first, limit). A nil engine skips KPI
// generation (mobility-only runs). cfg sizes the worker pool and the
// backpressure window; ctx cancels production (workers stop within one
// day of work and pooled buffers are recycled). The source recycles
// through a private BufferPool; callers running several sources in
// sequence (scenario sweeps) should use NewSimSourcePooled to share one
// warm pool across them.
func NewSimSource(ctx context.Context, sim *mobsim.Simulator, eng *traffic.Engine, first, limit timegrid.SimDay, cfg Config) *SimSource {
	return NewSimSourcePooled(ctx, sim, eng, first, limit, cfg, nil)
}

// NewSimSourcePooled is NewSimSource drawing day-buffer backing stores
// from the given pool instead of a private one; nil means private. The
// pool may be shared with other sources, but only with sources whose
// batches have all been released (or abandoned for good) — a store is
// owned by one batch at a time.
func NewSimSourcePooled(ctx context.Context, sim *mobsim.Simulator, eng *traffic.Engine, first, limit timegrid.SimDay, cfg Config, pool *BufferPool) *SimSource {
	cfg = cfg.WithDefaults()
	if pool == nil {
		// Only a pool this source created gets instrumented here: a
		// shared pool's handles are owned by whoever built it (sweep
		// workers instrument theirs in newSweepWorker), and rewriting
		// them from a source would race with concurrent draws.
		pool = NewBufferPool(cfg.Workers + cfg.Buffer).Instrument(cfg.Metrics)
	}
	s := &SimSource{
		out:  make(chan DayBatch),
		done: make(chan struct{}),
		pool: pool,
		fi:   cfg.Fault,
		m:    newSourceMetrics(cfg.Metrics, cfg.Workers),
	}
	go s.run(ctx, sim, eng, first, limit, cfg)
	return s
}

// Next returns the next day batch, in day order. After the stream ends
// it returns io.EOF; after a failure (producer panic, injected fault,
// cancellation) it returns that failure.
func (s *SimSource) Next() (DayBatch, error) {
	b, ok := <-s.out
	if !ok {
		if err := s.failure(); err != nil {
			return DayBatch{}, err
		}
		select {
		case <-s.done:
			return DayBatch{}, errStopped
		default:
		}
		return DayBatch{}, io.EOF
	}
	return b, nil
}

// Stop abandons the stream early: producer goroutines exit within one
// day of work and in-flight pooled buffers are recycled. Idempotent;
// Next must not be called after Stop (it returns errStopped if it is).
func (s *SimSource) Stop() { s.stop.Do(func() { close(s.done) }) }

// fail records the first failure and stops the stream.
func (s *SimSource) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.Stop()
}

func (s *SimSource) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// produceDay computes one day into a pooled store. Panics are recovered
// into a *WorkerPanic and the store is recycled on every failure path,
// so a poisoned day can neither crash the process nor leak its buffer.
func (s *SimSource) produceDay(sim *mobsim.Simulator, eng *traffic.Engine, day timegrid.SimDay, cfg Config) (b DayBatch, err error) {
	res := s.pool.get()
	defer func() {
		if v := recover(); v != nil {
			err = NewWorkerPanic("produce", -1, day, v)
		}
		if err != nil {
			res.Recycle(res.curGen())
			b = DayBatch{}
		}
	}()
	if ferr := s.fi.Fire(fault.ProduceDay, int64(day)); ferr != nil {
		return DayBatch{}, ferr
	}
	b = DayBatch{Day: day, Traces: sim.DayInto(res.buf, day), Owner: res, Gen: res.curGen()}
	if eng != nil {
		if cfg.EngineShards > 1 {
			res.cells = eng.DayAppendSharded(res.cells[:0], day, b.Traces, cfg.EngineShards)
		} else {
			res.cells = eng.DayAppend(res.cells[:0], day, b.Traces)
		}
		b.Cells = res.cells
	}
	return b, nil
}

func (s *SimSource) run(ctx context.Context, sim *mobsim.Simulator, eng *traffic.Engine, first, limit timegrid.SimDay, cfg Config) {
	defer close(s.out)
	if first >= limit {
		return
	}
	total := int(limit - first)
	window := cfg.Workers + cfg.Buffer

	// sem bounds the days in flight; a token is taken before a day is
	// claimed and released when the sequencer hands the day out. Days
	// are claimed in ascending order, so the lowest unemitted day is
	// always already being computed — the window cannot deadlock.
	sem := make(chan struct{}, window)
	results := make(chan DayBatch)
	var next int64 = int64(first)

	// Clone the per-worker engines before any worker starts: Clone
	// snapshots the engine struct, which races with the scratch writes
	// of a DayAppend already running on the original. Instrument before
	// cloning, so every clone shares the original's metric handles and
	// the whole pool aggregates into one traffic.day_ns.
	if eng != nil {
		eng.Instrument(cfg.Metrics)
	}
	engines := make([]*traffic.Engine, cfg.Workers)
	for w := range engines {
		engines[w] = eng
		if eng != nil && w > 0 {
			engines[w] = eng.Clone()
		}
	}
	m := s.m
	for w := 0; w < cfg.Workers; w++ {
		go func(w int, eng *traffic.Engine) {
			// psh is this worker's private produce-latency shard; nil
			// (no-op) when metrics are off.
			var psh *obs.HistShard
			if m != nil {
				psh = m.produce.Shard(w)
			}
			for {
				var t0 time.Time
				if m != nil {
					t0 = time.Now()
				}
				select {
				case sem <- struct{}{}:
				case <-s.done:
					return
				case <-ctx.Done():
					s.fail(ctx.Err())
					return
				}
				day := timegrid.SimDay(atomic.AddInt64(&next, 1) - 1)
				if day >= limit {
					<-sem
					return
				}
				var t1 time.Time
				if m != nil {
					t1 = time.Now()
					m.idle.Add(int64(t1.Sub(t0)))
				}
				b, err := s.produceDay(sim, eng, day, cfg)
				if err != nil {
					s.fail(err)
					return
				}
				var t2 time.Time
				if m != nil {
					t2 = time.Now()
					busy := int64(t2.Sub(t1))
					m.busy.Add(busy)
					psh.Observe(busy)
				}
				select {
				case results <- b:
				case <-s.done:
					b.Release()
					return
				case <-ctx.Done():
					b.Release()
					s.fail(ctx.Err())
					return
				}
				if m != nil {
					m.idle.Add(int64(time.Since(t2)))
				}
			}
		}(w, engines[w])
	}

	// Sequencer: emit in day order. When metrics are on, a day that
	// finishes ahead of the emit cursor is stamped on arrival and its
	// stall — the time it sits in pending waiting for its predecessors —
	// is recorded when it finally emits. High stall times mean one slow
	// day is serializing the window (grow Buffer, or chase the slow day
	// via stream.produce_day_ns).
	var arrived map[timegrid.SimDay]time.Time
	if m != nil {
		arrived = make(map[timegrid.SimDay]time.Time, window)
	}
	pending := make(map[timegrid.SimDay]DayBatch, window)
	// releasePending recycles every batch the sequencer still holds, so
	// an abandoned stream returns its pooled buffers to the free list.
	releasePending := func() {
		for day, b := range pending {
			b.Release()
			delete(pending, day)
		}
	}
	emit := first
	for received := 0; received < total; {
		var b DayBatch
		select {
		case b = <-results:
		case <-s.done:
			releasePending()
			return
		case <-ctx.Done():
			s.fail(ctx.Err())
			releasePending()
			return
		}
		received++
		pending[b.Day] = b
		if m != nil && b.Day != emit {
			m.outOfOrder.Inc()
			arrived[b.Day] = time.Now()
		}
		for {
			nb, ok := pending[emit]
			if !ok {
				break
			}
			delete(pending, emit)
			if m != nil {
				if t, ok := arrived[emit]; ok {
					m.stall.Observe(int64(time.Since(t)))
					delete(arrived, emit)
				}
			}
			select {
			case s.out <- nb:
			case <-s.done:
				nb.Release()
				releasePending()
				return
			case <-ctx.Done():
				s.fail(ctx.Err())
				nb.Release()
				releasePending()
				return
			}
			<-sem
			emit++
		}
	}
}

// Prefetch wraps a source with a decode-ahead goroutine: up to n day
// batches are produced before the consumer asks for them, so e.g. CSV
// feed decoding overlaps with analytics. The bounded channel is the
// backpressure: a slow consumer stalls the producer after n batches.
// The wrapper is a Stopper: stopping it ends the decode goroutine,
// releases the prefetched batches and stops the wrapped source.
func Prefetch(src Source, n int) Source {
	if n < 1 {
		n = 1
	}
	p := &prefetchSource{
		src:  src,
		ch:   make(chan DayBatch, n),
		errc: make(chan error, 1),
		done: make(chan struct{}),
	}
	go func() {
		defer close(p.ch)
		for {
			b, err := src.Next()
			if err != nil {
				p.errc <- err
				return
			}
			select {
			case p.ch <- b:
			case <-p.done:
				b.Release()
				p.errc <- errStopped
				return
			}
		}
	}()
	return p
}

type prefetchSource struct {
	src  Source
	ch   chan DayBatch
	errc chan error
	err  error
	done chan struct{}
	stop sync.Once
}

func (p *prefetchSource) Next() (DayBatch, error) {
	b, ok := <-p.ch
	if !ok {
		if p.err == nil {
			p.err = <-p.errc
		}
		return DayBatch{}, p.err
	}
	return b, nil
}

// Stop ends the decode-ahead goroutine, releases every batch still in
// the prefetch window and stops the wrapped source. Idempotent; Next
// must not be called after Stop.
func (p *prefetchSource) Stop() {
	p.stop.Do(func() {
		close(p.done)
		// Stop the wrapped source first: the producer may be blocked
		// inside src.Next, and a stopped source returns an error there.
		stopSource(p.src)
		// The producer exits on done (or on its source's next error) and
		// closes ch on the way out; draining releases whatever it had
		// already decoded.
		for b := range p.ch {
			b.Release()
		}
	})
}

// sliceSource replays pre-built batches; used by tests and by feed
// adapters that already hold a window in memory.
type sliceSource struct {
	batches []DayBatch
	i       int
}

// NewSliceSource returns a Source over in-memory batches, in the order
// given.
func NewSliceSource(batches []DayBatch) Source { return &sliceSource{batches: batches} }

func (s *sliceSource) Next() (DayBatch, error) {
	if s.i >= len(s.batches) {
		return DayBatch{}, io.EOF
	}
	b := s.batches[s.i]
	s.i++
	return b, nil
}
