package stream

import (
	"sync/atomic"

	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// BufferPool is a bounded, non-blocking free list of day-production
// backing stores (a mobsim.DayBuffer plus a reusable CellDay slice) —
// the PR 2 recycling machinery lifted out of SimSource so it can be
// shared across sources. A pool owned by one sweep worker and passed to
// every SimSource that worker creates keeps the steady state of a
// multi-scenario sweep at zero day-buffer allocations per scenario:
// the buffers warmed by the first scenario are reused by every later
// one.
//
// Draws never block: when every pooled store is checked out (or
// consumers never release), Get allocates a fresh store, so liveness
// cannot depend on Release being called. Returns past the pool's
// capacity are dropped to the GC.
//
// Release safety: every checkout stamps the store with a fresh
// generation, carried on the DayBatch. A release whose generation does
// not match the store's current one — a double release of the same
// batch, or a stale batch copy released after the store was re-issued
// to another producer — is rejected and counted (DoubleReleases,
// stream.pool.double_release) instead of enqueueing a buffer that is
// still owned by someone else.
//
// A pool is safe for concurrent use; a store, once drawn, belongs to
// exactly one producer until its batch is released.
type BufferPool struct {
	free chan *dayStore

	// hits/misses count draws served from the free list versus fresh
	// allocations (stream.pool.hits / stream.pool.misses); nil — a no-op
	// Add — until Instrument is called. A healthy steady state is all
	// hits after the warmup window; a growing miss count means the pool
	// is undersized for the in-flight window or batches are not released.
	hits   *obs.Counter
	misses *obs.Counter
	// doubleRel counts rejected releases (stream.pool.double_release);
	// also mirrored into the process-wide DoubleReleases ledger.
	doubleRel *obs.Counter

	rejected atomic.Int64
}

// Instrument resolves the pool's hit/miss counters from r (nil registry:
// no-op) and returns the receiver. Call before the pool is shared across
// goroutines — the handles are plain fields, written once here.
func (p *BufferPool) Instrument(r *obs.Registry) *BufferPool {
	if r != nil {
		p.hits = r.Counter("stream.pool.hits")
		p.misses = r.Counter("stream.pool.misses")
		p.doubleRel = r.Counter("stream.pool.double_release")
	}
	return p
}

// Rejected returns how many releases this pool refused (double or
// stale); tests pin it at zero on every clean and faulted path.
func (p *BufferPool) Rejected() int64 { return p.rejected.Load() }

// dayStore is one recyclable backing store for a produced day.
type dayStore struct {
	pool  *BufferPool
	buf   *mobsim.DayBuffer
	cells []traffic.CellDay
	// out is true while the store is checked out of the free list; gen
	// is bumped at every checkout. Together they make Recycle reject
	// anything but exactly one release of the current checkout.
	out atomic.Bool
	gen atomic.Uint64
}

// Recycle implements Recycler: it returns the store to its pool's free
// list iff gen names the store's current checkout and the store is
// still out. Anything else — a second release of the same batch, or a
// stale copy from an earlier checkout — is reported and refused, so a
// buffer can never reach the free list while another producer owns it.
func (r *dayStore) Recycle(gen uint64) {
	if r.gen.Load() != gen || !r.out.CompareAndSwap(true, false) {
		r.pool.rejected.Add(1)
		r.pool.doubleRel.Inc()
		ReportDoubleRelease()
		return
	}
	select {
	case r.pool.free <- r:
	default:
	}
}

// NewBufferPool builds a pool that retains at most capacity idle
// stores. Sources size their private pools to their in-flight window
// (workers + buffer); a shared pool should be at least that large to
// stay allocation-free at the steady state.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{free: make(chan *dayStore, capacity)}
}

// get draws a store, reusing a pooled one when available. The returned
// store is stamped with a fresh generation (read it with curGen when
// building the DayBatch).
func (p *BufferPool) get() *dayStore {
	var r *dayStore
	select {
	case r = <-p.free:
		p.hits.Inc()
	default:
		p.misses.Inc()
		r = &dayStore{pool: p, buf: mobsim.NewDayBuffer()}
	}
	r.gen.Add(1)
	r.out.Store(true)
	return r
}

// curGen is the store's current checkout generation, carried on the
// DayBatch drawn from it.
func (r *dayStore) curGen() uint64 { return r.gen.Load() }
