package stream

import (
	"sync/atomic"

	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// BufferPool is a bounded, non-blocking free list of day-production
// backing stores (a mobsim.DayBuffer plus a reusable CellDay slice) —
// the PR 2 recycling machinery lifted out of SimSource so it can be
// shared across sources. A pool owned by one sweep worker and passed to
// every SimSource that worker creates keeps the steady state of a
// multi-scenario sweep at zero day-buffer allocations per scenario:
// the buffers warmed by the first scenario are reused by every later
// one.
//
// Draws never block: when every pooled store is checked out (or
// consumers never release), Get allocates a fresh store, so liveness
// cannot depend on Release being called. Returns past the pool's
// capacity are dropped to the GC.
//
// A pool is safe for concurrent use; a store, once drawn, belongs to
// exactly one producer until its batch is released.
type BufferPool struct {
	free chan *dayStore

	// hits/misses count draws served from the free list versus fresh
	// allocations (stream.pool.hits / stream.pool.misses); nil — a no-op
	// Add — until Instrument is called. A healthy steady state is all
	// hits after the warmup window; a growing miss count means the pool
	// is undersized for the in-flight window or batches are not released.
	hits   *obs.Counter
	misses *obs.Counter
}

// Instrument resolves the pool's hit/miss counters from r (nil registry:
// no-op) and returns the receiver. Call before the pool is shared across
// goroutines — the handles are plain fields, written once here.
func (p *BufferPool) Instrument(r *obs.Registry) *BufferPool {
	if r != nil {
		p.hits = r.Counter("stream.pool.hits")
		p.misses = r.Counter("stream.pool.misses")
	}
	return p
}

// dayStore is one recyclable backing store for a produced day.
type dayStore struct {
	buf   *mobsim.DayBuffer
	cells []traffic.CellDay
	// out is true while the store is checked out of the free list; the
	// recycle hook swaps it back, so releasing a batch twice (e.g. via
	// two copies of the DayBatch value) can never enqueue the store
	// twice and hand one buffer to two workers.
	out     atomic.Bool
	recycle func() // returns the store to its pool's free list
}

// NewBufferPool builds a pool that retains at most capacity idle
// stores. Sources size their private pools to their in-flight window
// (workers + buffer); a shared pool should be at least that large to
// stay allocation-free at the steady state.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{free: make(chan *dayStore, capacity)}
}

// get draws a store, reusing a pooled one when available.
func (p *BufferPool) get() *dayStore {
	select {
	case r := <-p.free:
		p.hits.Inc()
		r.out.Store(true)
		return r
	default:
	}
	p.misses.Inc()
	r := &dayStore{buf: mobsim.NewDayBuffer()}
	r.recycle = func() {
		if !r.out.CompareAndSwap(true, false) {
			return // already recycled via another batch copy
		}
		select {
		case p.free <- r:
		default:
		}
	}
	r.out.Store(true)
	return r
}
