package stream

import (
	"repro/internal/core"
	"repro/internal/mobsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

// MobilityDay is one day of rolling national mobility averages.
type MobilityDay struct {
	Day         timegrid.SimDay
	Users       int
	AvgEntropy  float64
	AvgGyration float64
}

// RollingMobility is a TraceSharder computing incremental per-day
// national averages of the §2.3 mobility metrics over every simulated
// day (not just the study window) — the rolling monitor behind
// cmd/mnostream. Per-shard partial sums are merged in shard order, so
// rows are deterministic for a fixed shard count; the exact figure-grade
// aggregates remain core.MobilityAnalyzer's job.
type RollingMobility struct {
	topo *radio.Topology
	topN int
	// per shard: sum entropy, sum gyration, users — and a merge scratch,
	// since ShardDay calls run concurrently.
	sums    [][3]float64
	mergers []core.VisitMerger
	days    []MobilityDay
}

// NewRollingMobility builds the rolling stage.
func NewRollingMobility(topo *radio.Topology, topN, shards int) *RollingMobility {
	return &RollingMobility{
		topo:    topo,
		topN:    topN,
		sums:    make([][3]float64, shards),
		mergers: make([]core.VisitMerger, shards),
	}
}

// BeginDay clears the shard partials.
func (r *RollingMobility) BeginDay(timegrid.SimDay, []mobsim.DayTrace) {
	for i := range r.sums {
		r.sums[i] = [3]float64{}
	}
}

// ShardDay accumulates the shard's user metrics.
func (r *RollingMobility) ShardDay(shard int, _ timegrid.SimDay, traces []mobsim.DayTrace, idx []int) {
	s := &r.sums[shard]
	mg := &r.mergers[shard]
	for _, i := range idx {
		m := mg.DayMetrics(&traces[i], r.topo, r.topN)
		s[0] += m.Entropy
		s[1] += m.Gyration
		s[2]++
	}
}

// EndDay merges the shard partials into the day's row.
func (r *RollingMobility) EndDay(day timegrid.SimDay) {
	var e, g, n float64
	for i := range r.sums {
		e += r.sums[i][0]
		g += r.sums[i][1]
		n += r.sums[i][2]
	}
	d := MobilityDay{Day: day, Users: int(n)}
	if n > 0 {
		d.AvgEntropy = e / n
		d.AvgGyration = g / n
	}
	r.days = append(r.days, d)
}

// Days returns the recorded rows, in day order.
func (r *RollingMobility) Days() []MobilityDay { return r.days }

// Last returns the most recent row (zero value when none yet).
func (r *RollingMobility) Last() MobilityDay {
	if len(r.days) == 0 {
		return MobilityDay{}
	}
	return r.days[len(r.days)-1]
}

// Last returns the most recent KPI median row (zero value when none).
func (k *KPIMedians) Last() KPIDay {
	if len(k.days) == 0 {
		return KPIDay{}
	}
	return k.days[len(k.days)-1]
}
