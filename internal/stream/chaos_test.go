package stream

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mobsim"
	"repro/internal/timegrid"
)

// settleGoroutines polls until the goroutine count returns to at most
// base (plus a small slack for runtime background goroutines), failing
// the test if it never does — the no-dependency stand-in for a leak
// checker.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// countingBatches builds synthetic batches whose Recycle hooks count
// releases, so tests can pin "every batch released exactly once".
func countingBatches(days, users int) ([]DayBatch, *atomic.Int64, *atomic.Int64) {
	batches := syntheticBatches(days, users)
	released := &atomic.Int64{}
	double := &atomic.Int64{}
	for d := range batches {
		fired := &atomic.Bool{}
		batches[d].Recycle = func() {
			if !fired.CompareAndSwap(false, true) {
				double.Add(1)
				return
			}
			released.Add(1)
		}
	}
	return batches, released, double
}

// TestEngineShardPanicIsTyped injects a panic into a shard task and
// asserts the run fails with a *WorkerPanic carrying the stage, shard
// context and day — and that the engine keeps draining batches cleanly
// (the failed day's batch is still released by Run's caller contract).
func TestEngineShardPanicIsTyped(t *testing.T) {
	base := runtime.NumGoroutine()
	const days, users = 5, 40
	batches, released, double := countingBatches(days, users)

	fi := fault.New(fault.Rule{Site: fault.ShardTask, Kind: fault.KindPanic, Key: 2})
	e := NewEngine(Config{Workers: 3, Shards: 2, Fault: fi})
	e.AddTraceSharder(newRecordingSharder(2))
	err := e.Run(context.Background(), NewSliceSource(batches))
	if err == nil {
		t.Fatal("want error from injected shard panic")
	}
	var wp *WorkerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanic, got %T: %v", err, err)
	}
	if wp.Stage != "shard" || wp.Day != 2 {
		t.Errorf("panic context: stage=%q day=%d, want shard/2", wp.Stage, wp.Day)
	}
	if len(wp.Stack) == 0 {
		t.Error("WorkerPanic carries no stack")
	}
	// Days 0..2 were pulled from the source and must all be released —
	// the failed day included.
	if got := released.Load(); got != 3 {
		t.Errorf("released %d batches, want 3 (days 0..2)", got)
	}
	if double.Load() != 0 {
		t.Errorf("%d double releases", double.Load())
	}
	settleGoroutines(t, base)
}

// TestEngineMergeFaultFailsDay injects an error at the merge site and
// asserts it surfaces typed and unwrapped.
func TestEngineMergeFaultFailsDay(t *testing.T) {
	batches, released, _ := countingBatches(4, 10)
	fi := fault.New(fault.Rule{Site: fault.MergeDay, Kind: fault.KindError, Key: 1})
	e := NewEngine(Config{Workers: 2, Shards: 2, Fault: fi})
	err := e.Run(context.Background(), NewSliceSource(batches))
	if !fault.IsInjected(err) {
		t.Fatalf("want injected fault error, got %v", err)
	}
	var fe *fault.Error
	errors.As(err, &fe)
	if fe.Site != fault.MergeDay || fe.Key != 1 {
		t.Errorf("fault context: %+v", fe)
	}
	if released.Load() != 2 {
		t.Errorf("released %d batches, want 2 (days 0..1)", released.Load())
	}
}

// TestEngineCancelledBeforeRun pins the ≤1-day cancellation bound at
// its edge: a context cancelled before Run starts consumes nothing.
func TestEngineCancelledBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batches, released, _ := countingBatches(3, 10)
	e := NewEngine(Config{Workers: 2, Shards: 2})
	err := e.Run(ctx, NewSliceSource(batches))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if released.Load() != 0 {
		t.Errorf("cancelled-before-start run released %d batches, want 0", released.Load())
	}
}

// cancellingConsumer cancels a context when it has consumed day N.
type cancellingConsumer struct {
	cancel context.CancelFunc
	onDay  timegrid.SimDay
	seen   []timegrid.SimDay
}

func (c *cancellingConsumer) ConsumeDay(day timegrid.SimDay, _ []mobsim.DayTrace) {
	c.seen = append(c.seen, day)
	if day == c.onDay {
		c.cancel()
	}
}

// TestEngineCancelMidRun cancels from inside the merge stage of day 1
// and asserts the engine stops within one further day of work and
// returns ctx.Err().
func TestEngineCancelMidRun(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	batches, released, double := countingBatches(10, 10)
	e := NewEngine(Config{Workers: 2, Shards: 2})
	cc := &cancellingConsumer{cancel: cancel, onDay: 1}
	e.AddTraceConsumer(cc)
	err := e.Run(ctx, NewSliceSource(batches))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := len(cc.seen); n != 2 {
		t.Errorf("consumed %d days after cancel at day 1, want 2 (the ≤1-day bound)", n)
	}
	if released.Load() != 2 || double.Load() != 0 {
		t.Errorf("released=%d double=%d, want 2/0", released.Load(), double.Load())
	}
	settleGoroutines(t, base)
}

// TestPoolRejectsDoubleRelease pins the generation guard: releasing one
// batch twice reports instead of corrupting the free list.
func TestPoolRejectsDoubleRelease(t *testing.T) {
	ledger0 := DoubleReleases()
	p := NewBufferPool(2)
	r := p.get()
	b := DayBatch{Owner: r, Gen: r.curGen()}
	b.Release()
	if p.Rejected() != 0 {
		t.Fatalf("first release rejected")
	}
	// A copy of the batch value, released again: Owner was nilled on the
	// original, so simulate the hostile case — a second release through a
	// stale copy holding the old generation.
	stale := DayBatch{Owner: r, Gen: b.Gen}
	stale.Release()
	if p.Rejected() != 1 {
		t.Fatalf("double release not rejected: Rejected()=%d", p.Rejected())
	}
	if DoubleReleases() != ledger0+1 {
		t.Fatalf("process ledger not bumped: %d -> %d", ledger0, DoubleReleases())
	}
	// The store must be drawable again exactly once — the free list holds
	// one copy, not two.
	r1, r2 := p.get(), p.get()
	if r1 == r2 {
		t.Fatal("free list corrupted: same store issued twice")
	}
}

// TestPoolRejectsStaleGeneration releases with a generation from an
// earlier checkout after the store was re-issued: the store stays owned
// by the new checkout.
func TestPoolRejectsStaleGeneration(t *testing.T) {
	p := NewBufferPool(2)
	r := p.get()
	oldGen := r.curGen()
	first := DayBatch{Owner: r, Gen: oldGen}
	first.Release() // back to the free list
	r2 := p.get()   // re-issued, fresh generation
	if r2 != r {
		t.Fatal("expected the pooled store back")
	}
	staleCopy := DayBatch{Owner: r, Gen: oldGen}
	staleCopy.Release() // stale: must be refused
	if p.Rejected() != 1 {
		t.Fatalf("stale release not rejected: Rejected()=%d", p.Rejected())
	}
	// The current checkout must still release fine.
	cur := DayBatch{Owner: r2, Gen: r2.curGen()}
	cur.Release()
	if p.Rejected() != 1 {
		t.Fatalf("current-generation release was rejected")
	}
}

// TestPrefetchStopReleasesWindow stops a prefetching source mid-stream
// and asserts every decoded-but-unconsumed batch is released, nothing
// twice, and the decode goroutine exits.
func TestPrefetchStopReleasesWindow(t *testing.T) {
	base := runtime.NumGoroutine()
	const days = 8
	batches, released, double := countingBatches(days, 4)
	src := Prefetch(NewSliceSource(batches), 3)

	b, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	held := b // consumer owns this one
	stopSource(src)
	held.Release()

	// Everything decoded must end up released exactly once; nothing can
	// be released twice regardless of how far the decoder got.
	deadline := time.Now().Add(2 * time.Second)
	for released.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if double.Load() != 0 {
		t.Fatalf("%d double releases after Stop", double.Load())
	}
	if released.Load() > int64(days) {
		t.Fatalf("released %d > produced %d", released.Load(), days)
	}
	settleGoroutines(t, base)
}

// TestPrefetchPropagatesSourceError wraps an erroring source and
// asserts the error (not io.EOF) comes through after the buffered
// batches.
func TestPrefetchPropagatesSourceError(t *testing.T) {
	batches, _, _ := countingBatches(2, 4)
	inj := fault.New(fault.Rule{Site: fault.FeedRead, Kind: fault.KindError, Key: -1})
	src := Prefetch(&faultingSource{src: NewSliceSource(batches), fi: inj, after: 2}, 2)
	var err error
	for i := 0; i < 4; i++ {
		var b DayBatch
		b, err = src.Next()
		if err != nil {
			break
		}
		b.Release()
	}
	if !fault.IsInjected(err) {
		t.Fatalf("want injected error through Prefetch, got %v", err)
	}
}

// faultingSource passes through its inner source for the first `after`
// batches, then fires an injector on every later Next.
type faultingSource struct {
	src   Source
	fi    *fault.Injector
	after int
	n     int
}

func (f *faultingSource) Next() (DayBatch, error) {
	if f.n >= f.after {
		if err := f.fi.Fire(fault.FeedRead, int64(f.n)); err != nil {
			return DayBatch{}, err
		}
	}
	f.n++
	return f.src.Next()
}

// TestSliceSourceEOF keeps the trivial contract pinned.
func TestSliceSourceEOF(t *testing.T) {
	s := NewSliceSource(nil)
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}
