package radio

import (
	"math"
	"sort"

	"repro/internal/census"
	"repro/internal/geo"
	"repro/internal/rng"
)

// Environment classifies the radio propagation environment of a
// district; it selects the path-loss exponent of the log-distance model.
type Environment int

// Propagation environments.
const (
	EnvDenseUrban Environment = iota
	EnvUrban
	EnvSuburban
	EnvRural
)

// String implements fmt.Stringer.
func (e Environment) String() string {
	switch e {
	case EnvDenseUrban:
		return "dense-urban"
	case EnvUrban:
		return "urban"
	case EnvSuburban:
		return "suburban"
	default:
		return "rural"
	}
}

// EnvironmentOf derives the environment from a district's
// geodemographic cluster (dense clutter in city centres, open terrain in
// the countryside).
func EnvironmentOf(d *census.District) Environment {
	switch d.Cluster {
	case census.Cosmopolitans, census.EthnicityCentral:
		return EnvDenseUrban
	case census.MulticulturalMetropolitans, census.ConstrainedCityDwellers:
		return EnvUrban
	case census.Urbanites, census.Suburbanites, census.HardPressedLiving:
		return EnvSuburban
	default:
		return EnvRural
	}
}

// pathLossExponent returns the log-distance exponent per environment.
func pathLossExponent(e Environment) float64 {
	switch e {
	case EnvDenseUrban:
		return 3.8
	case EnvUrban:
		return 3.5
	case EnvSuburban:
		return 3.2
	default:
		return 2.9
	}
}

// Propagation constants of the simplified link budget.
const (
	// refLossDB is the path loss at the 0.1 km reference distance
	// (~2 GHz macro cell).
	refLossDB = 95.0
	refDistKm = 0.1
	// txPowerDBm is the cell's transmit power incl. antenna gain.
	txPowerDBm = 46.0
	// minServableDBm is the receive level below which a tower cannot
	// serve at all.
	minServableDBm = -125.0
	// shadowingStdDB is the log-normal shadowing deviation applied when
	// a deterministic jitter source is supplied.
	shadowingStdDB = 6.0
)

// PathLossDB returns the log-distance path loss in dB at distKm in the
// given environment. Distances below the reference are clamped.
func PathLossDB(distKm float64, env Environment) float64 {
	if distKm < refDistKm {
		distKm = refDistKm
	}
	return refLossDB + 10*pathLossExponent(env)*math.Log10(distKm/refDistKm)
}

// RxPowerDBm returns the received power from a tower at point p, with
// optional deterministic log-normal shadowing drawn from src (pass nil
// for the median link).
func (t *Topology) RxPowerDBm(tw TowerID, p geo.Point, src *rng.Source) float64 {
	tower := t.Tower(tw)
	env := EnvironmentOf(t.model.District(tower.District))
	rx := txPowerDBm - PathLossDB(tower.Loc.Dist(p), env)
	if src != nil {
		// Shadowing is keyed by the (tower, caller stream) pair so the
		// same query stream sees a stable radio map.
		rx += src.Split(uint64(tw)).NormRange(0, shadowingStdDB)
	}
	return rx
}

// Server is one candidate serving tower with its receive level.
type Server struct {
	Tower TowerID
	RxDBm float64
}

// candidateTowers returns the towers plausibly audible at p: every site
// within reachKm, via the spatial index.
func (t *Topology) candidateTowers(p geo.Point, reachKm float64) []TowerID {
	return t.TowersWithin(p, reachKm)
}

// StrongestServers returns the k strongest audible towers at p, ordered
// by descending receive level (median link, no shadowing). Towers below
// the servable floor are excluded; if nothing is audible the nearest
// tower is returned as a last resort.
func (t *Topology) StrongestServers(p geo.Point, k int) []Server {
	const reachKm = 20.0
	cands := t.candidateTowers(p, reachKm)
	servers := make([]Server, 0, len(cands))
	for _, tw := range cands {
		rx := t.RxPowerDBm(tw, p, nil)
		if rx < minServableDBm {
			continue
		}
		servers = append(servers, Server{Tower: tw, RxDBm: rx})
	}
	if len(servers) == 0 {
		nearest := t.NearestTower(p)
		return []Server{{Tower: nearest, RxDBm: t.RxPowerDBm(nearest, p, nil)}}
	}
	sort.Slice(servers, func(i, j int) bool {
		if servers[i].RxDBm != servers[j].RxDBm {
			return servers[i].RxDBm > servers[j].RxDBm
		}
		return servers[i].Tower < servers[j].Tower
	})
	if k > 0 && len(servers) > k {
		servers = servers[:k]
	}
	return servers
}

// ServingTower returns the strongest server at p.
func (t *Topology) ServingTower(p geo.Point) TowerID {
	return t.StrongestServers(p, 1)[0].Tower
}

// ReselectionNeighbor returns the best alternate server at p other than
// the given tower — the cell an idle phone camped at p bounces to. It
// returns exclude itself when no alternative is audible.
func (t *Topology) ReselectionNeighbor(p geo.Point, exclude TowerID) TowerID {
	for _, s := range t.StrongestServers(p, 3) {
		if s.Tower != exclude {
			return s.Tower
		}
	}
	return exclude
}
