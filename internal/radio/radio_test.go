package radio

import (
	"testing"

	"repro/internal/census"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

func buildTest(t *testing.T) (*census.Model, *Topology) {
	t.Helper()
	m := census.BuildUK(1)
	topo := Build(m, DefaultConfig(), 1)
	return m, topo
}

func TestBuildTopologyBasics(t *testing.T) {
	m, topo := buildTest(t)
	if len(topo.Towers) == 0 || len(topo.Cells) == 0 {
		t.Fatal("empty topology")
	}
	// Every district has at least one tower.
	for i := range m.Districts {
		if len(topo.TowersInDistrict(census.DistrictID(i))) == 0 {
			t.Errorf("district %s has no towers", m.Districts[i].Code)
		}
	}
	// Towers carry consistent geography and all have 4G.
	for i := range topo.Towers {
		tw := &topo.Towers[i]
		if tw.ID != TowerID(i) {
			t.Fatalf("tower %d mis-IDed", i)
		}
		d := m.District(tw.District)
		if d.County != tw.County {
			t.Errorf("tower %d county mismatch", i)
		}
		if !tw.HasRAT[RAT4G] {
			t.Errorf("tower %d lacks 4G", i)
		}
		if tw.Sectors <= 0 {
			t.Errorf("tower %d has %d sectors", i, tw.Sectors)
		}
		if !d.Area.Contains(tw.Loc) {
			t.Errorf("tower %d outside its district disc", i)
		}
	}
}

func TestCellsConsistent(t *testing.T) {
	_, topo := buildTest(t)
	count4g := 0
	for i := range topo.Cells {
		c := &topo.Cells[i]
		if c.ID != CellID(i) {
			t.Fatalf("cell %d mis-IDed", i)
		}
		tw := topo.Tower(c.Tower)
		if !tw.HasRAT[c.RAT] {
			t.Errorf("cell %d on RAT %v not supported by tower", i, c.RAT)
		}
		if c.Sector < 0 || c.Sector >= tw.Sectors {
			t.Errorf("cell %d sector %d out of range", i, c.Sector)
		}
		if c.RAT == RAT4G {
			count4g++
		}
	}
	if got := len(topo.Cells4G()); got != count4g {
		t.Errorf("Cells4G() = %d, counted %d", got, count4g)
	}
	// Per-tower indices are complete.
	total, total4g := 0, 0
	for i := range topo.Towers {
		id := TowerID(i)
		total += len(topo.CellsOfTower(id))
		total4g += len(topo.Cells4GOfTower(id))
		for _, cid := range topo.Cells4GOfTower(id) {
			if topo.Cell(cid).RAT != RAT4G {
				t.Errorf("non-4G cell in 4G index")
			}
		}
	}
	if total != len(topo.Cells) || total4g != count4g {
		t.Errorf("index totals %d/%d vs %d/%d", total, total4g, len(topo.Cells), count4g)
	}
}

func TestDeploymentDensityFollowsDemand(t *testing.T) {
	m, topo := buildTest(t)
	ec, _ := m.DistrictByCode("EC")
	sw, _ := m.DistrictByCode("SW")
	ecTowers := len(topo.TowersInDistrict(ec.ID))
	swTowers := len(topo.TowersInDistrict(sw.ID))
	// EC has 13× fewer residents but huge visitor weight: its per-capita
	// radio capacity must far exceed SW's.
	ecPerCapita := float64(ecTowers) / float64(ec.Population)
	swPerCapita := float64(swTowers) / float64(sw.Population)
	if ecPerCapita < 5*swPerCapita {
		t.Errorf("EC per-capita towers %v, SW %v: CBD should be much denser", ecPerCapita, swPerCapita)
	}
}

func TestDeterminism(t *testing.T) {
	m := census.BuildUK(1)
	a := Build(m, DefaultConfig(), 42)
	b := Build(m, DefaultConfig(), 42)
	if len(a.Towers) != len(b.Towers) {
		t.Fatal("tower counts differ")
	}
	for i := range a.Towers {
		if a.Towers[i].Loc != b.Towers[i].Loc || a.Towers[i].ActivationDay != b.Towers[i].ActivationDay {
			t.Fatalf("tower %d differs across identical builds", i)
		}
	}
}

func TestActivationAndSnapshot(t *testing.T) {
	m := census.BuildUK(1)
	cfg := DefaultConfig()
	cfg.NewSiteFraction = 0.2 // force plenty of new sites
	topo := Build(m, cfg, 3)
	s0 := topo.SnapshotOn(0)
	sEnd := topo.SnapshotOn(timegrid.SimDays - 1)
	if s0.TotalTowers != len(topo.Towers) || sEnd.TotalTowers != len(topo.Towers) {
		t.Error("snapshot total wrong")
	}
	if s0.ActiveTowers >= sEnd.ActiveTowers {
		t.Errorf("active towers should grow: day0 %d, end %d", s0.ActiveTowers, sEnd.ActiveTowers)
	}
	if sEnd.ActiveTowers != len(topo.Towers) {
		t.Errorf("all towers active by the last day: %d/%d", sEnd.ActiveTowers, len(topo.Towers))
	}
	// ActiveTowersInDistrict respects activation.
	for i := range m.Districts {
		did := census.DistrictID(i)
		if len(topo.ActiveTowersInDistrict(did, 0)) > len(topo.TowersInDistrict(did)) {
			t.Fatal("active > total")
		}
	}
}

func TestPickTower(t *testing.T) {
	m, topo := buildTest(t)
	src := rng.New(5)
	for i := 0; i < 50; i++ {
		did := census.DistrictID(src.Intn(len(m.Districts)))
		tw := topo.PickTower(did, 0, src)
		if topo.Tower(tw).District != did {
			t.Fatalf("PickTower returned tower of another district")
		}
	}
}

func TestNearestTower(t *testing.T) {
	_, topo := buildTest(t)
	for i := 0; i < 20; i++ {
		want := &topo.Towers[i*7%len(topo.Towers)]
		got := topo.NearestTower(want.Loc)
		if topo.Tower(got).Loc.Dist(want.Loc) > 1e-9 {
			t.Errorf("NearestTower(%v) returned a farther tower", want.Loc)
		}
	}
}

func TestRATShare(t *testing.T) {
	_, topo := buildTest(t)
	shares := topo.RATShare()
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("RAT shares sum to %v", sum)
	}
	if shares[RAT4G] < shares[RAT2G] {
		t.Error("4G should have at least as many cells as 2G")
	}
}

func TestDistrictCountyOfCell(t *testing.T) {
	m, topo := buildTest(t)
	for i := 0; i < len(topo.Cells); i += 17 {
		id := CellID(i)
		d := topo.DistrictOfCell(id)
		c := topo.CountyOfCell(id)
		if m.District(d).County != c {
			t.Fatalf("cell %d district/county inconsistent", i)
		}
	}
}

func TestRATStrings(t *testing.T) {
	if RAT2G.String() != "2G" || RAT3G.String() != "3G" || RAT4G.String() != "4G" {
		t.Error("RAT strings wrong")
	}
}

func TestZeroConfigFallsBack(t *testing.T) {
	m := census.BuildUK(1)
	topo := Build(m, Config{}, 1)
	if len(topo.Towers) == 0 {
		t.Fatal("zero config should fall back to defaults")
	}
}
