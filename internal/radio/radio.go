// Package radio models the MNO's radio access network topology: cell
// sites (towers) deployed over the synthetic UK, their sectors and cells
// per radio access technology (2G/3G/4G), and the daily topology snapshot
// the paper uses to account for structural changes such as new site
// deployments (§2.2, "Radio Network Topology").
//
// Deployment density follows demand: towers per district scale with the
// district's resident population plus its day-visitor attraction, which
// is how central business districts (EC/WC in London) end up with far
// more radio capacity per resident than residential districts — exactly
// the configuration in which the paper observes their traffic collapse.
package radio

import (
	"fmt"
	"math"

	"repro/internal/census"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

// RAT is a Radio Access Technology generation.
type RAT int

// Supported RATs, in generation order.
const (
	RAT2G RAT = iota
	RAT3G
	RAT4G
	NumRATs = int(RAT4G) + 1
)

// String implements fmt.Stringer.
func (r RAT) String() string {
	switch r {
	case RAT2G:
		return "2G"
	case RAT3G:
		return "3G"
	case RAT4G:
		return "4G"
	default:
		return fmt.Sprintf("RAT(%d)", int(r))
	}
}

// TowerID identifies a cell site.
type TowerID int32

// CellID identifies a single cell (one RAT carrier on one sector).
type CellID int32

// Tower is a cell site: a physical location hosting antennas for one or
// more RATs, split into sectors.
type Tower struct {
	ID       TowerID
	District census.DistrictID
	County   census.CountyID
	Loc      geo.Point
	Sectors  int
	HasRAT   [NumRATs]bool
	// ActivationDay is the first simulated day the site is on air;
	// 0 for the pre-existing estate, later for new deployments.
	ActivationDay timegrid.SimDay
}

// ActiveOn reports whether the site is on air on the given day.
func (t *Tower) ActiveOn(d timegrid.SimDay) bool { return d >= t.ActivationDay }

// Cell is one RAT carrier on one sector of a tower; the KPI feed of §2.4
// is generated per 4G cell.
type Cell struct {
	ID     CellID
	Tower  TowerID
	RAT    RAT
	Sector int
}

// Config controls topology construction.
type Config struct {
	// PopPerTower is the effective population served per site; smaller
	// values build denser networks. The effective population of a
	// district is its residents plus VisitorPopUnit per unit of
	// day-visitor weight.
	PopPerTower int
	// VisitorPopUnit converts a district's DayVisitorWeight into an
	// effective population for dimensioning.
	VisitorPopUnit int
	// SectorsPerTower is the number of sectors per site (typically 3).
	SectorsPerTower int
	// NewSiteFraction is the fraction of sites that come on air during
	// the simulated window rather than pre-existing (models the paper's
	// "potential structural changes in the radio access network").
	NewSiteFraction float64
}

// DefaultConfig returns the dimensioning used by the experiments.
func DefaultConfig() Config {
	return Config{
		PopPerTower:     40_000,
		VisitorPopUnit:  200_000,
		SectorsPerTower: 3,
		NewSiteFraction: 0.01,
	}
}

// Topology is the full radio estate plus lookup indices.
type Topology struct {
	Towers []Tower
	Cells  []Cell

	model            *census.Model
	towersByDistrict [][]TowerID // indexed by DistrictID
	cellsByTower     [][]CellID  // indexed by TowerID
	cells4GByTower   [][]CellID
	cells4G          []CellID
	grid             *geo.Grid // spatial index over tower locations
}

// Build deploys the radio network over the census model. The result is
// deterministic in (model, cfg, seed).
func Build(model *census.Model, cfg Config, seed uint64) *Topology {
	if cfg.PopPerTower <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.SectorsPerTower <= 0 {
		cfg.SectorsPerTower = 3
	}
	src := rng.New(rng.Hash64(seed ^ 0x7A10))
	t := &Topology{
		model:            model,
		towersByDistrict: make([][]TowerID, len(model.Districts)),
	}

	for di := range model.Districts {
		d := &model.Districts[di]
		effective := float64(d.Population) + d.DayVisitorWeight*float64(cfg.VisitorPopUnit)
		n := int(math.Round(effective / float64(cfg.PopPerTower)))
		if n < 1 {
			n = 1
		}
		dsrc := src.Split(uint64(di))
		for i := 0; i < n; i++ {
			angle := dsrc.Range(0, 2*math.Pi)
			frac := math.Sqrt(dsrc.Float64()) // area-uniform placement
			loc := d.Area.PointOnRing(angle, frac)
			tower := Tower{
				ID:       TowerID(len(t.Towers)),
				District: d.ID,
				County:   d.County,
				Loc:      loc,
				Sectors:  cfg.SectorsPerTower,
			}
			// RAT mix: everything has 4G; most sites retain 3G; a
			// minority keep 2G (legacy coverage layer).
			tower.HasRAT[RAT4G] = true
			tower.HasRAT[RAT3G] = dsrc.Bool(0.85)
			tower.HasRAT[RAT2G] = dsrc.Bool(0.45)
			if dsrc.Bool(cfg.NewSiteFraction) {
				// New deployment mid-window.
				tower.ActivationDay = timegrid.SimDay(dsrc.IntRange(1, timegrid.SimDays-1))
			}
			t.towersByDistrict[di] = append(t.towersByDistrict[di], tower.ID)
			t.Towers = append(t.Towers, tower)
		}
	}

	// Spatial index for serving-cell and nearest-site queries.
	locs := make([]geo.Point, len(t.Towers))
	for i := range t.Towers {
		locs[i] = t.Towers[i].Loc
	}
	t.grid = geo.NewGrid(locs, 0)

	// Carve cells: one cell per (sector, RAT) the site supports.
	t.cellsByTower = make([][]CellID, len(t.Towers))
	t.cells4GByTower = make([][]CellID, len(t.Towers))
	for ti := range t.Towers {
		tw := &t.Towers[ti]
		for s := 0; s < tw.Sectors; s++ {
			for r := RAT(0); int(r) < NumRATs; r++ {
				if !tw.HasRAT[r] {
					continue
				}
				c := Cell{ID: CellID(len(t.Cells)), Tower: tw.ID, RAT: r, Sector: s}
				t.Cells = append(t.Cells, c)
				t.cellsByTower[ti] = append(t.cellsByTower[ti], c.ID)
				if r == RAT4G {
					t.cells4GByTower[ti] = append(t.cells4GByTower[ti], c.ID)
					t.cells4G = append(t.cells4G, c.ID)
				}
			}
		}
	}
	return t
}

// Model returns the census model the topology is deployed over.
func (t *Topology) Model() *census.Model { return t.model }

// Tower returns the tower with the given ID.
func (t *Topology) Tower(id TowerID) *Tower { return &t.Towers[id] }

// Cell returns the cell with the given ID.
func (t *Topology) Cell(id CellID) *Cell { return &t.Cells[id] }

// TowersInDistrict returns the site IDs deployed in a district.
func (t *Topology) TowersInDistrict(d census.DistrictID) []TowerID {
	return t.towersByDistrict[d]
}

// CellsOfTower returns all cells of a site.
func (t *Topology) CellsOfTower(id TowerID) []CellID { return t.cellsByTower[id] }

// Cells4GOfTower returns the 4G cells of a site; §2.4 restricts the KPI
// analysis to 4G, the RAT carrying ~75% of connected time.
func (t *Topology) Cells4GOfTower(id TowerID) []CellID { return t.cells4GByTower[id] }

// Cells4G returns every 4G cell in the estate.
func (t *Topology) Cells4G() []CellID { return t.cells4G }

// DistrictOfCell returns the district a cell serves.
func (t *Topology) DistrictOfCell(id CellID) census.DistrictID {
	return t.Towers[t.Cells[id].Tower].District
}

// CountyOfCell returns the county a cell serves.
func (t *Topology) CountyOfCell(id CellID) census.CountyID {
	return t.Towers[t.Cells[id].Tower].County
}

// ActiveTowersInDistrict returns the sites of a district on air on day d.
func (t *Topology) ActiveTowersInDistrict(d census.DistrictID, day timegrid.SimDay) []TowerID {
	all := t.towersByDistrict[d]
	out := make([]TowerID, 0, len(all))
	for _, id := range all {
		if t.Towers[id].ActiveOn(day) {
			out = append(out, id)
		}
	}
	return out
}

// PickTower draws a site of the district, active on day, uniformly; it
// falls back to any site of the district when none is active yet. The
// active set is counted rather than materialized, keeping the simulator
// hot path allocation-free; the rng draw is the same single Intn the
// materialized form used.
func (t *Topology) PickTower(d census.DistrictID, day timegrid.SimDay, src *rng.Source) TowerID {
	all := t.towersByDistrict[d]
	active := 0
	for _, id := range all {
		if t.Towers[id].ActiveOn(day) {
			active++
		}
	}
	if active == 0 {
		return all[src.Intn(len(all))]
	}
	k := src.Intn(active)
	for _, id := range all {
		if t.Towers[id].ActiveOn(day) {
			if k == 0 {
				return id
			}
			k--
		}
	}
	// Unreachable: k < active.
	return all[0]
}

// NearestTower returns the site closest to a point, via the spatial
// grid index.
func (t *Topology) NearestTower(p geo.Point) TowerID {
	i, _ := t.grid.Nearest(p)
	if i < 0 {
		return 0
	}
	return TowerID(i)
}

// TowersWithin returns the sites within radiusKm of p.
func (t *Topology) TowersWithin(p geo.Point, radiusKm float64) []TowerID {
	idx := t.grid.Within(nil, p, radiusKm)
	out := make([]TowerID, len(idx))
	for i, v := range idx {
		out[i] = TowerID(v)
	}
	return out
}

// Snapshot summarises the estate on a given day, mirroring the daily
// topology feed of §2.2.
type Snapshot struct {
	Day          timegrid.SimDay
	ActiveTowers int
	TotalTowers  int
	ActiveCells  int
}

// SnapshotOn computes the topology snapshot for a day.
func (t *Topology) SnapshotOn(day timegrid.SimDay) Snapshot {
	s := Snapshot{Day: day, TotalTowers: len(t.Towers)}
	for i := range t.Towers {
		if t.Towers[i].ActiveOn(day) {
			s.ActiveTowers++
			s.ActiveCells += len(t.cellsByTower[i])
		}
	}
	return s
}

// RATShare returns the fraction of cells per RAT, a quick structural
// check used by the §2.4 RAT-share experiment.
func (t *Topology) RATShare() [NumRATs]float64 {
	var counts [NumRATs]int
	for i := range t.Cells {
		counts[t.Cells[i].RAT]++
	}
	var out [NumRATs]float64
	if len(t.Cells) == 0 {
		return out
	}
	for r := 0; r < NumRATs; r++ {
		out[r] = float64(counts[r]) / float64(len(t.Cells))
	}
	return out
}
