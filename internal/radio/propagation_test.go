package radio

import (
	"math"
	"testing"

	"repro/internal/census"
	"repro/internal/geo"
	"repro/internal/rng"
)

func TestPathLossMonotone(t *testing.T) {
	for env := EnvDenseUrban; env <= EnvRural; env++ {
		prev := -1.0
		for d := 0.1; d < 30; d *= 1.5 {
			pl := PathLossDB(d, env)
			if pl <= prev {
				t.Fatalf("path loss not increasing at %v km (%v)", d, env)
			}
			prev = pl
		}
	}
	// Reference clamp: anything below the reference distance equals the
	// reference loss.
	if PathLossDB(0.01, EnvUrban) != PathLossDB(0.1, EnvUrban) {
		t.Error("sub-reference distances should clamp")
	}
}

func TestPathLossEnvironmentOrdering(t *testing.T) {
	// At any distance beyond the reference, denser clutter loses more.
	for _, d := range []float64{0.5, 2, 10} {
		du := PathLossDB(d, EnvDenseUrban)
		u := PathLossDB(d, EnvUrban)
		su := PathLossDB(d, EnvSuburban)
		r := PathLossDB(d, EnvRural)
		if !(du > u && u > su && su > r) {
			t.Fatalf("environment ordering broken at %v km: %v %v %v %v", d, du, u, su, r)
		}
	}
}

func TestEnvironmentOf(t *testing.T) {
	m := census.BuildUK(1)
	ec, _ := m.DistrictByCode("EC")
	if EnvironmentOf(ec) != EnvDenseUrban {
		t.Error("EC should be dense urban")
	}
	found := false
	for i := range m.Districts {
		if m.Districts[i].Cluster == census.RuralResidents {
			if EnvironmentOf(&m.Districts[i]) != EnvRural {
				t.Error("rural district not rural environment")
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no rural district")
	}
	for e := EnvDenseUrban; e <= EnvRural; e++ {
		if e.String() == "" {
			t.Error("environment unnamed")
		}
	}
}

func TestServingTowerIsStrong(t *testing.T) {
	m := census.BuildUK(1)
	topo := Build(m, DefaultConfig(), 1)
	// At a tower's own location, the serving tower is (essentially)
	// itself: same receive level, possibly tied with a co-located site.
	for i := 0; i < len(topo.Towers); i += 97 {
		tw := &topo.Towers[i]
		serving := topo.ServingTower(tw.Loc)
		own := topo.RxPowerDBm(tw.ID, tw.Loc, nil)
		best := topo.RxPowerDBm(serving, tw.Loc, nil)
		if best < own-1e-9 {
			t.Fatalf("serving tower weaker than the co-located site: %v < %v", best, own)
		}
	}
}

func TestStrongestServersOrderedAndBounded(t *testing.T) {
	m := census.BuildUK(1)
	topo := Build(m, DefaultConfig(), 1)
	p := topo.Towers[10].Loc.Add(geo.Pt(0.7, -0.4))
	servers := topo.StrongestServers(p, 5)
	if len(servers) == 0 || len(servers) > 5 {
		t.Fatalf("servers = %d", len(servers))
	}
	for i := 1; i < len(servers); i++ {
		if servers[i].RxDBm > servers[i-1].RxDBm {
			t.Fatal("servers not sorted by level")
		}
	}
	for _, s := range servers {
		if s.RxDBm < minServableDBm {
			t.Fatal("unservable tower returned")
		}
	}
}

func TestStrongestServersRemoteFallback(t *testing.T) {
	m := census.BuildUK(1)
	topo := Build(m, DefaultConfig(), 1)
	// A point in the middle of the sea: nothing audible, fall back to
	// the nearest site.
	servers := topo.StrongestServers(geo.Pt(-500, -500), 3)
	if len(servers) != 1 {
		t.Fatalf("remote fallback returned %d servers", len(servers))
	}
	if servers[0].Tower != topo.NearestTower(geo.Pt(-500, -500)) {
		t.Error("fallback is not the nearest tower")
	}
}

func TestReselectionNeighbor(t *testing.T) {
	m := census.BuildUK(1)
	topo := Build(m, DefaultConfig(), 1)
	hits := 0
	for i := 0; i < len(topo.Towers); i += 53 {
		tw := &topo.Towers[i]
		alt := topo.ReselectionNeighbor(tw.Loc, tw.ID)
		if alt != tw.ID {
			hits++
			// The neighbour must be audible at the location.
			if topo.RxPowerDBm(alt, tw.Loc, nil) < minServableDBm {
				t.Fatalf("reselection neighbour inaudible")
			}
		}
	}
	if hits == 0 {
		t.Error("no tower has any reselection neighbour — estate too sparse?")
	}
}

func TestShadowingDeterministic(t *testing.T) {
	m := census.BuildUK(1)
	topo := Build(m, DefaultConfig(), 1)
	p := topo.Towers[3].Loc.Add(geo.Pt(1, 1))
	a := topo.RxPowerDBm(3, p, rng.New(7))
	b := topo.RxPowerDBm(3, p, rng.New(7))
	if a != b {
		t.Error("shadowing not deterministic for identical streams")
	}
	med := topo.RxPowerDBm(3, p, nil)
	if math.Abs(a-med) > 4*shadowingStdDB {
		t.Errorf("shadowed level %v implausibly far from median %v", a, med)
	}
}
