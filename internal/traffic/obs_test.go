package traffic

import (
	"testing"

	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/timegrid"
)

// TestDayAppendInstrumentedSteadyStateAllocs pins the observability
// contract on the serial hot path: with metrics *enabled*, a warm
// DayAppend still performs zero heap allocations — instrumentation is
// pre-resolved handles plus atomic updates, nothing more.
func TestDayAppendInstrumentedSteadyStateAllocs(t *testing.T) {
	_, sim, _ := fixture(t)
	eng := fixEng.Clone().Instrument(obs.New())
	days := []timegrid.SimDay{
		timegrid.SimDay(timegrid.StudyDayOffset + 3),
		timegrid.SimDay(timegrid.StudyDayOffset + 30),
	}
	traces := make([][]mobsim.DayTrace, len(days))
	for i, day := range days {
		traces[i] = sim.Day(day)
	}
	var cells []CellDay
	for i, day := range days {
		cells = eng.DayAppend(cells[:0], day, traces[i]) // warm
	}
	i := 0
	allocs := testing.AllocsPerRun(6, func() {
		cells = eng.DayAppend(cells[:0], days[i%len(days)], traces[i%len(days)])
		i++
	})
	if allocs > 0 {
		t.Errorf("instrumented DayAppend allocates %.1f times per day in steady state, want 0", allocs)
	}
}

// TestDayAppendShardedInstrumentedSteadyStateAllocs is the same pin for
// the sharded path: per-shard visit counters are created on the first
// sharded day (the only allocating moment); after that, task dispatch
// and counter updates stay allocation-free.
func TestDayAppendShardedInstrumentedSteadyStateAllocs(t *testing.T) {
	_, sim, _ := fixture(t)
	eng := fixEng.Clone().Instrument(obs.New())
	days := []timegrid.SimDay{
		timegrid.SimDay(timegrid.StudyDayOffset + 3),
		timegrid.SimDay(timegrid.StudyDayOffset + 30),
	}
	traces := make([][]mobsim.DayTrace, len(days))
	for i, day := range days {
		traces[i] = sim.Day(day)
	}
	var cells []CellDay
	for i, day := range days {
		cells = eng.DayAppendSharded(cells[:0], day, traces[i], 2) // warm
	}
	i := 0
	allocs := testing.AllocsPerRun(6, func() {
		cells = eng.DayAppendSharded(cells[:0], days[i%len(days)], traces[i%len(days)], 2)
		i++
	})
	if allocs > 0 {
		t.Errorf("instrumented DayAppendSharded allocates %.1f times per day in steady state, want 0", allocs)
	}
}

// TestInstrumentedMatchesUninstrumented pins "instrumentation observes,
// never perturbs": records from an instrumented engine are bit-identical
// to the plain engine's, and the metrics it produced account for every
// visit exactly once (total and per-shard tallies agree).
func TestInstrumentedMatchesUninstrumented(t *testing.T) {
	_, sim, eng := fixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 11)
	traces := sim.Day(day)
	want := eng.Day(day, traces)

	reg := obs.New()
	ins := fixEng.Clone().Instrument(reg)
	got := ins.DayAppend(nil, day, traces)
	if len(want) != len(got) {
		t.Fatalf("%d vs %d cells", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("cell %d: %+v vs %+v", i, want[i], got[i])
		}
	}

	var visits int64
	for i := range traces {
		visits += int64(len(traces[i].Visits))
	}
	s := reg.Snapshot()
	if s.Counters["traffic.visits"] != visits {
		t.Fatalf("traffic.visits = %d, want %d", s.Counters["traffic.visits"], visits)
	}
	if h := s.Histograms["traffic.day_ns"]; h.Count != 1 || h.SumNs <= 0 {
		t.Fatalf("traffic.day_ns = %+v, want one positive observation", h)
	}

	// Sharded run on a second instrumented clone: same records (modulo
	// the documented float association bound — here just compare the
	// metric bookkeeping), per-shard counters summing to the total.
	reg2 := obs.New()
	shd := fixEng.Clone().Instrument(reg2)
	_ = shd.DayAppendSharded(nil, day, traces, 3)
	s2 := reg2.Snapshot()
	var perShard int64
	for i, name := range []string{"traffic.shard.00.visits", "traffic.shard.01.visits", "traffic.shard.02.visits"} {
		v, ok := s2.Counters[name]
		if !ok {
			t.Fatalf("shard counter %d (%s) missing: %v", i, name, s2.Counters)
		}
		perShard += v
	}
	if perShard != visits || s2.Counters["traffic.visits"] != visits {
		t.Fatalf("sharded visit accounting: per-shard sum %d, total %d, want %d",
			perShard, s2.Counters["traffic.visits"], visits)
	}
	if h := s2.Histograms["traffic.shard_merge_ns"]; h.Count != 1 {
		t.Fatalf("traffic.shard_merge_ns = %+v, want one observation", h)
	}
}
