package traffic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic table values (offered load, channels, blocking).
	cases := []struct {
		a    float64
		c    int
		want float64
	}{
		{1, 1, 0.5},
		{1, 2, 0.2},
		{2, 2, 0.4},
		{5, 10, 0.018},   // ≈ 1.84%
		{10, 10, 0.215},  // ≈ 21.5%
		{20, 30, 0.0085}, // ≈ 0.85%
	}
	for _, c := range cases {
		got := ErlangB(c.a, c.c)
		if math.Abs(got-c.want) > c.want*0.1+0.001 {
			t.Errorf("ErlangB(%v, %d) = %v, want ≈%v", c.a, c.c, got, c.want)
		}
	}
}

func TestErlangBEdgeCases(t *testing.T) {
	if got := ErlangB(5, 0); got != 1 {
		t.Errorf("no channels should block everything: %v", got)
	}
	if got := ErlangB(0, 10); got != 0 {
		t.Errorf("no load should never block: %v", got)
	}
	if got := ErlangB(-3, 10); got != 0 {
		t.Errorf("negative load: %v", got)
	}
}

func TestErlangBMonotonicity(t *testing.T) {
	// More channels → less blocking; more load → more blocking.
	for a := 1.0; a <= 50; a += 7 {
		prev := 1.1
		for c := 1; c <= 80; c += 5 {
			b := ErlangB(a, c)
			if b > prev {
				t.Fatalf("blocking rose with channels at a=%v c=%d", a, c)
			}
			prev = b
		}
	}
	for c := 5; c <= 50; c += 15 {
		prev := -0.1
		for a := 1.0; a <= 100; a += 9 {
			b := ErlangB(a, c)
			if b < prev {
				t.Fatalf("blocking fell with load at a=%v c=%d", a, c)
			}
			prev = b
		}
	}
}

func TestErlangBBoundsProperty(t *testing.T) {
	f := func(a float64, c uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Abs(a)
		if a > 1e6 {
			return true
		}
		b := ErlangB(a, int(c))
		return b >= 0 && b <= 1 && !math.IsNaN(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestErlangBChannels(t *testing.T) {
	for _, a := range []float64{1, 5, 20, 100} {
		c := ErlangBChannels(a, 0.01)
		if got := ErlangB(a, c); got > 0.01 {
			t.Errorf("a=%v: %d channels give blocking %v > 1%%", a, c, got)
		}
		if c > 1 {
			if got := ErlangB(a, c-1); got <= 0.01 {
				t.Errorf("a=%v: %d channels is not minimal", a, c)
			}
		}
	}
	if ErlangBChannels(0, 0.01) != 0 {
		t.Error("zero load needs zero channels")
	}
	if ErlangBChannels(5, 0) == 0 {
		t.Error("zero target should still dimension")
	}
}

func TestEstimateVoiceBlockingHeadroom(t *testing.T) {
	p := DefaultParams()
	// A busy cell at the paper's surge: ~40 simultaneous voice users
	// against a VoLTE capacity of thousands of concurrent calls — the
	// radio side has huge headroom, which is why the paper's incident
	// was on the interconnect instead.
	est := EstimateVoiceBlocking(40, p)
	if est.Channels < 500 {
		t.Errorf("VoLTE channel estimate = %d, expected thousands", est.Channels)
	}
	if est.Blocking > 1e-6 {
		t.Errorf("radio voice blocking = %v, expected negligible", est.Blocking)
	}
	// Sanity: absurd load does block.
	worst := EstimateVoiceBlocking(float64(est.Channels)*2, p)
	if worst.Blocking < 0.3 {
		t.Errorf("2× overload blocking = %v", worst.Blocking)
	}
}
