package traffic

import "repro/internal/timegrid"

// Params are the tunable constants of the demand and radio models. The
// defaults are calibrated so that baseline (week 9) per-cell KPIs sit in
// realistic operating ranges for a busy European LTE network and the
// *relative* changes match the paper's shapes; absolute volumes are
// synthetic by construction.
type Params struct {
	// MarketShare converts simulated residents into MNO subscribers
	// (the studied operator holds >25% of the UK market, §2).
	MarketShare float64

	// DLPerUserDayMB is the baseline cellular downlink appetite of one
	// subscriber per day, before WiFi offload at the residence.
	DLPerUserDayMB float64
	// ULRatio is the baseline uplink/downlink data volume ratio ("the
	// downlink data volume is one order of magnitude larger", §4.1).
	ULRatio float64
	// ConferencingULBoost is the extra uplink demand factor applied to
	// at-residence data during the lockdown phase (video calls and
	// conferencing have symmetric profiles, §4.1).
	ConferencingULBoost float64
	// HomeDemandBoost scales the confinement-driven growth of total
	// at-residence data appetite: the effective at-home demand is
	// multiplied by 1 + HomeDemandBoost·(1 − activity). It is the
	// mechanism behind residential districts (London N) keeping stable
	// volumes with more active users while business districts empty
	// (§5.1).
	HomeDemandBoost float64

	// HomeCellularShare is the baseline fraction of at-residence demand
	// carried over cellular rather than home WiFi; the pandemic
	// scenario's HomeCellularFactor scales it further down.
	HomeCellularShare float64
	// RuralHomeCellularShare replaces HomeCellularShare for residents of
	// Rural Residents districts: fixed broadband is weaker there, so
	// more home demand stays on cellular — the mechanism behind the
	// paper's finding that rural downlink volume "remains largely
	// stable" after lockdown (§4.4).
	RuralHomeCellularShare float64
	// RuralOffloadDamping attenuates the pandemic WiFi-offload shift in
	// rural districts (1 = same shift as urban, 0 = no shift).
	RuralOffloadDamping float64

	// VoiceMinPerUserDay is the baseline conversational-voice usage of a
	// subscriber, minutes per day.
	VoiceMinPerUserDay float64
	// VoiceMBPerMin converts voice minutes to bearer volume per
	// direction (VoLTE AMR-WB plus RTP/IP overhead).
	VoiceMBPerMin float64

	// CellCapacityMBPerHour is the deliverable volume of one 4G cell at
	// full scheduler load.
	CellCapacityMBPerHour float64
	// BaseThroughputMbps is the application-unconstrained per-user DL
	// throughput of an uncongested cell.
	BaseThroughputMbps float64
	// CongestionK scales the quadratic congestion penalty on user
	// throughput.
	CongestionK float64
	// LoadOverhead is the baseline TTI utilization floor from signalling
	// and idle-mode overhead.
	LoadOverhead float64

	// BaseULLossPct / BaseDLLossPct are the voice packet loss error
	// rates of an uncongested network, in percent.
	BaseULLossPct float64
	BaseDLLossPct float64

	// Interconnect models the inter-MNO voice interconnection capacity:
	// Headroom is the capacity as a multiple of the baseline busy-hour
	// national voice demand; UpgradeDay is the study day the operations
	// teams brought extra capacity online (§4.2: "the rapid response of
	// the network operators ... quickly restored the DL error below the
	// normal values"); HeadroomAfter applies from that day on.
	InterconnectHeadroom      float64
	InterconnectHeadroomAfter float64
	InterconnectUpgradeDay    timegrid.StudyDay
	// CongestionLossPctPerUnit converts interconnect over-utilization
	// (util − 1) into additional DL packet loss, capped by
	// CongestionLossCapPct.
	CongestionLossPctPerUnit float64
	CongestionLossCapPct     float64
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	return Params{
		MarketShare: 0.25,

		DLPerUserDayMB:      110,
		ULRatio:             0.10,
		ConferencingULBoost: 1.05,
		HomeDemandBoost:     0.35,

		HomeCellularShare:      0.52,
		RuralHomeCellularShare: 0.80,
		RuralOffloadDamping:    0.0,

		VoiceMinPerUserDay: 9,
		VoiceMBPerMin:      0.10,

		CellCapacityMBPerHour: 46_000,
		BaseThroughputMbps:    23,
		CongestionK:           0.45,
		LoadOverhead:          0.10,

		BaseULLossPct: 0.80,
		BaseDLLossPct: 0.50,

		InterconnectHeadroom:      0.96,
		InterconnectHeadroomAfter: 2.80,
		InterconnectUpgradeDay:    26, // Sat 21 Mar 2020
		CongestionLossPctPerUnit:  2.8,
		CongestionLossCapPct:      1.0,
	}
}

// diurnalData is the hourly share of daily data demand (sums to 1):
// quiet nights, a morning ramp, sustained daytime use, and an evening
// peak, as in operator traffic profiles.
var diurnalData = [timegrid.HoursPerDay]float64{
	0.010, 0.006, 0.004, 0.004, 0.005, 0.008, // 00–06
	0.018, 0.032, 0.045, 0.052, 0.055, 0.058, // 06–12
	0.060, 0.058, 0.056, 0.055, 0.058, 0.062, // 12–18
	0.068, 0.075, 0.080, 0.072, 0.040, 0.019, // 18–24
}

// diurnalVoice is the hourly share of daily voice minutes: concentrated
// in working hours and the early evening.
var diurnalVoice = [timegrid.HoursPerDay]float64{
	0.004, 0.002, 0.002, 0.002, 0.003, 0.006, // 00–06
	0.020, 0.045, 0.065, 0.075, 0.078, 0.075, // 06–12
	0.070, 0.066, 0.062, 0.060, 0.064, 0.070, // 12–18
	0.075, 0.068, 0.048, 0.025, 0.010, 0.005, // 18–24
}

// engagement is the hourly probability that a present subscriber has
// active downlink transmission in a given second, before offload
// scaling; it tracks the data diurnal.
var engagement = [timegrid.HoursPerDay]float64{
	0.02, 0.01, 0.01, 0.01, 0.01, 0.02,
	0.05, 0.09, 0.13, 0.15, 0.16, 0.17,
	0.17, 0.17, 0.16, 0.16, 0.17, 0.18,
	0.20, 0.22, 0.23, 0.21, 0.12, 0.05,
}

// peakVoiceHourShare returns the largest entry of diurnalVoice; the
// interconnect capacity is dimensioned against it.
func peakVoiceHourShare() float64 {
	max := 0.0
	for _, v := range diurnalVoice {
		if v > max {
			max = v
		}
	}
	return max
}
