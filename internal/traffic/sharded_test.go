package traffic

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

var updateGolden = flag.Bool("update", false, "rewrite the sharded-day golden fixture")

// shardTol is the allowed per-KPI relative drift between the sharded and
// serial accumulation: the only difference is float re-association when
// per-shard partial sums merge, which moves values by parts in ~1e-12.
const shardTol = 1e-9

// smallFixture builds the 500-user stack of the sharded parity suite —
// deliberately separate from the package fixture so the CI smoke
// (`go test -race -run TestDayAppendSharded ./internal/traffic`) runs at
// smoke scale.
var (
	smallOnce sync.Once
	smallSim  *mobsim.Simulator
	smallEng  func() *Engine // fresh engine per call, shared world
)

func smallFixture(t testing.TB) (*mobsim.Simulator, *Engine) {
	t.Helper()
	smallOnce.Do(func() {
		m := census.BuildUK(7)
		topo := radio.Build(m, radio.DefaultConfig(), 7)
		pop := popsim.Synthesize(m, topo, popsim.Config{Seed: 7, TargetUsers: 500})
		smallSim = mobsim.New(pop, pandemic.Default(), 7)
		smallEng = func() *Engine {
			return NewEngine(pop, pandemic.Default(), DefaultParams(), 7)
		}
	})
	return smallSim, smallEng()
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return d
	}
	return d / scale
}

// TestDayAppendShardedMatchesSerial is the differential test of the
// tentpole's sharded path: at every shard count the records must cover
// the same cells in the same order, with every KPI value within 1e-9
// relative of the serial engine (the drift is pure float re-association
// in the shard merge). Also the CI parity smoke, at 500 users.
func TestDayAppendShardedMatchesSerial(t *testing.T) {
	sim, eng := smallFixture(t)
	shardedEng := smallEng()
	for _, day := range []timegrid.SimDay{
		timegrid.SimDay(timegrid.StudyDayOffset + 3),
		timegrid.SimDay(timegrid.StudyDayOffset + 23), // voice-surge week
	} {
		traces := sim.Day(day)
		serial := eng.Day(day, traces)
		for _, shards := range []int{2, 3, 4, 8} {
			var got []CellDay
			got = shardedEng.DayAppendSharded(got[:0], day, traces, shards)
			if len(got) != len(serial) {
				t.Fatalf("day %d shards %d: %d cells vs serial %d", day, shards, len(got), len(serial))
			}
			for i := range got {
				if got[i].Cell != serial[i].Cell {
					t.Fatalf("day %d shards %d: cell order diverges at %d", day, shards, i)
				}
				for m := 0; m < NumMetrics; m++ {
					if d := relDiff(got[i].Values[m], serial[i].Values[m]); d > shardTol {
						t.Fatalf("day %d shards %d cell %d metric %v: %v vs %v (rel %g)",
							day, shards, got[i].Cell, Metric(m), got[i].Values[m], serial[i].Values[m], d)
					}
				}
			}
		}
	}
}

// TestDayAppendShardedOneShardBitIdentical pins the degradation rule:
// shards <= 1 takes the serial path and must be bit-identical to
// DayAppend.
func TestDayAppendShardedOneShardBitIdentical(t *testing.T) {
	sim, eng := smallFixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 9)
	traces := sim.Day(day)
	serial := eng.Day(day, traces)
	sharded := eng.DayAppendSharded(nil, day, traces, 1)
	if len(serial) != len(sharded) {
		t.Fatalf("%d vs %d cells", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("cell %d: %+v vs %+v", i, serial[i], sharded[i])
		}
	}
}

// TestDayAppendShardedPoolMatchesInline pins the determinism contract:
// the pooled execution (any number of workers racing over the tasks)
// must be bit-identical to executing every shard task inline on one
// goroutine, because each task owns its tile and the merge replays
// shard-index order. Run under -race in CI.
func TestDayAppendShardedPoolMatchesInline(t *testing.T) {
	sim, eng := smallFixture(t)
	inlineEng := smallEng()
	for _, day := range []timegrid.SimDay{5, timegrid.SimDay(timegrid.StudyDayOffset + 30)} {
		traces := sim.Day(day)
		for _, shards := range []int{2, 4, 7} {
			pooled := eng.DayAppendSharded(nil, day, traces, shards)
			inline := inlineEng.dayAppendSharded(nil, day, traces, shards, true)
			if len(pooled) != len(inline) {
				t.Fatalf("day %d shards %d: %d vs %d cells", day, shards, len(pooled), len(inline))
			}
			for i := range pooled {
				if pooled[i] != inline[i] {
					t.Fatalf("day %d shards %d cell %d: pooled %+v vs inline %+v",
						day, shards, i, pooled[i], inline[i])
				}
			}
		}
	}
}

// TestDayAppendShardedDeterministic asserts repeat calls and clones
// reproduce the sharded records bit for bit (warm tiles carry no state
// across days).
func TestDayAppendShardedDeterministic(t *testing.T) {
	sim, eng := smallFixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 17)
	traces := sim.Day(day)
	a := eng.DayAppendSharded(nil, day, traces, 4)
	b := eng.DayAppendSharded(nil, day, traces, 4)
	c := eng.Clone().DayAppendSharded(nil, day, traces, 4)
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("record counts differ: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repeat call diverges at cell %d", i)
		}
		if a[i] != c[i] {
			t.Fatalf("clone diverges at cell %d", i)
		}
	}
}

// TestDayAppendShardedMoreShardsThanTraces exercises empty shard ranges.
func TestDayAppendShardedMoreShardsThanTraces(t *testing.T) {
	sim, eng := smallFixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 2)
	traces := sim.Day(day)[:3]
	serial := eng.Day(day, traces)
	sharded := eng.DayAppendSharded(nil, day, traces, 8)
	if len(serial) != len(sharded) {
		t.Fatalf("%d vs %d cells", len(serial), len(sharded))
	}
	for i := range sharded {
		for m := 0; m < NumMetrics; m++ {
			if d := relDiff(sharded[i].Values[m], serial[i].Values[m]); d > shardTol {
				t.Fatalf("cell %d metric %v drifts by %g", i, Metric(m), d)
			}
		}
	}
}

// shardedGolden is the committed reference output of the canonical
// sharded day: the record count, the head of the record stream at full
// float precision, and the per-metric record sums (accumulated in record
// order). Regenerate with `go test ./internal/traffic -run Golden
// -update` and commit the diff deliberately — the fixture pins the
// shard-merge association, so it only changes when the canonical merge
// order changes.
type shardedGolden struct {
	Users  int                 `json:"users"`
	Seed   uint64              `json:"seed"`
	Day    int                 `json:"day"`
	Shards int                 `json:"shards"`
	Cells  int                 `json:"cells"`
	Sums   [NumMetrics]float64 `json:"sums"`
	Head   []CellDay           `json:"head"`
}

const goldenHead = 24

func shardedGoldenNow(t *testing.T) shardedGolden {
	t.Helper()
	sim, eng := smallFixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 23)
	traces := sim.Day(day)
	cells := eng.DayAppendSharded(nil, day, traces, 2)
	g := shardedGolden{Users: 500, Seed: 7, Day: int(day), Shards: 2, Cells: len(cells)}
	for i := range cells {
		for m := 0; m < NumMetrics; m++ {
			g.Sums[m] += cells[i].Values[m]
		}
	}
	g.Head = append(g.Head, cells[:goldenHead]...)
	return g
}

// TestDayAppendShardedGolden pins the canonical 2-shard day against the
// committed fixture, bit for bit.
func TestDayAppendShardedGolden(t *testing.T) {
	got := shardedGoldenNow(t)
	path := filepath.Join("testdata", "sharded-day.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(&got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	var want shardedGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if got.Cells != want.Cells || got.Users != want.Users || got.Seed != want.Seed ||
		got.Day != want.Day || got.Shards != want.Shards {
		t.Fatalf("fixture shape changed: got %+v header, want %+v", got, want)
	}
	for m := 0; m < NumMetrics; m++ {
		if got.Sums[m] != want.Sums[m] {
			t.Errorf("metric %v sum: got %v, want %v (re-association changed; regenerate with -update only if intended)",
				Metric(m), got.Sums[m], want.Sums[m])
		}
	}
	if len(got.Head) != len(want.Head) {
		t.Fatalf("head length: got %d, want %d (goldenHead changed? regenerate with -update)", len(got.Head), len(want.Head))
	}
	for i := range want.Head {
		if got.Head[i] != want.Head[i] {
			t.Fatalf("head record %d: got %+v, want %+v", i, got.Head[i], want.Head[i])
		}
	}
}

// TestMedian24MatchesReference drives the order-statistic select against
// the sorting reference over randomized inputs, including heavy ties,
// for every staging length the reduction can produce.
func TestMedian24MatchesReference(t *testing.T) {
	src := rng.New(99)
	for n := 0; n <= timegrid.HoursPerDay; n++ {
		for trial := 0; trial < 400; trial++ {
			var xs, ref [timegrid.HoursPerDay]float64
			for i := 0; i < n; i++ {
				switch trial % 3 {
				case 0:
					xs[i] = src.Float64()
				case 1:
					xs[i] = float64(src.Intn(4)) // heavy ties
				default:
					xs[i] = float64(src.Intn(1000)) / 8
				}
			}
			ref = xs
			want := medianInPlace(ref[:n])
			if got := median24(&xs, n); got != want {
				t.Fatalf("n=%d trial=%d: median24 %v, reference %v (input %v)", n, trial, got, want, ref[:n])
			}
		}
	}
}
