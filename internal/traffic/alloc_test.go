package traffic

import (
	"testing"

	"repro/internal/mobsim"
	"repro/internal/timegrid"
)

// TestDayAppendSteadyStateAllocs pins the engine's zero-allocation
// guarantee: with the hourly staging buffers warm and a reused
// destination, a full day of KPI generation performs no heap allocation.
// The pre-refactor Day allocated the output slice, ten hourly-value
// buckets, a median copy per cell-metric and a weight slice per tower —
// tens of thousands of allocations per day.
func TestDayAppendSteadyStateAllocs(t *testing.T) {
	_, sim, eng := fixture(t)
	days := []timegrid.SimDay{
		timegrid.SimDay(timegrid.StudyDayOffset + 3),
		timegrid.SimDay(timegrid.StudyDayOffset + 30),
	}
	traces := make([][]mobsim.DayTrace, len(days))
	for i, day := range days {
		traces[i] = sim.Day(day)
	}
	var cells []CellDay
	for i, day := range days {
		cells = eng.DayAppend(cells[:0], day, traces[i]) // warm
	}
	i := 0
	allocs := testing.AllocsPerRun(6, func() {
		cells = eng.DayAppend(cells[:0], days[i%len(days)], traces[i%len(days)])
		i++
	})
	if allocs > 0 {
		t.Errorf("DayAppend allocates %.1f times per day in steady state, want 0", allocs)
	}
}

// TestDayAppendShardedSteadyStateAllocs pins the sharded path to the
// same zero-allocation guarantee: once the per-shard tiles, the wait
// group and the process-wide worker pool exist (first call), a sharded
// day performs no heap allocation — tasks travel to the persistent
// workers as channel sends of value structs, never as spawned closures.
func TestDayAppendShardedSteadyStateAllocs(t *testing.T) {
	_, sim, _ := fixture(t)
	eng := fixEng.Clone() // private tiles; the shared fixture engine stays serial-only
	days := []timegrid.SimDay{
		timegrid.SimDay(timegrid.StudyDayOffset + 3),
		timegrid.SimDay(timegrid.StudyDayOffset + 30),
	}
	traces := make([][]mobsim.DayTrace, len(days))
	for i, day := range days {
		traces[i] = sim.Day(day)
	}
	var cells []CellDay
	for i, day := range days {
		cells = eng.DayAppendSharded(cells[:0], day, traces[i], 2) // warm
	}
	i := 0
	allocs := testing.AllocsPerRun(6, func() {
		cells = eng.DayAppendSharded(cells[:0], days[i%len(days)], traces[i%len(days)], 2)
		i++
	})
	if allocs > 0 {
		t.Errorf("DayAppendSharded allocates %.1f times per day in steady state, want 0", allocs)
	}
}

// TestDayAppendMatchesDay asserts the scratch-reusing path is
// bit-identical to the allocating wrapper.
func TestDayAppendMatchesDay(t *testing.T) {
	_, sim, eng := fixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 23)
	traces := sim.Day(day)
	fresh := eng.Day(day, traces)
	var reused []CellDay
	reused = eng.DayAppend(reused[:0], day, traces)
	reused = eng.DayAppend(reused[:0], day, traces) // exercise reuse
	if len(fresh) != len(reused) {
		t.Fatalf("%d vs %d cells", len(fresh), len(reused))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("cell %d: %+v vs %+v", i, fresh[i], reused[i])
		}
	}
}
