package traffic

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

// CellDay is the daily KPI record of one 4G cell: for every metric, the
// median of its 24 hourly values, exactly the §2.4 reduction ("for all
// the hourly metrics, we further aggregate them per day and extract the
// (hourly) median value per cell").
type CellDay struct {
	Cell   radio.CellID
	Values [NumMetrics]float64
}

// towerHour accumulates agent-level demand at one tower in one hour.
type towerHour struct {
	presSec   float64 // user-seconds attached
	activeSec float64 // user-seconds with active DL transmission
	dlMB      float64 // downlink data demand (QCI 2–8), agent units
	ulMB      float64 // uplink data demand (QCI 2–8), agent units
	voiceMin  float64 // voice minutes (QCI 1), agent units
}

// zeroTowerDay is the read-only accumulator tile of a tower nobody
// visited: the reduction reads it wherever a tower's epoch stamp is
// stale, so untouched towers never need a reset (or storage traffic) to
// present their correct all-zero demand.
var zeroTowerDay [timegrid.HoursPerDay]towerHour

// accTile is one epoch-stamped accumulator grid: per-tower hourly demand
// plus the bookkeeping that makes the per-day reset O(touched towers)
// instead of an O(towers×24) memset. A tower's row is valid for the
// current day iff stamp[t] == epoch; tower() lazily zeroes a row on its
// first touch of the day and journals it in touched, so both the reset
// and the later scans walk only the towers that actually saw demand.
type accTile struct {
	acc     [][timegrid.HoursPerDay]towerHour
	stamp   []uint64
	epoch   uint64
	touched []int32

	// tab is the per-user hour-factor scratch of whoever accumulates
	// into this tile; it lives here so every shard worker hoists into
	// private storage.
	tab hourTables
}

// hourTables holds the per-user-day invariant products hoisted out of
// the visit loop: dl[h] = dlPerDay·diurnalData[h] and
// voice[h] = voicePerDay·diurnalVoice[h], computed once per user in
// left-to-right order so the inner-loop results stay bit-identical to
// the unhoisted expressions.
type hourTables struct {
	dl    [timegrid.HoursPerDay]float64
	voice [timegrid.HoursPerDay]float64
}

func newAccTile(towers int) accTile {
	return accTile{
		acc:     make([][timegrid.HoursPerDay]towerHour, towers),
		stamp:   make([]uint64, towers),
		touched: make([]int32, 0, towers),
	}
}

// beginDay opens a new accumulation epoch: every row becomes stale at
// the cost of one counter increment and a journal truncation.
func (t *accTile) beginDay() {
	t.epoch++
	t.touched = t.touched[:0]
}

// tower returns the tile row of ti for the current epoch, zeroing and
// journaling it on first touch.
func (t *accTile) tower(ti int32) *[timegrid.HoursPerDay]towerHour {
	if t.stamp[ti] != t.epoch {
		t.stamp[ti] = t.epoch
		t.acc[ti] = [timegrid.HoursPerDay]towerHour{}
		t.touched = append(t.touched, ti)
	}
	return &t.acc[ti]
}

// hours returns the row to *read* for ti: the accumulated demand when
// the tower was touched this epoch, the shared zero tile otherwise.
func (t *accTile) hours(ti int) *[timegrid.HoursPerDay]towerHour {
	if t.stamp[ti] == t.epoch {
		return &t.acc[ti]
	}
	return &zeroTowerDay
}

// dayFactors are the scenario-dependent demand factors of one simulated
// day, resolved once in the day prologue so neither the accumulation nor
// the reduction consults the scenario per record.
type dayFactors struct {
	dataF, homeF, voiceF, throttleF float64
	// confBoost is the conferencing uplink boost on at-residence data
	// (grows with the activity deficit: people confined at home hold
	// video calls); homeBoost the confinement growth of total at-home
	// appetite.
	confBoost, homeBoost float64
}

// visitClass folds the offload/boost factors of one visit class —
// non-residence, urban residence, rural residence — computed once per
// day so the per-visit body only selects a struct.
type visitClass struct {
	offEng  float64 // engagement scale ("active user" share on cellular)
	offDem  float64 // demand scale (offload × confinement boost)
	ulBoost float64 // uplink conferencing boost
}

// Engine converts day traces into per-cell daily KPI records.
type Engine struct {
	pop    *popsim.Population
	topo   *radio.Topology
	scen   *pandemic.Scenario
	params Params
	seed   uint64

	subsPerAgent float64
	// baselineBusyVoiceMin is the national busy-hour voice demand at
	// baseline, in agent units; interconnect capacity is dimensioned
	// against it.
	baselineBusyVoiceMin float64
	// towerRural marks towers serving Rural Residents districts, where
	// fixed broadband is weaker and WiFi offload correspondingly so.
	towerRural []bool

	// tile is the canonical accumulator grid: the serial path
	// accumulates straight into it, the sharded path merges its
	// per-shard tiles into it in shard-index order.
	tile accTile
	// dayF holds the day prologue for the duration of one Day*, on the
	// engine so the sharded dispatch can hand workers a stable pointer
	// without a per-day heap escape.
	dayF dayFactors

	// sharded-path scratch, allocated on first DayAppendSharded: one
	// accumulator tile per shard plus the dispatch wait group.
	tiles   []accTile
	shardWG *sync.WaitGroup

	// hv stages the ≤24 hourly values of each metric while one cell's
	// records are reduced to their daily medians (hvN counts the staged
	// values; DLThroughput skips undefined hours). Fixed-size arrays:
	// the reduction never touches the heap and the median runs as a
	// bounded insertion select instead of a library sort.
	hv  [NumMetrics][timegrid.HoursPerDay]float64
	hvN [NumMetrics]int
	// weights stages the per-tower sector load split; warm after the
	// first day, so DayAppend runs allocation-free.
	weights []float64
	// ch is the record handed to emit callbacks; it lives on the engine
	// because its address crosses the callback boundary, which would
	// otherwise force a heap escape per day. Callbacks already must copy
	// what they keep — the record is rewritten every cell-hour.
	ch CellHour

	// obs holds the engine's resolved metric handles; nil when the engine
	// is uninstrumented (the default). Clones share the pointer, so every
	// worker clone of an instrumented engine aggregates into the same
	// metrics.
	obs *engineObs
}

// engineObs bundles the engine's metric handles, resolved once by
// Instrument so the day loop never touches the registry. Per-shard visit
// counters are created lazily under the mutex the first time a shard
// index appears (shard counts are a call-site choice, not known at
// instrument time); steady-state lookups only lock and index.
type engineObs struct {
	reg     *obs.Registry
	dayNs   *obs.Histogram // traffic.day_ns: whole DayAppend[Sharded] latency
	mergeNs *obs.Histogram // traffic.shard_merge_ns: sharded-path tile merge
	visits  *obs.Counter   // traffic.visits: visit records accumulated

	mu          sync.Mutex
	shardVisits []*obs.Counter // traffic.shard.NN.visits
}

func (o *engineObs) day() *obs.Histogram {
	if o == nil {
		return nil
	}
	return o.dayNs
}

func (o *engineObs) merge() *obs.Histogram {
	if o == nil {
		return nil
	}
	return o.mergeNs
}

func (o *engineObs) total() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.visits
}

// shardCounter returns the visit counter of shard s, creating the
// counters up through s on first sight (the only allocating path; after
// that the lookup is a lock and an index, so the sharded day stays
// allocation-free at steady state).
func (o *engineObs) shardCounter(s int) *obs.Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	for len(o.shardVisits) <= s {
		o.shardVisits = append(o.shardVisits,
			o.reg.Counter(fmt.Sprintf("traffic.shard.%02d.visits", len(o.shardVisits))))
	}
	c := o.shardVisits[s]
	o.mu.Unlock()
	return c
}

// Instrument resolves the engine's metric handles from r and returns the
// receiver. A nil registry leaves the engine uninstrumented; repeated
// calls with the same registry are no-ops, so sweep workers can
// instrument once and rebind scenarios freely. Instrumentation only
// observes: records stay bit-identical to an uninstrumented engine's.
func (e *Engine) Instrument(r *obs.Registry) *Engine {
	if r == nil {
		return e
	}
	if e.obs != nil && e.obs.reg == r {
		return e
	}
	e.obs = &engineObs{
		reg:     r,
		dayNs:   r.Histogram("traffic.day_ns", 1),
		mergeNs: r.Histogram("traffic.shard_merge_ns", 1),
		visits:  r.Counter("traffic.visits"),
	}
	return e
}

// NewEngine builds the KPI engine.
func NewEngine(pop *popsim.Population, scen *pandemic.Scenario, params Params, seed uint64) *Engine {
	e := &Engine{
		pop:    pop,
		topo:   pop.Topology(),
		scen:   scen,
		params: params,
		seed:   rng.Hash64(seed ^ 0xE16E),
	}
	e.subsPerAgent = params.MarketShare / pop.Scale()
	e.baselineBusyVoiceMin = float64(len(pop.Native())) * params.VoiceMinPerUserDay * peakVoiceHourShare()
	e.tile = newAccTile(len(e.topo.Towers))
	model := pop.Model()
	e.towerRural = make([]bool, len(e.topo.Towers))
	for i := range e.topo.Towers {
		d := model.District(e.topo.Towers[i].District)
		e.towerRural[i] = d.Cluster == census.RuralResidents
	}
	return e
}

// Params returns the engine's model constants.
func (e *Engine) Params() Params { return e.params }

// Clone returns an engine with the same model parameters and seed but an
// independent scratch area. Day is deterministic in (construction, day,
// traces) and never mutates anything but the scratch, so clones produce
// bit-identical records to the original and may run concurrently, one
// per worker. Clone snapshots the engine struct — including the scratch
// headers Day/DayAppend rewrite — so it must not run concurrently with
// a Day on the receiver: take every clone before starting the workers.
func (e *Engine) Clone() *Engine {
	c := *e
	c.tile = newAccTile(len(e.tile.acc))
	c.tiles = nil
	c.shardWG = nil
	c.weights = nil
	c.hvN = [NumMetrics]int{}
	return &c
}

// Rebind swaps the engine's scenario in place and returns the receiver.
// Everything else an engine precomputes at construction — the
// subscriber scale, the interconnect dimensioning, the rural-tower
// marks — is scenario-independent, and the scenario is only consulted
// in the day prologue, so a rebound engine produces records
// bit-identical to NewEngine(pop, scen, params, seed) while keeping its
// warm scratch (the per-tower hourly accumulators dominate an engine's
// footprint). The engine must not be running a Day when rebound; sweep
// workers rebind between scenario runs.
func (e *Engine) Rebind(scen *pandemic.Scenario) *Engine {
	e.scen = scen
	return e
}

// InterconnectCapacity returns the interconnect voice capacity (agent
// units, minutes per hour) in effect on the given simulated day.
func (e *Engine) InterconnectCapacity(day timegrid.SimDay) float64 {
	headroom := e.params.InterconnectHeadroom
	if sd, ok := day.ToStudyDay(); ok && sd >= e.params.InterconnectUpgradeDay {
		headroom = e.params.InterconnectHeadroomAfter
	}
	return e.baselineBusyVoiceMin * headroom
}

// CellHour is the raw hourly KPI record of one 4G cell, before the §2.4
// daily-median reduction; DayHourly exposes it for analyses that need
// sub-daily resolution. A zero DLThroughput marks an hour with no
// active users (throughput undefined).
type CellHour struct {
	Cell   radio.CellID
	Hour   int
	Values [NumMetrics]float64
}

// Day runs the KPI model for one simulated day over the given traces and
// returns one record per active 4G cell: for each metric the median of
// its 24 hourly values. Deterministic in (engine construction, day,
// traces). It allocates a fresh result per call; hot loops should call
// DayAppend with a reused destination.
func (e *Engine) Day(day timegrid.SimDay, traces []mobsim.DayTrace) []CellDay {
	return e.DayAppend(make([]CellDay, 0, len(e.topo.Cells4G())), day, traces)
}

// DayAppend is Day appending into dst (pass prev[:0] to reuse capacity).
// The hourly staging buffers live on the engine and the medians are
// taken by a fixed-24 insertion select, so a warm engine produces a day
// of records without heap allocation. Records are bit-identical to
// Day's.
func (e *Engine) DayAppend(dst []CellDay, day timegrid.SimDay, traces []mobsim.DayTrace) []CellDay {
	sp := obs.Start(e.obs.day())
	e.dayF = e.dayFactorsFor(day)
	e.tile.beginDay()
	nv := e.accumulateRange(&e.tile, day, &e.dayF, traces, 0, len(traces))
	dst = e.reduceAppend(dst, day, &e.dayF)
	e.obs.total().Add(int64(nv))
	sp.End()
	return dst
}

// reduceAppend runs the reduction over the canonical tile, staging each
// cell's 24 hourly values and appending its daily-median record to dst.
func (e *Engine) reduceAppend(dst []CellDay, day timegrid.SimDay, f *dayFactors) []CellDay {
	var cur radio.CellID = -1
	flush := func() {
		if cur < 0 {
			return
		}
		var cd CellDay
		cd.Cell = cur
		for m := 0; m < NumMetrics; m++ {
			cd.Values[m] = median24(&e.hv[m], e.hvN[m])
		}
		dst = append(dst, cd)
	}
	e.reduce(day, f, func(ch *CellHour) {
		if ch.Cell != cur {
			flush()
			cur = ch.Cell
			e.hvN = [NumMetrics]int{}
		}
		for m := 0; m < NumMetrics; m++ {
			if m == int(DLThroughput) && ch.Values[m] == 0 {
				continue // hour without active users: throughput undefined
			}
			e.hv[m][e.hvN[m]] = ch.Values[m]
			e.hvN[m]++
		}
	})
	flush()
	return dst
}

// DayHourly runs the KPI model at hourly resolution, emitting one record
// per (active 4G cell, hour). Records of one cell arrive consecutively,
// hours ascending.
func (e *Engine) DayHourly(day timegrid.SimDay, traces []mobsim.DayTrace, emit func(*CellHour)) {
	e.forEachCellHour(day, traces, emit)
}

// forEachCellHour is the serial engine core: the day prologue, demand
// accumulation into the canonical tile, and the per-cell-hour reduction.
func (e *Engine) forEachCellHour(day timegrid.SimDay, traces []mobsim.DayTrace, emit func(*CellHour)) {
	e.dayF = e.dayFactorsFor(day)
	e.tile.beginDay()
	e.accumulateRange(&e.tile, day, &e.dayF, traces, 0, len(traces))
	e.reduce(day, &e.dayF, emit)
}

// dayFactorsFor resolves the scenario once for the whole day.
func (e *Engine) dayFactorsFor(day timegrid.SimDay) dayFactors {
	p := &e.params
	f := dayFactors{dataF: 1, homeF: 1, voiceF: 1, throttleF: 1}
	activity := 1.0
	if sd, ok := day.ToStudyDay(); ok {
		f.dataF = e.scen.DataFactor(sd)
		f.homeF = e.scen.HomeCellularFactor(sd)
		f.voiceF = e.scen.VoiceFactor(sd)
		f.throttleF = e.scen.ThrottleFactor(sd)
		activity = e.scen.Activity(sd)
	}
	// Conferencing boost on at-residence uplink grows with the activity
	// deficit (people confined at home hold video calls), and total
	// at-home appetite grows with confinement.
	f.confBoost = 1 + (p.ConferencingULBoost-1)*(1-activity)
	f.homeBoost = 1 + p.HomeDemandBoost*(1-activity)
	return f
}

// accumulateRange folds traces[lo:hi] into the tile: the data-oriented
// demand accumulation. The per-day factor structs and the per-user hour
// tables are hoisted out of the visit loop (preserving the original
// left-to-right float association, so records stay bit-identical), which
// collapses the per-visit-hour body to five fused multiply-adds on table
// lookups. It touches only the tile and read-only engine state, so
// disjoint ranges may run concurrently on distinct tiles. Returns the
// number of visit records folded, which the instrumented paths feed to
// the visit counters.
func (e *Engine) accumulateRange(t *accTile, day timegrid.SimDay, f *dayFactors, traces []mobsim.DayTrace, lo, hi int) int {
	p := &e.params

	// The three visit classes, computed once per day: non-residence,
	// urban residence, rural residence. Urban homes offload to WiFi per
	// the scenario; rural homes have weaker fixed broadband — a higher
	// cellular share at baseline and a damped pandemic offload shift —
	// and their appetite growth is capped by coverage and plan limits,
	// damping the confinement boost. The rule keys on where the
	// residence is, so relocated users take on their destination's
	// offload behaviour.
	urbanOffload := p.HomeCellularShare * f.homeF
	ruralOffload := p.RuralHomeCellularShare * (1 - (1-f.homeF)*p.RuralOffloadDamping)
	cls := [3]visitClass{
		{offEng: 1, offDem: 1, ulBoost: 1},
		{offEng: urbanOffload, offDem: urbanOffload * f.homeBoost, ulBoost: f.confBoost},
		{offEng: ruralOffload, offDem: ruralOffload * (1 + (f.homeBoost-1)*0.3), ulBoost: f.confBoost},
	}

	tab := &t.tab
	visits := 0
	for i := lo; i < hi; i++ {
		tr := &traces[i]
		visits += len(tr.Visits)
		usrc := rng.Stream2(e.seed, uint64(tr.User), uint64(day))
		// Per-user-day appetite dispersion.
		quirk := 0.70 + 0.60*usrc.Float64()
		dlPerDay := p.DLPerUserDayMB * f.dataF * quirk
		voicePerDay := p.VoiceMinPerUserDay * f.voiceF * (0.70 + 0.60*usrc.Float64())
		for h := 0; h < timegrid.HoursPerDay; h++ {
			tab.dl[h] = dlPerDay * diurnalData[h]
			tab.voice[h] = voicePerDay * diurnalVoice[h]
		}

		for _, v := range tr.Visits {
			tw := v.Tower()
			secPerHour := float64(v.Seconds()) / timegrid.BinHours
			hourFrac := secPerHour / 3600
			start, end := v.Bin().Hours()
			// offEng drives "active user" engagement (no appetite boost:
			// an offloaded user is attached but inactive on cellular);
			// offDem additionally carries the confinement demand boost.
			c := &cls[0]
			if v.AtResidence() {
				if e.towerRural[tw] {
					c = &cls[2]
				} else {
					c = &cls[1]
				}
			}
			th := t.tower(int32(tw))
			for h := start; h < end; h++ {
				a := &th[h]
				a.presSec += secPerHour
				a.activeSec += secPerHour * engagement[h] * c.offEng
				dl := tab.dl[h] * hourFrac * c.offDem
				a.dlMB += dl
				a.ulMB += dl * p.ULRatio * c.ulBoost
				a.voiceMin += tab.voice[h] * hourFrac
			}
		}
	}
	return visits
}

// reduce turns the canonical tile into per-cell-hour KPI records:
// interconnect congestion from the national voice total, then the
// per-cell computation, emitting cells in tower order, hours ascending.
func (e *Engine) reduce(day timegrid.SimDay, f *dayFactors, emit func(*CellHour)) {
	p := &e.params
	t := &e.tile

	// Interconnect congestion: national voice demand per hour versus the
	// day's capacity. Only touched towers can contribute; summing them
	// in ascending tower index replays the old full scan's order (the
	// skipped rows are exact zeros), so the totals are bit-identical.
	slices.Sort(t.touched)
	var nationalVoice [timegrid.HoursPerDay]float64
	for _, ti := range t.touched {
		th := &t.acc[ti]
		for h := 0; h < timegrid.HoursPerDay; h++ {
			nationalVoice[h] += th[h].voiceMin
		}
	}
	capacity := e.InterconnectCapacity(day)
	var congestionLoss [timegrid.HoursPerDay]float64
	for h := 0; h < timegrid.HoursPerDay; h++ {
		util := nationalVoice[h] / capacity
		if util > 1 {
			extra := (util - 1) * p.CongestionLossPctPerUnit
			if extra > p.CongestionLossCapPct {
				extra = p.CongestionLossCapPct
			}
			congestionLoss[h] = extra
		}
	}

	// Per-cell-hour KPI computation. Untouched towers still emit — an
	// idle active cell has well-defined load/loss KPIs — reading the
	// shared zero tile.
	const baselineLoadNorm = 0.35
	ch := &e.ch

	for ti := range e.topo.Towers {
		tower := &e.topo.Towers[ti]
		if !tower.ActiveOn(day) {
			continue
		}
		cells := e.topo.Cells4GOfTower(tower.ID)
		if len(cells) == 0 {
			continue
		}
		hours := t.hours(ti)

		// Per-cell-day load split weights: uneven sector loading.
		weights := e.weights[:0]
		var wsum float64
		for _, cid := range cells {
			wsrc := rng.Stream2(e.seed, uint64(cid), uint64(day))
			w := 0.75 + 0.5*wsrc.Float64()
			weights = append(weights, w)
			wsum += w
		}
		e.weights = weights

		for ci, cid := range cells {
			share := weights[ci] / wsum
			csrc := rng.Stream2(e.seed, uint64(cid)^0xCE11, uint64(day))
			thrJitter := 0.92 + 0.16*csrc.Float64()

			for h := 0; h < timegrid.HoursPerDay; h++ {
				a := &hours[h]
				pres := a.presSec / 3600 * share * e.subsPerAgent
				active := a.activeSec / 3600 * share * e.subsPerAgent
				dl := a.dlMB * share * e.subsPerAgent
				ul := a.ulMB * share * e.subsPerAgent
				vmin := a.voiceMin * share * e.subsPerAgent
				vMB := vmin * p.VoiceMBPerMin

				load := p.LoadOverhead + (dl+ul+2*vMB)/p.CellCapacityMBPerHour
				if load > 1 {
					load = 1
				}
				loadNorm := load / baselineLoadNorm

				ch.Cell = cid
				ch.Hour = h
				ch.Values[DLVolume] = dl + vMB
				ch.Values[ULVolume] = ul + vMB
				ch.Values[DLActiveUsers] = active
				ch.Values[RadioLoad] = load
				ch.Values[ConnectedUsers] = pres
				ch.Values[VoiceVolume] = vMB
				ch.Values[VoiceUsers] = vmin / 60
				ch.Values[VoiceULLoss] = p.BaseULLossPct * (0.35 + 0.65*loadNorm)
				ch.Values[VoiceDLLoss] = p.BaseDLLossPct*(0.35+0.65*loadNorm) + congestionLoss[h]
				ch.Values[DLThroughput] = 0
				if active > 0.01 {
					ch.Values[DLThroughput] = p.BaseThroughputMbps * f.throttleF * thrJitter * (1 - p.CongestionK*load*load)
				}
				emit(ch)
			}
		}
	}
}

// median24 returns the median of xs[:n], partially reordering the
// bounded scratch in place: an order-statistic select (Hoare-partition
// quickselect finishing with a short insertion pass) instead of a full
// library sort — ~60 compares instead of the ~300 a 24-element sort
// costs, with zero allocation. The median is an order statistic, so the
// value is bit-identical to sorting with sort.Float64s and picking the
// middle (no NaNs reach the staging buffers).
func median24(xs *[timegrid.HoursPerDay]float64, n int) float64 {
	switch n {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	k := n / 2
	if n%2 == 1 {
		return select24(xs, n, k)
	}
	lo := select24(xs, n, k-1)
	// select24 leaves xs[k:n] >= xs[k-1], so the k-th order statistic
	// is their minimum.
	hi := xs[k]
	for i := k + 1; i < n; i++ {
		if xs[i] < hi {
			hi = xs[i]
		}
	}
	return (lo + hi) / 2
}

// select24 partially reorders xs[:n] so that xs[k] holds the k-th order
// statistic (0-based), everything left of k is <= it and everything
// right of k is >= it, and returns xs[k].
func select24(xs *[timegrid.HoursPerDay]float64, n, k int) float64 {
	lo, hi := 0, n-1
	for hi-lo > 8 {
		// Median-of-three pivot, moved to the middle slot.
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
			if xs[mid] < xs[lo] {
				xs[mid], xs[lo] = xs[lo], xs[mid]
			}
		}
		p := xs[mid]
		// Hoare partition: [lo..j] <= p, [i..hi] >= p, anything strictly
		// between equals p.
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k] // k landed in the all-equal-to-pivot gap
		}
	}
	for i := lo + 1; i <= hi; i++ {
		v := xs[i]
		j := i - 1
		for j >= lo && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
	return xs[k]
}

// medianInPlace returns the median of xs, sorting it in place — the
// caller's staging buffer is reset before its next fill, so no copy is
// needed. The engine's own reduction uses the fixed-size median24; this
// slice form remains the reference implementation the tests compare
// against.
func medianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
