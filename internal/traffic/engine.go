package traffic

import (
	"sort"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

// CellDay is the daily KPI record of one 4G cell: for every metric, the
// median of its 24 hourly values, exactly the §2.4 reduction ("for all
// the hourly metrics, we further aggregate them per day and extract the
// (hourly) median value per cell").
type CellDay struct {
	Cell   radio.CellID
	Values [NumMetrics]float64
}

// towerHour accumulates agent-level demand at one tower in one hour.
type towerHour struct {
	presSec   float64 // user-seconds attached
	activeSec float64 // user-seconds with active DL transmission
	dlMB      float64 // downlink data demand (QCI 2–8), agent units
	ulMB      float64 // uplink data demand (QCI 2–8), agent units
	voiceMin  float64 // voice minutes (QCI 1), agent units
}

// Engine converts day traces into per-cell daily KPI records.
type Engine struct {
	pop    *popsim.Population
	topo   *radio.Topology
	scen   *pandemic.Scenario
	params Params
	seed   uint64

	subsPerAgent float64
	// baselineBusyVoiceMin is the national busy-hour voice demand at
	// baseline, in agent units; interconnect capacity is dimensioned
	// against it.
	baselineBusyVoiceMin float64
	// towerRural marks towers serving Rural Residents districts, where
	// fixed broadband is weaker and WiFi offload correspondingly so.
	towerRural []bool

	// scratch, reused across days: [tower][hour]
	acc [][timegrid.HoursPerDay]towerHour
	// hv stages the 24 hourly values of each metric while one cell's
	// records are reduced to their daily medians; weights stages the
	// per-tower sector load split. Both are warm after the first day, so
	// DayAppend runs allocation-free.
	hv      [NumMetrics][]float64
	weights []float64
	// ch is the record handed to emit callbacks; it lives on the engine
	// because its address crosses the callback boundary, which would
	// otherwise force a heap escape per day. Callbacks already must copy
	// what they keep — the record is rewritten every cell-hour.
	ch CellHour
}

// NewEngine builds the KPI engine.
func NewEngine(pop *popsim.Population, scen *pandemic.Scenario, params Params, seed uint64) *Engine {
	e := &Engine{
		pop:    pop,
		topo:   pop.Topology(),
		scen:   scen,
		params: params,
		seed:   rng.Hash64(seed ^ 0xE16E),
	}
	e.subsPerAgent = params.MarketShare / pop.Scale()
	e.baselineBusyVoiceMin = float64(len(pop.Native())) * params.VoiceMinPerUserDay * peakVoiceHourShare()
	e.acc = make([][timegrid.HoursPerDay]towerHour, len(e.topo.Towers))
	model := pop.Model()
	e.towerRural = make([]bool, len(e.topo.Towers))
	for i := range e.topo.Towers {
		d := model.District(e.topo.Towers[i].District)
		e.towerRural[i] = d.Cluster == census.RuralResidents
	}
	return e
}

// Params returns the engine's model constants.
func (e *Engine) Params() Params { return e.params }

// Clone returns an engine with the same model parameters and seed but an
// independent scratch area. Day is deterministic in (construction, day,
// traces) and never mutates anything but the scratch, so clones produce
// bit-identical records to the original and may run concurrently, one
// per worker. Clone snapshots the engine struct — including the scratch
// headers Day/DayAppend rewrite — so it must not run concurrently with
// a Day on the receiver: take every clone before starting the workers.
func (e *Engine) Clone() *Engine {
	c := *e
	c.acc = make([][timegrid.HoursPerDay]towerHour, len(e.acc))
	c.hv = [NumMetrics][]float64{}
	c.weights = nil
	return &c
}

// Rebind swaps the engine's scenario in place and returns the receiver.
// Everything else an engine precomputes at construction — the
// subscriber scale, the interconnect dimensioning, the rural-tower
// marks — is scenario-independent, and the scenario is only consulted
// per day inside forEachCellHour, so a rebound engine produces records
// bit-identical to NewEngine(pop, scen, params, seed) while keeping its
// warm scratch (the per-tower hourly accumulators dominate an engine's
// footprint). The engine must not be running a Day when rebound; sweep
// workers rebind between scenario runs.
func (e *Engine) Rebind(scen *pandemic.Scenario) *Engine {
	e.scen = scen
	return e
}

// InterconnectCapacity returns the interconnect voice capacity (agent
// units, minutes per hour) in effect on the given simulated day.
func (e *Engine) InterconnectCapacity(day timegrid.SimDay) float64 {
	headroom := e.params.InterconnectHeadroom
	if sd, ok := day.ToStudyDay(); ok && sd >= e.params.InterconnectUpgradeDay {
		headroom = e.params.InterconnectHeadroomAfter
	}
	return e.baselineBusyVoiceMin * headroom
}

// CellHour is the raw hourly KPI record of one 4G cell, before the §2.4
// daily-median reduction; DayHourly exposes it for analyses that need
// sub-daily resolution. A zero DLThroughput marks an hour with no
// active users (throughput undefined).
type CellHour struct {
	Cell   radio.CellID
	Hour   int
	Values [NumMetrics]float64
}

// Day runs the KPI model for one simulated day over the given traces and
// returns one record per active 4G cell: for each metric the median of
// its 24 hourly values. Deterministic in (engine construction, day,
// traces). It allocates a fresh result per call; hot loops should call
// DayAppend with a reused destination.
func (e *Engine) Day(day timegrid.SimDay, traces []mobsim.DayTrace) []CellDay {
	return e.DayAppend(make([]CellDay, 0, len(e.topo.Cells4G())), day, traces)
}

// DayAppend is Day appending into dst (pass prev[:0] to reuse capacity).
// The hourly staging buffers live on the engine and the medians are
// taken by sorting them in place, so a warm engine produces a day of
// records without heap allocation. Records are bit-identical to Day's.
func (e *Engine) DayAppend(dst []CellDay, day timegrid.SimDay, traces []mobsim.DayTrace) []CellDay {
	if e.hv[0] == nil {
		for m := range e.hv {
			e.hv[m] = make([]float64, 0, timegrid.HoursPerDay)
		}
	}
	var cur radio.CellID = -1
	flush := func() {
		if cur < 0 {
			return
		}
		var cd CellDay
		cd.Cell = cur
		for m := 0; m < NumMetrics; m++ {
			cd.Values[m] = medianInPlace(e.hv[m])
		}
		dst = append(dst, cd)
	}
	e.forEachCellHour(day, traces, func(ch *CellHour) {
		if ch.Cell != cur {
			flush()
			cur = ch.Cell
			for m := range e.hv {
				e.hv[m] = e.hv[m][:0]
			}
		}
		for m := 0; m < NumMetrics; m++ {
			if m == int(DLThroughput) && ch.Values[m] == 0 {
				continue // hour without active users: throughput undefined
			}
			e.hv[m] = append(e.hv[m], ch.Values[m])
		}
	})
	flush()
	return dst
}

// DayHourly runs the KPI model at hourly resolution, emitting one record
// per (active 4G cell, hour). Records of one cell arrive consecutively,
// hours ascending.
func (e *Engine) DayHourly(day timegrid.SimDay, traces []mobsim.DayTrace, emit func(*CellHour)) {
	e.forEachCellHour(day, traces, emit)
}

// forEachCellHour is the engine core: demand accumulation, interconnect
// congestion and the per-cell-hour KPI computation.
func (e *Engine) forEachCellHour(day timegrid.SimDay, traces []mobsim.DayTrace, emit func(*CellHour)) {
	p := &e.params
	sd, inStudy := day.ToStudyDay()

	dataF, homeF, voiceF, throttleF, activity := 1.0, 1.0, 1.0, 1.0, 1.0
	if inStudy {
		dataF = e.scen.DataFactor(sd)
		homeF = e.scen.HomeCellularFactor(sd)
		voiceF = e.scen.VoiceFactor(sd)
		throttleF = e.scen.ThrottleFactor(sd)
		activity = e.scen.Activity(sd)
	}
	// Conferencing boost on at-residence uplink grows with the activity
	// deficit (people confined at home hold video calls), and total
	// at-home appetite grows with confinement.
	confBoost := 1 + (p.ConferencingULBoost-1)*(1-activity)
	homeBoost := 1 + p.HomeDemandBoost*(1-activity)

	// Reset scratch.
	for i := range e.acc {
		e.acc[i] = [timegrid.HoursPerDay]towerHour{}
	}

	for i := range traces {
		t := &traces[i]
		usrc := rng.Stream2(e.seed, uint64(t.User), uint64(day))
		// Per-user-day appetite dispersion.
		quirk := 0.70 + 0.60*usrc.Float64()
		dlPerDay := p.DLPerUserDayMB * dataF * quirk
		voicePerDay := p.VoiceMinPerUserDay * voiceF * (0.70 + 0.60*usrc.Float64())
		urbanOffload := p.HomeCellularShare * homeF
		// Rural homes have weaker fixed broadband: a higher cellular
		// share at baseline and a damped pandemic offload shift. The
		// rule keys on where the residence is, so relocated users take
		// on their destination's offload behaviour.
		ruralOffload := p.RuralHomeCellularShare * (1 - (1-homeF)*p.RuralOffloadDamping)

		for _, v := range t.Visits {
			secPerHour := float64(v.Seconds) / timegrid.BinHours
			hourFrac := secPerHour / 3600
			start, end := v.Bin.Hours()
			// offEng drives "active user" engagement (no appetite boost:
			// an offloaded user is attached but inactive on cellular);
			// offDem additionally carries the confinement demand boost.
			offEng, offDem := 1.0, 1.0
			ulBoost := 1.0
			if v.AtResidence {
				if e.towerRural[v.Tower] {
					offEng = ruralOffload
					// Rural appetite growth is capped by coverage and
					// plan limits; damp the confinement boost.
					offDem = ruralOffload * (1 + (homeBoost-1)*0.3)
				} else {
					offEng = urbanOffload
					offDem = urbanOffload * homeBoost
				}
				ulBoost = confBoost
			}
			th := &e.acc[v.Tower]
			for h := start; h < end; h++ {
				a := &th[h]
				a.presSec += secPerHour
				a.activeSec += secPerHour * engagement[h] * offEng
				dl := dlPerDay * diurnalData[h] * hourFrac * offDem
				a.dlMB += dl
				a.ulMB += dl * p.ULRatio * ulBoost
				a.voiceMin += voicePerDay * diurnalVoice[h] * hourFrac
			}
		}
	}

	// Interconnect congestion: national voice demand per hour versus the
	// day's capacity.
	var nationalVoice [timegrid.HoursPerDay]float64
	for ti := range e.acc {
		for h := 0; h < timegrid.HoursPerDay; h++ {
			nationalVoice[h] += e.acc[ti][h].voiceMin
		}
	}
	capacity := e.InterconnectCapacity(day)
	var congestionLoss [timegrid.HoursPerDay]float64
	for h := 0; h < timegrid.HoursPerDay; h++ {
		util := nationalVoice[h] / capacity
		if util > 1 {
			extra := (util - 1) * p.CongestionLossPctPerUnit
			if extra > p.CongestionLossCapPct {
				extra = p.CongestionLossCapPct
			}
			congestionLoss[h] = extra
		}
	}

	// Per-cell-hour KPI computation.
	const baselineLoadNorm = 0.35
	ch := &e.ch

	for ti := range e.topo.Towers {
		tower := &e.topo.Towers[ti]
		if !tower.ActiveOn(day) {
			continue
		}
		cells := e.topo.Cells4GOfTower(tower.ID)
		if len(cells) == 0 {
			continue
		}
		// Per-cell-day load split weights: uneven sector loading.
		weights := e.weights[:0]
		var wsum float64
		for _, cid := range cells {
			wsrc := rng.Stream2(e.seed, uint64(cid), uint64(day))
			w := 0.75 + 0.5*wsrc.Float64()
			weights = append(weights, w)
			wsum += w
		}
		e.weights = weights

		for ci, cid := range cells {
			share := weights[ci] / wsum
			csrc := rng.Stream2(e.seed, uint64(cid)^0xCE11, uint64(day))
			thrJitter := 0.92 + 0.16*csrc.Float64()

			for h := 0; h < timegrid.HoursPerDay; h++ {
				a := &e.acc[ti][h]
				pres := a.presSec / 3600 * share * e.subsPerAgent
				active := a.activeSec / 3600 * share * e.subsPerAgent
				dl := a.dlMB * share * e.subsPerAgent
				ul := a.ulMB * share * e.subsPerAgent
				vmin := a.voiceMin * share * e.subsPerAgent
				vMB := vmin * p.VoiceMBPerMin

				load := p.LoadOverhead + (dl+ul+2*vMB)/p.CellCapacityMBPerHour
				if load > 1 {
					load = 1
				}
				loadNorm := load / baselineLoadNorm

				ch.Cell = cid
				ch.Hour = h
				ch.Values[DLVolume] = dl + vMB
				ch.Values[ULVolume] = ul + vMB
				ch.Values[DLActiveUsers] = active
				ch.Values[RadioLoad] = load
				ch.Values[ConnectedUsers] = pres
				ch.Values[VoiceVolume] = vMB
				ch.Values[VoiceUsers] = vmin / 60
				ch.Values[VoiceULLoss] = p.BaseULLossPct * (0.35 + 0.65*loadNorm)
				ch.Values[VoiceDLLoss] = p.BaseDLLossPct*(0.35+0.65*loadNorm) + congestionLoss[h]
				ch.Values[DLThroughput] = 0
				if active > 0.01 {
					ch.Values[DLThroughput] = p.BaseThroughputMbps * throttleF * thrJitter * (1 - p.CongestionK*load*load)
				}
				emit(ch)
			}
		}
	}
}

// medianInPlace returns the median of xs, sorting it in place — the
// caller's staging buffer is reset before its next fill, so no copy is
// needed.
func medianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
