package traffic

import (
	"runtime"
	"sync"

	"repro/internal/mobsim"
	"repro/internal/obs"
	"repro/internal/timegrid"
)

// shardTask is one accumulation unit handed to the pool: fold
// traces[lo:hi] into tile under the day's factors, then signal wg. The
// task is self-contained, so tasks from different engines interleave on
// the same workers safely. The counters are the instrumented path's
// per-shard and whole-engine visit tallies; nil (a no-op Add) when the
// engine is uninstrumented, which keeps the task a plain struct send —
// still zero heap allocations either way.
type shardTask struct {
	e      *Engine
	tile   *accTile
	day    timegrid.SimDay
	f      *dayFactors
	traces []mobsim.DayTrace
	lo, hi int
	wg     *sync.WaitGroup
	visits *obs.Counter // traffic.shard.NN.visits
	total  *obs.Counter // traffic.visits
}

var (
	shardPoolOnce sync.Once
	shardTasks    chan shardTask
)

// startShardPool lazily spawns the process-wide accumulation workers.
// A persistent pool (rather than a goroutine per call) keeps the
// steady-state sharded day at zero heap allocations: `go f(args)`
// allocates a closure per spawn, while a channel send of a task struct
// does not. The workers live for the rest of the process; they are
// shared by every engine, idle on a channel receive when no sharded day
// is running, and their count never affects results — each task writes
// only its own tile, and the merge order is fixed by shard index.
func startShardPool() {
	shardPoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 2 {
			// Keep real concurrency even on a single-core runner so the
			// race detector exercises the same interleavings CI relies
			// on.
			n = 2
		}
		shardTasks = make(chan shardTask, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range shardTasks {
					nv := int64(t.e.accumulateRange(t.tile, t.day, t.f, t.traces, t.lo, t.hi))
					t.visits.Add(nv)
					t.total.Add(nv)
					t.wg.Done()
				}
			}()
		}
	})
}

// DayAppendSharded is DayAppend with the visit accumulation partitioned
// across a fixed shard count: shard s folds the contiguous trace range
// [s·n/shards, (s+1)·n/shards) into its own accumulator tile on the
// process-wide worker pool, and the tiles are merged into the canonical
// grid in shard-index order before the usual reduction.
//
// Determinism contract: the output is a pure function of (engine
// construction, day, traces, shards) — the partition depends only on
// trace index and shard count, each tile is computed independently, and
// the merge replays shard order regardless of how many pool workers ran
// the tasks (pinned by TestDayAppendShardedPoolMatchesInline under
// -race). Across *shard counts* the records differ from DayAppend only
// in floating-point association — per-shard partial sums are added
// tower-wise instead of interleaving every user — which moves KPI values
// by parts in 1e-12 relative; TestDayAppendShardedMatchesSerial bounds
// the drift at 1e-9. shards <= 1 degrades to the bit-identical serial
// DayAppend.
func (e *Engine) DayAppendSharded(dst []CellDay, day timegrid.SimDay, traces []mobsim.DayTrace, shards int) []CellDay {
	return e.dayAppendSharded(dst, day, traces, shards, false)
}

// dayAppendSharded is DayAppendSharded with the pool bypass the
// worker-count-invariance tests use: inline mode executes every shard
// task on the calling goroutine, which must produce bit-identical
// records to any pool schedule.
func (e *Engine) dayAppendSharded(dst []CellDay, day timegrid.SimDay, traces []mobsim.DayTrace, shards int, inline bool) []CellDay {
	if shards <= 1 {
		return e.DayAppend(dst, day, traces)
	}
	sp := obs.Start(e.obs.day())
	e.dayF = e.dayFactorsFor(day)
	e.accumulateSharded(day, traces, shards, inline)
	dst = e.reduceAppend(dst, day, &e.dayF)
	sp.End()
	return dst
}

// accumulateSharded runs the partitioned accumulation and the canonical
// merge. e.dayF must already hold the day's factors.
func (e *Engine) accumulateSharded(day timegrid.SimDay, traces []mobsim.DayTrace, shards int, inline bool) {
	for len(e.tiles) < shards {
		e.tiles = append(e.tiles, newAccTile(len(e.tile.acc)))
	}
	if e.shardWG == nil {
		e.shardWG = new(sync.WaitGroup)
	}
	if !inline {
		startShardPool()
	}

	n := len(traces)
	for s := 0; s < shards; s++ {
		t := &e.tiles[s]
		t.beginDay()
		lo, hi := s*n/shards, (s+1)*n/shards
		vc := e.obs.shardCounter(s)
		if inline || lo == hi {
			nv := int64(e.accumulateRange(t, day, &e.dayF, traces, lo, hi))
			vc.Add(nv)
			e.obs.total().Add(nv)
			continue
		}
		e.shardWG.Add(1)
		shardTasks <- shardTask{e: e, tile: t, day: day, f: &e.dayF, traces: traces, lo: lo, hi: hi, wg: e.shardWG, visits: vc, total: e.obs.total()}
	}
	e.shardWG.Wait()

	// Merge in shard-index order (and, within a shard, in the shard's
	// first-touch journal order): the one canonical addition sequence,
	// invariant to pool scheduling.
	msp := obs.Start(e.obs.merge())
	e.tile.beginDay()
	for s := 0; s < shards; s++ {
		t := &e.tiles[s]
		for _, ti := range t.touched {
			dstH := e.tile.tower(ti)
			srcH := &t.acc[ti]
			for h := 0; h < timegrid.HoursPerDay; h++ {
				dstH[h].presSec += srcH[h].presSec
				dstH[h].activeSec += srcH[h].activeSec
				dstH[h].dlMB += srcH[h].dlMB
				dstH[h].ulMB += srcH[h].ulMB
				dstH[h].voiceMin += srcH[h].voiceMin
			}
		}
	}
	msp.End()
}
