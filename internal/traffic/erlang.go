package traffic

import "math"

// ErlangB returns the Erlang-B blocking probability for the given
// offered load (erlangs) and number of channels, using the numerically
// stable recurrence
//
//	B(0, a) = 1
//	B(c, a) = a·B(c−1, a) / (c + a·B(c−1, a))
//
// It is the classic dimensioning formula for circuit-style voice
// capacity; the reproduction uses it to estimate how close the voice
// surge of §4.2 came to call blocking on the radio side (the paper's
// incident was on the interconnect, not the radio, and the blocking
// estimate below confirms why: radio voice capacity had headroom).
func ErlangB(erlangs float64, channels int) float64 {
	if channels <= 0 {
		return 1
	}
	if erlangs <= 0 {
		return 0
	}
	b := 1.0
	for c := 1; c <= channels; c++ {
		b = erlangs * b / (float64(c) + erlangs*b)
	}
	return b
}

// ErlangBChannels returns the minimum number of channels needed to keep
// blocking at or below target for the offered load. It returns 0 for
// non-positive loads and caps the search at a generous bound.
func ErlangBChannels(erlangs, targetBlocking float64) int {
	if erlangs <= 0 {
		return 0
	}
	if targetBlocking <= 0 {
		targetBlocking = 1e-9
	}
	// Blocking decreases monotonically in channels; a linear scan with
	// the recurrence is O(channels) and channels ≈ erlangs + margin.
	b := 1.0
	for c := 1; c < 100_000; c++ {
		b = erlangs * b / (float64(c) + erlangs*b)
		if b <= targetBlocking {
			return c
		}
	}
	return 100_000
}

// VoiceBlockingEstimate estimates the per-cell radio voice blocking for
// a given simultaneous-voice-users level (erlangs) against the cell's
// VoLTE capacity in concurrent calls.
type VoiceBlockingEstimate struct {
	OfferedErlangs float64
	Channels       int
	Blocking       float64
}

// EstimateVoiceBlocking computes the Erlang-B blocking for a cell-hour:
// capacityMBPerHour and voiceMBPerMin bound the concurrent VoLTE calls a
// cell can schedule alongside its data load (voice gets priority, so
// only the voice-reserved share matters).
func EstimateVoiceBlocking(erlangs float64, p Params) VoiceBlockingEstimate {
	// Concurrent calls the cell could carry if fully dedicated to
	// voice: one call consumes VoiceMBPerMin per direction.
	perCallMBPerHour := p.VoiceMBPerMin * 60 * 2
	channels := int(math.Floor(p.CellCapacityMBPerHour / perCallMBPerHour))
	return VoiceBlockingEstimate{
		OfferedErlangs: erlangs,
		Channels:       channels,
		Blocking:       ErlangB(erlangs, channels),
	}
}
