package traffic

import (
	"testing"

	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

// synthDay builds a hand-crafted day trace: each entry visits exactly
// the given towers, splitting the six 4-hour bins round-robin across
// them. The engine never validates physical consistency, so synthetic
// traces let the tests aim demand at specific towers.
func synthDay(users int, towers []radio.TowerID, atResidence bool) []mobsim.DayTrace {
	traces := make([]mobsim.DayTrace, users)
	for u := range traces {
		traces[u].User = popsim.UserID(u + 1)
		for b := 0; b < timegrid.BinsPerDay; b++ {
			tw := towers[(u+b)%len(towers)]
			traces[u].Visits = append(traces[u].Visits,
				mobsim.MakeVisit(tw, timegrid.Bin(b), 4*3600, atResidence))
		}
	}
	return traces
}

// TestEpochResetNoStaleLeak is the adversarial reset test of the
// epoch-stamped accumulators: a tower hammered on day N and untouched on
// day N+1 must contribute exactly nothing to day N+1 — the lazily-reset
// tile may physically still hold day N's demand, but the stale stamp
// must hide it. The oracle is a fresh engine that never saw day N.
func TestEpochResetNoStaleLeak(t *testing.T) {
	pop, _, _ := fixture(t)
	eng := NewEngine(pop, fixEng.scen, DefaultParams(), 1)
	fresh := NewEngine(pop, fixEng.scen, DefaultParams(), 1)

	hot := []radio.TowerID{3, 17, 101}
	cold := []radio.TowerID{200, 350}
	dayN := timegrid.SimDay(timegrid.StudyDayOffset + 10)
	dayN1 := dayN + 1

	// Day N: saturate the hot towers.
	warm := eng.Day(dayN, synthDay(400, hot, true))
	var hotSum float64
	hotCells := map[radio.CellID]bool{}
	for _, tw := range hot {
		for _, cid := range pop.Topology().Cells4GOfTower(tw) {
			hotCells[cid] = true
		}
	}
	for i := range warm {
		if hotCells[warm[i].Cell] {
			hotSum += warm[i].Values[DLVolume]
		}
	}
	if hotSum == 0 {
		t.Fatal("day N put no demand on the hot towers; fixture broken")
	}

	// Day N+1: only the cold towers. Warm engine vs an engine that never
	// saw day N — any difference is a stale-accumulator leak.
	traces := synthDay(400, cold, false)
	got := eng.Day(dayN1, traces)
	want := fresh.Day(dayN1, traces)
	if len(got) != len(want) {
		t.Fatalf("%d vs %d cells", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cell %d: warm %+v vs fresh %+v — stale towerHour demand leaked across the epoch reset",
				got[i].Cell, got[i], want[i])
		}
	}
}

// TestEpochResetNoStaleLeakProperty randomizes the adversary: several
// consecutive days, each visiting a random sparse subset of towers, with
// every day's warm-engine output compared against a fresh engine that
// only ever runs that day. Covers partial overlap (some towers persist,
// some vanish, some appear) across both the serial and the sharded
// accumulation paths.
func TestEpochResetNoStaleLeakProperty(t *testing.T) {
	pop, _, _ := fixture(t)
	warmSerial := NewEngine(pop, fixEng.scen, DefaultParams(), 1)
	warmSharded := NewEngine(pop, fixEng.scen, DefaultParams(), 1)
	nTowers := len(pop.Topology().Towers)
	src := rng.New(1234)

	for day := timegrid.SimDay(timegrid.StudyDayOffset); day < timegrid.SimDay(timegrid.StudyDayOffset+6); day++ {
		towers := make([]radio.TowerID, 1+src.Intn(7))
		for i := range towers {
			towers[i] = radio.TowerID(src.Intn(nTowers))
		}
		traces := synthDay(50+src.Intn(200), towers, src.Bool(0.5))

		fresh := NewEngine(pop, fixEng.scen, DefaultParams(), 1)
		want := fresh.Day(day, traces)
		got := warmSerial.Day(day, traces)
		if len(got) != len(want) {
			t.Fatalf("day %d: %d vs %d cells", day, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("day %d cell %d: warm %+v vs fresh %+v (serial stale leak)",
					day, got[i].Cell, got[i], want[i])
			}
		}

		freshSharded := NewEngine(pop, fixEng.scen, DefaultParams(), 1)
		wantSh := freshSharded.DayAppendSharded(nil, day, traces, 3)
		gotSh := warmSharded.DayAppendSharded(nil, day, traces, 3)
		for i := range gotSh {
			if gotSh[i] != wantSh[i] {
				t.Fatalf("day %d cell %d: warm %+v vs fresh %+v (sharded stale leak)",
					day, gotSh[i].Cell, gotSh[i], wantSh[i])
			}
		}
	}
}
