package traffic

import (
	"math"
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

var (
	fixOnce sync.Once
	fixPop  *popsim.Population
	fixSim  *mobsim.Simulator
	fixEng  *Engine
)

func fixture(t *testing.T) (*popsim.Population, *mobsim.Simulator, *Engine) {
	t.Helper()
	fixOnce.Do(func() {
		m := census.BuildUK(1)
		topo := radio.Build(m, radio.DefaultConfig(), 1)
		fixPop = popsim.Synthesize(m, topo, popsim.Config{
			Seed: 1, TargetUsers: 2500,
		})
		fixSim = mobsim.New(fixPop, pandemic.Default(), 1)
		fixEng = NewEngine(fixPop, pandemic.Default(), DefaultParams(), 1)
	})
	return fixPop, fixSim, fixEng
}

func TestMetricStringsAndSets(t *testing.T) {
	for _, m := range Metrics() {
		if m.String() == "" {
			t.Errorf("metric %d has no name", m)
		}
	}
	if len(Metrics()) != NumMetrics {
		t.Error("Metrics() incomplete")
	}
	if len(DataMetrics()) != 6 || len(VoiceMetrics()) != 4 {
		t.Error("metric subsets wrong")
	}
	if DLVolume.String() != "Downlink Data Volume" {
		t.Errorf("DLVolume = %q", DLVolume.String())
	}
}

func TestEngineDayBasics(t *testing.T) {
	pop, sim, eng := fixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 2) // Wed week 9
	cells := eng.Day(day, sim.Day(day))
	if len(cells) == 0 {
		t.Fatal("no cell records")
	}
	if len(cells) > len(pop.Topology().Cells4G()) {
		t.Fatal("more records than 4G cells")
	}
	seen := map[radio.CellID]bool{}
	for i := range cells {
		c := &cells[i]
		if seen[c.Cell] {
			t.Fatalf("cell %d reported twice", c.Cell)
		}
		seen[c.Cell] = true
		if pop.Topology().Cell(c.Cell).RAT != radio.RAT4G {
			t.Fatalf("record for non-4G cell")
		}
		for m := 0; m < NumMetrics; m++ {
			v := c.Values[m]
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("cell %d metric %v = %v", c.Cell, Metric(m), v)
			}
		}
		if c.Values[RadioLoad] > 1 {
			t.Fatalf("radio load %v > 1", c.Values[RadioLoad])
		}
		// UL stays below DL per cell (order-of-magnitude asymmetry).
		if c.Values[ULVolume] > c.Values[DLVolume] {
			t.Errorf("cell %d UL %v > DL %v", c.Cell, c.Values[ULVolume], c.Values[DLVolume])
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	_, sim, eng := fixture(t)
	day := timegrid.SimDay(50)
	traces := sim.Day(day)
	a := eng.Day(day, traces)
	b := eng.Day(day, traces)
	if len(a) != len(b) {
		t.Fatal("record counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell record %d differs", i)
		}
	}
}

func TestVolumeConservationAcrossSectors(t *testing.T) {
	// The per-cell split must conserve the tower totals: summing DL over
	// a tower's cells on two different days with identical presence
	// would be equal; here we check the weaker invariant that the split
	// weights normalize (total volume is insensitive to cell count).
	pop, sim, eng := fixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 1)
	cells := eng.Day(day, sim.Day(day))
	totBy := map[radio.TowerID]float64{}
	for i := range cells {
		c := pop.Topology().Cell(cells[i].Cell)
		totBy[c.Tower] += cells[i].Values[ConnectedUsers]
	}
	// Median per-tower connected users should be plausibly positive.
	pos := 0
	for _, v := range totBy {
		if v > 0 {
			pos++
		}
	}
	if pos < len(totBy)/2 {
		t.Errorf("only %d/%d towers carry users", pos, len(totBy))
	}
}

func TestVoiceSurgeRaisesVoiceKPIs(t *testing.T) {
	_, sim, eng := fixture(t)
	base := timegrid.SimDay(timegrid.StudyDayOffset + 2)   // week 9
	surge := timegrid.SimDay(timegrid.StudyDayOffset + 23) // week 12 (Wed 18 Mar)
	sumMetric := func(day timegrid.SimDay, m Metric) float64 {
		cells := eng.Day(day, sim.Day(day))
		var s float64
		for i := range cells {
			s += cells[i].Values[m]
		}
		return s
	}
	b, s := sumMetric(base, VoiceVolume), sumMetric(surge, VoiceVolume)
	if s < 1.8*b {
		t.Errorf("voice volume surge: %v vs baseline %v, want ≥1.8×", s, b)
	}
	bu, su := sumMetric(base, VoiceUsers), sumMetric(surge, VoiceUsers)
	if su < 1.8*bu {
		t.Errorf("voice users surge: %v vs %v", su, bu)
	}
}

func TestInterconnectCongestionWindow(t *testing.T) {
	_, sim, eng := fixture(t)
	meanLoss := func(day timegrid.SimDay) float64 {
		cells := eng.Day(day, sim.Day(day))
		var s float64
		for i := range cells {
			s += cells[i].Values[VoiceDLLoss]
		}
		return s / float64(len(cells))
	}
	base := meanLoss(timegrid.SimDay(timegrid.StudyDayOffset + 2))
	congested := meanLoss(timegrid.SimDay(timegrid.StudyDayOffset + 17)) // week 11
	after := meanLoss(timegrid.SimDay(timegrid.StudyDayOffset + 45))     // post-upgrade
	if congested < base*1.5 {
		t.Errorf("week-11 DL loss %v vs baseline %v, want a surge", congested, base)
	}
	if after >= base {
		t.Errorf("post-upgrade loss %v should fall below baseline %v", after, base)
	}
}

func TestInterconnectCapacitySchedule(t *testing.T) {
	_, _, eng := fixture(t)
	before := eng.InterconnectCapacity(timegrid.SimDay(timegrid.StudyDayOffset + 10))
	after := eng.InterconnectCapacity(timegrid.SimDay(timegrid.StudyDayOffset + 40))
	if after <= before {
		t.Errorf("capacity before %v, after %v — upgrade missing", before, after)
	}
	feb := eng.InterconnectCapacity(5)
	if feb != before {
		t.Errorf("February capacity %v != pre-upgrade %v", feb, before)
	}
}

func TestThroughputThrottled(t *testing.T) {
	_, sim, eng := fixture(t)
	medThr := func(day timegrid.SimDay) float64 {
		cells := eng.Day(day, sim.Day(day))
		var vals []float64
		for i := range cells {
			if v := cells[i].Values[DLThroughput]; v > 0 {
				vals = append(vals, v)
			}
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	base := medThr(timegrid.SimDay(timegrid.StudyDayOffset + 2))
	lock := medThr(timegrid.SimDay(timegrid.StudyDayOffset + 38))
	drop := (lock - base) / base * 100
	if drop > -4 || drop < -18 {
		t.Errorf("throughput change = %v%%, want ≈-10%%", drop)
	}
}

func TestNullScenarioIsFlat(t *testing.T) {
	m := census.BuildUK(2)
	topo := radio.Build(m, radio.DefaultConfig(), 2)
	pop := popsim.Synthesize(m, topo, popsim.Config{Seed: 2, TargetUsers: 1200})
	sim := mobsim.New(pop, pandemic.NoPandemic(), 2)
	eng := NewEngine(pop, pandemic.NoPandemic(), DefaultParams(), 2)
	sum := func(day timegrid.SimDay, metric Metric) float64 {
		cells := eng.Day(day, sim.Day(day))
		var s float64
		for i := range cells {
			s += cells[i].Values[metric]
		}
		return s
	}
	// Same weekday in week 9 and week 14: without a pandemic, volumes
	// stay within ±10%.
	base := sum(timegrid.SimDay(timegrid.StudyDayOffset+2), DLVolume)
	later := sum(timegrid.SimDay(timegrid.StudyDayOffset+37), DLVolume)
	delta := math.Abs(later-base) / base
	if delta > 0.10 {
		t.Errorf("null-scenario DL drifted %v%%", delta*100)
	}
	voiceBase := sum(timegrid.SimDay(timegrid.StudyDayOffset+2), VoiceVolume)
	voiceLater := sum(timegrid.SimDay(timegrid.StudyDayOffset+37), VoiceVolume)
	if math.Abs(voiceLater-voiceBase)/voiceBase > 0.10 {
		t.Error("null-scenario voice drifted")
	}
}

func TestPeakVoiceHourShare(t *testing.T) {
	p := peakVoiceHourShare()
	if p <= 0 || p > 0.2 {
		t.Errorf("peak voice hour share = %v", p)
	}
	var sumData, sumVoice, sumEng float64
	for h := 0; h < timegrid.HoursPerDay; h++ {
		sumData += diurnalData[h]
		sumVoice += diurnalVoice[h]
		sumEng += engagement[h]
	}
	if math.Abs(sumData-1) > 0.01 {
		t.Errorf("data diurnal sums to %v", sumData)
	}
	if math.Abs(sumVoice-1) > 0.01 {
		t.Errorf("voice diurnal sums to %v", sumVoice)
	}
	if sumEng <= 0 {
		t.Error("engagement profile empty")
	}
}

func TestMedianInPlace(t *testing.T) {
	if got := medianInPlace(nil); got != 0 {
		t.Errorf("medianInPlace(nil) = %v", got)
	}
	if got := medianInPlace([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := medianInPlace([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestInactiveTowersExcluded(t *testing.T) {
	m := census.BuildUK(5)
	cfg := radio.DefaultConfig()
	cfg.NewSiteFraction = 0.5 // half the estate activates mid-window
	topo := radio.Build(m, cfg, 5)
	pop := popsim.Synthesize(m, topo, popsim.Config{Seed: 5, TargetUsers: 800})
	sim := mobsim.New(pop, pandemic.Default(), 5)
	eng := NewEngine(pop, pandemic.Default(), DefaultParams(), 5)
	early := eng.Day(0, sim.Day(0))
	late := eng.Day(timegrid.SimDays-1, sim.Day(timegrid.SimDays-1))
	if len(early) >= len(late) {
		t.Errorf("cell records should grow as sites activate: %d then %d", len(early), len(late))
	}
}

func TestDayHourlyConsistentWithDay(t *testing.T) {
	_, sim, eng := fixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 9)
	traces := sim.Day(day)

	// Recompute the daily medians from the hourly stream and compare
	// with Day's output.
	type agg struct{ vals [NumMetrics][]float64 }
	perCell := map[radio.CellID]*agg{}
	var order []radio.CellID
	hours := 0
	eng.DayHourly(day, traces, func(ch *CellHour) {
		a := perCell[ch.Cell]
		if a == nil {
			a = &agg{}
			perCell[ch.Cell] = a
			order = append(order, ch.Cell)
		}
		if ch.Hour < 0 || ch.Hour >= timegrid.HoursPerDay {
			t.Fatalf("hour %d out of range", ch.Hour)
		}
		for m := 0; m < NumMetrics; m++ {
			if m == int(DLThroughput) && ch.Values[m] == 0 {
				continue
			}
			a.vals[m] = append(a.vals[m], ch.Values[m])
		}
		hours++
	})
	if hours == 0 {
		t.Fatal("no hourly records")
	}

	days := eng.Day(day, traces)
	if len(days) != len(order) {
		t.Fatalf("Day returned %d cells, hourly saw %d", len(days), len(order))
	}
	for i, cd := range days {
		if cd.Cell != order[i] {
			t.Fatalf("cell order mismatch at %d", i)
		}
		a := perCell[cd.Cell]
		for m := 0; m < NumMetrics; m++ {
			if got, want := cd.Values[m], medianInPlace(a.vals[m]); got != want {
				t.Fatalf("cell %d metric %v: daily %v vs hourly-median %v", cd.Cell, Metric(m), got, want)
			}
		}
	}
}

func TestDayHourlyDiurnalShape(t *testing.T) {
	_, sim, eng := fixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 1)
	traces := sim.Day(day)
	var byHour [timegrid.HoursPerDay]float64
	eng.DayHourly(day, traces, func(ch *CellHour) {
		byHour[ch.Hour] += ch.Values[DLVolume]
	})
	// Evening peak well above the small hours.
	night := byHour[3]
	evening := byHour[20]
	if evening < 5*night {
		t.Errorf("evening volume %v vs night %v: diurnal shape missing", evening, night)
	}
}
