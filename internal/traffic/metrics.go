// Package traffic implements the radio network performance substrate:
// it converts per-user tower presence (from the mobility simulator) and
// an application demand model into the hourly per-4G-cell KPIs the
// paper's probes export (§2.4) — uplink/downlink data volume over QCI
// 1–8, average active downlink users, radio load (TTI utilization),
// average user downlink throughput, connected users, and the
// conversational-voice KPIs over QCI 1: voice traffic volume, average
// simultaneous voice users, and uplink/downlink packet loss error rates.
//
// It also models the inter-MNO voice interconnection infrastructure
// whose capacity was exceeded by the March 2020 call surge (§4.2), and
// the operations response that restored it.
package traffic

import "fmt"

// Metric indexes one of the per-cell KPIs of §2.4.
type Metric int

// KPI metrics, in the order the figures present them.
const (
	DLVolume       Metric = iota // downlink data volume, MB per hour (QCI 1–8)
	ULVolume                     // uplink data volume, MB per hour (QCI 1–8)
	DLActiveUsers                // average users with active DL transmission
	DLThroughput                 // average user DL throughput, Mbps
	RadioLoad                    // TTI utilization, fraction of scheduler capacity
	ConnectedUsers               // total attached users (active + idle)
	VoiceVolume                  // conversational voice volume, MB per hour (QCI 1)
	VoiceUsers                   // average simultaneous voice users
	VoiceULLoss                  // voice uplink packet loss error rate, percent
	VoiceDLLoss                  // voice downlink packet loss error rate, percent
	NumMetrics     = int(VoiceDLLoss) + 1
)

// String implements fmt.Stringer with the paper's panel titles.
func (m Metric) String() string {
	switch m {
	case DLVolume:
		return "Downlink Data Volume"
	case ULVolume:
		return "Uplink Data Volume"
	case DLActiveUsers:
		return "Downlink Active Users"
	case DLThroughput:
		return "User Downlink Throughput"
	case RadioLoad:
		return "Cell Resource Utilization"
	case ConnectedUsers:
		return "Total Number of Users"
	case VoiceVolume:
		return "Voice Traffic Volume"
	case VoiceUsers:
		return "Simultaneous Voice Users"
	case VoiceULLoss:
		return "Uplink Packet Error Loss Rate"
	case VoiceDLLoss:
		return "Downlink Packet Error Loss Rate"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Metrics returns all KPI metrics in presentation order.
func Metrics() []Metric {
	out := make([]Metric, NumMetrics)
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

// DataMetrics returns the all-bearer panels of Fig. 8.
func DataMetrics() []Metric {
	return []Metric{DLVolume, ULVolume, DLActiveUsers, DLThroughput, RadioLoad, ConnectedUsers}
}

// VoiceMetrics returns the QCI-1 panels of Fig. 9.
func VoiceMetrics() []Metric {
	return []Metric{VoiceVolume, VoiceUsers, VoiceULLoss, VoiceDLLoss}
}
