package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// WriteMarkdownTable renders a stats.Table as a GitHub-flavoured
// markdown table, for exporting regenerated figures into documents like
// EXPERIMENTS.md.
func WriteMarkdownTable(w io.Writer, t *stats.Table) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	cols := t.ColNames
	fmt.Fprint(w, "| |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s |", c)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range cols {
		fmt.Fprint(w, "---:|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |", escapePipes(r.Label))
		for i := range cols {
			if i < len(r.Values) {
				fmt.Fprintf(w, " %.1f |", r.Values[i])
			} else {
				fmt.Fprint(w, " |")
			}
		}
		// Rows longer than the header still print their extra values.
		for i := len(cols); i < len(r.Values); i++ {
			fmt.Fprintf(w, " %.1f |", r.Values[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// escapePipes keeps labels from breaking markdown table cells.
func escapePipes(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
