package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestWriteTable(t *testing.T) {
	tb := stats.Table{
		Title:    "demo",
		ColNames: []string{"w9", "w10"},
	}
	tb.AddRow("UK", []float64{0, -12.345})
	tb.AddRow("Inner London", []float64{1.5, -41})
	var b strings.Builder
	WriteTable(&b, &tb)
	out := b.String()
	for _, want := range []string{"demo", "w9", "w10", "UK", "Inner London", "-12.3", "-41.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("got %d lines", len(lines))
	}
}

func TestWriteTableNoHeader(t *testing.T) {
	tb := stats.Table{Title: "x"}
	tb.AddRow("row", []float64{1})
	var b strings.Builder
	WriteTable(&b, &tb)
	if lines := strings.Count(b.String(), "\n"); lines != 2 {
		t.Errorf("headerless table printed %d lines", lines)
	}
}

func TestWriteSeries(t *testing.T) {
	var b strings.Builder
	WriteSeries(&b, stats.Series{Label: "gyration", Values: []float64{0, -50}})
	out := b.String()
	if !strings.Contains(out, "gyration") || !strings.Contains(out, "-50.0") {
		t.Errorf("series output: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	flat := Sparkline([]float64{3, 3, 3})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	runes := []rune(s)
	if len(runes) != 4 {
		t.Fatalf("sparkline length = %d", len(runes))
	}
	if runes[0] >= runes[3] {
		t.Errorf("sparkline not increasing: %q", s)
	}
}

func TestCheckMark(t *testing.T) {
	if CheckMark(true) != "PASS" || CheckMark(false) != "FAIL" {
		t.Error("CheckMark wrong")
	}
}

func TestWriteMarkdownTable(t *testing.T) {
	tb := stats.Table{Title: "md", ColNames: []string{"w9", "w10"}}
	tb.AddRow("UK|all", []float64{0, -12.34})
	tb.AddRow("long", []float64{1, 2, 3})
	var b strings.Builder
	WriteMarkdownTable(&b, &tb)
	out := b.String()
	for _, want := range []string{"**md**", "| w9 |", "---:|", "UK\\|all", "-12.3", "3.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
