// Package report renders experiment results (series and tables) as plain
// text: the reproduction's "figures" are printed rows, one per entity,
// one column per week or day, as the harness and examples display them.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// WriteTable renders a stats.Table with aligned columns.
func WriteTable(w io.Writer, t *stats.Table) {
	fmt.Fprintln(w, t.Title)
	labelWidth := 8
	for _, r := range t.Rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	if len(t.ColNames) > 0 {
		fmt.Fprintf(w, "  %-*s", labelWidth, "")
		for _, c := range t.ColNames {
			fmt.Fprintf(w, " %8s", c)
		}
		fmt.Fprintln(w)
	}
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-*s", labelWidth, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, " %8.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// WriteSeries renders a single series on one line.
func WriteSeries(w io.Writer, s stats.Series) {
	fmt.Fprintf(w, "  %-24s", s.Label)
	for _, v := range s.Values {
		fmt.Fprintf(w, " %8.1f", v)
	}
	fmt.Fprintln(w)
}

// Sparkline returns a compact unicode sparkline of the series, handy for
// one-line summaries in examples.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	min, max, err := stats.MinMax(values)
	if err != nil || max == min {
		return strings.Repeat(string(ticks[0]), len(values))
	}
	var b strings.Builder
	for _, v := range values {
		idx := int((v - min) / (max - min) * float64(len(ticks)-1))
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// CheckMark formats a pass/fail marker.
func CheckMark(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}
