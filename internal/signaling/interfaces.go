package signaling

import (
	"fmt"

	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

// Interface identifies the 3GPP reference point a control-plane event is
// observed on, matching the probe placement of Figure 1 in the paper:
// S1-MME at the MME for 4G, Iu-PS/Gb at the SGSN for 3G/2G packet
// events, and Iu-CS/A at the MSC for 3G/2G circuit-switched voice.
type Interface int

// Monitored interfaces.
const (
	IfS1MME       Interface = iota // 4G control plane (MME)
	IfS1U                          // 4G user plane (incl. VoLTE bearers)
	IfIuPS                         // 3G packet-switched (SGSN)
	IfGb                           // 2G packet-switched (SGSN)
	IfIuCS                         // 3G circuit-switched voice (MSC)
	IfA                            // 2G circuit-switched voice (MSC)
	NumInterfaces = int(IfA) + 1
)

// String implements fmt.Stringer with the 3GPP names.
func (i Interface) String() string {
	switch i {
	case IfS1MME:
		return "S1-MME"
	case IfS1U:
		return "S1-U"
	case IfIuPS:
		return "Iu-PS"
	case IfGb:
		return "Gb"
	case IfIuCS:
		return "Iu-CS"
	case IfA:
		return "A"
	default:
		return fmt.Sprintf("Interface(%d)", int(i))
	}
}

// InterfaceOf returns the reference point an event of the given type is
// captured on for the given RAT. Voice events ride the CS core on 2G/3G
// and the S1 user plane (VoLTE) on 4G; everything else is the RAT's
// control-plane interface.
func InterfaceOf(typ EventType, rat radio.RAT) Interface {
	voice := typ == VoiceCallStart || typ == VoiceCallEnd
	switch rat {
	case radio.RAT4G:
		if voice {
			return IfS1U
		}
		return IfS1MME
	case radio.RAT3G:
		if voice {
			return IfIuCS
		}
		return IfIuPS
	default:
		if voice {
			return IfA
		}
		return IfGb
	}
}

// Interface returns the reference point the event was observed on.
func (e *Event) Interface() Interface { return InterfaceOf(e.Type, e.RAT) }

// VoiceDay generates the conversational-voice call events of one
// agent-day: call start/end pairs whose count scales with the scenario's
// voice factor — the §4.2 surge at the control-plane level. Calls are
// placed at the tower the agent occupies at the call's hour.
func (g *Generator) VoiceDay(t *mobsim.DayTrace, day timegrid.SimDay, voiceFactor float64, f EmitFunc) {
	if len(t.Visits) == 0 {
		return
	}
	u := g.pop.User(t.User)
	src := rng.New(g.seed).Split2(uint64(t.User)^0xCA11, uint64(day))
	// Baseline ≈2.2 calls/day; the surge multiplies call attempts.
	calls := src.Poisson(2.2 * voiceFactor)
	for c := 0; c < calls; c++ {
		// Pick a visit weighted by dwell so calls happen where the
		// agent is; bias towards waking bins.
		weights := make([]float64, len(t.Visits))
		for i, v := range t.Visits {
			w := float64(v.Seconds())
			if v.Bin() == 0 {
				w *= 0.05 // few calls in the small hours
			}
			weights[i] = w
		}
		v := t.Visits[src.Pick(weights)]
		start, end := v.Bin().Hours()
		sec := int32(start*3600 + src.Intn((end-start)*3600))
		dur := int32(src.IntRange(45, 900))
		g.emitVoice(f, u, day, sec, VoiceCallStart, v.Tower(), src)
		g.emitVoice(f, u, day, sec+dur, VoiceCallEnd, v.Tower(), src)
	}
}

// emitVoice mirrors emit for the voice event types.
func (g *Generator) emitVoice(f EmitFunc, u *popsim.User, day timegrid.SimDay, sec int32, typ EventType, tw radio.TowerID, src *rng.Source) {
	g.emit(f, u, day, sec, typ, tw, src)
}

// InterfaceBreakdown tallies an event stream per monitored interface; a
// structural check that the probe placement of Figure 1 sees the
// expected traffic mix.
type InterfaceBreakdown struct {
	Counts [NumInterfaces]int64
}

// Consume is an EmitFunc.
func (b *InterfaceBreakdown) Consume(e *Event) {
	b.Counts[e.Interface()]++
}

// Total returns the number of events tallied.
func (b *InterfaceBreakdown) Total() int64 {
	var t int64
	for _, c := range b.Counts {
		t += c
	}
	return t
}

// Share returns the fraction of events on an interface.
func (b *InterfaceBreakdown) Share(i Interface) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Counts[i]) / float64(t)
}
