// Package signaling models the control-plane measurement feed of §2.2:
// the event stream the MNO's probes capture at the MME (S1 interface,
// 4G), SGSN (Iu-PS/Gb, 3G/2G) and MSC (Iu-CS/A, voice) — Attach,
// Authentication, Session establishment, bearer management, Tracking
// Area Updates, ECM-IDLE transitions, Service Requests, Handovers and
// Detach — each carrying the anonymised user ID, SIM MCC/MNC, device
// TAC, the serving sector, a timestamp and a result code.
//
// The generator is streaming (events are emitted through a callback, not
// retained) and the package provides the postcode-level aggregation the
// paper works with, plus the §2.3 population filters (smartphones only,
// native subscribers only).
package signaling

import (
	"fmt"

	"repro/internal/devices"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

// EventType enumerates the §2.2 control-plane event vocabulary.
type EventType int

// Event types.
const (
	Attach EventType = iota
	Authentication
	SessionEstablish
	BearerSetup
	BearerRelease
	TrackingAreaUpdate
	IdleTransition
	ServiceRequest
	Handover
	Detach
	VoiceCallStart
	VoiceCallEnd
	NumEventTypes = int(VoiceCallEnd) + 1
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case Attach:
		return "attach"
	case Authentication:
		return "authentication"
	case SessionEstablish:
		return "session-establish"
	case BearerSetup:
		return "bearer-setup"
	case BearerRelease:
		return "bearer-release"
	case TrackingAreaUpdate:
		return "tau"
	case IdleTransition:
		return "ecm-idle"
	case ServiceRequest:
		return "service-request"
	case Handover:
		return "handover"
	case Detach:
		return "detach"
	case VoiceCallStart:
		return "voice-call-start"
	case VoiceCallEnd:
		return "voice-call-end"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is one control-plane record.
type Event struct {
	User     popsim.UserID
	Day      timegrid.SimDay
	SecOfDay int32
	Type     EventType
	Tower    radio.TowerID
	Sector   uint8
	RAT      radio.RAT
	TAC      devices.TAC
	PLMN     devices.PLMN
	OK       bool // result code: success / failure
}

// EmitFunc receives generated events; it must not retain the pointer.
type EmitFunc func(*Event)

// Generator produces deterministic event streams from day traces.
type Generator struct {
	pop  *popsim.Population
	topo *radio.Topology
	seed uint64
}

// NewGenerator builds a generator over the population.
func NewGenerator(pop *popsim.Population, seed uint64) *Generator {
	return &Generator{pop: pop, topo: pop.Topology(), seed: rng.Hash64(seed ^ 0x516)}
}

// Population returns the population the generator draws from.
func (g *Generator) Population() *popsim.Population { return g.pop }

// ratFor picks the serving RAT for an event: devices camp on 4G for
// ~75% of their time (§2.4), falling back to 3G/2G where available or
// when the device lacks LTE support.
func (g *Generator) ratFor(u *popsim.User, tw *radio.Tower, src *rng.Source) radio.RAT {
	if u.Device.LTECapable && tw.HasRAT[radio.RAT4G] {
		x := src.Float64()
		switch {
		case x < 0.75:
			return radio.RAT4G
		case x < 0.95 && tw.HasRAT[radio.RAT3G]:
			return radio.RAT3G
		case tw.HasRAT[radio.RAT2G]:
			return radio.RAT2G
		default:
			return radio.RAT4G
		}
	}
	if tw.HasRAT[radio.RAT3G] && src.Bool(0.8) {
		return radio.RAT3G
	}
	if tw.HasRAT[radio.RAT2G] {
		return radio.RAT2G
	}
	return radio.RAT4G
}

// emit fills the common fields and forwards the event. Timestamps are
// clamped to the day (follow-up events scheduled past midnight are
// recorded at the last second, as a probe flushing at day rollover
// would).
func (g *Generator) emit(f EmitFunc, u *popsim.User, day timegrid.SimDay, sec int32, typ EventType, tw radio.TowerID, src *rng.Source) {
	if sec > 86_399 {
		sec = 86_399
	}
	tower := g.topo.Tower(tw)
	ev := Event{
		User:     u.ID,
		Day:      day,
		SecOfDay: sec,
		Type:     typ,
		Tower:    tw,
		Sector:   uint8(src.Intn(tower.Sectors)),
		RAT:      g.ratFor(u, tower, src),
		TAC:      u.Device.TAC,
		PLMN:     u.PLMN,
		OK:       !src.Bool(0.004), // rare failures
	}
	f(&ev)
}

// UserDay generates the control-plane events for one native agent-day
// from its trace: an attach/authentication pair at the first activity,
// handovers or service requests on tower changes, periodic idle
// transitions and service requests within long dwells, TAUs on larger
// moves, and a detach for a small fraction of devices overnight.
func (g *Generator) UserDay(t *mobsim.DayTrace, day timegrid.SimDay, f EmitFunc) {
	u := g.pop.User(t.User)
	src := rng.New(g.seed).Split2(uint64(t.User), uint64(day))
	if len(t.Visits) == 0 {
		return
	}

	first := t.Visits[0]
	firstTower := first.Tower()
	sec := int32(first.Bin()) * timegrid.BinHours * 3600
	g.emit(f, u, day, sec, Attach, firstTower, src)
	g.emit(f, u, day, sec+1, Authentication, firstTower, src)
	g.emit(f, u, day, sec+2, SessionEstablish, firstTower, src)

	prev := firstTower
	for i, v := range t.Visits {
		tw := v.Tower()
		binStart := int32(v.Bin()) * timegrid.BinHours * 3600
		at := binStart + int32(src.Intn(timegrid.BinHours*3600))
		if i > 0 && tw != prev {
			// Tower change: active users hand over, idle ones TAU.
			if src.Bool(0.55) {
				g.emit(f, u, day, at, Handover, tw, src)
			} else {
				g.emit(f, u, day, at, TrackingAreaUpdate, tw, src)
				g.emit(f, u, day, at+1, ServiceRequest, tw, src)
			}
		}
		// Activity within the dwell: service requests / idle cycles and
		// dedicated bearer churn, proportional to dwell length.
		cycles := src.Poisson(float64(v.Seconds()) / 3600 * 1.2)
		for c := 0; c < cycles; c++ {
			cat := binStart + int32(src.Intn(timegrid.BinHours*3600))
			g.emit(f, u, day, cat, ServiceRequest, tw, src)
			g.emit(f, u, day, cat+int32(src.IntRange(30, 600)), IdleTransition, tw, src)
			if src.Bool(0.15) {
				g.emit(f, u, day, cat+2, BearerSetup, tw, src)
				g.emit(f, u, day, cat+int32(src.IntRange(60, 900)), BearerRelease, tw, src)
			}
		}
		prev = tw
	}

	if src.Bool(0.06) { // phones switched off overnight
		g.emit(f, u, day, 86_000, Detach, prev, src)
	}
}

// MachineDay generates the sparse, stationary event pattern of an M2M
// SIM: periodic TAU/service-request heartbeats at its fixed tower.
func (g *Generator) MachineDay(u *popsim.User, day timegrid.SimDay, f EmitFunc) {
	src := rng.New(g.seed).Split2(uint64(u.ID)^0x3232, uint64(day))
	beats := src.IntRange(4, 12)
	for i := 0; i < beats; i++ {
		at := int32(src.Intn(86_400))
		g.emit(f, u, day, at, ServiceRequest, u.HomeTower, src)
		g.emit(f, u, day, at+5, IdleTransition, u.HomeTower, src)
	}
	if src.Bool(0.02) {
		g.emit(f, u, day, int32(src.Intn(86_400)), TrackingAreaUpdate, u.HomeTower, src)
	}
}

// RoamerDay generates an inbound roamer's events. Roamer presence
// collapses after the travel restrictions: once the lockdown window
// starts, most roamers have left the country.
func (g *Generator) RoamerDay(u *popsim.User, day timegrid.SimDay, f EmitFunc) {
	src := rng.New(g.seed).Split2(uint64(u.ID)^0xB0A0, uint64(day))
	present := true
	if sd, ok := day.ToStudyDay(); ok && sd >= timegrid.WorkFromHomeAdvice {
		present = src.Bool(0.15)
	}
	if !present {
		return
	}
	g.emit(f, u, day, int32(src.Intn(43_200)), Attach, u.HomeTower, src)
	moves := src.IntRange(1, 5)
	for i := 0; i < moves; i++ {
		tw := g.topo.PickTower(u.HomeDistrict, day, src)
		g.emit(f, u, day, int32(43_200+src.Intn(43_000)), Handover, tw, src)
	}
}

// Day generates the full network-wide stream for one day: native
// smartphone events from the traces plus the M2M and roamer background.
func (g *Generator) Day(day timegrid.SimDay, traces []mobsim.DayTrace, f EmitFunc) {
	for i := range traces {
		g.UserDay(&traces[i], day, f)
	}
	for i := range g.pop.Users {
		u := &g.pop.Users[i]
		switch u.Kind {
		case popsim.NativeM2M:
			g.MachineDay(u, day, f)
		case popsim.InboundRoamer:
			g.RoamerDay(u, day, f)
		}
	}
}

// rngFor derives the per-(user, day) stream shared by the generator and
// the RAT-share accumulator.
func rngFor(seed, user, day uint64) *rng.Source {
	return rng.New(seed).Split2(user, day)
}
