package signaling

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/timegrid"
)

func TestCauseStrings(t *testing.T) {
	for c := FailureCause(0); int(c) < NumFailureCauses; c++ {
		if c.String() == "" {
			t.Errorf("cause %d unnamed", c)
		}
	}
}

func TestCauseModelShiftsWithPressure(t *testing.T) {
	quiet := CauseModel{Pressure: 1}
	surge := CauseModel{Pressure: 2.5}
	if surge.CongestionShare() <= quiet.CongestionShare()*2 {
		t.Errorf("congestion share: quiet %v, surge %v — expected a strong shift",
			quiet.CongestionShare(), surge.CongestionShare())
	}
	// Empirical draw frequencies track the analytic share.
	src := rng.New(1)
	var cong, total int
	for i := 0; i < 20000; i++ {
		if surge.Draw(src) == CauseCongestion {
			cong++
		}
		total++
	}
	got := float64(cong) / float64(total)
	want := surge.CongestionShare()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("empirical congestion share %v vs analytic %v", got, want)
	}
	// Draw never returns CauseNone for a failure.
	for i := 0; i < 1000; i++ {
		if quiet.Draw(src) == CauseNone {
			t.Fatal("failure drew CauseNone")
		}
	}
	// Sub-baseline pressure clamps to baseline.
	low := CauseModel{Pressure: 0.2}
	if low.CongestionShare() != quiet.CongestionShare() {
		t.Error("pressure below 1 should clamp")
	}
}

func TestCauseBreakdownOverStream(t *testing.T) {
	_, sim, gen := fixture(t)
	day := timegrid.SimDay(timegrid.StudyDayOffset + 23) // week-12 surge
	quiet := NewCauseBreakdown(1.0, 7)
	surge := NewCauseBreakdown(2.4, 7)
	traces := sim.Day(day)
	gen.Day(day, traces, quiet.Consume)
	gen.Day(day, traces, surge.Consume)

	if quiet.Failures() == 0 || surge.Failures() == 0 {
		t.Fatal("no failures tallied")
	}
	if quiet.Counts[CauseNone] == 0 {
		t.Fatal("no successes tallied")
	}
	qShare := float64(quiet.Counts[CauseCongestion]) / float64(quiet.Failures())
	sShare := float64(surge.Counts[CauseCongestion]) / float64(surge.Failures())
	if sShare <= qShare {
		t.Errorf("congestion failure share: quiet %v, surge %v", qShare, sShare)
	}
}
