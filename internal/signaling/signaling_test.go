package signaling

import (
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/devices"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

var (
	fixOnce sync.Once
	fixPop  *popsim.Population
	fixSim  *mobsim.Simulator
	fixGen  *Generator
)

func fixture(t *testing.T) (*popsim.Population, *mobsim.Simulator, *Generator) {
	t.Helper()
	fixOnce.Do(func() {
		m := census.BuildUK(1)
		topo := radio.Build(m, radio.DefaultConfig(), 1)
		fixPop = popsim.Synthesize(m, topo, popsim.Config{
			Seed: 1, TargetUsers: 1500, M2MFraction: 0.1, RoamerFraction: 0.05,
		})
		fixSim = mobsim.New(fixPop, pandemic.Default(), 1)
		fixGen = NewGenerator(fixPop, 1)
	})
	return fixPop, fixSim, fixGen
}

func TestEventTypeStrings(t *testing.T) {
	for et := EventType(0); int(et) < NumEventTypes; et++ {
		if et.String() == "" {
			t.Errorf("event type %d has no name", et)
		}
	}
	if Attach.String() != "attach" || Handover.String() != "handover" {
		t.Error("event names wrong")
	}
}

func TestUserDayEventStream(t *testing.T) {
	pop, sim, gen := fixture(t)
	day := timegrid.SimDay(25)
	traces := sim.Day(day)
	topo := pop.Topology()

	var events []Event
	gen.Day(day, traces, func(e *Event) { events = append(events, *e) })
	if len(events) == 0 {
		t.Fatal("no events generated")
	}

	byType := map[EventType]int{}
	usersSeen := map[popsim.UserID]bool{}
	for _, e := range events {
		byType[e.Type]++
		usersSeen[e.User] = true
		if e.Day != day {
			t.Fatalf("event day %d, want %d", e.Day, day)
		}
		if e.SecOfDay < 0 || e.SecOfDay >= 86_400 {
			t.Fatalf("event second %d", e.SecOfDay)
		}
		tower := topo.Tower(e.Tower)
		if int(e.Sector) >= tower.Sectors {
			t.Fatalf("sector %d on a %d-sector tower", e.Sector, tower.Sectors)
		}
		if !tower.HasRAT[e.RAT] {
			t.Fatalf("event on RAT %v unsupported by the tower", e.RAT)
		}
	}
	// Every core event type appears in a national day.
	for _, et := range []EventType{Attach, Authentication, ServiceRequest, IdleTransition, Handover, TrackingAreaUpdate} {
		if byType[et] == 0 {
			t.Errorf("no %v events in a full day", et)
		}
	}
	// Every native user attaches.
	if len(usersSeen) < len(traces) {
		t.Errorf("events cover %d users, traces %d", len(usersSeen), len(traces))
	}
}

func TestEventDeterminism(t *testing.T) {
	_, sim, gen := fixture(t)
	day := timegrid.SimDay(30)
	traces := sim.Day(day)
	var a, b []Event
	gen.Day(day, traces, func(e *Event) { a = append(a, *e) })
	gen.Day(day, traces, func(e *Event) { b = append(b, *e) })
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical generations", i)
		}
	}
}

func TestRoamersVanishAfterRestrictions(t *testing.T) {
	pop, sim, gen := fixture(t)
	countRoamerEvents := func(day timegrid.SimDay) int {
		n := 0
		traces := sim.Day(day)
		gen.Day(day, traces, func(e *Event) {
			if pop.User(e.User).Kind == popsim.InboundRoamer {
				n++
			}
		})
		return n
	}
	before := countRoamerEvents(timegrid.SimDay(timegrid.StudyDayOffset + 3))
	after := countRoamerEvents(timegrid.SimDay(timegrid.StudyDayOffset + 45))
	if before == 0 {
		t.Fatal("no roamer events at baseline")
	}
	if after >= before/2 {
		t.Errorf("roamer events: before %d, after %d — travel bans should empty them", before, after)
	}
}

func TestM2MStationary(t *testing.T) {
	pop, _, gen := fixture(t)
	for i := range pop.Users {
		u := &pop.Users[i]
		if u.Kind != popsim.NativeM2M {
			continue
		}
		gen.MachineDay(u, 40, func(e *Event) {
			if e.Tower != u.HomeTower {
				t.Fatalf("M2M SIM %d moved towers", u.ID)
			}
		})
	}
}

func TestAggregator(t *testing.T) {
	pop, sim, gen := fixture(t)
	agg := NewAggregator(pop.Topology())
	day := timegrid.SimDay(10)
	gen.Day(day, sim.Day(day), agg.Consume)
	if agg.Total == 0 {
		t.Fatal("aggregator saw nothing")
	}
	// District totals add up to the national total.
	var sum int64
	for _, dc := range agg.ByDistrict {
		sum += dc.Total
	}
	if sum != agg.Total {
		t.Errorf("district totals %d != national %d", sum, agg.Total)
	}
	var typeSum int64
	for _, n := range agg.ByType {
		typeSum += n
	}
	if typeSum != agg.Total {
		t.Errorf("type totals %d != national %d", typeSum, agg.Total)
	}
	// Failure rate is small but present.
	fr := agg.FailureRate()
	if fr <= 0 || fr > 0.02 {
		t.Errorf("failure rate = %v", fr)
	}
	if agg.DistinctUsers() == 0 {
		t.Error("no distinct users")
	}
}

func TestFilterPopulation(t *testing.T) {
	pop, _, _ := fixture(t)
	rep := FilterPopulation(pop, devices.NewCatalog())
	if rep.TotalSIMs != len(pop.Users) {
		t.Errorf("total SIMs = %d, want %d", rep.TotalSIMs, len(pop.Users))
	}
	if rep.NativeSmartphones != len(pop.Native()) {
		t.Errorf("native smartphones = %d, want %d", rep.NativeSmartphones, len(pop.Native()))
	}
	if rep.M2MDropped == 0 || rep.RoamersDropped == 0 {
		t.Error("filter should drop M2M and roamers")
	}
	if rep.NativeSmartphones+rep.M2MDropped+rep.RoamersDropped+rep.NonSmartDropped != rep.TotalSIMs {
		t.Error("filter funnel does not add up")
	}
	// The analysis population dominates, as in the paper (~22M of all
	// SIMs are native smartphones).
	if frac := float64(rep.NativeSmartphones) / float64(rep.TotalSIMs); frac < 0.8 {
		t.Errorf("native smartphone share = %v", frac)
	}
}

func TestRATShare75On4G(t *testing.T) {
	_, sim, gen := fixture(t)
	rs := NewRATShare(gen)
	for _, day := range []timegrid.SimDay{23, 24, 25} {
		rs.ConsumeDay(day, sim.Day(day))
	}
	shares := rs.Shares()
	// §2.4: users spend ~75% of connected time on 4G.
	if shares[radio.RAT4G] < 0.65 || shares[radio.RAT4G] > 0.85 {
		t.Errorf("4G time share = %v, want ≈0.75", shares[radio.RAT4G])
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v", sum)
	}
	if shares[radio.RAT3G] <= shares[radio.RAT2G] {
		t.Error("3G share should exceed 2G")
	}
}

func TestEmptyTraceProducesNoEvents(t *testing.T) {
	_, _, gen := fixture(t)
	tr := mobsim.DayTrace{User: 0}
	n := 0
	gen.UserDay(&tr, 5, func(*Event) { n++ })
	if n != 0 {
		t.Errorf("empty trace produced %d events", n)
	}
}
