package signaling

import (
	"fmt"

	"repro/internal/rng"
)

// FailureCause classifies why a control-plane procedure failed; real
// probes export 3GPP cause codes, which operations teams bucket roughly
// this way when they triage incidents like the §4.2 congestion event.
type FailureCause int

// Failure causes.
const (
	CauseNone         FailureCause = iota // the event succeeded
	CauseAuth                             // authentication/security failure
	CauseCongestion                       // admission control, overload
	CauseRadioLink                        // radio link failure, coverage
	CauseTimeout                          // peer not responding
	CauseSubscription                     // barred/unknown subscriber
	NumFailureCauses  = int(CauseSubscription) + 1
)

// String implements fmt.Stringer.
func (c FailureCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseAuth:
		return "auth-failure"
	case CauseCongestion:
		return "congestion"
	case CauseRadioLink:
		return "radio-link-failure"
	case CauseTimeout:
		return "timeout"
	case CauseSubscription:
		return "subscription"
	default:
		return fmt.Sprintf("FailureCause(%d)", int(c))
	}
}

// CauseModel draws failure causes for failed events. Its congestion
// weight scales with the network pressure level, so the cause mix
// shifts towards congestion during the voice surge — the control-plane
// shadow of the §4.2 incident.
type CauseModel struct {
	// Pressure is the current network pressure (1 = baseline); the
	// voice factor of the scenario is a natural input.
	Pressure float64
}

// baseCauseWeights is the triage mix of a quiet network.
var baseCauseWeights = [NumFailureCauses]float64{
	CauseAuth:         0.22,
	CauseCongestion:   0.10,
	CauseRadioLink:    0.38,
	CauseTimeout:      0.18,
	CauseSubscription: 0.12,
}

// Draw picks a cause for a failed event.
func (m CauseModel) Draw(src *rng.Source) FailureCause {
	p := m.Pressure
	if p < 1 {
		p = 1
	}
	w := make([]float64, NumFailureCauses)
	for c := 1; c < NumFailureCauses; c++ {
		w[c] = baseCauseWeights[c]
	}
	// Congestion share grows super-linearly with pressure (admission
	// control rejects kick in once queues build).
	w[CauseCongestion] *= p * p
	return FailureCause(src.Pick(w))
}

// CongestionShare returns the expected fraction of failures attributed
// to congestion at the given pressure.
func (m CauseModel) CongestionShare() float64 {
	p := m.Pressure
	if p < 1 {
		p = 1
	}
	var total float64
	cong := baseCauseWeights[CauseCongestion] * p * p
	for c := 1; c < NumFailureCauses; c++ {
		if c == int(CauseCongestion) {
			total += cong
		} else {
			total += baseCauseWeights[c]
		}
	}
	return cong / total
}

// CauseBreakdown tallies failure causes over an event stream given a
// per-day pressure curve.
type CauseBreakdown struct {
	Counts [NumFailureCauses]int64
	model  CauseModel
	src    *rng.Source
}

// NewCauseBreakdown builds a tally that draws causes at the given
// pressure with a deterministic stream.
func NewCauseBreakdown(pressure float64, seed uint64) *CauseBreakdown {
	return &CauseBreakdown{
		model: CauseModel{Pressure: pressure},
		src:   rng.New(rng.Hash64(seed ^ 0xCA53)),
	}
}

// Consume is an EmitFunc: failed events get a cause drawn and tallied.
func (b *CauseBreakdown) Consume(e *Event) {
	if e.OK {
		b.Counts[CauseNone]++
		return
	}
	b.Counts[b.model.Draw(b.src)]++
}

// Failures returns the total failed events tallied.
func (b *CauseBreakdown) Failures() int64 {
	var t int64
	for c := 1; c < NumFailureCauses; c++ {
		t += b.Counts[c]
	}
	return t
}
