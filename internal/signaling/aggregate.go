package signaling

import (
	"repro/internal/census"
	"repro/internal/devices"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

// Aggregator reduces a raw event stream to the postcode-level feed the
// paper actually analyses ("these feeds are aggregated at postcode level
// or larger granularity", §2.2): per-district per-type counts, failure
// tallies, distinct-user reach and RAT usage.
type Aggregator struct {
	topo *radio.Topology

	ByDistrict map[census.DistrictID]*DistrictCounts
	ByType     [NumEventTypes]int64
	Failures   int64
	Total      int64
	usersSeen  map[popsim.UserID]bool
}

// DistrictCounts is the per-postcode aggregate.
type DistrictCounts struct {
	ByType   [NumEventTypes]int64
	Failures int64
	Total    int64
}

// NewAggregator builds an aggregator over a topology.
func NewAggregator(topo *radio.Topology) *Aggregator {
	return &Aggregator{
		topo:       topo,
		ByDistrict: make(map[census.DistrictID]*DistrictCounts),
		usersSeen:  make(map[popsim.UserID]bool),
	}
}

// Consume ingests one event; it is an EmitFunc.
func (a *Aggregator) Consume(e *Event) {
	a.Total++
	a.ByType[e.Type]++
	if !e.OK {
		a.Failures++
	}
	d := a.topo.Tower(e.Tower).District
	dc := a.ByDistrict[d]
	if dc == nil {
		dc = &DistrictCounts{}
		a.ByDistrict[d] = dc
	}
	dc.Total++
	dc.ByType[e.Type]++
	if !e.OK {
		dc.Failures++
	}
	a.usersSeen[e.User] = true
}

// Merge folds another aggregator's tallies into a. Every aggregate is an
// integer count or a distinct-user set, so merging is exact: partitioning
// an event stream across shard-local aggregators and merging them — in
// any order — reproduces a single aggregator over the whole stream.
func (a *Aggregator) Merge(o *Aggregator) {
	a.Total += o.Total
	a.Failures += o.Failures
	for t := range o.ByType {
		a.ByType[t] += o.ByType[t]
	}
	for d, oc := range o.ByDistrict {
		dc := a.ByDistrict[d]
		if dc == nil {
			dc = &DistrictCounts{}
			a.ByDistrict[d] = dc
		}
		dc.Total += oc.Total
		dc.Failures += oc.Failures
		for t := range oc.ByType {
			dc.ByType[t] += oc.ByType[t]
		}
	}
	for u := range o.usersSeen {
		a.usersSeen[u] = true
	}
}

// Fork returns an independent deep copy of the aggregator: both copies
// can consume further events (e.g. under different scenarios) without
// sharing any mutable state. Fork-then-Merge composes with the existing
// exact merge semantics: a.Fork() fed stream X and a.Fork() fed stream
// Y, merged, equal a fed X then Y.
func (a *Aggregator) Fork() *Aggregator {
	f := NewAggregator(a.topo)
	f.Merge(a)
	return f
}

// DistinctUsers returns how many distinct SIMs appeared in the feed.
func (a *Aggregator) DistinctUsers() int { return len(a.usersSeen) }

// FailureRate returns the overall event failure fraction.
func (a *Aggregator) FailureRate() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Failures) / float64(a.Total)
}

// FilterReport reproduces the §2.3 population funnel: from all SIMs on
// the network down to the native-smartphone analysis population (the
// paper: ~22M native smartphone users retained, M2M and inbound roamers
// dropped).
type FilterReport struct {
	TotalSIMs         int
	Smartphones       int
	M2MDropped        int
	RoamersDropped    int
	NonSmartDropped   int
	NativeSmartphones int
}

// FilterPopulation applies the TAC-catalog and PLMN filters to the
// population, as the paper does before any mobility analysis.
func FilterPopulation(pop *popsim.Population, catalog *devices.Catalog) FilterReport {
	var r FilterReport
	for i := range pop.Users {
		u := &pop.Users[i]
		r.TotalSIMs++
		isSmart := catalog.IsSmartphone(u.Device.TAC)
		if isSmart {
			r.Smartphones++
		}
		switch {
		case u.Device.Class == devices.ClassM2M:
			r.M2MDropped++
		case !u.PLMN.IsNative():
			r.RoamersDropped++
		case !isSmart:
			r.NonSmartDropped++
		default:
			r.NativeSmartphones++
		}
	}
	return r
}

// RATShare accumulates connected time per RAT from traces, reproducing
// the §2.4 observation that users spend ~75% of their time on 4G cells.
type RATShare struct {
	gen     *Generator
	seconds [radio.NumRATs]float64
}

// NewRATShare builds the accumulator.
func NewRATShare(gen *Generator) *RATShare { return &RATShare{gen: gen} }

// ConsumeDay attributes each visit's dwell to a RAT using the same
// camping model the event generator uses.
func (r *RATShare) ConsumeDay(day timegrid.SimDay, traces []mobsim.DayTrace) {
	for i := range traces {
		t := &traces[i]
		u := r.gen.pop.User(t.User)
		src := rngFor(r.gen.seed, uint64(t.User), uint64(day))
		for _, v := range t.Visits {
			tw := r.gen.topo.Tower(v.Tower())
			rat := r.gen.ratFor(u, tw, src)
			r.seconds[rat] += float64(v.Seconds())
		}
	}
}

// Shares returns the fraction of connected time per RAT.
func (r *RATShare) Shares() [radio.NumRATs]float64 {
	var total float64
	for _, s := range r.seconds {
		total += s
	}
	var out [radio.NumRATs]float64
	if total == 0 {
		return out
	}
	for i, s := range r.seconds {
		out[i] = s / total
	}
	return out
}
