package signaling

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/timegrid"
)

func TestInterfaceMapping(t *testing.T) {
	cases := []struct {
		typ  EventType
		rat  radio.RAT
		want Interface
	}{
		{Attach, radio.RAT4G, IfS1MME},
		{Handover, radio.RAT4G, IfS1MME},
		{VoiceCallStart, radio.RAT4G, IfS1U},
		{Attach, radio.RAT3G, IfIuPS},
		{VoiceCallEnd, radio.RAT3G, IfIuCS},
		{ServiceRequest, radio.RAT2G, IfGb},
		{VoiceCallStart, radio.RAT2G, IfA},
	}
	for _, c := range cases {
		if got := InterfaceOf(c.typ, c.rat); got != c.want {
			t.Errorf("InterfaceOf(%v, %v) = %v, want %v", c.typ, c.rat, got, c.want)
		}
	}
	e := Event{Type: VoiceCallStart, RAT: radio.RAT3G}
	if e.Interface() != IfIuCS {
		t.Error("Event.Interface wrong")
	}
}

func TestInterfaceStrings(t *testing.T) {
	for i := Interface(0); int(i) < NumInterfaces; i++ {
		if i.String() == "" {
			t.Errorf("interface %d unnamed", i)
		}
	}
	if IfS1MME.String() != "S1-MME" || IfA.String() != "A" {
		t.Error("interface names wrong")
	}
}

func TestVoiceDaySurge(t *testing.T) {
	_, sim, gen := fixture(t)
	day := timegrid.SimDay(40)
	traces := sim.Day(day)
	count := func(factor float64) (starts, ends int) {
		for i := range traces[:300] {
			gen.VoiceDay(&traces[i], day, factor, func(e *Event) {
				switch e.Type {
				case VoiceCallStart:
					starts++
				case VoiceCallEnd:
					ends++
				}
			})
		}
		return
	}
	s1, e1 := count(1.0)
	if s1 != e1 {
		t.Errorf("unbalanced calls: %d starts, %d ends", s1, e1)
	}
	if s1 == 0 {
		t.Fatal("no baseline calls")
	}
	s2, _ := count(2.5)
	if float64(s2) < 1.8*float64(s1) {
		t.Errorf("voice factor 2.5 produced %d calls vs baseline %d", s2, s1)
	}
}

func TestVoiceEventsOnCorrectInterfaces(t *testing.T) {
	_, sim, gen := fixture(t)
	day := timegrid.SimDay(40)
	traces := sim.Day(day)
	var bd InterfaceBreakdown
	for i := range traces[:200] {
		gen.VoiceDay(&traces[i], day, 1.5, bd.Consume)
	}
	if bd.Total() == 0 {
		t.Fatal("no voice events")
	}
	// Voice only appears on S1-U (VoLTE), Iu-CS and A.
	if bd.Counts[IfS1MME] != 0 || bd.Counts[IfIuPS] != 0 || bd.Counts[IfGb] != 0 {
		t.Errorf("voice events on packet control interfaces: %+v", bd.Counts)
	}
	// VoLTE dominates (~75% of time on 4G).
	if bd.Share(IfS1U) < 0.5 {
		t.Errorf("VoLTE share = %v", bd.Share(IfS1U))
	}
}

func TestInterfaceBreakdownOverFullDay(t *testing.T) {
	_, sim, gen := fixture(t)
	day := timegrid.SimDay(30)
	var bd InterfaceBreakdown
	gen.Day(day, sim.Day(day), bd.Consume)
	if bd.Total() == 0 {
		t.Fatal("no events")
	}
	// Control-plane events concentrate on S1-MME (4G camping share).
	if bd.Share(IfS1MME) < 0.5 {
		t.Errorf("S1-MME share = %v, want the 4G majority", bd.Share(IfS1MME))
	}
	// Legacy interfaces still see some traffic.
	if bd.Counts[IfIuPS] == 0 {
		t.Error("no Iu-PS events at all")
	}
	var empty InterfaceBreakdown
	if empty.Share(IfS1MME) != 0 {
		t.Error("empty breakdown share should be 0")
	}
}
