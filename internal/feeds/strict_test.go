package feeds

import (
	"io"
	"strings"
	"testing"
)

const traceHdr = "day,user,tower,bin,seconds,at_residence\n"

// TestStrictErrorNamesFileLineField pins the strict-mode diagnostic
// contract: the error carries the feed name, the 1-based line of the
// corrupt row, and the offending column and value.
func TestStrictErrorNamesFileLineField(t *testing.T) {
	feed := traceHdr +
		"1,2,3,1,100,1\n" +
		"1,2,3,1,oops,1\n"
	r, err := NewTraceReaderOpts(strings.NewReader(feed), Options{Name: "out/traces.csv"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.ReadDay()
	if err == nil {
		t.Fatal("corrupt row accepted in strict mode")
	}
	for _, want := range []string{"out/traces.csv:3", "seconds", `"oops"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("strict error %q lacks %q", err, want)
		}
	}
	if r.Skipped() != 0 {
		t.Errorf("strict reader skipped %d rows", r.Skipped())
	}
}

// TestStrictShortRow pins the field-count check: a short row fails with
// its line number in both the error and the diagnostic.
func TestStrictShortRow(t *testing.T) {
	feed := traceHdr + "1,2,3\n"
	r, err := NewTraceReaderOpts(strings.NewReader(feed), Options{Name: "traces.csv"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.ReadDay()
	if err == nil {
		t.Fatal("short row accepted in strict mode")
	}
	if !strings.Contains(err.Error(), "traces.csv:2") {
		t.Errorf("short-row error %q lacks traces.csv:2", err)
	}
}

// TestStrictTruncatedFile pins the truncated-transfer case: a file cut
// mid-row fails strictly; earlier complete days replay fine.
func TestStrictTruncatedFile(t *testing.T) {
	feed := traceHdr +
		"0,2,3,1,100,1\n" +
		"1,2,3,1,100,1\n" +
		"1,2,3,1" // cut mid-row, no trailing newline
	r, err := NewTraceReader(strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	day, traces, err := r.ReadDay()
	if err != nil || day != 0 || len(traces) != 1 {
		t.Fatalf("day 0: %v (day=%d, %d traces)", err, day, len(traces))
	}
	if _, _, err = r.ReadDay(); err == nil {
		t.Fatal("truncated final row accepted in strict mode")
	}
}

// TestLenientSkipsCorruptRows pins the lenient contract end to end:
// structurally broken and unparseable rows are skipped and counted,
// OnSkip observes each with its line number, and the surviving rows
// decode exactly as they would from a clean feed.
func TestLenientSkipsCorruptRows(t *testing.T) {
	feed := traceHdr +
		"0,2,3,1,100,1\n" + // good
		"0,2,3\n" + // short row            (line 3)
		"0,2,3,1,oops,1\n" + // bad seconds  (line 4)
		"0,2,3,99,100,1\n" + // bin range    (line 5)
		"0,7,3,2,50,0\n" // good
	type skipRec struct {
		name string
		line int
	}
	var skips []skipRec
	r, err := NewTraceReaderOpts(strings.NewReader(feed), Options{
		Name:    "traces.csv",
		Lenient: true,
		OnSkip:  func(name string, line int, err error) { skips = append(skips, skipRec{name, line}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	day, traces, err := r.ReadDay()
	if err != nil {
		t.Fatalf("lenient read failed: %v", err)
	}
	if day != 0 || len(traces) != 2 {
		t.Fatalf("day=%d traces=%d, want 0/2", day, len(traces))
	}
	if traces[0].User != 2 || traces[1].User != 7 {
		t.Errorf("surviving users: %d, %d", traces[0].User, traces[1].User)
	}
	if r.Skipped() != 3 {
		t.Errorf("Skipped() = %d, want 3", r.Skipped())
	}
	wantLines := []int{3, 4, 5}
	if len(skips) != 3 {
		t.Fatalf("OnSkip fired %d times, want 3", len(skips))
	}
	for i, s := range skips {
		if s.name != "traces.csv" || s.line != wantLines[i] {
			t.Errorf("skip %d = %+v, want traces.csv:%d", i, s, wantLines[i])
		}
	}
	if _, _, err := r.ReadDay(); err != io.EOF {
		t.Errorf("after last day: %v, want EOF", err)
	}
}

// TestLenientTruncatedTail pins that a file cut mid-row degrades in
// lenient mode: the partial row is skipped and the feed ends cleanly.
func TestLenientTruncatedTail(t *testing.T) {
	feed := traceHdr +
		"0,2,3,1,100,1\n" +
		"0,2,3,1" // truncated
	r, err := NewTraceReaderOpts(strings.NewReader(feed), Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	day, traces, err := r.ReadDay()
	if err != nil || day != 0 || len(traces) != 1 {
		t.Fatalf("lenient truncated read: %v (day=%d, %d traces)", err, day, len(traces))
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped() = %d, want 1", r.Skipped())
	}
	if _, _, err := r.ReadDay(); err != io.EOF {
		t.Errorf("after truncation: %v, want EOF", err)
	}
}

// TestHeaderErrorsFatalInLenientMode pins that lenient mode never
// forgives a wrong schema — only rows degrade.
func TestHeaderErrorsFatalInLenientMode(t *testing.T) {
	if _, err := NewTraceReaderOpts(strings.NewReader("a,b,c\n"), Options{Lenient: true}); err == nil {
		t.Error("lenient reader accepted a bad trace header")
	}
	if _, err := NewKPIReaderOpts(strings.NewReader("x\n"), Options{Lenient: true}); err == nil {
		t.Error("lenient reader accepted a bad KPI header")
	}
	if _, err := NewEventReaderOpts(strings.NewReader("nope\n"), Options{Lenient: true}); err == nil {
		t.Error("lenient reader accepted a bad event header")
	}
}

// TestLenientKPIAndEvents extends the lenient contract to the other two
// feeds.
func TestLenientKPIAndEvents(t *testing.T) {
	kpi := strings.Join(kpiHeader, ",") + "\n" +
		"0,1" + strings.Repeat(",1", len(kpiHeader)-2) + "\n" +
		"0,bad" + strings.Repeat(",1", len(kpiHeader)-2) + "\n" +
		"0,2" + strings.Repeat(",2", len(kpiHeader)-2) + "\n"
	kr, err := NewKPIReaderOpts(strings.NewReader(kpi), Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	day, cells, err := kr.ReadDay()
	if err != nil || day != 0 || len(cells) != 2 {
		t.Fatalf("lenient KPI read: %v (day=%d, %d cells)", err, day, len(cells))
	}
	if kr.Skipped() != 1 {
		t.Errorf("KPI Skipped() = %d, want 1", kr.Skipped())
	}

	ev := strings.Join(eventHeader, ",") + "\n" +
		"1,2,3,0,4,0,2,1,234,10,1\n" +
		"1,2,3,999,4,0,2,1,234,10,1\n" + // event type out of range
		"1,2,3,1,4,0,2,1,234,10,0\n"
	er, err := NewEventReaderOpts(strings.NewReader(ev), Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, err := er.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("lenient event read: %v", err)
		}
		n++
	}
	if n != 2 || er.Skipped() != 1 {
		t.Errorf("events read=%d skipped=%d, want 2/1", n, er.Skipped())
	}
}

// TestStrictKPIErrorNamesMetricColumn pins that KPI field errors name
// the metric column from the header, not a bare index.
func TestStrictKPIErrorNamesMetricColumn(t *testing.T) {
	kpi := strings.Join(kpiHeader, ",") + "\n" +
		"0,1,nan_but_worse" + strings.Repeat(",1", len(kpiHeader)-3) + "\n"
	kr, err := NewKPIReaderOpts(strings.NewReader(kpi), Options{Name: "kpi.csv"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = kr.ReadDay()
	if err == nil {
		t.Fatal("bad metric accepted")
	}
	for _, want := range []string{"kpi.csv:2", kpiHeader[2], `"nan_but_worse"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("KPI error %q lacks %q", err, want)
		}
	}
}
