// Package feeds persists and reloads the simulator's data feeds in CSV —
// the interchange format for the three record kinds the paper's pipeline
// consumes: per-user day traces (§2.3 mobility input), per-cell daily
// KPI records (§2.4), and control-plane events (§2.2). A downstream user
// can run the expensive simulation once with cmd/mnosim, persist the
// feeds, and re-run analyses from disk.
//
// Two interchange formats coexist: line-oriented CSV with a fixed
// header (this file — the debuggable default) and the binary columnar
// day-block format of the colfmt subpackage (the fast path at scale;
// PERFORMANCE.md, "Columnar feeds"). ConvertDir translates between
// them, and OpenDir auto-detects the format by sniffing magic bytes.
// All writers/readers are streaming and never hold a full feed in
// memory.
//
// Readers run in one of two modes (Options.Lenient; RELIABILITY.md has
// the full contract): strict — the default — fails the replay on the
// first corrupt row with file:line:field context, while lenient skips
// corrupt rows, counts them (Skipped) and reports each through the
// OnSkip hook, so weeks of noisy operator feeds degrade instead of
// aborting.
package feeds

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/devices"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// ErrBadHeader reports a feed file whose header does not match the
// expected schema.
var ErrBadHeader = errors.New("feeds: unexpected header")

// Options configures a feed reader's failure behaviour.
type Options struct {
	// Name is the feed's file name (or any label), prefixed to row
	// errors and passed to OnSkip. Empty: a generic feed label.
	Name string
	// Lenient makes the reader skip corrupt rows — malformed CSV
	// structure (wrong field count, bad quoting, a truncated final row)
	// and rows whose fields fail to parse — instead of failing the
	// replay. Skipped rows are counted (Skipped) and reported through
	// OnSkip. Header errors and I/O errors are fatal in both modes.
	Lenient bool
	// OnSkip, when non-nil, observes every skipped row in lenient mode:
	// the feed name, the 1-based line number and the row's error.
	OnSkip func(name string, line int, err error)
}

// label returns the feed name for error context.
func (o *Options) label(fallback string) string {
	if o.Name != "" {
		return o.Name
	}
	return fallback
}

// rowError is a corrupt row that lenient mode may skip: a CSV
// structure error or a field parse error. I/O errors are never wrapped
// in it.
func isRowError(err error) bool {
	var pe *csv.ParseError
	return errors.As(err, &pe)
}

// --- day traces ------------------------------------------------------------

// traceHeader is the schema of the trace feed.
var traceHeader = []string{"day", "user", "tower", "bin", "seconds", "at_residence"}

// TraceWriter streams day traces to CSV.
type TraceWriter struct {
	w       *csv.Writer
	started bool
}

// NewTraceWriter returns a writer; the header is emitted on first write.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: csv.NewWriter(w)}
}

// WriteDay appends all visits of one simulated day.
func (t *TraceWriter) WriteDay(day timegrid.SimDay, traces []mobsim.DayTrace) error {
	if !t.started {
		if err := t.w.Write(traceHeader); err != nil {
			return err
		}
		t.started = true
	}
	dayStr := strconv.Itoa(int(day))
	for i := range traces {
		tr := &traces[i]
		userStr := strconv.FormatUint(uint64(tr.User), 10)
		for _, v := range tr.Visits {
			rec := []string{
				dayStr,
				userStr,
				strconv.Itoa(int(v.Tower())),
				strconv.Itoa(int(v.Bin())),
				strconv.Itoa(int(v.Seconds())),
				boolStr(v.AtResidence()),
			}
			if err := t.w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush flushes buffered records and reports any write error.
func (t *TraceWriter) Flush() error {
	t.w.Flush()
	return t.w.Error()
}

// TraceReader streams day traces back from CSV. Visits of one user-day
// must be contiguous (as TraceWriter emits them).
type TraceReader struct {
	r       *csv.Reader
	peeked  []string
	opt     Options
	skipped int64
}

// NewTraceReader validates the header and returns a strict reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	return NewTraceReaderOpts(r, Options{})
}

// NewTraceReaderOpts is NewTraceReader with explicit failure options.
func NewTraceReaderOpts(r io.Reader, opt Options) (*TraceReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("feeds: reading trace header of %s: %w", opt.label("trace feed"), err)
	}
	if !equalRow(hdr, traceHeader) {
		return nil, ErrBadHeader
	}
	return &TraceReader{r: cr, opt: opt}, nil
}

// Skipped returns the number of corrupt rows skipped so far (always 0
// for a strict reader: it fails on the first one instead).
func (t *TraceReader) Skipped() int64 { return t.skipped }

// line is the 1-based input line of the last record read.
func (t *TraceReader) line() int {
	line, _ := t.r.FieldPos(0)
	return line
}

// skip records a lenient-mode skip of the current row.
func (t *TraceReader) skip(line int, err error) {
	t.skipped++
	if t.opt.OnSkip != nil {
		t.opt.OnSkip(t.opt.label("trace feed"), line, err)
	}
}

// ReadDay reads the next full day of traces. It returns io.EOF when the
// feed is exhausted. It allocates a fresh arena per day; streaming
// replay loops should hold a mobsim.DayBuffer and call ReadDayInto.
func (t *TraceReader) ReadDay() (timegrid.SimDay, []mobsim.DayTrace, error) {
	buf := mobsim.NewDayBuffer()
	day, err := t.ReadDayInto(buf)
	if err != nil {
		return 0, nil, err
	}
	return day, buf.Traces(), nil
}

// ReadDayInto reads the next full day of traces into buf, reusing its
// arena: a warm buffer decodes a day without allocating. The traces are
// materialized with buf.Traces() and stay valid until buf's next Reset.
// It returns io.EOF when the feed is exhausted. Corrupt rows fail the
// read with file:line context in strict mode and are skipped (counted,
// reported via OnSkip) in lenient mode.
func (t *TraceReader) ReadDayInto(buf *mobsim.DayBuffer) (timegrid.SimDay, error) {
	day := timegrid.SimDay(-1)
	var current popsim.UserID
	for {
		rec, err := t.next()
		if err == io.EOF {
			if day < 0 {
				return 0, io.EOF
			}
			return day, nil
		}
		if err != nil {
			if t.opt.Lenient && isRowError(err) {
				t.skip(csvErrLine(err, t.line()), err)
				continue
			}
			return 0, fmt.Errorf("feeds: %s:%d: %w", t.opt.label("trace feed"), csvErrLine(err, t.line()), err)
		}
		d, v, user, perr := parseTraceRow(rec)
		if perr != nil {
			if t.opt.Lenient {
				t.skip(t.line(), perr)
				continue
			}
			return 0, fmt.Errorf("feeds: %s:%d: %w", t.opt.label("trace feed"), t.line(), perr)
		}
		if day < 0 {
			day = d
			buf.Reset(day)
		}
		if d != day {
			t.peeked = rec // belongs to the next day
			return day, nil
		}
		if buf.Len() == 0 || current != user {
			buf.BeginUser(user)
			current = user
		}
		buf.Append(v)
	}
}

// next returns the pushed-back record, if any, else reads one.
func (t *TraceReader) next() ([]string, error) {
	if t.peeked != nil {
		rec := t.peeked
		t.peeked = nil
		return rec, nil
	}
	return t.r.Read()
}

// csvErrLine extracts the line number carried by a csv.ParseError, or
// falls back to the reader's current position.
func csvErrLine(err error, fallback int) int {
	var pe *csv.ParseError
	if errors.As(err, &pe) && pe.Line > 0 {
		return pe.Line
	}
	return fallback
}

// parseTraceRow decodes one CSV row of the trace feed; its errors name
// the offending column and value.
func parseTraceRow(rec []string) (timegrid.SimDay, mobsim.Visit, popsim.UserID, error) {
	day, err := strconv.Atoi(rec[0])
	if err != nil {
		return 0, mobsim.Visit{}, 0, badField("trace", "day", rec[0], err)
	}
	user, err := strconv.ParseUint(rec[1], 10, 32)
	if err != nil {
		return 0, mobsim.Visit{}, 0, badField("trace", "user", rec[1], err)
	}
	tower, err := strconv.Atoi(rec[2])
	if err != nil {
		return 0, mobsim.Visit{}, 0, badField("trace", "tower", rec[2], err)
	}
	bin, err := strconv.Atoi(rec[3])
	if err != nil {
		return 0, mobsim.Visit{}, 0, badField("trace", "bin", rec[3], err)
	}
	sec, err := strconv.Atoi(rec[4])
	if err != nil {
		return 0, mobsim.Visit{}, 0, badField("trace", "seconds", rec[4], err)
	}
	atRes, err := parseBool(rec[5])
	if err != nil {
		return 0, mobsim.Visit{}, 0, badField("trace", "at_residence", rec[5], err)
	}
	if bin < 0 || bin >= timegrid.BinsPerDay {
		return 0, mobsim.Visit{}, 0, fmt.Errorf("bad trace field bin=%q: out of range [0,%d)", rec[3], timegrid.BinsPerDay)
	}
	// Range-check the packed Visit fields here so a corrupt row surfaces
	// as a row error (skippable in lenient mode) rather than a panic in
	// mobsim.MakeVisit.
	if tower < 0 || int64(tower) > int64(math.MaxInt32) {
		return 0, mobsim.Visit{}, 0, fmt.Errorf("bad trace field tower=%q: out of range [0,%d]", rec[2], math.MaxInt32)
	}
	if sec < 0 || sec > mobsim.MaxVisitSeconds {
		return 0, mobsim.Visit{}, 0, fmt.Errorf("bad trace field seconds=%q: out of range [0,%d]", rec[4], mobsim.MaxVisitSeconds)
	}
	v := mobsim.MakeVisit(radio.TowerID(tower), timegrid.Bin(bin), int32(sec), atRes)
	return timegrid.SimDay(day), v, popsim.UserID(user), nil
}

// badField is the shared shape of a field parse error: it names the
// feed kind, the column and the offending value.
func badField(feed, col, val string, err error) error {
	return fmt.Errorf("bad %s field %s=%q: %w", feed, col, val, err)
}

// --- per-cell daily KPI records ---------------------------------------------

// kpiHeader is the schema of the KPI feed: one row per cell-day with all
// metrics in column order.
var kpiHeader = buildKPIHeader()

func buildKPIHeader() []string {
	h := []string{"day", "cell"}
	for _, m := range traffic.Metrics() {
		h = append(h, "m"+strconv.Itoa(int(m)))
	}
	return h
}

// KPIWriter streams CellDay records to CSV.
type KPIWriter struct {
	w       *csv.Writer
	started bool
}

// NewKPIWriter returns a writer; the header is emitted on first write.
func NewKPIWriter(w io.Writer) *KPIWriter { return &KPIWriter{w: csv.NewWriter(w)} }

// WriteDay appends one day of cell records.
func (k *KPIWriter) WriteDay(day timegrid.SimDay, cells []traffic.CellDay) error {
	if !k.started {
		if err := k.w.Write(kpiHeader); err != nil {
			return err
		}
		k.started = true
	}
	dayStr := strconv.Itoa(int(day))
	rec := make([]string, len(kpiHeader))
	for i := range cells {
		c := &cells[i]
		rec[0] = dayStr
		rec[1] = strconv.Itoa(int(c.Cell))
		for m := 0; m < traffic.NumMetrics; m++ {
			rec[2+m] = strconv.FormatFloat(c.Values[m], 'g', -1, 64)
		}
		if err := k.w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered records and reports any write error.
func (k *KPIWriter) Flush() error {
	k.w.Flush()
	return k.w.Error()
}

// KPIReader streams CellDay records back from CSV.
type KPIReader struct {
	r       *csv.Reader
	peeked  []string
	opt     Options
	skipped int64
}

// NewKPIReader validates the header and returns a strict reader.
func NewKPIReader(r io.Reader) (*KPIReader, error) {
	return NewKPIReaderOpts(r, Options{})
}

// NewKPIReaderOpts is NewKPIReader with explicit failure options.
func NewKPIReaderOpts(r io.Reader, opt Options) (*KPIReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(kpiHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("feeds: reading KPI header of %s: %w", opt.label("KPI feed"), err)
	}
	if !equalRow(hdr, kpiHeader) {
		return nil, ErrBadHeader
	}
	return &KPIReader{r: cr, opt: opt}, nil
}

// Skipped returns the number of corrupt rows skipped so far.
func (k *KPIReader) Skipped() int64 { return k.skipped }

func (k *KPIReader) line() int {
	line, _ := k.r.FieldPos(0)
	return line
}

func (k *KPIReader) skip(line int, err error) {
	k.skipped++
	if k.opt.OnSkip != nil {
		k.opt.OnSkip(k.opt.label("KPI feed"), line, err)
	}
}

// ReadDay reads the next full day of cell records; io.EOF at the end.
func (k *KPIReader) ReadDay() (timegrid.SimDay, []traffic.CellDay, error) {
	return k.ReadDayAppend(nil)
}

// ReadDayAppend is ReadDay appending into dst (pass prev[:0] to reuse
// capacity across days). Corrupt rows follow the reader's
// strict/lenient mode, like TraceReader.ReadDayInto.
func (k *KPIReader) ReadDayAppend(dst []traffic.CellDay) (timegrid.SimDay, []traffic.CellDay, error) {
	var (
		day   timegrid.SimDay = -1
		cells                 = dst
	)
	for {
		rec, err := k.next()
		if err == io.EOF {
			if day < 0 {
				return 0, nil, io.EOF
			}
			return day, cells, nil
		}
		if err != nil {
			if k.opt.Lenient && isRowError(err) {
				k.skip(csvErrLine(err, k.line()), err)
				continue
			}
			return 0, nil, fmt.Errorf("feeds: %s:%d: %w", k.opt.label("KPI feed"), csvErrLine(err, k.line()), err)
		}
		d, cd, perr := parseKPIRow(rec)
		if perr != nil {
			if k.opt.Lenient {
				k.skip(k.line(), perr)
				continue
			}
			return 0, nil, fmt.Errorf("feeds: %s:%d: %w", k.opt.label("KPI feed"), k.line(), perr)
		}
		if day < 0 {
			day = d
		}
		if d != day {
			k.peeked = rec
			return day, cells, nil
		}
		cells = append(cells, cd)
	}
}

func (k *KPIReader) next() ([]string, error) {
	if k.peeked != nil {
		rec := k.peeked
		k.peeked = nil
		return rec, nil
	}
	return k.r.Read()
}

// parseKPIRow decodes one CSV row of the KPI feed; its errors name the
// offending column and value.
func parseKPIRow(rec []string) (timegrid.SimDay, traffic.CellDay, error) {
	day, err := strconv.Atoi(rec[0])
	if err != nil {
		return 0, traffic.CellDay{}, badField("KPI", "day", rec[0], err)
	}
	cell, err := strconv.Atoi(rec[1])
	if err != nil {
		return 0, traffic.CellDay{}, badField("KPI", "cell", rec[1], err)
	}
	cd := traffic.CellDay{Cell: radio.CellID(cell)}
	for m := 0; m < traffic.NumMetrics; m++ {
		v, err := strconv.ParseFloat(rec[2+m], 64)
		if err != nil {
			return 0, traffic.CellDay{}, badField("KPI", kpiHeader[2+m], rec[2+m], err)
		}
		cd.Values[m] = v
	}
	return timegrid.SimDay(day), cd, nil
}

// --- control-plane events ----------------------------------------------------

// eventHeader is the schema of the signalling feed.
var eventHeader = []string{"day", "sec", "user", "type", "tower", "sector", "rat", "tac", "mcc", "mnc", "ok"}

// EventWriter streams signalling events to CSV; its Consume method is a
// signaling.EmitFunc, so it can be plugged directly into the generator.
type EventWriter struct {
	w       *csv.Writer
	started bool
	err     error
}

// NewEventWriter returns a writer; the header is emitted on first event.
func NewEventWriter(w io.Writer) *EventWriter { return &EventWriter{w: csv.NewWriter(w)} }

// Consume appends one event; errors are latched and reported by Flush.
func (e *EventWriter) Consume(ev *signaling.Event) {
	if e.err != nil {
		return
	}
	if !e.started {
		if err := e.w.Write(eventHeader); err != nil {
			e.err = err
			return
		}
		e.started = true
	}
	rec := []string{
		strconv.Itoa(int(ev.Day)),
		strconv.Itoa(int(ev.SecOfDay)),
		strconv.FormatUint(uint64(ev.User), 10),
		strconv.Itoa(int(ev.Type)),
		strconv.Itoa(int(ev.Tower)),
		strconv.Itoa(int(ev.Sector)),
		strconv.Itoa(int(ev.RAT)),
		strconv.FormatUint(uint64(ev.TAC), 10),
		strconv.Itoa(int(ev.PLMN.MCC)),
		strconv.Itoa(int(ev.PLMN.MNC)),
		boolStr(ev.OK),
	}
	e.err = e.w.Write(rec)
}

// ensureHeader emits the CSV header even when no event has been
// written, so an event-less file still parses as an empty feed (the
// partitioner needs this for shards whose user range saw no events).
func (e *EventWriter) ensureHeader() {
	if e.err == nil && !e.started {
		e.err = e.w.Write(eventHeader)
		e.started = true
	}
}

// Flush flushes buffered records and reports the first error seen.
func (e *EventWriter) Flush() error {
	e.w.Flush()
	if e.err != nil {
		return e.err
	}
	return e.w.Error()
}

// EventReader streams events back from CSV.
type EventReader struct {
	r       *csv.Reader
	opt     Options
	skipped int64
}

// NewEventReader validates the header and returns a strict reader.
func NewEventReader(r io.Reader) (*EventReader, error) {
	return NewEventReaderOpts(r, Options{})
}

// NewEventReaderOpts is NewEventReader with explicit failure options.
func NewEventReaderOpts(r io.Reader, opt Options) (*EventReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(eventHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("feeds: reading event header of %s: %w", opt.label("event feed"), err)
	}
	if !equalRow(hdr, eventHeader) {
		return nil, ErrBadHeader
	}
	return &EventReader{r: cr, opt: opt}, nil
}

// Skipped returns the number of corrupt rows skipped so far.
func (e *EventReader) Skipped() int64 { return e.skipped }

func (e *EventReader) line() int {
	line, _ := e.r.FieldPos(0)
	return line
}

func (e *EventReader) skip(line int, err error) {
	e.skipped++
	if e.opt.OnSkip != nil {
		e.opt.OnSkip(e.opt.label("event feed"), line, err)
	}
}

// Read returns the next event; io.EOF at the end of the feed. Corrupt
// rows follow the reader's strict/lenient mode.
func (e *EventReader) Read() (signaling.Event, error) {
	for {
		rec, err := e.r.Read()
		if err == io.EOF {
			return signaling.Event{}, io.EOF
		}
		if err != nil {
			if e.opt.Lenient && isRowError(err) {
				e.skip(csvErrLine(err, e.line()), err)
				continue
			}
			return signaling.Event{}, fmt.Errorf("feeds: %s:%d: %w", e.opt.label("event feed"), csvErrLine(err, e.line()), err)
		}
		ev, perr := parseEventRow(rec)
		if perr != nil {
			if e.opt.Lenient {
				e.skip(e.line(), perr)
				continue
			}
			return signaling.Event{}, fmt.Errorf("feeds: %s:%d: %w", e.opt.label("event feed"), e.line(), perr)
		}
		return ev, nil
	}
}

// parseEventRow decodes one CSV row of the event feed; its errors name
// the offending column and value.
func parseEventRow(rec []string) (signaling.Event, error) {
	ints := make([]int64, 10)
	for i := 0; i < 10; i++ {
		v, err := strconv.ParseInt(rec[i], 10, 64)
		if err != nil {
			return signaling.Event{}, badField("event", eventHeader[i], rec[i], err)
		}
		ints[i] = v
	}
	ok, err := parseBool(rec[10])
	if err != nil {
		return signaling.Event{}, badField("event", "ok", rec[10], err)
	}
	if t := ints[3]; t < 0 || t >= int64(signaling.NumEventTypes) {
		return signaling.Event{}, fmt.Errorf("bad event field type=%q: out of range [0,%d)", rec[3], signaling.NumEventTypes)
	}
	return signaling.Event{
		Day:      timegrid.SimDay(ints[0]),
		SecOfDay: int32(ints[1]),
		User:     popsim.UserID(ints[2]),
		Type:     signaling.EventType(ints[3]),
		Tower:    radio.TowerID(ints[4]),
		Sector:   uint8(ints[5]),
		RAT:      radio.RAT(ints[6]),
		TAC:      devices.TAC(ints[7]),
		PLMN:     devices.PLMN{MCC: uint16(ints[8]), MNC: uint16(ints[9])},
		OK:       ok,
	}, nil
}

// --- helpers -----------------------------------------------------------------

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func parseBool(s string) (bool, error) {
	switch s {
	case "1":
		return true, nil
	case "0":
		return false, nil
	default:
		return false, fmt.Errorf("want 0/1, got %q", s)
	}
}

func equalRow(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
