// Package feeds persists and reloads the simulator's data feeds in CSV —
// the interchange format for the three record kinds the paper's pipeline
// consumes: per-user day traces (§2.3 mobility input), per-cell daily
// KPI records (§2.4), and control-plane events (§2.2). A downstream user
// can run the expensive simulation once with cmd/mnosim, persist the
// feeds, and re-run analyses from disk.
//
// Formats are line-oriented CSV with a fixed header; all writers/readers
// are streaming and never hold a full feed in memory.
package feeds

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/devices"
	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// ErrBadHeader reports a feed file whose header does not match the
// expected schema.
var ErrBadHeader = errors.New("feeds: unexpected header")

// --- day traces ------------------------------------------------------------

// traceHeader is the schema of the trace feed.
var traceHeader = []string{"day", "user", "tower", "bin", "seconds", "at_residence"}

// TraceWriter streams day traces to CSV.
type TraceWriter struct {
	w       *csv.Writer
	started bool
}

// NewTraceWriter returns a writer; the header is emitted on first write.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: csv.NewWriter(w)}
}

// WriteDay appends all visits of one simulated day.
func (t *TraceWriter) WriteDay(day timegrid.SimDay, traces []mobsim.DayTrace) error {
	if !t.started {
		if err := t.w.Write(traceHeader); err != nil {
			return err
		}
		t.started = true
	}
	dayStr := strconv.Itoa(int(day))
	for i := range traces {
		tr := &traces[i]
		userStr := strconv.FormatUint(uint64(tr.User), 10)
		for _, v := range tr.Visits {
			rec := []string{
				dayStr,
				userStr,
				strconv.Itoa(int(v.Tower)),
				strconv.Itoa(int(v.Bin)),
				strconv.Itoa(int(v.Seconds)),
				boolStr(v.AtResidence),
			}
			if err := t.w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush flushes buffered records and reports any write error.
func (t *TraceWriter) Flush() error {
	t.w.Flush()
	return t.w.Error()
}

// TraceReader streams day traces back from CSV. Visits of one user-day
// must be contiguous (as TraceWriter emits them).
type TraceReader struct {
	r      *csv.Reader
	peeked []string
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("feeds: reading trace header: %w", err)
	}
	if !equalRow(hdr, traceHeader) {
		return nil, ErrBadHeader
	}
	return &TraceReader{r: cr}, nil
}

// ReadDay reads the next full day of traces. It returns io.EOF when the
// feed is exhausted. It allocates a fresh arena per day; streaming
// replay loops should hold a mobsim.DayBuffer and call ReadDayInto.
func (t *TraceReader) ReadDay() (timegrid.SimDay, []mobsim.DayTrace, error) {
	buf := mobsim.NewDayBuffer()
	day, err := t.ReadDayInto(buf)
	if err != nil {
		return 0, nil, err
	}
	return day, buf.Traces(), nil
}

// ReadDayInto reads the next full day of traces into buf, reusing its
// arena: a warm buffer decodes a day without allocating. The traces are
// materialized with buf.Traces() and stay valid until buf's next Reset.
// It returns io.EOF when the feed is exhausted.
func (t *TraceReader) ReadDayInto(buf *mobsim.DayBuffer) (timegrid.SimDay, error) {
	day := timegrid.SimDay(-1)
	var current popsim.UserID
	for {
		rec, err := t.next()
		if err == io.EOF {
			if day < 0 {
				return 0, io.EOF
			}
			return day, nil
		}
		if err != nil {
			return 0, err
		}
		d, v, user, err := parseTraceRow(rec)
		if err != nil {
			return 0, err
		}
		if day < 0 {
			day = d
			buf.Reset(day)
		}
		if d != day {
			t.peeked = rec // belongs to the next day
			return day, nil
		}
		if buf.Len() == 0 || current != user {
			buf.BeginUser(user)
			current = user
		}
		buf.Append(v)
	}
}

// next returns the pushed-back record, if any, else reads one.
func (t *TraceReader) next() ([]string, error) {
	if t.peeked != nil {
		rec := t.peeked
		t.peeked = nil
		return rec, nil
	}
	return t.r.Read()
}

// parseTraceRow decodes one CSV row of the trace feed.
func parseTraceRow(rec []string) (timegrid.SimDay, mobsim.Visit, popsim.UserID, error) {
	day, err1 := strconv.Atoi(rec[0])
	user, err2 := strconv.ParseUint(rec[1], 10, 32)
	tower, err3 := strconv.Atoi(rec[2])
	bin, err4 := strconv.Atoi(rec[3])
	sec, err5 := strconv.Atoi(rec[4])
	atRes, err6 := parseBool(rec[5])
	for _, err := range []error{err1, err2, err3, err4, err5, err6} {
		if err != nil {
			return 0, mobsim.Visit{}, 0, fmt.Errorf("feeds: bad trace row %v: %w", rec, err)
		}
	}
	if bin < 0 || bin >= timegrid.BinsPerDay {
		return 0, mobsim.Visit{}, 0, fmt.Errorf("feeds: trace bin %d out of range", bin)
	}
	v := mobsim.Visit{
		Tower:       radio.TowerID(tower),
		Bin:         timegrid.Bin(bin),
		Seconds:     int32(sec),
		AtResidence: atRes,
	}
	return timegrid.SimDay(day), v, popsim.UserID(user), nil
}

// --- per-cell daily KPI records ---------------------------------------------

// kpiHeader is the schema of the KPI feed: one row per cell-day with all
// metrics in column order.
var kpiHeader = buildKPIHeader()

func buildKPIHeader() []string {
	h := []string{"day", "cell"}
	for _, m := range traffic.Metrics() {
		h = append(h, "m"+strconv.Itoa(int(m)))
	}
	return h
}

// KPIWriter streams CellDay records to CSV.
type KPIWriter struct {
	w       *csv.Writer
	started bool
}

// NewKPIWriter returns a writer; the header is emitted on first write.
func NewKPIWriter(w io.Writer) *KPIWriter { return &KPIWriter{w: csv.NewWriter(w)} }

// WriteDay appends one day of cell records.
func (k *KPIWriter) WriteDay(day timegrid.SimDay, cells []traffic.CellDay) error {
	if !k.started {
		if err := k.w.Write(kpiHeader); err != nil {
			return err
		}
		k.started = true
	}
	dayStr := strconv.Itoa(int(day))
	rec := make([]string, len(kpiHeader))
	for i := range cells {
		c := &cells[i]
		rec[0] = dayStr
		rec[1] = strconv.Itoa(int(c.Cell))
		for m := 0; m < traffic.NumMetrics; m++ {
			rec[2+m] = strconv.FormatFloat(c.Values[m], 'g', -1, 64)
		}
		if err := k.w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered records and reports any write error.
func (k *KPIWriter) Flush() error {
	k.w.Flush()
	return k.w.Error()
}

// KPIReader streams CellDay records back from CSV.
type KPIReader struct {
	r      *csv.Reader
	peeked []string
}

// NewKPIReader validates the header and returns a reader.
func NewKPIReader(r io.Reader) (*KPIReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(kpiHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("feeds: reading KPI header: %w", err)
	}
	if !equalRow(hdr, kpiHeader) {
		return nil, ErrBadHeader
	}
	return &KPIReader{r: cr}, nil
}

// ReadDay reads the next full day of cell records; io.EOF at the end.
func (k *KPIReader) ReadDay() (timegrid.SimDay, []traffic.CellDay, error) {
	return k.ReadDayAppend(nil)
}

// ReadDayAppend is ReadDay appending into dst (pass prev[:0] to reuse
// capacity across days).
func (k *KPIReader) ReadDayAppend(dst []traffic.CellDay) (timegrid.SimDay, []traffic.CellDay, error) {
	var (
		day   timegrid.SimDay = -1
		cells                 = dst
	)
	for {
		rec, err := k.next()
		if err == io.EOF {
			if day < 0 {
				return 0, nil, io.EOF
			}
			return day, cells, nil
		}
		if err != nil {
			return 0, nil, err
		}
		d, cd, err := parseKPIRow(rec)
		if err != nil {
			return 0, nil, err
		}
		if day < 0 {
			day = d
		}
		if d != day {
			k.peeked = rec
			return day, cells, nil
		}
		cells = append(cells, cd)
	}
}

func (k *KPIReader) next() ([]string, error) {
	if k.peeked != nil {
		rec := k.peeked
		k.peeked = nil
		return rec, nil
	}
	return k.r.Read()
}

// parseKPIRow decodes one CSV row of the KPI feed.
func parseKPIRow(rec []string) (timegrid.SimDay, traffic.CellDay, error) {
	day, err := strconv.Atoi(rec[0])
	if err != nil {
		return 0, traffic.CellDay{}, fmt.Errorf("feeds: bad KPI day %q: %w", rec[0], err)
	}
	cell, err := strconv.Atoi(rec[1])
	if err != nil {
		return 0, traffic.CellDay{}, fmt.Errorf("feeds: bad KPI cell %q: %w", rec[1], err)
	}
	cd := traffic.CellDay{Cell: radio.CellID(cell)}
	for m := 0; m < traffic.NumMetrics; m++ {
		v, err := strconv.ParseFloat(rec[2+m], 64)
		if err != nil {
			return 0, traffic.CellDay{}, fmt.Errorf("feeds: bad KPI value %q: %w", rec[2+m], err)
		}
		cd.Values[m] = v
	}
	return timegrid.SimDay(day), cd, nil
}

// --- control-plane events ----------------------------------------------------

// eventHeader is the schema of the signalling feed.
var eventHeader = []string{"day", "sec", "user", "type", "tower", "sector", "rat", "tac", "mcc", "mnc", "ok"}

// EventWriter streams signalling events to CSV; its Consume method is a
// signaling.EmitFunc, so it can be plugged directly into the generator.
type EventWriter struct {
	w       *csv.Writer
	started bool
	err     error
}

// NewEventWriter returns a writer; the header is emitted on first event.
func NewEventWriter(w io.Writer) *EventWriter { return &EventWriter{w: csv.NewWriter(w)} }

// Consume appends one event; errors are latched and reported by Flush.
func (e *EventWriter) Consume(ev *signaling.Event) {
	if e.err != nil {
		return
	}
	if !e.started {
		if err := e.w.Write(eventHeader); err != nil {
			e.err = err
			return
		}
		e.started = true
	}
	rec := []string{
		strconv.Itoa(int(ev.Day)),
		strconv.Itoa(int(ev.SecOfDay)),
		strconv.FormatUint(uint64(ev.User), 10),
		strconv.Itoa(int(ev.Type)),
		strconv.Itoa(int(ev.Tower)),
		strconv.Itoa(int(ev.Sector)),
		strconv.Itoa(int(ev.RAT)),
		strconv.FormatUint(uint64(ev.TAC), 10),
		strconv.Itoa(int(ev.PLMN.MCC)),
		strconv.Itoa(int(ev.PLMN.MNC)),
		boolStr(ev.OK),
	}
	e.err = e.w.Write(rec)
}

// Flush flushes buffered records and reports the first error seen.
func (e *EventWriter) Flush() error {
	e.w.Flush()
	if e.err != nil {
		return e.err
	}
	return e.w.Error()
}

// EventReader streams events back from CSV.
type EventReader struct {
	r *csv.Reader
}

// NewEventReader validates the header and returns a reader.
func NewEventReader(r io.Reader) (*EventReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(eventHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("feeds: reading event header: %w", err)
	}
	if !equalRow(hdr, eventHeader) {
		return nil, ErrBadHeader
	}
	return &EventReader{r: cr}, nil
}

// Read returns the next event; io.EOF at the end of the feed.
func (e *EventReader) Read() (signaling.Event, error) {
	rec, err := e.r.Read()
	if err != nil {
		return signaling.Event{}, err
	}
	ints := make([]int64, 10)
	for i := 0; i < 10; i++ {
		v, err := strconv.ParseInt(rec[i], 10, 64)
		if err != nil {
			return signaling.Event{}, fmt.Errorf("feeds: bad event field %d %q: %w", i, rec[i], err)
		}
		ints[i] = v
	}
	ok, err := parseBool(rec[10])
	if err != nil {
		return signaling.Event{}, fmt.Errorf("feeds: bad event ok field: %w", err)
	}
	if t := ints[3]; t < 0 || t >= int64(signaling.NumEventTypes) {
		return signaling.Event{}, fmt.Errorf("feeds: event type %d out of range", t)
	}
	return signaling.Event{
		Day:      timegrid.SimDay(ints[0]),
		SecOfDay: int32(ints[1]),
		User:     popsim.UserID(ints[2]),
		Type:     signaling.EventType(ints[3]),
		Tower:    radio.TowerID(ints[4]),
		Sector:   uint8(ints[5]),
		RAT:      radio.RAT(ints[6]),
		TAC:      devices.TAC(ints[7]),
		PLMN:     devices.PLMN{MCC: uint16(ints[8]), MNC: uint16(ints[9])},
		OK:       ok,
	}, nil
}

// --- helpers -----------------------------------------------------------------

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func parseBool(s string) (bool, error) {
	switch s {
	case "1":
		return true, nil
	case "0":
		return false, nil
	default:
		return false, fmt.Errorf("want 0/1, got %q", s)
	}
}

func equalRow(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
