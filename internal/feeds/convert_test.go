package feeds

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/feeds/colfmt"
	"repro/internal/mobsim"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// dayCopy is a deep copy of one replay batch (Release recycles the
// originals, so comparisons need owned snapshots).
type dayCopy struct {
	Day    timegrid.SimDay
	Traces []mobsim.DayTrace
	Cells  []traffic.CellDay
	Events []signaling.Event
}

// snapshotDir replays a feed directory and deep-copies every batch.
func snapshotDir(t *testing.T, dir string, opt Options) []dayCopy {
	t.Helper()
	src, err := OpenDirOpts(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var days []dayCopy
	for {
		b, err := src.Next()
		if err == io.EOF {
			return days
		}
		if err != nil {
			t.Fatal(err)
		}
		d := dayCopy{Day: b.Day}
		for _, tr := range b.Traces {
			d.Traces = append(d.Traces, mobsim.DayTrace{
				User:   tr.User,
				Visits: append([]mobsim.Visit(nil), tr.Visits...),
			})
		}
		d.Cells = append(d.Cells, b.Cells...)
		d.Events = append(d.Events, b.Events...)
		days = append(days, d)
		b.Release()
	}
}

func TestMetaPartitionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := Meta{
		Users: 8000, Seed: 42, Scenario: "early-lockdown",
		Format: FormatCol, FormatVersion: colfmt.Version,
		Part: 1, Parts: 4, UserLo: 2000, UserHi: 3999,
	}
	if !want.Partitioned() {
		t.Fatal("Partitioned() false for a shard meta")
	}
	if (Meta{Users: 1, Seed: 2}).Partitioned() {
		t.Fatal("Partitioned() true for an unpartitioned meta")
	}
	if err := WriteMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadMeta(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("meta: got %+v, want %+v", got, want)
	}
}

func TestMetaReadsPreFormatSidecar(t *testing.T) {
	// Sidecars written before the format and partition columns existed
	// (three columns) must read back with those fields zero.
	dir := t.TempDir()
	legacy := "users,seed,scenario\n600,9,base\n"
	if err := os.WriteFile(filepath.Join(dir, MetaFeedName), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadMeta(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got != (Meta{Users: 600, Seed: 9, Scenario: "base"}) {
		t.Fatalf("pre-format meta: got %+v", got)
	}
}

func TestConvertDirRoundTrip(t *testing.T) {
	csvDir := t.TempDir()
	writeFeedDir(t, csvDir)
	srcMeta := Meta{Users: 600, Seed: 7, Scenario: "base"}
	if err := WriteMeta(csvDir, srcMeta); err != nil {
		t.Fatal(err)
	}

	// CSV → columnar: replay of the converted directory (auto-detected
	// by magic bytes) must match the original record for record.
	colDir := t.TempDir()
	if err := ConvertDir(csvDir, colDir, FormatCol, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{TraceColFeedName, KPIColFeedName, EventFeedName} {
		if _, err := os.Stat(filepath.Join(colDir, name)); err != nil {
			t.Fatalf("converted dir missing %s: %v", name, err)
		}
	}
	want := snapshotDir(t, csvDir, Options{})
	got := snapshotDir(t, colDir, Options{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar replay diverges from CSV replay:\n got %+v\nwant %+v", got, want)
	}
	m, ok, err := ReadMeta(colDir)
	if err != nil || !ok {
		t.Fatalf("converted meta: ok=%v err=%v", ok, err)
	}
	if m.Format != FormatCol || m.FormatVersion != colfmt.Version {
		t.Fatalf("converted meta format: %+v", m)
	}
	if m.Users != srcMeta.Users || m.Seed != srcMeta.Seed || m.Scenario != srcMeta.Scenario {
		t.Fatalf("converted meta lost provenance: %+v", m)
	}

	// Columnar → CSV: the round trip must be lossless byte for byte.
	backDir := t.TempDir()
	if err := ConvertDir(colDir, backDir, FormatCSV, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{TraceFeedName, KPIFeedName, EventFeedName} {
		a, err := os.ReadFile(filepath.Join(csvDir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(backDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: CSV → col → CSV not byte-identical (%d vs %d bytes)", name, len(a), len(b))
		}
	}
}

func TestConvertDirUnknownFormat(t *testing.T) {
	if err := ConvertDir(t.TempDir(), t.TempDir(), "parquet", Options{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestPartitionDir(t *testing.T) {
	in := t.TempDir()
	writeFeedDir(t, in)
	if err := WriteMeta(in, Meta{Users: 600, Seed: 7}); err != nil {
		t.Fatal(err)
	}

	out := t.TempDir()
	metas, err := PartitionDir(in, out, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 {
		t.Fatalf("want 2 shard metas, got %d", len(metas))
	}
	// Ranges must be contiguous, disjoint and cover the observed users
	// (1 and 7 in the fixture).
	if metas[0].UserLo != 1 || metas[1].UserHi != 7 {
		t.Fatalf("shard ranges do not cover users: %+v", metas)
	}
	for s, m := range metas {
		if m.Part != s || m.Parts != 2 || !m.Partitioned() {
			t.Fatalf("shard %d meta: %+v", s, m)
		}
		if m.Users != 600 || m.Seed != 7 {
			t.Fatalf("shard %d meta lost provenance: %+v", s, m)
		}
		if s > 0 && m.UserLo != metas[s-1].UserHi+1 {
			t.Fatalf("shard ranges not contiguous: %+v", metas)
		}
		onDisk, ok, err := ReadMeta(filepath.Join(out, ShardDirName(s)))
		if err != nil || !ok {
			t.Fatalf("shard %d sidecar: ok=%v err=%v", s, ok, err)
		}
		if onDisk != m {
			t.Fatalf("shard %d sidecar %+v != returned meta %+v", s, onDisk, m)
		}
	}

	// Replaying the shards together must reconstruct the input exactly:
	// same day sequence in every shard, and per day the shard-ordered
	// concatenation of traces, the union of cells and the union of
	// events equal the original batch.
	want := snapshotDir(t, in, Options{})
	shards := make([][]dayCopy, 2)
	for s := range shards {
		shards[s] = snapshotDir(t, filepath.Join(out, ShardDirName(s)), Options{})
		if len(shards[s]) != len(want) {
			t.Fatalf("shard %d replays %d days, want %d", s, len(shards[s]), len(want))
		}
	}
	for d, w := range want {
		var merged dayCopy
		merged.Day = w.Day
		for s := range shards {
			got := shards[s][d]
			if got.Day != w.Day {
				t.Fatalf("shard %d day %d: got day %d, want %d", s, d, got.Day, w.Day)
			}
			for _, tr := range got.Traces {
				if uint32(tr.User) < metas[s].UserLo || uint32(tr.User) > metas[s].UserHi {
					t.Fatalf("shard %d holds user %d outside [%d,%d]", s, tr.User, metas[s].UserLo, metas[s].UserHi)
				}
			}
			merged.Traces = append(merged.Traces, got.Traces...)
			merged.Cells = append(merged.Cells, got.Cells...)
			merged.Events = append(merged.Events, got.Events...)
		}
		if !reflect.DeepEqual(merged.Traces, w.Traces) {
			t.Fatalf("day %d: merged traces %+v != original %+v", w.Day, merged.Traces, w.Traces)
		}
		if len(merged.Cells) != len(w.Cells) {
			t.Fatalf("day %d: merged %d cells, want %d", w.Day, len(merged.Cells), len(w.Cells))
		}
		if len(merged.Events) != len(w.Events) {
			t.Fatalf("day %d: merged %d events, want %d", w.Day, len(merged.Events), len(w.Events))
		}
	}
}

func TestPartitionDirRejectsBadParts(t *testing.T) {
	if _, err := PartitionDir(t.TempDir(), t.TempDir(), 0, Options{}); err == nil {
		t.Fatal("parts=0 accepted")
	}
}
